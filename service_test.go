package hsched_test

import (
	"context"
	"testing"

	"hsched"
	"hsched/internal/experiments"
)

// TestFacadeService drives the service surface through the façade:
// explicit NewService, the package-default service behind Analyze, and
// context cancellation.
func TestFacadeService(t *testing.T) {
	ctx := context.Background()
	sys := experiments.PaperSystem()

	svc := hsched.NewService(hsched.ServiceOptions{Shards: 2, Capacity: 16})
	first, err := svc.Analyze(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Schedulable {
		t.Fatal("paper system unschedulable")
	}
	second, err := svc.Analyze(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("repeated query should be served from the memo")
	}
	st := svc.Stats()
	if st.Queries != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2/1/1", st)
	}

	// The free functions ride the package-default service.
	before := hsched.DefaultService().Stats()
	if _, err := hsched.Analyze(sys, hsched.AnalysisOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := hsched.Analyze(sys, hsched.AnalysisOptions{}); err != nil {
		t.Fatal(err)
	}
	after := hsched.DefaultService().Stats()
	if after.Queries-before.Queries != 2 {
		t.Errorf("free functions did not route through DefaultService: %+v -> %+v", before, after)
	}
	if after.Hits <= before.Hits {
		t.Errorf("repeated free-function query missed the memo: %+v -> %+v", before, after)
	}

	// Fingerprints are exposed and stable through the façade.
	var fp hsched.SystemFingerprint = sys.Fingerprint()
	if fp != experiments.PaperSystem().Fingerprint() {
		t.Error("fingerprint unstable across identical constructions")
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := hsched.AnalyzeContext(cancelled, sys, hsched.AnalysisOptions{TightBestCase: true}); err == nil {
		t.Error("cancelled context should abort the analysis")
	}
}

// TestFacadeAssign drives the priority-assignment surface through the
// façade: the policy dispatcher over a shared service, the direct
// search entry points, and the probe-session statistics.
func TestFacadeAssign(t *testing.T) {
	ctx := context.Background()
	svc := hsched.NewService(hsched.ServiceOptions{Shards: 1})

	for _, policy := range hsched.AssignPolicies() {
		sys := experiments.PaperSystem()
		res, ok, err := hsched.Assign(ctx, sys, policy, hsched.AssignOptions{Service: svc})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !ok || !res.Schedulable {
			t.Errorf("%s: paper example should stay schedulable", policy)
		}
	}
	st := svc.Stats()
	if st.Queries == 0 || st.Hits+st.Misses != st.Queries {
		t.Fatalf("assign traffic not accounted on the shared service: %+v", st)
	}
	if st.DeltaHits == 0 {
		t.Errorf("the searches' probe chains never rode the incremental path: %+v", st)
	}

	// A probe session is constructible and queryable from the façade.
	var sess *hsched.ProbeSession = svc.NewSession()
	if _, err := sess.Analyze(ctx, experiments.PaperSystem()); err != nil {
		t.Fatal(err)
	}
	var ss hsched.SessionStats = sess.Stats()
	if ss.Probes != 1 || ss.MemoHits+ss.Executed != ss.Probes {
		t.Errorf("session stats inconsistent: %+v", ss)
	}

	// Audsley installs a schedulable assignment even from scratch.
	sys := experiments.PaperSystem()
	for i := range sys.Transactions {
		for j := range sys.Transactions[i].Tasks {
			sys.Transactions[i].Tasks[j].Priority = 0
		}
	}
	res, ok, err := hsched.Audsley(sys, hsched.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !res.Schedulable {
		t.Errorf("Audsley failed on the priority-free paper example")
	}
}
