package hsched_test

import (
	"context"
	"testing"

	"hsched"
	"hsched/internal/experiments"
)

// TestFacadeService drives the service surface through the façade:
// explicit NewService, the package-default service behind Analyze, and
// context cancellation.
func TestFacadeService(t *testing.T) {
	ctx := context.Background()
	sys := experiments.PaperSystem()

	svc := hsched.NewService(hsched.ServiceOptions{Shards: 2, Capacity: 16})
	first, err := svc.Analyze(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Schedulable {
		t.Fatal("paper system unschedulable")
	}
	second, err := svc.Analyze(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("repeated query should be served from the memo")
	}
	st := svc.Stats()
	if st.Queries != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2/1/1", st)
	}

	// The free functions ride the package-default service.
	before := hsched.DefaultService().Stats()
	if _, err := hsched.Analyze(sys, hsched.AnalysisOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := hsched.Analyze(sys, hsched.AnalysisOptions{}); err != nil {
		t.Fatal(err)
	}
	after := hsched.DefaultService().Stats()
	if after.Queries-before.Queries != 2 {
		t.Errorf("free functions did not route through DefaultService: %+v -> %+v", before, after)
	}
	if after.Hits <= before.Hits {
		t.Errorf("repeated free-function query missed the memo: %+v -> %+v", before, after)
	}

	// Fingerprints are exposed and stable through the façade.
	var fp hsched.SystemFingerprint = sys.Fingerprint()
	if fp != experiments.PaperSystem().Fingerprint() {
		t.Error("fingerprint unstable across identical constructions")
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := hsched.AnalyzeContext(cancelled, sys, hsched.AnalysisOptions{TightBestCase: true}); err == nil {
		t.Error("cancelled context should abort the analysis")
	}
}
