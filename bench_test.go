// Benchmark harness: one benchmark per paper table and figure, plus
// the ablations of DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks measure the cost of regenerating each artefact; the
// artefact values themselves are locked by the test suite.
package hsched_test

import (
	"testing"

	"hsched"
	"hsched/internal/analysis"
	"hsched/internal/design"
	"hsched/internal/experiments"
	"hsched/internal/gen"
	"hsched/internal/server"
	"hsched/internal/sim"
)

// BenchmarkTable1BestCaseBounds regenerates the φmin column of Table 1
// (best-case start times of the example's tasks).
func BenchmarkTable1BestCaseBounds(b *testing.B) {
	sys := experiments.PaperSystem()
	for i := 0; i < b.N; i++ {
		starts, _ := analysis.BestBounds(sys, false)
		if starts[0][3] != 5 {
			b.Fatalf("φmin(τ1,4) = %v", starts[0][3])
		}
	}
}

// BenchmarkTable2PlatformModels regenerates the platform triples of
// Table 2 from concrete periodic servers (the reverse direction:
// server → (α, Δ, β)).
func BenchmarkTable2PlatformModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.PaperPlatforms() {
			srv, err := hsched.ServerFor(p, 0)
			if err != nil {
				b.Fatal(err)
			}
			_ = srv.Params()
		}
	}
}

// BenchmarkTable3Holistic regenerates Table 3: the full holistic
// fixed-point analysis of the paper example.
func BenchmarkTable3Holistic(b *testing.B) {
	sys := experiments.PaperSystem()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Analyze(sys, analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("unschedulable")
		}
	}
}

// BenchmarkFigure3SupplyCurves regenerates the supply-function
// geometry of Figure 3 (exact Zmin/Zmax of a periodic server plus the
// linear bounds).
func BenchmarkFigure3SupplyCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3Compute(1, 4, 16, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Transformation regenerates Figure 5: the
// component-to-transaction transformation of the example assembly.
func BenchmarkFigure5Transformation(b *testing.B) {
	asm := experiments.PaperAssembly()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Transactions(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineColdStart measures the one-shot analysis path on the
// paper example: a fresh engine (working copy, interference cache,
// scratch buffers) is built for every call, as the package-level
// Analyze does. Compare allocs/op against BenchmarkEngineReuse.
func BenchmarkEngineColdStart(b *testing.B) {
	sys := experiments.PaperSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.NewEngine(analysis.Options{Workers: 1}).Analyze(sys)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("unschedulable")
		}
	}
}

// BenchmarkEngineReuse measures the amortised path: one engine reused
// across all iterations, so the interference cache, working system and
// every scratch buffer are built once. This is the per-call cost the
// acceptance sweeps and MinimizeBandwidth pay.
func BenchmarkEngineReuse(b *testing.B) {
	sys := experiments.PaperSystem()
	eng := analysis.NewEngine(analysis.Options{Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Analyze(sys)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable {
			b.Fatal("unschedulable")
		}
	}
}

// BenchmarkEngineReuseParallel is BenchmarkEngineReuse on a larger
// random system with the per-round response stage fanned out across
// all CPUs (Workers: 0), the configuration the CLI uses by default.
func BenchmarkEngineReuseParallel(b *testing.B) {
	sys, err := gen.System(gen.Config{
		Seed: 11, Platforms: 3, Transactions: 12, ChainLen: 4,
		PeriodMin: 10, PeriodMax: 1000, Utilization: 0.4,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := analysis.NewEngine(analysis.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1ExactAnalysis measures the exact scenario-enumeration
// analysis (ablation A1) on a random system.
func BenchmarkA1ExactAnalysis(b *testing.B) {
	sys, err := gen.System(gen.Config{
		Seed: 7, Platforms: 2, Transactions: 3, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 200, Utilization: 0.45,
		AlphaMin: 0.35, AlphaMax: 0.8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(sys, analysis.Options{Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1ApproxAnalysis is the approximate counterpart of
// BenchmarkA1ExactAnalysis (same system, Section 3.1.2 scenarios).
func BenchmarkA1ApproxAnalysis(b *testing.B) {
	sys, err := gen.System(gen.Config{
		Seed: 7, Platforms: 2, Transactions: 3, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 200, Utilization: 0.45,
		AlphaMin: 0.35, AlphaMax: 0.8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(sys, analysis.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3Simulation measures one soundness-sweep simulation run
// (ablation A3): the paper example on concrete polling servers.
func BenchmarkA3Simulation(b *testing.B) {
	sys := experiments.PaperSystem()
	servers := make([]server.Server, len(sys.Platforms))
	for m, p := range sys.Platforms {
		srv, err := server.ForPlatform(p, 0)
		if err != nil {
			b.Fatal(err)
		}
		servers[m] = srv
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sys, servers, sim.Config{Horizon: 2100, Step: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA5DesignSearch measures the platform-parameter optimisation
// (ablation A5) on the paper example.
func BenchmarkA5DesignSearch(b *testing.B) {
	sys := experiments.PaperSystem()
	fams := []design.Family{
		design.PollingFamily(0.8333),
		design.PollingFamily(0.8333),
		design.PollingFamily(1.25),
	}
	for i := 0; i < b.N; i++ {
		if _, err := design.Minimize(sys, fams, design.Options{Tolerance: 1e-2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA6NetworkedAnalysis measures the analysis of the example
// with explicit RPC messages on a shared bus (ablation A6).
func BenchmarkA6NetworkedAnalysis(b *testing.B) {
	asm, _ := experiments.NetworkedAssembly()
	sys, err := asm.Transactions()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(sys, analysis.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA7EDFAdmission measures the local-EDF demand/supply
// admission test (ablation A7) on a concrete periodic server.
func BenchmarkA7EDFAdmission(b *testing.B) {
	tasks := []hsched.EDFTask{
		{WCET: 2, Period: 10}, {WCET: 4.5, Period: 14}, {WCET: 1, Period: 40},
	}
	srv := hsched.PeriodicServer{Q: 1, P: 1.25}
	for i := 0; i < b.N; i++ {
		res, err := hsched.EDFSchedulable(tasks, srv)
		if err != nil || !res.Schedulable {
			b.Fatalf("admission failed: %v %v", res, err)
		}
	}
}

// BenchmarkA8AcceptanceSweep measures one point of the acceptance-
// ratio sweep (ablation A8): 10 random systems analysed by all three
// variants at utilisation 0.5.
func BenchmarkA8AcceptanceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AcceptanceRatio([]float64{0.5}, 10, 77); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHolisticScaling measures how the holistic analysis scales
// with system size (tasks ≈ 3 platforms × 12 transactions × ≤4 chain).
func BenchmarkHolisticScaling(b *testing.B) {
	sys, err := gen.System(gen.Config{
		Seed: 11, Platforms: 3, Transactions: 12, ChainLen: 4,
		PeriodMin: 10, PeriodMax: 1000, Utilization: 0.4,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(sys, analysis.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
