// Distributed: the sensor-fusion system with the RPC messages made
// explicit (Section 2.2.1 of the paper). Components sit on different
// computational nodes, so every remote call is carried by a request
// and a reply message over a shared CAN-like bus; the bus is modelled
// as one more abstract computing platform (an FTT-style synchronous
// window), messages become tasks on it, and the non-preemptive frame
// blocking of the bus is charged to every message.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"hsched"
)

func main() {
	sensorClass := &hsched.Class{
		Name:     "SensorReading",
		Provided: []hsched.Method{{Name: "read", MIT: 50}},
		Threads: []hsched.Thread{
			{Name: "Thread1", Kind: hsched.PeriodicThread, Period: 15, Priority: 3,
				Body: []hsched.Step{hsched.TaskStep("acquire", 1, 0.25)}},
			{Name: "Thread2", Kind: hsched.HandlerThread, Realizes: "read", Priority: 1,
				Body: []hsched.Step{hsched.TaskStep("read", 1, 0.8)}},
		},
	}
	integratorClass := &hsched.Class{
		Name:     "SensorIntegration",
		Provided: []hsched.Method{{Name: "read"}},
		Required: []hsched.Method{{Name: "readSensor1"}, {Name: "readSensor2"}},
		Threads: []hsched.Thread{
			{Name: "Thread1", Kind: hsched.HandlerThread, Realizes: "read", Priority: 1,
				Body: []hsched.Step{hsched.TaskStep("serve", 1, 0.8)}},
			{Name: "Thread2", Kind: hsched.PeriodicThread, Period: 50, Priority: 2,
				Body: []hsched.Step{
					hsched.TaskStep("init", 1, 0.8),
					hsched.CallStep("readSensor1"),
					hsched.CallStep("readSensor2"),
					hsched.TaskStepPrio("compute", 1, 0.8, 3),
				}},
		},
	}

	// A 1 Mbit/s bus with 135-bit maximal frames (CAN 2.0A data
	// frame); time unit is the millisecond, so 1000 bits per unit.
	bus := hsched.Bus{Name: "can0", BitsPerUnit: 1000, MaxFrameBits: 135}

	// The analysed traffic owns a 50% synchronous window of a 1 ms
	// elementary cycle — the bus's abstract platform.
	busPlatform, err := bus.Shared(0.5, 1)
	if err != nil {
		log.Fatal(err)
	}

	asm := &hsched.Assembly{
		Platforms: []hsched.Platform{
			{Alpha: 0.4, Delta: 1, Beta: 1}, // node of sensor 1
			{Alpha: 0.4, Delta: 1, Beta: 1}, // node of sensor 2
			{Alpha: 0.2, Delta: 2, Beta: 1}, // integrator node
			busPlatform,                     // the bus
		},
		Instances: []hsched.Instance{
			{Name: "Integrator", Class: integratorClass, Platform: 2},
			{Name: "Sensor1", Class: sensorClass, Platform: 0},
			{Name: "Sensor2", Class: sensorClass, Platform: 1},
		},
		Bindings: []hsched.Binding{
			{Caller: "Integrator", Method: "readSensor1", Callee: "Sensor1", Provided: "read"},
			{Caller: "Integrator", Method: "readSensor2", Callee: "Sensor2", Provided: "read"},
		},
		Messages: &hsched.MessageModel{
			Network:     3,
			RequestWCET: bus.TransmissionTime(135), RequestBCET: bus.TransmissionTime(64),
			ReplyWCET: bus.TransmissionTime(135), ReplyBCET: bus.TransmissionTime(64),
			Priority: 5,
		},
	}

	sys, err := asm.Transactions()
	if err != nil {
		log.Fatal(err)
	}
	// Non-preemptive transmission: a message may find a maximal frame
	// already on the wire.
	if err := hsched.ApplyBusBlocking(sys, 3, bus); err != nil {
		log.Fatal(err)
	}

	fmt.Println("fusion transaction with explicit messages:")
	for j, t := range sys.Transactions[0].Tasks {
		fmt.Printf("  %2d. %-34s Π%d  C=%.3f\n", j+1, t.Name, t.Platform+1, t.WCET)
	}

	res, err := hsched.Analyze(sys, hsched.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedulable: %v\n", res.Schedulable)
	for i := range sys.Transactions {
		fmt.Printf("  %-22s R = %6.2f / D = %g\n",
			sys.Transactions[i].Name, res.TransactionResponse(i), sys.Transactions[i].Deadline)
	}
}
