// Nested: hierarchies deeper than the paper's two levels. A physical
// processor is first divided by a static ARINC-style partition (TDMA);
// inside one partition, two components each receive their own periodic
// server. Each component's abstract platform is the composition of the
// partition's supply with its server's supply — rates multiply, delays
// accumulate (the inner delay dilated by the outer rate) — and the
// holistic analysis runs unchanged on the composed (α, Δ, β) triples.
//
// Run with: go run ./examples/nested
package main

import (
	"fmt"
	"log"

	"hsched"
)

func main() {
	// Level 1: the avionics partition owns a 12 ms slot of every
	// 20 ms major frame on the physical CPU.
	partition := hsched.TDMA{Slot: 12, Frame: 20}
	level1 := partition.Params()
	fmt.Printf("partition platform:        %v\n", level1)

	// Level 2: inside the partition, a control component and a
	// monitoring component each run on a polling server. Server
	// budgets are in partition-supplied cycles.
	control := hsched.PeriodicServer{Q: 2, P: 3}
	monitor := hsched.PeriodicServer{Q: 0.8, P: 4}

	controlPlatform := hsched.ComposePlatforms(level1, control.Params())
	monitorPlatform := hsched.ComposePlatforms(level1, monitor.Params())
	fmt.Printf("control component platform: %v\n", controlPlatform)
	fmt.Printf("monitor component platform: %v\n", monitorPlatform)

	// The control component calls the monitor synchronously once per
	// cycle (a two-platform transaction), plus local periodic load on
	// each platform.
	sys := &hsched.System{
		Platforms: []hsched.Platform{controlPlatform, monitorPlatform},
		Transactions: []hsched.Transaction{
			{Name: "loop", Period: 60, Deadline: 60, Tasks: []hsched.Task{
				{Name: "sense", WCET: 2, BCET: 1.5, Priority: 2, Platform: 0},
				{Name: "check", WCET: 0.5, BCET: 0.3, Priority: 2, Platform: 1},
				{Name: "act", WCET: 1.5, BCET: 1, Priority: 3, Platform: 0},
			}},
			{Name: "filter", Period: 30, Deadline: 40, Tasks: []hsched.Task{
				{Name: "filter", WCET: 3, BCET: 2, Priority: 1, Platform: 0},
			}},
			{Name: "health", Period: 120, Deadline: 120, Tasks: []hsched.Task{
				{Name: "health", WCET: 2, BCET: 1, Priority: 1, Platform: 1},
			}},
		},
	}
	res, err := hsched.Analyze(sys, hsched.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i, tr := range sys.Transactions {
		fmt.Printf("%-8s R = %7.2f / D = %g\n", tr.Name, res.TransactionResponse(i), tr.Deadline)
	}
	fmt.Printf("schedulable on the three-level hierarchy: %v\n", res.Schedulable)

	// Cross-check: the composed linear model must lower-bound the true
	// nested supply at a few sample windows.
	for _, t := range []float64{5, 10, 20, 40, 80} {
		nested := control.MinSupply(partition.MinSupply(t))
		linear := controlPlatform.MinSupply(t)
		if linear > nested+1e-9 {
			log.Fatalf("composition unsound at t=%v: linear %v > nested %v", t, linear, nested)
		}
	}
	fmt.Println("linear composition verified against the exact nested supply")
}
