// Sensorfusion: the full component-based workflow of the paper's
// Section 2 — define component classes with provided/required
// interfaces and threads, integrate them into an assembly, check the
// interface activation patterns (MITs), derive the transaction set,
// analyse it, and validate the bounds by simulation on concrete
// polling servers.
//
// Run with: go run ./examples/sensorfusion
package main

import (
	"fmt"
	"log"

	"hsched"
)

func main() {
	// A sensor node (Figure 1): a periodic acquisition thread and a
	// handler realising the provided read() method (MIT 50 ms).
	sensorClass := &hsched.Class{
		Name:     "SensorReading",
		Provided: []hsched.Method{{Name: "read", MIT: 50}},
		Threads: []hsched.Thread{
			{Name: "Thread1", Kind: hsched.PeriodicThread, Period: 15, Priority: 3,
				Body: []hsched.Step{hsched.TaskStep("acquire", 1, 0.25)}},
			{Name: "Thread2", Kind: hsched.HandlerThread, Realizes: "read", Priority: 1,
				Body: []hsched.Step{hsched.TaskStep("read", 1, 0.8)}},
		},
	}

	// The integrator (Figure 2): a handler serving its own read(), and
	// a periodic thread that fuses the two sensors via synchronous RPC.
	integratorClass := &hsched.Class{
		Name:     "SensorIntegration",
		Provided: []hsched.Method{{Name: "read"}},
		Required: []hsched.Method{{Name: "readSensor1"}, {Name: "readSensor2"}},
		Threads: []hsched.Thread{
			{Name: "Thread1", Kind: hsched.HandlerThread, Realizes: "read", Priority: 1,
				Body: []hsched.Step{hsched.TaskStep("serve", 1, 0.8)}},
			{Name: "Thread2", Kind: hsched.PeriodicThread, Period: 50, Priority: 2,
				Body: []hsched.Step{
					hsched.TaskStep("init", 1, 0.8),
					hsched.CallStep("readSensor1"),
					hsched.CallStep("readSensor2"),
					hsched.TaskStepPrio("compute", 1, 0.8, 3),
				}},
		},
	}

	background := &hsched.Class{
		Name: "Background",
		Threads: []hsched.Thread{
			{Name: "Thread1", Kind: hsched.PeriodicThread, Period: 70, Priority: 1,
				Body: []hsched.Step{hsched.TaskStep("work", 7, 5)}},
		},
	}

	asm := &hsched.Assembly{
		Platforms: []hsched.Platform{
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.2, Delta: 2, Beta: 1},
		},
		Instances: []hsched.Instance{
			{Name: "Integrator", Class: integratorClass, Platform: 2},
			{Name: "Sensor1", Class: sensorClass, Platform: 0},
			{Name: "Sensor2", Class: sensorClass, Platform: 1},
			{Name: "Background", Class: background, Platform: 2},
		},
		Bindings: []hsched.Binding{
			{Caller: "Integrator", Method: "readSensor1", Callee: "Sensor1", Provided: "read"},
			{Caller: "Integrator", Method: "readSensor2", Callee: "Sensor2", Provided: "read"},
		},
	}

	// Interface admission: no provided method may be invoked faster
	// than its declared MIT.
	if violations, err := asm.CheckMITs(); err != nil {
		log.Fatal(err)
	} else if len(violations) > 0 {
		log.Fatalf("MIT violations: %v", violations)
	}

	// Section 2.4: components → transactions.
	sys, err := asm.Transactions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived transactions:")
	for i, tr := range sys.Transactions {
		fmt.Printf("  Γ%d %-22s T=%-3g tasks=%d\n", i+1, tr.Name, tr.Period, len(tr.Tasks))
	}

	// Section 3: holistic analysis.
	res, err := hsched.Analyze(sys, hsched.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedulable: %v\n", res.Schedulable)
	for i := range sys.Transactions {
		fmt.Printf("  Γ%d bound R = %6.2f / D = %g\n",
			i+1, res.TransactionResponse(i), sys.Transactions[i].Deadline)
	}

	// Validation: run the system on polling servers realising exactly
	// the analysed platforms; observed responses must stay below the
	// bounds.
	servers := make([]hsched.Server, len(sys.Platforms))
	for m, p := range sys.Platforms {
		if servers[m], err = hsched.ServerFor(p, 0.3*float64(m)); err != nil {
			log.Fatal(err)
		}
	}
	simres, err := hsched.Simulate(sys, servers, hsched.SimConfig{Horizon: 4200, Step: 0.005})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulation on concrete polling servers:")
	for i := range sys.Transactions {
		fmt.Printf("  Γ%d observed max R = %6.2f (bound %6.2f), misses %d\n",
			i+1, simres.MaxEndToEnd(i), res.TransactionResponse(i), simres.Misses[i])
	}
}
