// Edfcomponent: the local-EDF extension the paper sketches in
// Section 2.1 ("our methodology can be easily extended to other local
// schedulers like EDF"). A component's sporadic workload is admitted
// onto an abstract platform by the demand-bound/supply-bound test; we
// then search the minimal server bandwidth that keeps it schedulable
// under EDF and under fixed priorities, and validate the EDF admission
// by simulation.
//
// Run with: go run ./examples/edfcomponent
package main

import (
	"fmt"
	"log"

	"hsched"
)

func main() {
	// A component's internal workload: three sporadic control loops.
	workload := []hsched.EDFTask{
		{Name: "inner", WCET: 2, Period: 10},
		{Name: "outer", WCET: 4.5, Period: 14},
		{Name: "log", WCET: 1, Period: 40},
	}

	// The reservation granularity of this node's global scheduler.
	const serverPeriod = 1.25
	family := func(alpha float64) hsched.Supplier {
		if alpha >= 1 {
			return hsched.DedicatedPlatform()
		}
		return hsched.PeriodicServer{Q: alpha * serverPeriod, P: serverPeriod}
	}

	// Admission on a concrete 80% server.
	srv := hsched.PeriodicServer{Q: 1, P: serverPeriod}
	adm, err := hsched.EDFSchedulable(workload, srv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("80%% server: EDF-schedulable = %v (checked %d points up to horizon %.1f)\n",
		adm.Schedulable, adm.Checked, adm.Horizon)

	// Minimal bandwidth under local EDF.
	alphaEDF, err := hsched.EDFMinimalRate(workload, family, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal EDF bandwidth: α = %.3f (utilisation %.3f)\n",
		alphaEDF, utilization(workload))

	// Minimal bandwidth under local fixed priorities (rate-monotonic),
	// via the holistic analysis and the design search.
	sys := &hsched.System{Platforms: []hsched.Platform{hsched.DedicatedPlatform()}}
	for i, task := range workload {
		sys.Transactions = append(sys.Transactions, hsched.Transaction{
			Name: task.Name, Period: task.Period, Deadline: task.Period,
			Tasks: []hsched.Task{{
				Name: task.Name, WCET: task.WCET, BCET: task.WCET,
				Priority: len(workload) - i, // rate-monotonic: tasks are period-sorted
			}},
		})
	}
	res, err := hsched.MinimizeBandwidth(sys,
		[]hsched.ServerFamily{hsched.PollingFamily(serverPeriod)},
		hsched.DesignOptions{Tolerance: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal FP bandwidth:  α = %.3f\n", res.Alphas[0])
	fmt.Printf("EDF saves %.1f%% of the platform bandwidth on this workload\n",
		100*(res.Alphas[0]-alphaEDF)/res.Alphas[0])

	// Validate the EDF admission by simulation on the concrete server.
	concrete, err := hsched.ServerFor(srv.Params(), 0.4)
	if err != nil {
		log.Fatal(err)
	}
	simres, err := hsched.Simulate(sys, []hsched.Server{concrete}, hsched.SimConfig{
		Horizon: 1400, Step: 0.005,
		Policies: []hsched.LocalPolicy{hsched.EDFPolicy},
	})
	if err != nil {
		log.Fatal(err)
	}
	misses := 0
	for _, m := range simres.Misses {
		misses += m
	}
	fmt.Printf("simulation under local EDF on the 80%% server: %d deadline misses\n", misses)
}

func utilization(tasks []hsched.EDFTask) float64 {
	u := 0.0
	for _, t := range tasks {
		u += t.WCET / t.Period
	}
	return u
}
