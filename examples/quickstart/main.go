// Quickstart: build the paper's transaction set by hand (Table 1 /
// Figure 5), analyse it with the holistic analysis, and print the
// per-transaction verdicts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hsched"
)

func main() {
	// Three abstract computing platforms (Table 2): two sensor nodes
	// at 40% bandwidth and the integrator node at 20%.
	sys := &hsched.System{
		Platforms: []hsched.Platform{
			{Alpha: 0.4, Delta: 1, Beta: 1}, // Π1, sensor 1
			{Alpha: 0.4, Delta: 1, Beta: 1}, // Π2, sensor 2
			{Alpha: 0.2, Delta: 2, Beta: 1}, // Π3, integrator
		},
		Transactions: []hsched.Transaction{
			{
				// The fusion pipeline: init on the integrator, read
				// both sensors remotely, compute the fused value.
				Name: "fusion", Period: 50, Deadline: 50,
				Tasks: []hsched.Task{
					{Name: "init", WCET: 1, BCET: 0.8, Priority: 2, Platform: 2},
					{Name: "readSensor1", WCET: 1, BCET: 0.8, Priority: 1, Platform: 0},
					{Name: "readSensor2", WCET: 1, BCET: 0.8, Priority: 1, Platform: 1},
					{Name: "compute", WCET: 1, BCET: 0.8, Priority: 3, Platform: 2},
				},
			},
			{Name: "acquire1", Period: 15, Deadline: 15,
				Tasks: []hsched.Task{{Name: "sample1", WCET: 1, BCET: 0.25, Priority: 3, Platform: 0}}},
			{Name: "acquire2", Period: 15, Deadline: 15,
				Tasks: []hsched.Task{{Name: "sample2", WCET: 1, BCET: 0.25, Priority: 3, Platform: 1}}},
			{Name: "background", Period: 70, Deadline: 70,
				Tasks: []hsched.Task{{Name: "work", WCET: 7, BCET: 5, Priority: 1, Platform: 2}}},
		},
	}

	res, err := hsched.Analyze(sys, hsched.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i, tr := range sys.Transactions {
		fmt.Printf("%-12s end-to-end R = %6.2f  deadline = %g\n",
			tr.Name, res.TransactionResponse(i), tr.Deadline)
	}
	fmt.Printf("schedulable: %v (holistic iterations: %d)\n", res.Schedulable, res.Iterations)
}
