// Designopt: the platform-parameter optimisation the paper lists as
// future work (Section 5). Instead of taking the (α, Δ, β) triples of
// Table 2 as given, we search — within periodic-server families of
// fixed periods — the minimal per-platform bandwidths that keep the
// sensor-fusion system schedulable, and compare against the paper's
// provisioning.
//
// Run with: go run ./examples/designopt
package main

import (
	"fmt"
	"log"

	"hsched"
)

func main() {
	sys := &hsched.System{
		Platforms: make([]hsched.Platform, 3), // replaced by the search
		Transactions: []hsched.Transaction{
			{Name: "fusion", Period: 50, Deadline: 50,
				Tasks: []hsched.Task{
					{Name: "init", WCET: 1, BCET: 0.8, Priority: 2, Platform: 2},
					{Name: "readSensor1", WCET: 1, BCET: 0.8, Priority: 1, Platform: 0},
					{Name: "readSensor2", WCET: 1, BCET: 0.8, Priority: 1, Platform: 1},
					{Name: "compute", WCET: 1, BCET: 0.8, Priority: 3, Platform: 2},
				}},
			{Name: "acquire1", Period: 15, Deadline: 15,
				Tasks: []hsched.Task{{Name: "sample1", WCET: 1, BCET: 0.25, Priority: 3, Platform: 0}}},
			{Name: "acquire2", Period: 15, Deadline: 15,
				Tasks: []hsched.Task{{Name: "sample2", WCET: 1, BCET: 0.25, Priority: 3, Platform: 1}}},
			{Name: "background", Period: 70, Deadline: 70,
				Tasks: []hsched.Task{{Name: "work", WCET: 7, BCET: 5, Priority: 1, Platform: 2}}},
		},
	}
	// Placeholder platforms so validation passes before the search.
	for m := range sys.Platforms {
		sys.Platforms[m] = hsched.DedicatedPlatform()
	}

	// One periodic-server family per platform; the period fixes the
	// granularity of the reservation (smaller period → smaller delay
	// at equal bandwidth, but more context switching in a real system).
	families := []hsched.ServerFamily{
		hsched.PollingFamily(0.8333), // sensor node 1
		hsched.PollingFamily(0.8333), // sensor node 2
		hsched.PollingFamily(1.25),   // integrator node
	}

	res, err := hsched.MinimizeBandwidth(sys, families, hsched.DesignOptions{})
	if err != nil {
		log.Fatal(err)
	}

	paper := []float64{0.4, 0.4, 0.2}
	fmt.Println("minimal bandwidths keeping the system schedulable:")
	for m, a := range res.Alphas {
		fmt.Printf("  Π%d: α = %.3f (paper provisioned %.1f) → %v\n", m+1, a, paper[m], res.Platforms[m])
	}
	fmt.Printf("total bandwidth: %.3f (paper: 1.0)\n", res.TotalBandwidth)
	fmt.Printf("schedulable at the optimum: %v, R(fusion) = %.2f / 50\n",
		res.Analysis.Schedulable, res.Analysis.TransactionResponse(0))
}
