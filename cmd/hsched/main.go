// Command hsched analyses the schedulability of a hierarchical
// scheduling system: it loads a JSON system specification (or the
// paper's built-in example), runs the holistic analysis of Lorente,
// Lipari & Bini (IPDPS 2006) and prints per-task response-time bounds
// and the verdict.
//
// Usage:
//
//	hsched [-spec system.json] [-exact] [-static] [-tight] [-dump] [-sensitivity] [-workers n]
//
// Exit status is 0 when the system is schedulable, 2 when it is not,
// and 1 on errors.
package main

import (
	"os"

	"hsched/internal/cli"
)

func main() {
	os.Exit(cli.Analyze(os.Args[1:], os.Stdout, os.Stderr))
}
