// Command hsched analyses the schedulability of a hierarchical
// scheduling system: it loads a JSON system specification (or the
// paper's built-in example), runs the holistic analysis of Lorente,
// Lipari & Bini (IPDPS 2006) and prints per-task response-time bounds
// and the verdict.
//
// Usage:
//
//	hsched [-spec system.json] [-exact] [-static] [-tight] [-dump] [-sensitivity] [-workers n] [-cache] [-delta]
//	hsched assign [-spec system.json] [-policy rm|dm|hopa|audsley] [-iterations n] [-exact] [-workers n] [-cache] [-delta]
//	hsched bench [-workload default|exact-heavy|assign] [-systems n] [-mutations n] [-queries n] [-goroutines n] [-shards n] [-capacity n] [-exact] [-seed n] [-util u] [-delta] [-json] [-remote URL] [-pipeline n] [-codec json|binary]
//	hsched serve [-addr host:port] [-shards n] [-cache n] [-delta] [-max-inflight n] [-max-sessions n] [-parse-memo n] [-workers n] [-drain d]
//
// The assign subcommand searches a local fixed-priority assignment
// (the paper leaves it to the component designer): the classical
// monotonic rankings, the HOPA heuristic, or an Audsley-style optimal
// search, with the holistic analysis as the oracle — routed through a
// memoised analysis service whose statistics -cache prints.
//
// The bench subcommand measures the memoised analysis service on a
// generated workload: admission-control mutation chains (default),
// exact scenario sweeps (exact-heavy), or full priority-assignment
// searches (assign); it reports throughput, cache hit rate,
// incremental (delta) hit rate and p50/p99 query latency; -json emits
// a machine-readable report. With -remote URL the same workload is
// fired over HTTP at a running `hsched serve` instance instead of the
// in-process service (-pipeline n keeps n requests in flight per
// connection).
//
// The serve subcommand runs the HTTP/JSON analysis server of
// internal/httpd: POST /v1/analyze, /v1/assign and /v1/minimize over
// one shared memoised service, per-client probe sessions under
// /v1/session, per-request deadlines via X-Deadline-Ms, and GET
// /v1/stats. SIGTERM drains gracefully.
//
// Exit status is 0 when the system is schedulable (or the benchmark
// succeeded, or the server drained cleanly), 2 when the system is not
// schedulable, and 1 on errors.
package main

import (
	"os"

	"hsched/internal/cli"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "bench":
			os.Exit(cli.Bench(args[1:], os.Stdout, os.Stderr))
		case "assign":
			os.Exit(cli.Assign(args[1:], os.Stdout, os.Stderr))
		case "serve":
			os.Exit(cli.Serve(args[1:], os.Stdout, os.Stderr))
		}
	}
	os.Exit(cli.Analyze(args, os.Stdout, os.Stderr))
}
