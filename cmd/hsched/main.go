// Command hsched analyses the schedulability of a hierarchical
// scheduling system: it loads a JSON system specification (or the
// paper's built-in example), runs the holistic analysis of Lorente,
// Lipari & Bini (IPDPS 2006) and prints per-task response-time bounds
// and the verdict.
//
// Usage:
//
//	hsched [-spec system.json] [-exact] [-static] [-tight] [-dump] [-sensitivity] [-workers n] [-cache] [-delta]
//	hsched bench [-systems n] [-mutations n] [-queries n] [-goroutines n] [-shards n] [-capacity n] [-exact] [-seed n] [-util u] [-delta] [-json]
//
// The bench subcommand measures the memoised analysis service on a
// generated admission-control workload (chains of one-parameter-apart
// systems): throughput, cache hit rate, incremental (delta) hit rate
// and p50/p99 query latency; -json emits a machine-readable report.
//
// Exit status is 0 when the system is schedulable (or the benchmark
// succeeded), 2 when the system is not schedulable, and 1 on errors.
package main

import (
	"os"

	"hsched/internal/cli"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "bench" {
		os.Exit(cli.Bench(args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(cli.Analyze(args, os.Stdout, os.Stderr))
}
