// Command hsim simulates a hierarchical scheduling system on concrete
// budget servers realising its abstract platforms and reports observed
// response times next to the analysed bounds.
//
// Usage:
//
//	hsim [-spec system.json] [-horizon T] [-step dt]
//	     [-mode worst|best|random] [-policy fp|edf] [-seed n]
//	     [-phase x] [-trace N]
//
// Exit status is 0 with no misses, 2 when deadline misses were
// observed, and 1 on errors.
package main

import (
	"os"

	"hsched/internal/cli"
)

func main() {
	os.Exit(cli.Simulate(os.Args[1:], os.Stdout, os.Stderr))
}
