// Command hsexper regenerates every table and figure of the paper and
// the ablation studies of DESIGN.md.
//
// Usage:
//
//	hsexper            # everything
//	hsexper -table 3   # one table (1, 2 or 3)
//	hsexper -figure 3  # one figure (3 or 5)
//	hsexper -ablation exact|pessimism|soundness|design|network|edf|acceptance
package main

import (
	"os"

	"hsched/internal/cli"
)

func main() {
	os.Exit(cli.Exper(os.Args[1:], os.Stdout, os.Stderr))
}
