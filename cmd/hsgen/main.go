// Command hsgen draws a random hierarchical scheduling system (random
// platforms realisable by periodic servers, UUniFast-distributed
// utilisations, log-uniform periods) and prints it as a JSON
// specification consumable by hsched and hsim.
//
// Usage:
//
//	hsgen [-seed n] [-platforms M] [-transactions n] [-chain k]
//	      [-util u] [-alpha-min a] [-alpha-max b] [-o file.json]
package main

import (
	"os"

	"hsched/internal/cli"
)

func main() {
	os.Exit(cli.Generate(os.Args[1:], os.Stdout, os.Stderr))
}
