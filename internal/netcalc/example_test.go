package netcalc_test

import (
	"fmt"

	"hsched/internal/netcalc"
	"hsched/internal/platform"
)

// Example bounds the delay of a sporadic message flow on an abstract
// platform using the paper's network-calculus analogy: the platform's
// minimum supply is the rate-latency server β_{α,Δ}.
func Example() {
	flow := netcalc.Sporadic(1, 10) // 1 cycle every ≥10 time units
	server := netcalc.FromPlatform(platform.Params{Alpha: 0.2, Delta: 2, Beta: 1})
	d, err := netcalc.DelayBound(flow, server)
	if err != nil {
		panic(err)
	}
	b, err := netcalc.BacklogBound(flow, server)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delay ≤ %g, backlog ≤ %g\n", d, b)
	// Output:
	// delay ≤ 7, backlog ≤ 1.2
}

// ExampleLeftoverService bounds a low-priority flow under a
// high-priority aggregate via the blind-multiplexing residual server.
func ExampleLeftoverService() {
	s := netcalc.FromPlatform(platform.Params{Alpha: 0.5, Delta: 1})
	hp := netcalc.Sporadic(1, 10)
	left, err := netcalc.LeftoverService(s, hp)
	if err != nil {
		panic(err)
	}
	d, err := netcalc.DelayBound(netcalc.Sporadic(2, 20), left)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rate %.1f, latency %.2f, delay ≤ %.2f\n", left.Rate, left.Latency, d)
	// Output:
	// rate 0.4, latency 3.75, delay ≤ 8.75
}
