package netcalc_test

import (
	"math"
	"testing"
	"testing/quick"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/netcalc"
	"hsched/internal/platform"
)

func TestCurveEvaluation(t *testing.T) {
	a := netcalc.Arrival{Sigma: 2, Rho: 0.5}
	if got := a.At(0); got != 0 {
		t.Errorf("α(0) = %v", got)
	}
	if got := a.At(4); got != 4 {
		t.Errorf("α(4) = %v, want 4", got)
	}
	s := netcalc.Service{Rate: 0.5, Latency: 3}
	if got := s.At(2); got != 0 {
		t.Errorf("β(2) = %v, want 0", got)
	}
	if got := s.At(7); got != 2 {
		t.Errorf("β(7) = %v, want 2", got)
	}
}

func TestDelayAndBacklogBounds(t *testing.T) {
	a := netcalc.Sporadic(1, 10) // σ=1, ρ=0.1
	s := netcalc.FromPlatform(platform.Params{Alpha: 0.2, Delta: 2, Beta: 1})
	d, err := netcalc.DelayBound(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-7) > 1e-12 { // 2 + 1/0.2
		t.Errorf("delay bound = %v, want 7", d)
	}
	b, err := netcalc.BacklogBound(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-1.2) > 1e-12 { // 1 + 0.1·2
		t.Errorf("backlog bound = %v, want 1.2", b)
	}
	if _, err := netcalc.DelayBound(netcalc.Arrival{Sigma: 1, Rho: 0.5}, s); err == nil {
		t.Errorf("overloaded server accepted")
	}
}

// TestDelayBoundMatchesAnalysis: for a single highest-priority task,
// the network-calculus delay bound Δ + C/α coincides with the
// response-time analysis on the same platform — the executable version
// of the paper's "analogy with the network calculus".
func TestDelayBoundMatchesAnalysis(t *testing.T) {
	f := func(cRaw, pRaw, aRaw, dRaw uint16) bool {
		c := 0.1 + float64(cRaw%100)/20
		period := 2*c + float64(pRaw%400)/4
		alpha := 0.1 + 0.9*float64(aRaw%997)/997
		delta := float64(dRaw%100) / 10
		if c/period >= alpha {
			return true // platform cannot sustain the task; both sides reject
		}

		p := platform.Params{Alpha: alpha, Delta: delta}
		sys := &model.System{
			Platforms: []platform.Params{p},
			Transactions: []model.Transaction{{
				Period: period, Deadline: 1e9,
				Tasks: []model.Task{{WCET: c, BCET: c, Priority: 1}},
			}},
		}
		res, err := analysis.Analyze(sys, analysis.Options{})
		if err != nil {
			return false
		}
		d, err := netcalc.DelayBound(netcalc.Sporadic(c, period), netcalc.FromPlatform(p))
		if err != nil {
			return false
		}
		return math.Abs(res.TransactionResponse(0)-d) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLeftoverServiceCrossCheck: the residual-service delay bound for
// a low-priority task under a high-priority sporadic aggregate is an
// independent upper bound on its response time. The fluid
// network-calculus bound is coarser than the job-granular RTA, so on
// the same two-task system the RTA result must not exceed it; and the
// bound can never undercut the zero-interference service time.
func TestLeftoverServiceCrossCheck(t *testing.T) {
	p := platform.Params{Alpha: 0.5, Delta: 1, Beta: 0}
	hi := netcalc.Sporadic(1, 10)
	lo := netcalc.Sporadic(2, 20)
	left, err := netcalc.LeftoverService(netcalc.FromPlatform(p), hi)
	if err != nil {
		t.Fatal(err)
	}
	d, err := netcalc.DelayBound(lo, left)
	if err != nil {
		t.Fatal(err)
	}
	if d < p.ServiceTime(2)-1e-9 {
		t.Errorf("leftover delay bound %v below zero-interference service time %v", d, p.ServiceTime(2))
	}

	// And the RTA on the same two-task system must not exceed the
	// network-calculus bound by more than its own job-granularity
	// tightening (RTA is tighter: it charges whole jobs, netcalc the
	// fluid aggregate... fluid can only be more pessimistic here).
	sys := &model.System{
		Platforms: []platform.Params{p},
		Transactions: []model.Transaction{
			{Period: 10, Deadline: 1e9, Tasks: []model.Task{{WCET: 1, BCET: 1, Priority: 2}}},
			{Period: 20, Deadline: 1e9, Tasks: []model.Task{{WCET: 2, BCET: 2, Priority: 1}}},
		},
	}
	res, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TransactionResponse(1); got > d+1e-9 {
		t.Errorf("RTA bound %v exceeds network-calculus bound %v", got, d)
	}
}

func TestOutputBurstiness(t *testing.T) {
	a := netcalc.Arrival{Sigma: 1, Rho: 0.1}
	s := netcalc.Service{Rate: 0.4, Latency: 5}
	out, err := netcalc.Output(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Sigma-1.5) > 1e-12 || out.Rho != 0.1 {
		t.Errorf("output = %+v, want σ=1.5 ρ=0.1", out)
	}
}

func TestConvolve(t *testing.T) {
	a := netcalc.Service{Rate: 0.5, Latency: 2}
	b := netcalc.Service{Rate: 0.3, Latency: 4}
	c := netcalc.Convolve(a, b)
	if c.Rate != 0.3 || c.Latency != 6 {
		t.Errorf("convolution = %+v, want (0.3, 6)", c)
	}
}

func TestAggregate(t *testing.T) {
	sum := netcalc.Sporadic(1, 10).Add(netcalc.Sporadic(2, 20))
	if sum.Sigma != 3 || math.Abs(sum.Rho-0.2) > 1e-12 {
		t.Errorf("aggregate = %+v", sum)
	}
}

func TestValidationErrors(t *testing.T) {
	if err := (netcalc.Arrival{Sigma: -1}).Validate(); err == nil {
		t.Errorf("negative burst accepted")
	}
	if err := (netcalc.Service{Rate: 0}).Validate(); err == nil {
		t.Errorf("zero rate accepted")
	}
	if _, err := netcalc.LeftoverService(netcalc.Service{Rate: 0.5}, netcalc.Arrival{Rho: 0.5}); err == nil {
		t.Errorf("saturated leftover accepted")
	}
}
