// Package netcalc implements the fragment of network calculus the
// paper leans on (Le Boudec & Thiran, cited as [6]): token-bucket
// arrival curves, rate-latency service curves, and the classic delay,
// backlog and output-burstiness bounds. Section 2.3 of the paper names
// Δ and β "delay" and "burstiness" precisely "for their analogy with
// the network calculus"; this package makes the analogy executable —
// an abstract platform (α, Δ, β) is the rate-latency server β_{α,Δ}
// for its lower bound — and provides an independent cross-check of the
// response-time analysis in the single-flow case.
package netcalc

import (
	"fmt"
	"math"

	"hsched/internal/platform"
)

// Arrival is the token-bucket (leaky-bucket) arrival curve
// α(t) = σ + ρ·t: at most σ + ρ·t cycles of work arrive in any window
// of length t.
type Arrival struct {
	// Sigma is the burst σ ≥ 0.
	Sigma float64
	// Rho is the sustained rate ρ ≥ 0.
	Rho float64
}

// Validate reports whether the curve is well-formed.
func (a Arrival) Validate() error {
	if a.Sigma < 0 || math.IsNaN(a.Sigma) || math.IsInf(a.Sigma, 0) {
		return fmt.Errorf("netcalc: burst σ = %v must be finite and non-negative", a.Sigma)
	}
	if a.Rho < 0 || math.IsNaN(a.Rho) || math.IsInf(a.Rho, 0) {
		return fmt.Errorf("netcalc: rate ρ = %v must be finite and non-negative", a.Rho)
	}
	return nil
}

// At evaluates the curve: σ + ρ·t for t > 0, 0 at t ≤ 0.
func (a Arrival) At(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return a.Sigma + a.Rho*t
}

// Add aggregates two flows: bursts and rates add.
func (a Arrival) Add(b Arrival) Arrival {
	return Arrival{Sigma: a.Sigma + b.Sigma, Rho: a.Rho + b.Rho}
}

// Sporadic returns the arrival curve of a sporadic task with WCET c
// and minimum inter-arrival time p: σ = c, ρ = c/p (the tightest
// token bucket dominating the staircase c·⌈t/p⌉).
func Sporadic(c, p float64) Arrival {
	return Arrival{Sigma: c, Rho: c / p}
}

// Service is the rate-latency service curve β(t) = R·max(0, t−T): the
// server guarantees at least R·(t−T) cycles in any backlogged window
// of length t.
type Service struct {
	// Rate is the guaranteed rate R > 0.
	Rate float64
	// Latency is the worst-case initial latency T ≥ 0.
	Latency float64
}

// Validate reports whether the curve is well-formed.
func (s Service) Validate() error {
	if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("netcalc: service rate %v must be positive and finite", s.Rate)
	}
	if s.Latency < 0 || math.IsNaN(s.Latency) || math.IsInf(s.Latency, 0) {
		return fmt.Errorf("netcalc: latency %v must be finite and non-negative", s.Latency)
	}
	return nil
}

// At evaluates the curve: R·max(0, t−T).
func (s Service) At(t float64) float64 {
	if t <= s.Latency {
		return 0
	}
	return s.Rate * (t - s.Latency)
}

// FromPlatform converts an abstract computing platform to the
// rate-latency server of its minimum supply bound: β_{α,Δ}. (The
// platform's β plays no role in worst-case service — it bounds the
// best case.)
func FromPlatform(p platform.Params) Service {
	return Service{Rate: p.Alpha, Latency: p.Delta}
}

// Convolve concatenates two servers traversed in sequence (min-plus
// convolution of rate-latency curves): the rate is the bottleneck,
// the latencies add.
func Convolve(a, b Service) Service {
	return Service{Rate: math.Min(a.Rate, b.Rate), Latency: a.Latency + b.Latency}
}

// DelayBound returns the classic tight delay bound of a token-bucket
// flow on a rate-latency server — the horizontal deviation
// h(α, β) = T + σ/R — or an error when the server cannot sustain the
// flow (ρ > R).
func DelayBound(a Arrival, s Service) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if a.Rho > s.Rate {
		return 0, fmt.Errorf("netcalc: flow rate ρ = %v exceeds service rate R = %v", a.Rho, s.Rate)
	}
	return s.Latency + a.Sigma/s.Rate, nil
}

// BacklogBound returns the vertical deviation v(α, β) = σ + ρ·T: the
// largest backlog of the flow in the server.
func BacklogBound(a Arrival, s Service) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if a.Rho > s.Rate {
		return 0, fmt.Errorf("netcalc: flow rate ρ = %v exceeds service rate R = %v", a.Rho, s.Rate)
	}
	return a.Sigma + a.Rho*s.Latency, nil
}

// Output returns the arrival curve of the flow after traversing the
// server: the rate is preserved and the burst grows by ρ·T.
func Output(a Arrival, s Service) (Arrival, error) {
	if _, err := BacklogBound(a, s); err != nil {
		return Arrival{}, err
	}
	return Arrival{Sigma: a.Sigma + a.Rho*s.Latency, Rho: a.Rho}, nil
}

// LeftoverService returns the service left for a lower-priority flow
// after a higher-priority aggregate has been served (the blind
// multiplexing / strict-priority residual): rate R−ρ, latency
// (R·T + σ)/(R − ρ). Errors when the aggregate saturates the server.
func LeftoverService(s Service, hp Arrival) (Service, error) {
	if err := s.Validate(); err != nil {
		return Service{}, err
	}
	if err := hp.Validate(); err != nil {
		return Service{}, err
	}
	if hp.Rho >= s.Rate {
		return Service{}, fmt.Errorf("netcalc: higher-priority rate %v saturates service rate %v", hp.Rho, s.Rate)
	}
	rate := s.Rate - hp.Rho
	return Service{
		Rate:    rate,
		Latency: (s.Rate*s.Latency + hp.Sigma) / rate,
	}, nil
}
