// Package edf implements the local-EDF extension the paper sketches in
// Section 2.1 ("our methodology can be easily extended to other local
// schedulers like EDF"): a component whose local scheduler is EDF is
// schedulable on an abstract computing platform Π exactly when its
// demand bound function never exceeds the platform's minimum supply,
//
//	∀t > 0 : dbf(t) ≤ ZminΠ(t),
//
// the compositional test of the periodic resource model (Shin & Lee,
// cited as [12] in the paper), here evaluated against either the exact
// supply curve of a concrete mechanism or its linear (α, Δ, β) bound.
//
// The test applies to components whose workload is a set of
// independent sporadic tasks (single-task transactions); transactions
// spanning multiple platforms remain the domain of package analysis.
package edf

import (
	"fmt"
	"math"
	"sort"

	"hsched/internal/platform"
)

// Task is one sporadic task of an EDF-scheduled component.
type Task struct {
	// Name identifies the task in reports.
	Name string
	// WCET is the worst-case execution demand per job, in cycles.
	WCET float64
	// Period is the minimum inter-arrival time of jobs.
	Period float64
	// Deadline is the relative deadline; 0 defaults to the period.
	Deadline float64
}

func (t Task) deadline() float64 {
	if t.Deadline == 0 {
		return t.Period
	}
	return t.Deadline
}

// Validate reports whether the task parameters are well-formed.
func (t Task) Validate() error {
	if !(t.WCET > 0) || math.IsInf(t.WCET, 0) {
		return fmt.Errorf("edf: task %q: WCET %v must be positive and finite", t.Name, t.WCET)
	}
	if !(t.Period > 0) || math.IsInf(t.Period, 0) {
		return fmt.Errorf("edf: task %q: period %v must be positive and finite", t.Name, t.Period)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("edf: task %q: deadline %v must be non-negative", t.Name, t.Deadline)
	}
	return nil
}

// DemandBound returns dbf(t): the maximum execution demand of jobs
// with both release and deadline inside any window of length t
// (Baruah's demand bound function).
func DemandBound(tasks []Task, t float64) float64 {
	sum := 0.0
	for _, task := range tasks {
		n := math.Floor((t-task.deadline())/task.Period) + 1
		if n > 0 {
			sum += n * task.WCET
		}
	}
	return sum
}

// Utilization returns Σ C/T.
func Utilization(tasks []Task) float64 {
	u := 0.0
	for _, task := range tasks {
		u += task.WCET / task.Period
	}
	return u
}

// Result is the outcome of an EDF admission test.
type Result struct {
	// Schedulable reports the verdict.
	Schedulable bool
	// CriticalTime is the first checkpoint where demand exceeded
	// supply (0 when schedulable).
	CriticalTime float64
	// Demand and Supply are the values at the critical time.
	Demand, Supply float64
	// Horizon is the largest checkpoint examined.
	Horizon float64
	// Checked counts the examined checkpoints.
	Checked int
}

// Schedulable tests a set of independent sporadic tasks under local
// EDF on the platform with the given minimum supply (pass a concrete
// Supplier for the exact curve, or platform.Params for the linear
// bound). The testing set is the deadline arrival sequence
// {k·Ti + Di} up to a horizon after which the linear supply lower
// bound provably dominates the demand.
func Schedulable(tasks []Task, p platform.Supplier) (*Result, error) {
	if len(tasks) == 0 {
		return &Result{Schedulable: true}, nil
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	u := Utilization(tasks)
	rate := p.Rate()
	if u > rate {
		return &Result{Schedulable: false, CriticalTime: math.Inf(1), Demand: u, Supply: rate}, nil
	}

	// Linear supply lower bound α(t−Δ) extracted from the supplier;
	// beyond t* with dbf(t) ≤ Σ C + u·t ≤ α(t−Δ) the test always
	// passes. Estimate Δ numerically from a few samples (exact for
	// Params and for the mechanisms in package platform, whose Zmin is
	// ≥ the linear bound everywhere).
	var sumC, maxD float64
	for _, t := range tasks {
		sumC += t.WCET
		if d := t.deadline(); d > maxD {
			maxD = d
		}
	}
	delta := 0.0
	probe := maxD
	for _, t := range tasks {
		if t.Period+t.deadline() > probe {
			probe = t.Period + t.deadline()
		}
	}
	for i := 1; i <= 64; i++ {
		x := probe * float64(i) / 8
		if d := x - p.MinSupply(x)/rate; d > delta {
			delta = d
		}
	}
	horizon := maxD
	if u < rate {
		if h := (sumC + rate*delta) / (rate - u); h > horizon {
			horizon = h
		}
	} else {
		// u == rate: fall back to a hyperperiod-scale horizon.
		horizon = probe * float64(len(tasks)+1) * 4
	}

	res := &Result{Schedulable: true, Horizon: horizon}
	for _, ck := range checkpoints(tasks, horizon) {
		res.Checked++
		d := DemandBound(tasks, ck)
		s := p.MinSupply(ck)
		if d > s+1e-9 {
			return &Result{
				Schedulable: false, CriticalTime: ck,
				Demand: d, Supply: s,
				Horizon: horizon, Checked: res.Checked,
			}, nil
		}
	}
	return res, nil
}

// checkpoints enumerates the testing set {k·T + D ≤ horizon}, sorted
// and deduplicated.
func checkpoints(tasks []Task, horizon float64) []float64 {
	var ts []float64
	for _, t := range tasks {
		for x := t.deadline(); x <= horizon; x += t.Period {
			ts = append(ts, x)
		}
	}
	sort.Float64s(ts)
	out := ts[:0]
	for i, x := range ts {
		if i == 0 || x != ts[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// MinimalRate binary-searches, within a one-parameter platform family,
// the minimal bandwidth under which the task set stays EDF-schedulable
// (the EDF counterpart of package design's search). family maps a
// bandwidth α to a Supplier; tol is the bandwidth resolution.
func MinimalRate(tasks []Task, family func(alpha float64) platform.Supplier, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-3
	}
	check := func(a float64) (bool, error) {
		r, err := Schedulable(tasks, family(a))
		if err != nil {
			return false, err
		}
		return r.Schedulable, nil
	}
	ok, err := check(1)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("edf: task set unschedulable even at full bandwidth")
	}
	lo := Utilization(tasks)
	hi := 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := check(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
