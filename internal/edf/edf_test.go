package edf_test

import (
	"math"
	"testing"
	"testing/quick"

	"hsched/internal/edf"
	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/server"
	"hsched/internal/sim"
)

func TestDemandBound(t *testing.T) {
	tasks := []edf.Task{
		{Name: "a", WCET: 1, Period: 4},
		{Name: "b", WCET: 2, Period: 6, Deadline: 5},
	}
	cases := []struct{ t, want float64 }{
		// a has deadlines at 4, 8, 12, …; b at 5, 11, 17, ….
		{0, 0}, {3.9, 0}, {4, 1}, {5, 3}, {8, 4}, {11, 6}, {12, 7},
	}
	for _, c := range cases {
		if got := edf.DemandBound(tasks, c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("dbf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := edf.Utilization(tasks); math.Abs(got-(0.25+2.0/6)) > 1e-12 {
		t.Errorf("U = %v", got)
	}
}

// TestFullProcessorEDF: on a dedicated processor, EDF admits exactly
// the task sets with dbf(t) ≤ t; an implicit-deadline set with U ≤ 1
// passes, and one with U > 1 fails.
func TestFullProcessorEDF(t *testing.T) {
	ok := []edf.Task{{WCET: 2, Period: 4}, {WCET: 3, Period: 6}} // U = 1
	res, err := edf.Schedulable(ok, platform.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Errorf("U = 1 implicit-deadline set rejected at t = %v (dbf %v > sbf %v)",
			res.CriticalTime, res.Demand, res.Supply)
	}
	bad := []edf.Task{{WCET: 3, Period: 4}, {WCET: 3, Period: 6}} // U = 1.25
	res, err = edf.Schedulable(bad, platform.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Errorf("U = 1.25 set accepted")
	}
}

// TestEDFOnPeriodicServer: the classic compositional example — a task
// set feasible on a dedicated CPU may fail on a server of sufficient
// bandwidth but excessive delay, and pass when the server period
// shrinks.
func TestEDFOnPeriodicServer(t *testing.T) {
	tasks := []edf.Task{{WCET: 1, Period: 8}, {WCET: 2, Period: 12}} // U ≈ 0.29
	// Coarse server: Q=4, P=10 → α=0.4, initial gap 2(P−Q)=12 > first
	// deadline 8: must fail.
	coarse := platform.PeriodicServer{Q: 4, P: 10}
	res, err := edf.Schedulable(tasks, coarse)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Errorf("coarse server accepted despite 12-unit initial gap before deadline 8")
	}
	// Fine server of the same bandwidth: Q=1, P=2.5 → gap 3.
	fine := platform.PeriodicServer{Q: 1, P: 2.5}
	res, err = edf.Schedulable(tasks, fine)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Errorf("fine server rejected at t = %v (dbf %v > sbf %v)", res.CriticalTime, res.Demand, res.Supply)
	}
}

// TestLinearBoundMorePessimistic: the (α, Δ, β) linearisation never
// admits a set the exact curve rejects.
func TestLinearBoundMorePessimistic(t *testing.T) {
	f := func(c1, p1, c2, p2, q, p uint16) bool {
		srv := platform.PeriodicServer{
			Q: 0.5 + float64(q%40)/10,
			P: 0,
		}
		srv.P = srv.Q + 0.5 + float64(p%40)/10
		t1 := 5 + float64(p1%40)
		t2 := 5 + float64(p2%40)
		tasks := []edf.Task{
			{WCET: 0.1 + float64(c1%30)/10, Period: t1},
			{WCET: 0.1 + float64(c2%30)/10, Period: t2},
		}
		if edf.Utilization(tasks) > srv.Rate() {
			return true
		}
		exact, err := edf.Schedulable(tasks, srv)
		if err != nil {
			return false
		}
		linear, err := edf.Schedulable(tasks, srv.Params())
		if err != nil {
			return false
		}
		// linear admits ⇒ exact admits.
		return !linear.Schedulable || exact.Schedulable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestMinimalRate: the searched bandwidth is feasible, near-minimal,
// and at least the utilisation.
func TestMinimalRate(t *testing.T) {
	tasks := []edf.Task{{WCET: 1, Period: 10}, {WCET: 2, Period: 14}}
	family := func(a float64) platform.Supplier {
		if a >= 1 {
			return platform.Dedicated()
		}
		return platform.PeriodicServer{Q: a * 2, P: 2}
	}
	alpha, err := edf.MinimalRate(tasks, family, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < edf.Utilization(tasks) {
		t.Errorf("rate %v below utilisation %v", alpha, edf.Utilization(tasks))
	}
	ok, err := edf.Schedulable(tasks, family(alpha))
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Schedulable {
		t.Errorf("returned rate %v not schedulable", alpha)
	}
	below, err := edf.Schedulable(tasks, family(alpha-0.01))
	if err != nil {
		t.Fatal(err)
	}
	if below.Schedulable {
		t.Errorf("rate %v − 0.01 still schedulable: search not minimal", alpha)
	}
}

// TestEDFSimulationMeetsDeadlines: a task set admitted by the dbf test
// on a concrete server meets every deadline in simulation under the
// EDF policy — and this particular set overloads fixed priorities with
// RM ordering inverted, demonstrating the policy switch matters.
func TestEDFSimulationMeetsDeadlines(t *testing.T) {
	srv := platform.PeriodicServer{Q: 1, P: 1.25} // α = 0.8, Δ = 0.5
	tasks := []edf.Task{
		{WCET: 2, Period: 10},
		{WCET: 4.5, Period: 14},
	}
	adm, err := edf.Schedulable(tasks, srv)
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Schedulable {
		t.Fatalf("dbf test rejected the set (t=%v)", adm.CriticalTime)
	}

	sys := &model.System{Platforms: []platform.Params{srv.Params()}}
	for i, task := range tasks {
		sys.Transactions = append(sys.Transactions, model.Transaction{
			Period: task.Period, Deadline: task.Period,
			Tasks: []model.Task{{WCET: task.WCET, BCET: task.WCET, Priority: len(tasks) - i}},
		})
	}
	res, err := sim.Run(sys, []server.Server{server.Polling{Q: srv.Q, P: srv.P, Phase: 0.6}}, sim.Config{
		Horizon: 700, Step: 0.005, Policies: []sim.Policy{sim.EDF},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sys.Transactions {
		if res.Misses[i] != 0 {
			t.Errorf("EDF simulation missed %d deadlines of Γ%d", res.Misses[i], i+1)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := edf.Schedulable([]edf.Task{{WCET: -1, Period: 5}}, platform.Dedicated()); err == nil {
		t.Errorf("negative WCET accepted")
	}
	if _, err := edf.Schedulable([]edf.Task{{WCET: 1, Period: 0}}, platform.Dedicated()); err == nil {
		t.Errorf("zero period accepted")
	}
	res, err := edf.Schedulable(nil, platform.Dedicated())
	if err != nil || !res.Schedulable {
		t.Errorf("empty set should be trivially schedulable")
	}
	if _, err := edf.MinimalRate([]edf.Task{{WCET: 5, Period: 4}}, func(a float64) platform.Supplier {
		return platform.Dedicated()
	}, 1e-3); err == nil {
		t.Errorf("overutilised set accepted by MinimalRate")
	}
}
