package edf_test

import (
	"fmt"

	"hsched/internal/edf"
	"hsched/internal/platform"
)

// ExampleSchedulable admits a sporadic workload onto a concrete budget
// server with the demand-bound/supply-bound test of the periodic
// resource model.
func ExampleSchedulable() {
	workload := []edf.Task{
		{Name: "control", WCET: 2, Period: 10},
		{Name: "logging", WCET: 4.5, Period: 14},
	}
	srv := platform.PeriodicServer{Q: 1, P: 1.25} // 80% bandwidth
	res, err := edf.Schedulable(workload, srv)
	if err != nil {
		panic(err)
	}
	fmt.Printf("schedulable=%v (utilisation %.3f)\n", res.Schedulable, edf.Utilization(workload))
	// Output:
	// schedulable=true (utilisation 0.521)
}

// ExampleMinimalRate searches the smallest server bandwidth keeping a
// workload EDF-schedulable.
func ExampleMinimalRate() {
	workload := []edf.Task{{Name: "a", WCET: 1, Period: 10}, {Name: "b", WCET: 2, Period: 14}}
	family := func(alpha float64) platform.Supplier {
		if alpha >= 1 {
			return platform.Dedicated()
		}
		return platform.PeriodicServer{Q: alpha * 2, P: 2}
	}
	alpha, err := edf.MinimalRate(workload, family, 1e-3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimal bandwidth ≈ %.2f (utilisation %.2f)\n", alpha, edf.Utilization(workload))
	// Output:
	// minimal bandwidth ≈ 0.25 (utilisation 0.24)
}
