package component

import "hsched/internal/platform"

// Method is one method of a provided or required interface. Following
// Section 2.1, the only activation-pattern parameter is the minimum
// inter-arrival time between two consecutive invocations.
type Method struct {
	// Name is the method signature's name (parameters are irrelevant
	// to the timing model and omitted).
	Name string
	// MIT is the minimum inter-arrival time between invocations; 0
	// leaves the pattern unspecified (no admission check).
	MIT float64
}

// StepKind discriminates the two kinds of steps in a thread body.
type StepKind int

const (
	// StepTask is a piece of code implemented by the component itself.
	StepTask StepKind = iota
	// StepCall is a synchronous invocation of a required-interface
	// method: the thread suspends until the remote method completes.
	StepCall
)

// Step is one element of a thread body: either a task or a synchronous
// call of a required method.
type Step struct {
	// Kind selects between StepTask and StepCall.
	Kind StepKind
	// Name labels a task step (ignored for calls).
	Name string
	// WCET and BCET are the execution bounds of a task step in cycles.
	WCET, BCET float64
	// Method is the required-interface method a call step invokes.
	Method string
	// Priority optionally overrides the thread priority for a task
	// step; 0 inherits the thread's priority. (The paper's running
	// example needs this: its Table 1 assigns the "compute" task a
	// priority distinct from the thread that contains it.)
	Priority int
}

// Task builds a task step.
func Task(name string, wcet, bcet float64) Step {
	return Step{Kind: StepTask, Name: name, WCET: wcet, BCET: bcet}
}

// TaskPrio builds a task step with an explicit priority override.
func TaskPrio(name string, wcet, bcet float64, prio int) Step {
	return Step{Kind: StepTask, Name: name, WCET: wcet, BCET: bcet, Priority: prio}
}

// Call builds a synchronous call step of a required method.
func Call(method string) Step {
	return Step{Kind: StepCall, Method: method}
}

// ThreadKind discriminates time-triggered from event-triggered threads.
type ThreadKind int

const (
	// Periodic threads are time-triggered: activated every Period.
	Periodic ThreadKind = iota
	// Handler threads are event-triggered: activated by a call to the
	// provided method they realise.
	Handler
)

// Thread is one concurrent thread of a component implementation,
// scheduled by the component's local fixed-priority scheduler.
type Thread struct {
	// Name identifies the thread within its class.
	Name string
	// Kind selects Periodic or Handler.
	Kind ThreadKind
	// Period is the activation period of a periodic thread.
	Period float64
	// Deadline is the relative end-to-end deadline of a periodic
	// thread; 0 defaults to the period.
	Deadline float64
	// Offset and Jitter describe the external release of a periodic
	// thread relative to its nominal period grid.
	Offset, Jitter float64
	// Realizes names the provided method an event-triggered thread is
	// attached to.
	Realizes string
	// Priority is the thread's local fixed priority; greater is
	// higher.
	Priority int
	// Body is the ordered sequence of tasks and synchronous calls the
	// thread executes per activation.
	Body []Step
}

// Class is a component class: interfaces plus implementation
// (Figure 1 and Figure 2 of the paper are two instances of this type).
type Class struct {
	// Name identifies the class.
	Name string
	// Provided lists the methods offered to other components.
	Provided []Method
	// Required lists the methods this component needs.
	Required []Method
	// Threads is the implementation. The local scheduler is fixed
	// priority, per the paper's assumption.
	Threads []Thread
}

// Instance is a named occurrence of a class placed on an abstract
// computing platform.
type Instance struct {
	// Name identifies the instance in the assembly.
	Name string
	// Class is the component class this instance realises.
	Class *Class
	// Platform indexes Assembly.Platforms: the abstract computing
	// platform the whole instance executes on.
	Platform int
}

// Binding connects one required method of one instance to a provided
// method of another (the integration step of Section 2.2.1).
type Binding struct {
	// Caller is the instance whose required method is bound.
	Caller string
	// Method is the required method's name.
	Method string
	// Callee is the instance providing the implementation.
	Callee string
	// Provided is the callee's provided method name; empty defaults to
	// Method.
	Provided string
}

// MessageModel configures the RPC message expansion of Section 2.2.1:
// when caller and callee are on different platforms, the invocation is
// carried by a request and a reply message scheduled on a network
// platform like ordinary tasks.
type MessageModel struct {
	// Network indexes Assembly.Platforms: the abstract platform
	// modelling the network.
	Network int
	// RequestWCET and RequestBCET bound the request transmission.
	RequestWCET, RequestBCET float64
	// ReplyWCET and ReplyBCET bound the reply transmission.
	ReplyWCET, ReplyBCET float64
	// Priority is the fixed priority of the messages on the network.
	Priority int
}

// Assembly is an integrated system: instances on platforms, bindings,
// and optionally a message model for cross-platform RPC.
type Assembly struct {
	// Platforms are the abstract computing platforms of the system.
	Platforms []platform.Params
	// Instances are the integrated component instances.
	Instances []Instance
	// Bindings wire required to provided interfaces.
	Bindings []Binding
	// Messages, when non-nil, inserts network messages around
	// cross-platform calls.
	Messages *MessageModel
}
