package component

import (
	"fmt"
	"math"
)

// Validate checks the structural well-formedness of a class: method
// names unique per interface, every handler realises a distinct
// provided method, every provided method is realised by exactly one
// thread, periodic threads have positive periods, bodies reference
// declared required methods, and execution bounds are sane.
func (c *Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("component: class has no name")
	}
	prov := map[string]bool{}
	for _, m := range c.Provided {
		if m.Name == "" {
			return fmt.Errorf("component: %s: provided method without a name", c.Name)
		}
		if prov[m.Name] {
			return fmt.Errorf("component: %s: duplicate provided method %q", c.Name, m.Name)
		}
		if m.MIT < 0 || math.IsNaN(m.MIT) {
			return fmt.Errorf("component: %s.provided.%s: MIT %v must be non-negative", c.Name, m.Name, m.MIT)
		}
		prov[m.Name] = true
	}
	req := map[string]bool{}
	for _, m := range c.Required {
		if m.Name == "" {
			return fmt.Errorf("component: %s: required method without a name", c.Name)
		}
		if req[m.Name] {
			return fmt.Errorf("component: %s: duplicate required method %q", c.Name, m.Name)
		}
		req[m.Name] = true
	}

	realized := map[string]string{}
	names := map[string]bool{}
	for ti := range c.Threads {
		t := &c.Threads[ti]
		if t.Name == "" {
			return fmt.Errorf("component: %s: thread %d has no name", c.Name, ti)
		}
		if names[t.Name] {
			return fmt.Errorf("component: %s: duplicate thread name %q", c.Name, t.Name)
		}
		names[t.Name] = true
		switch t.Kind {
		case Periodic:
			if !(t.Period > 0) || math.IsInf(t.Period, 0) || math.IsNaN(t.Period) {
				return fmt.Errorf("component: %s.%s: periodic thread needs a positive period, got %v", c.Name, t.Name, t.Period)
			}
			if t.Deadline < 0 || math.IsNaN(t.Deadline) {
				return fmt.Errorf("component: %s.%s: deadline %v must be non-negative", c.Name, t.Name, t.Deadline)
			}
			if t.Offset < 0 || t.Jitter < 0 {
				return fmt.Errorf("component: %s.%s: offset/jitter must be non-negative", c.Name, t.Name)
			}
			if t.Realizes != "" {
				return fmt.Errorf("component: %s.%s: a periodic thread cannot realise a method", c.Name, t.Name)
			}
		case Handler:
			if t.Realizes == "" {
				return fmt.Errorf("component: %s.%s: handler thread must realise a provided method", c.Name, t.Name)
			}
			if !prov[t.Realizes] {
				return fmt.Errorf("component: %s.%s: realises unknown provided method %q", c.Name, t.Name, t.Realizes)
			}
			if prev, dup := realized[t.Realizes]; dup {
				return fmt.Errorf("component: %s: provided method %q realised by both %q and %q", c.Name, t.Realizes, prev, t.Name)
			}
			realized[t.Realizes] = t.Name
		default:
			return fmt.Errorf("component: %s.%s: unknown thread kind %d", c.Name, t.Name, t.Kind)
		}
		if len(t.Body) == 0 {
			return fmt.Errorf("component: %s.%s: thread has an empty body", c.Name, t.Name)
		}
		for si, s := range t.Body {
			switch s.Kind {
			case StepTask:
				if !(s.WCET > 0) || math.IsInf(s.WCET, 0) {
					return fmt.Errorf("component: %s.%s step %d: task WCET %v must be positive and finite", c.Name, t.Name, si, s.WCET)
				}
				if s.BCET < 0 || s.BCET > s.WCET {
					return fmt.Errorf("component: %s.%s step %d: task BCET %v outside [0, WCET=%v]", c.Name, t.Name, si, s.BCET, s.WCET)
				}
			case StepCall:
				if !req[s.Method] {
					return fmt.Errorf("component: %s.%s step %d: call of undeclared required method %q", c.Name, t.Name, si, s.Method)
				}
			default:
				return fmt.Errorf("component: %s.%s step %d: unknown step kind %d", c.Name, t.Name, si, s.Kind)
			}
		}
	}
	for _, m := range c.Provided {
		if _, ok := realized[m.Name]; !ok {
			return fmt.Errorf("component: %s: provided method %q is not realised by any thread", c.Name, m.Name)
		}
	}
	return nil
}

// Validate checks the assembly: valid platforms and classes, unique
// instance names, in-range platform indices, every required method of
// every instance bound exactly once to an existing provided method,
// and a sane message model.
func (a *Assembly) Validate() error {
	if len(a.Platforms) == 0 {
		return fmt.Errorf("component: assembly has no platforms")
	}
	for i, p := range a.Platforms {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("component: platform %d: %w", i+1, err)
		}
	}
	if len(a.Instances) == 0 {
		return fmt.Errorf("component: assembly has no instances")
	}
	byName := map[string]*Instance{}
	for ii := range a.Instances {
		inst := &a.Instances[ii]
		if inst.Name == "" {
			return fmt.Errorf("component: instance %d has no name", ii)
		}
		if _, dup := byName[inst.Name]; dup {
			return fmt.Errorf("component: duplicate instance name %q", inst.Name)
		}
		if inst.Class == nil {
			return fmt.Errorf("component: instance %q has no class", inst.Name)
		}
		if err := inst.Class.Validate(); err != nil {
			return fmt.Errorf("component: instance %q: %w", inst.Name, err)
		}
		if inst.Platform < 0 || inst.Platform >= len(a.Platforms) {
			return fmt.Errorf("component: instance %q: platform index %d outside [0, %d)", inst.Name, inst.Platform, len(a.Platforms))
		}
		byName[inst.Name] = inst
	}

	bound := map[string]map[string]bool{}
	for _, b := range a.Bindings {
		caller, ok := byName[b.Caller]
		if !ok {
			return fmt.Errorf("component: binding references unknown caller instance %q", b.Caller)
		}
		callee, ok := byName[b.Callee]
		if !ok {
			return fmt.Errorf("component: binding references unknown callee instance %q", b.Callee)
		}
		if !hasMethod(caller.Class.Required, b.Method) {
			return fmt.Errorf("component: binding: %s has no required method %q", b.Caller, b.Method)
		}
		prov := b.Provided
		if prov == "" {
			prov = b.Method
		}
		if !hasMethod(callee.Class.Provided, prov) {
			return fmt.Errorf("component: binding: %s has no provided method %q", b.Callee, prov)
		}
		if bound[b.Caller] == nil {
			bound[b.Caller] = map[string]bool{}
		}
		if bound[b.Caller][b.Method] {
			return fmt.Errorf("component: required method %s.%s bound twice", b.Caller, b.Method)
		}
		bound[b.Caller][b.Method] = true
	}
	for name, inst := range byName {
		for _, m := range inst.Class.Required {
			if !bound[name][m.Name] {
				return fmt.Errorf("component: required method %s.%s is not bound", name, m.Name)
			}
		}
	}

	if msg := a.Messages; msg != nil {
		if msg.Network < 0 || msg.Network >= len(a.Platforms) {
			return fmt.Errorf("component: message model: network platform index %d outside [0, %d)", msg.Network, len(a.Platforms))
		}
		if !(msg.RequestWCET > 0) || !(msg.ReplyWCET > 0) {
			return fmt.Errorf("component: message model: request/reply WCET must be positive")
		}
		if msg.RequestBCET < 0 || msg.RequestBCET > msg.RequestWCET ||
			msg.ReplyBCET < 0 || msg.ReplyBCET > msg.ReplyWCET {
			return fmt.Errorf("component: message model: BCET outside [0, WCET]")
		}
	}
	return nil
}

func hasMethod(ms []Method, name string) bool {
	for _, m := range ms {
		if m.Name == name {
			return true
		}
	}
	return false
}
