package component

import (
	"fmt"

	"hsched/internal/model"
)

// Transactions applies the transformation of Section 2.4: every
// periodic thread of every instance originates one transaction; its
// body's tasks become the transaction's tasks, and every synchronous
// call is replaced by the (recursively inlined) body of the handler
// thread bound to it — each inlined task carrying the priority of the
// thread it belongs to and the platform of the instance implementing
// it. With a MessageModel configured, cross-platform calls are
// bracketed by a request and a reply message task on the network
// platform (Section 2.2.1).
//
// Recursive RPC (a call chain revisiting a handler already on the call
// stack) is rejected, as it would unroll forever.
func (a *Assembly) Transactions() (*model.System, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	tx := &transformer{asm: a, byName: map[string]*Instance{}}
	for i := range a.Instances {
		tx.byName[a.Instances[i].Name] = &a.Instances[i]
	}
	sys := &model.System{Platforms: a.Platforms}
	for ii := range a.Instances {
		inst := &a.Instances[ii]
		for ti := range inst.Class.Threads {
			th := &inst.Class.Threads[ti]
			if th.Kind != Periodic {
				continue
			}
			tr, err := tx.transaction(inst, th)
			if err != nil {
				return nil, err
			}
			sys.Transactions = append(sys.Transactions, tr)
		}
	}
	if len(sys.Transactions) == 0 {
		return nil, fmt.Errorf("component: assembly has no periodic threads, nothing to analyse")
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("component: derived transaction set invalid: %w", err)
	}
	return sys, nil
}

type transformer struct {
	asm    *Assembly
	byName map[string]*Instance
}

type frame struct {
	inst   string
	thread string
}

func (tx *transformer) transaction(inst *Instance, th *Thread) (model.Transaction, error) {
	deadline := th.Deadline
	if deadline == 0 {
		deadline = th.Period
	}
	tr := model.Transaction{
		Name:     inst.Name + "." + th.Name,
		Period:   th.Period,
		Deadline: deadline,
	}
	stack := []frame{{inst.Name, th.Name}}
	if err := tx.inline(&tr, inst, th, stack); err != nil {
		return model.Transaction{}, err
	}
	if len(tr.Tasks) == 0 {
		return model.Transaction{}, fmt.Errorf("component: %s.%s produces no tasks", inst.Name, th.Name)
	}
	// The external release offset/jitter of the periodic thread attach
	// to the first task of the transaction.
	tr.Tasks[0].Offset = th.Offset
	tr.Tasks[0].Jitter = th.Jitter
	return tr, nil
}

// inline appends the tasks of one thread body, descending into calls.
func (tx *transformer) inline(tr *model.Transaction, inst *Instance, th *Thread, stack []frame) error {
	for si := range th.Body {
		s := &th.Body[si]
		switch s.Kind {
		case StepTask:
			prio := s.Priority
			if prio == 0 {
				prio = th.Priority
			}
			name := s.Name
			if name == "" {
				name = fmt.Sprintf("step%d", si+1)
			}
			tr.Tasks = append(tr.Tasks, model.Task{
				Name:     fmt.Sprintf("%s.%s.%s", inst.Name, th.Name, name),
				WCET:     s.WCET,
				BCET:     s.BCET,
				Priority: prio,
				Platform: inst.Platform,
			})
		case StepCall:
			callee, handler, err := tx.resolve(inst, s.Method)
			if err != nil {
				return err
			}
			for _, f := range stack {
				if f.inst == callee.Name && f.thread == handler.Name {
					return fmt.Errorf("component: recursive RPC: %s.%s reached again via %s.%s",
						callee.Name, handler.Name, inst.Name, th.Name)
				}
			}
			remote := callee.Platform != inst.Platform
			if remote && tx.asm.Messages != nil {
				m := tx.asm.Messages
				tr.Tasks = append(tr.Tasks, model.Task{
					Name:     fmt.Sprintf("%s.%s.req(%s)", inst.Name, th.Name, s.Method),
					WCET:     m.RequestWCET,
					BCET:     m.RequestBCET,
					Priority: m.Priority,
					Platform: m.Network,
				})
			}
			if err := tx.inline(tr, callee, handler, append(stack, frame{callee.Name, handler.Name})); err != nil {
				return err
			}
			if remote && tx.asm.Messages != nil {
				m := tx.asm.Messages
				tr.Tasks = append(tr.Tasks, model.Task{
					Name:     fmt.Sprintf("%s.%s.rep(%s)", inst.Name, th.Name, s.Method),
					WCET:     m.ReplyWCET,
					BCET:     m.ReplyBCET,
					Priority: m.Priority,
					Platform: m.Network,
				})
			}
		}
	}
	return nil
}

// resolve follows the binding of a required method of inst to the
// handler thread realising it in the callee instance.
func (tx *transformer) resolve(inst *Instance, method string) (*Instance, *Thread, error) {
	for _, b := range tx.asm.Bindings {
		if b.Caller != inst.Name || b.Method != method {
			continue
		}
		callee := tx.byName[b.Callee]
		prov := b.Provided
		if prov == "" {
			prov = b.Method
		}
		for ti := range callee.Class.Threads {
			h := &callee.Class.Threads[ti]
			if h.Kind == Handler && h.Realizes == prov {
				return callee, h, nil
			}
		}
		return nil, nil, fmt.Errorf("component: %s provides %q but no handler realises it", b.Callee, prov)
	}
	return nil, nil, fmt.Errorf("component: required method %s.%s is not bound", inst.Name, method)
}

// MITViolation reports a provided method whose declared minimum
// inter-arrival time is exceeded by the aggregate invocation rate of
// the periodic threads (transitively) calling it.
type MITViolation struct {
	// Instance and Method identify the overloaded provided method.
	Instance, Method string
	// MIT is the declared minimum inter-arrival time.
	MIT float64
	// Rate is the aggregate invocation rate (calls per time unit); the
	// method can only sustain 1/MIT.
	Rate float64
}

func (v MITViolation) String() string {
	return fmt.Sprintf("%s.%s: aggregate call rate %.6g exceeds 1/MIT = %.6g",
		v.Instance, v.Method, v.Rate, 1/v.MIT)
}

// CheckMITs verifies every provided method's worst-case activation
// pattern against the system integration: each periodic thread of
// period T contributes rate 1/T to every method its transaction
// (transitively) invokes; a method with MIT m can sustain an aggregate
// rate of at most 1/m. The assembly must be valid.
func (a *Assembly) CheckMITs() ([]MITViolation, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	tx := &transformer{asm: a, byName: map[string]*Instance{}}
	for i := range a.Instances {
		tx.byName[a.Instances[i].Name] = &a.Instances[i]
	}
	rates := map[[2]string]float64{} // (instance, provided method) → rate
	for ii := range a.Instances {
		inst := &a.Instances[ii]
		for ti := range inst.Class.Threads {
			th := &inst.Class.Threads[ti]
			if th.Kind != Periodic {
				continue
			}
			if err := tx.accumulateRates(inst, th, 1/th.Period, rates, nil); err != nil {
				return nil, err
			}
		}
	}
	var out []MITViolation
	for ii := range a.Instances {
		inst := &a.Instances[ii]
		for _, m := range inst.Class.Provided {
			if m.MIT <= 0 {
				continue
			}
			if r := rates[[2]string{inst.Name, m.Name}]; r > 1/m.MIT+1e-12 {
				out = append(out, MITViolation{Instance: inst.Name, Method: m.Name, MIT: m.MIT, Rate: r})
			}
		}
	}
	return out, nil
}

func (tx *transformer) accumulateRates(inst *Instance, th *Thread, rate float64, rates map[[2]string]float64, stack []frame) error {
	for _, f := range stack {
		if f.inst == inst.Name && f.thread == th.Name {
			return fmt.Errorf("component: recursive RPC via %s.%s", inst.Name, th.Name)
		}
	}
	stack = append(stack, frame{inst.Name, th.Name})
	for si := range th.Body {
		s := &th.Body[si]
		if s.Kind != StepCall {
			continue
		}
		callee, handler, err := tx.resolve(inst, s.Method)
		if err != nil {
			return err
		}
		rates[[2]string{callee.Name, handler.Realizes}] += rate
		if err := tx.accumulateRates(callee, handler, rate, rates, stack); err != nil {
			return err
		}
	}
	return nil
}
