package component_test

import (
	"fmt"

	"hsched/internal/component"
	"hsched/internal/platform"
)

// Example builds a minimal producer/consumer assembly — one periodic
// caller, one handler on a different platform — and derives its
// transaction per Section 2.4 of the paper.
func Example() {
	producer := &component.Class{
		Name:     "Producer",
		Required: []component.Method{{Name: "store"}},
		Threads: []component.Thread{
			{Name: "Main", Kind: component.Periodic, Period: 100, Priority: 1,
				Body: []component.Step{
					component.Task("sample", 2, 1),
					component.Call("store"),
					component.Task("cleanup", 1, 0.5),
				}},
		},
	}
	storage := &component.Class{
		Name:     "Storage",
		Provided: []component.Method{{Name: "store", MIT: 50}},
		Threads: []component.Thread{
			{Name: "Writer", Kind: component.Handler, Realizes: "store", Priority: 2,
				Body: []component.Step{component.Task("write", 3, 2)}},
		},
	}
	asm := &component.Assembly{
		Platforms: []platform.Params{
			{Alpha: 0.5, Delta: 1, Beta: 0.5},
			{Alpha: 0.25, Delta: 2, Beta: 1},
		},
		Instances: []component.Instance{
			{Name: "P", Class: producer, Platform: 0},
			{Name: "S", Class: storage, Platform: 1},
		},
		Bindings: []component.Binding{
			{Caller: "P", Method: "store", Callee: "S"},
		},
	}
	sys, err := asm.Transactions()
	if err != nil {
		panic(err)
	}
	tr := sys.Transactions[0]
	fmt.Printf("%s: T=%g, %d tasks\n", tr.Name, tr.Period, len(tr.Tasks))
	for _, t := range tr.Tasks {
		fmt.Printf("  %-16s Π%d p=%d C=%g\n", t.Name, t.Platform+1, t.Priority, t.WCET)
	}
	// Output:
	// P.Main: T=100, 3 tasks
	//   P.Main.sample    Π1 p=1 C=2
	//   S.Writer.write   Π2 p=2 C=3
	//   P.Main.cleanup   Π1 p=1 C=1
}
