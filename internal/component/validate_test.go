package component_test

import (
	"strings"
	"testing"

	"hsched/internal/component"
	"hsched/internal/experiments"
)

func validClass() *component.Class {
	return &component.Class{
		Name:     "C",
		Provided: []component.Method{{Name: "serve", MIT: 10}},
		Required: []component.Method{{Name: "helper"}},
		Threads: []component.Thread{
			{Name: "P", Kind: component.Periodic, Period: 20, Priority: 2,
				Body: []component.Step{component.Task("work", 1, 0.5), component.Call("helper")}},
			{Name: "H", Kind: component.Handler, Realizes: "serve", Priority: 1,
				Body: []component.Step{component.Task("reply", 1, 0.5)}},
		},
	}
}

func TestClassValidateOK(t *testing.T) {
	if err := validClass().Validate(); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}
}

func TestClassValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*component.Class)
		want   string
	}{
		{"no name", func(c *component.Class) { c.Name = "" }, "no name"},
		{"unnamed provided", func(c *component.Class) { c.Provided[0].Name = "" }, "without a name"},
		{"dup provided", func(c *component.Class) { c.Provided = append(c.Provided, component.Method{Name: "serve"}) }, "duplicate provided"},
		{"negative MIT", func(c *component.Class) { c.Provided[0].MIT = -1 }, "MIT"},
		{"unnamed required", func(c *component.Class) { c.Required[0].Name = "" }, "without a name"},
		{"dup required", func(c *component.Class) { c.Required = append(c.Required, component.Method{Name: "helper"}) }, "duplicate required"},
		{"unnamed thread", func(c *component.Class) { c.Threads[0].Name = "" }, "has no name"},
		{"dup thread", func(c *component.Class) { c.Threads[1].Name = "P" }, "duplicate thread"},
		{"periodic without period", func(c *component.Class) { c.Threads[0].Period = 0 }, "positive period"},
		{"negative deadline", func(c *component.Class) { c.Threads[0].Deadline = -1 }, "deadline"},
		{"negative offset", func(c *component.Class) { c.Threads[0].Offset = -1 }, "offset"},
		{"periodic realizes", func(c *component.Class) { c.Threads[0].Realizes = "serve" }, "cannot realise"},
		{"handler without method", func(c *component.Class) { c.Threads[1].Realizes = "" }, "must realise"},
		{"handler unknown method", func(c *component.Class) { c.Threads[1].Realizes = "nope" }, "unknown provided"},
		{"double realisation", func(c *component.Class) {
			c.Threads = append(c.Threads, component.Thread{
				Name: "H2", Kind: component.Handler, Realizes: "serve", Priority: 1,
				Body: []component.Step{component.Task("x", 1, 0)},
			})
		}, "realised by both"},
		{"empty body", func(c *component.Class) { c.Threads[0].Body = nil }, "empty body"},
		{"zero wcet", func(c *component.Class) { c.Threads[0].Body[0].WCET = 0 }, "WCET"},
		{"bcet above wcet", func(c *component.Class) { c.Threads[0].Body[0].BCET = 9 }, "BCET"},
		{"undeclared call", func(c *component.Class) { c.Threads[0].Body[1].Method = "ghost" }, "undeclared required"},
		{"unrealised provided", func(c *component.Class) {
			c.Threads = c.Threads[:1]
		}, "not realised"},
	}
	for _, cse := range cases {
		c := validClass()
		cse.mutate(c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", cse.name)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q does not mention %q", cse.name, err, cse.want)
		}
	}
}

func TestAssemblyValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*component.Assembly)
		want   string
	}{
		{"no platforms", func(a *component.Assembly) { a.Platforms = nil }, "no platforms"},
		{"bad platform", func(a *component.Assembly) { a.Platforms[0].Alpha = 2 }, "rate"},
		{"no instances", func(a *component.Assembly) { a.Instances = nil }, "no instances"},
		{"unnamed instance", func(a *component.Assembly) { a.Instances[0].Name = "" }, "has no name"},
		{"dup instance", func(a *component.Assembly) { a.Instances[1].Name = a.Instances[0].Name }, "duplicate instance"},
		{"nil class", func(a *component.Assembly) { a.Instances[0].Class = nil }, "no class"},
		{"platform out of range", func(a *component.Assembly) { a.Instances[0].Platform = 99 }, "platform index"},
		{"unknown caller", func(a *component.Assembly) { a.Bindings[0].Caller = "ghost" }, "unknown caller"},
		{"unknown callee", func(a *component.Assembly) { a.Bindings[0].Callee = "ghost" }, "unknown callee"},
		{"unknown required", func(a *component.Assembly) { a.Bindings[0].Method = "ghost" }, "no required method"},
		{"unknown provided", func(a *component.Assembly) { a.Bindings[0].Provided = "ghost" }, "no provided method"},
		{"double binding", func(a *component.Assembly) { a.Bindings = append(a.Bindings, a.Bindings[0]) }, "bound twice"},
		{"unbound required", func(a *component.Assembly) { a.Bindings = a.Bindings[:1] }, "not bound"},
		{"bad network index", func(a *component.Assembly) {
			a.Messages = &component.MessageModel{Network: 9, RequestWCET: 1, ReplyWCET: 1}
		}, "network platform index"},
		{"zero message wcet", func(a *component.Assembly) {
			a.Messages = &component.MessageModel{Network: 0, RequestWCET: 0, ReplyWCET: 1}
		}, "must be positive"},
		{"message bcet above wcet", func(a *component.Assembly) {
			a.Messages = &component.MessageModel{Network: 0, RequestWCET: 1, RequestBCET: 2, ReplyWCET: 1}
		}, "BCET"},
	}
	for _, cse := range cases {
		a := experiments.PaperAssembly()
		cse.mutate(a)
		err := a.Validate()
		if err == nil {
			t.Errorf("%s: accepted", cse.name)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q does not mention %q", cse.name, err, cse.want)
		}
	}
}

// TestTransactionsRejectNoPeriodicThreads: an assembly of only
// handlers has nothing to analyse.
func TestTransactionsRejectNoPeriodicThreads(t *testing.T) {
	cls := &component.Class{
		Name:     "OnlyHandlers",
		Provided: []component.Method{{Name: "m"}},
		Threads: []component.Thread{
			{Name: "H", Kind: component.Handler, Realizes: "m", Priority: 1,
				Body: []component.Step{component.Task("x", 1, 0)}},
		},
	}
	asm := &component.Assembly{
		Platforms: experiments.PaperPlatforms(),
		Instances: []component.Instance{{Name: "A", Class: cls, Platform: 0}},
	}
	if _, err := asm.Transactions(); err == nil || !strings.Contains(err.Error(), "no periodic threads") {
		t.Errorf("expected 'no periodic threads' error, got %v", err)
	}
}
