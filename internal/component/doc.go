// Package component implements the component model of Sections 2.1,
// 2.2 and 2.4 of Lorente, Lipari & Bini (IPDPS 2006).
//
// A component class declares a provided interface and a required
// interface — sets of methods, each with a worst-case activation
// pattern reduced to a minimum inter-arrival time (MIT) — plus an
// implementation: a set of threads under a local fixed-priority
// scheduler. Threads are either time-triggered (periodic) or
// event-triggered (handlers realising a provided method), and their
// bodies are sequences of tasks (code implemented by the component)
// and synchronous calls to required-interface methods.
//
// Component instances are integrated into a system by an Assembly:
// every instance is placed on an abstract computing platform and every
// required method is bound to a provided method of another instance.
// Assembly.Transactions applies the transformation of Section 2.4: a
// transaction is derived from every periodic thread by recursively
// inlining the handler threads reached through its synchronous calls,
// each inlined task keeping the priority of the thread it belongs to
// and the platform of the instance that implements it.
//
// When caller and callee reside on different platforms the RPC is
// carried by a network: with a MessageModel configured, the
// transformation inserts a request and a reply message as additional
// "tasks" executed on the network platform, exactly as Section 2.2.1
// prescribes (the paper's own example omits messages; so does the
// reproduction of Table 1, which leaves Messages nil).
package component
