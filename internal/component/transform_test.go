package component_test

import (
	"math"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/component"
	"hsched/internal/experiments"
)

// TestPaperAssemblyReproducesTable1 checks that the component-level
// sensor-fusion assembly of Section 2.2, pushed through the Section
// 2.4 transformation, yields exactly the transaction set of Table 1 /
// Figure 5.
func TestPaperAssemblyReproducesTable1(t *testing.T) {
	got, err := experiments.PaperAssembly().Transactions()
	if err != nil {
		t.Fatalf("Transactions: %v", err)
	}
	want := experiments.PaperSystem()

	if len(got.Transactions) != len(want.Transactions) {
		t.Fatalf("derived %d transactions, want %d", len(got.Transactions), len(want.Transactions))
	}
	for i := range want.Transactions {
		wt, gt := want.Transactions[i], got.Transactions[i]
		if gt.Period != wt.Period || gt.Deadline != wt.Deadline {
			t.Errorf("Γ%d: period/deadline (%v, %v), want (%v, %v)", i+1, gt.Period, gt.Deadline, wt.Period, wt.Deadline)
		}
		if len(gt.Tasks) != len(wt.Tasks) {
			t.Errorf("Γ%d: %d tasks, want %d", i+1, len(gt.Tasks), len(wt.Tasks))
			continue
		}
		for j := range wt.Tasks {
			w, g := wt.Tasks[j], gt.Tasks[j]
			if g.WCET != w.WCET || g.BCET != w.BCET || g.Priority != w.Priority || g.Platform != w.Platform {
				t.Errorf("τ%d,%d: (C=%v, Cb=%v, p=%d, Π=%d), want (C=%v, Cb=%v, p=%d, Π=%d)",
					i+1, j+1, g.WCET, g.BCET, g.Priority, g.Platform, w.WCET, w.BCET, w.Priority, w.Platform)
			}
		}
	}

	// The derived system must analyse identically to the hand-written
	// one: R(Γ1) = 31 (see the Table 3 reproduction note).
	res, err := analysis.Analyze(got, analysis.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !res.Schedulable {
		t.Errorf("derived system should be schedulable")
	}
	if r := res.TransactionResponse(0); math.Abs(r-31) > 1e-6 {
		t.Errorf("R(Γ1) = %v, want 31", r)
	}
}

// TestCheckMITs verifies the admission check on provided-method MITs.
func TestCheckMITs(t *testing.T) {
	asm := experiments.PaperAssembly()
	v, err := asm.CheckMITs()
	if err != nil {
		t.Fatalf("CheckMITs: %v", err)
	}
	if len(v) != 0 {
		t.Errorf("paper assembly should satisfy all MITs, got %v", v)
	}

	// Dropping the integrator period below the sensors' declared MIT
	// must be flagged for both sensors.
	asm.Instances[0].Class.Threads[1].Period = 25
	v, err = asm.CheckMITs()
	if err != nil {
		t.Fatalf("CheckMITs: %v", err)
	}
	if len(v) != 2 {
		t.Fatalf("want 2 MIT violations (both sensors), got %v", v)
	}
	for _, viol := range v {
		if viol.Method != "read" || viol.MIT != 50 || math.Abs(viol.Rate-1.0/25) > 1e-12 {
			t.Errorf("unexpected violation %+v", viol)
		}
	}
}

// TestRecursiveRPCRejected checks that a cyclic call chain is detected
// rather than unrolled forever.
func TestRecursiveRPCRejected(t *testing.T) {
	ping := &component.Class{
		Name:     "Ping",
		Provided: []component.Method{{Name: "ping"}},
		Required: []component.Method{{Name: "pong"}},
		Threads: []component.Thread{
			{Name: "Driver", Kind: component.Periodic, Period: 10, Priority: 1,
				Body: []component.Step{component.Task("work", 1, 1), component.Call("pong")}},
			{Name: "Serve", Kind: component.Handler, Realizes: "ping", Priority: 2,
				Body: []component.Step{component.Task("serve", 1, 1), component.Call("pong")}},
		},
	}
	pong := &component.Class{
		Name:     "Pong",
		Provided: []component.Method{{Name: "pong"}},
		Required: []component.Method{{Name: "ping"}},
		Threads: []component.Thread{
			{Name: "Serve", Kind: component.Handler, Realizes: "pong", Priority: 2,
				Body: []component.Step{component.Task("serve", 1, 1), component.Call("ping")}},
			{Name: "Idle", Kind: component.Periodic, Period: 100, Priority: 1,
				Body: []component.Step{component.Task("idle", 1, 1)}},
		},
	}
	asm := &component.Assembly{
		Platforms: experiments.PaperPlatforms(),
		Instances: []component.Instance{
			{Name: "A", Class: ping, Platform: 0},
			{Name: "B", Class: pong, Platform: 1},
		},
		Bindings: []component.Binding{
			{Caller: "A", Method: "pong", Callee: "B"},
			{Caller: "B", Method: "ping", Callee: "A"},
		},
	}
	if _, err := asm.Transactions(); err == nil {
		t.Fatalf("recursive RPC should be rejected")
	}
}

// TestMessagesInsertedForRemoteCalls checks the Section 2.2.1 message
// expansion: a cross-platform call gains a request and a reply task on
// the network platform, while a local call does not.
func TestMessagesInsertedForRemoteCalls(t *testing.T) {
	asm := experiments.PaperAssembly()
	asm.Platforms = append(asm.Platforms, experiments.PaperPlatforms()[0]) // network platform
	net := len(asm.Platforms) - 1
	asm.Messages = &component.MessageModel{
		Network:     net,
		RequestWCET: 0.5, RequestBCET: 0.2,
		ReplyWCET: 0.5, ReplyBCET: 0.2,
		Priority: 1,
	}
	sys, err := asm.Transactions()
	if err != nil {
		t.Fatalf("Transactions: %v", err)
	}
	// Γ1 = init, req, read1, rep, req, read2, rep, compute: 8 tasks.
	if n := len(sys.Transactions[0].Tasks); n != 8 {
		t.Fatalf("Γ1 with messages has %d tasks, want 8", n)
	}
	wantNet := []bool{false, true, false, true, true, false, true, false}
	for j, w := range wantNet {
		onNet := sys.Transactions[0].Tasks[j].Platform == net
		if onNet != w {
			t.Errorf("Γ1 task %d: on network = %v, want %v", j+1, onNet, w)
		}
	}
	// Single-task transactions are unchanged.
	for i := 1; i < len(sys.Transactions); i++ {
		if n := len(sys.Transactions[i].Tasks); n != 1 {
			t.Errorf("Γ%d has %d tasks, want 1", i+1, n)
		}
	}
}
