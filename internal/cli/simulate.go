package cli

import (
	"flag"
	"fmt"
	"io"
	"text/tabwriter"

	"hsched/internal/analysis"
	"hsched/internal/server"
	"hsched/internal/sim"
)

// Simulate implements cmd/hsim: simulate a system on concrete budget
// servers realising its platforms and compare observations against the
// analysed bounds. Exit codes: 0 success, 1 error, 2 deadline misses
// observed.
func Simulate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "JSON system specification (default: built-in paper example)")
		horizon  = fs.Float64("horizon", 0, "simulated time (0: twice the hyperperiod)")
		step     = fs.Float64("step", 0.01, "simulation step")
		mode     = fs.String("mode", "worst", "execution-time mode: worst, best or random")
		seed     = fs.Int64("seed", 1, "random seed")
		phase    = fs.Float64("phase", 0, "server alignment phase")
		policy   = fs.String("policy", "fp", "local scheduling policy: fp or edf")
		traceN   = fs.Int("trace", 0, "print the first N timeline events")
		gantt    = fs.Float64("gantt", 0, "render an ASCII Gantt chart of the first N time units")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	sys, err := loadSystem(*specPath, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "hsim:", err)
		return 1
	}
	var execMode sim.ExecMode
	switch *mode {
	case "worst":
		execMode = sim.WorstCase
	case "best":
		execMode = sim.BestCase
	case "random":
		execMode = sim.RandomCase
	default:
		fmt.Fprintf(stderr, "hsim: unknown -mode %q\n", *mode)
		return 1
	}
	var policies []sim.Policy
	switch *policy {
	case "fp":
	case "edf":
		policies = make([]sim.Policy, len(sys.Platforms))
		for m := range policies {
			policies[m] = sim.EDF
		}
	default:
		fmt.Fprintf(stderr, "hsim: unknown -policy %q\n", *policy)
		return 1
	}

	servers := make([]server.Server, len(sys.Platforms))
	for m, p := range sys.Platforms {
		srv, err := server.ForPlatform(p, *phase*float64(m+1))
		if err != nil {
			fmt.Fprintln(stderr, "hsim:", err)
			return 1
		}
		servers[m] = srv
		fmt.Fprintf(stdout, "Pi%d %v realised by %s\n", m+1, p, srv.Name())
	}

	ana, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		fmt.Fprintln(stderr, "hsim:", err)
		return 1
	}
	res, err := sim.Run(sys, servers, sim.Config{
		Horizon: *horizon, Step: *step, Mode: execMode, Seed: *seed,
		Policies: policies, TraceLimit: *traceN, RecordRuns: *gantt > 0,
	})
	if err != nil {
		fmt.Fprintln(stderr, "hsim:", err)
		return 1
	}

	w := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "task\tjobs\tmean R\tmax R\tanalysed R")
	for i := range res.Tasks {
		for j, st := range res.Tasks[i] {
			fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.3f\n",
				sys.TaskName(i, j), st.Completions, st.Mean(), st.MaxResponse, ana.Tasks[i][j].Worst)
		}
	}
	w.Flush()
	misses := 0
	for i := range sys.Transactions {
		fmt.Fprintf(stdout, "%s: max end-to-end %.3f (bound %.3f, deadline %g), misses %d\n",
			sys.Transactions[i].Name, res.MaxEndToEnd(i), ana.TransactionResponse(i),
			sys.Transactions[i].Deadline, res.Misses[i])
		misses += res.Misses[i]
	}
	for m, ps := range res.Platforms {
		fmt.Fprintf(stdout, "Pi%d: supplied %.1f (%.1f%% of horizon), busy %.1f (%.1f%% of supplied)\n",
			m+1, ps.Supplied, 100*ps.Supplied/res.Horizon, ps.Busy, 100*ps.Busy/maxF(ps.Supplied, 1e-12))
	}
	fmt.Fprintf(stdout, "horizon %.1f, unfinished jobs at horizon: %d\n", res.Horizon, res.Unfinished)
	if *traceN > 0 {
		fmt.Fprint(stdout, sim.FormatTrace(sys, res.Trace))
	}
	if *gantt > 0 {
		fmt.Fprint(stdout, sim.Gantt(sys, res.Runs, 0, *gantt, 100))
	}
	if misses > 0 {
		return 2
	}
	return 0
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
