package cli

import (
	"flag"
	"fmt"
	"io"

	"hsched/internal/experiments"
	"hsched/internal/service"
)

// The A10 policy sweep's shared parameters, fixed-seeded so the test
// suite can lock the rendered values: the utilisation band where the
// policies genuinely separate on the generated jittered task sets.
var policySweepUtils = []float64{0.5, 0.65, 0.8}

const (
	policySweepPerPoint = 25
	policySweepSeed     = int64(2000)
)

// Exper implements cmd/hsexper: regenerate paper tables/figures and
// the ablations of DESIGN.md. Exit codes: 0 success, 1 error.
func Exper(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsexper", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table    = fs.Int("table", 0, "reproduce one table (1, 2 or 3)")
		figure   = fs.Int("figure", 0, "reproduce one figure (3 or 5)")
		ablation = fs.String("ablation", "", "run one ablation: exact, pessimism, soundness, design, network, edf, acceptance, admission or assign")
		asCSV    = fs.Bool("csv", false, "emit plot-ready CSV instead of text (table 3, figure 3, pessimism, acceptance, assign)")
		workers  = fs.Int("workers", 0, "parallel workers of the acceptance and assign sweeps (0 = all CPUs)")
		cache    = fs.Bool("cache", false, "share one memoised analysis service across the acceptance/assign sweep and print its cache statistics")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// With -cache the acceptance sweep runs through one explicit
	// service so its statistics can be reported afterwards; without it
	// the sweep still uses a service internally (engine pooling and
	// in-flight dedup), just an anonymous one.
	var svc *service.Service
	if *cache {
		svc = service.New(service.Options{Shards: experiments.SweepShards(*workers)})
		// Only the acceptance and assign sweeps are service-
		// instrumented; say so instead of silently ignoring the flag
		// elsewhere.
		if !(*table == 0 && *figure == 0 && *ablation == "") && *ablation != "acceptance" && *ablation != "assign" {
			fmt.Fprintln(stderr, "hsexper: -cache only instruments the acceptance and assign sweeps; other artefacts run uncached")
		}
	}
	// Stats go to stderr in CSV mode so the data stream stays
	// machine-readable.
	sweepStats := func() {
		if svc == nil {
			return
		}
		dst := stdout
		if *asCSV {
			dst = stderr
		}
		printCacheStats(dst, svc.Stats())
	}
	acceptance := func(utils []float64, perPoint int, seed int64) ([]experiments.AcceptancePoint, error) {
		pts, err := experiments.AcceptanceRatioService(utils, perPoint, seed, *workers, svc)
		if err == nil {
			sweepStats()
		}
		return pts, err
	}
	policies := func(utils []float64, perPoint int, seed int64) ([]experiments.PolicyAcceptancePoint, error) {
		pts, err := experiments.PolicyAcceptance(utils, perPoint, seed, *workers, svc)
		if err == nil {
			sweepStats()
		}
		return pts, err
	}

	if *asCSV {
		var err error
		switch {
		case *table == 3:
			err = experiments.Table3CSV(stdout)
		case *figure == 3:
			err = experiments.Figure3CSV(stdout, 1, 4, 16, 64)
		case *ablation == "pessimism":
			rows, rerr := experiments.Pessimism([]float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9})
			if rerr == nil {
				err = experiments.PessimismCSV(stdout, rows)
			} else {
				err = rerr
			}
		case *ablation == "acceptance":
			pts, rerr := acceptance([]float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9}, 25, 1000)
			if rerr == nil {
				err = experiments.AcceptanceCSV(stdout, pts)
			} else {
				err = rerr
			}
		case *ablation == "assign":
			pts, rerr := policies(policySweepUtils, policySweepPerPoint, policySweepSeed)
			if rerr == nil {
				err = experiments.PolicyAcceptanceCSV(stdout, pts)
			} else {
				err = rerr
			}
		default:
			err = fmt.Errorf("-csv supports -table 3, -figure 3, -ablation pessimism, -ablation acceptance and -ablation assign")
		}
		if err != nil {
			fmt.Fprintln(stderr, "hsexper:", err)
			return 1
		}
		return 0
	}

	all := *table == 0 && *figure == 0 && *ablation == ""
	failed := false
	run := func(name string, gen func() (string, error)) {
		out, err := gen()
		if err != nil {
			fmt.Fprintf(stderr, "hsexper: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Fprintln(stdout, out)
	}

	if all || *table == 1 {
		fmt.Fprintln(stdout, experiments.Table1())
	}
	if all || *table == 2 {
		fmt.Fprintln(stdout, experiments.Table2())
	}
	if all || *table == 3 {
		run("table 3", experiments.Table3)
	}
	if all || *figure == 3 {
		run("figure 3", func() (string, error) { return experiments.Figure3(1, 4) })
	}
	if all || *figure == 5 {
		run("figure 5", experiments.Figure5)
	}
	if all || *ablation == "exact" {
		run("ablation A1", func() (string, error) {
			rows, err := experiments.ExactVsApprox([]int64{1, 2, 3, 4, 5})
			if err != nil {
				return "", err
			}
			return experiments.RenderExactVsApprox(rows), nil
		})
	}
	if all || *ablation == "pessimism" {
		run("ablation A2", func() (string, error) {
			rows, err := experiments.Pessimism([]float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9})
			if err != nil {
				return "", err
			}
			return experiments.RenderPessimism(rows), nil
		})
	}
	if all || *ablation == "soundness" {
		run("ablation A3", func() (string, error) {
			rows, err := experiments.SimVsAnalysis([]int64{1, 2, 3, 4, 5, 6, 7, 8})
			if err != nil {
				return "", err
			}
			return experiments.RenderSimVsAnalysis(rows), nil
		})
	}
	if all || *ablation == "design" {
		run("ablation A5", func() (string, error) {
			out, _, err := experiments.DesignSearch()
			return out, err
		})
	}
	if all || *ablation == "network" {
		run("ablation A6", experiments.NetworkExperiment)
	}
	if all || *ablation == "edf" {
		run("ablation A7", func() (string, error) {
			rows, err := experiments.EDFvsFP()
			if err != nil {
				return "", err
			}
			return experiments.RenderEDFvsFP(rows), nil
		})
	}
	if all || *ablation == "acceptance" {
		run("ablation A8", func() (string, error) {
			pts, err := acceptance([]float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9}, 25, 1000)
			if err != nil {
				return "", err
			}
			return experiments.RenderAcceptanceRatio(pts), nil
		})
	}
	if all || *ablation == "admission" {
		run("ablation A9", func() (string, error) {
			rep, err := experiments.AdmissionChurn(30, nil)
			if err != nil {
				return "", err
			}
			return experiments.RenderAdmissionChurn(rep), nil
		})
	}
	if all || *ablation == "assign" {
		run("ablation A10", func() (string, error) {
			pts, err := policies(policySweepUtils, policySweepPerPoint, policySweepSeed)
			if err != nil {
				return "", err
			}
			return experiments.RenderPolicyAcceptance(pts), nil
		})
	}
	if failed {
		return 1
	}
	return 0
}
