package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/service"
)

// benchReport is the machine-readable form of a bench run, emitted by
// -json so the performance trajectory can be tracked across commits
// (CI uploads it as an artifact).
type benchReport struct {
	Systems    int     `json:"systems"`
	Mutations  int     `json:"mutations"`
	Queries    int     `json:"queries"`
	Goroutines int     `json:"goroutines"`
	Exact      bool    `json:"exact"`
	Delta      bool    `json:"delta"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"throughput_qps"`
	Latency    struct {
		P50us float64 `json:"p50_us"`
		P90us float64 `json:"p90_us"`
		P99us float64 `json:"p99_us"`
		MaxUs float64 `json:"max_us"`
	} `json:"latency"`
	Cache struct {
		Queries        int64   `json:"queries"`
		Hits           int64   `json:"hits"`
		Misses         int64   `json:"misses"`
		Evictions      int64   `json:"evictions"`
		InflightDedups int64   `json:"inflight_dedups"`
		DeltaHits      int64   `json:"delta_hits"`
		RoundsSaved    int64   `json:"rounds_saved"`
		HitRate        float64 `json:"hit_rate"`
		DeltaHitRate   float64 `json:"delta_hit_rate"`
	} `json:"cache"`
}

// Bench implements `hsched bench`: a service-throughput benchmark over
// a generated workload. It draws a population of random base systems,
// extends each into a chain of single-transaction mutations (the
// admission-control traffic shape the delta path serves), fires a
// stream of queries at one shared analysis service from many
// goroutines (queries round-robin over the population, so the
// steady-state hit rate is high and every mutation is one step from a
// resident result), and reports throughput, cache hit rate, delta hit
// rate and p50/p99 latency — humanly, or as JSON with -json. Exit
// codes: 0 success, 1 error.
func Bench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsched bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		systems    = fs.Int("systems", 64, "distinct random base systems in the workload population")
		mutations  = fs.Int("mutations", 4, "single-transaction mutations chained onto each base system")
		queries    = fs.Int("queries", 4096, "total queries to issue")
		goroutines = fs.Int("goroutines", 0, "concurrent client goroutines (0 = all CPUs)")
		shards     = fs.Int("shards", 0, "engine shards of the service (0 = all CPUs)")
		capacity   = fs.Int("capacity", 0, "verdict-memo capacity in entries (0 = default, negative = memo off)")
		seed       = fs.Int64("seed", 1, "workload generator seed")
		exact      = fs.Bool("exact", false, "use the exact analysis for the workload")
		util       = fs.Float64("util", 0.45, "per-platform utilisation of the generated systems")
		delta      = fs.Bool("delta", true, "route near-match queries through the incremental (delta) analysis")
		jsonOut    = fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *systems <= 0 || *queries <= 0 || *mutations < 0 {
		fmt.Fprintln(stderr, "hsched bench: -systems and -queries must be positive, -mutations non-negative")
		return 1
	}

	// Population: each base system plus a chain of cumulative
	// single-transaction retunings — consecutive chain elements are one
	// parameter apart, exactly the near-match shape the delta path
	// absorbs.
	pop := make([]*model.System, 0, *systems*(*mutations+1))
	for k := 0; k < *systems; k++ {
		sys, err := gen.System(gen.Config{
			Seed: *seed + int64(k), Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 20, PeriodMax: 400, Utilization: *util,
			AlphaMin: 0.4, AlphaMax: 0.9,
		})
		if err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
		pop = append(pop, sys)
		for c := 1; c <= *mutations; c++ {
			mut := sys.Clone()
			tr := &mut.Transactions[c%len(mut.Transactions)]
			tr.Tasks[c%len(tr.Tasks)].WCET *= 1.0 + 0.02*float64(c)
			pop = append(pop, mut)
			sys = mut
		}
	}

	deltaWindow := 0
	if !*delta {
		deltaWindow = -1
	}
	svc := service.New(service.Options{
		Shards:      *shards,
		Capacity:    *capacity,
		DeltaWindow: deltaWindow,
		Analysis:    analysis.Options{Exact: *exact, StopAtDeadlineMiss: true, Workers: 1},
	})

	clients := *goroutines
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	latencies := make([]time.Duration, *queries)
	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= *queries || firstErr.Load() != nil {
					return
				}
				t0 := time.Now()
				_, err := svc.Analyze(ctx, pop[k%len(pop)])
				latencies[k] = time.Since(t0)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := firstErr.Load(); err != nil {
		fmt.Fprintln(stderr, "hsched bench:", err)
		return 1
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}
	st := svc.Stats()

	if *jsonOut {
		rep := benchReport{
			Systems: *systems, Mutations: *mutations, Queries: *queries,
			Goroutines: clients, Exact: *exact, Delta: *delta,
			ElapsedMS:  float64(elapsed.Microseconds()) / 1e3,
			Throughput: float64(*queries) / elapsed.Seconds(),
		}
		us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
		rep.Latency.P50us = us(quantile(0.50))
		rep.Latency.P90us = us(quantile(0.90))
		rep.Latency.P99us = us(quantile(0.99))
		rep.Latency.MaxUs = us(latencies[len(latencies)-1])
		rep.Cache.Queries = st.Queries
		rep.Cache.Hits = st.Hits
		rep.Cache.Misses = st.Misses
		rep.Cache.Evictions = st.Evictions
		rep.Cache.InflightDedups = st.InflightDedups
		rep.Cache.DeltaHits = st.DeltaHits
		rep.Cache.RoundsSaved = st.RoundsSaved
		rep.Cache.HitRate = st.HitRate()
		if st.Misses > 0 {
			rep.Cache.DeltaHitRate = float64(st.DeltaHits) / float64(st.Misses)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "workload: %d systems x %d mutation chain, %d queries, %d goroutines, exact=%v delta=%v\n",
		*systems, *mutations, *queries, clients, *exact, *delta)
	fmt.Fprintf(stdout, "elapsed: %v  throughput: %.0f queries/s\n",
		elapsed.Round(time.Millisecond), float64(*queries)/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency: p50=%v p90=%v p99=%v max=%v\n",
		quantile(0.50), quantile(0.90), quantile(0.99), latencies[len(latencies)-1])
	printCacheStats(stdout, st)
	return 0
}
