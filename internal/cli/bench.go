package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/sched"
	"hsched/internal/service"
)

// benchReport is the machine-readable form of a bench run, emitted by
// -json so the performance trajectory can be tracked across commits
// (CI uploads it as an artifact and gates on -compare). BENCH_seed.json
// at the repository root holds one report per workload preset — the
// committed baseline the CI regression gate compares against.
type benchReport struct {
	Workload   string  `json:"workload"`
	Systems    int     `json:"systems"`
	Mutations  int     `json:"mutations"`
	Queries    int     `json:"queries"`
	Goroutines int     `json:"goroutines"`
	Exact      bool    `json:"exact"`
	Delta      bool    `json:"delta"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"throughput_qps"`
	Latency    struct {
		P50us float64 `json:"p50_us"`
		P90us float64 `json:"p90_us"`
		P99us float64 `json:"p99_us"`
		MaxUs float64 `json:"max_us"`
	} `json:"latency"`
	Cache struct {
		Queries         int64   `json:"queries"`
		Hits            int64   `json:"hits"`
		Misses          int64   `json:"misses"`
		Evictions       int64   `json:"evictions"`
		InflightDedups  int64   `json:"inflight_dedups"`
		DeltaHits       int64   `json:"delta_hits"`
		RoundsSaved     int64   `json:"rounds_saved"`
		ScenariosPruned int64   `json:"scenarios_pruned"`
		HitRate         float64 `json:"hit_rate"`
		DeltaHitRate    float64 `json:"delta_hit_rate"`
	} `json:"cache"`
}

// regressionTolerance is the fraction of baseline throughput a -compare
// run must reach: below 75% the gate reports a regression and the
// command exits non-zero.
const regressionTolerance = 0.75

// Bench implements `hsched bench`: a service-throughput benchmark over
// a generated workload. It draws a population of random base systems,
// extends each into a chain of single-transaction mutations (the
// admission-control traffic shape the delta path serves), fires a
// stream of queries at one shared analysis service from many
// goroutines (queries round-robin over the population, so the
// steady-state hit rate is high and every mutation is one step from a
// resident result), and reports throughput, cache hit rate, delta hit
// rate and p50/p99 latency — humanly, or as JSON with -json.
//
// Three workload presets exist: "default" exercises the memo and
// delta paths with the approximate analysis on multi-platform chains;
// "exact-heavy" routes single-platform, high-interference systems
// through the exact scenario sweep — the streamed/pruned/parallel hot
// path — and reports the scenarios the admissible prune skipped;
// "assign" runs one full Audsley priority-assignment search per query
// against the shared service, the probe-chain traffic of the sched
// layer (every probe one priority move apart, served by the session-
// pinned incremental path and the memo). -compare FILE checks the
// measured throughput against a recorded baseline (BENCH_seed.json,
// or a previous -json report) and fails on a >25% regression. Exit
// codes: 0 success, 1 error or regression.
func Bench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsched bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "default", "workload preset: default (approximate admission-control chains), exact-heavy (exact scenario sweeps) or assign (priority-assignment searches)")
		systems    = fs.Int("systems", 64, "distinct random base systems in the workload population")
		mutations  = fs.Int("mutations", 4, "single-transaction mutations chained onto each base system")
		queries    = fs.Int("queries", 4096, "total queries to issue")
		goroutines = fs.Int("goroutines", 0, "concurrent client goroutines (0 = all CPUs)")
		shards     = fs.Int("shards", 0, "engine shards of the service (0 = all CPUs)")
		capacity   = fs.Int("capacity", 0, "verdict-memo capacity in entries (0 = default, negative = memo off)")
		seed       = fs.Int64("seed", 1, "workload generator seed")
		exact      = fs.Bool("exact", false, "use the exact analysis for the workload")
		util       = fs.Float64("util", 0.45, "per-platform utilisation of the generated systems")
		delta      = fs.Bool("delta", true, "route near-match queries through the incremental (delta) analysis")
		jsonOut    = fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
		compare    = fs.String("compare", "", "baseline report file; exit non-zero when throughput regresses >25% against the matching workload entry")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// Preset defaults: flags the user set explicitly always win.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch *workload {
	case "default":
	case "exact-heavy":
		// Fewer, hotter systems: every miss is a full exact sweep, so
		// the population stays small and the interesting signal is the
		// cold-path latency and the pruned-scenario count.
		if !explicit["exact"] {
			*exact = true
		}
		if !explicit["systems"] {
			*systems = 8
		}
		if !explicit["mutations"] {
			*mutations = 2
		}
		if !explicit["queries"] {
			*queries = 256
		}
		if !explicit["util"] {
			*util = 0.5
		}
	case "assign":
		// Each query is a whole Audsley search (tens of oracle probes),
		// so far fewer queries saturate the interesting machinery: the
		// per-search probe sessions and the shared memo that answers
		// re-searched population members outright.
		if !explicit["systems"] {
			*systems = 16
		}
		if !explicit["mutations"] {
			*mutations = 2
		}
		if !explicit["queries"] {
			*queries = 64
		}
	default:
		fmt.Fprintf(stderr, "hsched bench: unknown -workload %q (want default, exact-heavy or assign)\n", *workload)
		return 1
	}
	if *systems <= 0 || *queries <= 0 || *mutations < 0 {
		fmt.Fprintln(stderr, "hsched bench: -systems and -queries must be positive, -mutations non-negative")
		return 1
	}

	// Population: each base system plus a chain of cumulative
	// single-transaction retunings — consecutive chain elements are one
	// parameter apart, exactly the near-match shape the delta path
	// absorbs.
	pop := make([]*model.System, 0, *systems*(*mutations+1))
	for k := 0; k < *systems; k++ {
		cfg := gen.Config{
			Seed: *seed + int64(k), Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 20, PeriodMax: 400, Utilization: *util,
			AlphaMin: 0.4, AlphaMax: 0.9,
		}
		if *workload == "exact-heavy" {
			// One platform maximises same-platform interference — the
			// regime where the exact scenario product of Eq. 12 grows —
			// and random priorities break the rate-monotonic nesting
			// that keeps the candidate sets small.
			cfg.Platforms = 1
			cfg.ChainLen = 4
			cfg.AlphaMin, cfg.AlphaMax = 0.5, 0.9
			cfg.RandomPriorities = true
		}
		sys, err := gen.System(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
		pop = append(pop, sys)
		for c := 1; c <= *mutations; c++ {
			mut := sys.Clone()
			tr := &mut.Transactions[c%len(mut.Transactions)]
			tr.Tasks[c%len(tr.Tasks)].WCET *= 1.0 + 0.02*float64(c)
			pop = append(pop, mut)
			sys = mut
		}
	}

	deltaWindow := 0
	if !*delta {
		deltaWindow = -1
	}
	svc := service.New(service.Options{
		Shards:      *shards,
		Capacity:    *capacity,
		DeltaWindow: deltaWindow,
		Analysis:    analysis.Options{Exact: *exact, StopAtDeadlineMiss: true, Workers: 1},
	})

	// One query is one service call — except on the assign workload,
	// where it is one whole priority-assignment search probing the
	// shared service through its own session (the population member is
	// cloned: the search overwrites priorities in place).
	query := func(ctx context.Context, k int) error {
		_, err := svc.Analyze(ctx, pop[k%len(pop)])
		return err
	}
	if *workload == "assign" {
		assignOpt := analysis.Options{Exact: *exact, Workers: 1}
		query = func(ctx context.Context, k int) error {
			sys := pop[k%len(pop)].Clone()
			_, _, err := sched.Assign(ctx, sys, sched.PolicyAudsley, sched.AssignOptions{
				Analysis: assignOpt,
				Service:  svc,
			})
			return err
		}
	}

	clients := *goroutines
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	latencies := make([]time.Duration, *queries)
	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= *queries || firstErr.Load() != nil {
					return
				}
				t0 := time.Now()
				err := query(ctx, k)
				latencies[k] = time.Since(t0)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := firstErr.Load(); err != nil {
		fmt.Fprintln(stderr, "hsched bench:", err)
		return 1
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}
	st := svc.Stats()

	rep := benchReport{
		Workload: *workload,
		Systems:  *systems, Mutations: *mutations, Queries: *queries,
		Goroutines: clients, Exact: *exact, Delta: *delta,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1e3,
		Throughput: float64(*queries) / elapsed.Seconds(),
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	rep.Latency.P50us = us(quantile(0.50))
	rep.Latency.P90us = us(quantile(0.90))
	rep.Latency.P99us = us(quantile(0.99))
	rep.Latency.MaxUs = us(latencies[len(latencies)-1])
	rep.Cache.Queries = st.Queries
	rep.Cache.Hits = st.Hits
	rep.Cache.Misses = st.Misses
	rep.Cache.Evictions = st.Evictions
	rep.Cache.InflightDedups = st.InflightDedups
	rep.Cache.DeltaHits = st.DeltaHits
	rep.Cache.RoundsSaved = st.RoundsSaved
	rep.Cache.ScenariosPruned = st.ScenariosPruned
	rep.Cache.HitRate = st.HitRate()
	if st.Misses > 0 {
		rep.Cache.DeltaHitRate = float64(st.DeltaHits) / float64(st.Misses)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "workload: %s — %d systems x %d mutation chain, %d queries, %d goroutines, exact=%v delta=%v\n",
			*workload, *systems, *mutations, *queries, clients, *exact, *delta)
		fmt.Fprintf(stdout, "elapsed: %v  throughput: %.0f queries/s\n",
			elapsed.Round(time.Millisecond), rep.Throughput)
		fmt.Fprintf(stdout, "latency: p50=%v p90=%v p99=%v max=%v\n",
			quantile(0.50), quantile(0.90), quantile(0.99), latencies[len(latencies)-1])
		printCacheStats(stdout, st)
	}

	if *compare != "" {
		// Gate messages go to stderr so -json stdout stays parseable.
		if err := compareThroughput(stderr, *compare, *workload, rep.Throughput); err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
	}
	return 0
}

// compareThroughput loads a baseline report file and fails when the
// measured throughput falls below regressionTolerance of the recorded
// one. The file is either a map of workload name to report (the
// committed BENCH_seed.json) or a single report from a previous
// `hsched bench -json` run.
func compareThroughput(out io.Writer, path, workload string, measured float64) error {
	base, err := loadBaseline(path, workload)
	if err != nil {
		return err
	}
	floor := regressionTolerance * base.Throughput
	ratio := 0.0
	if base.Throughput > 0 {
		ratio = measured / base.Throughput
	}
	if measured < floor {
		return fmt.Errorf("throughput regression on workload %q: %.0f qps is %.0f%% of the %.0f qps baseline (floor %.0f%%)",
			workload, measured, 100*ratio, base.Throughput, 100*regressionTolerance)
	}
	fmt.Fprintf(out, "bench compare: workload %q at %.0f%% of baseline throughput (%.0f vs %.0f qps) — ok\n",
		workload, 100*ratio, measured, base.Throughput)
	return nil
}

// loadBaseline reads the baseline entry for a workload; see
// compareThroughput for the accepted shapes.
func loadBaseline(path, workload string) (benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, fmt.Errorf("baseline: %w", err)
	}
	var single benchReport
	if err := json.Unmarshal(data, &single); err == nil && single.Throughput > 0 {
		// A bare report matches when it does not name a conflicting
		// workload (older reports predate the field).
		if single.Workload == "" || single.Workload == workload {
			return single, nil
		}
		return benchReport{}, fmt.Errorf("baseline %s records workload %q, not %q", path, single.Workload, workload)
	}
	var byWorkload map[string]benchReport
	if err := json.Unmarshal(data, &byWorkload); err == nil {
		if rep, ok := byWorkload[workload]; ok && rep.Throughput > 0 {
			return rep, nil
		}
		return benchReport{}, fmt.Errorf("baseline %s has no entry for workload %q", path, workload)
	}
	return benchReport{}, fmt.Errorf("baseline %s: neither a bench report nor a workload map", path)
}
