package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/service"
)

// Bench implements `hsched bench`: a service-throughput benchmark over
// a generated workload. It draws a population of random systems, fires
// a stream of admission-control-style queries at one shared analysis
// service from many goroutines (queries round-robin over the
// population, so the steady-state hit rate is high), and reports
// throughput, cache hit rate and p50/p99 latency. Exit codes: 0
// success, 1 error.
func Bench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsched bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		systems    = fs.Int("systems", 64, "distinct random systems in the workload population")
		queries    = fs.Int("queries", 4096, "total queries to issue")
		goroutines = fs.Int("goroutines", 0, "concurrent client goroutines (0 = all CPUs)")
		shards     = fs.Int("shards", 0, "engine shards of the service (0 = all CPUs)")
		capacity   = fs.Int("capacity", 0, "verdict-memo capacity in entries (0 = default, negative = memo off)")
		seed       = fs.Int64("seed", 1, "workload generator seed")
		exact      = fs.Bool("exact", false, "use the exact analysis for the workload")
		util       = fs.Float64("util", 0.45, "per-platform utilisation of the generated systems")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *systems <= 0 || *queries <= 0 {
		fmt.Fprintln(stderr, "hsched bench: -systems and -queries must be positive")
		return 1
	}

	pop := make([]*model.System, *systems)
	for k := range pop {
		sys, err := gen.System(gen.Config{
			Seed: *seed + int64(k), Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 20, PeriodMax: 400, Utilization: *util,
			AlphaMin: 0.4, AlphaMax: 0.9,
		})
		if err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
		pop[k] = sys
	}

	svc := service.New(service.Options{
		Shards:   *shards,
		Capacity: *capacity,
		Analysis: analysis.Options{Exact: *exact, StopAtDeadlineMiss: true, Workers: 1},
	})

	clients := *goroutines
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	latencies := make([]time.Duration, *queries)
	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= *queries || firstErr.Load() != nil {
					return
				}
				t0 := time.Now()
				_, err := svc.Analyze(ctx, pop[k%len(pop)])
				latencies[k] = time.Since(t0)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := firstErr.Load(); err != nil {
		fmt.Fprintln(stderr, "hsched bench:", err)
		return 1
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}
	st := svc.Stats()
	fmt.Fprintf(stdout, "workload: %d systems, %d queries, %d goroutines, exact=%v\n",
		*systems, *queries, clients, *exact)
	fmt.Fprintf(stdout, "elapsed: %v  throughput: %.0f queries/s\n",
		elapsed.Round(time.Millisecond), float64(*queries)/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency: p50=%v p90=%v p99=%v max=%v\n",
		quantile(0.50), quantile(0.90), quantile(0.99), latencies[len(latencies)-1])
	printCacheStats(stdout, st)
	return 0
}
