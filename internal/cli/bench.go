package cli

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/httpd"
	"hsched/internal/model"
	"hsched/internal/sched"
	"hsched/internal/service"
	"hsched/internal/spec"
)

// benchReport is the machine-readable form of a bench run, emitted by
// -json so the performance trajectory can be tracked across commits
// (CI uploads it as an artifact and gates on -compare). BENCH_seed.json
// at the repository root holds one report per workload preset — the
// committed baseline the CI regression gate compares against.
type benchReport struct {
	Workload  string `json:"workload"`
	Remote    string `json:"remote,omitempty"`
	Systems   int    `json:"systems"`
	Mutations int    `json:"mutations"`
	Queries   int    `json:"queries"`
	// Goroutines and GOMAXPROCS together make a baseline
	// self-describing: contended presets are only comparable when both
	// the client parallelism and the scheduler width match the
	// recording (the committed contended baseline is GOMAXPROCS=4,
	// goroutines 16).
	Goroutines int     `json:"goroutines"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Exact      bool    `json:"exact"`
	Delta      bool    `json:"delta"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"throughput_qps"`
	Latency    struct {
		P50us float64 `json:"p50_us"`
		P90us float64 `json:"p90_us"`
		P99us float64 `json:"p99_us"`
		MaxUs float64 `json:"max_us"`
	} `json:"latency"`
	// Cache inlines service.Stats — the json tags of the two are one
	// wire contract, asserted by the service's round-trip tests.
	Cache struct {
		service.Stats
		HitRate      float64 `json:"hit_rate"`
		DeltaHitRate float64 `json:"delta_hit_rate"`
	} `json:"cache"`
}

// regressionTolerance is the fraction of baseline throughput a -compare
// run must reach: below 75% the gate reports a regression and the
// command exits non-zero.
const regressionTolerance = 0.75

// Bench implements `hsched bench`: a service-throughput benchmark over
// a generated workload. It draws a population of random base systems,
// extends each into a chain of single-transaction mutations (the
// admission-control traffic shape the delta path serves), fires a
// stream of queries at one shared analysis service from many
// goroutines (queries round-robin over the population, so the
// steady-state hit rate is high and every mutation is one step from a
// resident result), and reports throughput, cache hit rate, delta hit
// rate and p50/p99 latency — humanly, or as JSON with -json.
//
// Five workload presets exist: "default" exercises the memo and
// delta paths with the approximate analysis on multi-platform chains;
// "contended" is the same population driven from more goroutines than
// processors (16 by default; record and compare it at GOMAXPROCS=4),
// so the almost-always-hit traffic measures the memo's serialisation
// points — stripe locks, CLOCK touches, counters — rather than
// analysis work; "exact-heavy" routes single-platform, high-interference systems
// through the exact scenario sweep — the streamed/pruned/parallel
// branch-and-bound hot path — and reports the scenarios and subtrees
// the admissible bounds refuted; "exact-search" runs one exact-oracle
// Audsley search per query, the probe-chain traffic the session-
// carried sweep state (cross-probe incumbent seeding) accelerates;
// "assign" runs one full Audsley priority-assignment search per query
// against the shared service, the probe-chain traffic of the sched
// layer (every probe one priority move apart, served by the session-
// pinned incremental path and the memo). -compare FILE checks the
// measured throughput against a recorded baseline (BENCH_seed.json,
// or a previous -json report) and fails on a >25% regression. Exit
// codes: 0 success, 1 error or regression.
//
// -remote URL switches to client mode: the same workload is
// serialised once and fired over keep-alive HTTP at a running
// `hsched serve` instance; the report's cache block is then the
// server-side counter delta and the baseline key becomes "serve"
// (or "serve-<preset>"), since wire-bound throughput gates against
// its own baseline. -pipeline n keeps up to n requests in flight per
// connection (HTTP/1.1 pipelining), which amortises the per-round-trip
// syscall cost on loopback; latencies then include the queueing the
// window introduces.
func Bench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsched bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "default", "workload preset: default (approximate admission-control chains), contended (default population, 16 goroutines, hit-path contention), exact-heavy (exact scenario sweeps), exact-search (exact-oracle priority searches) or assign (priority-assignment searches)")
		systems    = fs.Int("systems", 64, "distinct random base systems in the workload population")
		mutations  = fs.Int("mutations", 4, "single-transaction mutations chained onto each base system")
		queries    = fs.Int("queries", 4096, "total queries to issue")
		goroutines = fs.Int("goroutines", 0, "concurrent client goroutines (0 = all CPUs)")
		shards     = fs.Int("shards", 0, "engine shards of the service (0 = all CPUs)")
		capacity   = fs.Int("capacity", 0, "verdict-memo capacity in entries (0 = default, negative = memo off)")
		seed       = fs.Int64("seed", 1, "workload generator seed")
		exact      = fs.Bool("exact", false, "use the exact analysis for the workload")
		util       = fs.Float64("util", 0.45, "per-platform utilisation of the generated systems")
		delta      = fs.Bool("delta", true, "route near-match queries through the incremental (delta) analysis")
		jsonOut    = fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
		compare    = fs.String("compare", "", "baseline report file; exit non-zero when throughput regresses >25% against the matching workload entry")
		remote     = fs.String("remote", "", "benchmark a running `hsched serve` instance at this base URL instead of the in-process service")
		pipeline   = fs.Int("pipeline", 1, "remote mode: requests in flight per connection (HTTP/1.1 pipelining; latencies then include pipeline queueing)")
		codec      = fs.String("codec", "json", "remote request encoding: json, or binary for the canonical wire format (zero-decode intern hits on the server)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	switch *codec {
	case "json", "binary":
	default:
		fmt.Fprintf(stderr, "hsched bench: unknown -codec %q (want json or binary)\n", *codec)
		return 1
	}
	if *codec == "binary" && *remote == "" {
		fmt.Fprintln(stderr, "hsched bench: -codec binary requires -remote (the in-process service takes no wire bytes)")
		return 1
	}
	if *codec == "binary" && (*workload == "assign" || *workload == "exact-search") {
		fmt.Fprintf(stderr, "hsched bench: -codec binary does not apply to the %s workload (/v1/assign speaks JSON only)\n", *workload)
		return 1
	}

	// Preset defaults: flags the user set explicitly always win.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch *workload {
	case "default":
	case "contended":
		// The default admission-control population driven from more
		// client goroutines than processors (16 at the recorded
		// GOMAXPROCS=4): nearly every query is a memo hit, so what the
		// preset measures is the hit path's serialisation — stripe
		// mutexes, CLOCK touches, atomic counters — not analysis work.
		if !explicit["goroutines"] {
			*goroutines = 16
		}
	case "exact-heavy":
		// Fewer, hotter systems: every miss is a full exact sweep, so
		// the population stays small and the interesting signal is the
		// cold-path latency and the pruned-scenario count.
		if !explicit["exact"] {
			*exact = true
		}
		if !explicit["systems"] {
			*systems = 8
		}
		if !explicit["mutations"] {
			*mutations = 2
		}
		if !explicit["queries"] {
			// Enough queries that the tail quantiles rest on dozens of
			// samples (256 put p99 on ~3), while the population keeps
			// every ~16th query a cold exact sweep.
			*queries = 2048
		}
		if !explicit["util"] {
			*util = 0.5
		}
	case "exact-search":
		// One whole exact-oracle Audsley search per query: tens of
		// probes each one priority move apart, the traffic the
		// session-carried sweep state (cross-probe incumbent seeding)
		// exists for. Systems stay small — the cost per query is the
		// search, not the single sweep.
		if !explicit["exact"] {
			*exact = true
		}
		if !explicit["systems"] {
			*systems = 4
		}
		if !explicit["mutations"] {
			*mutations = 1
		}
		if !explicit["queries"] {
			*queries = 16
		}
		if !explicit["util"] {
			*util = 0.5
		}
	case "assign":
		// Each query is a whole Audsley search (tens of oracle probes),
		// so far fewer queries saturate the interesting machinery: the
		// per-search probe sessions and the shared memo that answers
		// re-searched population members outright.
		if !explicit["systems"] {
			*systems = 16
		}
		if !explicit["mutations"] {
			*mutations = 2
		}
		if !explicit["queries"] {
			*queries = 64
		}
	default:
		fmt.Fprintf(stderr, "hsched bench: unknown -workload %q (want default, contended, exact-heavy, exact-search or assign)\n", *workload)
		return 1
	}
	if *systems <= 0 || *queries <= 0 || *mutations < 0 {
		fmt.Fprintln(stderr, "hsched bench: -systems and -queries must be positive, -mutations non-negative")
		return 1
	}

	// Population: each base system plus a chain of cumulative
	// single-transaction retunings — consecutive chain elements are one
	// parameter apart, exactly the near-match shape the delta path
	// absorbs.
	pop := make([]*model.System, 0, *systems*(*mutations+1))
	for k := 0; k < *systems; k++ {
		cfg := gen.Config{
			Seed: *seed + int64(k), Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 20, PeriodMax: 400, Utilization: *util,
			AlphaMin: 0.4, AlphaMax: 0.9,
		}
		if *workload == "exact-heavy" || *workload == "exact-search" {
			// One platform maximises same-platform interference — the
			// regime where the exact scenario product of Eq. 12 grows —
			// and random priorities break the rate-monotonic nesting
			// that keeps the candidate sets small.
			cfg.Platforms = 1
			cfg.ChainLen = 4
			cfg.AlphaMin, cfg.AlphaMax = 0.5, 0.9
			cfg.RandomPriorities = true
			if *workload == "exact-search" {
				// The search multiplies every system by tens of exact
				// probes; a shorter chain keeps one query in the tens of
				// milliseconds.
				cfg.ChainLen = 3
			}
		}
		sys, err := gen.System(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
		pop = append(pop, sys)
		for c := 1; c <= *mutations; c++ {
			mut := sys.Clone()
			tr := &mut.Transactions[c%len(mut.Transactions)]
			tr.Tasks[c%len(tr.Tasks)].WCET *= 1.0 + 0.02*float64(c)
			pop = append(pop, mut)
			sys = mut
		}
	}

	clients := *goroutines
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
	}

	// query issues one benchmark query; finalStats snapshots the
	// service counters the run accumulated (remotely: the server-side
	// counter delta over the run). Remote runs time their own queries
	// (a pipelined response completes on a later query call than the
	// one that wrote its request) and drain pending responses through
	// flush.
	latencies := make([]time.Duration, *queries)
	var (
		query      func(ctx context.Context, k int) error
		flush      func() error
		finalStats func() (service.Stats, error)
	)
	if *remote != "" {
		rec := func(k int, d time.Duration) { latencies[k] = d }
		q, fl, fin, err := remoteQuerier(*remote, *workload, *codec, *exact, clients, *pipeline, pop, rec)
		if err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
		query, flush, finalStats = q, fl, fin
	} else {
		deltaWindow := 0
		if !*delta {
			deltaWindow = -1
		}
		svc := service.New(service.Options{
			Shards:      *shards,
			Capacity:    *capacity,
			DeltaWindow: deltaWindow,
			Analysis:    analysis.Options{Exact: *exact, StopAtDeadlineMiss: true, Workers: 1},
		})
		// One query is one service call — except on the assign
		// workload, where it is one whole priority-assignment search
		// probing the shared service through its own session (the
		// population member is cloned: the search overwrites
		// priorities in place).
		query = func(ctx context.Context, k int) error {
			_, err := svc.Analyze(ctx, pop[k%len(pop)])
			return err
		}
		if *workload == "assign" || *workload == "exact-search" {
			assignOpt := analysis.Options{Exact: *exact, Workers: 1}
			query = func(ctx context.Context, k int) error {
				sys := pop[k%len(pop)].Clone()
				_, _, err := sched.Assign(ctx, sys, sched.PolicyAudsley, sched.AssignOptions{
					Analysis: assignOpt,
					Service:  svc,
				})
				return err
			}
		}
		finalStats = func() (service.Stats, error) { return svc.Stats(), nil }
	}
	ctx := context.Background()
	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= *queries || firstErr.Load() != nil {
					return
				}
				t0 := time.Now()
				err := query(ctx, k)
				if flush == nil {
					// Remote queries time themselves (see rec).
					latencies[k] = time.Since(t0)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if flush != nil {
		if err := flush(); err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}
	elapsed := time.Since(start)
	if err := firstErr.Load(); err != nil {
		fmt.Fprintln(stderr, "hsched bench:", err)
		return 1
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}
	st, err := finalStats()
	if err != nil {
		fmt.Fprintln(stderr, "hsched bench:", err)
		return 1
	}

	rep := benchReport{
		Workload: *workload, Remote: *remote,
		Systems: *systems, Mutations: *mutations, Queries: *queries,
		Goroutines: clients, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Exact: *exact, Delta: *delta,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1e3,
		Throughput: float64(*queries) / elapsed.Seconds(),
	}
	if *remote != "" {
		// Remote runs gate against their own baseline key: the wire
		// round-trip dominates, so comparing them to the in-process
		// numbers would always read as a regression.
		rep.Workload = remoteWorkloadName(*workload, *codec)
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	rep.Latency.P50us = us(quantile(0.50))
	rep.Latency.P90us = us(quantile(0.90))
	rep.Latency.P99us = us(quantile(0.99))
	rep.Latency.MaxUs = us(latencies[len(latencies)-1])
	rep.Cache.Stats = st
	rep.Cache.HitRate = st.HitRate()
	if st.Misses > 0 {
		rep.Cache.DeltaHitRate = float64(st.DeltaHits) / float64(st.Misses)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "workload: %s — %d systems x %d mutation chain, %d queries, %d goroutines, exact=%v delta=%v\n",
			rep.Workload, *systems, *mutations, *queries, clients, *exact, *delta)
		if *remote != "" {
			fmt.Fprintf(stdout, "remote: %s (cache stats are the server-side counter delta)\n", *remote)
		}
		fmt.Fprintf(stdout, "elapsed: %v  throughput: %.0f queries/s\n",
			elapsed.Round(time.Millisecond), rep.Throughput)
		fmt.Fprintf(stdout, "latency: p50=%v p90=%v p99=%v max=%v\n",
			quantile(0.50), quantile(0.90), quantile(0.99), latencies[len(latencies)-1])
		printCacheStats(stdout, st)
	}

	if *compare != "" {
		// Gate messages go to stderr so -json stdout stays parseable.
		if err := compareThroughput(stderr, *compare, rep.Workload, rep.Throughput); err != nil {
			fmt.Fprintln(stderr, "hsched bench:", err)
			return 1
		}
	}
	return 0
}

// remoteWorkloadName maps a workload preset to its baseline key for
// remote (client-mode) runs: "serve" for the default preset,
// "serve-<preset>" otherwise, with "-binary" appended when the wire
// codec is binary. Remote throughput is wire-bound, so it gates
// against its own recorded baseline, never the in-process one — and
// each codec against its own, since the encodings cost differently.
func remoteWorkloadName(workload, codec string) string {
	name := "serve"
	if workload != "default" {
		name += "-" + workload
	}
	if codec == "binary" {
		name += "-binary"
	}
	return name
}

// remoteQuerier builds the client-mode query function: the same
// population, serialised once into request bodies and fired at a
// running `hsched serve` over keep-alive connections. The returned
// stats function reports the server-side counter delta over the run,
// so the report's cache block means the same thing it does in-process.
func remoteQuerier(base, workload, codec string, exact bool, clients, window int, pop []*model.System, rec func(k int, d time.Duration)) (func(context.Context, int) error, func() error, func() (service.Stats, error), error) {
	base = strings.TrimRight(base, "/")
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return nil, nil, nil, fmt.Errorf("remote %q: not a URL", base)
	}
	if window < 1 {
		window = 1
	}

	path := u.Path + "/v1/analyze"
	search := workload == "assign" || workload == "exact-search"
	if search {
		path = u.Path + "/v1/assign"
	}
	// Pre-assemble every request down to the bytes on the wire: the
	// benchmark measures the server and the transport, not client-side
	// encoding — and net/http's full client stack costs several times
	// a memo-hit analysis per request, so the hot loop writes these
	// over persistent connections instead (one per goroutine, pooled),
	// keeping up to `window` requests in flight per connection.
	reqs := make([][]byte, len(pop))
	for k, sys := range pop {
		var (
			data []byte
			err  error
		)
		ctype, accept := "application/json", ""
		switch {
		case search:
			data, err = json.Marshal(&httpd.AssignRequest{
				System:  spec.FromSystem(sys),
				Policy:  "audsley",
				Options: httpd.OptionsSpec{Exact: exact},
			})
		case codec == "binary":
			// Canonical wire bytes both ways: the server answers a
			// repeated body from the intern pool without decoding, and
			// the fixed-size binary response skips JSON encoding too.
			ctype = httpd.ContentTypeBinary
			accept = "Accept: " + httpd.ContentTypeBinary + "\r\n"
			data, err = httpd.EncodeAnalyzeRequestBinary(sys, httpd.OptionsSpec{Exact: exact, StopAtDeadlineMiss: true})
		default:
			data, err = json.Marshal(&httpd.AnalyzeRequest{
				System:  spec.FromSystem(sys),
				Options: httpd.OptionsSpec{Exact: exact, StopAtDeadlineMiss: true},
			})
		}
		if err != nil {
			return nil, nil, nil, err
		}
		reqs[k] = fmt.Appendf(nil,
			"POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: %s\r\n%sContent-Length: %d\r\n\r\n%s",
			path, u.Host, ctype, accept, len(data), data)
	}

	// Warm-up: prime every distinct request once, sequentially, so the
	// measured run starts from the steady state the benchmark means to
	// characterise regardless of what the server saw before. The stats
	// snapshot is taken after the warm-up — not at connect time — so
	// the reported cache block is the counter delta of the measured
	// queries alone, never of warm-up or pre-existing traffic.
	wc, err := dialBench(u.Host)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("remote %s unreachable: %w", base, err)
	}
	for k := range reqs {
		if err := wc.submit(k, reqs[k], 1, func(int, time.Duration) {}); err != nil {
			wc.conn.Close()
			return nil, nil, nil, fmt.Errorf("remote %s warm-up: %w", path, err)
		}
	}
	wc.conn.Close()

	client := &http.Client{}
	before, err := remoteStats(client, base)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("remote %s unreachable: %w", base, err)
	}

	conns := make(chan *benchConn, clients)
	query := func(ctx context.Context, k int) error {
		var bc *benchConn
		select {
		case bc = <-conns:
		default:
			var err error
			if bc, err = dialBench(u.Host); err != nil {
				return err
			}
		}
		if err := bc.submit(k, reqs[k%len(reqs)], window, rec); err != nil {
			bc.conn.Close()
			return fmt.Errorf("remote %s: %w", path, err)
		}
		conns <- bc
		return nil
	}
	// flush drains the responses still in flight at the end of the run
	// and closes every pooled connection.
	flush := func() error {
		var firstErr error
		for {
			select {
			case bc := <-conns:
				for len(bc.inflight) > 0 && firstErr == nil {
					firstErr = bc.readOne(rec)
				}
				bc.conn.Close()
			default:
				if firstErr != nil {
					return fmt.Errorf("remote %s: %w", path, firstErr)
				}
				return nil
			}
		}
	}
	finalStats := func() (service.Stats, error) {
		after, err := remoteStats(client, base)
		if err != nil {
			return service.Stats{}, err
		}
		return service.Stats{
			Queries:         after.Queries - before.Queries,
			Hits:            after.Hits - before.Hits,
			Misses:          after.Misses - before.Misses,
			Evictions:       after.Evictions - before.Evictions,
			InflightDedups:  after.InflightDedups - before.InflightDedups,
			DeltaHits:       after.DeltaHits - before.DeltaHits,
			RoundsSaved:     after.RoundsSaved - before.RoundsSaved,
			ScenariosPruned: after.ScenariosPruned - before.ScenariosPruned,
			SubtreesPruned:  after.SubtreesPruned - before.SubtreesPruned,
			InternHits:      after.InternHits - before.InternHits,
			InternMisses:    after.InternMisses - before.InternMisses,
			// Resident is a gauge, not a counter: report the pool size
			// at the end of the run, not a meaningless difference.
			Resident: after.Resident,
		}, nil
	}
	return query, flush, finalStats, nil
}

// benchConn is one persistent keep-alive connection of the bench
// client's hot loop, carrying the write-time FIFO of its in-flight
// pipelined requests.
type benchConn struct {
	conn     net.Conn
	br       *bufio.Reader
	inflight []pendingReq
}

// pendingReq is one written-but-unanswered request: responses arrive
// in request order, so the head of the FIFO names the next response.
type pendingReq struct {
	k  int
	t0 time.Time
}

func dialBench(host string) (*benchConn, error) {
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	return &benchConn{conn: conn, br: bufio.NewReader(conn)}, nil
}

// submit writes one pre-assembled request, then reads responses until
// the connection is back under its pipeline window. Each response is
// timed from its own request's write (rec), so pipelined latencies
// include the queueing the window introduces.
func (c *benchConn) submit(k int, req []byte, window int, rec func(int, time.Duration)) error {
	c.conn.SetDeadline(time.Now().Add(2 * time.Minute)) //nolint:errcheck
	t0 := time.Now()
	if _, err := c.conn.Write(req); err != nil {
		return err
	}
	c.inflight = append(c.inflight, pendingReq{k: k, t0: t0})
	for len(c.inflight) >= window {
		if err := c.readOne(rec); err != nil {
			return err
		}
	}
	return nil
}

// readOne consumes the response of the oldest in-flight request,
// draining the body so the connection stays reusable.
func (c *benchConn) readOne(rec func(int, time.Duration)) error {
	p := c.inflight[0]
	c.inflight = c.inflight[1:]
	resp, err := http.ReadResponse(c.br, nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	rec(p.k, time.Since(p.t0))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// remoteStats fetches the server's service counters from /v1/stats.
func remoteStats(client *http.Client, base string) (service.Stats, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return service.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.Stats{}, fmt.Errorf("GET /v1/stats: status %d", resp.StatusCode)
	}
	var st httpd.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Stats{}, fmt.Errorf("GET /v1/stats: %w", err)
	}
	return st.Service, nil
}

// compareThroughput loads a baseline report file and fails when the
// measured throughput falls below regressionTolerance of the recorded
// one. The file is either a map of workload name to report (the
// committed BENCH_seed.json) or a single report from a previous
// `hsched bench -json` run.
func compareThroughput(out io.Writer, path, workload string, measured float64) error {
	base, err := loadBaseline(path, workload)
	if err != nil {
		return err
	}
	floor := regressionTolerance * base.Throughput
	ratio := 0.0
	if base.Throughput > 0 {
		ratio = measured / base.Throughput
	}
	if measured < floor {
		return fmt.Errorf("throughput regression on workload %q: %.0f qps is %.0f%% of the %.0f qps baseline (floor %.0f%%)",
			workload, measured, 100*ratio, base.Throughput, 100*regressionTolerance)
	}
	fmt.Fprintf(out, "bench compare: workload %q at %.0f%% of baseline throughput (%.0f vs %.0f qps) — ok\n",
		workload, 100*ratio, measured, base.Throughput)
	return nil
}

// loadBaseline reads the baseline entry for a workload; see
// compareThroughput for the accepted shapes.
func loadBaseline(path, workload string) (benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, fmt.Errorf("baseline: %w", err)
	}
	var single benchReport
	if err := json.Unmarshal(data, &single); err == nil && single.Throughput > 0 {
		// A bare report matches when it does not name a conflicting
		// workload (older reports predate the field).
		if single.Workload == "" || single.Workload == workload {
			return single, nil
		}
		return benchReport{}, fmt.Errorf("baseline %s records workload %q, not %q", path, single.Workload, workload)
	}
	var byWorkload map[string]benchReport
	if err := json.Unmarshal(data, &byWorkload); err == nil {
		if rep, ok := byWorkload[workload]; ok && rep.Throughput > 0 {
			return rep, nil
		}
		return benchReport{}, fmt.Errorf("baseline %s has no entry for workload %q", path, workload)
	}
	return benchReport{}, fmt.Errorf("baseline %s: neither a bench report nor a workload map", path)
}
