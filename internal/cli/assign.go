package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"hsched/internal/analysis"
	"hsched/internal/sched"
	"hsched/internal/service"
)

// Assign implements `hsched assign`: load a system, run one
// priority-assignment policy (rm, dm, hopa or audsley), print the
// installed per-task priorities with their response-time bounds, and
// report whether the assignment is schedulable. The search policies
// probe the holistic analysis through a probe session on a memoised
// analysis service; -cache prints the service's statistics line (the
// same shape `hsched -cache` prints), showing how much of the probe
// traffic the memo and the incremental path absorbed. Exit codes: 0
// schedulable, 2 unschedulable, 1 error.
func Assign(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsched assign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath   = fs.String("spec", "", "JSON system specification (default: built-in paper example)")
		policy     = fs.String("policy", "audsley", "assignment policy: rm, dm, hopa or audsley")
		iterations = fs.Int("iterations", 0, "HOPA deadline-redistribution rounds (0 = default)")
		exact      = fs.Bool("exact", false, "use the exact scenario enumeration as the oracle")
		workers    = fs.Int("workers", 0, "per-round response-time workers (0 = all CPUs; results are identical)")
		cache      = fs.Bool("cache", false, "print the oracle service's cache statistics line")
		delta      = fs.Bool("delta", true, "let the oracle service re-analyse near-match probes incrementally (delta path)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	sys, err := loadSystem(*specPath, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "hsched assign:", err)
		return 1
	}

	deltaWindow := 0
	if !*delta {
		deltaWindow = -1
	}
	opt := analysis.Options{Exact: *exact, Workers: *workers}
	// The search is sequential, so a single shard holds the one warm
	// engine every probe reuses.
	svc := service.New(service.Options{Shards: 1, DeltaWindow: deltaWindow, Analysis: opt})

	res, ok, err := sched.Assign(context.Background(), sys, sched.Policy(*policy), sched.AssignOptions{
		Analysis:   opt,
		Iterations: *iterations,
		Service:    svc,
	})
	if err != nil {
		fmt.Fprintln(stderr, "hsched assign:", err)
		return 1
	}

	fmt.Fprintf(stdout, "policy: %s\n", *policy)
	w := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "task\tplatform\tpriority\tR\tdeadline\tverdict")
	for i := range res.Tasks {
		tr := &res.System.Transactions[i]
		for j, tb := range res.Tasks[i] {
			verdict := ""
			if j == len(res.Tasks[i])-1 {
				if math.IsInf(tb.Worst, 1) || tb.Worst > tr.Deadline {
					verdict = "MISS"
				} else {
					verdict = "ok"
				}
			}
			fmt.Fprintf(w, "%s\tPi%d\t%d\t%.3f\t%.3f\t%s\n",
				res.System.TaskName(i, j), tr.Tasks[j].Platform+1,
				tr.Tasks[j].Priority, tb.Worst, tr.Deadline, verdict)
		}
	}
	w.Flush()
	fmt.Fprintf(stdout, "schedulable: %v\n", ok)
	if *cache {
		printCacheStats(stdout, svc.Stats())
	}
	if !ok {
		return 2
	}
	return 0
}
