package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/httpd"
	"hsched/internal/service"
)

// Serve implements `hsched serve`: the HTTP/JSON analysis server of
// internal/httpd over one shared analysis service. The process runs
// until SIGTERM or SIGINT, then drains gracefully — the listener
// closes, in-flight analyses finish or hit their per-request
// deadlines, and a final stats line is flushed to stderr. Exit codes:
// 0 after a clean drain, 1 on startup or drain errors.
func Serve(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsched serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		shards      = fs.Int("shards", 0, "engine shards of the service (0 = all CPUs)")
		cache       = fs.Int("cache", 0, "verdict-memo capacity in entries (0 = default, negative = memo off)")
		delta       = fs.Bool("delta", true, "route near-match queries through the incremental (delta) analysis")
		maxInflight = fs.Int("max-inflight", 0, "concurrent analyses beyond which requests are shed with a 429 (0 = unbounded)")
		maxSessions = fs.Int("max-sessions", 0, "probe sessions kept before LRU eviction (0 = default 1024)")
		parseMemo   = fs.Int("parse-memo", 0, "analyze bodies kept in the body-hash decode cache (0 = default 512, negative = off)")
		workers     = fs.Int("workers", 1, "default per-analysis worker bound; requests may override (0 = all CPUs)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown bound for in-flight requests")
		pprofFlag   = fs.Bool("pprof", false, "expose /debug/pprof and enable mutex/block profiling at a low sample rate")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *pprofFlag {
		// Low-rate contention profiling: 1 in 100 mutex contention
		// events and blocking events ≥ 1 ms are cheap enough to leave
		// on in production, and enough signal to diagnose a stripe or
		// engine-lock regression with `go tool pprof
		// http://.../debug/pprof/mutex` (or /block).
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Millisecond.Nanoseconds()))
	}

	deltaWindow := 0
	if !*delta {
		deltaWindow = -1
	}
	defOpt := analysis.Options{Workers: *workers}
	svc := service.New(service.Options{
		Shards:      *shards,
		Capacity:    *cache,
		DeltaWindow: deltaWindow,
		Analysis:    defOpt,
	})
	srv := httpd.New(httpd.Options{
		Service:      svc,
		Analysis:     defOpt,
		MaxInflight:  *maxInflight,
		MaxSessions:  *maxSessions,
		ParseMemo:    *parseMemo,
		DrainTimeout: *drain,
		Pprof:        *pprofFlag,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "hsched serve:", err)
		return 1
	}
	// The resolved address line is the startup contract: scripts (and
	// the tests) bind port 0 and read the port back from here.
	fmt.Fprintf(stdout, "hsched serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := srv.Serve(ctx, ln, stderr); err != nil {
		fmt.Fprintln(stderr, "hsched serve:", err)
		return 1
	}
	return 0
}
