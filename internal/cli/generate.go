package cli

import (
	"flag"
	"fmt"
	"io"

	"hsched/internal/gen"
	"hsched/internal/spec"
)

// Generate implements cmd/hsgen: draw a random system and print it as
// a JSON specification consumable by hsched and hsim. Exit codes: 0
// success, 1 error.
func Generate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed         = fs.Int64("seed", 1, "random seed")
		platforms    = fs.Int("platforms", 3, "number of abstract platforms")
		transactions = fs.Int("transactions", 5, "number of transactions")
		chain        = fs.Int("chain", 3, "maximum tasks per transaction")
		periodMin    = fs.Float64("period-min", 10, "minimum period")
		periodMax    = fs.Float64("period-max", 1000, "maximum period (log-uniform draw)")
		util         = fs.Float64("util", 0.5, "per-platform utilisation target in (0, 1)")
		alphaMin     = fs.Float64("alpha-min", 0.3, "minimum platform rate")
		alphaMax     = fs.Float64("alpha-max", 0.9, "maximum platform rate")
		serverPeriod = fs.Float64("server-period", 0, "implied periodic-server period (0: period-min/4)")
		bcet         = fs.Float64("bcet", 0.5, "BCET as a fraction of WCET")
		dfactor      = fs.Float64("deadline-factor", 1, "deadline as a multiple of the period")
		randomPrio   = fs.Bool("random-priorities", false, "random priorities instead of rate-monotonic")
		out          = fs.String("o", "", "write to a file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	sys, err := gen.System(gen.Config{
		Seed:         *seed,
		Platforms:    *platforms,
		Transactions: *transactions,
		ChainLen:     *chain,
		PeriodMin:    *periodMin, PeriodMax: *periodMax,
		Utilization: *util,
		AlphaMin:    *alphaMin, AlphaMax: *alphaMax,
		ServerPeriod:     *serverPeriod,
		BCETFraction:     *bcet,
		DeadlineFactor:   *dfactor,
		RandomPriorities: *randomPrio,
	})
	if err != nil {
		fmt.Fprintln(stderr, "hsgen:", err)
		return 1
	}
	if *out != "" {
		if err := spec.Save(sys, *out); err != nil {
			fmt.Fprintln(stderr, "hsgen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d transactions on %d platforms to %s\n",
			len(sys.Transactions), len(sys.Platforms), *out)
		return 0
	}
	data, err := spec.Marshal(sys)
	if err != nil {
		fmt.Fprintln(stderr, "hsgen:", err)
		return 1
	}
	stdout.Write(data)
	return 0
}
