package cli

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hsched/internal/experiments"
	"hsched/internal/httpd"
	"hsched/internal/spec"
)

// syncBuffer is an io.Writer the server goroutine and the test can
// share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe runs `hsched serve` on a free port and returns its base
// URL, the exit-code channel and the stderr buffer (which receives the
// final stats line on drain).
func startServe(t *testing.T, args []string) (string, chan int, *syncBuffer) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	exit := make(chan int, 1)
	go func() {
		exit <- Serve(append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, stderr)
	}()
	const banner = "listening on "
	deadline := time.Now().Add(10 * time.Second)
	for {
		if out := stdout.String(); strings.Contains(out, banner) {
			addr := out[strings.Index(out, banner)+len(banner):]
			addr = strings.TrimSpace(addr[:strings.Index(addr, "\n")])
			return "http://" + addr, exit, stderr
		}
		select {
		case code := <-exit:
			t.Fatalf("serve exited early with %d: %s", code, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never printed its address; stdout: %q", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sigterm delivers SIGTERM to this process — safe while Serve's
// signal.NotifyContext is registered, which relays it as a context
// cancel instead of the default termination.
func sigterm(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

// TestServeSIGTERM is the CI smoke test in miniature: start the
// server, analyse the paper example over the wire, check the stats
// endpoint, SIGTERM, and require a clean exit with a final stats line.
func TestServeSIGTERM(t *testing.T) {
	base, exit, stderr := startServe(t, nil)

	body, err := json.Marshal(&httpd.AnalyzeRequest{System: spec.FromSystem(experiments.PaperSystem())})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, data)
	}
	var ar httpd.AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Schedulable {
		t.Error("paper example not schedulable over the wire")
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st httpd.StatsResponse
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Service.Queries != 1 {
		t.Errorf("service queries = %d, want 1", st.Service.Queries)
	}

	sigterm(t)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("serve exited %d after SIGTERM: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
	if !strings.Contains(stderr.String(), "final stats") {
		t.Errorf("no final stats line on stderr: %q", stderr.String())
	}
	// The listener is gone.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("server still reachable after drained exit")
	}
}

// TestServePprof smoke-tests the -pprof flag: the profile routes only
// exist when asked for, and the mutex profile — enabled at a low
// sample rate by the flag — is served.
func TestServePprof(t *testing.T) {
	base, exit, stderr := startServe(t, []string{"-pprof"})
	resp, err := http.Get(base + "/debug/pprof/mutex?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof mutex: status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "mutex") {
		t.Errorf("pprof mutex profile body: %q", data)
	}
	sigterm(t)
	if code := <-exit; code != 0 {
		t.Fatalf("serve exited %d: %s", code, stderr.String())
	}

	// Without the flag the debug surface must not exist.
	base, exit, stderr = startServe(t, nil)
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof routes without -pprof: status %d, want 404", resp.StatusCode)
	}
	sigterm(t)
	if code := <-exit; code != 0 {
		t.Fatalf("serve exited %d: %s", code, stderr.String())
	}
}

func TestServeBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Serve([]string{"-bogus"}, &out, &errb); code != 1 {
		t.Errorf("bad flag: exit %d, want 1", code)
	}
	if code := Serve([]string{"-addr", "256.0.0.1:bad"}, &out, &errb); code != 1 {
		t.Errorf("bad addr: exit %d, want 1", code)
	}
}

// TestBenchRemote runs the bench client mode against a served
// instance: the report must carry the "serve" baseline key, every
// query must succeed, and the cache block must reflect the
// server-side counters (high hit rate on the round-robin workload).
func TestBenchRemote(t *testing.T) {
	base, exit, _ := startServe(t, []string{"-max-inflight", "64"})

	var out, errb bytes.Buffer
	code := Bench([]string{
		"-remote", base, "-systems", "4", "-mutations", "2",
		"-queries", "128", "-goroutines", "4", "-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("bench -remote exit %d: %s", code, errb.String())
	}
	var rep struct {
		Workload   string  `json:"workload"`
		Remote     string  `json:"remote"`
		Throughput float64 `json:"throughput_qps"`
		Cache      struct {
			Queries int64 `json:"queries"`
			Hits    int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, out.String())
	}
	if rep.Workload != "serve" || rep.Remote != base {
		t.Errorf("report provenance: workload %q remote %q", rep.Workload, rep.Remote)
	}
	if rep.Throughput <= 0 {
		t.Error("no throughput measured")
	}
	if rep.Cache.Queries != 128 {
		t.Errorf("server-side query delta = %d, want 128", rep.Cache.Queries)
	}
	if rep.Cache.Hits == 0 {
		t.Error("round-robin workload produced no server-side memo hits")
	}

	// Pipelined run over the same server: the window keeps several
	// requests in flight per connection and flush drains the tail, so
	// the server-side query delta must still match exactly.
	out.Reset()
	errb.Reset()
	code = Bench([]string{
		"-remote", base, "-systems", "4", "-mutations", "2",
		"-queries", "128", "-goroutines", "2", "-pipeline", "8", "-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("bench -remote -pipeline exit %d: %s", code, errb.String())
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("pipelined report: %v\n%s", err, out.String())
	}
	if rep.Cache.Queries != 128 {
		t.Errorf("pipelined server-side query delta = %d, want 128", rep.Cache.Queries)
	}
	if rep.Throughput <= 0 {
		t.Error("pipelined run measured no throughput")
	}

	sigterm(t)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("serve exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit")
	}
}

// TestBenchRemoteBinary drives the bench client in binary-codec mode
// against a served instance: the report must carry the "serve-binary"
// baseline key, the query delta must be exact, and the server-side
// intern counters must show the population resident with every repeat
// answered without a decode.
func TestBenchRemoteBinary(t *testing.T) {
	base, exit, _ := startServe(t, []string{"-max-inflight", "64"})

	var out, errb bytes.Buffer
	code := Bench([]string{
		"-remote", base, "-codec", "binary", "-systems", "4", "-mutations", "2",
		"-queries", "128", "-goroutines", "4", "-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("bench -remote -codec binary exit %d: %s", code, errb.String())
	}
	var rep struct {
		Workload   string  `json:"workload"`
		Throughput float64 `json:"throughput_qps"`
		Cache      struct {
			Queries      int64 `json:"queries"`
			Hits         int64 `json:"hits"`
			InternHits   int64 `json:"intern_hits"`
			InternMisses int64 `json:"intern_misses"`
			Resident     int64 `json:"intern_resident"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, out.String())
	}
	if rep.Workload != "serve-binary" {
		t.Errorf("baseline key %q, want serve-binary", rep.Workload)
	}
	if rep.Throughput <= 0 {
		t.Error("no throughput measured")
	}
	if rep.Cache.Queries != 128 {
		t.Errorf("server-side query delta = %d, want 128", rep.Cache.Queries)
	}
	// 12 distinct systems, 128 queries: the measured run sees only
	// intern hits (the warm-up primed the pool) and the pool holds
	// exactly the population.
	if rep.Cache.InternHits != 128 || rep.Cache.InternMisses != 0 {
		t.Errorf("intern delta = %d hits / %d misses, want 128/0", rep.Cache.InternHits, rep.Cache.InternMisses)
	}
	if rep.Cache.Resident != 12 {
		t.Errorf("intern resident = %d, want 12", rep.Cache.Resident)
	}

	sigterm(t)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("serve exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit")
	}
}

// TestBenchCodecValidation: binary is remote-only and analyze-only.
func TestBenchCodecValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-codec", "binary", "-queries", "8"}, &out, &errb); code != 1 {
		t.Errorf("-codec binary without -remote: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "requires -remote") {
		t.Errorf("error does not explain the -remote requirement: %s", errb.String())
	}
	errb.Reset()
	if code := Bench([]string{"-codec", "binary", "-remote", "http://127.0.0.1:1", "-workload", "assign"}, &out, &errb); code != 1 {
		t.Errorf("-codec binary on assign: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "JSON only") {
		t.Errorf("error does not explain the JSON-only route: %s", errb.String())
	}
	errb.Reset()
	if code := Bench([]string{"-codec", "msgpack"}, &out, &errb); code != 1 {
		t.Errorf("unknown codec: exit %d, want 1", code)
	}
}

// TestBenchRemoteUnreachable: a dead remote is a startup error, not a
// hang or a zero-query report.
func TestBenchRemoteUnreachable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-remote", "http://127.0.0.1:1", "-queries", "8"}, &out, &errb); code != 1 {
		t.Errorf("unreachable remote: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unreachable") {
		t.Errorf("error does not say unreachable: %s", errb.String())
	}
}

// TestServeSessionProbeChainRemote drives the remote Audsley-style
// probe shape end to end: a session token, a full-spec probe, then
// chained one-edit probes; the session stats over the wire must show
// both memo hits and delta hits.
func TestServeSessionProbeChainRemote(t *testing.T) {
	base, exit, _ := startServe(t, nil)
	client := &http.Client{}

	post := func(path string, payload any) (*http.Response, []byte) {
		t.Helper()
		data, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	resp, body := post("/v1/session", &httpd.SessionRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d: %s", resp.StatusCode, body)
	}
	var tok httpd.SessionResponse
	if err := json.Unmarshal(body, &tok); err != nil {
		t.Fatal(err)
	}
	path := "/v1/session/" + tok.Token + "/analyze"

	file := spec.FromSystem(experiments.PaperSystem())
	if resp, body = post(path, &httpd.AnalyzeRequest{System: file}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed probe: %d: %s", resp.StatusCode, body)
	}
	// Identical probe: memo hit.
	if resp, body = post(path, &httpd.AnalyzeRequest{System: file}); resp.StatusCode != http.StatusOK {
		t.Fatalf("memo probe: %d: %s", resp.StatusCode, body)
	}
	// Chain of one-edit probes, each riding the pinned seed.
	var last httpd.AnalyzeResponse
	for i := 0; i < 3; i++ {
		repl := file.Transactions[0]
		repl.Tasks[0].WCET = 1.0 + 0.05*float64(i+1)
		edit := &httpd.AnalyzeRequest{Edit: &httpd.EditSpec{
			Set: []httpd.TransactionSet{{Index: 1, Transaction: repl}},
		}}
		if resp, body = post(path, edit); resp.StatusCode != http.StatusOK {
			t.Fatalf("edit probe %d: %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		if last.Delta == nil {
			t.Errorf("edit probe %d ran cold", i)
		}
	}
	ss := last.SessionStats
	if ss == nil || ss.MemoHits == 0 || ss.DeltaHits == 0 {
		t.Fatalf("remote probe chain stats: %+v, want memo and delta hits", ss)
	}
	if ss.Probes != 5 || ss.MemoHits+ss.Executed != ss.Probes {
		t.Errorf("probe accounting: %+v", ss)
	}

	sigterm(t)
	if code := <-exit; code != 0 {
		t.Fatalf("serve exited %d", code)
	}
}
