package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestAnalyzePaperExample(t *testing.T) {
	var out, errb bytes.Buffer
	code := Analyze(nil, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"tau1,4", "31.000", "schedulable: true", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAnalyzeSensitivityFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := Analyze([]string{"-sensitivity"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "critical WCET scaling factor") {
		t.Errorf("missing sensitivity line:\n%s", out.String())
	}
}

func TestAnalyzeDumpAndReload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Analyze([]string{"-dump"}, &out, &errb); code != 0 {
		t.Fatalf("dump exit %d: %s", code, errb.String())
	}
	// The dump starts after the "no -spec" banner; find the JSON.
	s := out.String()
	idx := strings.Index(s, "{")
	if idx < 0 {
		t.Fatalf("no JSON in dump output")
	}
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := writeFile(path, []byte(s[idx:])); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errb.Reset()
	if code := Analyze([]string{"-spec", path}, &out, &errb); code != 0 {
		t.Fatalf("reload exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "schedulable: true") {
		t.Errorf("reloaded analysis output:\n%s", out.String())
	}
}

func TestAnalyzeUnschedulableExitCode(t *testing.T) {
	doc := `{"platforms":[{"alpha":0.3,"delta":1,"beta":0}],
	         "transactions":[{"period":10,"tasks":[{"wcet":5,"priority":1,"platform":1}]}]}`
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, []byte(doc)); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := Analyze([]string{"-spec", path}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; out:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISS") {
		t.Errorf("missing MISS marker:\n%s", out.String())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Analyze([]string{"-spec", "/nonexistent.json"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := Analyze([]string{"-bogus-flag"}, &out, &errb); code != 1 {
		t.Errorf("bad flag: exit %d, want 1", code)
	}
}

func TestSimulatePaperExample(t *testing.T) {
	var out, errb bytes.Buffer
	code := Simulate([]string{"-horizon", "1050", "-step", "0.01"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"realised by", "max end-to-end", "misses 0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSimulateEDFAndTrace(t *testing.T) {
	var out, errb bytes.Buffer
	code := Simulate([]string{"-horizon", "200", "-step", "0.01", "-policy", "edf", "-trace", "5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "release") {
		t.Errorf("trace not printed:\n%s", out.String())
	}
}

func TestSimulateBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Simulate([]string{"-mode", "chaotic"}, &out, &errb); code != 1 {
		t.Errorf("bad mode: exit %d, want 1", code)
	}
	if code := Simulate([]string{"-policy", "lottery"}, &out, &errb); code != 1 {
		t.Errorf("bad policy: exit %d, want 1", code)
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.json")
	var out, errb bytes.Buffer
	code := Generate([]string{"-seed", "7", "-platforms", "2", "-transactions", "4", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := Analyze([]string{"-spec", path}, &out, &errb); code != 0 && code != 2 {
		t.Fatalf("analysing generated spec: exit %d, stderr: %s", code, errb.String())
	}
}

func TestGenerateToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Generate([]string{"-seed", "3"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"platforms"`) {
		t.Errorf("no JSON on stdout:\n%s", out.String())
	}
}

func TestGenerateBadConfig(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Generate([]string{"-util", "1.5"}, &out, &errb); code != 1 {
		t.Errorf("bad util: exit %d, want 1", code)
	}
}

func TestExperCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Exper([]string{"-table", "3", "-csv"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "iteration,task,jitter,response\n") {
		t.Errorf("csv header missing:\n%s", out.String())
	}
	out.Reset()
	if code := Exper([]string{"-figure", "3", "-csv"}, &out, &errb); code != 0 {
		t.Fatalf("figure csv exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "t,zmin,zmax,lower,upper\n") {
		t.Errorf("figure csv header missing")
	}
	if code := Exper([]string{"-table", "1", "-csv"}, &out, &errb); code != 1 {
		t.Errorf("unsupported csv target: exit %d, want 1", code)
	}
}

func TestExperSingleArtefacts(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-table", "1"}, "phi_min"},
		{[]string{"-table", "2"}, "Pi3 (Integrator)"},
		{[]string{"-table", "3"}, "holistic iterations"},
		{[]string{"-figure", "3"}, "supply functions"},
		{[]string{"-figure", "5"}, "example application"},
		{[]string{"-ablation", "exact"}, "Ablation A1"},
		{[]string{"-ablation", "design"}, "Ablation A5"},
		{[]string{"-ablation", "network"}, "Ablation A6"},
		{[]string{"-ablation", "edf"}, "Ablation A7"},
		{[]string{"-ablation", "acceptance"}, "Ablation A8"},
		{[]string{"-ablation", "admission"}, "Ablation A9"},
		{[]string{"-ablation", "assign"}, "Ablation A10"},
	}
	for _, c := range cases {
		var out, errb bytes.Buffer
		if code := Exper(c.args, &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d, stderr: %s", c.args, code, errb.String())
		}
		if !strings.Contains(out.String(), c.want) {
			t.Errorf("%v: output missing %q", c.args, c.want)
		}
	}
}

// TestAssignPolicies: the assign subcommand runs every policy on the
// paper example, prints the installed priorities and the verdict, and
// exits 0.
func TestAssignPolicies(t *testing.T) {
	for _, policy := range []string{"rm", "dm", "hopa", "audsley"} {
		var out, errb bytes.Buffer
		if code := Assign([]string{"-policy", policy}, &out, &errb); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", policy, code, errb.String())
		}
		for _, want := range []string{"policy: " + policy, "tau1,4", "schedulable: true"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("%s: output missing %q:\n%s", policy, want, out.String())
			}
		}
	}
}

// TestAssignCacheFlag: -cache prints the oracle's stats line, and on
// the Audsley search it must show memo hits and incremental probes —
// the acceptance criterion of the service-routed search layer.
func TestAssignCacheFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Assign([]string{"-policy", "audsley", "-cache", "-delta"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "cache: queries=") {
		t.Fatalf("cache stats line missing:\n%s", s)
	}
	if strings.Contains(s, "delta-hits=0 ") {
		t.Errorf("audsley probes never rode the delta path:\n%s", s)
	}
	if strings.Contains(s, " hits=0 ") {
		t.Errorf("audsley probes never hit the memo:\n%s", s)
	}

	// With the delta path off the stats line must report zero delta
	// hits (cold probes), and the verdict must be unchanged.
	out.Reset()
	if code := Assign([]string{"-policy", "audsley", "-cache", "-delta=false"}, &out, &errb); code != 0 {
		t.Fatalf("-delta=false exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "delta-hits=0 ") {
		t.Errorf("-delta=false still delta-hit:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "schedulable: true") {
		t.Errorf("verdict missing:\n%s", out.String())
	}
}

// TestAssignBadFlags: unknown policies and specs fail cleanly.
func TestAssignBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Assign([]string{"-policy", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("unknown policy: exit %d, want 1", code)
	}
	if code := Assign([]string{"-spec", "/does/not/exist.json"}, &out, &errb); code != 1 {
		t.Errorf("missing spec: exit %d, want 1", code)
	}
}

func TestAnalyzeCacheFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Analyze([]string{"-cache"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cache: queries=1") {
		t.Errorf("cache stats line missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "schedulable: true") {
		t.Errorf("verdict missing with -cache:\n%s", out.String())
	}
}

func TestExperCacheFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Exper([]string{"-ablation", "acceptance", "-cache", "-workers", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Ablation A8") {
		t.Errorf("acceptance table missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cache: queries=") {
		t.Errorf("cache stats line missing:\n%s", out.String())
	}
	// CSV mode keeps stdout machine-readable: stats go to stderr.
	out.Reset()
	errb.Reset()
	if code := Exper([]string{"-ablation", "acceptance", "-cache", "-csv", "-workers", "2"}, &out, &errb); code != 0 {
		t.Fatalf("csv exit %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "cache: queries=") {
		t.Errorf("stats leaked into CSV stdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "cache: queries=") {
		t.Errorf("stats missing from stderr in csv mode:\n%s", errb.String())
	}
}

func TestBench(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-systems", "4", "-queries", "64", "-goroutines", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"throughput:", "p50=", "p99=", "cache: queries=64"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("bench output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBenchJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-systems", "4", "-mutations", "2", "-queries", "96", "-goroutines", "2", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Queries    int     `json:"queries"`
		Throughput float64 `json:"throughput_qps"`
		Latency    struct {
			P99us float64 `json:"p99_us"`
		} `json:"latency"`
		Cache struct {
			Queries      int64   `json:"queries"`
			DeltaHits    int64   `json:"delta_hits"`
			RoundsSaved  int64   `json:"rounds_saved"`
			DeltaHitRate float64 `json:"delta_hit_rate"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bench -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Queries != 96 || rep.Cache.Queries != 96 {
		t.Errorf("report queries = %d/%d, want 96", rep.Queries, rep.Cache.Queries)
	}
	if rep.Throughput <= 0 || rep.Latency.P99us <= 0 {
		t.Errorf("report missing throughput/latency: %+v", rep)
	}
	// The mutation-chain workload must exercise the delta path.
	if rep.Cache.DeltaHits == 0 || rep.Cache.RoundsSaved == 0 {
		t.Errorf("mutation-chain bench never hit the delta path: %+v", rep)
	}
}

func TestBenchDeltaOff(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-systems", "4", "-mutations", "2", "-queries", "48", "-goroutines", "2", "-delta=false", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Cache struct {
			DeltaHits int64 `json:"delta_hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cache.DeltaHits != 0 {
		t.Errorf("delta hits with -delta=false: %+v", rep)
	}
}

func TestBenchBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-queries", "0"}, &out, &errb); code != 1 {
		t.Errorf("zero queries: exit %d, want 1", code)
	}
	if code := Bench([]string{"-nope"}, &out, &errb); code != 1 {
		t.Errorf("unknown flag: exit %d, want 1", code)
	}
}

func TestBenchExactHeavyWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-workload", "exact-heavy", "-systems", "3", "-mutations", "1", "-queries", "48", "-goroutines", "2", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Workload string `json:"workload"`
		Exact    bool   `json:"exact"`
		Cache    struct {
			ScenariosPruned int64 `json:"scenarios_pruned"`
			SubtreesPruned  int64 `json:"subtrees_pruned"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bench -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Workload != "exact-heavy" || !rep.Exact {
		t.Errorf("preset not applied: %+v", rep)
	}
	// The single-platform high-interference population must route
	// through the exact sweep and engage the admissible bounds — both
	// per-scenario skips and whole-subtree jumps.
	if rep.Cache.ScenariosPruned <= 0 {
		t.Errorf("exact-heavy bench pruned no scenarios: %+v", rep)
	}
	if rep.Cache.SubtreesPruned <= 0 {
		t.Errorf("exact-heavy bench pruned no subtrees: %+v", rep)
	}
	if code := Bench([]string{"-workload", "nope"}, &out, &errb); code != 1 {
		t.Errorf("unknown workload: exit %d, want 1", code)
	}
}

// TestBenchAssignWorkload: the assign preset runs whole Audsley
// searches against the shared service; the report must show far more
// oracle probes than queries (each query is a search) and the probe
// traffic riding the memo and the delta path.
func TestBenchAssignWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-workload", "assign", "-systems", "4", "-mutations", "1", "-queries", "12", "-goroutines", "2", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Workload string `json:"workload"`
		Queries  int    `json:"queries"`
		Cache    struct {
			Queries   int64 `json:"queries"`
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			DeltaHits int64 `json:"delta_hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bench -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Workload != "assign" || rep.Queries != 12 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Cache.Queries <= int64(rep.Queries) {
		t.Errorf("cache queries %d should far exceed the %d searches (oracle probes)", rep.Cache.Queries, rep.Queries)
	}
	if rep.Cache.Hits+rep.Cache.Misses != rep.Cache.Queries {
		t.Errorf("stats inconsistent: %+v", rep.Cache)
	}
	if rep.Cache.Hits == 0 || rep.Cache.DeltaHits == 0 {
		t.Errorf("assign workload never hit the memo/delta path: %+v", rep.Cache)
	}
}

// TestBenchExactSearchWorkload: the exact-search preset runs whole
// Audsley searches with the exact oracle, so the report must show the
// searches fanning out into many exact probes and the probes engaging
// the branch-and-bound sweep (pruned scenarios).
func TestBenchExactSearchWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Bench([]string{"-workload", "exact-search", "-systems", "2", "-mutations", "1", "-queries", "4", "-goroutines", "2", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Workload string `json:"workload"`
		Exact    bool   `json:"exact"`
		Queries  int    `json:"queries"`
		Cache    struct {
			Queries         int64 `json:"queries"`
			ScenariosPruned int64 `json:"scenarios_pruned"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bench -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Workload != "exact-search" || !rep.Exact {
		t.Errorf("preset not applied: %+v", rep)
	}
	if rep.Cache.Queries <= int64(rep.Queries) {
		t.Errorf("cache queries %d should far exceed the %d searches (oracle probes)", rep.Cache.Queries, rep.Queries)
	}
	if rep.Cache.ScenariosPruned <= 0 {
		t.Errorf("exact-search bench pruned no scenarios: %+v", rep.Cache)
	}
}

func TestBenchCompare(t *testing.T) {
	dir := t.TempDir()
	run := func(args ...string) (int, string) {
		var out, errb bytes.Buffer
		code := Bench(args, &out, &errb)
		return code, out.String() + errb.String()
	}

	// Record a baseline of this machine, then compare against doctored
	// copies: an unreachable baseline must gate, a slow one must pass.
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := Bench([]string{"-systems", "4", "-queries", "64", "-goroutines", "2", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("baseline run: exit %d, stderr: %s", code, errb.String())
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	write := func(path string, qps float64) {
		rep["throughput_qps"] = qps
		data, err := json.Marshal(map[string]any{"default": rep})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write(base, 1e12) // no machine reaches 10^12 qps: must regress
	if code, log := run("-systems", "4", "-queries", "64", "-goroutines", "2", "-compare", base); code != 1 || !strings.Contains(log, "regression") {
		t.Errorf("inflated baseline: exit %d, log:\n%s", code, log)
	}
	write(base, 1) // any machine beats 1 qps: must pass
	if code, log := run("-systems", "4", "-queries", "64", "-goroutines", "2", "-compare", base); code != 0 || !strings.Contains(log, "ok") {
		t.Errorf("floor baseline: exit %d, log:\n%s", code, log)
	}

	// Missing entry and missing file are hard errors, not silent passes.
	if code, _ := run("-workload", "exact-heavy", "-systems", "2", "-queries", "16", "-compare", base); code != 1 {
		t.Errorf("missing workload entry: exit %d, want 1", code)
	}
	if code, _ := run("-systems", "4", "-queries", "16", "-compare", filepath.Join(dir, "absent.json")); code != 1 {
		t.Errorf("missing baseline file: exit %d, want 1", code)
	}
}
