// Package cli implements the command-line tools (cmd/hsched, cmd/hsim,
// cmd/hsgen, cmd/hsexper) as testable functions: each command takes
// its argument list and output writers and returns a process exit
// code.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/service"
	"hsched/internal/spec"
)

// loadSystem reads a JSON specification, or returns the built-in paper
// example when path is empty.
func loadSystem(path string, out io.Writer) (*model.System, error) {
	if path == "" {
		fmt.Fprintln(out, "no -spec given: using the built-in paper example (Tables 1-2)")
		return experiments.PaperSystem(), nil
	}
	return spec.Load(path)
}

// Analyze implements cmd/hsched: load a system, run the holistic (or
// static) analysis, print per-task bounds and the verdict. Exit codes:
// 0 schedulable, 2 unschedulable, 1 error.
func Analyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath    = fs.String("spec", "", "JSON system specification (default: built-in paper example)")
		exact       = fs.Bool("exact", false, "use the exact scenario enumeration of Sec. 3.1.1")
		static      = fs.Bool("static", false, "single static-offset pass (Sec. 3.1) with the offsets/jitters in the spec")
		tight       = fs.Bool("tight", false, "use the per-run burstiness refinement of the best-case bounds")
		dump        = fs.Bool("dump", false, "dump the system back as JSON and exit")
		sensitivity = fs.Bool("sensitivity", false, "also report the critical WCET scaling factor")
		workers     = fs.Int("workers", 0, "per-round response-time workers (0 = all CPUs, 1 = sequential; results are identical)")
		cache       = fs.Bool("cache", false, "route the analysis through a memoised analysis service and print cache statistics")
		delta       = fs.Bool("delta", true, "with -cache: let the service re-analyse near-matches incrementally (delta path)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	sys, err := loadSystem(*specPath, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "hsched:", err)
		return 1
	}
	if *dump {
		data, err := spec.Marshal(sys)
		if err != nil {
			fmt.Fprintln(stderr, "hsched:", err)
			return 1
		}
		stdout.Write(data)
		return 0
	}

	opt := analysis.Options{Exact: *exact, TightBestCase: *tight, Workers: *workers}
	var res *analysis.Result
	var svc *service.Service
	if *cache {
		// The service front-end: one-shot here, but the same path an
		// embedding admission controller uses. (-sensitivity's probes
		// run their own engine and are not counted in the stats line.)
		deltaWindow := 0
		if !*delta {
			deltaWindow = -1
		}
		svc = service.New(service.Options{Analysis: opt, DeltaWindow: deltaWindow})
		if *static {
			res, err = svc.AnalyzeStatic(context.Background(), sys)
		} else {
			res, err = svc.Analyze(context.Background(), sys)
		}
	} else {
		eng := analysis.NewEngine(opt)
		if *static {
			res, err = eng.AnalyzeStatic(sys)
		} else {
			res, err = eng.Analyze(sys)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "hsched:", err)
		return 1
	}

	w := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "task\tplatform\tphi\tJ\tRbest\tR\tdeadline\tverdict")
	for i := range res.Tasks {
		tr := &res.System.Transactions[i]
		for j, tb := range res.Tasks[i] {
			verdict := ""
			if j == len(res.Tasks[i])-1 {
				if math.IsInf(tb.Worst, 1) || tb.Worst > tr.Deadline {
					verdict = "MISS"
				} else {
					verdict = "ok"
				}
			}
			fmt.Fprintf(w, "%s\tPi%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%s\n",
				res.System.TaskName(i, j), tr.Tasks[j].Platform+1,
				tb.Offset, tb.Jitter, tb.Best, tb.Worst, tr.Deadline, verdict)
		}
	}
	w.Flush()
	fmt.Fprintf(stdout, "iterations: %d  converged: %v  schedulable: %v",
		res.Iterations, res.Converged, res.Schedulable)
	if *exact {
		// The branch-and-bound work profile of the exact sweep; only
		// meaningful when the exact enumeration actually ran.
		fmt.Fprintf(stdout, "  scenarios-pruned: %d  subtrees-pruned: %d", res.ScenariosPruned, res.SubtreesPruned)
	}
	fmt.Fprintln(stdout)

	if *sensitivity {
		k, err := analysis.CriticalScaling(sys, opt, 1e-3, 0)
		if err != nil {
			fmt.Fprintln(stderr, "hsched:", err)
			return 1
		}
		fmt.Fprintf(stdout, "critical WCET scaling factor: %.3f\n", k)
	}
	if svc != nil {
		printCacheStats(stdout, svc.Stats())
	}
	if !res.Schedulable {
		return 2
	}
	return 0
}

// printCacheStats renders one service-stats line, shared by the
// analyze, exper and bench commands.
func printCacheStats(out io.Writer, st service.Stats) {
	fmt.Fprintf(out, "cache: queries=%d hits=%d misses=%d evictions=%d inflight-dedups=%d delta-hits=%d rounds-saved=%d scenarios-pruned=%d subtrees-pruned=%d intern-hits=%d intern-misses=%d intern-resident=%d hit-rate=%.1f%%\n",
		st.Queries, st.Hits, st.Misses, st.Evictions, st.InflightDedups, st.DeltaHits, st.RoundsSaved, st.ScenariosPruned, st.SubtreesPruned, st.InternHits, st.InternMisses, st.Resident, 100*st.HitRate())
}
