package model

import (
	"math"
	"strings"
	"testing"

	"hsched/internal/platform"
)

func valid() *System {
	return &System{
		Platforms: []platform.Params{
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.2, Delta: 2, Beta: 1},
		},
		Transactions: []Transaction{
			{Name: "G1", Period: 50, Deadline: 50, Tasks: []Task{
				{Name: "a", WCET: 1, BCET: 0.8, Priority: 2, Platform: 0},
				{Name: "b", WCET: 2, BCET: 1, Priority: 1, Platform: 1},
			}},
			{Name: "G2", Period: 15, Deadline: 15, Tasks: []Task{
				{Name: "c", WCET: 1, BCET: 0.25, Priority: 3, Platform: 0},
			}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
		want   string
	}{
		{"no platforms", func(s *System) { s.Platforms = nil }, "no platforms"},
		{"bad platform", func(s *System) { s.Platforms[0].Alpha = 0 }, "rate"},
		{"no transactions", func(s *System) { s.Transactions = nil }, "no transactions"},
		{"zero period", func(s *System) { s.Transactions[0].Period = 0 }, "period"},
		{"negative deadline", func(s *System) { s.Transactions[0].Deadline = -1 }, "deadline"},
		{"nan period", func(s *System) { s.Transactions[0].Period = math.NaN() }, "period"},
		{"empty chain", func(s *System) { s.Transactions[1].Tasks = nil }, "no tasks"},
		{"zero wcet", func(s *System) { s.Transactions[0].Tasks[0].WCET = 0 }, "WCET"},
		{"bcet above wcet", func(s *System) { s.Transactions[0].Tasks[0].BCET = 5 }, "BCET"},
		{"negative offset", func(s *System) { s.Transactions[0].Tasks[1].Offset = -1 }, "offset"},
		{"negative jitter", func(s *System) { s.Transactions[0].Tasks[1].Jitter = -1 }, "jitter"},
		{"negative blocking", func(s *System) { s.Transactions[0].Tasks[1].Blocking = -1 }, "blocking"},
		{"platform out of range", func(s *System) { s.Transactions[0].Tasks[0].Platform = 7 }, "platform index"},
		{"negative platform", func(s *System) { s.Transactions[0].Tasks[0].Platform = -1 }, "platform index"},
		{"inf wcet", func(s *System) { s.Transactions[0].Tasks[0].WCET = math.Inf(1) }, "WCET"},
	}
	for _, c := range cases {
		s := valid()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := valid()
	c := s.Clone()
	c.Transactions[0].Tasks[0].WCET = 99
	c.Platforms[0].Alpha = 0.9
	c.Transactions[0].Period = 1
	if s.Transactions[0].Tasks[0].WCET == 99 || s.Platforms[0].Alpha == 0.9 || s.Transactions[0].Period == 1 {
		t.Errorf("Clone shares state with the original")
	}
}

func TestUtilization(t *testing.T) {
	s := valid()
	u := s.Utilization()
	// Platform 0: a: 1/(50·0.4) + c: 1/(15·0.4) = 0.05 + 0.1667 = 0.2167
	if math.Abs(u[0]-(1/(50*0.4)+1/(15*0.4))) > 1e-12 {
		t.Errorf("U(Π1) = %v", u[0])
	}
	// Platform 1: b: 2/(50·0.2) = 0.2
	if math.Abs(u[1]-0.2) > 1e-12 {
		t.Errorf("U(Π2) = %v", u[1])
	}
}

func TestHyperperiod(t *testing.T) {
	s := valid()
	if got := s.Hyperperiod(); got != 150 {
		t.Errorf("Hyperperiod = %v, want lcm(50, 15) = 150", got)
	}
	// Non-integer periods fall back to a pragmatic horizon.
	s.Transactions[0].Period = 49.5
	if got := s.Hyperperiod(); got != 49.5*2 {
		t.Errorf("fallback Hyperperiod = %v, want 99", got)
	}
}

func TestTaskNameAndCount(t *testing.T) {
	s := valid()
	if got := s.TaskName(0, 1); got != "b" {
		t.Errorf("TaskName = %q", got)
	}
	s.Transactions[0].Tasks[1].Name = ""
	if got := s.TaskName(0, 1); got != "τ1,2" {
		t.Errorf("fallback TaskName = %q", got)
	}
	if got := s.TaskCount(); got != 3 {
		t.Errorf("TaskCount = %d, want 3", got)
	}
}
