package model_test

import (
	"testing"

	"hsched/internal/model"
	"hsched/internal/platform"
)

func diffSystem() *model.System {
	return &model.System{
		Platforms: []platform.Params{
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.2, Delta: 2, Beta: 1},
		},
		Transactions: []model.Transaction{
			{Name: "A", Period: 50, Deadline: 50, Tasks: []model.Task{
				{Name: "a1", WCET: 1, BCET: 0.5, Priority: 2, Platform: 0},
				{Name: "a2", WCET: 2, BCET: 1, Priority: 1, Platform: 1},
			}},
			{Name: "B", Period: 15, Deadline: 15, Tasks: []model.Task{
				{Name: "b1", WCET: 1, BCET: 0.25, Priority: 3, Platform: 0},
			}},
			{Name: "C", Period: 70, Deadline: 70, Tasks: []model.Task{
				{Name: "c1", WCET: 7, BCET: 5, Priority: 1, Platform: 1},
			}},
		},
	}
}

func TestTransactionFingerprintIgnoresNames(t *testing.T) {
	a := diffSystem().Transactions[0]
	b := diffSystem().Transactions[0]
	b.Name = "renamed"
	b.Tasks[0].Name = "also renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("renaming changed the transaction fingerprint: names are analysis-irrelevant")
	}
	c := diffSystem().Transactions[0]
	c.Tasks[0].WCET += 1e-9
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("WCET change did not move the transaction fingerprint")
	}
}

// TestTransactionFingerprintIgnoresDerivedOffsets: the holistic
// analysis overwrites non-initial tasks' offsets and jitters before
// the first round, so spec values there are analysis-irrelevant and
// must not move the fingerprint — while the first task's external
// release offset/jitter must.
func TestTransactionFingerprintIgnoresDerivedOffsets(t *testing.T) {
	a := diffSystem().Transactions[0]
	b := diffSystem().Transactions[0]
	b.Tasks[1].Offset = 17
	b.Tasks[1].Jitter = 3
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("derived offset/jitter moved the transaction fingerprint")
	}
	c := diffSystem().Transactions[0]
	c.Tasks[0].Offset = 1
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("external release offset change did not move the fingerprint")
	}
	d := diffSystem().Transactions[0]
	d.Tasks[0].Jitter = 0.5
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatalf("external release jitter change did not move the fingerprint")
	}
}

func TestTransactionFingerprintsOrder(t *testing.T) {
	sys := diffSystem()
	fps := sys.TransactionFingerprints()
	if len(fps) != len(sys.Transactions) {
		t.Fatalf("got %d fingerprints for %d transactions", len(fps), len(sys.Transactions))
	}
	for i := range sys.Transactions {
		if fps[i] != sys.Transactions[i].Fingerprint() {
			t.Fatalf("fingerprint %d out of order", i)
		}
	}
}

func TestDiffIdentical(t *testing.T) {
	a, b := diffSystem(), diffSystem()
	d := model.Diff(a, b)
	if !d.Identical() {
		t.Fatalf("value-identical systems diff as changed: %+v", d)
	}
	if len(d.Unchanged) != 3 || !d.InOrder() {
		t.Fatalf("want 3 in-order unchanged pairs, got %+v", d.Unchanged)
	}
}

// TestDiffReorder: the same transaction set in a different order must
// diff as all-unchanged (matched by fingerprint), with the reordering
// visible only through InOrder() == false.
func TestDiffReorder(t *testing.T) {
	a, b := diffSystem(), diffSystem()
	b.Transactions[0], b.Transactions[2] = b.Transactions[2], b.Transactions[0]
	d := model.Diff(a, b)
	if len(d.Unchanged) != 3 || len(d.Modified) != 0 || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("reordered set must diff as unchanged: %+v", d)
	}
	if d.InOrder() {
		t.Fatalf("a genuine reordering must not report an in-order matching")
	}
	if d.Identical() {
		t.Fatalf("a reordering is unchanged but not identical")
	}
	// The pairs must map each transaction to its fingerprint twin.
	for _, p := range d.Unchanged {
		if a.Transactions[p[0]].Fingerprint() != b.Transactions[p[1]].Fingerprint() {
			t.Fatalf("pair %v does not match fingerprints", p)
		}
	}
}

// TestDiffNamesOnly: systems differing only in names (analysis
// irrelevant spec fields) diff as unchanged — Diff matches structure,
// not labels.
func TestDiffNamesOnly(t *testing.T) {
	a, b := diffSystem(), diffSystem()
	b.Transactions[0].Name = "A-renamed"
	b.Transactions[0].Tasks[1].Name = "task-renamed"
	d := model.Diff(a, b)
	if !d.Identical() {
		t.Fatalf("name-only differences must diff as identical: %+v", d)
	}
}

func TestDiffEmptyAndNil(t *testing.T) {
	empty := &model.System{}
	d := model.Diff(empty, empty)
	if !d.Identical() {
		t.Fatalf("empty vs empty: %+v", d)
	}
	d = model.Diff(nil, diffSystem())
	if len(d.Added) != 3 || len(d.Unchanged) != 0 || !d.PlatformCountChanged {
		t.Fatalf("nil vs full: %+v", d)
	}
	d = model.Diff(diffSystem(), nil)
	if len(d.Removed) != 3 || len(d.Unchanged) != 0 || !d.PlatformCountChanged {
		t.Fatalf("full vs nil: %+v", d)
	}
	d = model.Diff(nil, nil)
	if !d.Identical() {
		t.Fatalf("nil vs nil: %+v", d)
	}
}

func TestDiffModifiedAddedRemoved(t *testing.T) {
	a, b := diffSystem(), diffSystem()
	// Modify B in place (same name, new WCET), drop C, add D.
	b.Transactions[1].Tasks[0].WCET = 1.5
	b.Transactions = b.Transactions[:2]
	b.Transactions = append(b.Transactions, model.Transaction{
		Name: "D", Period: 100, Deadline: 100, Tasks: []model.Task{
			{WCET: 1, Priority: 1, Platform: 0},
		},
	})
	d := model.Diff(a, b)
	if len(d.Unchanged) != 1 || d.Unchanged[0] != [2]int{0, 0} {
		t.Fatalf("unchanged: %+v", d.Unchanged)
	}
	if len(d.Modified) != 1 || d.Modified[0] != [2]int{1, 1} {
		t.Fatalf("modified: %+v", d.Modified)
	}
	if len(d.Added) != 1 || d.Added[0] != 2 {
		t.Fatalf("added: %+v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != 2 {
		t.Fatalf("removed: %+v", d.Removed)
	}
	if !d.InOrder() {
		t.Fatalf("in-place modification must keep the matching in order")
	}
}

func TestDiffPlatformChanges(t *testing.T) {
	a, b := diffSystem(), diffSystem()
	b.Platforms[1].Alpha = 0.25
	d := model.Diff(a, b)
	if len(d.ChangedPlatforms) != 1 || d.ChangedPlatforms[0] != 1 {
		t.Fatalf("changed platforms: %+v", d)
	}
	if len(d.Unchanged) != 3 {
		t.Fatalf("platform parameter changes must not dirty transaction matching: %+v", d)
	}
	b.Platforms = append(b.Platforms, platform.Params{Alpha: 1})
	d = model.Diff(a, b)
	if !d.PlatformCountChanged || len(d.ChangedPlatforms) != 0 {
		t.Fatalf("platform count change: %+v", d)
	}
}
