package model_test

import (
	"bytes"
	"testing"

	"hsched/internal/model"
)

// FuzzSystemUnmarshalBinary feeds arbitrary bytes to the wire decoder
// and asserts the two properties the binary HTTP path depends on:
// hostile input never panics, and every successful decode re-marshals
// to the identical byte string (canonicality — sha256 of the wire
// bytes is the decoded system's fingerprint). The seed corpus is the
// valid encodings of the round-trip subjects plus a few deliberately
// broken mutations.
func FuzzSystemUnmarshalBinary(f *testing.F) {
	for _, sys := range wireSubjects(f) {
		data, err := sys.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > 16 {
			f.Add(data[:len(data)/2])                      // truncation
			f.Add(append(append([]byte(nil), data...), 0)) // trailing byte
			flip := append([]byte(nil), data...)
			flip[9] ^= 0x80 // inflate the platform count
			f.Add(flip)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{1})

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec model.System
		if err := dec.UnmarshalBinary(data); err != nil {
			return
		}
		again, err := dec.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of decoded system failed: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode not canonical: %d input bytes re-marshal to %d different bytes",
				len(data), len(again))
		}
	})
}
