package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Fingerprint is a stable identity of a System: a SHA-256 digest over a
// canonical byte encoding of every analysis-relevant field — platform
// parameters, transaction periods and deadlines, and per-task WCET,
// BCET, offset, jitter, priority, platform mapping and blocking, plus
// all names. Two systems have equal fingerprints iff they are
// value-identical, and the encoding uses the exact float64 bit
// patterns, so a JSON round trip through package spec (which preserves
// float values exactly) preserves the fingerprint. It is the cache and
// shard key of the analysis service (package service).
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex (shortened to 16 digits, the
// form used in logs and cache-stats output).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// Shard maps the fingerprint onto one of n shards (n ≥ 1). The
// digest's uniformity makes the assignment balanced for any workload.
func (f Fingerprint) Shard(n int) int {
	return int(binary.LittleEndian.Uint64(f[:8]) % uint64(n))
}

// fingerprintVersion is the digest's historical name for wireVersion:
// since the fingerprint is the SHA-256 of the exact MarshalBinary byte
// stream, the two versions are one constant and can never drift.
//
// BUMP CHECKLIST — changing the encoding (adding a model field,
// reordering, resizing) means bumping wireVersion, and a bump changes
// every fingerprint and every persisted wire body at once. When you
// bump: (1) update the layout comment in wire.go and the README "Wire
// format" table, (2) re-record the golden bytes in
// TestSystemWireGoldenBytes (which locks this constant too), (3) keep
// UnmarshalBinary returning ErrWireVersion for version 1 bytes unless
// you implement explicit back-decoding, and (4) expect every
// service-level cache key and intern-pool entry to turn over.
const fingerprintVersion = wireVersion

// fpBuf wraps the encode buffer Fingerprint hashes; pooling it keeps
// the analysis service's memo-hit path — whose only per-query encoding
// work is this one fingerprint — allocation-free.
type fpBuf struct{ b []byte }

var fpBufPool = sync.Pool{New: func() any { return new(fpBuf) }}

// Fingerprint computes the system's canonical fingerprint: the SHA-256
// of the system's canonical wire encoding (see wire.go), so encoding
// and hashing are one buffer pass and the wire identity of a system is
// its cache identity — a server can fingerprint a binary request by
// hashing the body bytes without decoding them. The cost is
// microseconds even for large systems, negligible next to an analysis,
// so callers may recompute it freely rather than caching it alongside
// the system. The encode buffer is pooled and the call does not
// allocate in steady state.
func (s *System) Fingerprint() Fingerprint {
	bb := fpBufPool.Get().(*fpBuf)
	bb.b = s.appendBinary(bb.b[:0])
	fp := Fingerprint(sha256.Sum256(bb.b))
	fpBufPool.Put(bb)
	return fp
}

// txFingerprintVersion guards the canonical per-transaction encoding,
// independently of the whole-system version: the two encodings cover
// different field sets (the transaction one omits names) and must
// never alias.
const txFingerprintVersion = 1

// Fingerprint computes the transaction's analysis fingerprint: a
// digest over every field the holistic schedulability analysis reads —
// period, deadline and per-task WCET, BCET, priority, platform mapping
// and blocking, plus the external release offset and jitter of the
// first task. Two classes of fields are deliberately excluded:
//
//   - names, which only label reports;
//   - the offsets and jitters of non-initial tasks, which the holistic
//     iteration derives from predecessor response times (Eq. 18) and
//     overwrites before the first round — they are outputs, not inputs.
//
// Two transactions with equal fingerprints are therefore
// interchangeable as far as the holistic analysis's computed bounds
// are concerned — including a transaction read back from a converged
// Result, whose derived offsets differ from the spec's. That is
// exactly the equivalence Diff and the incremental re-analysis path
// need. Platform *parameters* are not covered (only the indices); Diff
// reports platform changes separately.
func (tr *Transaction) Fingerprint() Fingerprint {
	buf := make([]byte, 0, 8*(4+7*len(tr.Tasks)))
	buf = appendU64(buf, txFingerprintVersion)
	buf = appendF64(buf, tr.Period)
	buf = appendF64(buf, tr.Deadline)
	buf = appendU64(buf, uint64(len(tr.Tasks)))
	for j := range tr.Tasks {
		t := &tr.Tasks[j]
		buf = appendF64(buf, t.WCET)
		buf = appendF64(buf, t.BCET)
		if j == 0 {
			buf = appendF64(buf, t.Offset)
			buf = appendF64(buf, t.Jitter)
		} else {
			buf = appendF64(buf, 0)
			buf = appendF64(buf, 0)
		}
		buf = appendU64(buf, uint64(int64(t.Priority)))
		buf = appendU64(buf, uint64(int64(t.Platform)))
		buf = appendF64(buf, t.Blocking)
	}
	return sha256.Sum256(buf)
}

// TransactionFingerprints returns the analysis fingerprints of all
// transactions, in declaration order. It is the raw material of Diff
// and of the analysis service's delta-seed matching.
func (s *System) TransactionFingerprints() []Fingerprint {
	fps := make([]Fingerprint, len(s.Transactions))
	for i := range s.Transactions {
		fps[i] = s.Transactions[i].Fingerprint()
	}
	return fps
}
