package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint is a stable identity of a System: a SHA-256 digest over a
// canonical byte encoding of every analysis-relevant field — platform
// parameters, transaction periods and deadlines, and per-task WCET,
// BCET, offset, jitter, priority, platform mapping and blocking, plus
// all names. Two systems have equal fingerprints iff they are
// value-identical, and the encoding uses the exact float64 bit
// patterns, so a JSON round trip through package spec (which preserves
// float values exactly) preserves the fingerprint. It is the cache and
// shard key of the analysis service (package service).
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex (shortened to 16 digits, the
// form used in logs and cache-stats output).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// Shard maps the fingerprint onto one of n shards (n ≥ 1). The
// digest's uniformity makes the assignment balanced for any workload.
func (f Fingerprint) Shard(n int) int {
	return int(binary.LittleEndian.Uint64(f[:8]) % uint64(n))
}

// fingerprintVersion guards the canonical encoding: bump it whenever a
// field is added to the model so stale persisted keys cannot alias new
// systems.
const fingerprintVersion = 1

// Fingerprint computes the system's canonical fingerprint. The cost is
// one digest pass over a flat encoding of the system's fields —
// microseconds even for large systems, negligible next to an analysis
// — so callers may recompute it freely rather than caching it
// alongside the system. It is on the memoised-query hot path of the
// analysis service, hence the single-buffer encoding: one Write to the
// digest instead of one per field.
func (s *System) Fingerprint() Fingerprint {
	buf := make([]byte, 0, s.fingerprintSize())
	u64 := func(v uint64) {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(v string) {
		u64(uint64(len(v)))
		buf = append(buf, v...)
	}

	u64(fingerprintVersion)
	u64(uint64(len(s.Platforms)))
	for _, p := range s.Platforms {
		f64(p.Alpha)
		f64(p.Delta)
		f64(p.Beta)
	}
	u64(uint64(len(s.Transactions)))
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		str(tr.Name)
		f64(tr.Period)
		f64(tr.Deadline)
		u64(uint64(len(tr.Tasks)))
		for j := range tr.Tasks {
			t := &tr.Tasks[j]
			str(t.Name)
			f64(t.WCET)
			f64(t.BCET)
			f64(t.Offset)
			f64(t.Jitter)
			u64(uint64(int64(t.Priority)))
			u64(uint64(int64(t.Platform)))
			f64(t.Blocking)
		}
	}
	return sha256.Sum256(buf)
}

// fingerprintSize returns the exact canonical-encoding length, so
// Fingerprint allocates its buffer once.
func (s *System) fingerprintSize() int {
	n := 8 * (2 + 3*len(s.Platforms) + 1)
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		n += 8*4 + len(tr.Name)
		for j := range tr.Tasks {
			n += 8*8 + len(tr.Tasks[j].Name)
		}
	}
	return n
}

// txFingerprintVersion guards the canonical per-transaction encoding,
// independently of the whole-system version: the two encodings cover
// different field sets (the transaction one omits names) and must
// never alias.
const txFingerprintVersion = 1

// Fingerprint computes the transaction's analysis fingerprint: a
// digest over every field the holistic schedulability analysis reads —
// period, deadline and per-task WCET, BCET, priority, platform mapping
// and blocking, plus the external release offset and jitter of the
// first task. Two classes of fields are deliberately excluded:
//
//   - names, which only label reports;
//   - the offsets and jitters of non-initial tasks, which the holistic
//     iteration derives from predecessor response times (Eq. 18) and
//     overwrites before the first round — they are outputs, not inputs.
//
// Two transactions with equal fingerprints are therefore
// interchangeable as far as the holistic analysis's computed bounds
// are concerned — including a transaction read back from a converged
// Result, whose derived offsets differ from the spec's. That is
// exactly the equivalence Diff and the incremental re-analysis path
// need. Platform *parameters* are not covered (only the indices); Diff
// reports platform changes separately.
func (tr *Transaction) Fingerprint() Fingerprint {
	n := 8 * (4 + 7*len(tr.Tasks))
	buf := make([]byte, 0, n)
	u64 := func(v uint64) {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	u64(txFingerprintVersion)
	f64(tr.Period)
	f64(tr.Deadline)
	u64(uint64(len(tr.Tasks)))
	for j := range tr.Tasks {
		t := &tr.Tasks[j]
		f64(t.WCET)
		f64(t.BCET)
		if j == 0 {
			f64(t.Offset)
			f64(t.Jitter)
		} else {
			f64(0)
			f64(0)
		}
		u64(uint64(int64(t.Priority)))
		u64(uint64(int64(t.Platform)))
		f64(t.Blocking)
	}
	return sha256.Sum256(buf)
}

// TransactionFingerprints returns the analysis fingerprints of all
// transactions, in declaration order. It is the raw material of Diff
// and of the analysis service's delta-seed matching.
func (s *System) TransactionFingerprints() []Fingerprint {
	fps := make([]Fingerprint, len(s.Transactions))
	for i := range s.Transactions {
		fps[i] = s.Transactions[i].Fingerprint()
	}
	return fps
}
