// Package model defines the real-time transaction model of Section 2.4
// of Lorente, Lipari & Bini (IPDPS 2006): transactions Γi — chains of
// tasks τi,j with precedence constraints — released periodically, each
// task mapped onto an abstract computing platform and scheduled there
// by a local fixed-priority scheduler. This is the common input format
// of the schedulability analysis (package analysis), the simulator
// (package sim) and the component transformation (package component).
package model

import (
	"fmt"
	"math"

	"hsched/internal/platform"
)

// Task is one step τi,j of a transaction: a piece of code executed on
// one abstract platform. Offset and Jitter bound its activation
// relative to the transaction release (Figure 4 of the paper); for
// tasks after the first they are usually derived from the predecessor's
// best/worst response times by the holistic iteration (Eq. 18) rather
// than set by hand.
type Task struct {
	// Name identifies the task in reports (e.g. "tau1,2").
	Name string
	// WCET is the worst-case execution time Ci,j in cycles (time on a
	// dedicated unit-speed processor).
	WCET float64
	// BCET is the best-case execution time Cbest_i,j. 0 ≤ BCET ≤ WCET.
	BCET float64
	// Offset is the static activation offset φi,j from the transaction
	// release. It may exceed the period (the analysis reduces it).
	Offset float64
	// Jitter is the maximum activation delay Ji,j past the offset.
	Jitter float64
	// Priority is the local fixed priority pi,j; greater is higher.
	Priority int
	// Platform is the index si,j into System.Platforms of the abstract
	// computing platform the task executes on.
	Platform int
	// Blocking is the blocking term Ba,b (e.g. from non-preemptable
	// sections of lower-priority tasks), already in time units.
	Blocking float64
}

// Transaction is a chain Γi = (τi,1 … τi,ni): task j+1 cannot start
// before task j completes. The transaction is released every Period
// and its last task must finish within Deadline of the release.
type Transaction struct {
	// Name identifies the transaction in reports (e.g. "Gamma1").
	Name string
	// Period is Ti > 0.
	Period float64
	// Deadline is the end-to-end relative deadline Di > 0. It may
	// exceed the period.
	Deadline float64
	// Tasks is the precedence-ordered chain; it must not be empty.
	Tasks []Task
}

// System is a complete analysable system: a set of transactions over a
// set of abstract computing platforms.
type System struct {
	// Transactions are the transactions Γ1 … Γn.
	Transactions []Transaction
	// Platforms are the abstract platforms Π1 … ΠM, indexed by
	// Task.Platform.
	Platforms []platform.Params
}

// Validate checks structural well-formedness: non-empty transactions,
// positive periods and deadlines, finite non-negative task parameters,
// BCET ≤ WCET, and platform indices in range. It does not decide
// schedulability.
func (s *System) Validate() error {
	if len(s.Platforms) == 0 {
		return fmt.Errorf("model: system has no platforms")
	}
	for m, p := range s.Platforms {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("model: platform %d: %w", m+1, err)
		}
	}
	if len(s.Transactions) == 0 {
		return fmt.Errorf("model: system has no transactions")
	}
	for i := range s.Transactions {
		if err := s.validateTransaction(i); err != nil {
			return err
		}
	}
	return nil
}

func (s *System) validateTransaction(i int) error {
	tr := &s.Transactions[i]
	name := tr.Name
	if name == "" {
		name = fmt.Sprintf("Γ%d", i+1)
	}
	if !(tr.Period > 0) || math.IsInf(tr.Period, 0) || math.IsNaN(tr.Period) {
		return fmt.Errorf("model: %s: period %v must be positive and finite", name, tr.Period)
	}
	if !(tr.Deadline > 0) || math.IsInf(tr.Deadline, 0) || math.IsNaN(tr.Deadline) {
		return fmt.Errorf("model: %s: deadline %v must be positive and finite", name, tr.Deadline)
	}
	if len(tr.Tasks) == 0 {
		return fmt.Errorf("model: %s: transaction has no tasks", name)
	}
	for j := range tr.Tasks {
		t := &tr.Tasks[j]
		tn := t.Name
		if tn == "" {
			tn = fmt.Sprintf("τ%d,%d", i+1, j+1)
		}
		// Spelled out (no map literal): Validate runs on every analysis
		// entry, so the per-task checks must not allocate.
		for _, f := range [...]struct {
			what string
			v    float64
		}{
			{"WCET", t.WCET}, {"BCET", t.BCET}, {"offset", t.Offset},
			{"jitter", t.Jitter}, {"blocking", t.Blocking},
		} {
			if f.v < 0 || math.IsInf(f.v, 0) || math.IsNaN(f.v) {
				return fmt.Errorf("model: %s/%s: %s %v must be non-negative and finite", name, tn, f.what, f.v)
			}
		}
		if t.WCET == 0 {
			return fmt.Errorf("model: %s/%s: WCET must be positive", name, tn)
		}
		if t.BCET > t.WCET {
			return fmt.Errorf("model: %s/%s: BCET %v exceeds WCET %v", name, tn, t.BCET, t.WCET)
		}
		if t.Platform < 0 || t.Platform >= len(s.Platforms) {
			return fmt.Errorf("model: %s/%s: platform index %d outside [0, %d)", name, tn, t.Platform, len(s.Platforms))
		}
	}
	return nil
}

// Clone returns a deep copy of the system; the analysis mutates
// offsets and jitters during the holistic iteration and works on a
// clone so the caller's system is never modified.
func (s *System) Clone() *System {
	c := &System{
		Transactions: make([]Transaction, len(s.Transactions)),
		Platforms:    append([]platform.Params(nil), s.Platforms...),
	}
	for i, tr := range s.Transactions {
		c.Transactions[i] = tr
		c.Transactions[i].Tasks = append([]Task(nil), tr.Tasks...)
	}
	return c
}

// TaskName returns a printable identifier for task (i, j) (0-based),
// using the declared name or the paper's τi,j notation.
func (s *System) TaskName(i, j int) string {
	t := s.Transactions[i].Tasks[j]
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("τ%d,%d", i+1, j+1)
}

// Utilization returns, per platform, the total bandwidth demand
// Σ C/(T·α): the fraction of the platform's supplied cycles consumed
// in the long run. A value above 1 for any platform implies the system
// is unschedulable.
func (s *System) Utilization() []float64 {
	u := make([]float64, len(s.Platforms))
	for _, tr := range s.Transactions {
		for _, t := range tr.Tasks {
			u[t.Platform] += t.WCET / (tr.Period * s.Platforms[t.Platform].Alpha)
		}
	}
	return u
}

// Hyperperiod returns the least common multiple of the transaction
// periods if all periods are (close to) integers, and otherwise the
// largest period times the number of transactions as a pragmatic
// simulation horizon hint.
func (s *System) Hyperperiod() float64 {
	lcm := 1.0
	maxP := 0.0
	for _, tr := range s.Transactions {
		if tr.Period > maxP {
			maxP = tr.Period
		}
		r := math.Round(tr.Period)
		if math.Abs(tr.Period-r) > 1e-9 || r <= 0 {
			return maxP * float64(len(s.Transactions))
		}
		lcm = lcmFloat(lcm, r)
		if lcm > 1e12 { // avoid absurd horizons
			return maxP * float64(len(s.Transactions))
		}
	}
	return lcm
}

func lcmFloat(a, b float64) float64 {
	x, y := int64(a), int64(b)
	return float64(x / gcd(x, y) * y)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TaskCount returns the total number of tasks in the system.
func (s *System) TaskCount() int {
	n := 0
	for _, tr := range s.Transactions {
		n += len(tr.Tasks)
	}
	return n
}
