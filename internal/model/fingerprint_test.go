package model_test

import (
	"math"
	"path/filepath"
	"testing"

	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/spec"
)

// fpSystem builds a system with deliberately awkward float values
// (non-terminating binary expansions, values produced by arithmetic)
// so the JSON round-trip test exercises exact float64 preservation.
func fpSystem() *model.System {
	return &model.System{
		Platforms: []platform.Params{
			{Alpha: 0.4, Delta: 1.0 / 3.0, Beta: 0.32},
			{Alpha: 2.0 / 7.0, Delta: math.Pi, Beta: 0.5},
		},
		Transactions: []model.Transaction{
			{
				Name: "G1", Period: 20, Deadline: 19.999999999,
				Tasks: []model.Task{
					{Name: "a", WCET: 1.1, BCET: 0.3, Priority: 2, Platform: 0},
					{Name: "b", WCET: 2.0 / 3.0, BCET: 0.1, Offset: 0.25, Jitter: 0.125, Priority: 1, Platform: 1, Blocking: 0.0625},
				},
			},
			{
				Name: "G2", Period: 1e3 / 7, Deadline: 100,
				Tasks: []model.Task{
					{Name: "c", WCET: 3, BCET: 3, Priority: 3, Platform: 1},
				},
			},
		},
	}
}

func TestFingerprintStability(t *testing.T) {
	sys := fpSystem()
	fp := sys.Fingerprint()
	if fp != sys.Fingerprint() {
		t.Fatalf("fingerprint not deterministic on the same value")
	}
	if got := sys.Clone().Fingerprint(); got != fp {
		t.Fatalf("clone fingerprint %v differs from original %v", got, fp)
	}
	other := fpSystem()
	if got := other.Fingerprint(); got != fp {
		t.Fatalf("value-identical system fingerprint %v differs from %v", got, fp)
	}
}

func TestFingerprintJSONRoundTrip(t *testing.T) {
	sys := fpSystem()
	fp := sys.Fingerprint()

	path := filepath.Join(t.TempDir(), "sys.json")
	if err := spec.Save(sys, path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := spec.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := back.Fingerprint(); got != fp {
		t.Fatalf("fingerprint changed across spec.Save/spec.Load: %v != %v", got, fp)
	}
}

// TestFingerprintSensitivity mutates every analysis-relevant field in
// turn and checks the fingerprint moves each time.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpSystem().Fingerprint()
	mutations := map[string]func(*model.System){
		"platform alpha":    func(s *model.System) { s.Platforms[0].Alpha = 0.41 },
		"platform delta":    func(s *model.System) { s.Platforms[1].Delta += 1e-12 },
		"platform beta":     func(s *model.System) { s.Platforms[0].Beta = 0 },
		"platform added":    func(s *model.System) { s.Platforms = append(s.Platforms, platform.Dedicated()) },
		"transaction name":  func(s *model.System) { s.Transactions[0].Name = "G1'" },
		"period":            func(s *model.System) { s.Transactions[1].Period = 143 },
		"deadline":          func(s *model.System) { s.Transactions[0].Deadline = 20 },
		"task name":         func(s *model.System) { s.Transactions[0].Tasks[0].Name = "a'" },
		"wcet":              func(s *model.System) { s.Transactions[0].Tasks[0].WCET += 1e-9 },
		"bcet":              func(s *model.System) { s.Transactions[0].Tasks[1].BCET = 0.2 },
		"offset":            func(s *model.System) { s.Transactions[0].Tasks[1].Offset = 0.5 },
		"jitter":            func(s *model.System) { s.Transactions[0].Tasks[1].Jitter = 0 },
		"priority":          func(s *model.System) { s.Transactions[0].Tasks[0].Priority = 9 },
		"platform mapping":  func(s *model.System) { s.Transactions[0].Tasks[0].Platform = 1 },
		"blocking":          func(s *model.System) { s.Transactions[0].Tasks[1].Blocking = 0 },
		"task appended":     func(s *model.System) { tr := &s.Transactions[1]; tr.Tasks = append(tr.Tasks, tr.Tasks[0]) },
		"transaction added": func(s *model.System) { s.Transactions = append(s.Transactions, s.Transactions[1]) },
	}
	for name, mutate := range mutations {
		sys := fpSystem()
		mutate(sys)
		if sys.Fingerprint() == base {
			t.Errorf("%s: mutation did not change the fingerprint", name)
		}
	}
}

// TestFingerprintNameBoundaries guards the length-prefixed string
// encoding: shuffling characters across adjacent name fields must not
// collide.
func TestFingerprintNameBoundaries(t *testing.T) {
	a := fpSystem()
	a.Transactions[0].Name = "ab"
	a.Transactions[0].Tasks[0].Name = "c"
	b := fpSystem()
	b.Transactions[0].Name = "a"
	b.Transactions[0].Tasks[0].Name = "bc"
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("name boundary collision")
	}
}
