package model

import (
	"math"

	"hsched/internal/platform"
)

// SystemDiff is the structural difference between two systems at
// transaction granularity, computed by Diff. Transactions are matched
// by their analysis Fingerprint (names ignored), so a pure reordering
// or renaming diffs as all-unchanged; the remainder is matched by name
// into Modified pairs, and what is left is Added/Removed.
type SystemDiff struct {
	// PlatformCountChanged reports a different number of platforms, in
	// which case platform indices in the two systems are incomparable
	// and ChangedPlatforms is left empty.
	PlatformCountChanged bool

	// ChangedPlatforms lists the platform indices whose (α, Δ, β)
	// parameters differ between the two systems.
	ChangedPlatforms []int

	// Unchanged pairs {old index, new index} of transactions with equal
	// analysis fingerprints, in new-system order. Names may differ.
	Unchanged [][2]int

	// Modified pairs {old index, new index} of transactions with
	// different fingerprints but the same non-empty name, in new-system
	// order.
	Modified [][2]int

	// Added lists new-system transaction indices with no counterpart.
	Added []int

	// Removed lists old-system transaction indices with no counterpart.
	Removed []int
}

// InOrder reports whether the unchanged matching preserves relative
// transaction order: the old indices of Unchanged, read in new-system
// order, are strictly increasing. Insertions and removals keep the
// matching in order; reorderings do not. The incremental analysis
// replays per-round state only for in-order matchings — interference
// terms are summed in transaction index order, so a reordered system
// can differ from the baseline in the last bits of a sum even when
// every operand is identical.
func (d *SystemDiff) InOrder() bool {
	last := -1
	for _, pair := range d.Unchanged {
		if pair[0] <= last {
			return false
		}
		last = pair[0]
	}
	return true
}

// Identical reports a diff with no changes at all: every transaction
// unchanged (in order), no additions or removals, platforms equal.
func (d *SystemDiff) Identical() bool {
	return !d.PlatformCountChanged && len(d.ChangedPlatforms) == 0 &&
		len(d.Modified) == 0 && len(d.Added) == 0 && len(d.Removed) == 0 &&
		d.InOrder()
}

// Diff computes the structural difference between two systems. Either
// may be nil or empty; a nil system diffs like an empty one. The cost
// is one fingerprint pass per transaction plus a linear matching —
// microseconds for realistic systems, negligible next to an analysis.
func Diff(old, new *System) *SystemDiff {
	d := &SystemDiff{}
	oldN, newN := 0, 0
	if old != nil {
		oldN = len(old.Transactions)
	}
	if new != nil {
		newN = len(new.Transactions)
	}

	// Platforms (a nil system has none).
	var oldPlat, newPlat []platform.Params
	if old != nil {
		oldPlat = old.Platforms
	}
	if new != nil {
		newPlat = new.Platforms
	}
	if len(oldPlat) != len(newPlat) {
		d.PlatformCountChanged = true
	} else {
		for m := range oldPlat {
			if oldPlat[m] != newPlat[m] {
				d.ChangedPlatforms = append(d.ChangedPlatforms, m)
			}
		}
	}

	// Match unchanged transactions. Pass 1 is the hot path of
	// admission-control traffic — an in-place edit keeps every other
	// transaction at its position — and compares values directly,
	// avoiding any hashing. Pass 2 handles insertions, removals and
	// reorders by fingerprint, consuming old indices
	// first-in-first-out per fingerprint so duplicates pair up in
	// declaration order.
	oldTaken := make([]bool, oldN)
	newMatched := make([]int, newN) // matched old index, or -1
	pass2 := false
	for n := 0; n < newN; n++ {
		newMatched[n] = -1
		if n >= oldN {
			continue
		}
		if txEquivalent(&old.Transactions[n], &new.Transactions[n]) {
			oldTaken[n] = true
			newMatched[n] = n
		} else {
			pass2 = true
		}
	}
	// When every compared position matched, the leftovers are pure
	// appends (→ Added) or a trailing truncation (→ Removed) — no
	// fingerprinting needed. Only a positional mismatch can leave
	// unmatched transactions on both sides that might still pair up.
	if pass2 {
		byFP := make(map[Fingerprint][]int, oldN)
		for o := 0; o < oldN; o++ {
			if !oldTaken[o] {
				fp := old.Transactions[o].Fingerprint()
				byFP[fp] = append(byFP[fp], o)
			}
		}
		for n := 0; n < newN; n++ {
			if newMatched[n] >= 0 {
				continue
			}
			fp := new.Transactions[n].Fingerprint()
			if q := byFP[fp]; len(q) > 0 {
				o := q[0]
				byFP[fp] = q[1:]
				oldTaken[o] = true
				newMatched[n] = o
			}
		}
	}
	for n := 0; n < newN; n++ {
		if newMatched[n] >= 0 {
			d.Unchanged = append(d.Unchanged, [2]int{newMatched[n], n})
		}
	}

	// Match the rest by (non-empty) name into Modified pairs.
	byName := make(map[string][]int)
	for o := 0; o < oldN; o++ {
		if !oldTaken[o] && old.Transactions[o].Name != "" {
			byName[old.Transactions[o].Name] = append(byName[old.Transactions[o].Name], o)
		}
	}
	for n := 0; n < newN; n++ {
		if newMatched[n] >= 0 {
			continue
		}
		name := new.Transactions[n].Name
		if q := byName[name]; name != "" && len(q) > 0 {
			o := q[0]
			byName[name] = q[1:]
			oldTaken[o] = true
			newMatched[n] = o
			d.Modified = append(d.Modified, [2]int{o, n})
			continue
		}
		d.Added = append(d.Added, n)
	}
	for o := 0; o < oldN; o++ {
		if !oldTaken[o] {
			d.Removed = append(d.Removed, o)
		}
	}
	return d
}

// PriorityOnlyDiff reports whether two transactions differ only in
// task priorities: same task count, period, deadline, and per-task
// parameters (WCET, BCET, platform, blocking, first-task release
// offset and jitter) — with at least one priority actually different.
// Priorities enter the analysis purely through interference-set
// membership (Eq. 17), so a priority-only edit has a much smaller
// reach than a general one; the incremental re-analysis planner uses
// this predicate to seed its dirty closure at task granularity (the
// priority-search fast path). Floats are compared by bit pattern,
// like txEquivalent.
func PriorityOnlyDiff(a, b *Transaction) bool {
	if len(a.Tasks) != len(b.Tasks) ||
		math.Float64bits(a.Period) != math.Float64bits(b.Period) ||
		math.Float64bits(a.Deadline) != math.Float64bits(b.Deadline) {
		return false
	}
	changed := false
	for j := range a.Tasks {
		x, y := &a.Tasks[j], &b.Tasks[j]
		if math.Float64bits(x.WCET) != math.Float64bits(y.WCET) ||
			math.Float64bits(x.BCET) != math.Float64bits(y.BCET) ||
			x.Platform != y.Platform ||
			math.Float64bits(x.Blocking) != math.Float64bits(y.Blocking) {
			return false
		}
		if j == 0 && (math.Float64bits(x.Offset) != math.Float64bits(y.Offset) ||
			math.Float64bits(x.Jitter) != math.Float64bits(y.Jitter)) {
			return false
		}
		if x.Priority != y.Priority {
			changed = true
		}
	}
	return changed
}

// txEquivalent compares two transactions on exactly the fields
// Transaction.Fingerprint covers, but directly — no hashing. Floats
// are compared by bit pattern, matching the fingerprint's encoding
// (−0 ≠ +0, NaN == NaN-with-same-bits), so the two equivalences can
// never disagree.
func txEquivalent(a, b *Transaction) bool {
	if len(a.Tasks) != len(b.Tasks) ||
		math.Float64bits(a.Period) != math.Float64bits(b.Period) ||
		math.Float64bits(a.Deadline) != math.Float64bits(b.Deadline) {
		return false
	}
	for j := range a.Tasks {
		x, y := &a.Tasks[j], &b.Tasks[j]
		if math.Float64bits(x.WCET) != math.Float64bits(y.WCET) ||
			math.Float64bits(x.BCET) != math.Float64bits(y.BCET) ||
			x.Priority != y.Priority || x.Platform != y.Platform ||
			math.Float64bits(x.Blocking) != math.Float64bits(y.Blocking) {
			return false
		}
		if j == 0 && (math.Float64bits(x.Offset) != math.Float64bits(y.Offset) ||
			math.Float64bits(x.Jitter) != math.Float64bits(y.Jitter)) {
			return false
		}
	}
	return true
}
