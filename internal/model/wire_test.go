package model_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/gen"
	"hsched/internal/model"
)

// wireSubjects returns the systems the round-trip tests cover: the
// paper example plus generated systems across sizes, and degenerate
// shapes (no platforms, no transactions, empty names).
func wireSubjects(t testing.TB) map[string]*model.System {
	subjects := map[string]*model.System{
		"paper": experiments.PaperSystem(),
		"empty": {},
		"no-tx": {Platforms: experiments.PaperSystem().Platforms},
		"empty-names": {
			Transactions: []model.Transaction{{
				Period: 1, Deadline: 1,
				Tasks: []model.Task{{WCET: 0.5, BCET: 0.25, Priority: -3, Platform: -1}},
			}},
		},
	}
	for _, cfg := range []gen.Config{
		{Seed: 1, Platforms: 1, Transactions: 1, ChainLen: 1,
			PeriodMin: 10, PeriodMax: 100, Utilization: 0.3, AlphaMin: 0.5, AlphaMax: 0.9},
		{Seed: 7, Platforms: 3, Transactions: 5, ChainLen: 4,
			PeriodMin: 20, PeriodMax: 500, Utilization: 0.5, AlphaMin: 0.4, AlphaMax: 0.9},
		{Seed: 42, Platforms: 4, Transactions: 12, ChainLen: 6,
			PeriodMin: 5, PeriodMax: 1000, Utilization: 0.6, AlphaMin: 0.3, AlphaMax: 1.0,
			RandomPriorities: true},
	} {
		sys, err := gen.System(cfg)
		if err != nil {
			t.Fatalf("gen.System(seed %d): %v", cfg.Seed, err)
		}
		subjects["gen-"+hex.EncodeToString([]byte{byte(cfg.Seed)})] = sys
	}
	return subjects
}

// TestSystemWireRoundTrip asserts the codec is lossless and canonical:
// decode(encode(sys)) is DeepEqual to sys with the same fingerprint,
// and re-encoding reproduces the identical byte string.
func TestSystemWireRoundTrip(t *testing.T) {
	for name, sys := range wireSubjects(t) {
		data, err := sys.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", name, err)
		}
		var dec model.System
		if err := dec.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: UnmarshalBinary: %v", name, err)
		}
		if !reflect.DeepEqual(&dec, sys) {
			t.Errorf("%s: decoded system differs from original", name)
		}
		if dec.Fingerprint() != sys.Fingerprint() {
			t.Errorf("%s: fingerprint changed across round trip", name)
		}
		again, err := dec.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(again, data) {
			t.Errorf("%s: re-marshal not bit-identical (%d vs %d bytes)", name, len(again), len(data))
		}
		// The fingerprint is the SHA-256 of exactly these bytes, so a
		// server can hash a wire body without decoding it.
		if sha256.Sum256(data) != [32]byte(sys.Fingerprint()) {
			t.Errorf("%s: sha256(wire bytes) != Fingerprint()", name)
		}
	}
}

// TestSystemWireAppendBinary asserts AppendBinary appends to an
// existing buffer without disturbing its prefix.
func TestSystemWireAppendBinary(t *testing.T) {
	sys := experiments.PaperSystem()
	prefix := []byte("prefix")
	buf, err := sys.AppendBinary(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatalf("AppendBinary: %v", err)
	}
	data, _ := sys.MarshalBinary()
	if !bytes.Equal(buf[:len(prefix)], prefix) || !bytes.Equal(buf[len(prefix):], data) {
		t.Fatalf("AppendBinary did not append the canonical encoding after the prefix")
	}
}

// paperWireHex is the golden v1 encoding of experiments.PaperSystem().
// It locks the wire layout and, transitively, every fingerprint: if
// this test fails you changed the encoding, which means wireVersion
// must be bumped and the checklist at fingerprintVersion followed.
const paperWireHex = "010000000000000003000000000000009a9999999999d93f000000000000f03f" +
	"000000000000f03f9a9999999999d93f000000000000f03f000000000000f03f" +
	"9a9999999999c93f0000000000000040000000000000f03f0400000000000000" +
	"060000000000000047616d6d6131000000000000494000000000000049400400" +
	"0000000000000600000000000000746175312c31000000000000f03f9a999999" +
	"9999e93f00000000000000000000000000000000020000000000000002000000" +
	"0000000000000000000000000600000000000000746175312c32000000000000" +
	"f03f9a9999999999e93f00000000000000000000000000000000010000000000" +
	"0000000000000000000000000000000000000600000000000000746175312c33" +
	"000000000000f03f9a9999999999e93f00000000000000000000000000000000" +
	"0100000000000000010000000000000000000000000000000600000000000000" +
	"746175312c34000000000000f03f9a9999999999e93f00000000000000000000" +
	"0000000000000300000000000000020000000000000000000000000000000600" +
	"00000000000047616d6d61320000000000002e400000000000002e4001000000" +
	"000000000600000000000000746175322c31000000000000f03f000000000000" +
	"d03f000000000000000000000000000000000300000000000000000000000000" +
	"00000000000000000000060000000000000047616d6d61330000000000002e40" +
	"0000000000002e4001000000000000000600000000000000746175332c310000" +
	"00000000f03f000000000000d03f000000000000000000000000000000000300" +
	"0000000000000100000000000000000000000000000006000000000000004761" +
	"6d6d613400000000008051400000000000805140010000000000000006000000" +
	"00000000746175342c310000000000001c400000000000001440000000000000" +
	"0000000000000000000001000000000000000200000000000000000000000000" +
	"0000"

// TestSystemWireGoldenBytes locks the v1 encoding of the paper
// example byte for byte, including the leading version word.
func TestSystemWireGoldenBytes(t *testing.T) {
	want, err := hex.DecodeString(paperWireHex)
	if err != nil {
		t.Fatalf("bad golden hex: %v", err)
	}
	got, err := experiments.PaperSystem().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("paper system encoding drifted from golden v1 bytes\n got %d bytes: %s\nwant %d bytes: %s",
			len(got), hex.EncodeToString(got), len(want), hex.EncodeToString(want))
	}
	if v := binary.LittleEndian.Uint64(got); v != 1 {
		t.Fatalf("version word = %d, want 1", v)
	}
	// The fingerprint is pinned transitively.
	if fp := experiments.PaperSystem().Fingerprint(); fp.String() != "585d4d361acbd341" {
		t.Fatalf("paper fingerprint drifted: %s", fp)
	}
}

// TestSystemWireVersionGuard asserts an unknown version word yields
// the typed ErrWireVersion error and leaves the receiver untouched.
func TestSystemWireVersionGuard(t *testing.T) {
	data, _ := experiments.PaperSystem().MarshalBinary()
	for _, v := range []uint64{0, 2, 99, math.MaxUint64} {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(bad, v)
		prev := *experiments.PaperSystem()
		dec := prev
		err := dec.UnmarshalBinary(bad)
		if !errors.Is(err, model.ErrWireVersion) {
			t.Fatalf("version %d: err = %v, want ErrWireVersion", v, err)
		}
		if !reflect.DeepEqual(dec, prev) {
			t.Fatalf("version %d: receiver modified on error", v)
		}
	}
}

// TestSystemWireHostileInput asserts the decoder errors — never
// panics, never over-allocates — on truncated, oversized-count,
// oversized-length and trailing-garbage inputs.
func TestSystemWireHostileInput(t *testing.T) {
	data, _ := experiments.PaperSystem().MarshalBinary()

	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(data); n++ {
			var dec model.System
			if err := dec.UnmarshalBinary(data[:n]); err == nil {
				t.Fatalf("decode of %d-byte prefix succeeded, want error", n)
			}
		}
	})

	t.Run("trailing", func(t *testing.T) {
		var dec model.System
		err := dec.UnmarshalBinary(append(append([]byte(nil), data...), 0))
		if err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("trailing byte: err = %v, want trailing-bytes error", err)
		}
	})

	// A huge count word must be rejected before any allocation: these
	// inputs claim 2^61 platforms/transactions in a few dozen bytes.
	t.Run("huge-counts", func(t *testing.T) {
		huge := uint64(1) << 61
		mk := func(words ...uint64) []byte {
			buf := make([]byte, 0, 8*len(words))
			for _, w := range words {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
			return buf
		}
		for name, in := range map[string][]byte{
			"platforms":    mk(1, huge),
			"transactions": mk(1, 0, huge),
			"tasks":        mk(1, 0, 1, 0, math.Float64bits(1), math.Float64bits(1), huge),
		} {
			var dec model.System
			if err := dec.UnmarshalBinary(in); err == nil {
				t.Fatalf("%s: huge count accepted, want error", name)
			}
		}
	})

	t.Run("huge-string", func(t *testing.T) {
		// version, 0 platforms, 1 transaction, name length 2^61.
		buf := make([]byte, 0, 32)
		for _, w := range []uint64{1, 0, 1, 1 << 61} {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		var dec model.System
		if err := dec.UnmarshalBinary(buf); err == nil {
			t.Fatal("huge string length accepted, want error")
		}
	})
}
