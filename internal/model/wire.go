package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"hsched/internal/platform"
)

// The canonical binary wire format of a System (version 1): a
// versioned, length-prefixed, little-endian encoding of every field,
// floats as raw IEEE-754 bit patterns. It is one linear pass in both
// directions and doubles as the fingerprint pre-image: Fingerprint is
// the SHA-256 of exactly these bytes, so the wire identity of a system
// and its cache identity can never drift.
//
//	u64  wireVersion
//	u64  platform count M
//	M ×  ( f64 alpha, f64 delta, f64 beta )
//	u64  transaction count N
//	N ×  ( str name, f64 period, f64 deadline, u64 task count n,
//	       n × ( str name, f64 wcet, f64 bcet, f64 offset, f64 jitter,
//	             u64 priority, u64 platform, f64 blocking ) )
//
// where `str` is a u64 byte length followed by the raw bytes, and
// priority/platform are int64 two's-complement values in a u64 slot.
// The encoding is canonical: every decodable byte string re-marshals
// to itself bit-exactly (no padding, no optional fields, no
// alternative spellings), which is what lets a server fingerprint a
// request by hashing the wire bytes without decoding them first.

// wireVersion guards the canonical encoding. fingerprintVersion (the
// digest's historical name for the same constant) aliases it — see the
// bump checklist there before changing this.
const wireVersion = 1

// ErrWireVersion is wrapped into the error UnmarshalBinary returns for
// an encoding whose version word this build does not read. Callers
// branch on it with errors.Is to distinguish "newer/older peer" from
// "corrupt bytes".
var ErrWireVersion = errors.New("model: unsupported wire version")

// Minimum wire footprints, used to vet length-prefixed counts against
// the remaining input before allocating.
const (
	wirePlatformSize = 3 * 8 // alpha, delta, beta
	wireTxMinSize    = 4 * 8 // name length, period, deadline, task count
	wireTaskMinSize  = 8 * 8 // name length + 7 fixed words
)

func appendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendF64(buf []byte, v float64) []byte {
	return appendU64(buf, math.Float64bits(v))
}

func appendStr(buf []byte, v string) []byte {
	buf = appendU64(buf, uint64(len(v)))
	return append(buf, v...)
}

// wireSize returns the exact encoded length, so the encoder and the
// fingerprint allocate their buffer once.
func (s *System) wireSize() int {
	n := 8 + 8 + wirePlatformSize*len(s.Platforms) + 8
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		n += wireTxMinSize + len(tr.Name)
		for j := range tr.Tasks {
			n += wireTaskMinSize + len(tr.Tasks[j].Name)
		}
	}
	return n
}

// appendBinary appends the canonical encoding to buf. It is the single
// encoder behind MarshalBinary and Fingerprint.
func (s *System) appendBinary(buf []byte) []byte {
	buf = appendU64(buf, wireVersion)
	buf = appendU64(buf, uint64(len(s.Platforms)))
	for _, p := range s.Platforms {
		buf = appendF64(buf, p.Alpha)
		buf = appendF64(buf, p.Delta)
		buf = appendF64(buf, p.Beta)
	}
	buf = appendU64(buf, uint64(len(s.Transactions)))
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		buf = appendStr(buf, tr.Name)
		buf = appendF64(buf, tr.Period)
		buf = appendF64(buf, tr.Deadline)
		buf = appendU64(buf, uint64(len(tr.Tasks)))
		for j := range tr.Tasks {
			t := &tr.Tasks[j]
			buf = appendStr(buf, t.Name)
			buf = appendF64(buf, t.WCET)
			buf = appendF64(buf, t.BCET)
			buf = appendF64(buf, t.Offset)
			buf = appendF64(buf, t.Jitter)
			buf = appendU64(buf, uint64(int64(t.Priority)))
			buf = appendU64(buf, uint64(int64(t.Platform)))
			buf = appendF64(buf, t.Blocking)
		}
	}
	return buf
}

// MarshalBinary encodes the system in the canonical wire format. The
// error is always nil (the signature matches encoding.BinaryMarshaler).
func (s *System) MarshalBinary() ([]byte, error) {
	return s.appendBinary(make([]byte, 0, s.wireSize())), nil
}

// AppendBinary appends the canonical wire encoding to b, implementing
// encoding.BinaryAppender. The error is always nil.
func (s *System) AppendBinary(b []byte) ([]byte, error) {
	return s.appendBinary(b), nil
}

// wireReader is the decode cursor: every read validates against the
// remaining input and returns an error instead of panicking, so
// hostile bytes cost at most one linear scan and never over-allocate
// (counts are vetted against the bytes that must back them before any
// make call).
type wireReader struct {
	data []byte
	off  int
}

func (r *wireReader) remaining() int { return len(r.data) - r.off }

func (r *wireReader) u64(what string) (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("model: wire: truncated at %s (offset %d, %d bytes left)", what, r.off, r.remaining())
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *wireReader) f64(what string) (float64, error) {
	v, err := r.u64(what)
	return math.Float64frombits(v), err
}

func (r *wireReader) str(what string) (string, error) {
	n, err := r.u64(what)
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("model: wire: %s length %d exceeds %d remaining bytes", what, n, r.remaining())
	}
	v := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return v, nil
}

// count reads an element count and rejects any value the remaining
// bytes cannot possibly back (each element occupies at least minSize
// bytes), bounding the subsequent allocation by len(data)/minSize.
func (r *wireReader) count(what string, minSize int) (int, error) {
	n, err := r.u64(what)
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining())/uint64(minSize) {
		return 0, fmt.Errorf("model: wire: %s count %d exceeds %d remaining bytes", what, n, r.remaining())
	}
	return int(n), nil
}

// UnmarshalBinary decodes the canonical wire format, strictly: the
// version word must match, every length prefix must fit the remaining
// input, and the input must be consumed exactly (trailing bytes are an
// error). Strictness is what makes the encoding canonical — every
// successful decode re-marshals to the identical byte string, so
// sha256(wire bytes) equals the decoded system's Fingerprint and a
// server can establish identity without decoding. On error the
// receiver is left unmodified. Structural validity (positive periods,
// platform indices in range, …) is Validate's job, not the decoder's.
func (s *System) UnmarshalBinary(data []byte) error {
	r := wireReader{data: data}
	v, err := r.u64("version")
	if err != nil {
		return err
	}
	if v != wireVersion {
		return fmt.Errorf("%w: got %d, this build reads %d", ErrWireVersion, v, wireVersion)
	}
	var dec System
	nPlat, err := r.count("platform", wirePlatformSize)
	if err != nil {
		return err
	}
	if nPlat > 0 {
		dec.Platforms = make([]platform.Params, nPlat)
	}
	for m := range dec.Platforms {
		p := &dec.Platforms[m]
		if p.Alpha, err = r.f64("platform alpha"); err != nil {
			return err
		}
		if p.Delta, err = r.f64("platform delta"); err != nil {
			return err
		}
		if p.Beta, err = r.f64("platform beta"); err != nil {
			return err
		}
	}
	nTx, err := r.count("transaction", wireTxMinSize)
	if err != nil {
		return err
	}
	if nTx > 0 {
		dec.Transactions = make([]Transaction, nTx)
	}
	for i := range dec.Transactions {
		tr := &dec.Transactions[i]
		if tr.Name, err = r.str("transaction name"); err != nil {
			return err
		}
		if tr.Period, err = r.f64("period"); err != nil {
			return err
		}
		if tr.Deadline, err = r.f64("deadline"); err != nil {
			return err
		}
		nTasks, err := r.count("task", wireTaskMinSize)
		if err != nil {
			return err
		}
		if nTasks > 0 {
			tr.Tasks = make([]Task, nTasks)
		}
		for j := range tr.Tasks {
			t := &tr.Tasks[j]
			if t.Name, err = r.str("task name"); err != nil {
				return err
			}
			if t.WCET, err = r.f64("wcet"); err != nil {
				return err
			}
			if t.BCET, err = r.f64("bcet"); err != nil {
				return err
			}
			if t.Offset, err = r.f64("offset"); err != nil {
				return err
			}
			if t.Jitter, err = r.f64("jitter"); err != nil {
				return err
			}
			prio, err := r.u64("priority")
			if err != nil {
				return err
			}
			t.Priority = int(int64(prio))
			plat, err := r.u64("platform index")
			if err != nil {
				return err
			}
			t.Platform = int(int64(plat))
			if t.Blocking, err = r.f64("blocking"); err != nil {
				return err
			}
		}
	}
	if r.remaining() != 0 {
		return fmt.Errorf("model: wire: %d trailing bytes after system", r.remaining())
	}
	*s = dec
	return nil
}
