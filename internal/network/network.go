// Package network models communication networks as abstract computing
// platforms, following Section 2.2.1 of the paper: "the network is
// similar to a computational node and messages are scheduled according
// to the network scheduling policy". Messages become tasks executed on
// a network platform; this package converts message sizes to
// transmission times, accounts for non-preemptive frame blocking, and
// builds network platforms from bus shares (FTT-CAN-style time
// partitions, after Almeida et al., cited as [2]).
package network

import (
	"fmt"

	"hsched/internal/model"
	"hsched/internal/platform"
)

// Bus describes a shared communication link.
type Bus struct {
	// Name identifies the bus in reports.
	Name string
	// BitsPerUnit is the raw bandwidth in bits per model time unit
	// (e.g. bits per millisecond).
	BitsPerUnit float64
	// MaxFrameBits is the largest frame the protocol transmits
	// non-preemptively; it bounds the priority-inversion blocking a
	// message can suffer.
	MaxFrameBits float64
}

// Validate reports whether the bus parameters are well-formed.
func (b Bus) Validate() error {
	if !(b.BitsPerUnit > 0) {
		return fmt.Errorf("network: %s: bandwidth %v must be positive", b.Name, b.BitsPerUnit)
	}
	if b.MaxFrameBits < 0 {
		return fmt.Errorf("network: %s: max frame %v must be non-negative", b.Name, b.MaxFrameBits)
	}
	return nil
}

// TransmissionTime converts a message size to its transmission time
// ("execution time" of the message task) on an unloaded bus.
func (b Bus) TransmissionTime(bits float64) float64 {
	return bits / b.BitsPerUnit
}

// Blocking returns the worst-case non-preemptive blocking: one maximal
// frame already in transmission when a higher-priority message queues.
func (b Bus) Blocking() float64 {
	return b.MaxFrameBits / b.BitsPerUnit
}

// Dedicated returns the platform of a bus entirely reserved for the
// analysed traffic: (α, Δ, β) = (1, 0, 0).
func (b Bus) Dedicated() platform.Params { return platform.Dedicated() }

// Shared returns the platform of a bus of which the analysed traffic
// owns a synchronous window of the given share per elementary cycle
// (the FTT-CAN pattern): a TDMA partition with slot share·cycle.
func (b Bus) Shared(share, cycle float64) (platform.Params, error) {
	t := platform.TDMA{Slot: share * cycle, Frame: cycle}
	if err := t.Validate(); err != nil {
		return platform.Params{}, fmt.Errorf("network: %s: %w", b.Name, err)
	}
	return t.Params(), nil
}

// ApplyBlocking adds the bus's non-preemptive blocking term to every
// task of the system mapped onto the given network platform index,
// mutating the system in place. Calling it twice adds the term twice;
// apply once after the transaction set is final.
func ApplyBlocking(sys *model.System, networkPlatform int, b Bus) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if networkPlatform < 0 || networkPlatform >= len(sys.Platforms) {
		return fmt.Errorf("network: platform index %d outside [0, %d)", networkPlatform, len(sys.Platforms))
	}
	blocking := b.Blocking()
	for i := range sys.Transactions {
		for j := range sys.Transactions[i].Tasks {
			if sys.Transactions[i].Tasks[j].Platform == networkPlatform {
				sys.Transactions[i].Tasks[j].Blocking += blocking
			}
		}
	}
	return nil
}
