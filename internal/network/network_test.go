package network_test

import (
	"math"
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/network"
	"hsched/internal/platform"
)

func TestBusTiming(t *testing.T) {
	bus := network.Bus{Name: "can0", BitsPerUnit: 1000, MaxFrameBits: 135}
	if err := bus.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := bus.TransmissionTime(135); math.Abs(got-0.135) > 1e-12 {
		t.Errorf("TransmissionTime(135) = %v, want 0.135", got)
	}
	if got := bus.Blocking(); math.Abs(got-0.135) > 1e-12 {
		t.Errorf("Blocking() = %v, want 0.135", got)
	}
	if bus.Dedicated() != platform.Dedicated() {
		t.Errorf("Dedicated() = %v", bus.Dedicated())
	}
}

func TestBusValidateErrors(t *testing.T) {
	if err := (network.Bus{BitsPerUnit: 0}).Validate(); err == nil {
		t.Errorf("zero bandwidth accepted")
	}
	if err := (network.Bus{BitsPerUnit: 1000, MaxFrameBits: -1}).Validate(); err == nil {
		t.Errorf("negative frame accepted")
	}
}

func TestShared(t *testing.T) {
	bus := network.Bus{Name: "ftt", BitsPerUnit: 1000, MaxFrameBits: 135}
	p, err := bus.Shared(0.5, 2)
	if err != nil {
		t.Fatalf("Shared: %v", err)
	}
	// TDMA slot 1 of frame 2: (0.5, 1, 0.5).
	if p.Alpha != 0.5 || p.Delta != 1 || p.Beta != 0.5 {
		t.Errorf("Shared(0.5, 2) = %v, want (0.5, 1, 0.5)", p)
	}
	if _, err := bus.Shared(0, 2); err == nil {
		t.Errorf("zero share accepted")
	}
	if _, err := bus.Shared(1.5, 2); err == nil {
		t.Errorf("share above 1 accepted")
	}
}

func TestApplyBlocking(t *testing.T) {
	bus := network.Bus{Name: "can0", BitsPerUnit: 1000, MaxFrameBits: 135}
	asm, _ := experiments.NetworkedAssembly()
	sys, err := asm.Transactions()
	if err != nil {
		t.Fatal(err)
	}
	net := asm.Messages.Network
	if err := network.ApplyBlocking(sys, net, bus); err != nil {
		t.Fatalf("ApplyBlocking: %v", err)
	}
	count := 0
	for i := range sys.Transactions {
		for j := range sys.Transactions[i].Tasks {
			task := sys.Transactions[i].Tasks[j]
			if task.Platform == net {
				count++
				if math.Abs(task.Blocking-0.135) > 1e-12 {
					t.Errorf("message %s blocking = %v, want 0.135", task.Name, task.Blocking)
				}
			} else if task.Blocking != 0 {
				t.Errorf("non-message task %s got blocking %v", task.Name, task.Blocking)
			}
		}
	}
	if count != 4 {
		t.Errorf("found %d message tasks, want 4 (two RPCs × req+rep)", count)
	}
}

func TestApplyBlockingErrors(t *testing.T) {
	bus := network.Bus{BitsPerUnit: 1000, MaxFrameBits: 135}
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Period: 10, Deadline: 10, Tasks: []model.Task{{WCET: 1, BCET: 1, Priority: 1}}},
		},
	}
	if err := network.ApplyBlocking(sys, 5, bus); err == nil {
		t.Errorf("out-of-range platform accepted")
	}
	if err := network.ApplyBlocking(sys, 0, network.Bus{}); err == nil {
		t.Errorf("invalid bus accepted")
	}
}
