package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTDMAValidate(t *testing.T) {
	cases := []struct {
		s  TDMA
		ok bool
	}{
		{TDMA{Slot: 1, Frame: 4}, true},
		{TDMA{Slot: 4, Frame: 4}, true},
		{TDMA{Slot: 0, Frame: 4}, false},
		{TDMA{Slot: 5, Frame: 4}, false},
		{TDMA{Slot: 1, Frame: 0}, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%+v: Validate() = %v, want ok=%v", c.s, err, c.ok)
		}
	}
}

// TestTDMACurves hand-checks the fixed-slot geometry: the worst-case
// gap is only Frame−Slot (half the floating periodic server's).
func TestTDMACurves(t *testing.T) {
	s := TDMA{Slot: 1, Frame: 4}
	minCases := []struct{ t, z float64 }{
		{0, 0}, {3, 0}, {3.5, 0.5}, {4, 1}, {7, 1}, {8, 2},
	}
	for _, c := range minCases {
		if got := s.MinSupply(c.t); math.Abs(got-c.z) > 1e-12 {
			t.Errorf("Zmin(%v) = %v, want %v", c.t, got, c.z)
		}
	}
	maxCases := []struct{ t, z float64 }{
		{0, 0}, {0.5, 0.5}, {1, 1}, {4, 1}, {5, 2}, {9, 3},
	}
	for _, c := range maxCases {
		if got := s.MaxSupply(c.t); math.Abs(got-c.z) > 1e-12 {
			t.Errorf("Zmax(%v) = %v, want %v", c.t, got, c.z)
		}
	}
	p := s.Params()
	if p.Alpha != 0.25 || p.Delta != 3 || math.Abs(p.Beta-0.75) > 1e-12 {
		t.Errorf("Params() = %v, want (0.25, 3, 0.75)", p)
	}
}

// TestTDMATighterThanPeriodicServer: at equal bandwidth, the fixed
// slot has half the delay of the floating periodic server, so its
// minimum supply dominates everywhere.
func TestTDMATighterThanPeriodicServer(t *testing.T) {
	tdma := TDMA{Slot: 1, Frame: 4}
	ps := PeriodicServer{Q: 1, P: 4}
	for x := 0.0; x <= 40; x += 0.1 {
		if tdma.MinSupply(x) < ps.MinSupply(x)-1e-9 {
			t.Fatalf("t=%v: TDMA Zmin %v below periodic server %v", x, tdma.MinSupply(x), ps.MinSupply(x))
		}
	}
	if tdma.Params().Delta*2 != ps.Params().Delta {
		t.Errorf("TDMA delay %v should be half the periodic server's %v", tdma.Params().Delta, ps.Params().Delta)
	}
}

// TestTDMABoundsProperty mirrors the periodic-server property test.
func TestTDMABoundsProperty(t *testing.T) {
	f := func(sRaw, fRaw, tRaw uint16) bool {
		frame := 0.5 + float64(fRaw%1000)/100
		slot := frame * (0.05 + 0.95*float64(sRaw%997)/997)
		s := TDMA{Slot: slot, Frame: frame}
		lin := s.Params()
		x := float64(tRaw) / 100 * frame
		zmin, zmax := s.MinSupply(x), s.MaxSupply(x)
		return zmin >= -1e-9 && zmin <= zmax+1e-9 && zmax <= x+1e-9 &&
			lin.MinSupply(x) <= zmin+1e-9 &&
			zmax <= lin.Alpha*x+lin.Beta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPfair(t *testing.T) {
	s := Pfair{Weight: 0.4, Quantum: 0.5}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := (Pfair{Weight: 0, Quantum: 1}).Validate(); err == nil {
		t.Errorf("zero weight should fail")
	}
	if err := (Pfair{Weight: 0.5, Quantum: 0}).Validate(); err == nil {
		t.Errorf("zero quantum should fail")
	}
	if got := s.MinSupply(1); math.Abs(got-0) > 1e-12 { // 0.4−0.5 < 0
		t.Errorf("Zmin(1) = %v, want 0", got)
	}
	if got := s.MinSupply(10); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("Zmin(10) = %v, want 3.5", got)
	}
	if got := s.MaxSupply(0.2); math.Abs(got-0.2) > 1e-12 { // capped by t
		t.Errorf("Zmax(0.2) = %v, want 0.2", got)
	}
	if got := s.MaxSupply(10); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Zmax(10) = %v, want 4.5", got)
	}
	p := s.Params()
	if p.Alpha != 0.4 || math.Abs(p.Delta-1.25) > 1e-12 || p.Beta != 0.5 {
		t.Errorf("Params() = %v, want (0.4, 1.25, 0.5)", p)
	}
	// The p-fair platform has far smaller delay than a periodic server
	// of equal bandwidth, matching the paper's remark that its supply
	// functions are "quite different".
	ps := PeriodicServer{Q: 2, P: 5}
	if p.Delta >= ps.Params().Delta {
		t.Errorf("pfair delay %v should beat periodic server delay %v", p.Delta, ps.Params().Delta)
	}
}
