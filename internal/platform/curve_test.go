package platform

import (
	"math"
	"testing"
)

func validCurve() Curve {
	return Curve{
		Min:  []Point{{0, 0}, {6, 0}, {7, 1}, {10, 1}},
		Max:  []Point{{0, 0}, {2, 2}, {5, 2}, {6, 3}},
		Tail: 0.25,
	}
}

func TestCurveValidate(t *testing.T) {
	if err := validCurve().Validate(); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	bad := []Curve{
		{Min: nil, Max: []Point{{0, 0}}, Tail: 0.5},
		{Min: []Point{{1, 0}}, Max: []Point{{0, 0}}, Tail: 0.5},                   // origin missing
		{Min: []Point{{0, 0}, {1, 2}}, Max: []Point{{0, 0}}, Tail: 0.5},           // slope > 1
		{Min: []Point{{0, 0}, {2, 1}, {2, 1.5}}, Max: []Point{{0, 0}}, Tail: 0.5}, // duplicate T
		{Min: []Point{{0, 0}, {2, 1}, {3, 0.5}}, Max: []Point{{0, 0}}, Tail: 0.5}, // decreasing
		{Min: []Point{{0, 0}}, Max: []Point{{0, 0}}, Tail: 0},                     // bad tail
		{Min: []Point{{0, 0}, {2, 2}}, Max: []Point{{0, 0}, {2, 1}}, Tail: 0.5},   // min above max
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := validCurve()
	cases := []struct{ x, min, max float64 }{
		{0, 0, 0},
		{3, 0, 2},
		{6.5, 0.5, 3}, // Max: 3 + 0.25·0.5 = 3.125 but capped... not capped: t=6.5 ≥ 3.125
		{8, 1, 3.5},   // beyond last Max breakpoint: 3 + 0.25·2
		{20, 3.5, 6.5},
	}
	for _, k := range cases {
		if got := c.MinSupply(k.x); math.Abs(got-k.min) > 1e-12 {
			t.Errorf("MinSupply(%v) = %v, want %v", k.x, got, k.min)
		}
	}
	if got := c.MaxSupply(6.5); math.Abs(got-3.125) > 1e-12 {
		t.Errorf("MaxSupply(6.5) = %v, want 3.125", got)
	}
	if got := c.MaxSupply(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("MaxSupply(1) = %v, want 1 (physical cap)", got)
	}
}

// TestSampleRoundTrip: freezing a periodic server into a sampled curve
// preserves its supply values at the sample points.
func TestSampleRoundTrip(t *testing.T) {
	s := PeriodicServer{Q: 1, P: 4}
	c := Sample(s, 20, 200)
	if err := c.Validate(); err != nil {
		t.Fatalf("sampled curve invalid: %v", err)
	}
	for i := 0; i <= 200; i++ {
		x := 20 * float64(i) / 200
		if got, want := c.MinSupply(x), s.MinSupply(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("MinSupply(%v) = %v, want %v", x, got, want)
		}
		if got, want := c.MaxSupply(x), s.MaxSupply(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("MaxSupply(%v) = %v, want %v", x, got, want)
		}
	}
	if c.Rate() != s.Rate() {
		t.Errorf("Rate() = %v, want %v", c.Rate(), s.Rate())
	}
}

// TestLinearizeCurve: a frozen curve linearises to (nearly) the same
// triple as the closed form of the mechanism it sampled.
func TestLinearizeCurve(t *testing.T) {
	s := PeriodicServer{Q: 2, P: 5}
	c := Sample(s, 50, 2000)
	got, err := Linearize(c, 50, 1<<13)
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	want := s.Params()
	if math.Abs(got.Delta-want.Delta) > 0.05 || math.Abs(got.Beta-want.Beta) > 0.05 {
		t.Errorf("linearised %v, want ≈ %v", got, want)
	}
}
