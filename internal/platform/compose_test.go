package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func paramsClose(a, b Params, tol float64) bool {
	return math.Abs(a.Alpha-b.Alpha) <= tol &&
		math.Abs(a.Delta-b.Delta) <= tol &&
		math.Abs(a.Beta-b.Beta) <= tol
}

func TestComposeIdentity(t *testing.T) {
	p := Params{Alpha: 0.4, Delta: 1, Beta: 1}
	if got := Compose(Dedicated(), p); !paramsClose(got, p, 1e-12) {
		t.Errorf("Compose(1, p) = %v, want %v", got, p)
	}
	if got := Compose(p, Dedicated()); !paramsClose(got, p, 1e-12) {
		t.Errorf("Compose(p, 1) = %v, want %v", got, p)
	}
}

func TestComposeAssociative(t *testing.T) {
	a := Params{Alpha: 0.8, Delta: 0.5, Beta: 0.25}
	b := Params{Alpha: 0.5, Delta: 2, Beta: 1}
	c := Params{Alpha: 0.4, Delta: 1, Beta: 0.5}
	left := Compose(Compose(a, b), c)
	right := Compose(a, Compose(b, c))
	if !paramsClose(left, right, 1e-12) {
		t.Errorf("associativity: %v vs %v", left, right)
	}
}

func TestComposeHandExample(t *testing.T) {
	outer := Params{Alpha: 0.5, Delta: 2, Beta: 1}
	inner := Params{Alpha: 0.4, Delta: 1, Beta: 0.5}
	got := Compose(outer, inner)
	want := Params{Alpha: 0.2, Delta: 4, Beta: 0.9} // 0.5·0.4; 2+1/0.5; 0.4·1+0.5
	if !paramsClose(got, want, 1e-12) {
		t.Errorf("Compose = %v, want %v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("composite invalid: %v", err)
	}
}

// TestComposeLowerBoundsTrueNesting: the linear composite lower-bounds
// the true nested supply Zin(Zout(t)) of two concrete periodic
// servers, and its upper bound dominates it — for randomised server
// pairs and window lengths.
func TestComposeLowerBoundsTrueNesting(t *testing.T) {
	f := func(q1, p1, q2, p2, tr uint16) bool {
		outer := PeriodicServer{P: 1 + float64(p1%800)/100}
		outer.Q = outer.P * (0.1 + 0.9*float64(q1%997)/997)
		// The inner server's budget/period are expressed in supplied
		// cycles of the outer platform.
		inner := PeriodicServer{P: 1 + float64(p2%800)/100}
		inner.Q = inner.P * (0.1 + 0.9*float64(q2%997)/997)

		comp := Compose(outer.Params(), inner.Params())
		x := float64(tr) / 50 * outer.P
		trueNest := inner.MinSupply(outer.MinSupply(x))
		if comp.MinSupply(x) > trueNest+1e-9 {
			return false
		}
		trueNestMax := inner.MaxSupply(outer.MaxSupply(x))
		return trueNestMax <= comp.Alpha*x+comp.Beta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestComposeAnalysisConsistency: analysing a task on the composite
// platform is more pessimistic than (or equal to) analysing it on the
// inner platform scaled by hand — sanity: the composite rate is the
// product and the service time of C cycles is Δ + C/(αoαi).
func TestComposeAnalysisConsistency(t *testing.T) {
	outer := Params{Alpha: 0.5, Delta: 1, Beta: 0}
	inner := Params{Alpha: 0.5, Delta: 1, Beta: 0}
	comp := Compose(outer, inner)
	if got := comp.ServiceTime(1); math.Abs(got-(3+4)) > 1e-12 {
		t.Errorf("composite service time = %v, want Δ=3 plus 1/0.25", got)
	}
}
