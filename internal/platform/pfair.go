package platform

import (
	"fmt"
	"math"
)

// Pfair is a quantum-based proportional-share server of weight Weight
// scheduled by a P-fair scheduler with quantum size Quantum (the
// "p-fair scheduler" global scheduling strategy cited in Section 2.3
// of the paper, after Srinivasan & Anderson). P-fairness bounds the
// allocation lag by one quantum: |Z(t) − Weight·t| ≤ Quantum, which
// yields much smoother supply curves than a periodic server of equal
// bandwidth — the paper notes the min/max supply functions of a pfair
// task are "quite different" from Figure 3, and this type captures
// that difference.
type Pfair struct {
	// Weight is the share w ∈ (0, 1] of the processor.
	Weight float64
	// Quantum is the scheduling quantum size (same unit as time).
	Quantum float64
}

// Validate reports whether the server parameters are well-formed.
func (s Pfair) Validate() error {
	if !(s.Weight > 0) || s.Weight > 1 {
		return fmt.Errorf("platform: pfair weight = %v outside (0, 1]", s.Weight)
	}
	if !(s.Quantum > 0) || math.IsInf(s.Quantum, 0) {
		return fmt.Errorf("platform: pfair quantum = %v must be positive and finite", s.Quantum)
	}
	return nil
}

// MinSupply returns the lag lower bound max(0, w·t − q).
func (s Pfair) MinSupply(t float64) float64 {
	return math.Max(0, s.Weight*t-s.Quantum)
}

// MaxSupply returns the lag upper bound min(t, w·t + q).
func (s Pfair) MaxSupply(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return math.Min(t, s.Weight*t+s.Quantum)
}

// Rate returns the weight w.
func (s Pfair) Rate() float64 { return s.Weight }

// Params returns the closed-form linear model (w, q/w, q).
func (s Pfair) Params() Params {
	return Params{Alpha: s.Weight, Delta: s.Quantum / s.Weight, Beta: s.Quantum}
}
