// Package platform models the abstract computing platforms of
// Lorente, Lipari and Bini, "A Hierarchical Scheduling Model for
// Component-Based Real-Time Systems" (IPDPS 2006), Section 2.3.
//
// An abstract computing platform Π is characterised by its minimum and
// maximum supply functions Zmin(t) and Zmax(t): the least and greatest
// number of processor cycles the platform can provide in any window of
// length t (Definitions 1 and 2 of the paper). From these curves three
// scalar parameters are derived (Definitions 3-5):
//
//   - the rate α     — the long-run slope of the supply,
//   - the delay Δ    — the largest horizontal offset of the linear
//     lower bound α·(t−Δ) ≤ Zmin(t),
//   - the burstiness β — the largest vertical offset of the linear
//     upper bound Zmax(t) ≤ α·t+β.
//
// The triple (α, Δ, β) is everything the schedulability analysis in
// package analysis needs: worst-case execution times scale by 1/α,
// each busy period pays the delay Δ once, and best-case completion
// benefits from the burstiness β. Setting (α, Δ, β) = (1, 0, 0)
// degenerates to a dedicated processor and recovers the classical
// holistic analysis.
//
// The package provides the linear model itself (Params), concrete
// supply-curve realisations — the periodic server of Figure 3
// (PeriodicServer), static TDMA partitions (TDMA), quantum-based
// proportional-share servers (Pfair), the dedicated processor
// (Dedicated) and arbitrary piecewise-linear curves (Curve) — and
// numeric linearisation of any Supplier into Params.
package platform
