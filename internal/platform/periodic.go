package platform

import (
	"fmt"
	"math"
)

// staircase evaluates the canonical supply staircase: zero until d0,
// then alternating rate-1 segments of length rise and flat segments,
// repeating every period. It is the shape of both Zmin curves in
// Figure 3 of the paper (with d0 the initial service delay).
func staircase(t, d0, rise, period float64) float64 {
	u := t - d0
	if u <= 0 {
		return 0
	}
	k := math.Floor(u / period)
	frac := u - k*period
	if frac > rise {
		frac = rise
	}
	return k*rise + frac
}

// PeriodicServer is a budget server that provides Q cycles every
// period P, with the quantum free to float anywhere inside the period
// (the scenario of Figure 3 of the paper: a Polling Server, CBS or
// similar reservation mechanism). Its exact worst- and best-case
// supply curves are:
//
//	Zmin: an initial gap of 2(P−Q) followed by Q cycles per period,
//	Zmax: an immediate burst of 2Q followed by Q cycles per period.
//
// The derived linear parameters are α = Q/P, Δ = 2(P−Q) and
// β = 2Q(P−Q)/P.
type PeriodicServer struct {
	// Q is the budget: cycles supplied per period. 0 < Q ≤ P.
	Q float64
	// P is the replenishment period. P > 0.
	P float64
}

// Validate reports whether the server parameters are well-formed.
func (s PeriodicServer) Validate() error {
	if !(s.P > 0) || math.IsInf(s.P, 0) {
		return fmt.Errorf("platform: periodic server period P = %v must be positive and finite", s.P)
	}
	if !(s.Q > 0) || s.Q > s.P {
		return fmt.Errorf("platform: periodic server budget Q = %v outside (0, P=%v]", s.Q, s.P)
	}
	return nil
}

// MinSupply returns the exact Zmin of Figure 3: the worst case starts
// right after a quantum served as early as possible in its period,
// with the next quantum delayed as much as possible, so no cycles
// arrive for 2(P−Q) and then Q cycles arrive per period, each period's
// quantum served back-to-back with the next period boundary.
func (s PeriodicServer) MinSupply(t float64) float64 {
	return staircase(t, 2*(s.P-s.Q), s.Q, s.P)
}

// MaxSupply returns the exact Zmax of Figure 3: the best case obtains
// the quantum immediately on request at the end of one period with the
// next period's quantum immediately after it (a 2Q burst), and every
// later quantum at the start of its period.
func (s PeriodicServer) MaxSupply(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t <= 2*s.Q {
		return t
	}
	// Past the initial burst: flat at (j+1)Q on [2Q+(j−1)P, Q+jP],
	// rising again on [Q+jP, 2Q+jP).
	j := math.Floor((t-2*s.Q)/s.P) + 1
	z := (j+1)*s.Q + math.Max(0, t-(s.Q+j*s.P))
	return math.Min(z, t)
}

// Rate returns α = Q/P.
func (s PeriodicServer) Rate() float64 { return s.Q / s.P }

// Params returns the closed-form linear model of the server:
// (Q/P, 2(P−Q), 2Q(P−Q)/P).
func (s PeriodicServer) Params() Params {
	return Params{
		Alpha: s.Q / s.P,
		Delta: 2 * (s.P - s.Q),
		Beta:  2 * s.Q * (s.P - s.Q) / s.P,
	}
}

// ServerFor returns the periodic server with period P that realises at
// least the platform p, i.e. whose linear parameters dominate p's:
// rate ≥ α and delay ≤ Δ. It solves Q from the tighter of the two
// constraints Q/P ≥ α and 2(P−Q) ≤ Δ; if the two are incompatible for
// the given period (P > Δ/(2(1−α))), an error is returned.
func ServerFor(p Params, period float64) (PeriodicServer, error) {
	if err := p.Validate(); err != nil {
		return PeriodicServer{}, err
	}
	if !(period > 0) {
		return PeriodicServer{}, fmt.Errorf("platform: server period %v must be positive", period)
	}
	q := math.Max(p.Alpha*period, period-p.Delta/2)
	if q > period {
		return PeriodicServer{}, fmt.Errorf("platform: no periodic server with period %v realises %v (need Q=%v > P)", period, p, q)
	}
	return PeriodicServer{Q: q, P: period}, nil
}
