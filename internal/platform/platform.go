package platform

import (
	"errors"
	"fmt"
	"math"
)

// Supplier is any mechanism that can bound the cycles it provides in
// an arbitrary time window. MinSupply and MaxSupply correspond to the
// paper's Zmin and Zmax (Definitions 1 and 2); both must be
// non-decreasing, satisfy Z(0) = 0 and MinSupply(t) ≤ MaxSupply(t) ≤ t
// for all t ≥ 0. Rate returns the common long-run slope α
// (Definition 3; every state-of-the-art mechanism has equal minimum
// and maximum rates, an assumption the paper also makes).
type Supplier interface {
	// MinSupply returns a lower bound on the cycles provided in any
	// interval of length t.
	MinSupply(t float64) float64
	// MaxSupply returns an upper bound on the cycles provided in any
	// interval of length t.
	MaxSupply(t float64) float64
	// Rate returns the long-run supply rate α ∈ (0, 1].
	Rate() float64
}

// Params is the linear abstract-platform model (α, Δ, β): rate, delay
// and burstiness. It is itself a Supplier whose curves are exactly the
// linear bounds max(0, α·(t−Δ)) and α·t+β, so it can stand in for any
// concrete mechanism it was derived from (at the price of the
// pessimism the paper notes at the end of Section 2.3).
type Params struct {
	// Alpha is the rate α ∈ (0, 1]: the fraction of a physical
	// processor the platform provides in the long run.
	Alpha float64
	// Delta is the delay Δ ≥ 0: the worst-case initial service delay
	// of the linear lower supply bound α·(t−Δ).
	Delta float64
	// Beta is the burstiness β ≥ 0: the vertical offset of the linear
	// upper supply bound α·t+β.
	Beta float64
}

// Dedicated returns the parameters of a dedicated physical processor:
// (α, Δ, β) = (1, 0, 0). With these parameters the analysis of package
// analysis reduces to the classical holistic analysis.
func Dedicated() Params { return Params{Alpha: 1, Delta: 0, Beta: 0} }

// Validate reports whether the parameters describe a well-formed
// platform: 0 < α ≤ 1, Δ ≥ 0, β ≥ 0 and all finite.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0):
		return fmt.Errorf("platform: rate α = %v is not finite", p.Alpha)
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("platform: rate α = %v outside (0, 1]", p.Alpha)
	case math.IsNaN(p.Delta) || math.IsInf(p.Delta, 0) || p.Delta < 0:
		return fmt.Errorf("platform: delay Δ = %v is not a finite non-negative value", p.Delta)
	case math.IsNaN(p.Beta) || math.IsInf(p.Beta, 0) || p.Beta < 0:
		return fmt.Errorf("platform: burstiness β = %v is not a finite non-negative value", p.Beta)
	}
	return nil
}

// MinSupply returns the linear lower supply bound max(0, α·(t−Δ)).
func (p Params) MinSupply(t float64) float64 {
	if t <= p.Delta {
		return 0
	}
	return p.Alpha * (t - p.Delta)
}

// MaxSupply returns the linear upper supply bound α·t+β, clamped to
// the physical limit t (a platform cannot supply more cycles than the
// elapsed time) and to 0 at t ≤ 0.
func (p Params) MaxSupply(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return math.Min(t, p.Alpha*t+p.Beta)
}

// Rate returns α.
func (p Params) Rate() float64 { return p.Alpha }

// String renders the platform as the paper's triple notation.
func (p Params) String() string {
	return fmt.Sprintf("(α=%g, Δ=%g, β=%g)", p.Alpha, p.Delta, p.Beta)
}

// ServiceTime returns the smallest window length t that guarantees the
// platform supplies at least c cycles in any interval, according to
// the linear lower bound: t = Δ + c/α. It is the pseudo-inverse of
// MinSupply and the quantity the response-time analysis charges for
// executing c cycles of work.
func (p Params) ServiceTime(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return p.Delta + c/p.Alpha
}

// BestServiceTime returns the smallest window in which the platform
// could possibly supply c cycles, according to the upper bound:
// max(0, (c−β)/α), additionally bounded below by c (rate-1 physical
// limit). It is used for best-case response times.
func (p Params) BestServiceTime(c float64) float64 {
	if c <= 0 {
		return 0
	}
	t := (c - p.Beta) / p.Alpha
	if t < 0 {
		t = 0
	}
	return t
}

// ErrHorizon is returned by Linearize when the observation horizon is
// not positive.
var ErrHorizon = errors.New("platform: linearization horizon must be positive")

// Linearize numerically extracts the (α, Δ, β) triple of an arbitrary
// Supplier by evaluating its curves on [0, horizon] with the given
// resolution (number of sample points; 0 selects a default of 4096).
// Delta is the largest d with Zmin(t) ≤ α(t−d) somewhere (Definition
// 4): sup_t (t − Zmin(t)/α); Beta is sup_t (Zmax(t) − αt)
// (Definition 5). The horizon should cover at least a few periods of
// the underlying mechanism for the estimate to be tight.
func Linearize(s Supplier, horizon float64, resolution int) (Params, error) {
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return Params{}, ErrHorizon
	}
	if resolution <= 0 {
		resolution = 4096
	}
	alpha := s.Rate()
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return Params{}, fmt.Errorf("platform: supplier rate %v outside (0, 1]", alpha)
	}
	var delta, beta float64
	for i := 0; i <= resolution; i++ {
		t := horizon * float64(i) / float64(resolution)
		if d := t - s.MinSupply(t)/alpha; d > delta {
			delta = d
		}
		if b := s.MaxSupply(t) - alpha*t; b > beta {
			beta = b
		}
	}
	p := Params{Alpha: alpha, Delta: delta, Beta: beta}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}
