package platform

import (
	"fmt"
	"math"
)

// TDMA is a static time partition: a slot of Slot cycles at a fixed
// position inside every frame of length Frame (the "static
// partitioning of the resource" global scheduling strategy cited in
// Section 2.3 of the paper). Because the slot position is fixed, the
// worst-case initial gap is only Frame−Slot (versus 2(P−Q) for a
// floating periodic server with the same bandwidth).
type TDMA struct {
	// Slot is the number of cycles supplied per frame. 0 < Slot ≤ Frame.
	Slot float64
	// Frame is the frame (cycle) length. Frame > 0.
	Frame float64
}

// Validate reports whether the partition parameters are well-formed.
func (s TDMA) Validate() error {
	if !(s.Frame > 0) || math.IsInf(s.Frame, 0) {
		return fmt.Errorf("platform: TDMA frame = %v must be positive and finite", s.Frame)
	}
	if !(s.Slot > 0) || s.Slot > s.Frame {
		return fmt.Errorf("platform: TDMA slot = %v outside (0, frame=%v]", s.Slot, s.Frame)
	}
	return nil
}

// MinSupply returns the exact worst-case supply: a window starting
// right at the end of a slot waits Frame−Slot, then receives Slot
// cycles per frame.
func (s TDMA) MinSupply(t float64) float64 {
	return staircase(t, s.Frame-s.Slot, s.Slot, s.Frame)
}

// MaxSupply returns the exact best-case supply: a window starting at a
// slot boundary receives Slot cycles immediately and every frame after.
func (s TDMA) MaxSupply(t float64) float64 {
	return staircase(t, 0, s.Slot, s.Frame)
}

// Rate returns α = Slot/Frame.
func (s TDMA) Rate() float64 { return s.Slot / s.Frame }

// Params returns the closed-form linear model of the partition:
// (Slot/Frame, Frame−Slot, Slot·(Frame−Slot)/Frame).
func (s TDMA) Params() Params {
	return Params{
		Alpha: s.Slot / s.Frame,
		Delta: s.Frame - s.Slot,
		Beta:  s.Slot * (s.Frame - s.Slot) / s.Frame,
	}
}
