package platform

// Compose returns the linear platform model of a reservation stacked
// on another reservation: inner runs on the cycles supplied by outer
// (e.g. a component's server scheduled inside a partition that is
// itself a server on the physical processor). This extends the
// paper's two-level hierarchy to arbitrary depth.
//
// If the outer platform guarantees Zout(t) ≥ αo·(t−Δo) cycles in any
// window t, and the inner mechanism turns any v supplied cycles into
// Zin(v) ≥ αi·(v−Δi) cycles for its client, the composite guarantees
//
//	Zin(Zout(t)) ≥ αi·(αo·(t−Δo) − Δi) = αoαi·(t − Δo − Δi/αo),
//
// i.e. rates multiply and the inner delay dilates by the outer rate.
// Dually for the upper bound: Zin(Zout(t)) ≤ αi(αo·t + βo) + βi.
// Composition is associative and Dedicated() is its identity.
func Compose(outer, inner Params) Params {
	return Params{
		Alpha: outer.Alpha * inner.Alpha,
		Delta: outer.Delta + inner.Delta/outer.Alpha,
		Beta:  inner.Alpha*outer.Beta + inner.Beta,
	}
}
