package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"dedicated", Dedicated(), true},
		{"paper pi1", Params{Alpha: 0.4, Delta: 1, Beta: 1}, true},
		{"zero rate", Params{Alpha: 0, Delta: 1, Beta: 1}, false},
		{"negative rate", Params{Alpha: -0.5, Delta: 1, Beta: 1}, false},
		{"rate above one", Params{Alpha: 1.5, Delta: 0, Beta: 0}, false},
		{"negative delay", Params{Alpha: 0.5, Delta: -1, Beta: 0}, false},
		{"negative burst", Params{Alpha: 0.5, Delta: 1, Beta: -2}, false},
		{"nan rate", Params{Alpha: math.NaN(), Delta: 0, Beta: 0}, false},
		{"inf delay", Params{Alpha: 0.5, Delta: math.Inf(1), Beta: 0}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParamsLinearBounds(t *testing.T) {
	p := Params{Alpha: 0.4, Delta: 1, Beta: 1}
	cases := []struct{ t, min, max float64 }{
		{0, 0, 0},
		{0.5, 0, 0.5},   // max capped by physical limit t
		{1, 0, 1},       // at the delay boundary
		{2, 0.4, 1.8},   // 0.4·(2−1); 0.4·2+1
		{11, 4, 5.4},    // 0.4·10; 0.4·11+1
		{101, 40, 41.4}, // long run
	}
	for _, c := range cases {
		if got := p.MinSupply(c.t); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinSupply(%v) = %v, want %v", c.t, got, c.min)
		}
		if got := p.MaxSupply(c.t); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxSupply(%v) = %v, want %v", c.t, got, c.max)
		}
	}
}

func TestServiceTimes(t *testing.T) {
	p := Params{Alpha: 0.2, Delta: 2, Beta: 1}
	if got := p.ServiceTime(1); math.Abs(got-7) > 1e-12 {
		t.Errorf("ServiceTime(1) = %v, want 7 (Δ + C/α)", got)
	}
	if got := p.ServiceTime(0); got != 0 {
		t.Errorf("ServiceTime(0) = %v, want 0", got)
	}
	// Best case: (c−β)/α clamped at 0.
	if got := p.BestServiceTime(0.5); got != 0 {
		t.Errorf("BestServiceTime(0.5) = %v, want 0 (burst covers it)", got)
	}
	if got := p.BestServiceTime(2); math.Abs(got-5) > 1e-12 {
		t.Errorf("BestServiceTime(2) = %v, want 5", got)
	}
}

func TestDedicatedIsIdentity(t *testing.T) {
	p := Dedicated()
	for _, x := range []float64{0, 0.1, 1, 7.5, 1000} {
		if got := p.MinSupply(x); got != x {
			t.Errorf("dedicated MinSupply(%v) = %v", x, got)
		}
		if got := p.MaxSupply(x); got != x {
			t.Errorf("dedicated MaxSupply(%v) = %v", x, got)
		}
	}
}

// TestParamsSupplierProperty: for any valid Params and any t ≥ 0,
// 0 ≤ MinSupply ≤ MaxSupply ≤ t and both are non-decreasing.
func TestParamsSupplierProperty(t *testing.T) {
	f := func(a, d, bt, t1, t2 uint16) bool {
		p := Params{
			Alpha: 0.05 + float64(a%900)/1000.0,
			Delta: float64(d%1000) / 100,
			Beta:  float64(bt%1000) / 100,
		}
		x1, x2 := float64(t1)/100, float64(t2)/100
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		lo1, hi1 := p.MinSupply(x1), p.MaxSupply(x1)
		lo2, hi2 := p.MinSupply(x2), p.MaxSupply(x2)
		return lo1 >= 0 && lo1 <= hi1+1e-12 && hi1 <= x1+1e-12 &&
			lo1 <= lo2+1e-12 && hi1 <= hi2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLinearizeErrors(t *testing.T) {
	if _, err := Linearize(Dedicated(), 0, 16); err == nil {
		t.Errorf("Linearize with zero horizon should fail")
	}
	if _, err := Linearize(Dedicated(), math.Inf(1), 16); err == nil {
		t.Errorf("Linearize with infinite horizon should fail")
	}
}

// TestLinearizeRecoversClosedForm: numeric extraction of (α, Δ, β)
// from the exact periodic-server curves matches the closed form.
func TestLinearizeRecoversClosedForm(t *testing.T) {
	for _, s := range []PeriodicServer{
		{Q: 1, P: 4}, {Q: 1. / 3, P: 5. / 6}, {Q: 3, P: 5}, {Q: 2, P: 2},
	} {
		want := s.Params()
		got, err := Linearize(s, 40*s.P, 1<<14)
		if err != nil {
			t.Fatalf("Linearize(%+v): %v", s, err)
		}
		if math.Abs(got.Alpha-want.Alpha) > 1e-9 {
			t.Errorf("server %+v: α = %v, want %v", s, got.Alpha, want.Alpha)
		}
		if math.Abs(got.Delta-want.Delta) > s.P/1000 {
			t.Errorf("server %+v: Δ = %v, want %v", s, got.Delta, want.Delta)
		}
		if math.Abs(got.Beta-want.Beta) > s.Q/100 {
			t.Errorf("server %+v: β = %v, want %v", s, got.Beta, want.Beta)
		}
	}
}
