package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodicServerValidate(t *testing.T) {
	cases := []struct {
		s  PeriodicServer
		ok bool
	}{
		{PeriodicServer{Q: 1, P: 4}, true},
		{PeriodicServer{Q: 4, P: 4}, true},
		{PeriodicServer{Q: 0, P: 4}, false},
		{PeriodicServer{Q: 5, P: 4}, false},
		{PeriodicServer{Q: 1, P: 0}, false},
		{PeriodicServer{Q: 1, P: -2}, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%+v: Validate() = %v, want ok=%v", c.s, err, c.ok)
		}
	}
}

// TestPeriodicServerFigure3Geometry hand-checks the exact curves of
// Figure 3 for Q=1, P=4: Δ = 2(P−Q) = 6, burst 2Q = 2, β = 1.5.
func TestPeriodicServerFigure3Geometry(t *testing.T) {
	s := PeriodicServer{Q: 1, P: 4}
	minCases := []struct{ t, z float64 }{
		{0, 0}, {3, 0}, {6, 0}, // initial gap 2(P−Q) = 6
		{6.5, 0.5}, {7, 1}, // first quantum
		{10, 1},              // flat until the next period's quantum
		{10.5, 1.5}, {11, 2}, // second quantum
		{14, 2}, {15, 3}, // and so on
	}
	for _, c := range minCases {
		if got := s.MinSupply(c.t); math.Abs(got-c.z) > 1e-12 {
			t.Errorf("Zmin(%v) = %v, want %v", c.t, got, c.z)
		}
	}
	maxCases := []struct{ t, z float64 }{
		{0, 0}, {1, 1}, {2, 2}, // immediate 2Q burst
		{3, 2}, {5, 2}, // flat until Q+P = 5
		{5.5, 2.5}, {6, 3}, // next quantum
		{9, 3}, {10, 4}, // and so on
	}
	for _, c := range maxCases {
		if got := s.MaxSupply(c.t); math.Abs(got-c.z) > 1e-12 {
			t.Errorf("Zmax(%v) = %v, want %v", c.t, got, c.z)
		}
	}
	p := s.Params()
	if p.Alpha != 0.25 || p.Delta != 6 || math.Abs(p.Beta-1.5) > 1e-12 {
		t.Errorf("Params() = %v, want (0.25, 6, 1.5)", p)
	}
}

// TestPeriodicServerBoundsProperty: for randomised (Q, P) and t, the
// exact curves respect 0 ≤ α(t−Δ) ≤ Zmin ≤ Zmax ≤ αt+β and Zmax ≤ t,
// and both curves are non-decreasing.
func TestPeriodicServerBoundsProperty(t *testing.T) {
	f := func(qRaw, pRaw, tRaw uint16) bool {
		p := 0.5 + float64(pRaw%1000)/100
		q := p * (0.05 + 0.95*float64(qRaw%997)/997)
		s := PeriodicServer{Q: q, P: p}
		lin := s.Params()
		x := float64(tRaw) / 100 * p
		zmin, zmax := s.MinSupply(x), s.MaxSupply(x)
		if zmin < -1e-9 || zmin > zmax+1e-9 || zmax > x+1e-9 {
			return false
		}
		if lin.MinSupply(x) > zmin+1e-9 {
			return false
		}
		if zmax > lin.Alpha*x+lin.Beta+1e-9 {
			return false
		}
		// Monotonicity on a small forward step.
		return s.MinSupply(x+0.01) >= zmin-1e-9 && s.MaxSupply(x+0.01) >= zmax-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestPeriodicServerLowerBoundTight: the linear lower bound α(t−Δ)
// touches Zmin exactly at the starts of the rising segments,
// t = 2(P−Q) + kP, and is strictly below it elsewhere on the rise.
func TestPeriodicServerLowerBoundTight(t *testing.T) {
	s := PeriodicServer{Q: 1, P: 4}
	lin := s.Params()
	for k := 0; k < 5; k++ {
		x := 2*(s.P-s.Q) + float64(k)*s.P
		if d := s.MinSupply(x) - lin.MinSupply(x); math.Abs(d) > 1e-9 {
			t.Errorf("corner t=%v: Zmin−bound = %v, want 0", x, d)
		}
		// Mid-rise the staircase is strictly above the line.
		if d := s.MinSupply(x+s.Q/2) - lin.MinSupply(x+s.Q/2); d <= 0 {
			t.Errorf("mid-rise t=%v: Zmin−bound = %v, want > 0", x+s.Q/2, d)
		}
	}
}

// TestPeriodicServerFullBudget: Q = P behaves as a dedicated CPU.
func TestPeriodicServerFullBudget(t *testing.T) {
	s := PeriodicServer{Q: 3, P: 3}
	for _, x := range []float64{0, 0.5, 3, 7, 100} {
		if got := s.MinSupply(x); math.Abs(got-x) > 1e-9 {
			t.Errorf("Zmin(%v) = %v, want %v", x, got, x)
		}
		if got := s.MaxSupply(x); math.Abs(got-x) > 1e-9 {
			t.Errorf("Zmax(%v) = %v, want %v", x, got, x)
		}
	}
	p := s.Params()
	if p.Alpha != 1 || p.Delta != 0 || p.Beta != 0 {
		t.Errorf("full-budget Params() = %v, want (1, 0, 0)", p)
	}
}

func TestServerFor(t *testing.T) {
	p := Params{Alpha: 0.4, Delta: 1, Beta: 1}
	s, err := ServerFor(p, 1/(2*(1-0.4)))
	if err != nil {
		t.Fatalf("ServerFor: %v", err)
	}
	got := s.Params()
	if got.Alpha < p.Alpha-1e-9 {
		t.Errorf("realised rate %v below requested %v", got.Alpha, p.Alpha)
	}
	if got.Delta > p.Delta+1e-9 {
		t.Errorf("realised delay %v above requested %v", got.Delta, p.Delta)
	}

	// Longer periods can only realise the delay by over-provisioning
	// budget: P = 10 with Δ = 1 needs Q = P − Δ/2 = 9.5.
	over, err := ServerFor(p, 10)
	if err != nil {
		t.Fatalf("ServerFor(period 10): %v", err)
	}
	if math.Abs(over.Q-9.5) > 1e-12 {
		t.Errorf("over-provisioned budget Q = %v, want 9.5", over.Q)
	}
	if got := over.Params(); got.Delta > p.Delta+1e-9 || got.Alpha < p.Alpha {
		t.Errorf("over-provisioned server %v does not dominate %v", got, p)
	}
	if _, err := ServerFor(Params{Alpha: 2}, 1); err == nil {
		t.Errorf("ServerFor with invalid params should fail")
	}
	if _, err := ServerFor(p, 0); err == nil {
		t.Errorf("ServerFor with zero period should fail")
	}
}
