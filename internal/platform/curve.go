package platform

import (
	"fmt"
	"math"
	"sort"
)

// Point is a breakpoint of a piecewise-linear supply curve.
type Point struct {
	// T is the window length.
	T float64
	// Z is the supply bound at T.
	Z float64
}

// Curve is an arbitrary supply specification given as piecewise-linear
// lower and upper curves. Beyond the last breakpoint each curve is
// extended at slope Tail (the long-run rate α). Curve supports
// platforms whose mechanism has no closed form — measured supplies,
// compositions, or hand-authored bounds.
type Curve struct {
	// Min are the breakpoints of Zmin, sorted by T, starting at (0, 0).
	Min []Point
	// Max are the breakpoints of Zmax, sorted by T, starting at (0, 0).
	Max []Point
	// Tail is the long-run rate α used beyond the last breakpoint of
	// each curve.
	Tail float64
}

// Validate checks that both curves are well-formed: sorted,
// non-decreasing, starting at the origin, with Zmin ≤ Zmax pointwise
// at shared breakpoints, slopes within [0, 1], and a Tail in (0, 1].
func (c Curve) Validate() error {
	if !(c.Tail > 0) || c.Tail > 1 {
		return fmt.Errorf("platform: curve tail rate = %v outside (0, 1]", c.Tail)
	}
	for name, pts := range map[string][]Point{"min": c.Min, "max": c.Max} {
		if len(pts) == 0 {
			return fmt.Errorf("platform: curve %s has no breakpoints", name)
		}
		if pts[0].T != 0 || pts[0].Z != 0 {
			return fmt.Errorf("platform: curve %s must start at the origin, got (%v, %v)", name, pts[0].T, pts[0].Z)
		}
		for i := 1; i < len(pts); i++ {
			dt, dz := pts[i].T-pts[i-1].T, pts[i].Z-pts[i-1].Z
			if dt <= 0 {
				return fmt.Errorf("platform: curve %s breakpoints not strictly increasing in T at index %d", name, i)
			}
			if dz < 0 {
				return fmt.Errorf("platform: curve %s decreasing at index %d", name, i)
			}
			if dz > dt*(1+1e-9) {
				return fmt.Errorf("platform: curve %s slope %v exceeds 1 at index %d", name, dz/dt, i)
			}
		}
	}
	for _, p := range c.Min {
		if c.evalMax(p.T) < p.Z-1e-9 {
			return fmt.Errorf("platform: curve has Zmin(%v)=%v above Zmax(%v)=%v", p.T, p.Z, p.T, c.evalMax(p.T))
		}
	}
	return nil
}

func eval(pts []Point, tail, t float64) float64 {
	if t <= 0 {
		return 0
	}
	n := len(pts)
	if t >= pts[n-1].T {
		return pts[n-1].Z + tail*(t-pts[n-1].T)
	}
	i := sort.Search(n, func(k int) bool { return pts[k].T > t })
	// pts[i-1].T ≤ t < pts[i].T with i ≥ 1 because pts[0].T == 0.
	a, b := pts[i-1], pts[i]
	return a.Z + (b.Z-a.Z)*(t-a.T)/(b.T-a.T)
}

func (c Curve) evalMax(t float64) float64 { return eval(c.Max, c.Tail, t) }

// MinSupply linearly interpolates the lower curve.
func (c Curve) MinSupply(t float64) float64 { return eval(c.Min, c.Tail, t) }

// MaxSupply linearly interpolates the upper curve, clamped to the
// physical limit t.
func (c Curve) MaxSupply(t float64) float64 {
	return math.Min(math.Max(t, 0), c.evalMax(t))
}

// Rate returns the tail rate α.
func (c Curve) Rate() float64 { return c.Tail }

// Sample tabulates a Supplier's curves on [0, horizon] with n+1 evenly
// spaced points (useful to plot Figure 3 or to freeze a mechanism into
// a Curve).
func Sample(s Supplier, horizon float64, n int) Curve {
	if n < 1 {
		n = 1
	}
	c := Curve{Tail: s.Rate()}
	for i := 0; i <= n; i++ {
		t := horizon * float64(i) / float64(n)
		c.Min = append(c.Min, Point{T: t, Z: s.MinSupply(t)})
		c.Max = append(c.Max, Point{T: t, Z: s.MaxSupply(t)})
	}
	return c
}
