package platform_test

import (
	"fmt"

	"hsched/internal/platform"
)

// ExamplePeriodicServer derives the linear platform model of a budget
// server, the direction used throughout the paper's Section 2.3.
func ExamplePeriodicServer() {
	srv := platform.PeriodicServer{Q: 1, P: 4}
	fmt.Println(srv.Params())
	fmt.Println(srv.MinSupply(7), srv.MaxSupply(7))
	// Output:
	// (α=0.25, Δ=6, β=1.5)
	// 1 3
}

// ExampleLinearize recovers (α, Δ, β) numerically from supply curves,
// for mechanisms without a closed form.
func ExampleLinearize() {
	p, err := platform.Linearize(platform.TDMA{Slot: 1, Frame: 4}, 80, 1<<13)
	if err != nil {
		panic(err)
	}
	fmt.Printf("α=%.2f Δ=%.2f β=%.2f\n", p.Alpha, p.Delta, p.Beta)
	// Output:
	// α=0.25 Δ=3.00 β=0.75
}

// ExampleCompose stacks a component server inside a partition: rates
// multiply and the inner delay dilates by the outer rate.
func ExampleCompose() {
	partition := platform.TDMA{Slot: 12, Frame: 20}.Params()
	server := platform.PeriodicServer{Q: 2, P: 3}.Params()
	c := platform.Compose(partition, server)
	fmt.Printf("α=%.2f Δ=%.2f β=%.2f\n", c.Alpha, c.Delta, c.Beta)
	// Output:
	// α=0.40 Δ=11.33 β=4.53
}

// ExampleParams_ServiceTime shows the quantity the response-time
// analysis charges for C cycles of work: Δ + C/α.
func ExampleParams_ServiceTime() {
	p := platform.Params{Alpha: 0.2, Delta: 2, Beta: 1}
	fmt.Println(p.ServiceTime(1))
	// Output:
	// 7
}
