package httpd

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"hsched/internal/model"
)

// parsedAnalyze is one decoded /v1/analyze body: the converted system,
// its fingerprint, and the request's options block. The *model.System
// is shared across requests verbatim — the analyze path treats systems
// as read-only (the service memoises shared *Results over them), so a
// repeated body needs no re-decode and no fresh copy. Caching the
// fingerprint alongside makes a memo-hit request exactly one hash: the
// SHA-256 of the raw body that keys this memo — the service is handed
// the cached fingerprint instead of re-encoding the system to hash it.
type parsedAnalyze struct {
	key [sha256.Size]byte
	sys *model.System
	fp  model.Fingerprint
	opt OptionsSpec
}

// parseMemo is a body-hash LRU in front of the analyze decode path.
// Admission-control traffic keeps re-asking about the same small
// population of systems, so the expensive part of a memo-hit query is
// not the analysis (the service answers in ~µs) but decoding the JSON
// spec and rebuilding the model — this cache skips both: a repeated
// byte-identical body costs one SHA-256 of the raw bytes. Entries are
// only ever successful parses; malformed bodies are re-diagnosed every
// time so their 400s stay accurate.
type parseMemo struct {
	mu    sync.Mutex
	cap   int
	lru   list.List // of *parsedAnalyze, front = most recent
	byKey map[[sha256.Size]byte]*list.Element
	hits  atomic.Int64
}

func newParseMemo(capacity int) *parseMemo {
	if capacity <= 0 {
		return nil
	}
	return &parseMemo{
		cap:   capacity,
		byKey: make(map[[sha256.Size]byte]*list.Element),
	}
}

// get returns the cached parse for a body hash, if any. A nil memo
// (disabled) never hits.
func (p *parseMemo) get(key [sha256.Size]byte) (*parsedAnalyze, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.byKey[key]
	if !ok {
		return nil, false
	}
	p.lru.MoveToFront(el)
	p.hits.Add(1)
	return el.Value.(*parsedAnalyze), true
}

// put records a successful parse, evicting the least-recently-used
// entry beyond capacity.
func (p *parseMemo) put(key [sha256.Size]byte, sys *model.System, fp model.Fingerprint, opt OptionsSpec) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		p.lru.MoveToFront(el)
		return
	}
	p.byKey[key] = p.lru.PushFront(&parsedAnalyze{key: key, sys: sys, fp: fp, opt: opt})
	for p.lru.Len() > p.cap {
		victim := p.lru.Back()
		p.lru.Remove(victim)
		delete(p.byKey, victim.Value.(*parsedAnalyze).key)
	}
}
