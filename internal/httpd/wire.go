package httpd

import (
	"fmt"
	"math"
	"sort"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/service"
	"hsched/internal/spec"
)

// OptionsSpec is the JSON options block of every analysis-running
// request, mirroring the CLI flags of `hsched` / `hsched assign`.
// Absent fields fall back to the server's defaults (the `hsched serve`
// flags): booleans are taken from the request as-is, integer knobs
// fall back when zero.
type OptionsSpec struct {
	// Exact selects the exact scenario enumeration of Sec. 3.1.1.
	Exact bool `json:"exact,omitempty"`
	// Static runs the one-pass static-offset analysis instead of the
	// holistic iteration (analyze endpoints only).
	Static bool `json:"static,omitempty"`
	// TightBestCase enables the per-run burstiness refinement of the
	// best-case bounds.
	TightBestCase bool `json:"tight_best_case,omitempty"`
	// StopAtDeadlineMiss ends the iteration at the first provable
	// deadline miss (verdict-only traffic; reported responses are then
	// lower bounds).
	StopAtDeadlineMiss bool `json:"stop_at_deadline_miss,omitempty"`
	// Workers bounds the per-round response-time workers of this
	// query; 0 falls back to the server default (1 on a shared server,
	// so concurrent requests do not oversubscribe the host).
	Workers int `json:"workers,omitempty"`
	// MaxIterations bounds the outer holistic iteration; 0 keeps the
	// analysis default.
	MaxIterations int `json:"max_iterations,omitempty"`
	// MaxScenarios bounds the exact scenario count per task; 0 keeps
	// the analysis default.
	MaxScenarios int `json:"max_scenarios,omitempty"`
	// DeadlineMS is the per-request deadline in milliseconds, mapped
	// onto a context.WithTimeout around the analysis. The
	// X-Deadline-Ms header is the transport-level equivalent; the
	// options field wins when both are given. An expired deadline
	// aborts the analysis mid-fixed-point and the response is a 504.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// Bounds includes the per-task response-time bounds in the
	// response. Off by default: admission-control traffic wants the
	// verdict, and the terse response is what keeps a memo hit cheap
	// on the wire.
	Bounds bool `json:"bounds,omitempty"`
}

// analysis maps the options block onto analysis.Options, falling back
// to the server defaults for the integer knobs.
func (o OptionsSpec) analysis(def analysis.Options) analysis.Options {
	opt := analysis.Options{
		Exact:              o.Exact,
		TightBestCase:      o.TightBestCase,
		StopAtDeadlineMiss: o.StopAtDeadlineMiss,
		Workers:            def.Workers,
		MaxIterations:      def.MaxIterations,
		MaxScenarios:       def.MaxScenarios,
		Epsilon:            def.Epsilon,
	}
	if o.Workers > 0 {
		opt.Workers = o.Workers
	}
	if o.MaxIterations > 0 {
		opt.MaxIterations = o.MaxIterations
	}
	if o.MaxScenarios > 0 {
		opt.MaxScenarios = o.MaxScenarios
	}
	return opt
}

// AnalyzeRequest is the body of POST /v1/analyze and of the
// session-scoped POST /v1/session/{token}/analyze. Exactly one of
// System and Edit must be set (Edit only on the session-scoped form,
// where it applies against the session's last accepted system). For
// curl friendliness a bare spec document — a body whose top level is
// the system itself — is also accepted by /v1/analyze.
type AnalyzeRequest struct {
	System  *spec.File  `json:"system,omitempty"`
	Edit    *EditSpec   `json:"edit,omitempty"`
	Options OptionsSpec `json:"options"`
}

// AssignRequest is the body of POST /v1/assign.
type AssignRequest struct {
	System *spec.File `json:"system"`
	// Policy is rm, dm, hopa or audsley; empty selects audsley.
	Policy string `json:"policy,omitempty"`
	// Iterations bounds HOPA's deadline-redistribution rounds.
	Iterations int         `json:"iterations,omitempty"`
	Options    OptionsSpec `json:"options"`
}

// MinimizeRequest is the body of POST /v1/minimize.
type MinimizeRequest struct {
	System *spec.File `json:"system"`
	// Families selects one server family per platform; empty defaults
	// every platform to a polling family whose period is a quarter of
	// the shortest transaction period (the generator's convention).
	Families []FamilySpec `json:"families,omitempty"`
	// Tolerance is the bandwidth resolution; 0 selects the design
	// default (1e-3).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Passes bounds the coordinate-descent sweeps; 0 selects the
	// design default.
	Passes  int         `json:"passes,omitempty"`
	Options OptionsSpec `json:"options"`
}

// FamilySpec names one platform's server family for /v1/minimize.
type FamilySpec struct {
	// Kind is polling, tdma or pfair.
	Kind string `json:"kind"`
	// Period is the polling-server period (kind polling).
	Period float64 `json:"period,omitempty"`
	// Frame is the TDMA frame (kind tdma).
	Frame float64 `json:"frame,omitempty"`
	// Quantum is the proportional-share quantum (kind pfair).
	Quantum float64 `json:"quantum,omitempty"`
}

// SessionRequest is the body of POST /v1/session. The options block
// becomes the session's default for probes that omit their own.
type SessionRequest struct {
	Options OptionsSpec `json:"options"`
}

// SessionResponse returns the token of a freshly bound session.
type SessionResponse struct {
	Token string `json:"token"`
}

// EditSpec is a model.Diff-shaped edit applied to the session's last
// accepted system: platform parameter changes, in-place transaction
// replacements, removals and additions. All indices are 1-based,
// matching the spec file format. Application order: platforms, set,
// remove (indices refer to the pre-edit transaction list), then add.
type EditSpec struct {
	Platforms []PlatformEdit         `json:"platforms,omitempty"`
	Set       []TransactionSet       `json:"set,omitempty"`
	Remove    []int                  `json:"remove,omitempty"`
	Add       []spec.TransactionSpec `json:"add,omitempty"`
}

// PlatformEdit replaces one platform's (α, Δ, β) parameters.
type PlatformEdit struct {
	Index int     `json:"index"`
	Alpha float64 `json:"alpha"`
	Delta float64 `json:"delta"`
	Beta  float64 `json:"beta"`
}

// TransactionSet replaces one transaction in place.
type TransactionSet struct {
	Index       int                  `json:"index"`
	Transaction spec.TransactionSpec `json:"transaction"`
}

// apply returns a validated copy of base with the edit applied. Every
// error wraps spec.ErrInvalid (the request is at fault) and names the
// offending element.
func (e *EditSpec) apply(base *model.System) (*model.System, error) {
	sys := base.Clone()
	for _, pe := range e.Platforms {
		if pe.Index < 1 || pe.Index > len(sys.Platforms) {
			return nil, fmt.Errorf("%w: platform edit: index %d outside [1, %d]", spec.ErrInvalid, pe.Index, len(sys.Platforms))
		}
		p := &sys.Platforms[pe.Index-1]
		p.Alpha, p.Delta, p.Beta = pe.Alpha, pe.Delta, pe.Beta
	}
	for _, ts := range e.Set {
		if ts.Index < 1 || ts.Index > len(sys.Transactions) {
			return nil, fmt.Errorf("%w: set: index %d outside [1, %d]", spec.ErrInvalid, ts.Index, len(sys.Transactions))
		}
		tr, err := ts.Transaction.ToTransaction(len(sys.Platforms))
		if err != nil {
			return nil, fmt.Errorf("set: transaction %d: %w", ts.Index, err)
		}
		sys.Transactions[ts.Index-1] = tr
	}
	if len(e.Remove) > 0 {
		idx := append([]int(nil), e.Remove...)
		sort.Sort(sort.Reverse(sort.IntSlice(idx)))
		last := 0
		for _, i := range idx {
			if i < 1 || i > len(base.Transactions) {
				return nil, fmt.Errorf("%w: remove: index %d outside [1, %d]", spec.ErrInvalid, i, len(base.Transactions))
			}
			if i == last {
				return nil, fmt.Errorf("%w: remove: index %d repeated", spec.ErrInvalid, i)
			}
			last = i
			sys.Transactions = append(sys.Transactions[:i-1], sys.Transactions[i:]...)
		}
	}
	for k := range e.Add {
		tr, err := e.Add[k].ToTransaction(len(sys.Platforms))
		if err != nil {
			return nil, fmt.Errorf("add: transaction %d: %w", k+1, err)
		}
		sys.Transactions = append(sys.Transactions, tr)
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("%w: edited system: %w", spec.ErrInvalid, err)
	}
	return sys, nil
}

// AnalyzeResponse is the 200 body of the analyze endpoints — the
// machine-readable verdict shape of `hsched bench -json`.
type AnalyzeResponse struct {
	Schedulable bool `json:"schedulable"`
	Converged   bool `json:"converged"`
	Iterations  int  `json:"iterations"`
	// ScenariosPruned is the exact sweep's branch-and-bound savings
	// for this analysis (0 for approximate or memo-answered traffic).
	ScenariosPruned int64 `json:"scenarios_pruned,omitempty"`
	// SubtreesPruned counts the whole cursor subtrees those skips were
	// taken in — the branch-and-bound jump count behind ScenariosPruned.
	SubtreesPruned int64 `json:"subtrees_pruned,omitempty"`
	// Delta is non-nil when the answering analysis ran incrementally.
	Delta     *DeltaStats `json:"delta,omitempty"`
	ElapsedMS float64     `json:"elapsed_ms"`
	// Transactions carries per-transaction (and, with options.bounds,
	// per-task) results.
	Transactions []TransactionVerdict `json:"transactions,omitempty"`
	// SessionStats snapshots the probe session's counters after this
	// probe (session-scoped analyzes only).
	SessionStats *service.SessionStats `json:"session_stats,omitempty"`
}

// DeltaStats is the JSON form of analysis.DeltaInfo.
type DeltaStats struct {
	CleanTasks      int `json:"clean_tasks"`
	DirtyTasks      int `json:"dirty_tasks"`
	ReplayedRounds  int `json:"replayed_rounds"`
	TaskRoundsSaved int `json:"task_rounds_saved"`
}

// TransactionVerdict is one transaction's outcome. Response is the
// end-to-end worst-case response time; null when unbounded (JSON has
// no +Inf), in which case Schedulable is false.
type TransactionVerdict struct {
	Name        string       `json:"name,omitempty"`
	Deadline    float64      `json:"deadline"`
	Response    *float64     `json:"response"`
	Schedulable bool         `json:"schedulable"`
	Tasks       []TaskBounds `json:"tasks,omitempty"`
}

// TaskBounds are one task's analysed bounds; unbounded values are
// null.
type TaskBounds struct {
	Name     string   `json:"name,omitempty"`
	Platform int      `json:"platform"`
	Offset   *float64 `json:"offset"`
	Jitter   *float64 `json:"jitter"`
	Best     *float64 `json:"best"`
	Worst    *float64 `json:"worst"`
}

// AssignResponse is the 200 body of /v1/assign: the analysis of the
// installed assignment plus the per-transaction priority vectors.
type AssignResponse struct {
	AnalyzeResponse
	Policy string `json:"policy"`
	// Priorities[i][j] is the installed priority of task j of
	// transaction i.
	Priorities [][]int `json:"priorities"`
}

// MinimizeResponse is the 200 body of /v1/minimize.
type MinimizeResponse struct {
	Alphas         []float64           `json:"alphas"`
	Platforms      []spec.PlatformSpec `json:"platforms"`
	TotalBandwidth float64             `json:"total_bandwidth"`
	ElapsedMS      float64             `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-200. A 504 (deadline hit
// mid-analysis) carries the partial work profile: the elapsed wall
// time and a snapshot of the service counters at abort.
type ErrorResponse struct {
	Error      string         `json:"error"`
	Status     int            `json:"status"`
	ElapsedMS  float64        `json:"elapsed_ms,omitempty"`
	DeadlineMS float64        `json:"deadline_ms,omitempty"`
	Stats      *service.Stats `json:"stats,omitempty"`
}

// StatsResponse is the body of GET /v1/stats: the full service
// counters plus the transport layer's own.
type StatsResponse struct {
	Service  service.Stats   `json:"service"`
	HitRate  float64         `json:"hit_rate"`
	Sessions SessionCounters `json:"sessions"`
	// Inflight is the number of analysis-running requests currently
	// executing; MaxInflight the 429-shedding bound (0 = unbounded).
	Inflight    int64 `json:"inflight"`
	MaxInflight int   `json:"max_inflight,omitempty"`
	// ParseHits counts /v1/analyze bodies served from the body-hash
	// decode cache (byte-identical repeats skip JSON decoding and
	// spec conversion).
	ParseHits int64 `json:"parse_hits"`
	// BinaryHits counts binary analyze bodies whose system was
	// recognised in the intern pool by the hash of its wire bytes —
	// requests served with zero decoding (the binary counterpart of
	// ParseHits).
	BinaryHits int64                    `json:"binary_hits"`
	UptimeMS   float64                  `json:"uptime_ms"`
	Endpoints  map[string]EndpointStats `json:"endpoints"`
}

// SessionCounters describes the session registry.
type SessionCounters struct {
	Open    int   `json:"open"`
	Created int64 `json:"created"`
	// Evicted counts sessions displaced by the registry's LRU cap
	// (explicitly deleted sessions are not evictions).
	Evicted int64 `json:"evicted"`
}

// EndpointStats are one route's request/latency counters.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	// Errors counts non-2xx responses, including shed requests.
	Errors int64 `json:"errors"`
	// Shed counts 429s from the max-inflight bound.
	Shed   int64   `json:"shed,omitempty"`
	MeanUS float64 `json:"mean_us"`
	MaxUS  float64 `json:"max_us"`
}

// fin maps a float to its JSON form: nil for non-finite values (JSON
// has no Inf/NaN; a null bound means "unbounded").
func fin(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// buildAnalyzeResponse renders an analysis result, terse by default,
// with per-task bounds when asked.
func buildAnalyzeResponse(res *analysis.Result, bounds bool, elapsedMS float64) *AnalyzeResponse {
	resp := &AnalyzeResponse{
		Schedulable:     res.Schedulable,
		Converged:       res.Converged,
		Iterations:      res.Iterations,
		ScenariosPruned: res.ScenariosPruned,
		SubtreesPruned:  res.SubtreesPruned,
		ElapsedMS:       elapsedMS,
	}
	if res.Delta != nil {
		resp.Delta = &DeltaStats{
			CleanTasks:      res.Delta.CleanTasks,
			DirtyTasks:      res.Delta.DirtyTasks,
			ReplayedRounds:  res.Delta.ReplayedRounds,
			TaskRoundsSaved: res.Delta.TaskRoundsSaved,
		}
	}
	for i := range res.Tasks {
		tr := &res.System.Transactions[i]
		endToEnd := res.Tasks[i][len(res.Tasks[i])-1].Worst
		tv := TransactionVerdict{
			Name:        tr.Name,
			Deadline:    tr.Deadline,
			Response:    fin(endToEnd),
			Schedulable: !math.IsInf(endToEnd, 1) && endToEnd <= tr.Deadline,
		}
		if bounds {
			for j, tb := range res.Tasks[i] {
				tv.Tasks = append(tv.Tasks, TaskBounds{
					Name:     res.System.TaskName(i, j),
					Platform: tr.Tasks[j].Platform + 1,
					Offset:   fin(tb.Offset),
					Jitter:   fin(tb.Jitter),
					Best:     fin(tb.Best),
					Worst:    fin(tb.Worst),
				})
			}
		}
		resp.Transactions = append(resp.Transactions, tv)
	}
	return resp
}
