//go:build race

package httpd

// raceEnabled gates the AllocsPerRun tests: the race detector makes
// sync.Pool drop items at random (by design, to surface lifetime
// bugs), so pooled paths allocate under -race and zero-alloc
// assertions are meaningless there.
const raceEnabled = true
