package httpd

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strings"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/spec"
)

// ContentTypeBinary is the media type of the canonical binary analyze
// codec. A request with this Content-Type carries a binaryReqHeader
// followed by the system's canonical wire bytes (model.System
// MarshalBinary); a request whose Accept contains it gets the binary
// response below instead of JSON. The point of the codec is not just
// smaller bodies: the system bytes hash directly to the service
// fingerprint, so a repeated system is recognised in the intern pool
// without any decoding at all.
const ContentTypeBinary = "application/x-hsched-bin"

// binaryVersion guards the transport framing (header + response
// layouts). It is deliberately separate from the model wire version:
// the system payload carries its own version word, so a model bump
// does not require a transport bump or vice versa.
const binaryVersion = 1

// Binary request layout — 48-byte options header, then the system:
//
//	u64  binaryVersion
//	u64  flags (bit 0 exact, 1 static, 2 tight_best_case,
//	            3 stop_at_deadline_miss, 4 bounds)
//	u64  workers
//	u64  max_iterations
//	u64  max_scenarios
//	f64  deadline_ms
//	...  model.System canonical wire bytes (to end of body)
//
// Binary response layout:
//
//	u64  binaryVersion
//	u64  flags (bit 0 schedulable, 1 converged)
//	u64  iterations
//	u64  scenarios_pruned
//	u64  subtrees_pruned
//	f64  elapsed_ms
//	u64  transaction count N
//	N ×  ( f64 deadline, f64 response (+Inf = unschedulable),
//	       u64 schedulable )
//
// The response is always terse — the bounds flag only affects JSON
// responses. Errors are always JSON (ErrorResponse), whatever the
// Accept header says.
const binaryReqHeaderSize = 6 * 8

const (
	binaryReqFlagExact = 1 << iota
	binaryReqFlagStatic
	binaryReqFlagTight
	binaryReqFlagStopAtMiss
	binaryReqFlagBounds
)

const (
	binaryRespFlagSchedulable = 1 << iota
	binaryRespFlagConverged
)

// isBinaryMedia reports whether a Content-Type or Accept header value
// selects the binary codec.
func isBinaryMedia(header string) bool {
	return strings.Contains(header, ContentTypeBinary)
}

// EncodeAnalyzeRequestBinary assembles a binary analyze request body:
// the options header followed by the system's canonical wire bytes.
// It is the client half of the codec (bench -codec binary, tests).
func EncodeAnalyzeRequestBinary(sys *model.System, o OptionsSpec) ([]byte, error) {
	var flags uint64
	for _, f := range []struct {
		on  bool
		bit uint64
	}{
		{o.Exact, binaryReqFlagExact},
		{o.Static, binaryReqFlagStatic},
		{o.TightBestCase, binaryReqFlagTight},
		{o.StopAtDeadlineMiss, binaryReqFlagStopAtMiss},
		{o.Bounds, binaryReqFlagBounds},
	} {
		if f.on {
			flags |= f.bit
		}
	}
	buf := make([]byte, 0, binaryReqHeaderSize)
	buf = binary.LittleEndian.AppendUint64(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint64(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(o.Workers))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(o.MaxIterations))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(o.MaxScenarios))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.DeadlineMS))
	return sys.AppendBinary(buf)
}

// decodeBinaryAnalyzeRequest splits a binary request body into its
// options block and the raw system wire bytes. The system bytes are
// not decoded — hashing them is the caller's fast path. Errors wrap
// spec.ErrInvalid (the request is at fault).
func decodeBinaryAnalyzeRequest(body []byte) (OptionsSpec, []byte, error) {
	if len(body) < binaryReqHeaderSize {
		return OptionsSpec{}, nil, fmt.Errorf("%w: binary request: %d bytes, need a %d-byte header",
			spec.ErrInvalid, len(body), binaryReqHeaderSize)
	}
	if v := binary.LittleEndian.Uint64(body); v != binaryVersion {
		return OptionsSpec{}, nil, fmt.Errorf("%w: binary request version %d, this build reads %d",
			spec.ErrInvalid, v, binaryVersion)
	}
	flags := binary.LittleEndian.Uint64(body[8:])
	o := OptionsSpec{
		Exact:              flags&binaryReqFlagExact != 0,
		Static:             flags&binaryReqFlagStatic != 0,
		TightBestCase:      flags&binaryReqFlagTight != 0,
		StopAtDeadlineMiss: flags&binaryReqFlagStopAtMiss != 0,
		Bounds:             flags&binaryReqFlagBounds != 0,
		Workers:            int(int64(binary.LittleEndian.Uint64(body[16:]))),
		MaxIterations:      int(int64(binary.LittleEndian.Uint64(body[24:]))),
		MaxScenarios:       int(int64(binary.LittleEndian.Uint64(body[32:]))),
		DeadlineMS:         math.Float64frombits(binary.LittleEndian.Uint64(body[40:])),
	}
	return o, body[binaryReqHeaderSize:], nil
}

// resolveBinarySystem turns a binary request's system wire bytes into
// the canonical resident *model.System and its fingerprint. The
// fingerprint is the SHA-256 of the wire bytes themselves (the model
// encoding is canonical, so the hash of the bytes IS the decoded
// system's Fingerprint) — an intern-pool hit therefore answers with
// zero decoding and zero validation, both already paid by the first
// request that installed the resident. A miss costs one binary
// unmarshal plus validation, then installs the result. hit reports
// whether the zero-decode path answered.
func (s *Server) resolveBinarySystem(sysBytes []byte) (sys *model.System, fp model.Fingerprint, hit bool, err error) {
	fp = model.Fingerprint(sha256.Sum256(sysBytes))
	if resident, ok := s.svc.Interned(fp); ok {
		s.binHits.Add(1)
		return resident, fp, true, nil
	}
	var dec model.System
	if err := dec.UnmarshalBinary(sysBytes); err != nil {
		return nil, fp, false, fmt.Errorf("%w: binary system: %w", spec.ErrInvalid, err)
	}
	if err := dec.Validate(); err != nil {
		return nil, fp, false, fmt.Errorf("%w: binary system: %w", spec.ErrInvalid, err)
	}
	return s.svc.InternFingerprinted(fp, &dec), fp, false, nil
}

// contentTypeBinaryValue is the preallocated header value slice:
// Header().Set allocates a fresh []string per call, which would be the
// last allocation on the binary hit path.
var contentTypeBinaryValue = []string{ContentTypeBinary}

// writeBinaryAnalyzeResponse renders the terse binary verdict. The
// encode buffer is pooled (net/http copies the bytes during Write, so
// the buffer is reusable as soon as Write returns) and the hit path
// allocates nothing.
func writeBinaryAnalyzeResponse(w http.ResponseWriter, res *analysis.Result, elapsedMS float64) {
	var flags uint64
	if res.Schedulable {
		flags |= binaryRespFlagSchedulable
	}
	if res.Converged {
		flags |= binaryRespFlagConverged
	}
	pb := bufPool.Get().(*poolBuf)
	buf := pb.b[:0]
	buf = binary.LittleEndian.AppendUint64(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint64(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(res.Iterations))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(res.ScenariosPruned))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(res.SubtreesPruned))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(elapsedMS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(res.Tasks)))
	for i := range res.Tasks {
		tr := &res.System.Transactions[i]
		endToEnd := res.Tasks[i][len(res.Tasks[i])-1].Worst
		sched := uint64(0)
		if !math.IsInf(endToEnd, 1) && endToEnd <= tr.Deadline {
			sched = 1
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tr.Deadline))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(endToEnd))
		buf = binary.LittleEndian.AppendUint64(buf, sched)
	}
	w.Header()["Content-Type"] = contentTypeBinaryValue
	w.WriteHeader(http.StatusOK)
	w.Write(buf) //nolint:errcheck // client gone; nothing to do
	pb.b = buf
	pb.release()
}

// DecodeAnalyzeResponseBinary parses a binary analyze response into
// the JSON response shape (Response nil when unbounded, like the JSON
// codec). It is the client half of the response codec.
func DecodeAnalyzeResponseBinary(body []byte) (*AnalyzeResponse, error) {
	const head = 7 * 8
	if len(body) < head {
		return nil, fmt.Errorf("httpd: binary response: %d bytes, need %d", len(body), head)
	}
	if v := binary.LittleEndian.Uint64(body); v != binaryVersion {
		return nil, fmt.Errorf("httpd: binary response version %d, this build reads %d", v, binaryVersion)
	}
	flags := binary.LittleEndian.Uint64(body[8:])
	resp := &AnalyzeResponse{
		Schedulable:     flags&binaryRespFlagSchedulable != 0,
		Converged:       flags&binaryRespFlagConverged != 0,
		Iterations:      int(int64(binary.LittleEndian.Uint64(body[16:]))),
		ScenariosPruned: int64(binary.LittleEndian.Uint64(body[24:])),
		SubtreesPruned:  int64(binary.LittleEndian.Uint64(body[32:])),
		ElapsedMS:       math.Float64frombits(binary.LittleEndian.Uint64(body[40:])),
	}
	n := binary.LittleEndian.Uint64(body[48:])
	if rest := uint64(len(body) - head); n > rest/24 {
		return nil, fmt.Errorf("httpd: binary response: %d transactions exceed %d remaining bytes", n, rest)
	}
	if uint64(len(body)-head) != n*24 {
		return nil, fmt.Errorf("httpd: binary response: %d trailing bytes", uint64(len(body)-head)-n*24)
	}
	for i := uint64(0); i < n; i++ {
		off := head + int(i)*24
		response := math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:]))
		resp.Transactions = append(resp.Transactions, TransactionVerdict{
			Deadline:    math.Float64frombits(binary.LittleEndian.Uint64(body[off:])),
			Response:    fin(response),
			Schedulable: binary.LittleEndian.Uint64(body[off+16:]) == 1,
		})
	}
	return resp, nil
}
