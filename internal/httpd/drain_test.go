package httpd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is an io.Writer safe to read after Serve returns.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestGracefulDrain exercises the SIGTERM path end to end (the CLI
// maps the signal to a context cancel): with a slow analysis in
// flight, cancelling the serve context must stop the listener — new
// connections are refused — while the in-flight request runs to
// completion and gets its 200; Serve then returns nil and flushes a
// final stats line.
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{DrainTimeout: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	logw := &lockedBuffer{}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, logw) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	// Launch the slow in-flight request.
	slow := slowSystem(t)
	body, err := json.Marshal(&AnalyzeRequest{System: slow})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		inflight <- result{status: resp.StatusCode, body: data}
	}()
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 5000 {
			t.Fatal("slow request never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM (as the CLI delivers it): stop accepting.
	cancel()

	// New connections are refused once the listener closes. The close
	// races with the cancel, so poll.
	refused := false
	for i := 0; i < 5000 && !refused; i++ {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		conn.Close()
		time.Sleep(time.Millisecond)
	}
	if !refused {
		t.Error("listener still accepting connections after cancel")
	}

	// The in-flight request still completes normally.
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d: %s", r.status, r.body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(r.body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Converged {
		t.Error("in-flight analysis did not converge")
	}

	// Serve drains clean and flushes the final stats line.
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if out := logw.String(); !strings.Contains(out, "final stats") || !strings.Contains(out, `"queries":1`) {
		t.Errorf("final stats line: %q", out)
	}
}

// TestDrainRespectsRequestDeadline: an in-flight request with its own
// deadline does not stall the drain — it 504s at its deadline and the
// server exits.
func TestDrainRespectsRequestDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{DrainTimeout: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, nil) }()

	slow := slowSystem(t)
	body, err := json.Marshal(&AnalyzeRequest{System: slow, Options: OptionsSpec{DeadlineMS: 150}})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		inflight <- result{status: resp.StatusCode, body: data}
	}()
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 5000 {
			t.Fatal("request never entered flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request: %v", r.err)
	}
	if r.status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", r.status, r.body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(r.body, &er); err != nil {
		t.Fatal(err)
	}
	if er.DeadlineMS != 150 || er.Stats == nil {
		t.Errorf("504 during drain: %+v", er)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return")
	}
}

// TestServeListenerError: a listener failing outright surfaces as an
// error, not a hang.
func TestServeListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{})
	served := make(chan error, 1)
	go func() { served <- s.Serve(context.Background(), ln, nil) }()
	// Closing the listener out from under Serve is the failure mode.
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-served:
		if err == nil || errors.Is(err, context.Canceled) {
			t.Fatalf("Serve: %v, want listener error", err)
		}
		if !strings.Contains(err.Error(), "closed") {
			t.Logf("listener error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}
