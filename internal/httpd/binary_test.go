package httpd

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/service"
)

// doBinary posts a binary analyze body (with binary Accept when
// acceptBinary) and returns the recorder.
func doBinary(t *testing.T, s *Server, path string, body []byte, acceptBinary bool) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.Header.Set("Content-Type", ContentTypeBinary)
	if acceptBinary {
		req.Header.Set("Accept", ContentTypeBinary)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// TestAnalyzeBinaryRoundTrip asserts a binary request with a binary
// Accept returns the same verdict as the JSON codec for the paper
// example, through the full encode → handler → decode loop.
func TestAnalyzeBinaryRoundTrip(t *testing.T) {
	s := New(Options{})

	var jsonResp AnalyzeResponse
	w := do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: paperFile()}, &jsonResp)
	if w.Code != http.StatusOK {
		t.Fatalf("json status %d: %s", w.Code, w.Body.String())
	}

	body, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		t.Fatal(err)
	}
	bw := doBinary(t, s, "/v1/analyze", body, true)
	if bw.Code != http.StatusOK {
		t.Fatalf("binary status %d: %s", bw.Code, bw.Body.String())
	}
	if ct := bw.Header().Get("Content-Type"); ct != ContentTypeBinary {
		t.Fatalf("binary response Content-Type = %q", ct)
	}
	resp, err := DecodeAnalyzeResponseBinary(bw.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Schedulable != jsonResp.Schedulable || resp.Converged != jsonResp.Converged ||
		resp.Iterations != jsonResp.Iterations {
		t.Fatalf("binary verdict %+v != json verdict %+v", resp, jsonResp)
	}
	if len(resp.Transactions) != len(jsonResp.Transactions) {
		t.Fatalf("%d binary transactions, want %d", len(resp.Transactions), len(jsonResp.Transactions))
	}
	for i, tv := range resp.Transactions {
		jv := jsonResp.Transactions[i]
		if tv.Deadline != jv.Deadline || tv.Schedulable != jv.Schedulable ||
			(tv.Response == nil) != (jv.Response == nil) ||
			(tv.Response != nil && *tv.Response != *jv.Response) {
			t.Fatalf("transaction %d: binary %+v != json %+v", i, tv, jv)
		}
	}

	// Binary request + default Accept still answers in JSON.
	jw := doBinary(t, s, "/v1/analyze", body, false)
	if jw.Code != http.StatusOK || jw.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("binary request without binary Accept: %d %q", jw.Code, jw.Header().Get("Content-Type"))
	}
}

// TestAnalyzeBinaryZeroDecode asserts the intern fast path end to end:
// repeated binary posts of one system are answered from the intern
// pool (binary_hits), the pool holds exactly one resident, and the
// counters flow service.Stats → /v1/stats.
func TestAnalyzeBinaryZeroDecode(t *testing.T) {
	s := New(Options{})
	body, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		t.Fatal(err)
	}
	const posts = 32
	for i := 0; i < posts; i++ {
		if w := doBinary(t, s, "/v1/analyze", body, true); w.Code != http.StatusOK {
			t.Fatalf("post %d: %d: %s", i, w.Code, w.Body.String())
		}
	}
	var st StatsResponse
	if w := do(t, s, "GET", "/v1/stats", nil, &st); w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	if st.BinaryHits != posts-1 {
		t.Fatalf("binary_hits = %d after %d duplicate posts, want %d", st.BinaryHits, posts, posts-1)
	}
	if st.Service.Resident != 1 {
		t.Fatalf("intern_resident = %d, want 1", st.Service.Resident)
	}
	if st.Service.InternHits != posts-1 || st.Service.InternMisses != 1 {
		t.Fatalf("intern hits/misses = %d/%d, want %d/1", st.Service.InternHits, st.Service.InternMisses, posts-1)
	}
	if st.Service.Queries != posts || st.Service.Hits != posts-1 {
		t.Fatalf("service queries/hits = %d/%d, want %d/%d", st.Service.Queries, st.Service.Hits, posts, posts-1)
	}
}

// TestAnalyzeBinaryInternsAcrossCodecs asserts a JSON post and a
// binary post of the same system share one resident: the JSON decode
// interns, the binary request finds it by wire hash with zero decode.
func TestAnalyzeBinaryInternsAcrossCodecs(t *testing.T) {
	s := New(Options{})
	if w := do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: paperFile()}, nil); w.Code != http.StatusOK {
		t.Fatalf("json post: %d", w.Code)
	}
	body, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if w := doBinary(t, s, "/v1/analyze", body, true); w.Code != http.StatusOK {
		t.Fatalf("binary post: %d", w.Code)
	}
	var st StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.Service.Resident != 1 || st.BinaryHits != 1 {
		t.Fatalf("resident = %d, binary_hits = %d; want 1, 1 (codecs did not share the resident)",
			st.Service.Resident, st.BinaryHits)
	}
	// And the verdict memo was shared too: the binary post was a hit.
	if st.Service.Hits != 1 {
		t.Fatalf("service hits = %d, want 1", st.Service.Hits)
	}
}

// TestAnalyzeBinaryOptions asserts the header flags and knobs arrive:
// a static binary request takes the static path, and a deadline of a
// few nanoseconds 504s.
func TestAnalyzeBinaryOptions(t *testing.T) {
	s := New(Options{})
	body, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{Static: true})
	if err != nil {
		t.Fatal(err)
	}
	if w := doBinary(t, s, "/v1/analyze", body, true); w.Code != http.StatusOK {
		t.Fatalf("static binary: %d: %s", w.Code, w.Body.String())
	}
	var st StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.Service.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Service.Misses)
	}

	slow := slowSystem(t)
	sys, err := slow.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	body, err = EncodeAnalyzeRequestBinary(sys, OptionsSpec{DeadlineMS: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if w := doBinary(t, s, "/v1/analyze", body, true); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("nanosecond deadline: %d, want 504", w.Code)
	}
}

// TestAnalyzeBinaryMalformed asserts hostile binary bodies are 400s —
// errors stay JSON whatever the Accept header says.
func TestAnalyzeBinaryMalformed(t *testing.T) {
	s := New(Options{})
	good, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		t.Fatal(err)
	}
	badVersion := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(badVersion, 9)
	badSystem := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(badSystem[binaryReqHeaderSize:], 9) // system version word
	invalid := func() []byte {
		sys := experiments.PaperSystem()
		sys.Transactions[0].Period = -1 // decodes fine, fails Validate
		b, _ := EncodeAnalyzeRequestBinary(sys, OptionsSpec{})
		return b
	}()
	for name, body := range map[string][]byte{
		"empty":          {},
		"short-header":   good[:binaryReqHeaderSize-1],
		"bad-version":    badVersion,
		"header-only":    good[:binaryReqHeaderSize],
		"truncated-sys":  good[:len(good)-8],
		"trailing-bytes": append(append([]byte(nil), good...), 0),
		"bad-sys-ver":    badSystem,
		"invalid-system": invalid,
	} {
		w := doBinary(t, s, "/v1/analyze", body, true)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: error Content-Type %q, want JSON", name, ct)
		}
	}
}

// TestSessionAnalyzeBinary asserts binary probes ride a session like
// JSON ones: the probe chain pins seeds, repeated bodies hit the
// intern pool, and session stats attribute the probes.
func TestSessionAnalyzeBinary(t *testing.T) {
	s := New(Options{})
	var sr SessionResponse
	if w := do(t, s, "POST", "/v1/session", &SessionRequest{}, &sr); w.Code != http.StatusOK {
		t.Fatalf("session create: %d", w.Code)
	}
	path := "/v1/session/" + sr.Token + "/analyze"

	sys := experiments.PaperSystem()
	body, err := EncodeAnalyzeRequestBinary(sys, OptionsSpec{})
	if err != nil {
		t.Fatal(err)
	}
	bw := doBinary(t, s, path, body, true)
	if bw.Code != http.StatusOK {
		t.Fatalf("binary probe: %d: %s", bw.Code, bw.Body.String())
	}
	if _, err := DecodeAnalyzeResponseBinary(bw.Body.Bytes()); err != nil {
		t.Fatal(err)
	}

	// An edited probe (JSON edit applies against the binary-accepted
	// base) proves the binary probe advanced the session base.
	var resp AnalyzeResponse
	w := do(t, s, "POST", path, &AnalyzeRequest{
		Edit: &EditSpec{Platforms: []PlatformEdit{{Index: 3, Alpha: 0.25, Delta: 2, Beta: 1}}},
	}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("edit after binary probe: %d: %s", w.Code, w.Body.String())
	}
	if resp.SessionStats == nil || resp.SessionStats.Probes != 2 {
		t.Fatalf("session stats after two probes: %+v", resp.SessionStats)
	}

	// Re-posting the first binary body is a zero-decode memo hit.
	if w := doBinary(t, s, path, body, true); w.Code != http.StatusOK {
		t.Fatalf("repeat binary probe: %d", w.Code)
	}
	var st StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.BinaryHits != 1 {
		t.Fatalf("binary_hits = %d, want 1", st.BinaryHits)
	}
}

// TestDecodeAnalyzeResponseBinaryHostile asserts the client-side
// response decoder errors on truncated or oversized input.
func TestDecodeAnalyzeResponseBinaryHostile(t *testing.T) {
	mk := func(words ...uint64) []byte {
		buf := make([]byte, 0, 8*len(words))
		for _, w := range words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		return buf
	}
	for name, body := range map[string][]byte{
		"empty":       {},
		"short":       mk(1, 0, 0),
		"bad-version": mk(2, 0, 0, 0, 0, 0, 0),
		"huge-count":  mk(1, 0, 0, 0, 0, 0, 1<<61),
		"trailing":    append(mk(1, 0, 0, 0, 0, 0, 0), 0),
	} {
		if _, err := DecodeAnalyzeResponseBinary(body); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// A legitimate unschedulable verdict carries +Inf and decodes to a
	// nil Response.
	ok := mk(1, 0, 1, 0, 0, math.Float64bits(0),
		1, math.Float64bits(40), math.Float64bits(math.Inf(1)), 0)
	resp, err := DecodeAnalyzeResponseBinary(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Transactions) != 1 || resp.Transactions[0].Response != nil || resp.Transactions[0].Schedulable {
		t.Fatalf("inf response decoded wrong: %+v", resp.Transactions)
	}
}

// TestAnalyzeHandlerAllocs locks the one-hash-per-request fix: the
// binary intern-hit path allocates less than the JSON parse-memo-hit
// path (which still pays the response JSON encoder), and neither path
// re-encodes the system to fingerprint it (asserted by an allocation
// ceiling well below one fingerprint encoding per request).
func TestAnalyzeHandlerAllocs(t *testing.T) {
	s := New(Options{Service: service.New(service.Options{})})
	h := s.Handler()
	jsonBody, err := json.Marshal(&AnalyzeRequest{System: paperFile()})
	if err != nil {
		t.Fatal(err)
	}
	binBody, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		t.Fatal(err)
	}
	post := func(body []byte, binary bool) {
		req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
		if binary {
			req.Header.Set("Content-Type", ContentTypeBinary)
			req.Header.Set("Accept", ContentTypeBinary)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	post(jsonBody, false) // warm parse memo + verdict memo
	post(binBody, true)   // warm intern pool

	jsonAllocs := testing.AllocsPerRun(200, func() { post(jsonBody, false) })
	binAllocs := testing.AllocsPerRun(200, func() { post(binBody, true) })
	if binAllocs >= jsonAllocs {
		t.Errorf("binary hit path allocates %.0f/op, JSON hit path %.0f/op — binary should be leaner", binAllocs, jsonAllocs)
	}
}
