package httpd

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/design"
	"hsched/internal/model"
	"hsched/internal/sched"
	"hsched/internal/service"
	"hsched/internal/spec"
)

// Options configures a Server.
type Options struct {
	// Service is the analysis service every endpoint routes through;
	// nil constructs a private one with default options.
	Service *service.Service
	// Analysis is the server-side default analysis configuration;
	// request options blocks override it field-by-field (see
	// OptionsSpec). Servers shared by concurrent clients should set
	// Workers: 1 so requests do not oversubscribe the host.
	Analysis analysis.Options
	// MaxInflight bounds the number of analysis-running requests
	// executing concurrently; excess requests are shed with a 429.
	// 0 means unbounded.
	MaxInflight int
	// MaxSessions caps the session registry; the least-recently-used
	// session is evicted (seed dropped) beyond it. 0 selects 1024.
	MaxSessions int
	// MaxBodyBytes caps request bodies. 0 selects 8 MiB.
	MaxBodyBytes int64
	// ParseMemo sizes the body-hash decode cache on /v1/analyze: a
	// byte-identical repeated body skips JSON decoding and spec
	// conversion (see parseMemo). 0 selects 512; negative disables.
	ParseMemo int
	// DrainTimeout bounds the graceful shutdown: after it expires
	// in-flight requests are cut off hard. 0 selects 30 s.
	DrainTimeout time.Duration
	// Pprof exposes the net/http/pprof handlers under /debug/pprof/ on
	// the server mux, so a production contention regression can be
	// diagnosed in place (`go tool pprof .../debug/pprof/mutex`). The
	// handlers only serve what the runtime collects — `hsched serve
	// -pprof` additionally enables mutex and block profiling at a low
	// sample rate.
	Pprof bool
}

func (o Options) maxSessions() int {
	if o.MaxSessions <= 0 {
		return 1024
	}
	return o.MaxSessions
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return o.MaxBodyBytes
}

func (o Options) parseMemo() int {
	if o.ParseMemo == 0 {
		return 512
	}
	return o.ParseMemo
}

func (o Options) drainTimeout() time.Duration {
	if o.DrainTimeout <= 0 {
		return 30 * time.Second
	}
	return o.DrainTimeout
}

// padded is a cache-line-padded atomic counter: 8 (Int64) + 56 = 64
// bytes, so adjacent counters never share a cache line and concurrent
// requests bumping different counters never ping-pong one between
// cores (the httpd mirror of service's padded stats counters).
type padded struct {
	atomic.Int64
	_ [56]byte
}

// endpointMetrics are one route's atomic request counters.
type endpointMetrics struct {
	requests padded
	errors   padded
	shed     padded
	totalUS  padded
	maxUS    padded
}

func (m *endpointMetrics) observe(status int, d time.Duration) {
	m.requests.Add(1)
	if status >= 300 {
		m.errors.Add(1)
	}
	us := d.Microseconds()
	m.totalUS.Add(us)
	for {
		cur := m.maxUS.Load()
		if us <= cur || m.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

func (m *endpointMetrics) snapshot() EndpointStats {
	n := m.requests.Load()
	st := EndpointStats{
		Requests: n,
		Errors:   m.errors.Load(),
		Shed:     m.shed.Load(),
		MaxUS:    float64(m.maxUS.Load()),
	}
	if n > 0 {
		st.MeanUS = float64(m.totalUS.Load()) / float64(n)
	}
	return st
}

// Server is the HTTP/JSON transport over a service.Service: the
// analysis endpoints of the paper's toolchain (analyze, assign,
// minimize) plus per-client probe sessions and a stats endpoint. See
// the package documentation for the route table.
type Server struct {
	svc      *service.Service
	def      analysis.Options
	sessions *sessions
	parse    *parseMemo
	mux      *http.ServeMux

	maxInflight int
	inflight    atomic.Int64
	maxBody     int64
	drain       time.Duration
	start       time.Time

	// binHits counts binary analyze bodies answered from the intern
	// pool — requests whose system was never decoded at all.
	binHits atomic.Int64

	metrics map[string]*endpointMetrics
}

// New constructs a Server. The zero Options value is usable.
func New(opt Options) *Server {
	svc := opt.Service
	if svc == nil {
		svc = service.New(service.Options{Analysis: opt.Analysis})
	}
	s := &Server{
		svc:         svc,
		def:         opt.Analysis,
		sessions:    newSessions(opt.maxSessions()),
		parse:       newParseMemo(opt.parseMemo()),
		mux:         http.NewServeMux(),
		maxInflight: opt.MaxInflight,
		maxBody:     opt.maxBodyBytes(),
		drain:       opt.drainTimeout(),
		start:       time.Now(),
		metrics:     make(map[string]*endpointMetrics),
	}
	s.route("POST /v1/analyze", "analyze", true, s.handleAnalyze)
	s.route("POST /v1/assign", "assign", true, s.handleAssign)
	s.route("POST /v1/minimize", "minimize", true, s.handleMinimize)
	s.route("POST /v1/session", "session.create", false, s.handleSessionCreate)
	s.route("POST /v1/session/{token}/analyze", "session.analyze", true, s.handleSessionAnalyze)
	s.route("GET /v1/session/{token}/stats", "session.stats", false, s.handleSessionStats)
	s.route("DELETE /v1/session/{token}", "session.delete", false, s.handleSessionDelete)
	s.route("GET /v1/stats", "stats", false, s.handleStats)
	s.route("GET /v1/healthz", "healthz", false, s.handleHealthz)
	if opt.Pprof {
		// Uninstrumented on purpose: profile downloads are operator
		// traffic and must not skew the endpoint metrics or the
		// in-flight shed accounting.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's routing handler, for embedding in
// tests or behind custom middleware.
func (s *Server) Handler() http.Handler { return s.mux }

// route installs a handler with per-endpoint metrics; analysis-running
// endpoints (sheds true) additionally count into the in-flight
// semaphore and are shed with a 429 beyond MaxInflight.
func (s *Server) route(pattern, name string, sheds bool, h http.HandlerFunc) {
	m := &endpointMetrics{}
	s.metrics[name] = m
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if sheds {
			n := s.inflight.Add(1)
			defer s.inflight.Add(-1)
			if s.maxInflight > 0 && n > int64(s.maxInflight) {
				m.shed.Add(1)
				s.writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("httpd: %d analyses in flight (limit %d)", n-1, s.maxInflight), start, 0)
				m.observe(http.StatusTooManyRequests, time.Since(start))
				return
			}
		}
		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, http.StatusOK
		h(sw, r)
		m.observe(sw.status, time.Since(start))
		sw.ResponseWriter = nil // don't pin the connection's writer
		swPool.Put(sw)
	})
}

// statusWriter captures the response status for the metrics. Instances
// are pooled (one Get/Put per request, never retained past the
// handler) so the wrapper costs the hit path no allocation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError renders the uniform error body. 504s additionally carry
// the partial-work profile: elapsed wall time, the missed deadline and
// a snapshot of the service counters at abort.
func (s *Server) writeError(w http.ResponseWriter, status int, err error, start time.Time, deadlineMS float64) {
	resp := &ErrorResponse{Error: err.Error(), Status: status}
	if status == http.StatusGatewayTimeout {
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		resp.DeadlineMS = deadlineMS
		st := s.svc.Stats()
		resp.Stats = &st
	}
	writeJSON(w, status, resp)
}

// errStatus maps an analysis error to its HTTP status: the caller's
// fault (400) for malformed or inconsistent specs, a missed deadline
// (504) for context expiry, otherwise an analysable-but-failed request
// (422: scenario blow-up, non-convergence, infeasible design).
func errStatus(err error) int {
	switch {
	case errors.Is(err, spec.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// poolBuf is a pooled byte buffer shared by the request-body read path
// and the binary response encoder. The bytes handed out alias pb.b, so
// release only after every use of them; release(nil) is a no-op (the
// degraded read paths return unpooled buffers).
type poolBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return new(poolBuf) }}

func (pb *poolBuf) release() {
	if pb != nil {
		bufPool.Put(pb)
	}
}

// rawBody reads the request body, enforcing the body cap. The declared
// Content-Length sizes a pooled buffer so the common well-behaved
// request is zero allocations and one read, instead of io.ReadAll's
// grow-and-copy ladder; the returned poolBuf owns the body bytes and
// must be released (nil on the degraded paths) once they are done
// with. Read errors wrap spec.ErrInvalid (the request is at fault).
func (s *Server) rawBody(r *http.Request) ([]byte, *poolBuf, error) {
	if n := r.ContentLength; n > 0 && n <= s.maxBody {
		// Exact-size read: no growth, no limiter wrapper (the length
		// is already under the cap). net/http caps the body at
		// Content-Length, but a short or over-long body from a
		// non-conforming transport still degrades gracefully.
		pb := bufPool.Get().(*poolBuf)
		// One spare byte past n probes for body-longer-than-declared
		// without a separate buffer (a [1]byte would escape through the
		// io.Reader call — the last allocation on this path).
		if cap(pb.b) < int(n)+1 {
			pb.b = make([]byte, n+1)
		}
		body := pb.b[:n]
		switch m, err := io.ReadFull(r.Body, body); err {
		case nil:
			if k, _ := r.Body.Read(pb.b[n : n+1]); k > 0 {
				rest, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.maxBody-n))
				if err != nil {
					pb.release()
					return nil, nil, fmt.Errorf("%w: reading body: %w", spec.ErrInvalid, err)
				}
				long := append(append([]byte{}, pb.b[:n+1]...), rest...)
				pb.release()
				return long, nil, nil
			}
			return body, pb, nil
		case io.EOF, io.ErrUnexpectedEOF:
			return body[:m], pb, nil
		default:
			pb.release()
			return nil, nil, fmt.Errorf("%w: reading body: %w", spec.ErrInvalid, err)
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.maxBody))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: reading body: %w", spec.ErrInvalid, err)
	}
	return body, nil, nil
}

// readBody decodes the request body into v, enforcing the body cap.
// The pooled read buffer is released here — json.Unmarshal copies
// everything it keeps. Decode errors wrap spec.ErrInvalid (the request
// is at fault).
func (s *Server) readBody(r *http.Request, v any) error {
	body, pb, err := s.rawBody(r)
	defer pb.release()
	if err != nil || len(body) == 0 {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: decoding request: %w", spec.ErrInvalid, err)
	}
	return nil
}

// requestCtx derives the per-request analysis context: the options
// block's deadline_ms wins over the X-Deadline-Ms header; neither
// leaves the request's own context untouched. The returned deadline is
// 0 when none applies.
func requestCtx(r *http.Request, o OptionsSpec) (context.Context, context.CancelFunc, float64, error) {
	ms := o.DeadlineMS
	if ms == 0 {
		if h := r.Header.Get("X-Deadline-Ms"); h != "" {
			v, err := strconv.ParseFloat(h, 64)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("%w: X-Deadline-Ms: %w", spec.ErrInvalid, err)
			}
			ms = v
		}
	}
	if ms <= 0 {
		// No deadline: the request's own context already cancels on
		// client disconnect, so wrapping it would only add allocation.
		return r.Context(), func() {}, 0, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms*float64(time.Millisecond)))
	return ctx, cancel, ms, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, pb, err := s.rawBody(r)
	// Everything decoded below is copied out of body (intern/parse
	// memo entries hold decoded systems, never raw bytes), so the
	// buffer can be released when the handler returns.
	defer pb.release()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	var (
		sys  *model.System
		opts OptionsSpec
		fp   model.Fingerprint
	)
	if isBinaryMedia(r.Header.Get("Content-Type")) {
		// Binary codec: the body is an options header plus the system's
		// canonical wire bytes. The SHA-256 of those bytes is the
		// system's fingerprint, so one hash both keys the service memo
		// and looks the system up in the intern pool — a repeated
		// system is served with zero decoding.
		var sysBytes []byte
		opts, sysBytes, err = decodeBinaryAnalyzeRequest(body)
		if err == nil {
			sys, fp, _, err = s.resolveBinarySystem(sysBytes)
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err, start, 0)
			return
		}
	} else {
		// JSON path: the decode path (JSON into the request struct,
		// spec conversion, validation) costs far more than a memo-hit
		// analysis does, so a byte-identical repeated body
		// short-circuits through the parse memo on a hash of the raw
		// bytes — which, with the fingerprint cached at parse time, is
		// the request's only hash.
		key := bodyKey(body)
		if cached, ok := s.parse.get(key); len(body) > 0 && ok {
			sys, fp, opts = cached.sys, cached.fp, cached.opt
		} else {
			var req AnalyzeRequest
			if len(body) > 0 {
				if err := json.Unmarshal(body, &req); err != nil {
					s.writeError(w, http.StatusBadRequest,
						fmt.Errorf("%w: decoding request: %w", spec.ErrInvalid, err), start, 0)
					return
				}
			}
			if req.System == nil && len(body) > 0 {
				// curl friendliness: accept a bare spec document too.
				var f spec.File
				if json.Unmarshal(body, &f) == nil && len(f.Transactions) > 0 {
					req.System = &f
				}
			}
			if req.System == nil {
				s.writeError(w, http.StatusBadRequest,
					fmt.Errorf("%w: request has no system", spec.ErrInvalid), start, 0)
				return
			}
			if req.Edit != nil {
				s.writeError(w, http.StatusBadRequest,
					fmt.Errorf("%w: edit requires a session-scoped analyze", spec.ErrInvalid), start, 0)
				return
			}
			sys, err = req.System.ToSystem()
			if err != nil {
				s.writeError(w, http.StatusBadRequest, err, start, 0)
				return
			}
			opts = req.Options
			// Decoded systems are server-owned and never mutated, so
			// they intern: duplicate posts across connections (and
			// across the JSON and binary codecs) collapse onto one
			// resident copy.
			sys, fp = s.svc.Intern(sys)
			s.parse.put(key, sys, fp, opts)
		}
	}
	ctx, cancel, dms, err := requestCtx(r, opts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	defer cancel()
	res, err := s.svc.AnalyzeFingerprinted(ctx, fp, sys, opts.analysis(s.def), opts.Static)
	if err != nil {
		s.writeError(w, errStatus(err), err, start, dms)
		return
	}
	if isBinaryMedia(r.Header.Get("Accept")) {
		writeBinaryAnalyzeResponse(w, res, elapsedMS(start))
		return
	}
	writeJSON(w, http.StatusOK, buildAnalyzeResponse(res, opts.Bounds, elapsedMS(start)))
}

// bodyKey is the parse-memo key of a raw request body.
func bodyKey(body []byte) [sha256.Size]byte {
	if len(body) == 0 {
		return [sha256.Size]byte{}
	}
	return sha256.Sum256(body)
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AssignRequest
	if err := s.readBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	if req.System == nil {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: request has no system", spec.ErrInvalid), start, 0)
		return
	}
	policy := sched.Policy(req.Policy)
	if req.Policy == "" {
		policy = sched.PolicyAudsley
	}
	valid := false
	for _, p := range sched.Policies() {
		valid = valid || p == policy
	}
	if !valid {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: unknown policy %q", spec.ErrInvalid, req.Policy), start, 0)
		return
	}
	sys, err := req.System.ToSystem()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	ctx, cancel, dms, err := requestCtx(r, req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	defer cancel()
	res, _, err := sched.Assign(ctx, sys, policy, sched.AssignOptions{
		Analysis:   req.Options.analysis(s.def),
		Iterations: req.Iterations,
		Service:    s.svc,
	})
	if err != nil {
		s.writeError(w, errStatus(err), err, start, dms)
		return
	}
	resp := &AssignResponse{
		AnalyzeResponse: *buildAnalyzeResponse(res, req.Options.Bounds, elapsedMS(start)),
		Policy:          string(policy),
	}
	for i := range sys.Transactions {
		prio := make([]int, len(sys.Transactions[i].Tasks))
		for j := range prio {
			prio[j] = sys.Transactions[i].Tasks[j].Priority
		}
		resp.Priorities = append(resp.Priorities, prio)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMinimize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req MinimizeRequest
	if err := s.readBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	if req.System == nil {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: request has no system", spec.ErrInvalid), start, 0)
		return
	}
	sys, err := req.System.ToSystem()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	families, err := buildFamilies(req.Families, sys)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	ctx, cancel, dms, err := requestCtx(r, req.Options)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	defer cancel()
	res, err := design.MinimizeContext(ctx, sys, families, design.Options{
		Tolerance: req.Tolerance,
		Passes:    req.Passes,
		Analysis:  req.Options.analysis(s.def),
		Service:   s.svc,
	})
	if err != nil {
		s.writeError(w, errStatus(err), err, start, dms)
		return
	}
	resp := &MinimizeResponse{
		Alphas:         res.Alphas,
		TotalBandwidth: res.TotalBandwidth,
		ElapsedMS:      elapsedMS(start),
	}
	for m, p := range res.Platforms {
		resp.Platforms = append(resp.Platforms, spec.PlatformSpec{
			Name: fmt.Sprintf("Pi%d", m+1), Alpha: p.Alpha, Delta: p.Delta, Beta: p.Beta,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildFamilies maps the request's family specs to design families;
// an empty list defaults every platform to a polling server whose
// period is a quarter of the shortest transaction period.
func buildFamilies(fs []FamilySpec, sys *model.System) ([]design.Family, error) {
	if len(fs) == 0 {
		period := math.Inf(1)
		for i := range sys.Transactions {
			period = math.Min(period, sys.Transactions[i].Period)
		}
		fam := design.PollingFamily(period / 4)
		out := make([]design.Family, len(sys.Platforms))
		for m := range out {
			out[m] = fam
		}
		return out, nil
	}
	if len(fs) != len(sys.Platforms) {
		return nil, fmt.Errorf("%w: %d families for %d platforms", spec.ErrInvalid, len(fs), len(sys.Platforms))
	}
	out := make([]design.Family, len(fs))
	for m, f := range fs {
		switch f.Kind {
		case "polling":
			if f.Period <= 0 {
				return nil, fmt.Errorf("%w: family %d: polling needs period > 0", spec.ErrInvalid, m+1)
			}
			out[m] = design.PollingFamily(f.Period)
		case "tdma":
			if f.Frame <= 0 {
				return nil, fmt.Errorf("%w: family %d: tdma needs frame > 0", spec.ErrInvalid, m+1)
			}
			out[m] = design.TDMAFamily(f.Frame)
		case "pfair":
			if f.Quantum <= 0 {
				return nil, fmt.Errorf("%w: family %d: pfair needs quantum > 0", spec.ErrInvalid, m+1)
			}
			out[m] = design.PfairFamily(f.Quantum)
		default:
			return nil, fmt.Errorf("%w: family %d: unknown kind %q", spec.ErrInvalid, m+1, f.Kind)
		}
	}
	return out, nil
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SessionRequest
	if err := s.readBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	sess, err := s.sessions.create(s.svc, req.Options)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err, start, 0)
		return
	}
	writeJSON(w, http.StatusOK, &SessionResponse{Token: sess.token})
}

func (s *Server) handleSessionAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sess := s.sessions.lookup(r.PathValue("token"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, errors.New("httpd: unknown session token"), start, 0)
		return
	}
	body, pb, err := s.rawBody(r)
	defer pb.release()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	binaryReq := isBinaryMedia(r.Header.Get("Content-Type"))
	var req AnalyzeRequest
	if !binaryReq && len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: decoding request: %w", spec.ErrInvalid, err), start, 0)
			return
		}
	}

	// Serialise probes on the session: chained-edit determinism (and
	// the edit base) only exists for sequential probes.
	sess.mu.Lock()
	defer sess.mu.Unlock()

	var sys *model.System
	var fp model.Fingerprint
	ropt := req.Options
	if binaryReq {
		// Binary probes always carry a full system (edits are a JSON
		// shape); a repeated probe body is recognised in the intern
		// pool by the hash of its wire bytes, with zero decoding.
		var sysBytes []byte
		ropt, sysBytes, err = decodeBinaryAnalyzeRequest(body)
		if err == nil {
			sys, fp, _, err = s.resolveBinarySystem(sysBytes)
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err, start, 0)
			return
		}
	}
	if ropt == (OptionsSpec{}) {
		ropt = sess.opt
	}
	if ropt.Static {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: static analysis is not session-scoped (use /v1/analyze)", spec.ErrInvalid), start, 0)
		return
	}

	if !binaryReq {
		switch {
		case req.System != nil && req.Edit != nil:
			err = fmt.Errorf("%w: request has both system and edit", spec.ErrInvalid)
		case req.System != nil:
			sys, err = req.System.ToSystem()
		case req.Edit != nil:
			if sess.base == nil {
				err = fmt.Errorf("%w: edit against a session with no accepted system yet", spec.ErrInvalid)
			} else {
				sys, err = req.Edit.apply(sess.base)
			}
		default:
			err = fmt.Errorf("%w: request has neither system nor edit", spec.ErrInvalid)
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err, start, 0)
			return
		}
		// Both arms produce a server-owned system (ToSystem builds
		// fresh, apply clones before editing), so interning is safe
		// and collapses a probe chain's revisited states onto the
		// resident copies.
		sys, fp = s.svc.Intern(sys)
	}

	ctx, cancel, dms, err := requestCtx(r, ropt)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err, start, 0)
		return
	}
	defer cancel()
	res, err := sess.probe.AnalyzeFingerprinted(ctx, fp, sys, ropt.analysis(s.def))
	if err != nil {
		s.writeError(w, errStatus(err), err, start, dms)
		return
	}
	sess.base = sys

	if isBinaryMedia(r.Header.Get("Accept")) {
		writeBinaryAnalyzeResponse(w, res, elapsedMS(start))
		return
	}
	resp := buildAnalyzeResponse(res, ropt.Bounds, elapsedMS(start))
	ss := sess.probe.Stats()
	resp.SessionStats = &ss
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.lookup(r.PathValue("token"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, errors.New("httpd: unknown session token"), time.Now(), 0)
		return
	}
	writeJSON(w, http.StatusOK, sess.probe.Stats())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("token")) {
		s.writeError(w, http.StatusNotFound, errors.New("httpd: unknown session token"), time.Now(), 0)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) statsSnapshot() *StatsResponse {
	st := s.svc.Stats()
	resp := &StatsResponse{
		Service:     st,
		HitRate:     st.HitRate(),
		Sessions:    s.sessions.counters(),
		Inflight:    s.inflight.Load(),
		MaxInflight: s.maxInflight,
		UptimeMS:    elapsedMS(s.start),
		Endpoints:   make(map[string]EndpointStats, len(s.metrics)),
	}
	if s.parse != nil {
		resp.ParseHits = s.parse.hits.Load()
	}
	resp.BinaryHits = s.binHits.Load()
	for name, m := range s.metrics {
		if m.requests.Load() > 0 || m.shed.Load() > 0 {
			resp.Endpoints[name] = m.snapshot()
		}
	}
	return resp
}

func elapsedMS(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// Serve runs the server on ln until ctx is cancelled, then drains
// gracefully: the listener closes (new connections are refused),
// in-flight requests finish — or hit their own per-request deadlines —
// within DrainTimeout, stragglers past it are cut off hard, and one
// final stats line is written to logw. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener, logw io.Writer) error {
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener failed on its own; nothing to drain.
		return fmt.Errorf("httpd: %w", err)
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.drain)
	defer cancel()
	err := srv.Shutdown(dctx)
	if err != nil {
		srv.Close()
	}
	<-errc // Serve has returned ErrServerClosed
	if logw != nil {
		data, _ := json.Marshal(s.statsSnapshot())
		fmt.Fprintf(logw, "httpd: drained; final stats: %s\n", data)
	}
	if err != nil {
		return fmt.Errorf("httpd: drain: %w", err)
	}
	return nil
}
