package httpd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/service"
	"hsched/internal/spec"
)

// BenchmarkAnalyzeHandler measures the handler-only cost of a memo-hit
// analyze (no network): the per-request budget the transport adds on
// top of the in-process service ladder.
func BenchmarkAnalyzeHandler(b *testing.B) {
	s := New(Options{Service: service.New(service.Options{})})
	h := s.Handler()
	body, err := json.Marshal(&AnalyzeRequest{System: spec.FromSystem(experiments.PaperSystem())})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the memo.
	req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup: %d: %s", rec.Code, rec.Body.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}
