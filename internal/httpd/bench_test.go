package httpd

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/service"
	"hsched/internal/spec"
)

// BenchmarkAnalyzeHandler measures the handler-only cost of a memo-hit
// analyze (no network): the per-request budget the transport adds on
// top of the in-process service ladder.
func BenchmarkAnalyzeHandler(b *testing.B) {
	s := New(Options{Service: service.New(service.Options{})})
	body, err := json.Marshal(&AnalyzeRequest{System: spec.FromSystem(experiments.PaperSystem())})
	if err != nil {
		b.Fatal(err)
	}
	benchAnalyzePosts(b, s, body, false)
}

// BenchmarkAnalyzeHandlerBinary measures the binary intern-hit path:
// one SHA-256 over the wire bytes, an intern-pool lookup, a verdict
// memo hit, and the fixed-size binary response — the zero-decode
// counterpart of BenchmarkAnalyzeHandler's JSON parse-memo hit.
func BenchmarkAnalyzeHandlerBinary(b *testing.B) {
	s := New(Options{Service: service.New(service.Options{})})
	body, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		b.Fatal(err)
	}
	benchAnalyzePosts(b, s, body, true)
}

// benchWriter is a minimal reusable ResponseWriter: unlike
// httptest.ResponseRecorder it does not clone the header map on every
// WriteHeader, so iterations measure the handler, not the recorder.
type benchWriter struct {
	hdr  http.Header
	code int
	buf  bytes.Buffer
}

func (w *benchWriter) Header() http.Header         { return w.hdr }
func (w *benchWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }
func (w *benchWriter) WriteHeader(code int)        { w.code = code }

func (w *benchWriter) reset() {
	w.code = 0
	w.buf.Reset()
}

// benchAnalyzePosts drives repeated /v1/analyze posts of one body
// through the handler. The request object, body reader and response
// writer are all reused across iterations, so the measurement is the
// handler path, not harness construction — the per-request cost a
// pipelining client sees past the transport.
func benchAnalyzePosts(b *testing.B, s *Server, body []byte, bin bool) {
	b.Helper()
	h := s.Handler()
	rd := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/analyze", rd)
	if bin {
		req.Header.Set("Content-Type", ContentTypeBinary)
		req.Header.Set("Accept", ContentTypeBinary)
	}
	w := &benchWriter{hdr: make(http.Header)}
	post := func() {
		rd.Reset(body)
		w.reset()
		h.ServeHTTP(w, req)
	}
	post()
	if w.code != http.StatusOK {
		b.Fatalf("warmup: %d: %s", w.code, w.buf.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
		if w.code != http.StatusOK {
			b.Fatal(w.code)
		}
	}
}

// BenchmarkColdDecodeJSON measures the cold JSON intake path in
// isolation: unmarshal the request document, convert the spec to a
// model.System, and fingerprint it — the work a never-seen JSON body
// costs before any analysis.
func BenchmarkColdDecodeJSON(b *testing.B) {
	body, err := json.Marshal(&AnalyzeRequest{System: spec.FromSystem(experiments.PaperSystem())})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req AnalyzeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			b.Fatal(err)
		}
		sys, err := req.System.ToSystem()
		if err != nil {
			b.Fatal(err)
		}
		if fp := sys.Fingerprint(); fp == (model.Fingerprint{}) {
			b.Fatal("zero fingerprint")
		}
	}
}

// BenchmarkColdDecodeBinary measures the cold binary intake path: hash
// the wire bytes (which IS the fingerprint), unmarshal, validate — the
// work a never-seen binary body costs before any analysis.
func BenchmarkColdDecodeBinary(b *testing.B) {
	body, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sysBytes, err := decodeBinaryAnalyzeRequest(body)
		if err != nil {
			b.Fatal(err)
		}
		fp := model.Fingerprint(sha256.Sum256(sysBytes))
		if fp == (model.Fingerprint{}) {
			b.Fatal("zero fingerprint")
		}
		var sys model.System
		if err := sys.UnmarshalBinary(sysBytes); err != nil {
			b.Fatal(err)
		}
		if err := sys.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
