package httpd

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"

	"hsched/internal/model"
	"hsched/internal/service"
)

// session binds one HTTP client to a service.Session: the probe handle
// that pins each successful result as the seed of the next probe, plus
// the last accepted system that session-scoped edits apply against.
// The mutex serialises probes — chained-edit determinism (and the
// edit base itself) only makes sense for sequential probes, so
// concurrent requests on one token queue rather than race.
type session struct {
	token string
	probe *service.Session

	mu sync.Mutex
	// base is the last system a successful probe analysed; nil until
	// the first full-spec probe. Edits apply against it and advance it
	// only when their analysis succeeds.
	base *model.System
	// opt is the session's default options block, set at creation;
	// per-probe options override it field-by-field under the usual
	// fallback rules.
	opt OptionsSpec
}

// sessions is the server's token registry: an LRU capped at
// MaxSessions so abandoned tokens cannot pin seeds (each holds a full
// replay history) forever.
type sessions struct {
	mu      sync.Mutex
	cap     int
	lru     list.List // front = most recent; values are *session
	byToken map[string]*list.Element

	created int64
	evicted int64
}

func newSessions(cap int) *sessions {
	return &sessions{cap: cap, byToken: make(map[string]*list.Element)}
}

// create binds a new session and returns it. When the registry is
// full the least-recently-used session is evicted and its seed
// dropped.
func (r *sessions) create(svc *service.Service, opt OptionsSpec) (*session, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, fmt.Errorf("httpd: session token: %w", err)
	}
	s := &session{
		token: hex.EncodeToString(buf[:]),
		probe: svc.NewSession(),
		opt:   opt,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.lru.Len() >= r.cap {
		oldest := r.lru.Back()
		victim := oldest.Value.(*session)
		r.lru.Remove(oldest)
		delete(r.byToken, victim.token)
		victim.probe.Drop()
		r.evicted++
	}
	r.byToken[s.token] = r.lru.PushFront(s)
	r.created++
	return s, nil
}

// lookup returns the session for token, refreshing its LRU position,
// or nil.
func (r *sessions) lookup(token string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byToken[token]
	if !ok {
		return nil
	}
	r.lru.MoveToFront(el)
	return el.Value.(*session)
}

// remove deletes the session for token, dropping its pinned seed.
// It reports whether the token existed.
func (r *sessions) remove(token string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byToken[token]
	if !ok {
		return false
	}
	r.lru.Remove(el)
	delete(r.byToken, token)
	el.Value.(*session).probe.Drop()
	return true
}

// counters snapshots the registry for /v1/stats.
func (r *sessions) counters() SessionCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return SessionCounters{Open: r.lru.Len(), Created: r.created, Evicted: r.evicted}
}
