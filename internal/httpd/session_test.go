package httpd

import (
	"net/http"
	"testing"
)

func createSession(t *testing.T, s *Server, opt OptionsSpec) string {
	t.Helper()
	var resp SessionResponse
	w := do(t, s, "POST", "/v1/session", &SessionRequest{Options: opt}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("session create: status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Token) != 32 {
		t.Fatalf("token %q, want 32 hex chars", resp.Token)
	}
	return resp.Token
}

// The remote form of a probe chain: a full-spec probe executes and
// pins a seed, an identical probe is a memo hit, and an edit probe
// rides the pinned seed through the incremental path — observed
// entirely through the wire via the response's session_stats.
func TestSessionProbeChain(t *testing.T) {
	s := New(Options{})
	token := createSession(t, s, OptionsSpec{})
	path := "/v1/session/" + token + "/analyze"

	var resp AnalyzeResponse
	if w := do(t, s, "POST", path, &AnalyzeRequest{System: paperFile()}, &resp); w.Code != http.StatusOK {
		t.Fatalf("first probe: status %d: %s", w.Code, w.Body.String())
	}
	if !resp.Schedulable {
		t.Fatal("paper example not schedulable")
	}
	ss := resp.SessionStats
	if ss == nil || ss.Probes != 1 || ss.Executed != 1 || ss.MemoHits != 0 {
		t.Fatalf("first probe stats: %+v, want 1 probe executed", ss)
	}

	// Identical probe: answered from the memo, no analysis.
	if w := do(t, s, "POST", path, &AnalyzeRequest{System: paperFile()}, &resp); w.Code != http.StatusOK {
		t.Fatalf("second probe: status %d: %s", w.Code, w.Body.String())
	}
	if ss = resp.SessionStats; ss.MemoHits != 1 || ss.Executed != 1 {
		t.Fatalf("second probe stats: %+v, want 1 memo hit", ss)
	}

	// One-edit probe: rides the pinned seed (delta, not cold).
	repl := paperFile().Transactions[0]
	repl.Tasks[0].WCET = 1.1
	edit := &AnalyzeRequest{Edit: &EditSpec{Set: []TransactionSet{{Index: 1, Transaction: repl}}}}
	if w := do(t, s, "POST", path, edit, &resp); w.Code != http.StatusOK {
		t.Fatalf("edit probe: status %d: %s", w.Code, w.Body.String())
	}
	if resp.Delta == nil {
		t.Fatal("edit probe did not ride the incremental path")
	}
	if ss = resp.SessionStats; ss.DeltaHits != 1 || ss.Executed != 2 {
		t.Fatalf("edit probe stats: %+v, want 1 delta hit", ss)
	}
	if resp.Delta.CleanTasks == 0 {
		t.Errorf("delta profile replayed no tasks: %+v", resp.Delta)
	}

	// A chained second edit applies against the edited system, not
	// the original: removing the transaction the first edit touched
	// still leaves the other two.
	edit2 := &AnalyzeRequest{Edit: &EditSpec{Remove: []int{1}}}
	if w := do(t, s, "POST", path, edit2, &resp); w.Code != http.StatusOK {
		t.Fatalf("chained edit: status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Transactions) != 3 {
		t.Fatalf("%d transactions after remove, want 3", len(resp.Transactions))
	}

	// GET stats matches the last response's snapshot.
	var got map[string]int64
	if w := do(t, s, "GET", "/v1/session/"+token+"/stats", nil, &got); w.Code != http.StatusOK {
		t.Fatalf("session stats: status %d", w.Code)
	}
	if got["probes"] != 4 || got["memo_hits"] != 1 {
		t.Errorf("session stats over the wire: %v", got)
	}
}

func TestSessionErrors(t *testing.T) {
	s := New(Options{})
	token := createSession(t, s, OptionsSpec{})
	path := "/v1/session/" + token + "/analyze"

	// Unknown token.
	if w := do(t, s, "POST", "/v1/session/deadbeef/analyze", &AnalyzeRequest{System: paperFile()}, nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown token: status %d, want 404", w.Code)
	}
	// Edit before any accepted system.
	if w := do(t, s, "POST", path, &AnalyzeRequest{Edit: &EditSpec{Remove: []int{1}}}, nil); w.Code != http.StatusBadRequest {
		t.Errorf("edit without base: status %d, want 400", w.Code)
	}
	// Both system and edit.
	both := &AnalyzeRequest{System: paperFile(), Edit: &EditSpec{Remove: []int{1}}}
	if w := do(t, s, "POST", path, both, nil); w.Code != http.StatusBadRequest {
		t.Errorf("system+edit: status %d, want 400", w.Code)
	}
	// Neither.
	if w := do(t, s, "POST", path, &AnalyzeRequest{}, nil); w.Code != http.StatusBadRequest {
		t.Errorf("empty probe: status %d, want 400", w.Code)
	}
	// Static is not session-scoped.
	static := &AnalyzeRequest{System: paperFile(), Options: OptionsSpec{Static: true}}
	if w := do(t, s, "POST", path, static, nil); w.Code != http.StatusBadRequest {
		t.Errorf("static probe: status %d, want 400", w.Code)
	}

	// A failed edit must not advance the base: the next valid edit
	// still applies against the last accepted system.
	if w := do(t, s, "POST", path, &AnalyzeRequest{System: paperFile()}, nil); w.Code != http.StatusOK {
		t.Fatalf("seed probe failed")
	}
	if w := do(t, s, "POST", path, &AnalyzeRequest{Edit: &EditSpec{Remove: []int{9}}}, nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad edit: status %d, want 400", w.Code)
	}
	var resp AnalyzeResponse
	if w := do(t, s, "POST", path, &AnalyzeRequest{Edit: &EditSpec{Remove: []int{3}}}, &resp); w.Code != http.StatusOK {
		t.Fatalf("edit after failed edit: status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Transactions) != 3 {
		t.Errorf("%d transactions, want 3 (base advanced on a failed edit?)", len(resp.Transactions))
	}
}

func TestSessionDelete(t *testing.T) {
	s := New(Options{})
	token := createSession(t, s, OptionsSpec{})
	if w := do(t, s, "DELETE", "/v1/session/"+token, nil, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	if w := do(t, s, "DELETE", "/v1/session/"+token, nil, nil); w.Code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", w.Code)
	}
	if w := do(t, s, "GET", "/v1/session/"+token+"/stats", nil, nil); w.Code != http.StatusNotFound {
		t.Errorf("stats after delete: status %d, want 404", w.Code)
	}
}

func TestSessionLRUEviction(t *testing.T) {
	s := New(Options{MaxSessions: 2})
	t1 := createSession(t, s, OptionsSpec{})
	t2 := createSession(t, s, OptionsSpec{})
	// Touch t1 so t2 is the LRU victim.
	if w := do(t, s, "GET", "/v1/session/"+t1+"/stats", nil, nil); w.Code != http.StatusOK {
		t.Fatal("t1 stats")
	}
	t3 := createSession(t, s, OptionsSpec{})
	if w := do(t, s, "GET", "/v1/session/"+t2+"/stats", nil, nil); w.Code != http.StatusNotFound {
		t.Errorf("t2 should be evicted: status %d", w.Code)
	}
	for _, tok := range []string{t1, t3} {
		if w := do(t, s, "GET", "/v1/session/"+tok+"/stats", nil, nil); w.Code != http.StatusOK {
			t.Errorf("session %s gone: status %d", tok, w.Code)
		}
	}
	var st StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.Sessions.Open != 2 || st.Sessions.Created != 3 || st.Sessions.Evicted != 1 {
		t.Errorf("session counters: %+v", st.Sessions)
	}
}

// The session's creation-time options are the default for probes that
// omit their own block.
func TestSessionDefaultOptions(t *testing.T) {
	s := New(Options{})
	token := createSession(t, s, OptionsSpec{Bounds: true})
	var resp AnalyzeResponse
	w := do(t, s, "POST", "/v1/session/"+token+"/analyze", &AnalyzeRequest{System: paperFile()}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Transactions[0].Tasks) == 0 {
		t.Error("session default options (bounds) not applied")
	}
}
