// Package httpd is the HTTP/JSON transport over the analysis service:
// it exposes the toolchain's three verbs — holistic analysis, priority
// assignment, bandwidth minimisation — plus per-client probe sessions
// and an observability endpoint, all routed through one shared
// service.Service so remote traffic enjoys the same verdict memo,
// resident engine pool and incremental re-analysis as in-process
// callers.
//
// Routes:
//
//	POST   /v1/analyze                   holistic (or static/exact) analysis of a spec document
//	POST   /v1/assign                    priority assignment (rm, dm, hopa, audsley) + analysis
//	POST   /v1/minimize                  minimal-bandwidth platform design search
//	POST   /v1/session                   bind a probe session; returns a token
//	POST   /v1/session/{token}/analyze   session-scoped probe: full spec or an edit
//	                                     against the session's last accepted system
//	GET    /v1/session/{token}/stats     the session's probe counters
//	DELETE /v1/session/{token}           drop the session (and its pinned seed)
//	GET    /v1/stats                     service counters + per-endpoint transport stats
//	GET    /v1/healthz                   liveness
//	GET    /debug/pprof/...              runtime profiles (only with Options.Pprof;
//	                                     CLI: `hsched serve -pprof`)
//
// Request bodies reuse the internal/spec JSON system format, wrapped
// with an options block mirroring the CLI flags (exact, workers,
// deadline_ms, …). A body-hash parse memo in front of /v1/analyze
// mirrors the service's verdict memo one layer up: admission-control
// traffic re-asks about a small population of systems, and for a
// memo-hit query the JSON decode and spec conversion cost far more
// than the analysis, so a byte-identical repeated body skips both
// (ParseHits in /v1/stats). Analysis endpoints honour per-request
// deadlines —
// the options block's deadline_ms or the X-Deadline-Ms header — by
// wrapping the analysis in a context.WithTimeout: an expired deadline
// aborts the fixed-point iteration mid-flight and the client receives
// a 504 carrying the elapsed time and a service-stats snapshot. The
// service guarantees an aborted analysis leaves no trace in the
// verdict memo or the delta-seed pool.
//
// /v1/analyze and the session analyze endpoint negotiate a second,
// binary content type: a request with Content-Type
// application/x-hsched-bin carries a fixed 48-byte options header
// followed by the system's canonical wire bytes
// (model.System.MarshalBinary). The SHA-256 of those bytes IS the
// system's fingerprint, so a repeated binary body is answered
// entirely from the service's intern pool — no JSON, no decode, one
// hash (BinaryHits in /v1/stats) — and a cold one decodes severalfold
// faster than JSON. Accept: application/x-hsched-bin selects the
// fixed-size binary response; errors are always JSON. The bench
// client (`hsched bench -remote -codec binary`) speaks this format.
//
// Sessions are the remote form of service.Session: each token pins the
// previous successful result as the seed of the next probe, so a
// client chaining one-edit-apart probes (an admission controller, a
// remote priority search) rides the incremental path
// (Engine.AnalyzeFrom) deterministically instead of depending on
// delta-pool luck. Session-scoped probes accept either a full spec or
// a model.Diff-shaped edit (platform parameter changes, transaction
// set/remove/add) applied against the session's last accepted system.
// The registry is LRU-bounded; abandoned tokens eventually drop their
// pinned seeds.
//
// Error contract: malformed or inconsistent requests are 400s whose
// body names the offending field (spec.ErrInvalid wrapping), missed
// deadlines are 504s, analysable-but-failed requests (scenario
// blow-up, infeasible designs) are 422s, and load shedding beyond the
// configured in-flight bound is a 429. All error bodies share the
// ErrorResponse shape.
//
// Server.Serve drains gracefully on context cancellation (the CLI
// wires SIGTERM/SIGINT to it): the listener closes first, in-flight
// requests finish or hit their own deadlines within DrainTimeout, and
// a final stats line is flushed.
package httpd
