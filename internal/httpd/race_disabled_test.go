//go:build !race

package httpd

// raceEnabled gates the AllocsPerRun tests; see race_enabled_test.go.
const raceEnabled = false
