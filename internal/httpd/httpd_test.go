package httpd

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hsched/internal/experiments"
	"hsched/internal/gen"
	"hsched/internal/spec"
)

// paperFile returns the spec document of the paper's example system
// (Table 1 / Figure 5), the fixture of every happy-path test.
func paperFile() *spec.File {
	return spec.FromSystem(experiments.PaperSystem())
}

// slowSystem generates a system whose analysis runs for hundreds of
// milliseconds — long enough that a tens-of-milliseconds request
// deadline expires mid-iteration (the 504 path) and that a concurrent
// request reliably observes it in flight (the 429 path).
func slowSystem(t *testing.T) *spec.File {
	t.Helper()
	sys, err := gen.System(gen.Config{
		Seed: 11, Platforms: 4, Transactions: 50, ChainLen: 8,
		PeriodMin: 50, PeriodMax: 1000, Utilization: 0.65,
		AlphaMin: 0.5, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec.FromSystem(sys)
}

// do runs one request against the server's handler and decodes the
// JSON response into out (skipped when out is nil).
func do(t *testing.T, s *Server, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

func TestAnalyzePaperExample(t *testing.T) {
	s := New(Options{})
	var resp AnalyzeResponse
	w := do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: paperFile()}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if !resp.Schedulable || !resp.Converged {
		t.Fatalf("paper example: %+v, want schedulable and converged", resp)
	}
	if len(resp.Transactions) != 4 {
		t.Fatalf("%d transactions, want 4", len(resp.Transactions))
	}
	// Terse by default: no per-task bounds on the wire.
	if resp.Transactions[0].Tasks != nil {
		t.Error("per-task bounds present without options.bounds")
	}
	if r := resp.Transactions[0].Response; r == nil || *r != 31 {
		t.Errorf("Gamma1 response = %v, want 31 (the paper's tau1,4 bound)", r)
	}
}

func TestAnalyzeBareSpecBody(t *testing.T) {
	s := New(Options{})
	data, err := json.Marshal(paperFile())
	if err != nil {
		t.Fatal(err)
	}
	var resp AnalyzeResponse
	if w := do(t, s, "POST", "/v1/analyze", string(data), &resp); w.Code != http.StatusOK {
		t.Fatalf("bare spec body: status %d: %s", w.Code, w.Body.String())
	}
	if !resp.Schedulable {
		t.Error("bare spec body: not schedulable")
	}
}

func TestAnalyzeBounds(t *testing.T) {
	s := New(Options{})
	var resp AnalyzeResponse
	req := &AnalyzeRequest{System: paperFile(), Options: OptionsSpec{Bounds: true}}
	if w := do(t, s, "POST", "/v1/analyze", req, &resp); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	tasks := resp.Transactions[0].Tasks
	if len(tasks) != 4 {
		t.Fatalf("Gamma1 has %d task bounds, want 4", len(tasks))
	}
	last := tasks[len(tasks)-1]
	if last.Worst == nil || *last.Worst != 31 {
		t.Errorf("tau1,4 worst = %v, want 31", last.Worst)
	}
	if last.Platform != 3 {
		t.Errorf("tau1,4 platform = %d, want 3 (1-based, the integrator node)", last.Platform)
	}
}

// TestAnalyzeExactPruneCounters: an exact query's response reports
// the branch-and-bound work profile of its sweep — per-scenario skips
// and whole-subtree jumps — and /v1/stats accumulates the same
// counters service-side.
func TestAnalyzeExactPruneCounters(t *testing.T) {
	s := New(Options{})
	var resp AnalyzeResponse
	req := &AnalyzeRequest{System: paperFile(), Options: OptionsSpec{Exact: true}}
	if w := do(t, s, "POST", "/v1/analyze", req, &resp); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.ScenariosPruned <= 0 || resp.SubtreesPruned <= 0 {
		t.Fatalf("exact response reports scenarios=%d subtrees=%d pruned, want both > 0",
			resp.ScenariosPruned, resp.SubtreesPruned)
	}
	var st StatsResponse
	if w := do(t, s, "GET", "/v1/stats", nil, &st); w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	if st.Service.ScenariosPruned != resp.ScenariosPruned || st.Service.SubtreesPruned != resp.SubtreesPruned {
		t.Fatalf("stats report scenarios=%d subtrees=%d, response reported %d and %d",
			st.Service.ScenariosPruned, st.Service.SubtreesPruned, resp.ScenariosPruned, resp.SubtreesPruned)
	}
}

// One malformed body per endpoint: the 400 must name the offending
// field, not just fail (the spec error-context satellite, observed
// through the transport).
func TestMalformedBodies(t *testing.T) {
	s := New(Options{})
	bad := paperFile()
	bad.Transactions[1].Tasks[0].Platform = 99
	cases := []struct {
		name, method, path string
		body               any
		want               string
	}{
		{"analyze dangling platform", "POST", "/v1/analyze",
			&AnalyzeRequest{System: bad}, "transaction 2"},
		{"analyze undecodable", "POST", "/v1/analyze", `{"system": nope}`, "decoding request"},
		{"analyze empty", "POST", "/v1/analyze", nil, "no system"},
		{"assign unknown policy", "POST", "/v1/assign",
			&AssignRequest{System: paperFile(), Policy: "lottery"}, `policy "lottery"`},
		{"minimize bad family", "POST", "/v1/minimize",
			&MinimizeRequest{System: paperFile(), Families: []FamilySpec{{Kind: "psychic"}, {Kind: "psychic"}, {Kind: "psychic"}}}, `kind "psychic"`},
		{"session undecodable", "POST", "/v1/session", `]`, "decoding request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			w := do(t, s, tc.method, tc.path, tc.body, &er)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Errorf("error %q does not name %q", er.Error, tc.want)
			}
		})
	}
	// Platform 99 exists only in Gamma2's first task: the message must
	// localise it.
	var er ErrorResponse
	do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: bad}, &er)
	if !strings.Contains(er.Error, "platform 99") {
		t.Errorf("error %q does not name the dangling platform", er.Error)
	}
}

func TestAssignPaperExample(t *testing.T) {
	s := New(Options{})
	var resp AssignResponse
	req := &AssignRequest{System: paperFile(), Policy: "hopa"}
	if w := do(t, s, "POST", "/v1/assign", req, &resp); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.Policy != "hopa" {
		t.Errorf("policy %q", resp.Policy)
	}
	if !resp.Schedulable {
		t.Error("paper example not schedulable under hopa")
	}
	if len(resp.Priorities) != 4 || len(resp.Priorities[0]) != 4 {
		t.Fatalf("priorities shape %v", resp.Priorities)
	}
	// Default policy is audsley.
	var dresp AssignResponse
	if w := do(t, s, "POST", "/v1/assign", &AssignRequest{System: paperFile()}, &dresp); w.Code != http.StatusOK {
		t.Fatalf("default policy: status %d: %s", w.Code, w.Body.String())
	}
	if dresp.Policy != "audsley" {
		t.Errorf("default policy %q, want audsley", dresp.Policy)
	}
}

func TestMinimizePaperExample(t *testing.T) {
	s := New(Options{})
	var resp MinimizeResponse
	req := &MinimizeRequest{System: paperFile(), Tolerance: 0.01}
	if w := do(t, s, "POST", "/v1/minimize", req, &resp); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Alphas) != 3 || len(resp.Platforms) != 3 {
		t.Fatalf("result shape: %+v", resp)
	}
	if resp.TotalBandwidth <= 0 || resp.TotalBandwidth > 3 {
		t.Errorf("total bandwidth %v outside (0, 3]", resp.TotalBandwidth)
	}
}

func TestDeadline504(t *testing.T) {
	s := New(Options{})
	slow := slowSystem(t)

	// Deadline via the options block.
	var er ErrorResponse
	req := &AnalyzeRequest{System: slow, Options: OptionsSpec{DeadlineMS: 40}}
	if w := do(t, s, "POST", "/v1/analyze", req, &er); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if er.DeadlineMS != 40 || er.ElapsedMS < 40 {
		t.Errorf("504 profile: deadline %v, elapsed %v", er.DeadlineMS, er.ElapsedMS)
	}
	if er.Stats == nil || er.Stats.Queries != 1 || er.Stats.Misses != 1 {
		t.Errorf("504 stats snapshot: %+v", er.Stats)
	}

	// Deadline via the X-Deadline-Ms header.
	data, _ := json.Marshal(&AnalyzeRequest{System: slow})
	hreq := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(data))
	hreq.Header.Set("X-Deadline-Ms", "40")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, hreq)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("header deadline: status %d: %s", w.Code, w.Body.String())
	}

	// A malformed header is the client's fault.
	hreq = httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(data))
	hreq.Header.Set("X-Deadline-Ms", "soon")
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, hreq)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed header: status %d, want 400", w.Code)
	}

	// The aborted analyses left no trace: the same system analysed
	// without a deadline recomputes and succeeds.
	var resp AnalyzeResponse
	if w := do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: slow}, &resp); w.Code != http.StatusOK {
		t.Fatalf("follow-up: status %d: %s", w.Code, w.Body.String())
	}
	if !resp.Converged {
		t.Error("follow-up analysis did not converge")
	}
}

func TestMaxInflightSheds(t *testing.T) {
	s := New(Options{MaxInflight: 1})
	slow := slowSystem(t)

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: slow}, nil)
	}()
	// Wait until the slow analysis occupies the only slot.
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("slow request never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	var er ErrorResponse
	w := do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: paperFile()}, &er)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(er.Error, "limit 1") {
		t.Errorf("shed error %q does not state the limit", er.Error)
	}
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("slow request: status %d: %s", w.Code, w.Body.String())
	}

	// The shed is visible in the stats.
	var st StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.Endpoints["analyze"].Shed != 1 {
		t.Errorf("analyze endpoint stats: %+v, want 1 shed", st.Endpoints["analyze"])
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := New(Options{MaxInflight: 4})
	for i := 0; i < 3; i++ {
		if w := do(t, s, "POST", "/v1/analyze", &AnalyzeRequest{System: paperFile()}, nil); w.Code != http.StatusOK {
			t.Fatalf("analyze %d: status %d", i, w.Code)
		}
	}
	var st StatsResponse
	if w := do(t, s, "GET", "/v1/stats", nil, &st); w.Code != http.StatusOK {
		t.Fatalf("stats: status %d", w.Code)
	}
	if st.Service.Queries != 3 || st.Service.Hits != 2 {
		t.Errorf("service stats %+v, want 3 queries / 2 hits", st.Service)
	}
	if st.HitRate < 0.6 || st.HitRate > 0.7 {
		t.Errorf("hit rate %v, want 2/3", st.HitRate)
	}
	if st.MaxInflight != 4 {
		t.Errorf("max inflight %d", st.MaxInflight)
	}
	if st.ParseHits != 2 {
		t.Errorf("parse hits %d, want 2 (byte-identical repeats)", st.ParseHits)
	}
	ep, ok := st.Endpoints["analyze"]
	if !ok || ep.Requests != 3 || ep.Errors != 0 || ep.MeanUS <= 0 || ep.MaxUS < ep.MeanUS {
		t.Errorf("analyze endpoint stats: %+v (present %v)", ep, ok)
	}
	// The raw wire format uses the stable lowercase keys.
	w := do(t, s, "GET", "/v1/stats", nil, nil)
	for _, key := range []string{`"service"`, `"queries"`, `"hit_rate"`, `"uptime_ms"`, `"endpoints"`, `"parse_hits"`} {
		if !strings.Contains(w.Body.String(), key) {
			t.Errorf("stats body missing %s: %s", key, w.Body.String())
		}
	}
}

// TestParseMemo pins the body-hash decode cache's contract: distinct
// bodies (same system, different options) never share an entry, a
// capacity-1 memo survives eviction churn, and a disabled memo still
// serves every request.
func TestParseMemo(t *testing.T) {
	s := New(Options{ParseMemo: 1})
	terse := &AnalyzeRequest{System: paperFile()}
	bounds := &AnalyzeRequest{System: paperFile(), Options: OptionsSpec{Bounds: true}}

	var r1, r2 AnalyzeResponse
	if w := do(t, s, "POST", "/v1/analyze", terse, &r1); w.Code != http.StatusOK {
		t.Fatalf("terse: %d", w.Code)
	}
	// Evicts the terse entry (capacity 1), and must not inherit its
	// options: the bounds request carries per-task results.
	if w := do(t, s, "POST", "/v1/analyze", bounds, &r2); w.Code != http.StatusOK {
		t.Fatalf("bounds: %d", w.Code)
	}
	if len(r1.Transactions[0].Tasks) != 0 || len(r2.Transactions[0].Tasks) == 0 {
		t.Errorf("options leaked through the parse memo: terse tasks %d, bounds tasks %d",
			len(r1.Transactions[0].Tasks), len(r2.Transactions[0].Tasks))
	}
	// Back to the evicted body: still correct, re-parsed.
	if w := do(t, s, "POST", "/v1/analyze", terse, &r1); w.Code != http.StatusOK || !r1.Schedulable {
		t.Fatalf("terse after eviction: %d schedulable=%v", w.Code, r1.Schedulable)
	}
	var st StatsResponse
	do(t, s, "GET", "/v1/stats", nil, &st)
	if st.ParseHits != 0 {
		t.Errorf("parse hits %d, want 0 (every body evicted before its repeat)", st.ParseHits)
	}

	off := New(Options{ParseMemo: -1})
	for i := 0; i < 2; i++ {
		if w := do(t, off, "POST", "/v1/analyze", terse, &r1); w.Code != http.StatusOK {
			t.Fatalf("disabled memo, request %d: %d", i, w.Code)
		}
	}
	do(t, off, "GET", "/v1/stats", nil, &st)
	if st.ParseHits != 0 {
		t.Errorf("disabled memo recorded %d hits", st.ParseHits)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Options{})
	if w := do(t, s, "GET", "/v1/healthz", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
}

func TestEditSpecApply(t *testing.T) {
	base := experiments.PaperSystem()
	file := paperFile()

	// set + remove + add + platform edit in one pass.
	repl := file.Transactions[0]
	repl.Tasks[0].WCET = 1.5
	edit := &EditSpec{
		Platforms: []PlatformEdit{{Index: 1, Alpha: 0.9, Delta: 0.4, Beta: 0.3}},
		Set:       []TransactionSet{{Index: 1, Transaction: repl}},
		Remove:    []int{3},
		Add:       []spec.TransactionSpec{file.Transactions[2]},
	}
	sys, err := edit.apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Platforms[0].Alpha != 0.9 {
		t.Errorf("platform edit not applied: %+v", sys.Platforms[0])
	}
	if sys.Transactions[0].Tasks[0].WCET != 1.5 {
		t.Errorf("set not applied: %+v", sys.Transactions[0].Tasks[0])
	}
	if len(sys.Transactions) != 4 {
		t.Errorf("%d transactions after remove+add, want 4", len(sys.Transactions))
	}
	// The base must be untouched.
	if base.Platforms[0].Alpha == 0.9 || base.Transactions[0].Tasks[0].WCET == 1.5 {
		t.Error("apply mutated the base system")
	}

	for name, bad := range map[string]*EditSpec{
		"platform index": {Platforms: []PlatformEdit{{Index: 7, Alpha: 1}}},
		"set index":      {Set: []TransactionSet{{Index: 0}}},
		"remove index":   {Remove: []int{5}},
		"remove repeat":  {Remove: []int{2, 2}},
		"add dangling":   {Add: []spec.TransactionSpec{{Period: 10, Tasks: []spec.TaskSpec{{WCET: 1, Priority: 1, Platform: 9}}}}},
	} {
		if _, err := bad.apply(base); err == nil {
			t.Errorf("%s: apply accepted an invalid edit", name)
		}
	}
}

func TestFinHelper(t *testing.T) {
	for _, tc := range []struct {
		in  float64
		nil bool
	}{{31, false}, {0, false}, {math.Inf(1), true}} {
		got := fin(tc.in)
		if (got == nil) != tc.nil {
			t.Errorf("fin(%v) = %v", tc.in, got)
		}
		if got != nil && *got != tc.in {
			t.Errorf("fin(%v) = %v", tc.in, *got)
		}
	}
	// An unbounded response marshals as null, not as a marshal error.
	resp := TransactionVerdict{Deadline: 10, Response: fin(math.Inf(1))}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"response":null`) {
		t.Errorf("unbounded response marshalled as %s", data)
	}
}

func TestUnschedulable422NotReturned(t *testing.T) {
	// An unschedulable system is an analysis outcome, not an error:
	// still a 200 with schedulable=false.
	s := New(Options{})
	doc := `{"system": {"platforms":[{"alpha":0.3,"delta":1,"beta":0}],
		"transactions":[{"period":10,"tasks":[{"wcet":5,"priority":1,"platform":1}]}]}}`
	var resp AnalyzeResponse
	if w := do(t, s, "POST", "/v1/analyze", doc, &resp); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.Schedulable {
		t.Error("overloaded system reported schedulable")
	}
	if resp.Transactions[0].Response != nil {
		t.Errorf("unbounded response = %v, want null", *resp.Transactions[0].Response)
	}
}
