package httpd

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/service"
)

// TestAnalyzeHandlerBinaryZeroAllocs locks the binary-codec hit path
// at zero allocations per request end-to-end through the handler:
// pooled status writer and body buffer, one SHA-256 over the wire
// bytes, intern-pool and verdict-memo stripe hits, and the pooled
// binary response encode. The harness reuses the request, reader and
// writer (benchWriter) so it measures the handler, not itself — the
// same discipline as BenchmarkAnalyzeHandlerBinary.
func TestAnalyzeHandlerBinaryZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are meaningless")
	}
	s := New(Options{Service: service.New(service.Options{})})
	h := s.Handler()
	body, err := EncodeAnalyzeRequestBinary(experiments.PaperSystem(), OptionsSpec{})
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/analyze", rd)
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Header.Set("Accept", ContentTypeBinary)
	w := &benchWriter{hdr: make(http.Header)}
	post := func() {
		rd.Reset(body)
		w.reset()
		h.ServeHTTP(w, req)
	}
	// First post misses (decode + install), a few more warm the pools.
	for i := 0; i < 8; i++ {
		post()
		if w.code != http.StatusOK {
			t.Fatalf("warmup status %d: %s", w.code, w.buf.String())
		}
	}
	allocs := testing.AllocsPerRun(500, post)
	// Per-op allocation counts are integral, so a real regression reads
	// ≥ 1.0; a rare mid-run GC emptying a sync.Pool reads ≪ 1.
	if allocs >= 1 {
		t.Errorf("binary hit path allocates %.2f/op, want 0", allocs)
	}
}
