package spec

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	sys := experiments.PaperSystem()
	data, err := Marshal(sys)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(sys.Platforms, back.Platforms) {
		t.Errorf("platforms differ after round trip")
	}
	if len(back.Transactions) != len(sys.Transactions) {
		t.Fatalf("transaction count differs")
	}
	for i := range sys.Transactions {
		a, b := sys.Transactions[i], back.Transactions[i]
		if a.Period != b.Period || a.Deadline != b.Deadline || a.Name != b.Name {
			t.Errorf("Γ%d header differs: %+v vs %+v", i+1, a, b)
		}
		if !reflect.DeepEqual(a.Tasks, b.Tasks) {
			t.Errorf("Γ%d tasks differ:\n%+v\n%+v", i+1, a.Tasks, b.Tasks)
		}
	}
}

func TestLoadSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.json")
	sys := experiments.PaperSystem()
	if err := Save(sys, path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.TaskCount() != sys.TaskCount() {
		t.Errorf("TaskCount %d != %d", back.TaskCount(), sys.TaskCount())
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Errorf("malformed JSON accepted")
	}
	// Platform index out of range (1-based in files).
	bad := `{"platforms":[{"alpha":0.5,"delta":1,"beta":1}],
	         "transactions":[{"period":10,"tasks":[{"wcet":1,"priority":1,"platform":2}]}]}`
	if _, err := Parse([]byte(bad)); err == nil {
		t.Errorf("out-of-range platform accepted")
	}
	// Platform 0 (would be -1 after conversion).
	bad0 := `{"platforms":[{"alpha":0.5,"delta":1,"beta":1}],
	          "transactions":[{"period":10,"tasks":[{"wcet":1,"priority":1,"platform":0}]}]}`
	if _, err := Parse([]byte(bad0)); err == nil {
		t.Errorf("platform index 0 accepted")
	}
	// Structurally valid JSON, semantically invalid system.
	neg := `{"platforms":[{"alpha":0.5,"delta":1,"beta":1}],
	         "transactions":[{"period":-10,"tasks":[{"wcet":1,"priority":1,"platform":1}]}]}`
	if _, err := Parse([]byte(neg)); err == nil {
		t.Errorf("negative period accepted")
	}
}

// TestErrorContext locks the error contract the HTTP server's 400
// responses rely on: every malformed-document error wraps ErrInvalid
// and names the offending transaction (and field, via the model's
// validation messages).
func TestErrorContext(t *testing.T) {
	cases := []struct {
		name, doc string
		contains  []string
	}{
		{
			name:     "undecodable json",
			doc:      "{not json",
			contains: []string{"spec:"},
		},
		{
			name: "dangling platform reference",
			doc: `{"platforms":[{"alpha":0.5,"delta":1,"beta":1}],
			       "transactions":[{"period":10,"tasks":[{"wcet":1,"priority":1,"platform":1}]},
			                       {"period":20,"tasks":[{"wcet":1,"priority":1,"platform":3}]}]}`,
			contains: []string{"transaction 2", "task 1", "platform 3"},
		},
		{
			name: "negative period",
			doc: `{"platforms":[{"alpha":0.5,"delta":1,"beta":1}],
			       "transactions":[{"period":10,"tasks":[{"wcet":1,"priority":1,"platform":1}]},
			                       {"period":-10,"tasks":[{"wcet":1,"priority":1,"platform":1}]}]}`,
			contains: []string{"Γ2", "period"},
		},
		{
			name: "zero wcet",
			doc: `{"platforms":[{"alpha":0.5,"delta":1,"beta":1}],
			       "transactions":[{"name":"sensor","period":10,"tasks":[{"priority":1,"platform":1}]}]}`,
			contains: []string{"sensor", "WCET"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("malformed document accepted")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("error does not wrap ErrInvalid: %v", err)
			}
			for _, want := range tc.contains {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not name %q", err, want)
				}
			}
		})
	}
}

func TestToTransaction(t *testing.T) {
	ts := TransactionSpec{Period: 10, Tasks: []TaskSpec{{WCET: 1, Priority: 1, Platform: 1}}}
	tr, err := ts.ToTransaction(1)
	if err != nil {
		t.Fatalf("ToTransaction: %v", err)
	}
	if tr.Deadline != 10 || tr.Tasks[0].Platform != 0 {
		t.Errorf("conversion: deadline %v platform %d, want 10 and 0", tr.Deadline, tr.Tasks[0].Platform)
	}
	ts.Tasks[0].Platform = 2
	if _, err := ts.ToTransaction(1); !errors.Is(err, ErrInvalid) {
		t.Errorf("dangling platform: err = %v, want ErrInvalid", err)
	}
}

func TestDefaultDeadline(t *testing.T) {
	doc := `{"platforms":[{"alpha":1,"delta":0,"beta":0}],
	         "transactions":[{"period":10,"tasks":[{"wcet":1,"priority":1,"platform":1}]}]}`
	sys, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sys.Transactions[0].Deadline != 10 {
		t.Errorf("default deadline %v, want the period", sys.Transactions[0].Deadline)
	}
}

// TestRoundTripRandomSystems: generated systems of varied shapes
// survive the JSON round trip bit-exactly (up to float formatting,
// which strconv 'g' with -1 precision makes lossless).
func TestRoundTripRandomSystems(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		sys, err := gen.System(gen.Config{
			Seed: seed, Platforms: 1 + int(seed%4), Transactions: 1 + int(seed%5),
			ChainLen: 1 + int(seed%3), PeriodMin: 5, PeriodMax: 5000,
			Utilization: 0.1 + 0.08*float64(seed%9),
			AlphaMin:    0.2, AlphaMax: 1.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := Marshal(sys)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, data)
		}
		if !reflect.DeepEqual(sys.Platforms, back.Platforms) {
			t.Fatalf("seed %d: platforms differ", seed)
		}
		for i := range sys.Transactions {
			if !reflect.DeepEqual(sys.Transactions[i].Tasks, back.Transactions[i].Tasks) {
				t.Fatalf("seed %d: Γ%d tasks differ", seed, i+1)
			}
		}
	}
}

func TestSaveRejectsUnwritablePath(t *testing.T) {
	sys := experiments.PaperSystem()
	if err := Save(sys, filepath.Join(string(os.PathSeparator), "nonexistent-dir-xyz", "sys.json")); err == nil {
		t.Errorf("unwritable path accepted")
	}
}
