// Package spec serialises systems to and from a JSON format consumed
// by the command-line tools (cmd/hsched, cmd/hsim) and the HTTP server
// (internal/httpd). The format mirrors the model: platforms as
// (alpha, delta, beta) triples and transactions as task chains;
// platform references are 1-based in the file (matching the paper's
// Π1 … ΠM notation) and converted to the model's 0-based indices on
// load.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"hsched/internal/model"
	"hsched/internal/platform"
)

// ErrInvalid is wrapped into every error a malformed or inconsistent
// document produces — undecodable JSON, dangling platform references,
// model validation failures. Servers test errors.Is(err, ErrInvalid)
// to map spec failures to a 400 (the request is at fault, naming the
// offending field) rather than a 500.
var ErrInvalid = errors.New("invalid system specification")

// PlatformSpec is the JSON form of an abstract platform.
type PlatformSpec struct {
	Name  string  `json:"name,omitempty"`
	Alpha float64 `json:"alpha"`
	Delta float64 `json:"delta"`
	Beta  float64 `json:"beta"`
}

// TaskSpec is the JSON form of a task. Platform is 1-based.
type TaskSpec struct {
	Name     string  `json:"name,omitempty"`
	WCET     float64 `json:"wcet"`
	BCET     float64 `json:"bcet,omitempty"`
	Offset   float64 `json:"offset,omitempty"`
	Jitter   float64 `json:"jitter,omitempty"`
	Priority int     `json:"priority"`
	Platform int     `json:"platform"`
	Blocking float64 `json:"blocking,omitempty"`
}

// TransactionSpec is the JSON form of a transaction.
type TransactionSpec struct {
	Name     string     `json:"name,omitempty"`
	Period   float64    `json:"period"`
	Deadline float64    `json:"deadline,omitempty"`
	Tasks    []TaskSpec `json:"tasks"`
}

// File is the top-level JSON document.
type File struct {
	Platforms    []PlatformSpec    `json:"platforms"`
	Transactions []TransactionSpec `json:"transactions"`
}

// ToTransaction converts one transaction spec to its model form,
// checking its task platform references against a system with
// platforms platforms. A missing deadline defaults to the period. The
// returned errors wrap ErrInvalid and name the offending task.
func (t *TransactionSpec) ToTransaction(platforms int) (model.Transaction, error) {
	tr := model.Transaction{Name: t.Name, Period: t.Period, Deadline: t.Deadline}
	if tr.Deadline == 0 {
		tr.Deadline = tr.Period
	}
	for j, k := range t.Tasks {
		if k.Platform < 1 || k.Platform > platforms {
			return model.Transaction{}, fmt.Errorf("%w: task %d: platform %d outside [1, %d]", ErrInvalid, j+1, k.Platform, platforms)
		}
		tr.Tasks = append(tr.Tasks, model.Task{
			Name:     k.Name,
			WCET:     k.WCET,
			BCET:     k.BCET,
			Offset:   k.Offset,
			Jitter:   k.Jitter,
			Priority: k.Priority,
			Platform: k.Platform - 1,
			Blocking: k.Blocking,
		})
	}
	return tr, nil
}

// ToSystem converts the document to a validated model system. A
// missing deadline defaults to the period. Errors wrap ErrInvalid and
// carry enough context to name the offending transaction and field.
func (f *File) ToSystem() (*model.System, error) {
	sys := &model.System{}
	for _, p := range f.Platforms {
		sys.Platforms = append(sys.Platforms, platform.Params{Alpha: p.Alpha, Delta: p.Delta, Beta: p.Beta})
	}
	for ti := range f.Transactions {
		tr, err := f.Transactions[ti].ToTransaction(len(sys.Platforms))
		if err != nil {
			return nil, fmt.Errorf("spec: transaction %d: %w", ti+1, err)
		}
		sys.Transactions = append(sys.Transactions, tr)
	}
	if err := sys.Validate(); err != nil {
		// Validation errors already name the transaction/task/field
		// (model.Validate's messages); the wrap adds the spec origin
		// and the ErrInvalid class servers branch on.
		return nil, fmt.Errorf("spec: %w: %w", ErrInvalid, err)
	}
	return sys, nil
}

// FromSystem converts a model system to its JSON document form.
func FromSystem(sys *model.System) *File {
	f := &File{}
	for m, p := range sys.Platforms {
		f.Platforms = append(f.Platforms, PlatformSpec{
			Name:  fmt.Sprintf("Pi%d", m+1),
			Alpha: p.Alpha, Delta: p.Delta, Beta: p.Beta,
		})
	}
	for _, tr := range sys.Transactions {
		ts := TransactionSpec{Name: tr.Name, Period: tr.Period, Deadline: tr.Deadline}
		for _, k := range tr.Tasks {
			ts.Tasks = append(ts.Tasks, TaskSpec{
				Name: k.Name, WCET: k.WCET, BCET: k.BCET,
				Offset: k.Offset, Jitter: k.Jitter,
				Priority: k.Priority, Platform: k.Platform + 1,
				Blocking: k.Blocking,
			})
		}
		f.Transactions = append(f.Transactions, ts)
	}
	return f
}

// Parse decodes a JSON document into a validated system.
func Parse(data []byte) (*model.System, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("spec: %w: %w", ErrInvalid, err)
	}
	return f.ToSystem()
}

// Load reads and parses a JSON system file.
func Load(path string) (*model.System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

// Marshal renders a system as indented JSON.
func Marshal(sys *model.System) ([]byte, error) {
	data, err := json.MarshalIndent(FromSystem(sys), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes a system as JSON to path.
func Save(sys *model.System, path string) error {
	data, err := Marshal(sys)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
