package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	err := WriteCSV(&b, []string{"x", "y"}, [][]float64{{1, 2.5}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2.5\n3,4\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestFigure3CSV(t *testing.T) {
	var b bytes.Buffer
	if err := Figure3CSV(&b, 1, 4, 16, 32); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 34 { // header + 33 samples
		t.Errorf("%d lines, want 34", len(lines))
	}
	if lines[0] != "t,zmin,zmax,lower,upper" {
		t.Errorf("header %q", lines[0])
	}
	if err := Figure3CSV(&b, 5, 4, 16, 8); err == nil {
		t.Errorf("invalid server accepted")
	}
}

func TestTable3CSV(t *testing.T) {
	var b bytes.Buffer
	if err := Table3CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// header + 5 iterations × 4 tasks.
	if len(lines) != 21 {
		t.Errorf("%d lines, want 21", len(lines))
	}
	if !strings.Contains(b.String(), "4,19,31") { // iteration 3+, τ1,4: J=19, R=31
		t.Errorf("final τ1,4 row missing:\n%s", b.String())
	}
}

func TestAcceptanceAndPessimismCSV(t *testing.T) {
	var b bytes.Buffer
	pts := []AcceptancePoint{{Utilization: 0.5, Systems: 10, Approx: 0.6, Exact: 0.6, Tight: 0.6}}
	if err := AcceptanceCSV(&b, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.5,0.6,0.6,0.6") {
		t.Errorf("acceptance csv:\n%s", b.String())
	}
	b.Reset()
	rows := []PessimismRow{{Alpha: 0.4, Analyzed: 7.4, Simulated: 5.6, Ratio: 1.32}}
	if err := PessimismCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.4,7.4,5.6,1.32") {
		t.Errorf("pessimism csv:\n%s", b.String())
	}
}
