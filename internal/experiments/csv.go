package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders a header and numeric rows as CSV, the plot-ready
// counterpart of the text tables (gnuplot/matplotlib consume it
// directly).
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, r := range rows {
		rec := make([]string, len(r))
		for i, v := range r {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure3CSV writes the Figure 3 supply curves as CSV
// (t, zmin, zmax, lower, upper).
func Figure3CSV(w io.Writer, q, p, horizon float64, samples int) error {
	pts, err := Figure3Compute(q, p, horizon, samples)
	if err != nil {
		return err
	}
	rows := make([][]float64, len(pts))
	for i, pt := range pts {
		rows[i] = []float64{pt.T, pt.Zmin, pt.Zmax, pt.Lower, pt.Upper}
	}
	return WriteCSV(w, []string{"t", "zmin", "zmax", "lower", "upper"}, rows)
}

// AcceptanceCSV writes the A8 acceptance curve as CSV
// (utilization, approx, exact, tight).
func AcceptanceCSV(w io.Writer, pts []AcceptancePoint) error {
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64{p.Utilization, p.Approx, p.Exact, p.Tight}
	}
	return WriteCSV(w, []string{"utilization", "approx", "exact", "tight"}, rows)
}

// PessimismCSV writes the A2 pessimism sweep as CSV
// (alpha, analyzed, simulated, ratio).
func PessimismCSV(w io.Writer, rows []PessimismRow) error {
	data := make([][]float64, len(rows))
	for i, r := range rows {
		data[i] = []float64{r.Alpha, r.Analyzed, r.Simulated, r.Ratio}
	}
	return WriteCSV(w, []string{"alpha", "analyzed", "simulated", "ratio"}, data)
}

// Table3CSV writes the holistic iteration trace as CSV
// (iteration, task, jitter, response).
func Table3CSV(w io.Writer) error {
	data, err := Table3Compute()
	if err != nil {
		return err
	}
	var rows [][]float64
	for k, row := range data.Iterations {
		for j, cell := range row {
			rows = append(rows, []float64{float64(k), float64(j + 1), cell[0], cell[1]})
		}
	}
	return WriteCSV(w, []string{"iteration", "task", "jitter", "response"}, rows)
}
