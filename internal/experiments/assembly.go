package experiments

import "hsched/internal/component"

// SensorReadingClass returns the SensorReading component class of
// Figure 1: a periodic acquisition thread (period 15 ms, priority 2 in
// the class specification; the integrated example of Table 1 uses
// priority 3, which is what the acqPriority parameter carries) and a
// lower-priority handler realising the provided read() method.
func SensorReadingClass(acqWCET, acqBCET, readWCET, readBCET float64, acqPriority, readPriority int) *component.Class {
	return &component.Class{
		Name: "SensorReading",
		Provided: []component.Method{
			{Name: "read", MIT: 50},
		},
		Threads: []component.Thread{
			{
				Name: "Thread1", Kind: component.Periodic, Period: 15,
				Priority: acqPriority,
				Body:     []component.Step{component.Task("acquire", acqWCET, acqBCET)},
			},
			{
				Name: "Thread2", Kind: component.Handler, Realizes: "read",
				Priority: readPriority,
				Body:     []component.Step{component.Task("read", readWCET, readBCET)},
			},
		},
	}
}

// SensorIntegrationClass returns the SensorIntegration component class
// of Figure 2. Its periodic Thread2 runs init, synchronously reads
// both sensors, and computes the fused value. Table 1 assigns the
// final compute task priority 3 while the thread (and its init task)
// has priority 2 — reproduced here with a per-step priority override.
func SensorIntegrationClass() *component.Class {
	return &component.Class{
		Name: "SensorIntegration",
		Provided: []component.Method{
			{Name: "read"},
		},
		Required: []component.Method{
			{Name: "readSensor1"},
			{Name: "readSensor2"},
		},
		Threads: []component.Thread{
			{
				Name: "Thread1", Kind: component.Handler, Realizes: "read",
				Priority: 1,
				Body:     []component.Step{component.Task("serve", 1, 0.8)},
			},
			{
				Name: "Thread2", Kind: component.Periodic, Period: 50,
				Priority: 2,
				Body: []component.Step{
					component.Task("init", 1, 0.8),
					component.Call("readSensor1"),
					component.Call("readSensor2"),
					component.TaskPrio("compute", 1, 0.8, 3),
				},
			},
		},
	}
}

// BackgroundClass returns the τ4,1 background workload of the example:
// a single periodic thread with period 70 and priority 1 on the
// integrator platform.
func BackgroundClass() *component.Class {
	return &component.Class{
		Name: "Background",
		Threads: []component.Thread{
			{
				Name: "Thread1", Kind: component.Periodic, Period: 70,
				Priority: 1,
				Body:     []component.Step{component.Task("work", 7, 5)},
			},
		},
	}
}

// PaperAssembly returns the integrated sensor-fusion system of
// Section 2.2.1 at the component level: two SensorReading instances,
// one SensorIntegration instance and the background load, wired so
// that Assembly.Transactions reproduces the transaction set of
// Table 1 / Figure 5. As in the paper's example, RPC messages are not
// modelled (Messages is nil); the Integrator's own provided read()
// interface is served locally and — again as in the paper — has no
// external periodic caller.
//
// Note one paper idiosyncrasy reproduced faithfully: the transactions
// Γ2/Γ3 of Table 1 are the sensor acquisition threads with priority 3,
// although Figure 1's class text says priority 2; and the compute task
// τ1,4 carries priority 3 although it belongs to a priority-2 thread.
// Table 1 is authoritative for the reproduction.
func PaperAssembly() *component.Assembly {
	sensorCls := SensorReadingClass(1, 0.25, 1, 0.8, 3, 1)
	integCls := SensorIntegrationClass()
	bgCls := BackgroundClass()
	return &component.Assembly{
		Platforms: PaperPlatforms(),
		Instances: []component.Instance{
			{Name: "Integrator", Class: integCls, Platform: Pi3},
			{Name: "Sensor1", Class: sensorCls, Platform: Pi1},
			{Name: "Sensor2", Class: sensorCls, Platform: Pi2},
			{Name: "Background", Class: bgCls, Platform: Pi3},
		},
		Bindings: []component.Binding{
			{Caller: "Integrator", Method: "readSensor1", Callee: "Sensor1", Provided: "read"},
			{Caller: "Integrator", Method: "readSensor2", Callee: "Sensor2", Provided: "read"},
		},
	}
}
