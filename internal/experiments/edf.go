package experiments

import (
	"fmt"
	"strings"

	"hsched/internal/design"
	"hsched/internal/edf"
	"hsched/internal/model"
	"hsched/internal/platform"
)

// EDFvsFPRow compares the minimal platform bandwidth of one workload
// under the two local schedulers.
type EDFvsFPRow struct {
	// Name labels the workload.
	Name string
	// Utilization is Σ C/T, the absolute lower bound for both.
	Utilization float64
	// AlphaEDF and AlphaFP are the minimal bandwidths found.
	AlphaEDF, AlphaFP float64
}

// EDFvsFP (ablation A7) quantifies the paper's Section 2.1 remark that
// the methodology extends to local EDF: for several component
// workloads it searches the minimal periodic-server bandwidth keeping
// the component schedulable under local EDF (demand/supply test)
// versus local fixed priorities with rate-monotonic ordering
// (holistic analysis + design search). EDF, being optimal on a
// sequential resource, never needs more bandwidth.
func EDFvsFP() ([]EDFvsFPRow, error) {
	const serverPeriod = 1.25
	workloads := []struct {
		name  string
		tasks []edf.Task
	}{
		{"2-task harmonic", []edf.Task{{WCET: 2, Period: 10}, {WCET: 4, Period: 20}}},
		{"2-task tight", []edf.Task{{WCET: 2, Period: 10}, {WCET: 4.5, Period: 14}}},
		{"3-task mixed", []edf.Task{{WCET: 2, Period: 10}, {WCET: 4.5, Period: 14}, {WCET: 1, Period: 40}}},
		{"constrained deadline", []edf.Task{{WCET: 1, Period: 12, Deadline: 6}, {WCET: 2, Period: 16}}},
	}
	family := func(alpha float64) platform.Supplier {
		if alpha >= 1 {
			return platform.Dedicated()
		}
		return platform.PeriodicServer{Q: alpha * serverPeriod, P: serverPeriod}
	}
	var out []EDFvsFPRow
	for _, w := range workloads {
		aEDF, err := edf.MinimalRate(w.tasks, family, 1e-3)
		if err != nil {
			return nil, fmt.Errorf("EDF search for %s: %w", w.name, err)
		}
		sys := &model.System{Platforms: []platform.Params{platform.Dedicated()}}
		for i, task := range w.tasks {
			d := task.Deadline
			if d == 0 {
				d = task.Period
			}
			sys.Transactions = append(sys.Transactions, model.Transaction{
				Name: task.Name, Period: task.Period, Deadline: d,
				Tasks: []model.Task{{
					WCET: task.WCET, BCET: task.WCET,
					Priority: len(w.tasks) - i, // tasks listed rate-monotonically
				}},
			})
		}
		fpRes, err := design.Minimize(sys, []design.Family{design.PollingFamily(serverPeriod)}, design.Options{Tolerance: 1e-3})
		if err != nil {
			return nil, fmt.Errorf("FP search for %s: %w", w.name, err)
		}
		out = append(out, EDFvsFPRow{
			Name:        w.name,
			Utilization: edf.Utilization(w.tasks),
			AlphaEDF:    aEDF,
			AlphaFP:     fpRes.Alphas[0],
		})
	}
	return out, nil
}

// RenderEDFvsFP formats ablation A7.
func RenderEDFvsFP(rows []EDFvsFPRow) string {
	header := []string{"workload", "utilisation", "alpha EDF", "alpha FP", "EDF saving"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Utilization),
			fmt.Sprintf("%.3f", r.AlphaEDF), fmt.Sprintf("%.3f", r.AlphaFP),
			fmt.Sprintf("%.1f%%", 100*(r.AlphaFP-r.AlphaEDF)/r.AlphaFP),
		})
	}
	s := renderTable("Ablation A7: minimal platform bandwidth under local EDF vs local fixed priorities", header, rs)
	return s + strings.TrimSpace(`
(EDF is searched with the demand/supply-bound test; FP with the holistic
analysis and rate-monotonic priorities, both over periodic servers of
period 1.25.)`) + "\n"
}
