package experiments

import (
	"context"
	"fmt"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/service"
)

// ChurnReport summarises an AdmissionChurn run: how the analysis
// service absorbed a stream of single-transaction mutations.
type ChurnReport struct {
	// Steps is the number of admission-control events replayed.
	Steps int
	// Admitted counts the events whose mutated system was schedulable.
	Admitted int
	// Stats is the service's counter snapshot after the run: Misses is
	// the number of analyses actually executed, DeltaHits the subset
	// that ran incrementally, RoundsSaved the per-task response
	// computations the delta path skipped.
	Stats service.Stats
}

// AdmissionChurn (ablation A9) replays the workload the incremental
// re-analysis path is built for: admission-control traffic against the
// paper's sensor-fusion example that mutates one transaction at a time
// — admit a background transaction, retune its budget, drop it again,
// with slowly drifting parameters so every event is a genuinely new
// system. All queries go through one service; identical re-queries hit
// the verdict memo, near-matches run incrementally, and only the first
// few events pay a cold analysis. svc == nil constructs a private
// sequential service; pass an explicit (fresh, unshared) one to read
// its raw Stats afterwards — the report's Stats snapshot covers
// whatever else the service served, so sharing one with other
// workloads mixes their counters in.
func AdmissionChurn(steps int, svc *service.Service) (*ChurnReport, error) {
	if steps <= 0 {
		steps = 30
	}
	if svc == nil {
		svc = service.New(service.Options{Shards: 1, Analysis: analysis.Options{Workers: 1}})
	}
	ctx := context.Background()

	base := PaperSystem()
	sys := base
	rep := &ChurnReport{Steps: steps}
	for k := 0; k < steps; k++ {
		cycle := k / 3
		switch k % 3 {
		case 0: // admit a background transaction on a sensor node
			sys = base.Clone()
			sys.Transactions = append(sys.Transactions, model.Transaction{
				Name: "background", Period: 60, Deadline: 60,
				Tasks: []model.Task{{
					Name: "bg", WCET: 0.5 + 0.05*float64(cycle), BCET: 0.25,
					Priority: 0, Platform: Pi1 + cycle%2,
				}},
			})
		case 1: // retune the admitted transaction's budget
			sys = sys.Clone()
			tr := &sys.Transactions[len(sys.Transactions)-1]
			tr.Tasks[0].WCET += 0.1
		case 2: // drop it again
			sys = sys.Clone()
			sys.Transactions = sys.Transactions[:len(sys.Transactions)-1]
		}
		res, err := svc.Analyze(ctx, sys)
		if err != nil {
			return nil, fmt.Errorf("admission churn step %d: %w", k, err)
		}
		if res.Schedulable {
			rep.Admitted++
		}
	}
	rep.Stats = svc.Stats()
	return rep, nil
}

// RenderAdmissionChurn formats ablation A9.
func RenderAdmissionChurn(r *ChurnReport) string {
	st := r.Stats
	header := []string{"metric", "value"}
	rows := [][]string{
		{"admission events", fmt.Sprintf("%d", r.Steps)},
		{"admitted (schedulable)", fmt.Sprintf("%d", r.Admitted)},
		{"queries", fmt.Sprintf("%d", st.Queries)},
		{"memo hits", fmt.Sprintf("%d", st.Hits)},
		{"analyses executed", fmt.Sprintf("%d", st.Misses)},
		{"incremental (delta) analyses", fmt.Sprintf("%d", st.DeltaHits)},
		{"task-rounds saved by replay", fmt.Sprintf("%d", st.RoundsSaved)},
	}
	return renderTable("Ablation A9: admission-control churn absorbed by the delta path (paper example)", header, rows)
}
