package experiments

import (
	"fmt"
	"strings"

	"hsched/internal/analysis"
	"hsched/internal/platform"
)

// Figure3Point is one sample of the supply curves of Figure 3.
type Figure3Point struct {
	T          float64
	Zmin, Zmax float64
	// Lower and Upper are the linear bounds α(t−Δ) and αt+β.
	Lower, Upper float64
}

// Figure3Compute samples the exact supply functions of a periodic
// server together with their linear bounds, reproducing the geometry
// of Figure 3: the supply of any concrete interval lies between Zmin
// and Zmax, which in turn lie between the two linear bounds.
func Figure3Compute(q, p, horizon float64, samples int) ([]Figure3Point, error) {
	srv := platform.PeriodicServer{Q: q, P: p}
	if err := srv.Validate(); err != nil {
		return nil, err
	}
	lin := srv.Params()
	out := make([]Figure3Point, 0, samples+1)
	for i := 0; i <= samples; i++ {
		t := horizon * float64(i) / float64(samples)
		out = append(out, Figure3Point{
			T:    t,
			Zmin: srv.MinSupply(t), Zmax: srv.MaxSupply(t),
			Lower: lin.MinSupply(t), Upper: lin.Alpha*t + lin.Beta,
		})
	}
	return out, nil
}

// Figure3 renders the sampled curves as a data table (one row per
// sample), with the derived (α, Δ, β) in the title.
func Figure3(q, p float64) (string, error) {
	pts, err := Figure3Compute(q, p, 4*p, 32)
	if err != nil {
		return "", err
	}
	lin := platform.PeriodicServer{Q: q, P: p}.Params()
	header := []string{"t", "Zmin", "Zmax", "alpha(t-Delta)", "alpha*t+beta"}
	var rows [][]string
	for _, pt := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", pt.T),
			fmt.Sprintf("%.3f", pt.Zmin), fmt.Sprintf("%.3f", pt.Zmax),
			fmt.Sprintf("%.3f", pt.Lower), fmt.Sprintf("%.3f", pt.Upper),
		})
	}
	title := fmt.Sprintf("Figure 3: supply functions of a periodic server Q=%g, P=%g -> %v", q, p, lin)
	return renderTable(title, header, rows), nil
}

// Figure5 renders the example application of Figure 5: the transaction
// set derived from the component assembly of Section 2.2, with the
// platform containment the figure draws.
func Figure5() (string, error) {
	sys, err := PaperAssembly().Transactions()
	if err != nil {
		return "", err
	}
	res, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 5: example application (derived from the component assembly)\n")
	for i, tr := range sys.Transactions {
		var chain []string
		for j, t := range tr.Tasks {
			chain = append(chain, fmt.Sprintf("tau%d,%d@Pi%d", i+1, j+1, t.Platform+1))
		}
		fmt.Fprintf(&b, "  %-22s T=%-3g D=%-3g  %s  R=%g\n",
			tr.Name, tr.Period, tr.Deadline, strings.Join(chain, " -> "), res.TransactionResponse(i))
	}
	for m, p := range sys.Platforms {
		var members []string
		for i, tr := range sys.Transactions {
			for j, t := range tr.Tasks {
				if t.Platform == m {
					members = append(members, fmt.Sprintf("tau%d,%d", i+1, j+1))
				}
			}
		}
		fmt.Fprintf(&b, "  Pi%d = %v contains {%s}\n", m+1, p, strings.Join(members, ", "))
	}
	return b.String(), nil
}
