package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, want := range []string{"tau1,4", "Pi3", "phi_min", "0.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Pi3 (Integrator)", "0.2", "alpha"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3ComputeMatchesPaperJitters(t *testing.T) {
	data, err := Table3Compute()
	if err != nil {
		t.Fatal(err)
	}
	paper := Table3PaperValues()
	if len(data.Iterations) != len(paper) {
		t.Fatalf("%d iterations, want %d", len(data.Iterations), len(paper))
	}
	for k := range paper {
		for j := range paper[k] {
			if got, want := data.Iterations[k][j][0], paper[k][j][0]; math.Abs(got-want) > 1e-9 {
				t.Errorf("iteration %d: J1,%d = %v, paper %v", k, j+1, got, want)
			}
		}
	}
	// Response times match the paper except the documented τ1,4 final
	// cells (31 vs 39).
	for k := range paper {
		for j := 0; j < 3; j++ {
			if got, want := data.Iterations[k][j][1], paper[k][j][1]; math.Abs(got-want) > 1e-9 {
				t.Errorf("iteration %d: R1,%d = %v, paper %v", k, j+1, got, want)
			}
		}
	}
	if data.Final != 31 {
		t.Errorf("final R(Γ1) = %v, want 31", data.Final)
	}
	if !data.Schedulable {
		t.Errorf("paper example must be schedulable")
	}
}

func TestFigure3Properties(t *testing.T) {
	pts, err := Figure3Compute(1, 4, 24, 480)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Lower > p.Zmin+1e-9 || p.Zmin > p.Zmax+1e-9 || p.Zmax > p.Upper+1e-9 {
			t.Fatalf("t=%v: ordering violated: %v ≤ %v ≤ %v ≤ %v", p.T, p.Lower, p.Zmin, p.Zmax, p.Upper)
		}
	}
	if _, err := Figure3Compute(5, 4, 24, 10); err == nil {
		t.Errorf("Q > P accepted")
	}
}

func TestFigure5Rendering(t *testing.T) {
	out, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tau1,1@Pi3 -> tau1,2@Pi1 -> tau1,3@Pi2 -> tau1,4@Pi3",
		"Pi3 = (α=0.2, Δ=2, β=1) contains {tau1,1, tau1,4, tau4,1}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5 output missing %q:\n%s", want, out)
		}
	}
}

func TestExactVsApproxInvariants(t *testing.T) {
	rows, err := ExactVsApprox([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxRatio < 1-1e-9 {
			t.Errorf("seed %d: approximation below exact (ratio %v)", r.Seed, r.MaxRatio)
		}
		if r.ExactScenarios < r.ApproxScenarios {
			t.Errorf("seed %d: exact scenario count %d below approximate %d", r.Seed, r.ExactScenarios, r.ApproxScenarios)
		}
		if !r.BothSchedulableAgree {
			t.Errorf("seed %d: verdicts disagree", r.Seed)
		}
	}
	if out := RenderExactVsApprox(rows); !strings.Contains(out, "Ablation A1") {
		t.Errorf("render missing title")
	}
}

func TestPessimismBoundsDominate(t *testing.T) {
	rows, err := Pessimism([]float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Analyzed < r.Simulated-0.05 {
			t.Errorf("alpha %v: analysed bound %v below simulated worst %v", r.Alpha, r.Analyzed, r.Simulated)
		}
		if r.Ratio < 1-0.01 {
			t.Errorf("alpha %v: ratio %v below 1", r.Alpha, r.Ratio)
		}
	}
	if out := RenderPessimism(rows); !strings.Contains(out, "Ablation A2") {
		t.Errorf("render missing title")
	}
}

func TestSimVsAnalysisNoViolations(t *testing.T) {
	rows, err := SimVsAnalysis([]int64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("seed %d: %d soundness violations", r.Seed, r.Violations)
		}
		if r.Schedulable && r.MaxRatio > 1.001 {
			t.Errorf("seed %d: simulated exceeded analysed by ratio %v", r.Seed, r.MaxRatio)
		}
	}
	if out := RenderSimVsAnalysis(rows); !strings.Contains(out, "Ablation A3") {
		t.Errorf("render missing title")
	}
}

func TestDesignSearchBeatsPaperProvisioning(t *testing.T) {
	out, res, err := DesignSearch()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBandwidth >= 1.0 {
		t.Errorf("optimised total bandwidth %v should beat the paper's 1.0", res.TotalBandwidth)
	}
	if !res.Analysis.Schedulable {
		t.Errorf("optimum unschedulable")
	}
	if !strings.Contains(out, "total bandwidth") {
		t.Errorf("render missing summary")
	}
}

func TestNetworkExperimentInflatesGamma1(t *testing.T) {
	out, err := NetworkExperiment()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation A6", "schedulable with messages: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
