package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"hsched/internal/analysis"
	"hsched/internal/batch"
	"hsched/internal/gen"
	"hsched/internal/sched"
	"hsched/internal/service"
)

// PolicyAcceptancePoint is one utilisation point of the priority-
// assignment policy sweep.
type PolicyAcceptancePoint struct {
	// Utilization is the per-platform demand target of the generated
	// systems.
	Utilization float64
	// Systems is the number of random systems drawn.
	Systems int
	// RM, DM, HOPA and Audsley are the fractions of systems each
	// policy renders schedulable (the same system, priorities
	// reassigned per policy).
	RM, DM, HOPA, Audsley float64
}

// PolicyAcceptance (ablation A10) draws random constrained-deadline
// task sets with release jitter on one shared platform, reassigns each
// set's priorities under every policy of package sched, and reports
// the fraction each policy renders schedulable — the acceptance-ratio
// counterpart of ablation A8, with the assignment policy instead of
// the analysis variant on the x-axis. The setting is the classical
// one where the policies genuinely separate: independent tasks with
// deadline ≤ period make DM beat RM, and release jitter breaks DM's
// optimality while Audsley's bottom-up search remains optimal (a
// task's response depends only on the set of tasks above it). The
// searches (HOPA, Audsley) probe the holistic oracle through probe
// sessions on one shared analysis service, so their chains of
// one-priority-apart probes ride the memo and the incremental path;
// svc == nil constructs a private service sized to the worker count,
// pass an explicit one to read its Stats afterwards (the CLI's -cache
// flag does).
//
// The oracle is deliberately bounded (MaxInner, MaxIterations): an
// unschedulable probe near the divergence boundary otherwise grinds
// through millions of fixed-point steps just to report a miss. The
// bound is identical for every policy, so the comparison stays fair;
// a probe that exhausts it counts as unschedulable.
func PolicyAcceptance(utils []float64, perPoint int, seed int64, workers int, svc *service.Service) ([]PolicyAcceptancePoint, error) {
	if svc == nil {
		svc = service.New(service.Options{Shards: SweepShards(workers)})
	}
	// One option set for every policy and both searches: verdicts and
	// probes then share memo entries across policies (an Audsley probe
	// can be answered by a HOPA round's resident result). The oracle
	// must see fixed-point responses — the searches accept candidates
	// by their transaction's response — so no StopAtDeadlineMiss.
	opt := analysis.Options{Workers: 1, MaxInner: 50_000, MaxIterations: 60}
	ctx := context.Background()
	type verdicts struct{ rm, dm, hopa, audsley bool }
	var out []PolicyAcceptancePoint
	for _, u := range utils {
		u := u
		vs, err := batch.Map(perPoint, batch.Options{Workers: workers}, func(k int) (verdicts, error) {
			sys, err := gen.System(gen.Config{
				Seed:      seed + int64(k) + int64(u*1e6),
				Platforms: 1, Transactions: 5, ChainLen: 1,
				PeriodMin: 20, PeriodMax: 400,
				Utilization: u,
				AlphaMin:    0.5, AlphaMax: 0.9,
			})
			if err != nil {
				return verdicts{}, err
			}
			// Constrained deadlines and release jitter, deterministic
			// per system: uniform deadline factors would collapse DM
			// onto RM, and without jitter DM would tie Audsley.
			jrng := rand.New(rand.NewSource(seed + 7919*int64(k) + int64(u*1e6)))
			for i := range sys.Transactions {
				tr := &sys.Transactions[i]
				tr.Deadline = tr.Period * (0.6 + 0.4*jrng.Float64())
				tr.Tasks[0].Jitter = tr.Period * 0.35 * jrng.Float64()
			}
			var v verdicts
			for _, p := range sched.Policies() {
				c := sys.Clone()
				_, ok, err := sched.Assign(ctx, c, p, sched.AssignOptions{Analysis: opt, Service: svc})
				if err != nil {
					return verdicts{}, fmt.Errorf("policy %s, seed %d at U=%v: %w", p, seed+int64(k)+int64(u*1e6), u, err)
				}
				switch p {
				case sched.PolicyRM:
					v.rm = ok
				case sched.PolicyDM:
					v.dm = ok
				case sched.PolicyHOPA:
					v.hopa = ok
				case sched.PolicyAudsley:
					v.audsley = ok
				}
			}
			return v, nil
		})
		if err != nil {
			return nil, err
		}
		pt := PolicyAcceptancePoint{Utilization: u, Systems: perPoint}
		for _, v := range vs {
			if v.rm {
				pt.RM++
			}
			if v.dm {
				pt.DM++
			}
			if v.hopa {
				pt.HOPA++
			}
			if v.audsley {
				pt.Audsley++
			}
		}
		pt.RM /= float64(perPoint)
		pt.DM /= float64(perPoint)
		pt.HOPA /= float64(perPoint)
		pt.Audsley /= float64(perPoint)
		out = append(out, pt)
	}
	return out, nil
}

// RenderPolicyAcceptance formats ablation A10.
func RenderPolicyAcceptance(pts []PolicyAcceptancePoint) string {
	header := []string{"utilisation", "systems", "rm", "dm", "hopa", "audsley"}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Utilization),
			fmt.Sprintf("%d", p.Systems),
			fmt.Sprintf("%.2f", p.RM),
			fmt.Sprintf("%.2f", p.DM),
			fmt.Sprintf("%.2f", p.HOPA),
			fmt.Sprintf("%.2f", p.Audsley),
		})
	}
	return renderTable("Ablation A10: acceptance ratio by priority-assignment policy (random systems)", header, rows)
}

// PolicyAcceptanceCSV writes ablation A10 as plot-ready CSV.
func PolicyAcceptanceCSV(w io.Writer, pts []PolicyAcceptancePoint) error {
	rows := make([][]float64, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []float64{p.Utilization, float64(p.Systems), p.RM, p.DM, p.HOPA, p.Audsley})
	}
	return WriteCSV(w, []string{"utilisation", "systems", "rm", "dm", "hopa", "audsley"}, rows)
}
