// Package experiments reproduces every table and figure of the paper
// and the ablation studies listed in DESIGN.md. Each experiment has a
// generator returning printable rows, used by cmd/hsexper, by the test
// suite (which locks the values) and by the root benchmark harness.
package experiments

import (
	"hsched/internal/model"
	"hsched/internal/platform"
)

// PaperPlatforms returns the three abstract platforms of Table 2:
// Π1 = (0.4, 1, 1) and Π2 = (0.4, 1, 1) for the two sensor nodes and
// Π3 = (0.2, 2, 1) for the integrator node.
func PaperPlatforms() []platform.Params {
	return []platform.Params{
		{Alpha: 0.4, Delta: 1, Beta: 1}, // Π1 (Sensor 1)
		{Alpha: 0.4, Delta: 1, Beta: 1}, // Π2 (Sensor 2)
		{Alpha: 0.2, Delta: 2, Beta: 1}, // Π3 (Integrator)
	}
}

// Platform indices of the paper example.
const (
	Pi1 = 0
	Pi2 = 1
	Pi3 = 2
)

// PaperSystem returns the transaction set of Table 1 / Figure 5: the
// sensor-fusion example of Section 2.2 already transformed into
// transactions per Section 2.4 (messages between nodes are not
// modelled, exactly as in the paper's example).
//
//	Γ1 (T=D=50): τ1,1 init on Π3 → τ1,2 read sensor 1 on Π1 →
//	             τ1,3 read sensor 2 on Π2 → τ1,4 compute on Π3
//	Γ2 (T=D=15): τ2,1 sensor-1 acquisition on Π1
//	Γ3 (T=D=15): τ3,1 sensor-2 acquisition on Π2
//	Γ4 (T=D=70): τ4,1 background load on Π3
//
// Offsets and jitters are left zero: the holistic analysis derives
// them (Table 1's φmin column is exactly the derived best-case start).
func PaperSystem() *model.System {
	return &model.System{
		Platforms: PaperPlatforms(),
		Transactions: []model.Transaction{
			{
				Name: "Gamma1", Period: 50, Deadline: 50,
				Tasks: []model.Task{
					{Name: "tau1,1", WCET: 1, BCET: 0.8, Priority: 2, Platform: Pi3},
					{Name: "tau1,2", WCET: 1, BCET: 0.8, Priority: 1, Platform: Pi1},
					{Name: "tau1,3", WCET: 1, BCET: 0.8, Priority: 1, Platform: Pi2},
					{Name: "tau1,4", WCET: 1, BCET: 0.8, Priority: 3, Platform: Pi3},
				},
			},
			{
				Name: "Gamma2", Period: 15, Deadline: 15,
				Tasks: []model.Task{
					{Name: "tau2,1", WCET: 1, BCET: 0.25, Priority: 3, Platform: Pi1},
				},
			},
			{
				Name: "Gamma3", Period: 15, Deadline: 15,
				Tasks: []model.Task{
					{Name: "tau3,1", WCET: 1, BCET: 0.25, Priority: 3, Platform: Pi2},
				},
			},
			{
				Name: "Gamma4", Period: 70, Deadline: 70,
				Tasks: []model.Task{
					{Name: "tau4,1", WCET: 7, BCET: 5, Priority: 1, Platform: Pi3},
				},
			},
		},
	}
}
