package experiments

import (
	"context"
	"fmt"
	"runtime"

	"hsched/internal/analysis"
	"hsched/internal/batch"
	"hsched/internal/gen"
	"hsched/internal/service"
)

// AcceptancePoint is one utilisation point of the acceptance-ratio
// sweep.
type AcceptancePoint struct {
	// Utilization is the per-platform demand target of the generated
	// systems.
	Utilization float64
	// Systems is the number of random systems drawn.
	Systems int
	// Approx, Exact and Tight are the fractions of systems deemed
	// schedulable by the approximate analysis, the exact analysis, and
	// the approximate analysis with the per-run best-case refinement.
	Approx, Exact, Tight float64
}

// AcceptanceRatio (ablation A8) draws random multi-platform systems at
// increasing utilisation and reports the fraction each analysis
// variant admits — the classic schedulability curve. The exact
// analysis never admits fewer systems than the approximate one (and
// the sweep enforces that as an invariant); the tight best-case
// refinement sits between them.
func AcceptanceRatio(utils []float64, perPoint int, seed int64) ([]AcceptancePoint, error) {
	return AcceptanceRatioWorkers(utils, perPoint, seed, 0)
}

// AcceptanceRatioWorkers is AcceptanceRatio with an explicit bound on
// the batch workers (0 selects GOMAXPROCS), for callers that share the
// machine with other sweeps.
func AcceptanceRatioWorkers(utils []float64, perPoint int, seed int64, workers int) ([]AcceptancePoint, error) {
	return AcceptanceRatioService(utils, perPoint, seed, workers, nil)
}

// acceptanceVariants are the three analysis configurations the sweep
// compares. The engines run sequentially (Workers: 1): the sweep is
// already parallel across systems, so per-round fan-out would only
// oversubscribe the pool.
var acceptanceVariants = struct{ approx, exact, tight analysis.Options }{
	approx: analysis.Options{StopAtDeadlineMiss: true, Workers: 1},
	exact:  analysis.Options{Exact: true, StopAtDeadlineMiss: true, Workers: 1},
	tight:  analysis.Options{TightBestCase: true, StopAtDeadlineMiss: true, Workers: 1},
}

// SweepShards oversizes a sweep service's shard count relative to its
// worker count: every generated system is distinct, so queries land on
// fingerprint-random shards, and with shards == workers balls-in-bins
// collisions would leave workers blocked on each other's shard
// mutexes. 4× keeps the collision probability low at the cost of a
// few idle resident engines.
func SweepShards(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return 4 * workers
}

// AcceptanceRatioService is AcceptanceRatio routed through an analysis
// service: all workers share svc's resident engine pool, and repeated
// runs over the same seeds (or concurrent duplicate queries) are
// answered from its verdict memo. svc == nil constructs a private
// service sized to the worker count; pass an explicit service to read
// its Stats afterwards (the CLI's -cache flag does).
func AcceptanceRatioService(utils []float64, perPoint int, seed int64, workers int, svc *service.Service) ([]AcceptancePoint, error) {
	type verdicts struct{ approx, exact, tight bool }
	if svc == nil {
		svc = service.New(service.Options{Shards: SweepShards(workers)})
	}
	ctx := context.Background()
	var out []AcceptancePoint
	for _, u := range utils {
		u := u
		// The per-system evaluations are independent; run them on the
		// parallel batch runner. Seeds are fixed per (u, k), so the
		// sweep is deterministic regardless of worker scheduling.
		vs, err := batch.Map(perPoint, batch.Options{Workers: workers}, func(k int) (verdicts, error) {
			sys, err := gen.System(gen.Config{
				Seed:      seed + int64(k) + int64(u*1e6),
				Platforms: 2, Transactions: 3, ChainLen: 3,
				PeriodMin: 20, PeriodMax: 400,
				Utilization: u,
				AlphaMin:    0.4, AlphaMax: 0.9,
			})
			if err != nil {
				return verdicts{}, err
			}
			ap, err := svc.AnalyzeOptions(ctx, sys, acceptanceVariants.approx)
			if err != nil {
				return verdicts{}, err
			}
			ex, err := svc.AnalyzeOptions(ctx, sys, acceptanceVariants.exact)
			if err != nil {
				return verdicts{}, err
			}
			ti, err := svc.AnalyzeOptions(ctx, sys, acceptanceVariants.tight)
			if err != nil {
				return verdicts{}, err
			}
			if ap.Schedulable && !ex.Schedulable {
				return verdicts{}, fmt.Errorf("seed %d at U=%v: approximate admitted a system the exact analysis rejects", seed+int64(k), u)
			}
			return verdicts{approx: ap.Schedulable, exact: ex.Schedulable, tight: ti.Schedulable}, nil
		})
		if err != nil {
			return nil, err
		}
		pt := AcceptancePoint{Utilization: u, Systems: perPoint}
		for _, v := range vs {
			if v.approx {
				pt.Approx++
			}
			if v.exact {
				pt.Exact++
			}
			if v.tight {
				pt.Tight++
			}
		}
		pt.Approx /= float64(perPoint)
		pt.Exact /= float64(perPoint)
		pt.Tight /= float64(perPoint)
		out = append(out, pt)
	}
	return out, nil
}

// RenderAcceptanceRatio formats ablation A8.
func RenderAcceptanceRatio(pts []AcceptancePoint) string {
	header := []string{"utilisation", "systems", "approx", "exact", "tight best-case"}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Utilization),
			fmt.Sprintf("%d", p.Systems),
			fmt.Sprintf("%.2f", p.Approx),
			fmt.Sprintf("%.2f", p.Exact),
			fmt.Sprintf("%.2f", p.Tight),
		})
	}
	return renderTable("Ablation A8: acceptance ratio vs per-platform utilisation (random systems)", header, rows)
}
