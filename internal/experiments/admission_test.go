package experiments_test

import (
	"strings"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/service"
)

// TestAdmissionChurn locks the delta path's behaviour on the canonical
// admission workload: most analyses after warm-up run incrementally,
// identical re-queries (the recurring post-drop system) hit the memo,
// and the replay saves real fixed-point work.
func TestAdmissionChurn(t *testing.T) {
	svc := service.New(service.Options{Shards: 1, Analysis: analysis.Options{Workers: 1}})
	rep, err := experiments.AdmissionChurn(30, svc)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Queries != 30 {
		t.Fatalf("stats = %+v, want 30 queries", st)
	}
	if st.Hits == 0 {
		t.Fatalf("stats = %+v: the recurring post-drop system must hit the memo", st)
	}
	if st.DeltaHits == 0 || st.RoundsSaved <= 0 {
		t.Fatalf("stats = %+v: the churn must be absorbed incrementally", st)
	}
	// Warm-up aside, every executed analysis should have been seeded:
	// each event is one transaction away from the previous one.
	if st.DeltaHits < st.Misses/2 {
		t.Fatalf("stats = %+v: delta hits should dominate the executed analyses", st)
	}
	if rep.Admitted == 0 {
		t.Fatalf("no event admitted — the workload is miscalibrated")
	}

	out := experiments.RenderAdmissionChurn(rep)
	for _, want := range []string{"Ablation A9", "incremental (delta) analyses", "task-rounds saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}
