package experiments

import (
	"fmt"
	"math"
	"strings"

	"hsched/internal/analysis"
	"hsched/internal/component"
	"hsched/internal/design"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/network"
	"hsched/internal/platform"
	"hsched/internal/server"
	"hsched/internal/sim"
)

// smallRandomConfig yields systems small enough for the exact analysis
// yet rich enough to have multi-candidate scenarios.
func smallRandomConfig(seed int64) gen.Config {
	return gen.Config{
		Seed:         seed,
		Platforms:    2,
		Transactions: 3,
		ChainLen:     3,
		PeriodMin:    20, PeriodMax: 200,
		Utilization: 0.45,
		AlphaMin:    0.35, AlphaMax: 0.8,
	}
}

// ExactVsApproxRow compares both analyses on one random system.
type ExactVsApproxRow struct {
	Seed                 int64
	ExactScenarios       int // largest per-task scenario count (Eq. 12)
	ApproxScenarios      int // largest per-task count of Section 3.1.2
	MaxRatio             float64
	ExactEnd, ApproxEnd  float64 // end-to-end response of Γ1
	BothSchedulableAgree bool
}

// ExactVsApprox (ablation A1) quantifies what the approximation of
// Section 3.1.2 costs: for a batch of random systems it reports the
// scenario-count blowup of the exact analysis (Eq. 12) and the
// worst-case response inflation of the approximate analysis. The
// approximation must never be below the exact analysis (it upper
// bounds it).
func ExactVsApprox(seeds []int64) ([]ExactVsApproxRow, error) {
	var out []ExactVsApproxRow
	// The generated systems all share one shape, so the two engines
	// keep their interference caches warm across the whole sweep.
	exactEng := analysis.NewEngine(analysis.Options{Exact: true})
	approxEng := analysis.NewEngine(analysis.Options{})
	for _, seed := range seeds {
		// A single platform with longer chains maximises the number of
		// same-platform interferers per transaction, which is exactly
		// where the scenario product of Eq. 12 grows.
		sys, err := gen.System(gen.Config{
			Seed:         seed,
			Platforms:    1,
			Transactions: 3,
			ChainLen:     4,
			PeriodMin:    20, PeriodMax: 200,
			Utilization: 0.5,
			AlphaMin:    0.5, AlphaMax: 0.9,
			RandomPriorities: true,
		})
		if err != nil {
			return nil, err
		}
		exact, err := exactEng.Analyze(sys)
		if err != nil {
			return nil, err
		}
		approx, err := approxEng.Analyze(sys)
		if err != nil {
			return nil, err
		}
		row := ExactVsApproxRow{Seed: seed, MaxRatio: 1}
		for i := range sys.Transactions {
			for j := range sys.Transactions[i].Tasks {
				ex, ap := analysis.ScenarioCount(sys, i, j)
				if ex > row.ExactScenarios {
					row.ExactScenarios = ex
				}
				if ap > row.ApproxScenarios {
					row.ApproxScenarios = ap
				}
				re, ra := exact.Tasks[i][j].Worst, approx.Tasks[i][j].Worst
				if math.IsInf(re, 1) || math.IsInf(ra, 1) {
					continue
				}
				if ra < re-1e-6 {
					return nil, fmt.Errorf("approximate analysis below exact on seed %d task (%d,%d): %v < %v", seed, i, j, ra, re)
				}
				if re > 0 && ra/re > row.MaxRatio {
					row.MaxRatio = ra / re
				}
			}
		}
		row.ExactEnd = exact.TransactionResponse(0)
		row.ApproxEnd = approx.TransactionResponse(0)
		row.BothSchedulableAgree = exact.Schedulable == approx.Schedulable
		out = append(out, row)
	}
	return out, nil
}

// RenderExactVsApprox formats ablation A1.
func RenderExactVsApprox(rows []ExactVsApproxRow) string {
	header := []string{"seed", "exact scenarios", "approx scenarios", "max R ratio", "R1 exact", "R1 approx", "verdicts agree"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%d", r.ExactScenarios), fmt.Sprintf("%d", r.ApproxScenarios),
			fmt.Sprintf("%.4f", r.MaxRatio),
			fmt.Sprintf("%.3f", r.ExactEnd), fmt.Sprintf("%.3f", r.ApproxEnd),
			fmt.Sprintf("%v", r.BothSchedulableAgree),
		})
	}
	return renderTable("Ablation A1: exact (Sec. 3.1.1) vs approximate (Sec. 3.1.2) analysis", header, rs)
}

// PessimismRow is one α point of ablation A2.
type PessimismRow struct {
	Alpha     float64
	Analyzed  float64 // holistic bound using the linear (α, Δ, β) model
	Simulated float64 // worst observed response on the concrete polling server
	Ratio     float64
}

// Pessimism (ablation A2) measures the cost of the linear platform
// model the paper acknowledges at the end of Section 2.3: a single
// periodic task on a polling server is analysed with the server's
// (α, Δ, β) triple and simulated on the concrete server across many
// alignments; the gap between bound and worst observation is the
// pessimism of the linearisation (plus the residual analysis slack).
func Pessimism(alphas []float64) ([]PessimismRow, error) {
	const serverPeriod = 2.0
	var out []PessimismRow
	// Only the platform triple changes between α points — the ideal
	// case for engine reuse.
	eng := analysis.NewEngine(analysis.Options{})
	for _, a := range alphas {
		fam := design.PollingFamily(serverPeriod)
		sys := &model.System{
			Platforms: []platform.Params{fam(a)},
			Transactions: []model.Transaction{
				{Name: "G", Period: 40, Deadline: 1e9,
					Tasks: []model.Task{{Name: "t", WCET: 2, BCET: 2, Priority: 1}}},
			},
		}
		res, err := eng.Analyze(sys)
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for _, phase := range []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75} {
			srv := server.Polling{Q: a * serverPeriod, P: serverPeriod, Phase: phase}
			r, err := sim.Run(sys, []server.Server{srv}, sim.Config{Horizon: 400, Step: 0.002, Mode: sim.WorstCase})
			if err != nil {
				return nil, err
			}
			if m := r.MaxEndToEnd(0); m > worst {
				worst = m
			}
		}
		bound := res.TransactionResponse(0)
		out = append(out, PessimismRow{Alpha: a, Analyzed: bound, Simulated: worst, Ratio: bound / worst})
	}
	return out, nil
}

// RenderPessimism formats ablation A2.
func RenderPessimism(rows []PessimismRow) string {
	header := []string{"alpha", "analyzed R", "simulated worst", "bound/observed"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			fmt.Sprintf("%.2f", r.Alpha),
			fmt.Sprintf("%.3f", r.Analyzed), fmt.Sprintf("%.3f", r.Simulated),
			fmt.Sprintf("%.3f", r.Ratio),
		})
	}
	return renderTable("Ablation A2: pessimism of the linear (alpha, Delta, beta) model vs a concrete polling server", header, rs)
}

// SimVsAnalysisRow is one random system of ablation A3.
type SimVsAnalysisRow struct {
	Seed        int64
	Schedulable bool
	MaxRatio    float64 // max over transactions of simulated/analysed
	Violations  int     // simulated responses above the analysed bound
}

// SimVsAnalysis (ablation A3) is the soundness sweep: random systems
// are analysed and then simulated on polling servers realising exactly
// the analysed platforms, across alignments and execution modes; no
// simulated response may exceed its analysed bound.
func SimVsAnalysis(seeds []int64) ([]SimVsAnalysisRow, error) {
	var out []SimVsAnalysisRow
	eng := analysis.NewEngine(analysis.Options{})
	for _, seed := range seeds {
		sys, err := gen.System(smallRandomConfig(seed))
		if err != nil {
			return nil, err
		}
		res, err := eng.Analyze(sys)
		if err != nil {
			return nil, err
		}
		row := SimVsAnalysisRow{Seed: seed, Schedulable: res.Schedulable}
		if res.Schedulable {
			servers := make([]server.Server, len(sys.Platforms))
			for _, phase := range []float64{0, 0.37, 0.91} {
				for m, p := range sys.Platforms {
					srv, err := server.ForPlatform(p, phase*float64(m+1))
					if err != nil {
						return nil, err
					}
					servers[m] = srv
				}
				for _, mode := range []sim.ExecMode{sim.WorstCase, sim.RandomCase} {
					r, err := sim.Run(sys, servers, sim.Config{Horizon: 3000, Step: 0.01, Mode: mode, Seed: seed})
					if err != nil {
						return nil, err
					}
					for i := range sys.Transactions {
						bound := res.TransactionResponse(i)
						got := r.MaxEndToEnd(i)
						if bound > 0 && got/bound > row.MaxRatio {
							row.MaxRatio = got / bound
						}
						if got > bound+0.1 {
							row.Violations++
						}
					}
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderSimVsAnalysis formats ablation A3.
func RenderSimVsAnalysis(rows []SimVsAnalysisRow) string {
	header := []string{"seed", "schedulable", "max sim/analysis", "violations"}
	var rs [][]string
	for _, r := range rows {
		rs = append(rs, []string{
			fmt.Sprintf("%d", r.Seed), fmt.Sprintf("%v", r.Schedulable),
			fmt.Sprintf("%.3f", r.MaxRatio), fmt.Sprintf("%d", r.Violations),
		})
	}
	return renderTable("Ablation A3: simulated responses never exceed analysed bounds", header, rs)
}

// DesignSearch (ablation A5) runs the future-work optimisation on the
// paper's example: minimal per-platform bandwidths, within polling
// server families matching the paper's platform delays, that keep the
// system schedulable. The paper provisions Σα = 1.0 (0.4+0.4+0.2).
func DesignSearch() (string, *design.Result, error) {
	sys := PaperSystem()
	// Families with the periods implied by the paper's delays:
	// P = Δ/(2(1−α)) at the paper's α.
	fams := []design.Family{
		design.PollingFamily(1 / (2 * (1 - 0.4))), // Π1: P = 0.8333
		design.PollingFamily(1 / (2 * (1 - 0.4))), // Π2
		design.PollingFamily(2 / (2 * (1 - 0.2))), // Π3: P = 1.25
	}
	res, err := design.Minimize(sys, fams, design.Options{})
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("Ablation A5: platform-parameter optimisation (paper Sec. 5 future work)\n")
	for m, a := range res.Alphas {
		fmt.Fprintf(&b, "  Pi%d: alpha = %.3f (paper provisioned %g) -> %v\n",
			m+1, a, PaperPlatforms()[m].Alpha, res.Platforms[m])
	}
	fmt.Fprintf(&b, "  total bandwidth = %.3f (paper: 1.0); schedulable: %v; R(Gamma1) = %.2f\n",
		res.TotalBandwidth, res.Analysis.Schedulable, res.Analysis.TransactionResponse(0))
	return b.String(), res, nil
}

// NetworkedAssembly returns the paper assembly extended with a CAN-like
// bus (ablation A6): a fourth platform models the network, and every
// cross-platform RPC is bracketed by request/reply messages.
func NetworkedAssembly() (*component.Assembly, network.Bus) {
	bus := network.Bus{Name: "bus", BitsPerUnit: 1000, MaxFrameBits: 135}
	asm := PaperAssembly()
	share, _ := bus.Shared(0.5, 1) // synchronous window: half the bus, 1 ms cycle
	asm.Platforms = append(asm.Platforms, share)
	asm.Messages = &component.MessageModel{
		Network:     len(asm.Platforms) - 1,
		RequestWCET: bus.TransmissionTime(135), RequestBCET: bus.TransmissionTime(64),
		ReplyWCET: bus.TransmissionTime(135), ReplyBCET: bus.TransmissionTime(64),
		Priority: 5,
	}
	return asm, bus
}

// NetworkExperiment (ablation A6) analyses the example with RPC
// messages on a shared bus, reporting the end-to-end inflation caused
// by modelling the network as an abstract platform.
func NetworkExperiment() (string, error) {
	base, err := PaperAssembly().Transactions()
	if err != nil {
		return "", err
	}
	baseRes, err := analysis.Analyze(base, analysis.Options{})
	if err != nil {
		return "", err
	}
	asm, bus := NetworkedAssembly()
	sys, err := asm.Transactions()
	if err != nil {
		return "", err
	}
	if err := network.ApplyBlocking(sys, asm.Messages.Network, bus); err != nil {
		return "", err
	}
	res, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Ablation A6: RPC messages on a shared bus (Sec. 2.2.1)\n")
	fmt.Fprintf(&b, "  bus: %g bits/unit, max frame %g bits, window share 50%% of a 1-unit cycle\n",
		bus.BitsPerUnit, bus.MaxFrameBits)
	for i := range sys.Transactions {
		fmt.Fprintf(&b, "  %-22s R without messages = %-8.3f R with messages = %-8.3f (D=%g)\n",
			sys.Transactions[i].Name, baseRes.TransactionResponse(i), res.TransactionResponse(i),
			sys.Transactions[i].Deadline)
	}
	fmt.Fprintf(&b, "  schedulable with messages: %v\n", res.Schedulable)
	return b.String(), nil
}
