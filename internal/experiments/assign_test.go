package experiments

import (
	"reflect"
	"testing"

	"hsched/internal/service"
)

// TestPolicyAcceptance locks the A10 sweep's invariants on a small
// fixed-seeded run: deterministic results, Audsley dominating the
// closed-form policies (the bottom-up search is optimal for
// independent jittered task sets under the same bounded oracle), and
// the probe traffic riding the shared service's memo and delta paths.
func TestPolicyAcceptance(t *testing.T) {
	utils := []float64{0.5, 0.65}
	svc := service.New(service.Options{Shards: SweepShards(2)})
	pts, err := PolicyAcceptance(utils, 10, 2000, 2, svc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(utils) {
		t.Fatalf("got %d points, want %d", len(pts), len(utils))
	}
	for _, p := range pts {
		if p.Audsley < p.RM || p.Audsley < p.DM {
			t.Errorf("U=%v: audsley %.2f below rm %.2f / dm %.2f — the optimal search lost to a closed-form ranking",
				p.Utilization, p.Audsley, p.RM, p.DM)
		}
		for _, v := range []float64{p.RM, p.DM, p.HOPA, p.Audsley} {
			if v < 0 || v > 1 {
				t.Errorf("U=%v: acceptance ratio %v outside [0, 1]", p.Utilization, v)
			}
		}
	}
	st := svc.Stats()
	if st.Hits == 0 || st.DeltaHits == 0 {
		t.Errorf("policy sweep never shared probe traffic: %+v", st)
	}

	// Determinism: a rerun on a fresh service reproduces the points.
	again, err := PolicyAcceptance(utils, 10, 2000, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, again) {
		t.Errorf("sweep not deterministic:\n%+v\nvs\n%+v", pts, again)
	}
}
