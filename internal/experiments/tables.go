package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hsched/internal/analysis"
)

// renderTable formats a header row plus data rows as an aligned text
// table.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

func f(v float64) string { return fmt.Sprintf("%g", v) }

// Table1 reproduces Table 1 of the paper: the task parameters of the
// example, with the φmin column derived by the best-case bound of
// Section 3.2 (not hand-entered).
func Table1() string {
	sys := PaperSystem()
	starts, _ := analysis.BestBounds(sys, false)
	header := []string{"Task", "Platform", "Cbest", "C", "T", "D", "p", "phi_min"}
	var rows [][]string
	for i, tr := range sys.Transactions {
		for j, t := range tr.Tasks {
			rows = append(rows, []string{
				fmt.Sprintf("tau%d,%d", i+1, j+1),
				fmt.Sprintf("Pi%d", t.Platform+1),
				f(t.BCET), f(t.WCET), f(tr.Period), f(tr.Deadline),
				fmt.Sprintf("%d", t.Priority), f(starts[i][j]),
			})
		}
	}
	return renderTable("Table 1: parameters of the example", header, rows)
}

// Table2 reproduces Table 2: the platform parameters of the example.
func Table2() string {
	names := []string{"Pi1 (Sensor 1)", "Pi2 (Sensor 2)", "Pi3 (Integrator)"}
	header := []string{"Platform", "alpha", "delta", "beta"}
	var rows [][]string
	for m, p := range PaperPlatforms() {
		rows = append(rows, []string{names[m], f(p.Alpha), f(p.Delta), f(p.Beta)})
	}
	return renderTable("Table 2: parameters of the platforms", header, rows)
}

// Table3Data is the holistic iteration trace of transaction Γ1.
type Table3Data struct {
	// Iterations[k][j] is the (J, R) pair of τ1,(j+1) at round k.
	Iterations [][][2]float64
	// Final is the converged end-to-end response of Γ1.
	Final float64
	// Schedulable is the verdict.
	Schedulable bool
}

// Table3Compute runs the holistic analysis on the paper system and
// records the per-iteration jitters and response times of Γ1.
func Table3Compute() (*Table3Data, error) {
	sys := PaperSystem()
	data := &Table3Data{}
	opt := analysis.Options{
		Recorder: func(_ int, snap *analysis.Result) {
			row := make([][2]float64, len(snap.Tasks[0]))
			for j, tr := range snap.Tasks[0] {
				row[j] = [2]float64{tr.Jitter, tr.Worst}
			}
			data.Iterations = append(data.Iterations, row)
		},
	}
	res, err := analysis.Analyze(sys, opt)
	if err != nil {
		return nil, err
	}
	data.Final = res.TransactionResponse(0)
	data.Schedulable = res.Schedulable
	return data, nil
}

// Table3PaperValues returns the cells printed in the paper, for
// side-by-side comparison: paper[k][j] = (J, R) of τ1,(j+1) at round
// k. Cells the paper leaves blank (already converged) repeat the last
// printed value.
func Table3PaperValues() [][][2]float64 {
	return [][][2]float64{
		{{0, 12}, {0, 9}, {0, 10}, {0, 12}},
		{{0, 12}, {9, 18}, {5, 15}, {5, 17}},
		{{0, 12}, {9, 18}, {14, 24}, {10, 22}},
		{{0, 12}, {9, 18}, {14, 24}, {19, 39}},
		{{0, 12}, {9, 18}, {14, 24}, {19, 39}},
	}
}

// Table3 renders the reproduced iteration trace next to the paper's
// printed values, including the documented divergence on the final
// R1,4 cells (the paper prints 39 where its own equations give 31; see
// EXPERIMENTS.md).
func Table3() (string, error) {
	data, err := Table3Compute()
	if err != nil {
		return "", err
	}
	paper := Table3PaperValues()
	header := []string{"Task"}
	for k := range data.Iterations {
		header = append(header, fmt.Sprintf("J(%d)", k), fmt.Sprintf("R(%d)", k), "paper")
	}
	var rows [][]string
	for j := 0; j < 4; j++ {
		row := []string{fmt.Sprintf("tau1,%d", j+1)}
		for k := range data.Iterations {
			cell := data.Iterations[k][j]
			ref := "-"
			if k < len(paper) {
				ref = fmt.Sprintf("(%g, %g)", paper[k][j][0], paper[k][j][1])
			}
			row = append(row, f(cell[0]), f(cell[1]), ref)
		}
		rows = append(rows, row)
	}
	s := renderTable("Table 3: holistic iterations of Gamma1 (computed vs paper)", header, rows)
	s += fmt.Sprintf("Converged end-to-end R(Gamma1) = %g (paper prints 39; its own equations give 31 — see EXPERIMENTS.md). Schedulable: %v.\n",
		data.Final, data.Schedulable)
	return s, nil
}
