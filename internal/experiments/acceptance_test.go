package experiments

import (
	"strings"
	"testing"
)

// TestAcceptanceRatioInvariants: the admitted fractions are monotone
// across analysis strength (exact ≥ tight ≥ approx is not guaranteed
// pointwise between tight and exact, but exact ≥ approx and
// tight ≥ approx are), and all fractions decrease-ish with load (the
// sweep asserts the approximate-implies-exact invariant internally).
func TestAcceptanceRatioInvariants(t *testing.T) {
	pts, err := AcceptanceRatio([]float64{0.3, 0.8}, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Exact < p.Approx-1e-9 {
			t.Errorf("U=%v: exact ratio %v below approximate %v", p.Utilization, p.Exact, p.Approx)
		}
		if p.Tight < p.Approx-1e-9 {
			t.Errorf("U=%v: tight ratio %v below approximate %v", p.Utilization, p.Tight, p.Approx)
		}
		if p.Approx < 0 || p.Approx > 1 {
			t.Errorf("U=%v: ratio %v outside [0, 1]", p.Utilization, p.Approx)
		}
	}
	if pts[1].Approx > pts[0].Approx {
		t.Errorf("acceptance grew with load: %v -> %v", pts[0].Approx, pts[1].Approx)
	}
	out := RenderAcceptanceRatio(pts)
	if !strings.Contains(out, "Ablation A8") {
		t.Errorf("render missing title")
	}
}

// TestEDFvsFPNeverWorse: EDF, optimal on a sequential resource, never
// needs more bandwidth than fixed priorities for the same workload.
func TestEDFvsFPNeverWorse(t *testing.T) {
	rows, err := EDFvsFP()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no workloads")
	}
	for _, r := range rows {
		if r.AlphaEDF > r.AlphaFP+5e-3 {
			t.Errorf("%s: EDF bandwidth %v above FP %v", r.Name, r.AlphaEDF, r.AlphaFP)
		}
		if r.AlphaEDF < r.Utilization-1e-9 {
			t.Errorf("%s: EDF bandwidth %v below utilisation %v", r.Name, r.AlphaEDF, r.Utilization)
		}
	}
	if out := RenderEDFvsFP(rows); !strings.Contains(out, "Ablation A7") {
		t.Errorf("render missing title")
	}
}
