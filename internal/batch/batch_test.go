package batch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndValues(t *testing.T) {
	out, err := Map(100, Options{Workers: 7}, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(i int) (string, error) { return fmt.Sprintf("v%d", i*3), nil }
	a, err := Map(57, Options{Workers: 1}, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(57, Options{Workers: 16}, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(1000, Options{Workers: 4}, func(i int) (int, error) {
		calls.Add(1)
		if i == 17 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Cancellation: nowhere near all 1000 items should have run.
	if calls.Load() > 500 {
		t.Errorf("%d calls after early error; cancellation ineffective", calls.Load())
	}
}

func TestMapEdgeCases(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("n=0: %v, %v", out, err)
	}
	if _, err := Map(-1, Options{}, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Errorf("negative n accepted")
	}
	// More workers than items.
	out, err = Map(3, Options{Workers: 64}, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Errorf("workers>n: %v, %v", out, err)
	}
}

func TestProgressMonotone(t *testing.T) {
	var seen []int
	_, err := Map(50, Options{Workers: 8, Progress: func(done, total int) {
		if total != 50 {
			t.Errorf("total = %d", total)
		}
		seen = append(seen, done)
	}}, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("%d progress calls, want 50", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("progress not monotone: %v", seen)
		}
	}
}

func TestMapWorkersStatePerWorker(t *testing.T) {
	// Every worker gets exactly one state; the state is visible to all
	// of that worker's calls and is never shared between goroutines.
	var states atomic.Int64
	type counter struct{ calls int }
	out, err := MapWorkers(200, Options{Workers: 4},
		func() *counter { states.Add(1); return &counter{} },
		func(s *counter, i int) (int, error) {
			s.calls++
			return i + s.calls*0, nil // result depends only on i
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := states.Load(); got < 1 || got > 4 {
		t.Errorf("%d states created, want 1..4", got)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapWorkersErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapWorkers(100, Options{Workers: 3},
		func() int { return 0 },
		func(_ int, i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestCount(t *testing.T) {
	c, err := Count(100, Options{Workers: 5}, func(i int) (bool, error) {
		return i%3 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c != 34 {
		t.Errorf("Count = %d, want 34", c)
	}
	boom := errors.New("boom")
	if _, err := Count(10, Options{}, func(i int) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Errorf("Count error = %v", err)
	}
}

func TestMapRangeCoversAndOrders(t *testing.T) {
	for _, tc := range []struct{ n, chunks, slots int }{
		{0, 4, 2}, {1, 4, 2}, {10, 3, 0}, {100, 7, 3}, {5, 9, 8}, {64, 64, 4},
	} {
		bud := NewBudget(tc.slots)
		seen := make([]atomic.Int64, tc.n)
		out, err := MapRange(tc.n, tc.chunks, bud, func(chunk, lo, hi int) ([2]int, error) {
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
			return [2]int{lo, hi}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Chunks are contiguous, ordered, and cover [0, n) exactly once.
		pos := 0
		for c, span := range out {
			if span[0] != pos || span[1] < span[0] {
				t.Fatalf("n=%d chunks=%d: chunk %d spans %v, want start %d", tc.n, tc.chunks, c, span, pos)
			}
			pos = span[1]
		}
		if pos != tc.n {
			t.Fatalf("n=%d chunks=%d: covered %d items", tc.n, tc.chunks, pos)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("item %d evaluated %d times", i, got)
			}
		}
		// Every borrowed slot was returned.
		free := 0
		for bud.TryAcquire() {
			free++
		}
		if free != tc.slots {
			t.Fatalf("budget leaked: %d of %d slots free after MapRange", free, tc.slots)
		}
	}
}

// TestMapRangeAlignedBoundaries: interior chunk boundaries land on
// align multiples, chunks stay contiguous and ordered, the union is
// exactly [0, n), and chunks emptied by the rounding still invoke fn
// (callers depend on one result per chunk index).
func TestMapRangeAlignedBoundaries(t *testing.T) {
	for _, tc := range []struct{ n, chunks, align int }{
		{100, 7, 8}, {64, 4, 16}, {64, 4, 64}, // align ≥ span: all but one chunk empty
		{10, 3, 3}, {49, 8, 7}, {100, 7, 1}, {5, 9, 4},
	} {
		seen := make([]atomic.Int64, tc.n)
		calls := atomic.Int64{}
		out, err := MapRangeAligned(tc.n, tc.chunks, tc.align, NewBudget(2), func(chunk, lo, hi int) ([2]int, error) {
			calls.Add(1)
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
			return [2]int{lo, hi}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(calls.Load()) != len(out) {
			t.Fatalf("n=%d chunks=%d align=%d: fn called %d times for %d chunks (empty chunks must still be called)",
				tc.n, tc.chunks, tc.align, calls.Load(), len(out))
		}
		pos := 0
		for c, span := range out {
			if span[0] != pos || span[1] < span[0] {
				t.Fatalf("n=%d chunks=%d align=%d: chunk %d spans %v, want start %d",
					tc.n, tc.chunks, tc.align, c, span, pos)
			}
			if c > 0 && span[0]%tc.align != 0 {
				t.Fatalf("n=%d chunks=%d align=%d: chunk %d starts at %d, not an align multiple",
					tc.n, tc.chunks, tc.align, c, span[0])
			}
			pos = span[1]
		}
		if pos != tc.n {
			t.Fatalf("n=%d chunks=%d align=%d: covered %d items", tc.n, tc.chunks, tc.align, pos)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("item %d evaluated %d times", i, got)
			}
		}
	}
}

// TestMapRangeAlignedAlignOneMatchesMapRange: align ≤ 1 must reproduce
// MapRange's spans exactly — MapRange delegates, so a drift here would
// silently change every existing caller.
func TestMapRangeAlignedAlignOneMatchesMapRange(t *testing.T) {
	span := func(chunk, lo, hi int) ([2]int, error) { return [2]int{lo, hi}, nil }
	want, err := MapRange(100, 7, nil, span)
	if err != nil {
		t.Fatal(err)
	}
	for _, align := range []int{1, 0, -3} {
		got, err := MapRangeAligned(100, 7, align, nil, span)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("align=%d: %d chunks, want %d", align, len(got), len(want))
		}
		for c := range got {
			if got[c] != want[c] {
				t.Fatalf("align=%d chunk %d: %v, want %v", align, c, got[c], want[c])
			}
		}
	}
}

func TestMapRangeNilBudgetRunsInline(t *testing.T) {
	out, err := MapRange(10, 4, nil, func(chunk, lo, hi int) (int, error) { return hi - lo, nil })
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range out {
		total += v
	}
	if total != 10 {
		t.Fatalf("covered %d of 10 items", total)
	}
}

func TestMapRangeFirstErrorInChunkOrder(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	_, err := MapRange(8, 8, NewBudget(4), func(chunk, lo, hi int) (int, error) {
		switch chunk {
		case 2:
			return 0, errA
		case 6:
			return 0, errB
		}
		return 0, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the chunk-2 error", err)
	}
}

func TestBudgetBoundsConcurrency(t *testing.T) {
	bud := NewBudget(3)
	var active, peak atomic.Int64
	_, err := MapRange(64, 32, bud, func(chunk, lo, hi int) (int, error) {
		a := active.Add(1)
		for {
			p := peak.Load()
			if a <= p || peak.CompareAndSwap(p, a) {
				break
			}
		}
		active.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Caller + at most 3 borrowed goroutines.
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent chunk evaluations, budget allows 4", p)
	}
}

func TestMapLendReleasesWorkers(t *testing.T) {
	bud := NewBudget(0)
	_, err := Map(8, Options{Workers: 4, Lend: bud}, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Every exiting worker donated its slot.
	free := 0
	for bud.TryAcquire() {
		free++
	}
	if free != 4 {
		t.Fatalf("lend released %d slots, want 4", free)
	}
}
