package batch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndValues(t *testing.T) {
	out, err := Map(100, Options{Workers: 7}, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(i int) (string, error) { return fmt.Sprintf("v%d", i*3), nil }
	a, err := Map(57, Options{Workers: 1}, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(57, Options{Workers: 16}, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(1000, Options{Workers: 4}, func(i int) (int, error) {
		calls.Add(1)
		if i == 17 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Cancellation: nowhere near all 1000 items should have run.
	if calls.Load() > 500 {
		t.Errorf("%d calls after early error; cancellation ineffective", calls.Load())
	}
}

func TestMapEdgeCases(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("n=0: %v, %v", out, err)
	}
	if _, err := Map(-1, Options{}, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Errorf("negative n accepted")
	}
	// More workers than items.
	out, err = Map(3, Options{Workers: 64}, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Errorf("workers>n: %v, %v", out, err)
	}
}

func TestProgressMonotone(t *testing.T) {
	var seen []int
	_, err := Map(50, Options{Workers: 8, Progress: func(done, total int) {
		if total != 50 {
			t.Errorf("total = %d", total)
		}
		seen = append(seen, done)
	}}, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("%d progress calls, want 50", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("progress not monotone: %v", seen)
		}
	}
}

func TestMapWorkersStatePerWorker(t *testing.T) {
	// Every worker gets exactly one state; the state is visible to all
	// of that worker's calls and is never shared between goroutines.
	var states atomic.Int64
	type counter struct{ calls int }
	out, err := MapWorkers(200, Options{Workers: 4},
		func() *counter { states.Add(1); return &counter{} },
		func(s *counter, i int) (int, error) {
			s.calls++
			return i + s.calls*0, nil // result depends only on i
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := states.Load(); got < 1 || got > 4 {
		t.Errorf("%d states created, want 1..4", got)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapWorkersErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapWorkers(100, Options{Workers: 3},
		func() int { return 0 },
		func(_ int, i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestCount(t *testing.T) {
	c, err := Count(100, Options{Workers: 5}, func(i int) (bool, error) {
		return i%3 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c != 34 {
		t.Errorf("Count = %d, want 34", c)
	}
	boom := errors.New("boom")
	if _, err := Count(10, Options{}, func(i int) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Errorf("Count error = %v", err)
	}
}
