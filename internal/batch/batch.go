// Package batch runs schedulability analyses and simulations over
// large collections of systems in parallel. Evaluation sweeps
// (acceptance ratios, soundness campaigns, design-space exploration)
// are embarrassingly parallel: every system is independent, so the
// package provides a deterministic parallel map with bounded workers,
// first-error propagation, optional progress reporting and per-worker
// state (MapWorkers) for reusing expensive resources such as
// analysis engines across items.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes a batch run.
type Options struct {
	// Workers bounds the concurrent evaluations; 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after every completed item
	// with the number of items done so far. It must be safe for
	// concurrent use (the package serialises calls).
	Progress func(done, total int)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(i) for i in [0, n) on a bounded worker pool and
// collects the results in index order, so the output is deterministic
// regardless of scheduling. The first error cancels the remaining
// work (already-started evaluations finish) and is returned.
func Map[T any](n int, opt Options, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkers(n, opt,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapWorkers is Map with per-worker state: newState runs once in each
// worker goroutine and the returned state is handed to every fn call
// that worker executes. It is the hook for reusing an expensive,
// non-shareable resource — typically an analysis.Engine — across the
// items of a sweep without locking and without one instance per item.
// State is never shared between goroutines, so fn may mutate it
// freely; results are still collected in index order.
func MapWorkers[S, T any](n int, opt Options, newState func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("batch: negative item count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}

	var (
		next     atomic.Int64
		done     atomic.Int64
		firstErr error
		errOnce  sync.Once
		failed   atomic.Bool
		progMu   sync.Mutex
		wg       sync.WaitGroup
	)

	workers := opt.workers()
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(state, i)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("batch: item %d: %w", i, err)
						failed.Store(true)
					})
					return
				}
				out[i] = v
				if opt.Progress != nil {
					d := int(done.Add(1))
					progMu.Lock()
					opt.Progress(d, n)
					progMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Count evaluates pred(i) for i in [0, n) in parallel and returns how
// many returned true — the shape of every acceptance-ratio experiment.
func Count(n int, opt Options, pred func(i int) (bool, error)) (int, error) {
	hits, err := Map(n, opt, func(i int) (bool, error) { return pred(i) })
	if err != nil {
		return 0, err
	}
	c := 0
	for _, h := range hits {
		if h {
			c++
		}
	}
	return c, nil
}
