// Package batch runs schedulability analyses and simulations over
// large collections of systems in parallel. Evaluation sweeps
// (acceptance ratios, soundness campaigns, design-space exploration)
// are embarrassingly parallel: every system is independent, so the
// package provides a deterministic parallel map with bounded workers,
// first-error propagation, optional progress reporting and per-worker
// state (MapWorkers) for reusing expensive resources such as
// analysis engines across items.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes a batch run.
type Options struct {
	// Workers bounds the concurrent evaluations; 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after every completed item
	// with the number of items done so far. It must be safe for
	// concurrent use (the package serialises calls).
	Progress func(done, total int)

	// Lend, when non-nil, receives one Release per worker goroutine as
	// it exits, donating the slot the worker no longer occupies. It is
	// the bridge between a Map's outer fan-out and the nested MapRange
	// calls inside its items: a round whose cheap items drain early
	// hands the freed workers to the expensive items still sweeping,
	// keeping the global goroutine bound while eliminating the
	// straggler tail.
	Lend *Budget
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(i) for i in [0, n) on a bounded worker pool and
// collects the results in index order, so the output is deterministic
// regardless of scheduling. The first error cancels the remaining
// work (already-started evaluations finish) and is returned.
func Map[T any](n int, opt Options, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkers(n, opt,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapWorkers is Map with per-worker state: newState runs once in each
// worker goroutine and the returned state is handed to every fn call
// that worker executes. It is the hook for reusing an expensive,
// non-shareable resource — typically an analysis.Engine — across the
// items of a sweep without locking and without one instance per item.
// State is never shared between goroutines, so fn may mutate it
// freely; results are still collected in index order.
func MapWorkers[S, T any](n int, opt Options, newState func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("batch: negative item count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}

	var (
		next     atomic.Int64
		done     atomic.Int64
		firstErr error
		errOnce  sync.Once
		failed   atomic.Bool
		progMu   sync.Mutex
		wg       sync.WaitGroup
	)

	workers := opt.workers()
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if opt.Lend != nil {
				defer opt.Lend.Release()
			}
			state := newState()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(state, i)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("batch: item %d: %w", i, err)
						failed.Store(true)
					})
					return
				}
				out[i] = v
				if opt.Progress != nil {
					d := int(done.Add(1))
					progMu.Lock()
					opt.Progress(d, n)
					progMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Budget is a shared, non-blocking bound on borrowed goroutines: a
// semaphore that hands out slots while any remain and refuses
// immediately otherwise. It is how nested parallelism (a huge exact
// scenario sweep inside an already-parallel analysis round) stays
// within one global goroutine budget instead of multiplying the two
// fan-outs: the outer stage sizes the budget to its spare workers, the
// inner stages borrow what they can and run inline when nothing is
// left. All methods are safe for concurrent use.
type Budget struct {
	free atomic.Int64
	cap  int64
}

// NewBudget returns a budget with n slots.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.Reset(n)
	return b
}

// Reset resizes the budget to n free slots. It must not race with
// TryAcquire/Release: call it only between the parallel phases that
// draw on the budget (the analysis engine resets per round, before the
// round's workers start).
func (b *Budget) Reset(n int) {
	if n < 0 {
		n = 0
	}
	b.cap = int64(n)
	b.free.Store(int64(n))
}

// Cap returns the budget's total slot count (free + acquired).
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return int(b.cap)
}

// TryAcquire takes one slot if any is free, without blocking.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return false
	}
	for {
		n := b.free.Load()
		if n <= 0 {
			return false
		}
		if b.free.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// Release returns a previously acquired slot.
func (b *Budget) Release() { b.free.Add(1) }

// MapRange splits [0, n) into `chunks` contiguous, near-equal ranges
// and evaluates fn(chunk, lo, hi) for each, collecting the results in
// chunk-index order so the output is deterministic regardless of
// scheduling. The calling goroutine always participates; additional
// goroutines are borrowed from bud — re-tried at every chunk boundary,
// so slots an enclosing Map's workers lend back mid-sweep (see
// Options.Lend) are picked up within one chunk of becoming free. A nil
// or exhausted budget runs the whole range inline on the caller.
// Unlike Map, chunks are not cancelled on error — fn is expected to
// poll its own cancellation signal — and the first error in
// chunk-index order is returned, keeping the error deterministic too.
func MapRange[T any](n, chunks int, bud *Budget, fn func(chunk, lo, hi int) (T, error)) ([]T, error) {
	return MapRangeAligned(n, chunks, 1, bud, fn)
}

// MapRangeAligned is MapRange with every interior chunk boundary
// rounded down to a multiple of align, so a chunk never splits an
// align-sized block of the range. It is the contract the
// branch-and-bound exact sweep needs: aligning chunk boundaries to a
// cursor stride keeps whole subtrees inside one chunk, so a prefix
// bound refuted once is refuted for the entire subtree instead of
// re-checked across a chunk seam. Rounding can empty a chunk
// (lo == hi); fn is still called for it, so callers relying on
// per-chunk zero values being meaningful must handle empty spans.
// align < 1 is treated as 1, which makes the split identical to
// MapRange's.
func MapRangeAligned[T any](n, chunks, align int, bud *Budget, fn func(chunk, lo, hi int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("batch: negative range size %d", n)
	}
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = min(n, 1)
	}
	out := make([]T, chunks)
	if chunks == 0 {
		return out, nil
	}
	if align < 1 {
		align = 1
	}
	errs := make([]error, chunks)
	base, rem := n/chunks, n%chunks
	span := func(c int) (lo, hi int) {
		lo = c*base + min(c, rem)
		hi = lo + base
		if c < rem {
			hi++
		}
		if align > 1 {
			lo -= lo % align
			if c+1 < chunks {
				hi -= hi % align
			}
		}
		return lo, hi
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
		run  func()
	)
	run = func() {
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			// Before settling into this chunk, try to put one more
			// borrowed goroutine on the remaining ones; helpers ramp up
			// the same way, so freed budget is absorbed geometrically.
			// (The helper's wg.Add runs while this worker is still
			// registered, so the counter can never be zero concurrently
			// with the caller's Wait.)
			if int(next.Load()) < chunks && bud.TryAcquire() {
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer bud.Release()
					run()
				}()
			}
			lo, hi := span(c)
			out[c], errs[c] = fn(c, lo, hi)
		}
	}
	run()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Count evaluates pred(i) for i in [0, n) in parallel and returns how
// many returned true — the shape of every acceptance-ratio experiment.
func Count(n int, opt Options, pred func(i int) (bool, error)) (int, error) {
	hits, err := Map(n, opt, func(i int) (bool, error) { return pred(i) })
	if err != nil {
		return 0, err
	}
	c := 0
	for _, h := range hits {
		if h {
			c++
		}
	}
	return c, nil
}
