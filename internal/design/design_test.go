package design_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/design"
	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/service"
)

func TestFamilies(t *testing.T) {
	pf := design.PollingFamily(4)
	p := pf(0.25)
	if p.Alpha != 0.25 || p.Delta != 6 || math.Abs(p.Beta-1.5) > 1e-12 {
		t.Errorf("design.PollingFamily(4)(0.25) = %v, want (0.25, 6, 1.5)", p)
	}
	if pf(1) != platform.Dedicated() {
		t.Errorf("design.PollingFamily at α=1 should be dedicated")
	}
	tf := design.TDMAFamily(4)
	p = tf(0.25)
	if p.Alpha != 0.25 || p.Delta != 3 || math.Abs(p.Beta-0.75) > 1e-12 {
		t.Errorf("design.TDMAFamily(4)(0.25) = %v, want (0.25, 3, 0.75)", p)
	}
	qf := design.PfairFamily(0.5)
	p = qf(0.25)
	if p.Alpha != 0.25 || p.Delta != 2 || p.Beta != 0.5 {
		t.Errorf("design.PfairFamily(0.5)(0.25) = %v, want (0.25, 2, 0.5)", p)
	}
}

// TestMinimizePaperExample: the optimiser beats the paper's manual
// provisioning of Σα = 1.0 while staying schedulable, and the final
// parameters verify under an independent analysis call.
func TestMinimizePaperExample(t *testing.T) {
	sys := experiments.PaperSystem()
	fams := []design.Family{design.PollingFamily(0.8333), design.PollingFamily(0.8333), design.PollingFamily(1.25)}
	res, err := design.Minimize(sys, fams, design.Options{})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !res.Analysis.Schedulable {
		t.Fatalf("optimum reported unschedulable")
	}
	if res.TotalBandwidth >= 1.0 {
		t.Errorf("total bandwidth %v should beat the paper's 1.0", res.TotalBandwidth)
	}
	// Demand lower bounds: no platform below its raw utilisation.
	low := make([]float64, 3)
	for _, tr := range sys.Transactions {
		for _, task := range tr.Tasks {
			low[task.Platform] += task.WCET / tr.Period
		}
	}
	for m, a := range res.Alphas {
		if a < low[m]-1e-9 {
			t.Errorf("Π%d: α = %v below demand %v", m+1, a, low[m])
		}
	}
	// Independent verification of the returned parameters.
	check := sys.Clone()
	check.Platforms = res.Platforms
	verdict, err := analysis.Analyze(check, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Schedulable {
		t.Errorf("returned parameters do not verify")
	}
}

// TestMinimizeInfeasible: a system that misses deadlines even on
// dedicated processors is rejected up front.
func TestMinimizeInfeasible(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Period: 10, Deadline: 1, Tasks: []model.Task{{WCET: 5, BCET: 5, Priority: 1}}},
		},
	}
	if _, err := design.Minimize(sys, []design.Family{design.PollingFamily(1)}, design.Options{}); err == nil {
		t.Fatalf("infeasible system accepted")
	}
}

// TestMinimizeFamilyCountMismatch: one family per platform is
// mandatory.
func TestMinimizeFamilyCountMismatch(t *testing.T) {
	sys := experiments.PaperSystem()
	if _, err := design.Minimize(sys, []design.Family{design.PollingFamily(1)}, design.Options{}); err == nil {
		t.Fatalf("family count mismatch accepted")
	}
}

// TestMinimizeDoesNotMutateInput: the caller's platforms are left
// untouched.
func TestMinimizeDoesNotMutateInput(t *testing.T) {
	sys := experiments.PaperSystem()
	before := sys.Platforms[2]
	fams := []design.Family{design.PollingFamily(0.8333), design.PollingFamily(0.8333), design.PollingFamily(1.25)}
	if _, err := design.Minimize(sys, fams, design.Options{Tolerance: 1e-2}); err != nil {
		t.Fatal(err)
	}
	if sys.Platforms[2] != before {
		t.Errorf("input platforms mutated")
	}
}

// TestTDMADominatesPollingAtEqualBandwidth: at equal frame/period and
// equal bandwidth, a fixed TDMA slot has half the delay of a floating
// periodic server, so any bandwidth vector feasible under polling
// servers stays feasible when the platforms are swapped for TDMA
// partitions. (Comparing the two heuristic optima directly would not
// be sound — coordinate descent may land in different local optima.)
func TestTDMADominatesPollingAtEqualBandwidth(t *testing.T) {
	sys := experiments.PaperSystem()
	periods := []float64{0.8333, 0.8333, 1.25}
	var polls, tdmas []design.Family
	for _, p := range periods {
		polls = append(polls, design.PollingFamily(p))
		tdmas = append(tdmas, design.TDMAFamily(p))
	}
	pollRes, err := design.Minimize(sys, polls, design.Options{})
	if err != nil {
		t.Fatal(err)
	}
	swap := sys.Clone()
	for m, a := range pollRes.Alphas {
		swap.Platforms[m] = tdmas[m](a)
	}
	verdict, err := analysis.Analyze(swap, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Schedulable {
		t.Errorf("TDMA platforms at the polling-feasible bandwidths %v are not schedulable", pollRes.Alphas)
	}
}

// TestMinimizeCacheReducesAnalyses: routed through a shared analysis
// service, the search's revisited parameter points are answered by the
// verdict memo — same optimum, measurably fewer engine analyses than
// with the memo disabled.
func TestMinimizeCacheReducesAnalyses(t *testing.T) {
	sys := experiments.PaperSystem()
	fams := []design.Family{design.PollingFamily(0.8333), design.PollingFamily(0.8333), design.PollingFamily(1.25)}

	cached := service.New(service.Options{Shards: 1})
	resOn, err := design.Minimize(sys, fams, design.Options{Service: cached})
	if err != nil {
		t.Fatal(err)
	}
	uncached := service.New(service.Options{Shards: 1, Capacity: -1})
	resOff, err := design.Minimize(sys, fams, design.Options{Service: uncached})
	if err != nil {
		t.Fatal(err)
	}

	for m := range resOn.Alphas {
		if resOn.Alphas[m] != resOff.Alphas[m] {
			t.Fatalf("optimum differs with cache on/off: %v vs %v", resOn.Alphas, resOff.Alphas)
		}
	}
	on, off := cached.Stats(), uncached.Stats()
	if on.Queries != off.Queries {
		t.Fatalf("query counts differ: %d vs %d (the search should be oblivious to caching)", on.Queries, off.Queries)
	}
	if off.Hits != 0 || off.Misses != off.Queries {
		t.Fatalf("uncached service stats inconsistent: %+v", off)
	}
	if on.Hits == 0 || on.Misses >= off.Misses {
		t.Fatalf("memo ineffective: cached %+v vs uncached %+v", on, off)
	}
	t.Logf("design search: %d oracle queries, %d analyses with memo vs %d without (%.0f%% saved)",
		on.Queries, on.Misses, off.Misses, 100*float64(off.Misses-on.Misses)/float64(off.Misses))
}

// TestMinimizeDeltaPath: the feasibility oracle's probes are chains of
// one-platform-apart systems, which the service routes through the
// incremental analysis — measurably fewer task-rounds computed, same
// optimum as with the delta path disabled.
func TestMinimizeDeltaPath(t *testing.T) {
	sys := experiments.PaperSystem()
	fams := []design.Family{design.PollingFamily(0.8333), design.PollingFamily(0.8333), design.PollingFamily(1.25)}

	delta := service.New(service.Options{Shards: 1})
	resOn, err := design.Minimize(sys, fams, design.Options{Service: delta})
	if err != nil {
		t.Fatal(err)
	}
	cold := service.New(service.Options{Shards: 1, DeltaWindow: -1})
	resOff, err := design.Minimize(sys, fams, design.Options{Service: cold})
	if err != nil {
		t.Fatal(err)
	}
	for m := range resOn.Alphas {
		if resOn.Alphas[m] != resOff.Alphas[m] {
			t.Fatalf("optimum differs with delta on/off: %v vs %v — the incremental path must be invisible", resOn.Alphas, resOff.Alphas)
		}
	}
	on := delta.Stats()
	if on.DeltaHits == 0 {
		t.Fatalf("stats = %+v: the search's one-platform-apart probes never ran incrementally", on)
	}
	if on.RoundsSaved <= 0 {
		t.Fatalf("stats = %+v: RoundsSaved must be positive for a delta-assisted search", on)
	}
	t.Logf("design search: %d analyses, %d incremental, %d task-rounds saved",
		on.Misses, on.DeltaHits, on.RoundsSaved)
}

// TestMinimizeContextCancelled: a cancelled context aborts the search
// — including against a warm shared service, where every oracle probe
// would otherwise be answered by the memo without ever observing the
// context.
func TestMinimizeContextCancelled(t *testing.T) {
	sys := experiments.PaperSystem()
	fams := []design.Family{design.PollingFamily(0.8333), design.PollingFamily(0.8333), design.PollingFamily(1.25)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := design.MinimizeContext(ctx, sys, fams, design.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	svc := service.New(service.Options{Shards: 1})
	if _, err := design.MinimizeContext(context.Background(), sys, fams, design.Options{Service: svc}); err != nil {
		t.Fatalf("warm-up search: %v", err)
	}
	if _, err := design.MinimizeContext(ctx, sys, fams, design.Options{Service: svc}); !errors.Is(err, context.Canceled) {
		t.Fatalf("warm service: err = %v, want context.Canceled", err)
	}
}
