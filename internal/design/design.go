// Package design implements the platform-parameter optimisation the
// paper lists as future work (Section 5): "an optimization method to
// assign the parameters (α, β, Δ) to each abstract platform" so that
// the system is schedulable with the least total bandwidth.
//
// A platform is searched within a Family: a one-parameter curve from
// bandwidth α to a full (α, Δ, β) triple, typically the periodic
// server of a fixed period (larger budget ⇒ larger rate and smaller
// delay). Minimize runs coordinate descent over the platforms, each
// step binary-searching the minimal feasible bandwidth of one platform
// while the others stay fixed; schedulability is decided by the
// holistic analysis of package analysis.
package design

import (
	"context"
	"fmt"
	"math"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/service"
)

// Family maps a bandwidth α ∈ (0, 1] to full platform parameters.
type Family func(alpha float64) platform.Params

// PollingFamily returns the family of periodic servers with the given
// replenishment period: α ↦ (α, 2P(1−α), 2Pα(1−α)).
func PollingFamily(period float64) Family {
	return func(alpha float64) platform.Params {
		if alpha >= 1 {
			return platform.Dedicated()
		}
		return platform.PeriodicServer{Q: alpha * period, P: period}.Params()
	}
}

// TDMAFamily returns the family of static partitions with the given
// frame: α ↦ (α, F(1−α), Fα(1−α)).
func TDMAFamily(frame float64) Family {
	return func(alpha float64) platform.Params {
		if alpha >= 1 {
			return platform.Dedicated()
		}
		return platform.TDMA{Slot: alpha * frame, Frame: frame}.Params()
	}
}

// PfairFamily returns the family of proportional-share servers with
// the given quantum: α ↦ (α, q/α, q).
func PfairFamily(quantum float64) Family {
	return func(alpha float64) platform.Params {
		if alpha >= 1 {
			return platform.Dedicated()
		}
		return platform.Pfair{Weight: alpha, Quantum: quantum}.Params()
	}
}

// Options tunes Minimize.
type Options struct {
	// Tolerance is the bandwidth resolution of the binary search;
	// 0 selects 1e-3.
	Tolerance float64
	// Passes bounds the coordinate-descent sweeps; 0 selects 8.
	Passes int
	// Analysis configures the schedulability oracle.
	Analysis analysis.Options
	// Service, when non-nil, is the analysis service the feasibility
	// oracle queries — sharing it across searches shares its engine
	// pool, verdict memo and delta-seed pool. When nil, Minimize runs
	// a private single-shard service for the duration of the search:
	// the binary searches and coordinate-descent passes re-probe
	// identical (system, platform-parameters) points, which the memo
	// answers outright, and every fresh probe is one platform away
	// from a resident result, which the service's incremental path
	// re-analyses by replaying the unaffected transactions (see
	// ServiceStats.DeltaHits / RoundsSaved).
	Service *service.Service
}

func (o Options) tolerance() float64 {
	if o.Tolerance <= 0 {
		return 1e-3
	}
	return o.Tolerance
}

func (o Options) passes() int {
	if o.Passes <= 0 {
		return 8
	}
	return o.Passes
}

// Result reports the outcome of a Minimize run.
type Result struct {
	// Alphas are the final per-platform bandwidths.
	Alphas []float64
	// Platforms are the corresponding full parameters.
	Platforms []platform.Params
	// TotalBandwidth is Σ Alphas, the minimised objective.
	TotalBandwidth float64
	// Analysis is the verdict at the final parameters. It may be
	// shared with the feasibility service's verdict memo (and thus
	// with other callers): treat it as read-only.
	Analysis *analysis.Result
}

// Minimize searches, within one Family per platform, the per-platform
// bandwidths minimising total bandwidth subject to schedulability.
// The input system's platform parameters are ignored (replaced by the
// family values); the system must be schedulable at full bandwidth
// (α = 1 everywhere), otherwise an error is returned.
func Minimize(sys *model.System, families []Family, opt Options) (*Result, error) {
	return MinimizeContext(context.Background(), sys, families, opt)
}

// MinimizeContext is Minimize with cancellation: a cancelled context
// aborts the search between (and inside) oracle queries and returns an
// error wrapping ctx.Err().
func MinimizeContext(ctx context.Context, sys *model.System, families []Family, opt Options) (*Result, error) {
	if len(families) != len(sys.Platforms) {
		return nil, fmt.Errorf("design: %d families for %d platforms", len(families), len(sys.Platforms))
	}
	svc := opt.Service
	if svc == nil {
		// A private single-shard service: the search is sequential, so
		// one resident engine suffices; the memo is what matters here.
		svc = service.New(service.Options{Shards: 1})
	}

	// All oracle traffic flows through one probe session: the searches
	// below move one platform's parameters at a time, so the session's
	// pinned previous result seeds each fresh probe's incremental
	// re-analysis deterministically instead of relying on what the
	// shared delta pool happens to retain.
	sess := svc.NewSession()

	work := sys.Clone()
	alphas := make([]float64, len(families))
	for m := range alphas {
		alphas[m] = 1
		work.Platforms[m] = families[m](1)
	}
	res, err := sess.AnalyzeOptions(ctx, work, opt.Analysis)
	if err != nil {
		return nil, err
	}
	if !res.Schedulable {
		return nil, fmt.Errorf("design: system unschedulable even at full bandwidth on every platform")
	}

	// Lower bounds: a platform can never go below its demand.
	low := make([]float64, len(families))
	for _, tr := range work.Transactions {
		for _, t := range tr.Tasks {
			low[t.Platform] += t.WCET / tr.Period
		}
	}

	// The feasibility oracle is evaluated hundreds of times on the
	// same system shape (only platform parameters move) and the
	// searches below revisit parameter points — the service's resident
	// engines keep the interference caches warm, its verdict memo
	// answers every revisited point without re-running the analysis,
	// and fresh probes run incrementally against the nearest resident
	// result (the transactions are untouched, so only the tasks of the
	// platform being searched — plus whatever their changed responses
	// reach — are recomputed).
	// Analysis errors (e.g. scenario overflow of the exact oracle) are
	// treated as infeasible points, matching the pre-service
	// behaviour; cancellation aborts the whole search.
	oracleOpt := opt.Analysis
	oracleOpt.StopAtDeadlineMiss = true
	feasible := func() (bool, error) {
		// Poll ctx here, not just inside the analysis: with a warm
		// shared service every probe can be a memo hit that never
		// observes the context, and the search must still honour
		// cancellation.
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("design: %w", err)
		}
		r, err := sess.AnalyzeOptions(ctx, work, oracleOpt)
		if err != nil {
			if ctx.Err() != nil {
				return false, fmt.Errorf("design: %w", err)
			}
			return false, nil
		}
		res = r
		return r.Schedulable, nil
	}

	tol := opt.tolerance()

	// Phase 1: uniform shrink. Scale every platform between its demand
	// lower bound and full bandwidth by a common factor λ and binary
	// search the minimal feasible λ. This distributes the end-to-end
	// slack evenly and keeps the subsequent per-platform descent from
	// greedily draining all slack into whichever platform it visits
	// first.
	apply := func(lambda float64) {
		for m := range families {
			a := math.Min(low[m], 1)*(1-lambda) + lambda
			if a > 1 {
				a = 1
			}
			alphas[m] = a
			work.Platforms[m] = families[m](a)
		}
	}
	lo, hi := 0.0, 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		apply(mid)
		ok, err := feasible()
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	apply(hi)
	if ok, err := feasible(); err != nil {
		return nil, err
	} else if !ok {
		apply(1)
		if _, err := feasible(); err != nil {
			return nil, err
		}
	}

	// Phase 2: per-platform coordinate descent from the uniform point.
	for pass := 0; pass < opt.passes(); pass++ {
		improved := false
		for m := range families {
			lo, hi := math.Min(low[m]+1e-9, 1), alphas[m]
			if hi-lo <= tol {
				continue
			}
			// Binary search the minimal feasible α of platform m.
			for hi-lo > tol {
				mid := (lo + hi) / 2
				work.Platforms[m] = families[m](mid)
				ok, err := feasible()
				if err != nil {
					return nil, err
				}
				if ok {
					hi = mid
				} else {
					lo = mid
				}
			}
			work.Platforms[m] = families[m](hi)
			ok, err := feasible()
			if err != nil {
				return nil, err
			}
			if !ok {
				// Numerical edge: restore the last known-good value.
				work.Platforms[m] = families[m](alphas[m])
				if _, err := feasible(); err != nil {
					return nil, err
				}
				continue
			}
			if hi < alphas[m]-tol/2 {
				improved = true
			}
			alphas[m] = hi
		}
		if !improved {
			break
		}
	}

	out := &Result{Alphas: alphas, Analysis: res}
	for m, a := range alphas {
		out.Platforms = append(out.Platforms, families[m](a))
		out.TotalBandwidth += a
	}
	return out, nil
}
