// Package gen synthesises random hierarchical-scheduling systems for
// the sweep experiments: platform sets realisable by periodic servers,
// and transaction sets with log-uniform periods and UUniFast-distributed
// utilisations, in the style customary in real-time systems evaluations.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"hsched/internal/model"
	"hsched/internal/platform"
)

// UUniFast draws n task utilisations summing exactly to u, uniformly
// over the simplex (Bini & Buttazzo's UUniFast algorithm).
func UUniFast(rng *rand.Rand, n int, u float64) []float64 {
	out := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-1-i))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// LogUniform draws from [lo, hi] with log-uniform density.
func LogUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// Config tunes System.
type Config struct {
	// Seed seeds the generator; equal seeds reproduce equal systems.
	Seed int64
	// Platforms is the number of abstract platforms M ≥ 1.
	Platforms int
	// Transactions is the number of transactions n ≥ 1.
	Transactions int
	// ChainLen bounds the tasks per transaction: each length is drawn
	// uniformly from [1, ChainLen]. Tasks are placed on platforms
	// round-robin from a random start, so consecutive tasks migrate.
	ChainLen int
	// PeriodMin and PeriodMax bound the log-uniform period draw.
	PeriodMin, PeriodMax float64
	// Utilization is the per-platform demand Σ C/(T·α) target in
	// (0, 1); the generator distributes it with UUniFast over the
	// tasks of each platform.
	Utilization float64
	// AlphaMin and AlphaMax bound the per-platform rate draw; the
	// delay and burstiness follow from a periodic server of period
	// ServerPeriod realising that rate.
	AlphaMin, AlphaMax float64
	// ServerPeriod is the period of the implied periodic servers;
	// 0 selects PeriodMin/4.
	ServerPeriod float64
	// BCETFraction sets BCET = fraction·WCET; 0 selects 0.5.
	BCETFraction float64
	// DeadlineFactor sets Deadline = factor·Period; 0 selects 1.
	DeadlineFactor float64
	// RandomPriorities assigns random priorities instead of
	// rate-monotonic ones.
	RandomPriorities bool
}

func (c Config) validate() error {
	switch {
	case c.Platforms < 1:
		return fmt.Errorf("gen: need at least one platform")
	case c.Transactions < 1:
		return fmt.Errorf("gen: need at least one transaction")
	case c.ChainLen < 1:
		return fmt.Errorf("gen: need ChainLen ≥ 1")
	case !(c.PeriodMin > 0) || c.PeriodMax < c.PeriodMin:
		return fmt.Errorf("gen: bad period range [%v, %v]", c.PeriodMin, c.PeriodMax)
	case !(c.Utilization > 0) || c.Utilization >= 1:
		return fmt.Errorf("gen: utilization %v outside (0, 1)", c.Utilization)
	case !(c.AlphaMin > 0) || c.AlphaMax < c.AlphaMin || c.AlphaMax > 1:
		return fmt.Errorf("gen: bad alpha range [%v, %v]", c.AlphaMin, c.AlphaMax)
	}
	return nil
}

// System draws a random system per the configuration. The result
// always validates and has per-platform utilisation equal to the
// configured target (up to floating-point rounding), hence is never
// trivially overloaded.
func System(cfg Config) (*model.System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bcetFrac := cfg.BCETFraction
	if bcetFrac <= 0 || bcetFrac > 1 {
		bcetFrac = 0.5
	}
	dlFactor := cfg.DeadlineFactor
	if dlFactor <= 0 {
		dlFactor = 1
	}
	serverP := cfg.ServerPeriod
	if serverP <= 0 {
		serverP = cfg.PeriodMin / 4
	}

	sys := &model.System{}
	for m := 0; m < cfg.Platforms; m++ {
		alpha := cfg.AlphaMin + rng.Float64()*(cfg.AlphaMax-cfg.AlphaMin)
		if alpha >= 1 {
			sys.Platforms = append(sys.Platforms, platform.Dedicated())
			continue
		}
		sys.Platforms = append(sys.Platforms, platform.PeriodicServer{Q: alpha * serverP, P: serverP}.Params())
	}

	// Skeleton: transactions with platform-mapped tasks, no WCETs yet.
	type slot struct{ tr, task int }
	perPlatform := make([][]slot, cfg.Platforms)
	for i := 0; i < cfg.Transactions; i++ {
		period := LogUniform(rng, cfg.PeriodMin, cfg.PeriodMax)
		n := 1 + rng.Intn(cfg.ChainLen)
		tr := model.Transaction{
			Name:     fmt.Sprintf("Gamma%d", i+1),
			Period:   period,
			Deadline: dlFactor * period,
		}
		start := rng.Intn(cfg.Platforms)
		for j := 0; j < n; j++ {
			m := (start + j) % cfg.Platforms
			tr.Tasks = append(tr.Tasks, model.Task{
				Name:     fmt.Sprintf("tau%d,%d", i+1, j+1),
				Platform: m,
			})
			perPlatform[m] = append(perPlatform[m], slot{tr: i, task: j})
		}
		sys.Transactions = append(sys.Transactions, tr)
	}

	// Distribute per-platform utilisation with UUniFast and convert to
	// WCETs: u = C/(T·α) → C = u·T·α.
	for m, slots := range perPlatform {
		if len(slots) == 0 {
			continue
		}
		alpha := sys.Platforms[m].Alpha
		for k, u := range UUniFast(rng, len(slots), cfg.Utilization) {
			s := slots[k]
			period := sys.Transactions[s.tr].Period
			w := u * period * alpha
			if w < 1e-6 {
				w = 1e-6
			}
			sys.Transactions[s.tr].Tasks[s.task].WCET = w
			sys.Transactions[s.tr].Tasks[s.task].BCET = bcetFrac * w
		}
	}

	assignPriorities(sys, rng, cfg.RandomPriorities)
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated system invalid: %w", err)
	}
	return sys, nil
}

// assignPriorities gives every task a priority: rate-monotonic on the
// transaction period (shorter period → higher priority, ties broken
// arbitrarily but deterministically), or uniform random levels.
func assignPriorities(sys *model.System, rng *rand.Rand, random bool) {
	if random {
		for i := range sys.Transactions {
			for j := range sys.Transactions[i].Tasks {
				sys.Transactions[i].Tasks[j].Priority = 1 + rng.Intn(2*len(sys.Transactions))
			}
		}
		return
	}
	// Rank transactions by period: highest rank (priority) for the
	// shortest period.
	n := len(sys.Transactions)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if sys.Transactions[order[b]].Period < sys.Transactions[order[a]].Period {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	for rank, i := range order {
		prio := n - rank
		for j := range sys.Transactions[i].Tasks {
			sys.Transactions[i].Tasks[j].Priority = prio
		}
	}
}
