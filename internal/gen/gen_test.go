package gen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUUniFastSumsAndBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8, uRaw uint16) bool {
		n := 1 + int(nRaw%16)
		u := 0.05 + float64(uRaw%900)/1000
		rng := rand.New(rand.NewSource(seed))
		us := UUniFast(rng, n, u)
		if len(us) != n {
			return false
		}
		sum := 0.0
		for _, x := range us {
			if x < -1e-12 || x > u+1e-12 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLogUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := LogUniform(rng, 10, 1000)
		if x < 10 || x > 1000 {
			t.Fatalf("LogUniform out of range: %v", x)
		}
	}
}

func baseConfig(seed int64) Config {
	return Config{
		Seed: seed, Platforms: 3, Transactions: 5, ChainLen: 4,
		PeriodMin: 10, PeriodMax: 1000, Utilization: 0.6,
		AlphaMin: 0.3, AlphaMax: 0.9,
	}
}

func TestSystemDeterministic(t *testing.T) {
	a, err := System(baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := System(baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different systems")
	}
	c, err := System(baseConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced identical systems")
	}
}

func TestSystemMeetsUtilizationTarget(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sys, err := System(baseConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d: invalid system: %v", seed, err)
		}
		for m, u := range sys.Utilization() {
			// Platforms with no tasks have zero demand; others hit the
			// target exactly (UUniFast sums exactly, modulo the 1e-6
			// WCET floor).
			if u > 0.6+1e-3 {
				t.Errorf("seed %d: U(Π%d) = %v exceeds target", seed, m+1, u)
			}
		}
	}
}

func TestSystemPeriodsInRange(t *testing.T) {
	sys, err := System(baseConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range sys.Transactions {
		if tr.Period < 10 || tr.Period > 1000 {
			t.Errorf("period %v outside [10, 1000]", tr.Period)
		}
		if tr.Deadline != tr.Period {
			t.Errorf("default deadline %v != period %v", tr.Deadline, tr.Period)
		}
		if len(tr.Tasks) < 1 || len(tr.Tasks) > 4 {
			t.Errorf("chain length %d outside [1, 4]", len(tr.Tasks))
		}
	}
}

func TestRateMonotonicPriorities(t *testing.T) {
	sys, err := System(baseConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sys.Transactions {
		for k := range sys.Transactions {
			if sys.Transactions[i].Period < sys.Transactions[k].Period {
				pi := sys.Transactions[i].Tasks[0].Priority
				pk := sys.Transactions[k].Tasks[0].Priority
				if pi <= pk {
					t.Fatalf("shorter period %v got priority %d ≤ %d of period %v",
						sys.Transactions[i].Period, pi, pk, sys.Transactions[k].Period)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Platforms: 1, Transactions: 1, ChainLen: 1, PeriodMin: 0, PeriodMax: 10, Utilization: 0.5, AlphaMin: 0.5, AlphaMax: 0.9},
		{Platforms: 1, Transactions: 1, ChainLen: 1, PeriodMin: 10, PeriodMax: 5, Utilization: 0.5, AlphaMin: 0.5, AlphaMax: 0.9},
		{Platforms: 1, Transactions: 1, ChainLen: 1, PeriodMin: 10, PeriodMax: 20, Utilization: 1.5, AlphaMin: 0.5, AlphaMax: 0.9},
		{Platforms: 1, Transactions: 1, ChainLen: 1, PeriodMin: 10, PeriodMax: 20, Utilization: 0.5, AlphaMin: 0, AlphaMax: 0.9},
		{Platforms: 1, Transactions: 1, ChainLen: 1, PeriodMin: 10, PeriodMax: 20, Utilization: 0.5, AlphaMin: 0.5, AlphaMax: 1.5},
	}
	for i, cfg := range bad {
		if _, err := System(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
