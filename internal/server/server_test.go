package server

import (
	"math"
	"testing"

	"hsched/internal/platform"
)

// integrate accumulates the supply a server grants over [t0, t0+len)
// with the given step.
func integrate(s Server, t0, length, dt float64) float64 {
	sum := 0.0
	for t := t0; t < t0+length-1e-12; t += dt {
		if s.Supplies(t, dt) {
			sum += dt
		}
	}
	return sum
}

// TestPollingSupplyWithinBounds: over every window of a long run, the
// supply granted by a polling server lies between its platform's
// MinSupply and MaxSupply (up to step quantisation).
func TestPollingSupplyWithinBounds(t *testing.T) {
	const dt = 0.01
	srv := Polling{Q: 1, P: 4, Phase: 0.7}
	exact := platform.PeriodicServer{Q: 1, P: 4}
	for _, window := range []float64{1, 3, 5.5, 8, 12, 20} {
		for t0 := 0.0; t0 < 8; t0 += 0.37 {
			got := integrate(srv, t0, window, dt)
			lo, hi := exact.MinSupply(window), exact.MaxSupply(window)
			if got < lo-3*dt || got > hi+3*dt {
				t.Fatalf("window [%v, %v): supply %v outside [%v, %v]", t0, t0+window, got, lo, hi)
			}
		}
	}
}

// TestPollingLongRunRate: the long-run granted rate equals Q/P.
func TestPollingLongRunRate(t *testing.T) {
	srv := Polling{Q: 1.5, P: 5, Phase: 2.1}
	got := integrate(srv, 0, 500, 0.005) / 500
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("long-run rate %v, want 0.3", got)
	}
}

// TestTDMASupplyWithinBounds mirrors the polling test for the fixed
// slot.
func TestTDMASupplyWithinBounds(t *testing.T) {
	const dt = 0.01
	srv := TDMA{Slot: 1, Frame: 4, Offset: 1.3}
	exact := platform.TDMA{Slot: 1, Frame: 4}
	for _, window := range []float64{1, 3.5, 7, 13} {
		for t0 := 0.0; t0 < 8; t0 += 0.53 {
			got := integrate(srv, t0, window, dt)
			lo, hi := exact.MinSupply(window), exact.MaxSupply(window)
			if got < lo-4*dt-1e-9 || got > hi+4*dt+1e-9 {
				t.Fatalf("window [%v, %v): supply %v outside [%v, %v]", t0, t0+window, got, lo, hi)
			}
		}
	}
}

// TestProportionalLag: the credit-based server keeps the allocation
// within one quantum of the fluid share.
func TestProportionalLag(t *testing.T) {
	const dt = 0.01
	srv := &Proportional{Weight: 0.37, Quantum: dt}
	acc := 0.0
	for x := 0.0; x < 100; x += dt {
		if srv.Supplies(x, dt) {
			acc += dt
		}
		if math.Abs(acc-0.37*(x+dt)) > 2*dt+1e-9 {
			t.Fatalf("t=%v: allocation %v drifted from fluid %v", x, acc, 0.37*(x+dt))
		}
	}
}

func TestDedicatedAlwaysSupplies(t *testing.T) {
	d := Dedicated{}
	for x := 0.0; x < 10; x += 0.3 {
		if !d.Supplies(x, 0.01) {
			t.Fatalf("dedicated denied supply at %v", x)
		}
	}
	if d.Params() != platform.Dedicated() {
		t.Errorf("Params() = %v", d.Params())
	}
}

// TestForPlatform: the factory returns a server whose stated Params
// dominate the requested triple (rate ≥ α, delay ≤ Δ).
func TestForPlatform(t *testing.T) {
	for _, p := range []platform.Params{
		{Alpha: 0.4, Delta: 1, Beta: 1},
		{Alpha: 0.2, Delta: 2, Beta: 1},
		{Alpha: 0.75, Delta: 0.3, Beta: 0.1},
		platform.Dedicated(),
	} {
		srv, err := ForPlatform(p, 0.1)
		if err != nil {
			t.Fatalf("ForPlatform(%v): %v", p, err)
		}
		got := srv.Params()
		if got.Alpha < p.Alpha-1e-9 {
			t.Errorf("%v realised with rate %v < %v", p, got.Alpha, p.Alpha)
		}
		if got.Delta > p.Delta+1e-9 {
			t.Errorf("%v realised with delay %v > %v", p, got.Delta, p.Delta)
		}
		if srv.Name() == "" {
			t.Errorf("server for %v has empty name", p)
		}
	}
	if _, err := ForPlatform(platform.Params{Alpha: -1}, 0); err == nil {
		t.Errorf("invalid platform accepted")
	}
	// A fractional zero-delay platform cannot be realised by any
	// discrete server; the factory must refuse.
	if _, err := ForPlatform(platform.Params{Alpha: 0.5, Delta: 0, Beta: 0.2}, 0); err == nil {
		t.Errorf("zero-delay fractional platform accepted")
	}
}
