// Package server provides runtime realisations of abstract computing
// platforms: the global-scheduler mechanisms of Section 2.3 of the
// paper (budget servers, static time partitions, proportional-share
// servers) as supply state machines consumable by the simulator
// (package sim). Every server also reports the linear platform model
// (α, Δ, β) it realises, which is what the analysis consumes.
package server

import (
	"fmt"
	"math"

	"hsched/internal/platform"
)

// Server decides, during a simulation, whether its platform receives
// the physical processor in a given time slice. Implementations are
// demand-independent (they model the cycles offered by the global
// scheduler, not the cycles consumed), matching the supply-function
// semantics of the analysis.
type Server interface {
	// Supplies reports whether the platform is served during
	// [t, t+dt). Implementations may keep internal state and are
	// called with strictly non-decreasing t.
	Supplies(t, dt float64) bool
	// Params returns the linear platform model the server realises;
	// the analysis of a system simulated against this server must use
	// these parameters (or more pessimistic ones) to stay sound.
	Params() platform.Params
	// Name identifies the mechanism in reports.
	Name() string
}

// Dedicated is a dedicated physical processor: always supplies.
type Dedicated struct{}

// Supplies always reports true.
func (Dedicated) Supplies(t, dt float64) bool { return true }

// Params returns (1, 0, 0).
func (Dedicated) Params() platform.Params { return platform.Dedicated() }

// Name returns "dedicated".
func (Dedicated) Name() string { return "dedicated" }

// Polling is a polling server: a budget of Q units at the start of
// every period P, shifted by Phase. Its supply is a (Q, P) periodic
// pattern, so the platform it realises is the periodic server of
// Figure 3 with parameters (Q/P, 2(P−Q), 2Q(P−Q)/P); the Phase only
// selects which alignment the simulation exercises (the analysis
// covers all of them).
type Polling struct {
	// Q is the budget per period.
	Q float64
	// P is the replenishment period.
	P float64
	// Phase shifts the supply pattern: budget is served during
	// [Phase+kP, Phase+kP+Q).
	Phase float64
}

// Supplies reports whether [t, t+dt) begins inside the budget window.
func (s Polling) Supplies(t, dt float64) bool {
	u := math.Mod(t-s.Phase, s.P)
	if u < 0 {
		u += s.P
	}
	return u < s.Q-1e-12
}

// Params returns the periodic-server platform model.
func (s Polling) Params() platform.Params {
	return platform.PeriodicServer{Q: s.Q, P: s.P}.Params()
}

// Name returns a description like "polling(Q=1, P=4)".
func (s Polling) Name() string { return fmt.Sprintf("polling(Q=%g, P=%g)", s.Q, s.P) }

// TDMA is a static slot: the platform owns [Offset+kF, Offset+kF+Slot)
// of every frame of length Frame.
type TDMA struct {
	// Slot is the slot length.
	Slot float64
	// Frame is the frame length.
	Frame float64
	// Offset positions the slot inside the frame.
	Offset float64
}

// Supplies reports whether [t, t+dt) begins inside the slot.
func (s TDMA) Supplies(t, dt float64) bool {
	u := math.Mod(t-s.Offset, s.Frame)
	if u < 0 {
		u += s.Frame
	}
	return u < s.Slot-1e-12
}

// Params returns the TDMA platform model.
func (s TDMA) Params() platform.Params {
	return platform.TDMA{Slot: s.Slot, Frame: s.Frame}.Params()
}

// Name returns a description like "tdma(S=1, F=4)".
func (s TDMA) Name() string { return fmt.Sprintf("tdma(S=%g, F=%g)", s.Slot, s.Frame) }

// Proportional is a credit-based proportional-share server of weight
// Weight: every slice accrues Weight·dt credit and the processor is
// granted whenever a full slice of credit is available, keeping the
// allocation lag within one slice. It approximates the p-fair
// scheduler cited in Section 2.3 with quantum equal to the simulation
// step.
type Proportional struct {
	// Weight is the share w ∈ (0, 1].
	Weight float64
	// Quantum is the lag bound reported to the analysis; it should be
	// at least the simulation step. Defaults to 1e-3 when zero.
	Quantum float64

	credit float64
}

// Supplies accrues credit and grants the slice when at least one full
// slice of credit is available.
func (s *Proportional) Supplies(t, dt float64) bool {
	s.credit += s.Weight * dt
	if s.credit >= dt-1e-12 {
		s.credit -= dt
		return true
	}
	return false
}

// Params returns the p-fair lag model (w, q/w, q).
func (s *Proportional) Params() platform.Params {
	q := s.Quantum
	if q == 0 {
		q = 1e-3
	}
	return platform.Pfair{Weight: s.Weight, Quantum: q}.Params()
}

// Name returns a description like "proportional(w=0.4)".
func (s *Proportional) Name() string { return fmt.Sprintf("proportional(w=%g)", s.Weight) }

// ForPlatform builds a polling server realising the given platform
// parameters with the tightest period compatible with its delay:
// P = Δ/(2(1−α)), Q = αP (the equality case of platform.ServerFor).
// For a dedicated platform (α=1, Δ=0) it returns Dedicated.
func ForPlatform(p platform.Params, phase float64) (Server, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Alpha == 1 {
		return Dedicated{}, nil
	}
	if p.Delta == 0 {
		// Every discrete mechanism has a positive worst-case service
		// delay; a fractional zero-delay platform would require a
		// fluid processor. Refuse rather than hand back a server the
		// analysed model does not dominate.
		return nil, fmt.Errorf("server: no discrete server realises a zero-delay platform with rate %v < 1", p.Alpha)
	}
	period := p.Delta / (2 * (1 - p.Alpha))
	srv, err := platform.ServerFor(p, period)
	if err != nil {
		return nil, err
	}
	return Polling{Q: srv.Q, P: srv.P, Phase: phase}, nil
}
