package analysis

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hsched/internal/batch"
	"hsched/internal/model"
)

// Engine is a reusable analysis engine: it owns every piece of scratch
// state an analysis needs (the working copy of the system, the
// higher-priority interference cache, reduced-offset and best-bound
// buffers, per-round result matrices, pooled per-task scenario
// buffers) and amortises them across calls. Construct one with
// NewEngine and call Analyze / AnalyzeStatic any number of times; on
// systems of the same shape (task counts, platform mapping,
// priorities) consecutive calls reuse all caches and run with near
// zero allocations, which is what makes the evaluation sweeps
// (acceptance campaigns, MinimizeBandwidth design searches) run at
// memory-bandwidth speed instead of allocator speed.
//
// Each fixed-point round is executed as an explicit pipeline:
//
//  1. interference construction — the analyzer rebinds the working
//     system, rebuilding the hp cache only on shape changes and
//     refreshing the reduced offsets of Eq. (10);
//  2. scenario enumeration — per task, the approximate (Sec. 3.1.2)
//     or exact (Sec. 3.1.1) scenario set is materialised into pooled
//     buffers;
//  3. per-task response — the response times of all tasks in the
//     round are independent and are computed on Options.Workers
//     goroutines via batch.Map, with results collected in task index
//     order so the outcome is bit-identical for every worker count;
//  4. jitter propagation — Eq. (18) rewrites the jitters from the
//     previous round's responses and the loop repeats to the fixed
//     point.
//
// An Engine is internally concurrent but not safe for concurrent use:
// run one Engine per goroutine (batch.MapWorkers hands one to each
// worker). Returned Results are fully detached from the engine's
// scratch and stay valid across subsequent calls.
type Engine struct {
	opt Options
	an  analyzer

	// work is the engine-owned working copy of the system under
	// analysis; bind copies the caller's system into it value by value
	// so the caller's system is never mutated and no per-call clone is
	// allocated once the shapes match.
	work *model.System

	// flat enumerates the task coordinates (i, j) in deterministic
	// index order; it is the work list of the parallel response stage.
	flat [][2]int

	// round holds the TaskResults of the current fixed-point round.
	round [][]TaskResult

	// prev holds the previous round's worst-case responses for the
	// convergence test; havePrev guards the first round.
	prev     [][]float64
	havePrev bool

	// initStarts / initCompl are the best-case bounds of Eq. (18),
	// computed once per call (they depend only on BCETs, platforms and
	// the external release offset, none of which the iteration
	// rewrites).
	initStarts [][]float64
	initCompl  [][]float64

	// errs collects per-task errors of a parallel round; the first in
	// task index order is reported, keeping errors deterministic too.
	errs []error

	// seq is the scratch of the sequential path; pool feeds the
	// parallel workers.
	seq  taskScratch
	pool sync.Pool

	// ctx is the context of the in-flight call, set by the Context
	// entry points before any round runs and read (never written) by
	// the per-task response computations, which poll it between tasks
	// and every few hundred scenarios. The goroutine fan-out of
	// batch.Map establishes the happens-before edge the workers need.
	ctx context.Context
}

// NewEngine returns an Engine with the given options. The zero-value
// Options select the approximate analysis with GOMAXPROCS response
// workers; set Options.Workers = 1 for a strictly sequential engine
// (e.g. one engine per batch worker).
func NewEngine(opt Options) *Engine {
	e := &Engine{opt: opt}
	e.pool.New = func() any { return new(taskScratch) }
	return e
}

// Options returns the options the engine was constructed with.
func (e *Engine) Options() Options { return e.opt }

// Analyze runs the dynamic-offset holistic analysis of Section 3.2 on
// sys, exactly as the package-level Analyze, but reusing the engine's
// caches and buffers. sys is not mutated.
func (e *Engine) Analyze(sys *model.System) (*Result, error) {
	return e.AnalyzeContext(context.Background(), sys)
}

// AnalyzeContext is Analyze with cancellation: the engine polls ctx
// between holistic rounds, between the per-task response computations
// of a round (the parallel stage's error plumbing cancels the
// remaining tasks of the round), and periodically inside large exact
// scenario sweeps, so even a long exact analysis aborts promptly. On
// cancellation it returns an error wrapping ctx.Err(); the engine
// stays valid for further calls.
func (e *Engine) AnalyzeContext(ctx context.Context, sys *model.System) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	e.ctx = ctx
	defer func() { e.ctx = nil }()
	e.bind(sys)
	e.initStarts, e.initCompl = bestBoundsInto(e.work, e.opt.TightBestCase, e.initStarts, e.initCompl)

	// Initial conditions of Section 3.2: J = 0, φ = Rbest (Eq. 18). The
	// best starts already include the first task's external release
	// offset; the offsets and jitters of the first task of each
	// transaction are external inputs and are preserved.
	for i := range e.work.Transactions {
		tasks := e.work.Transactions[i].Tasks
		for j := 1; j < len(tasks); j++ {
			tasks[j].Offset = e.initStarts[i][j]
			tasks[j].Jitter = 0
		}
	}

	converged := false
	iters := 0
	for iter := 0; iter < e.opt.maxIter(); iter++ {
		// Cancellation point between holistic rounds.
		if err := ctx.Err(); err != nil {
			return nil, wrapCancelled(err)
		}

		// Stage 1: interference construction (reduced offsets; the hp
		// cache is already bound).
		e.an.refreshOffsets()

		// Stages 2+3: scenario enumeration and per-task responses.
		if err := e.runRound(); err != nil {
			return nil, err
		}
		iters = iter + 1
		if e.opt.Recorder != nil {
			// Snapshots must be detached from engine scratch: callers
			// retain them past the call (Table 3 reproduction), and the
			// working system is rewritten by the engine's next analysis.
			e.opt.Recorder(iter, e.detach(iters))
		}

		if e.havePrev && unchanged(e.prev, e.round, e.opt.eps()) {
			converged = true
			break
		}
		copyWorst(e.prev, e.round)
		e.havePrev = true

		// Any unbounded response time is final: larger jitters can only
		// increase response times and +Inf is already absorbing.
		if hasInf(e.round) {
			converged = true
			break
		}

		// An intermediate deadline miss is equally final when the
		// caller only needs the verdict: responses are monotone
		// non-decreasing across rounds.
		if e.opt.StopAtDeadlineMiss {
			missed := false
			for i := range e.round {
				row := e.round[i]
				if row[len(row)-1].Worst > e.work.Transactions[i].Deadline+e.opt.eps() {
					missed = true
					break
				}
			}
			if missed {
				converged = true
				break
			}
		}

		// Stage 4: jitter propagation, Eq. 18:
		// J(i,j) = R(i,j−1) − Rbest(i,j−1). The worst-case response
		// already includes the effect of the release jitter of the
		// first task, so nothing is added on top.
		for i := range e.work.Transactions {
			tasks := e.work.Transactions[i].Tasks
			for j := 1; j < len(tasks); j++ {
				jit := e.round[i][j-1].Worst - e.initStarts[i][j]
				if jit < 0 {
					jit = 0
				}
				tasks[j].Jitter = jit
			}
		}
	}
	if iters == 0 {
		return nil, fmt.Errorf("analysis: no iterations executed")
	}
	res := e.finalize(iters, converged)
	if !converged {
		// The iteration was cut off by MaxIterations: the reported
		// response times are lower bounds of the (larger) fixed point,
		// so a positive verdict would be unsound.
		res.Schedulable = false
	}
	return res, nil
}

// AnalyzeStatic runs one pass of the static-offset analysis of Section
// 3.1 on sys, exactly as the package-level AnalyzeStatic, but reusing
// the engine's caches and buffers. sys is not mutated.
func (e *Engine) AnalyzeStatic(sys *model.System) (*Result, error) {
	return e.AnalyzeStaticContext(context.Background(), sys)
}

// AnalyzeStaticContext is AnalyzeStatic with cancellation, with the
// same polling points as AnalyzeContext (a static pass is one round).
func (e *Engine) AnalyzeStaticContext(ctx context.Context, sys *model.System) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	e.ctx = ctx
	defer func() { e.ctx = nil }()
	e.bind(sys)
	e.initStarts, e.initCompl = bestBoundsInto(e.work, e.opt.TightBestCase, e.initStarts, e.initCompl)
	// Stage 1 runs once: static analysis keeps the input offsets.
	e.an.refreshOffsets()
	if err := e.runRound(); err != nil {
		return nil, err
	}
	return e.finalize(1, true), nil
}

// bind copies sys into the engine's working system and rebinds the
// analyzer. The round buffers are resized only when the task-count
// dimensions changed — deliberately decoupled from the analyzer's
// hp-cache key (which also covers priorities and platform mappings),
// so priority-search callers that reassign priorities on every probe
// still keep their buffers.
func (e *Engine) bind(sys *model.System) {
	e.copySystem(sys)
	e.an.bind(e.work, e.opt)
	if !e.dimsMatch() {
		e.flat = e.flat[:0]
		for i := range e.work.Transactions {
			for j := range e.work.Transactions[i].Tasks {
				e.flat = append(e.flat, [2]int{i, j})
			}
		}
		e.round = reuseMatrix(e.round, e.work)
		e.prev = reuseMatrix(e.prev, e.work)
		if cap(e.errs) < len(e.flat) {
			e.errs = make([]error, len(e.flat))
		}
	}
	e.havePrev = false
}

// dimsMatch reports whether the round buffers already have one cell
// per task of the working system.
func (e *Engine) dimsMatch() bool {
	if len(e.round) != len(e.work.Transactions) {
		return false
	}
	for i := range e.round {
		if len(e.round[i]) != len(e.work.Transactions[i].Tasks) {
			return false
		}
	}
	return true
}

// copySystem copies src value by value into the engine-owned working
// system, reusing every slice whose capacity suffices.
func (e *Engine) copySystem(src *model.System) {
	if e.work == nil {
		e.work = src.Clone()
		return
	}
	w := e.work
	w.Platforms = append(w.Platforms[:0], src.Platforms...)
	if cap(w.Transactions) < len(src.Transactions) {
		w.Transactions = make([]model.Transaction, len(src.Transactions))
	} else {
		w.Transactions = w.Transactions[:len(src.Transactions)]
	}
	for i := range src.Transactions {
		st := &src.Transactions[i]
		wt := &w.Transactions[i]
		tasks := wt.Tasks
		*wt = *st
		wt.Tasks = append(tasks[:0], st.Tasks...)
	}
}

// minParallelTasks is the round size below which fanning out is a
// loss: one task's response computation is microseconds of work, so
// spawning a worker set per round only pays off once a round carries
// enough tasks to amortise it. Small systems — the paper example, the
// tight search loops of priority assignment and design search — run
// sequentially whatever Options.Workers says; results are identical
// either way.
const minParallelTasks = 16

// runRound executes stages 2 and 3 of the pipeline: for every task, in
// parallel across Options.Workers goroutines, enumerate its scenarios
// and compute its worst-case response with the offsets and jitters
// currently stored in the working system, writing the TaskResults into
// the round matrix in task index order.
func (e *Engine) runRound() error {
	n := len(e.flat)
	workers := e.opt.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelTasks {
		for k := 0; k < n; k++ {
			if err := e.ctx.Err(); err != nil {
				return wrapCancelled(err)
			}
			if err := e.analyzeTask(k, &e.seq); err != nil {
				return err
			}
		}
		return nil
	}

	errs := e.errs[:n]
	for k := range errs {
		errs[k] = nil
	}
	// The per-task computations only read the analyzer's state and
	// write disjoint cells of the round matrix, so a successful round
	// is deterministic regardless of scheduling. Errors are staged per
	// task and the first in index order among those staged wins; the
	// sentinel returned to batch.Map cancels the remaining tasks, so
	// a failing round (only the exact analysis can fail, on scenario
	// overflow) does not burn CPU finishing work it will discard. The
	// cancellation means which failing task the error names can vary
	// with scheduling when several would fail — the error identity
	// (ErrTooManyScenarios) is stable, the task name is not.
	_, _ = batch.Map(n, batch.Options{Workers: workers}, func(k int) (struct{}, error) {
		// Cancellation point between parallel per-task responses: the
		// sentinel makes batch.Map stop handing out the round's
		// remaining tasks.
		if err := e.ctx.Err(); err != nil {
			errs[k] = wrapCancelled(err)
			return struct{}{}, errRoundFailed
		}
		// The nil-tolerant assertion keeps a zero-value Engine working
		// (its pool has no New hook).
		ts, _ := e.pool.Get().(*taskScratch)
		if ts == nil {
			ts = new(taskScratch)
		}
		err := e.analyzeTask(k, ts)
		e.pool.Put(ts)
		if err != nil {
			errs[k] = err
			return struct{}{}, errRoundFailed
		}
		return struct{}{}, nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// errRoundFailed is the sentinel a parallel round hands batch.Map to
// cancel outstanding tasks; the caller reports the staged per-task
// error instead.
var errRoundFailed = errors.New("analysis: round failed")

// wrapCancelled wraps a context error so errors.Is(err,
// context.Canceled / DeadlineExceeded) keeps working while the message
// names the analysis as the aborted operation.
func wrapCancelled(err error) error {
	return fmt.Errorf("analysis: cancelled: %w", err)
}

// analyzeTask computes the response of the k-th task of the flattened
// work list and stores its TaskResult.
func (e *Engine) analyzeTask(k int, ts *taskScratch) error {
	i, j := e.flat[k][0], e.flat[k][1]
	r, crit, err := e.an.responseTime(e.ctx, i, j, ts)
	if err != nil {
		// Cancellation is not a property of the task being analysed:
		// pass it through unwrapped so the message carries a single
		// "analysis: cancelled" prefix, like the other polling points.
		if ctxErr := e.ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return err
		}
		return fmt.Errorf("analysis: %s: %w", e.work.TaskName(i, j), err)
	}
	t := &e.work.Transactions[i].Tasks[j]
	e.round[i][j] = TaskResult{
		Offset:            t.Offset,
		Jitter:            t.Jitter,
		Best:              e.initCompl[i][j],
		Worst:             r,
		CriticalInitiator: crit.initiator,
		CriticalJob:       crit.job,
	}
	return nil
}

// detach copies the current round state into a self-contained Result:
// the returned System and TaskResults are deep copies, valid after the
// engine moves on to its next analysis. Convergence and verdict are
// left at their zero values (a mid-iteration snapshot has neither).
func (e *Engine) detach(iterations int) *Result {
	res := &Result{
		System:     e.work.Clone(),
		Tasks:      make([][]TaskResult, len(e.round)),
		Iterations: iterations,
	}
	for i, row := range e.round {
		res.Tasks[i] = append([]TaskResult(nil), row...)
	}
	return res
}

// finalize builds the analysis outcome from the last round. Oversized
// sequential scratch is released here so one outlier exact analysis
// does not pin its peak memory across the engine's lifetime (the
// pooled parallel scratch is already reclaimed by the GC).
func (e *Engine) finalize(iterations int, converged bool) *Result {
	e.seq.shrink()
	res := e.detach(iterations)
	res.Converged = converged
	res.computeVerdict(e.opt.eps())
	return res
}

// copyWorst stores the round's worst-case responses into the
// convergence buffer.
func copyWorst(dst [][]float64, tasks [][]TaskResult) {
	for i, row := range tasks {
		for j := range row {
			dst[i][j] = row[j].Worst
		}
	}
}
