package analysis

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hsched/internal/batch"
	"hsched/internal/model"
)

// Engine is a reusable analysis engine: it owns every piece of scratch
// state an analysis needs (the working copy of the system, the
// transaction-keyed slabs holding interference rows, reduced offsets,
// best-case bounds and round results, pooled per-task scenario
// buffers) and amortises them across calls. Construct one with
// NewEngine and call Analyze / AnalyzeStatic any number of times; on
// systems of the same shape (task counts, platform mapping,
// priorities) consecutive calls reuse all caches and run with near
// zero allocations, and after an edit only the slabs the edit touched
// are rebuilt.
//
// Each fixed-point round is executed as an explicit pipeline:
//
//  1. interference construction — the analyzer rebinds the working
//     system, rebuilding only the hp rows an edit invalidated and
//     refreshing the reduced offsets of Eq. (10);
//  2. scenario enumeration — per task, the approximate scenario set
//     (Sec. 3.1.2) is materialised into pooled buffers, while the
//     exact scenario space (Sec. 3.1.1) is streamed one vector at a
//     time from a mixed-radix cursor, pruned by the admissible
//     per-initiator bound of Eq. 15 (Result.ScenariosPruned counts
//     the skips), and — when the round leaves workers idle — split
//     into contiguous cursor chunks evaluated in parallel;
//  3. per-task response — the response times of all tasks in the
//     round are independent and are computed on Options.Workers
//     goroutines via batch.Map, with results collected in task index
//     order so the outcome is bit-identical for every worker count;
//     the same worker budget covers the intra-task chunk fan-out of
//     stage 2, so goroutines never multiply across the two levels;
//  4. jitter propagation — Eq. (18) rewrites the jitters from the
//     previous round's responses and the loop repeats to the fixed
//     point.
//
// AnalyzeFrom adds the incremental path: seeded with a previous
// Result, rounds replay the recorded per-task results of every
// transaction an edit provably did not reach and recompute only the
// dirty rest — converging to the exact same bits a cold Analyze of
// the edited system would produce.
//
// An Engine is internally concurrent but not safe for concurrent use:
// run one Engine per goroutine (batch.MapWorkers hands one to each
// worker). Returned Results are fully detached from the engine's
// scratch and stay valid across subsequent calls.
type Engine struct {
	opt Options
	an  analyzer

	// work is the engine-owned working copy of the system under
	// analysis; bind copies the caller's system into it value by value
	// so the caller's system is never mutated and no per-call clone is
	// allocated once the shapes match.
	work *model.System

	// flat enumerates the task coordinates (i, j) in deterministic
	// index order; it is the work list of the parallel response stage.
	flat [][2]int

	// havePrev guards the convergence test on the first round.
	havePrev bool

	// errs collects per-task errors of a parallel round; the first in
	// task index order is reported, keeping errors deterministic too.
	errs []error

	// seq is the scratch of the sequential path; pool feeds the
	// parallel workers.
	seq  taskScratch
	pool sync.Pool

	// rowStart[i] is the flat index of transaction i's first task —
	// the (i, j) → flat mapping of the delta planner.
	rowStart []int

	// snapBlock and snapHdrs are the history arenas: snapshotRound
	// carves round copies (cells and row headers) out of them and
	// refills them when drained. They only ever advance, so carved
	// rows stay exclusively owned by the Results they escaped into.
	snapBlock []TaskResult
	snapHdrs  [][]TaskResult

	// plan is the delta plan of the in-flight AnalyzeFrom call (nil on
	// the cold path); delta is the planner's reusable scratch and
	// deltaSaved counts the per-task response computations the replay
	// skipped.
	plan       *deltaPlan
	delta      deltaScratch
	deltaSaved int

	// pruned accumulates the exact scenarios the admissible prune
	// skipped across the in-flight analysis (atomic: the per-task
	// response computations of a round run in parallel). On the delta
	// path only the recomputed tasks contribute — replayed tasks sweep
	// nothing. subtrees counts the whole-subtree cursor jumps among
	// them (the branch-and-bound decisions), sweepSeeded / sweepDiscarded
	// the sweeps that used, respectively threw away, a recorded
	// incumbent seed, and roundCopied the per-task computations the
	// unchanged-inputs round fast path replaced with a copy.
	pruned         atomic.Int64
	subtrees       atomic.Int64
	sweepSeeded    atomic.Int64
	sweepDiscarded atomic.Int64
	roundCopied    atomic.Int64

	// jitChanged[i] reports whether any task of transaction i changed
	// jitter (bitwise) in the last propagation step; roundCopyValid
	// arms the round fast path once the slabs hold a previous round
	// and the flags describe the step that led to the current one.
	jitChanged     []bool
	roundCopyValid bool

	// ctx is the context of the in-flight call, set by the Context
	// entry points before any round runs and read (never written) by
	// the per-task response computations, which poll it between tasks
	// and every few hundred scenarios. The goroutine fan-out of
	// batch.Map establishes the happens-before edge the workers need.
	ctx context.Context
}

// NewEngine returns an Engine with the given options. The zero-value
// Options select the approximate analysis with GOMAXPROCS response
// workers; set Options.Workers = 1 for a strictly sequential engine
// (e.g. one engine per batch worker).
func NewEngine(opt Options) *Engine {
	e := &Engine{opt: opt}
	e.pool.New = func() any { return new(taskScratch) }
	return e
}

// Options returns the options the engine was constructed with.
func (e *Engine) Options() Options { return e.opt }

// Analyze runs the dynamic-offset holistic analysis of Section 3.2 on
// sys, exactly as the package-level Analyze, but reusing the engine's
// caches and buffers. sys is not mutated.
func (e *Engine) Analyze(sys *model.System) (*Result, error) {
	return e.AnalyzeContext(context.Background(), sys)
}

// AnalyzeContext is Analyze with cancellation: the engine polls ctx
// between holistic rounds, between the per-task response computations
// of a round (the parallel stage's error plumbing cancels the
// remaining tasks of the round), and periodically inside large exact
// scenario sweeps, so even a long exact analysis aborts promptly. On
// cancellation it returns an error wrapping ctx.Err(); the engine
// stays valid for further calls.
func (e *Engine) AnalyzeContext(ctx context.Context, sys *model.System) (*Result, error) {
	return e.analyzeDynamic(ctx, nil, sys)
}

// AnalyzeFrom is the incremental re-analysis entry point: it runs the
// holistic analysis of sys exactly like Analyze, but seeded with prev
// — the Result of an earlier analysis of a structurally similar
// system. The engine diffs prev.System against sys at transaction
// granularity, computes the closure of tasks the edit can reach
// (directly, through shared-platform interference, or through
// chain-successor jitters), and then replays prev's recorded per-round
// results for every clean task while recomputing only the dirty ones.
// Because the replayed values are exactly what a cold analysis of sys
// would compute for those tasks, the returned Result is bit-identical
// to Analyze(sys) in every field — the incremental path is a pure
// optimisation, never an approximation.
//
// When nothing is reusable (different options, reordered transactions,
// different platform counts, no unchanged transactions, or prev
// lacking replay state) the call transparently falls back to a cold
// analysis; Result.Delta is non-nil exactly when the delta path ran.
// prev is only read, so a memoised (shared) Result is a valid seed.
func (e *Engine) AnalyzeFrom(prev *Result, sys *model.System) (*Result, error) {
	return e.AnalyzeFromContext(context.Background(), prev, sys)
}

// AnalyzeFromContext is AnalyzeFrom with cancellation, with the same
// polling points as AnalyzeContext.
func (e *Engine) AnalyzeFromContext(ctx context.Context, prev *Result, sys *model.System) (*Result, error) {
	return e.analyzeDynamic(ctx, prev, sys)
}

// analyzeDynamic is the shared holistic loop of AnalyzeContext (prev
// == nil) and AnalyzeFromContext.
func (e *Engine) analyzeDynamic(ctx context.Context, prev *Result, sys *model.System) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	e.ctx = ctx
	defer func() { e.ctx = nil; e.plan = nil; e.delta.plan.base = nil }()
	e.bind(sys)
	e.plan = e.planDelta(prev, e.work)
	e.deltaSaved = 0
	e.resetCounters()
	e.initBounds()
	e.installSweepSeeds(prev)

	// Initial conditions of Section 3.2: J = 0, φ = Rbest (Eq. 18). The
	// best starts already include the first task's external release
	// offset; the offsets and jitters of the first task of each
	// transaction are external inputs and are preserved.
	for i := range e.work.Transactions {
		tasks := e.work.Transactions[i].Tasks
		starts := e.an.slabs[i].initStarts
		for j := 1; j < len(tasks); j++ {
			tasks[j].Offset = starts[j]
			tasks[j].Jitter = 0
		}
	}

	// history records every round's detached per-task results — the
	// replay state a later AnalyzeFrom consumes. Rows must be freshly
	// allocated (they escape into the Result). Callers that never
	// re-analyse mutations opt out via Options.DisableReplayState.
	var history [][][]TaskResult
	historyCells := 0
	if !e.opt.DisableReplayState {
		history = make([][][]TaskResult, 0, 8)
	}

	// Stage 1: interference construction. The offsets are fixed for the
	// whole analysis (the loop below only rewrites jitters), so the
	// reduced offsets of Eq. (10) are derived once, not per round.
	e.an.refreshOffsets()

	converged := false
	iters := 0
	for iter := 0; iter < e.opt.maxIter(); iter++ {
		// Cancellation point between holistic rounds.
		if err := ctx.Err(); err != nil {
			return nil, wrapCancelled(err)
		}

		// Stages 2+3: scenario enumeration and per-task responses,
		// replaying clean tasks from the delta baseline when seeded.
		if err := e.runRound(iter); err != nil {
			return nil, err
		}
		iters = iter + 1
		if !e.opt.DisableReplayState && historyCells < maxHistoryCells {
			rows, carved := e.snapshotRound(iter)
			history = append(history, rows)
			// Aliased (fully-clean) rows cost nothing — charge the cap
			// only for cells actually carved, so long delta chains keep
			// their full replay depth.
			historyCells += carved
		}
		if e.opt.Recorder != nil {
			// Snapshots must be detached from engine scratch: callers
			// retain them past the call (Table 3 reproduction), and the
			// working system is rewritten by the engine's next analysis.
			e.opt.Recorder(iter, e.detach(iters))
		}

		if e.havePrev && e.roundUnchanged() {
			converged = true
			break
		}
		e.storePrev()
		e.havePrev = true

		// Any unbounded response time is final: larger jitters can only
		// increase response times and +Inf is already absorbing.
		if e.roundHasInf() {
			converged = true
			break
		}

		// An intermediate deadline miss is equally final when the
		// caller only needs the verdict: responses are monotone
		// non-decreasing across rounds.
		if e.opt.StopAtDeadlineMiss {
			missed := false
			for i := range e.an.slabs {
				row := e.an.slabs[i].round
				if row[len(row)-1].Worst > e.work.Transactions[i].Deadline+e.opt.eps() {
					missed = true
					break
				}
			}
			if missed {
				converged = true
				break
			}
		}

		// Stage 4: jitter propagation, Eq. 18:
		// J(i,j) = R(i,j−1) − Rbest(i,j−1). The worst-case response
		// already includes the effect of the release jitter of the
		// first task, so nothing is added on top. Per transaction, the
		// step records whether any jitter moved bitwise: a task whose
		// own and interfering transactions all kept their jitters is
		// recomputed from bit-identical inputs next round, so
		// analyzeTask reuses the previous round's TaskResult outright.
		for i := range e.work.Transactions {
			tasks := e.work.Transactions[i].Tasks
			sl := &e.an.slabs[i]
			changed := false
			for j := 1; j < len(tasks); j++ {
				jit := sl.round[j-1].Worst - sl.initStarts[j]
				if jit < 0 {
					jit = 0
				}
				if jit != tasks[j].Jitter {
					changed = true
				}
				tasks[j].Jitter = jit
			}
			e.jitChanged[i] = changed
		}
		e.roundCopyValid = !e.opt.DisableSweepReuse
	}
	if iters == 0 {
		return nil, fmt.Errorf("analysis: no iterations executed")
	}
	res := e.finalize(iters, converged)
	if !converged {
		// The iteration was cut off by MaxIterations: the reported
		// response times are lower bounds of the (larger) fixed point,
		// so a positive verdict would be unsound.
		res.Schedulable = false
	}
	res.history = history
	res.rkey = e.opt.ReplayKey()
	res.sweepNu = e.harvestSweepSeeds()
	if e.plan != nil {
		res.Delta = &DeltaInfo{
			CleanTasks:      len(e.plan.clean),
			DirtyTasks:      len(e.plan.dirty),
			ReplayedRounds:  min(iters, len(e.plan.base)),
			TaskRoundsSaved: e.deltaSaved,
		}
	}
	return res, nil
}

// resetCounters zeroes the per-analysis work-profile counters.
func (e *Engine) resetCounters() {
	e.pruned.Store(0)
	e.subtrees.Store(0)
	e.sweepSeeded.Store(0)
	e.sweepDiscarded.Store(0)
	e.roundCopied.Store(0)
}

// installSweepSeeds copies the cross-probe sweep summary of a seed
// Result into the engine's slabs, where the exact sweeps of this
// analysis pick the vectors up as incumbent seeds. Installation is
// positional (transaction and task counts must line up — the same
// correspondence the delta planner replays under) and per-seed
// validation happens at sweep time: a vector whose axes no longer
// match the task's interference shape is discarded there, so a seed
// that is stale — or from a one-edit-apart system — costs one shape
// check, never a wrong bound. prev is only read; the slabs get copies.
func (e *Engine) installSweepSeeds(prev *Result) {
	if prev == nil || !e.opt.Exact || e.opt.DisableSweepReuse {
		return
	}
	if len(prev.sweepNu) != len(e.an.slabs) {
		return
	}
	for i, row := range prev.sweepNu {
		sl := &e.an.slabs[i]
		if len(row) != len(sl.seedNu) {
			continue
		}
		for b, nu := range row {
			if len(nu) > 0 {
				sl.seedNu[b] = append(sl.seedNu[b][:0], nu...)
			}
		}
	}
}

// harvestSweepSeeds deep-copies the slabs' recorded critical scenario
// vectors into a Result-owned summary — the prune state a later
// AnalyzeFrom re-seeds from. nil when the result cannot serve as a
// seed anyway (approximate analysis, reuse or replay state disabled).
func (e *Engine) harvestSweepSeeds() [][][]initiator {
	if !e.opt.Exact || e.opt.DisableSweepReuse || e.opt.DisableReplayState {
		return nil
	}
	total := 0
	for i := range e.an.slabs {
		for _, nu := range e.an.slabs[i].seedNu {
			total += len(nu)
		}
	}
	if total == 0 {
		return nil
	}
	block := make([]initiator, 0, total)
	sweep := make([][][]initiator, len(e.an.slabs))
	for i := range e.an.slabs {
		seeds := e.an.slabs[i].seedNu
		row := make([][]initiator, len(seeds))
		for b, nu := range seeds {
			if len(nu) == 0 {
				continue
			}
			start := len(block)
			block = append(block, nu...)
			row[b] = block[start:len(block):len(block)]
		}
		sweep[i] = row
	}
	return sweep
}

// maxHistoryCells bounds the replay state retained on a Result:
// rounds × tasks cells of TaskResult. Past the bound later rounds are
// simply not recorded (a partial history replays its prefix and
// recomputes the rest), so one huge analysis cannot pin megabytes in
// the service's verdict memo.
const maxHistoryCells = 1 << 14

// snapshotRound deep-copies the current round matrix. History rows are
// immutable once recorded, which buys two things: a replayed round can
// alias the baseline's row outright for a fully-clean transaction (no
// copy at all — mutation chains then share their common history), and
// fresh rows can be carved out of snapBlock, an arena the engine
// refills a few rounds' worth at a time and only ever advances
// through, so carved rows safely escape into Results.
func (e *Engine) snapshotRound(iter int) (rows [][]TaskResult, carved int) {
	nTx := len(e.an.slabs)
	if len(e.snapHdrs) < nTx {
		e.snapHdrs = make([][]TaskResult, 8*nTx)
	}
	rows = e.snapHdrs[:nTx:nTx]
	e.snapHdrs = e.snapHdrs[nTx:]
	var base [][]TaskResult
	if e.plan != nil && iter < len(e.plan.base) {
		base = e.plan.base[iter]
	}
	for i := range e.an.slabs {
		if base == nil || !e.plan.cleanTx[i] {
			carved += len(e.an.slabs[i].round)
		}
	}
	if len(e.snapBlock) < carved {
		e.snapBlock = make([]TaskResult, max(8*carved, 4*len(e.flat)))
	}
	block := e.snapBlock[:carved]
	e.snapBlock = e.snapBlock[carved:]
	k := 0
	for i := range e.an.slabs {
		if base != nil && e.plan.cleanTx[i] {
			rows[i] = base[e.plan.oldIdx[i]]
			continue
		}
		round := e.an.slabs[i].round
		row := block[k : k+len(round) : k+len(round)]
		copy(row, round)
		rows[i] = row
		k += len(round)
	}
	return rows, carved
}

// AnalyzeStatic runs one pass of the static-offset analysis of Section
// 3.1 on sys, exactly as the package-level AnalyzeStatic, but reusing
// the engine's caches and buffers. sys is not mutated.
func (e *Engine) AnalyzeStatic(sys *model.System) (*Result, error) {
	return e.AnalyzeStaticContext(context.Background(), sys)
}

// AnalyzeStaticContext is AnalyzeStatic with cancellation, with the
// same polling points as AnalyzeContext (a static pass is one round).
func (e *Engine) AnalyzeStaticContext(ctx context.Context, sys *model.System) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	e.ctx = ctx
	defer func() { e.ctx = nil }()
	e.bind(sys)
	e.resetCounters()
	e.initBounds()
	// Stage 1 runs once: static analysis keeps the input offsets.
	e.an.refreshOffsets()
	if err := e.runRound(0); err != nil {
		return nil, err
	}
	return e.finalize(1, true), nil
}

// bind copies sys into the engine's working system, rebinds the
// analyzer (which resizes the slabs and selectively rebuilds hp rows)
// and refreshes the flat work list.
func (e *Engine) bind(sys *model.System) {
	e.copySystem(sys)
	e.an.bind(e.work, e.opt)
	e.flat = e.flat[:0]
	e.rowStart = e.rowStart[:0]
	for i := range e.work.Transactions {
		e.rowStart = append(e.rowStart, len(e.flat))
		for j := range e.work.Transactions[i].Tasks {
			e.flat = append(e.flat, [2]int{i, j})
		}
	}
	if cap(e.errs) < len(e.flat) {
		e.errs = make([]error, len(e.flat))
	}
	e.jitChanged = reuseRow(e.jitChanged, len(e.work.Transactions))
	for i := range e.jitChanged {
		e.jitChanged[i] = false
	}
	e.roundCopyValid = false
	e.havePrev = false
}

// initBounds computes the per-transaction best-case bounds of Eq. (18)
// into the slabs; they depend only on BCETs, platforms and the
// external release offset, none of which the iteration rewrites.
func (e *Engine) initBounds() {
	for i := range e.work.Transactions {
		sl := &e.an.slabs[i]
		bestBoundsTx(e.work, i, e.opt.TightBestCase, sl.initStarts, sl.initCompl)
	}
}

// copySystem copies src value by value into the engine-owned working
// system, reusing every slice whose capacity suffices.
func (e *Engine) copySystem(src *model.System) {
	if e.work == nil {
		e.work = src.Clone()
		return
	}
	w := e.work
	w.Platforms = append(w.Platforms[:0], src.Platforms...)
	if cap(w.Transactions) < len(src.Transactions) {
		w.Transactions = make([]model.Transaction, len(src.Transactions))
	} else {
		w.Transactions = w.Transactions[:len(src.Transactions)]
	}
	for i := range src.Transactions {
		st := &src.Transactions[i]
		wt := &w.Transactions[i]
		tasks := wt.Tasks
		*wt = *st
		wt.Tasks = append(tasks[:0], st.Tasks...)
	}
}

// minParallelTasks is the round size below which fanning out is a
// loss: one task's response computation is microseconds of work, so
// spawning a worker set per round only pays off once a round carries
// enough tasks to amortise it. Small systems — the paper example, the
// tight search loops of priority assignment and design search — run
// sequentially whatever Options.Workers says; results are identical
// either way.
const minParallelTasks = 16

// runRound executes stages 2 and 3 of the pipeline for round iter: for
// every task to compute, in parallel across Options.Workers
// goroutines, enumerate its scenarios and compute its worst-case
// response with the offsets and jitters currently stored in the
// working system, writing the TaskResults into the slabs in task index
// order. On a seeded (delta) round still covered by the baseline's
// recorded history, clean tasks are replayed — copied from the
// baseline — and only the dirty work list is computed; the copied
// values are bitwise what the computation would have produced.
func (e *Engine) runRound(iter int) error {
	work := e.flat
	if e.plan != nil && iter < len(e.plan.base) {
		base := e.plan.base[iter]
		for _, c := range e.plan.clean {
			i, j := c[0], c[1]
			e.an.slabs[i].round[j] = base[e.plan.oldIdx[i]][j]
		}
		e.deltaSaved += len(e.plan.clean)
		work = e.plan.dirty
	}

	n := len(work)
	workers := e.opt.workers()
	if workers > n {
		workers = n
	}
	sequential := workers <= 1 || n < minParallelTasks
	outer := workers
	if sequential {
		outer = 1
	}

	// Workers the round's task fan-out leaves idle are lent to the
	// exact scenario sweeps of the tasks it does run, through the
	// shared budget: the sweeps split into cursor chunks and borrow
	// whatever is free, so total goroutines stay bounded by
	// Options.Workers whichever level the work lands on. The budget
	// starts at the dispatch-time slack and — on the parallel path —
	// regains a slot whenever an outer worker drains (batch.Options.
	// Lend), which is what kills the straggler tail of a skewed round:
	// one task with a millionfold sweep no longer grinds alone while
	// the workers that finished the cheap tasks idle. The budget stays
	// empty when the inner parallelism cannot engage (approximate
	// analysis, parallelism or streaming disabled) and — by
	// construction of workers() — when Workers is 1, preserving the
	// strictly-sequential contract callers inside batch.MapWorkers
	// rely on.
	inner := e.opt.Exact && !e.opt.DisableExactParallel && !e.opt.DisableExactStreaming
	spare := 0
	if inner {
		spare = e.opt.workers() - outer
	}
	if e.an.budget == nil {
		e.an.budget = batch.NewBudget(spare)
	} else {
		e.an.budget.Reset(spare)
	}

	if sequential {
		for k := 0; k < n; k++ {
			if err := e.ctx.Err(); err != nil {
				return wrapCancelled(err)
			}
			if err := e.analyzeTask(work[k][0], work[k][1], &e.seq); err != nil {
				return err
			}
		}
		return nil
	}
	var lend *batch.Budget
	if inner {
		lend = e.an.budget
	}

	errs := e.errs[:n]
	for k := range errs {
		errs[k] = nil
	}
	// The per-task computations only read the analyzer's state and
	// write disjoint round cells of the slabs, so a successful round
	// is deterministic regardless of scheduling. Errors are staged per
	// task and the first in index order among those staged wins; the
	// sentinel returned to batch.Map cancels the remaining tasks, so
	// a failing round (only the exact analysis can fail, on scenario
	// overflow) does not burn CPU finishing work it will discard. The
	// cancellation means which failing task the error names can vary
	// with scheduling when several would fail — the error identity
	// (ErrTooManyScenarios) is stable, the task name is not.
	_, _ = batch.Map(n, batch.Options{Workers: workers, Lend: lend}, func(k int) (struct{}, error) {
		// Cancellation point between parallel per-task responses: the
		// sentinel makes batch.Map stop handing out the round's
		// remaining tasks.
		if err := e.ctx.Err(); err != nil {
			errs[k] = wrapCancelled(err)
			return struct{}{}, errRoundFailed
		}
		// The nil-tolerant assertion keeps a zero-value Engine working
		// (its pool has no New hook).
		ts, _ := e.pool.Get().(*taskScratch)
		if ts == nil {
			ts = new(taskScratch)
		}
		err := e.analyzeTask(work[k][0], work[k][1], ts)
		e.pool.Put(ts)
		if err != nil {
			errs[k] = err
			return struct{}{}, errRoundFailed
		}
		return struct{}{}, nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// errRoundFailed is the sentinel a parallel round hands batch.Map to
// cancel outstanding tasks; the caller reports the staged per-task
// error instead.
var errRoundFailed = errors.New("analysis: round failed")

// wrapCancelled wraps a context error so errors.Is(err,
// context.Canceled / DeadlineExceeded) keeps working while the message
// names the analysis as the aborted operation.
func wrapCancelled(err error) error {
	return fmt.Errorf("analysis: cancelled: %w", err)
}

// analyzeTask computes the response of task (i, j) of the working
// system and stores its TaskResult in the transaction's slab. When the
// last propagation step left every input of the task bitwise unchanged
// — the jitters of its own transaction and of every transaction with a
// non-empty interference row; offsets, best-case bounds and parameters
// are fixed for the whole analysis — recomputation is a pure function
// of inputs identical to the previous round's, so the previous round's
// TaskResult is copied instead (bit-identical by determinism). The
// fast path is what makes the convergence-confirming final rounds of
// an exact analysis near-free.
func (e *Engine) analyzeTask(i, j int, ts *taskScratch) error {
	if e.roundCopyValid && e.roundInputsUnchanged(i, j) {
		e.an.slabs[i].round[j] = e.an.slabs[i].lastRound[j]
		e.roundCopied.Add(1)
		return nil
	}
	r, crit, st, err := e.an.responseTime(e.ctx, i, j, ts)
	if st.pruned != 0 {
		e.pruned.Add(st.pruned)
	}
	if st.subtrees != 0 {
		e.subtrees.Add(st.subtrees)
	}
	if st.seeded {
		e.sweepSeeded.Add(1)
	}
	if st.discarded {
		e.sweepDiscarded.Add(1)
	}
	if err != nil {
		// Cancellation is not a property of the task being analysed:
		// pass it through unwrapped so the message carries a single
		// "analysis: cancelled" prefix, like the other polling points.
		if ctxErr := e.ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return err
		}
		return fmt.Errorf("analysis: %s: %w", e.work.TaskName(i, j), err)
	}
	t := &e.work.Transactions[i].Tasks[j]
	e.an.slabs[i].round[j] = TaskResult{
		Offset:            t.Offset,
		Jitter:            t.Jitter,
		Best:              e.an.slabs[i].initCompl[j],
		Worst:             r,
		CriticalInitiator: crit.initiator,
		CriticalJob:       crit.job,
	}
	return nil
}

// detach copies the current round state into a self-contained Result:
// the returned System and TaskResults are deep copies, valid after the
// engine moves on to its next analysis. Convergence and verdict are
// left at their zero values (a mid-iteration snapshot has neither).
func (e *Engine) detach(iterations int) *Result {
	res := &Result{
		System:     cloneCompact(e.work, len(e.flat)),
		Tasks:      make([][]TaskResult, len(e.an.slabs)),
		Iterations: iterations,
	}
	block := make([]TaskResult, len(e.flat))
	k := 0
	for i := range e.an.slabs {
		round := e.an.slabs[i].round
		row := block[k : k+len(round) : k+len(round)]
		copy(row, round)
		res.Tasks[i] = row
		k += len(round)
	}
	return res
}

// cloneCompact deep-copies a system like model.System.Clone, but
// carves every transaction's task slice out of one shared block
// (capacity-capped, so a later append relocates instead of clobbering
// a neighbour) — detach runs on every analysis, and the per-transaction
// allocations of the general Clone are measurable on the delta path.
func cloneCompact(src *model.System, totalTasks int) *model.System {
	c := &model.System{
		Transactions: make([]model.Transaction, len(src.Transactions)),
		Platforms:    append(src.Platforms[:0:0], src.Platforms...),
	}
	block := make([]model.Task, 0, totalTasks)
	for i := range src.Transactions {
		st := &src.Transactions[i]
		start := len(block)
		block = append(block, st.Tasks...)
		c.Transactions[i] = *st
		c.Transactions[i].Tasks = block[start:len(block):len(block)]
	}
	return c
}

// finalize builds the analysis outcome from the last round. Oversized
// sequential scratch is released here so one outlier exact analysis
// does not pin its peak memory across the engine's lifetime (the
// pooled parallel scratch is already reclaimed by the GC).
func (e *Engine) finalize(iterations int, converged bool) *Result {
	e.seq.shrink()
	res := e.detach(iterations)
	res.Converged = converged
	res.ScenariosPruned = e.pruned.Load()
	res.SubtreesPruned = e.subtrees.Load()
	res.computeVerdict(e.opt.eps())
	return res
}

// roundUnchanged reports whether the current round's worst-case
// responses match the previous round's within eps — the fixed-point
// test of the holistic iteration.
func (e *Engine) roundUnchanged() bool {
	eps := e.opt.eps()
	for i := range e.an.slabs {
		sl := &e.an.slabs[i]
		for j := range sl.round {
			a, b := sl.prev[j], sl.round[j].Worst
			if math.IsInf(a, 1) && math.IsInf(b, 1) {
				continue
			}
			if math.Abs(a-b) > eps {
				return false
			}
		}
	}
	return true
}

// storePrev stores the round's worst-case responses into the
// convergence buffers, and the full TaskResults into the round
// fast path's copy source.
func (e *Engine) storePrev() {
	for i := range e.an.slabs {
		sl := &e.an.slabs[i]
		copy(sl.lastRound, sl.round)
		for j := range sl.round {
			sl.prev[j] = sl.round[j].Worst
		}
	}
}

// roundInputsUnchanged reports whether every transaction whose jitters
// feed the response computation of task (i, j) — its own, plus every
// transaction with interfering tasks (Eq. 17) — kept bitwise-identical
// jitters through the last propagation step.
func (e *Engine) roundInputsUnchanged(i, j int) bool {
	if e.jitChanged[i] {
		return false
	}
	for idx, hpI := range e.an.hpRow(i, j) {
		if len(hpI) > 0 && e.jitChanged[idx] {
			return false
		}
	}
	return true
}

// roundHasInf reports an unbounded response in the current round.
func (e *Engine) roundHasInf() bool {
	for i := range e.an.slabs {
		for j := range e.an.slabs[i].round {
			if math.IsInf(e.an.slabs[i].round[j].Worst, 1) {
				return true
			}
		}
	}
	return false
}
