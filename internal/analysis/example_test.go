package analysis_test

import (
	"fmt"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/platform"
)

// ExampleAnalyze runs the paper's running example end to end: the
// holistic iteration converges to R(Γ1) = 31 ≤ 50 (see EXPERIMENTS.md
// for the Table 3 comparison).
func ExampleAnalyze() {
	res, err := analysis.Analyze(experiments.PaperSystem(), analysis.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("R(Γ1) = %g after %d iterations, schedulable = %v\n",
		res.TransactionResponse(0), res.Iterations, res.Schedulable)
	// Output:
	// R(Γ1) = 31 after 5 iterations, schedulable = true
}

// ExampleAnalyzeStatic analyses a task under externally fixed offset
// and jitter (Section 3.1).
func ExampleAnalyzeStatic() {
	sys := &model.System{
		Platforms: []platform.Params{{Alpha: 0.5, Delta: 1, Beta: 0}},
		Transactions: []model.Transaction{{
			Period: 20, Deadline: 20,
			Tasks: []model.Task{{WCET: 2, BCET: 2, Priority: 1, Offset: 3, Jitter: 4}},
		}},
	}
	res, err := analysis.AnalyzeStatic(sys, analysis.Options{})
	if err != nil {
		panic(err)
	}
	// Response from the transaction activation: offset 3 + jitter 4 +
	// delay 1 + 2/0.5.
	fmt.Println(res.TransactionResponse(0))
	// Output:
	// 12
}

// ExampleCriticalScaling measures the spare capacity of the paper
// example: all WCETs can grow by ~24% before a deadline breaks.
func ExampleCriticalScaling() {
	k, err := analysis.CriticalScaling(experiments.PaperSystem(), analysis.Options{}, 1e-4, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical scaling ≈ %.2f\n", k)
	// Output:
	// critical scaling ≈ 1.24
}

// ExampleBestBounds derives the φmin column of the paper's Table 1.
func ExampleBestBounds() {
	starts, _ := analysis.BestBounds(experiments.PaperSystem(), false)
	fmt.Println(starts[0])
	// Output:
	// [0 3 4 5]
}
