package analysis

import "math"

// modPos returns x mod m in [0, m) using the mathematical (always
// non-negative) convention required by Eq. (7) and (10).
func modPos(x, m float64) float64 {
	r := math.Mod(x, m)
	if r < 0 {
		r += m
	}
	return r
}

// ceilE and floorE are ε-guarded integer roundings of a quotient,
// protecting the staircase terms of the analysis against floating-point
// noise (e.g. (t−ϕ)/T landing at 2.9999999999 instead of 3).
func ceilE(x, eps float64) float64  { return math.Ceil(x - eps) }
func floorE(x, eps float64) float64 { return math.Floor(x + eps) }

// phase returns ϕ^k_{i,j} per Eq. (10): the first activation of τi,j
// after the critical instant t=0 created by τi,k experiencing its
// maximal jitter:
//
//	ϕ^k_{i,j} = Ti − (φi,k + Ji,k − φi,j) mod Ti
//
// Offsets are reduced modulo the period first (the paper allows φ ≥ T
// and works with the reduced offset); the result lies in (0, Ti]. A
// value of exactly Ti means the job released at the critical instant
// itself is the first one, numbered p0 = 1 − ⌊(J+ϕ)/T⌋ by the caller.
//
// Residues within phaseEps of a period boundary are snapped to zero:
// the quantity φi,k + Ji,k − φi,j is a sum of derived best-case terms
// and frequently lands on an exact multiple of Ti, where raw
// floating-point noise would otherwise flip ϕ between ≈0 and Ti — a
// whole period of difference in the activation pattern.
func phase(phiK, jitterK, phiJ, period float64) float64 {
	r := modPos(phiK+jitterK-phiJ, period)
	if r < phaseEps || period-r < phaseEps {
		r = 0
	}
	return period - r
}

// phaseEps is the boundary-snapping tolerance of phase.
const phaseEps = 1e-9
