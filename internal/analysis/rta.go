package analysis

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"hsched/internal/batch"
	"hsched/internal/model"
)

// initiator is one coordinate of a scenario vector ν: the task τ_{tr,k}
// whose maximally-jittered release starts the busy period within its
// transaction.
type initiator struct{ tr, k int }

// scenario is one candidate worst-case configuration for τa,b. Two
// encodings share the struct:
//
//   - nu == nil: an approximate scenario of Section 3.1.2 — Γa is
//     initiated by τa,c (exact contribution W^c_a, Eq. 16) and every
//     other transaction is charged its upper bound W* (Eq. 15);
//   - nu != nil: an exact scenario vector of Section 3.1.1 — one
//     initiator per transaction with interfering tasks (Eq. 12).
//
// Scenarios are plain data (no captured closures): the interference
// they induce is evaluated by analyzer.interference, which keeps the
// per-scenario footprint to a couple of words and lets the engine pool
// the backing slices across calls.
type scenario struct {
	c  int
	nu []initiator
}

// taskScratch holds the per-task-analysis buffers (scenario sets,
// candidate lists, mixed-radix cursor state, prune bounds). The engine
// keeps a pool of them so that concurrent per-task response
// computations reuse allocations instead of growing fresh slices on
// every call.
type taskScratch struct {
	scenarios []scenario
	cands     []int
	axes      []axis
	pick      []int
	// nu is the cursor's scenario vector: one initiator per axis,
	// rewritten in place as the cursor advances — O(axes), not the
	// O(count·axes) backing the materialised sweep used to pin here.
	nu     []initiator
	bounds []float64
}

// shrink drops scratch buffers that grew past a high-water cap, so a
// single huge analysis does not pin its peak memory for the lifetime
// of a reused engine. Called between analyses, never inside one. The
// scenario list only grows on the approximate path and the
// materialised (Options.DisableExactStreaming) exact sweep — the
// streamed sweep never touches it, and its ν backing is allocated
// fresh and left to the GC, so the old ν high-water check is gone. The
// remaining buffers are bounded by axis and candidate counts, small by
// construction, but an outlier system with thousands of transactions
// or tasks per transaction would still pin them across reuse.
func (ts *taskScratch) shrink() {
	const maxRetain = 1 << 16
	if cap(ts.scenarios) > maxRetain {
		ts.scenarios = nil
	}
	const maxSmallRetain = 1 << 10
	if cap(ts.cands) > maxSmallRetain {
		ts.cands = nil
	}
	if cap(ts.axes) > maxSmallRetain {
		ts.axes = nil
	}
	if cap(ts.pick) > maxSmallRetain {
		ts.pick = nil
	}
	if cap(ts.nu) > maxSmallRetain {
		ts.nu = nil
	}
	if cap(ts.bounds) > maxSmallRetain {
		ts.bounds = nil
	}
}

// axis is one dimension of the exact scenario product: the candidate
// critical-instant tasks of one transaction.
type axis struct {
	tr    int
	cands []int
}

// critical identifies the configuration attaining a worst-case
// response: the busy-period initiator c and the job index p.
type critical struct {
	initiator int
	job       int
}

// unboundedCritical marks an unbounded response.
var unboundedCritical = critical{initiator: -1}

// cancelCheckInterval is how many scenarios a response-time sweep
// steps through between context polls: an exact analysis can face
// millions of scenarios per task, each a few fixed-point iterations,
// so polling every few hundred keeps cancellation latency in the
// microsecond range while the poll itself stays invisible in profiles.
const cancelCheckInterval = 256

// responseTime computes the worst-case response time R of τa,b
// (0-based indices), measured from the activation of Γa, with the
// offsets and jitters currently stored in the system, together with
// the scenario attaining it and the number of exact scenarios the
// admissible prune skipped. It returns +Inf when the busy period does
// not converge (platform overload). ts provides reusable buffers; it
// must not be shared between concurrent calls. ctx is polled every
// cancelCheckInterval scenarios so huge exact sweeps abort promptly.
func (an *analyzer) responseTime(ctx context.Context, a, b int, ts *taskScratch) (float64, critical, int64, error) {
	ta := &an.sys.Transactions[a].Tasks[b]
	alpha := an.sys.Platforms[ta.Platform].Alpha
	hp := an.hpRow(a, b)

	if an.slabs[a].overload[b] {
		return math.Inf(1), unboundedCritical, 0, nil
	}

	if !an.opt.Exact {
		r, crit, _, ok, err := an.sweepList(ctx, a, b, an.approxScenarios(a, b, hp, ts), hp, alpha, nil)
		if err != nil {
			return 0, unboundedCritical, 0, err
		}
		if !ok {
			return math.Inf(1), unboundedCritical, 0, nil
		}
		return r, crit, 0, nil
	}
	return an.exactSweep(ctx, a, b, hp, alpha, ts)
}

// exactSweep runs the exact scenario enumeration of Section 3.1.1 as a
// streamed, pruned, optionally chunk-parallel sweep over the
// mixed-radix scenario space — the same scenarios, in the same
// deterministic order, as the historical materialised sweep, with
// bit-identical results for every toggle and worker combination.
func (an *analyzer) exactSweep(ctx context.Context, a, b int, hp [][]int, alpha float64, ts *taskScratch) (float64, critical, int64, error) {
	axes, aAxis, count, err := an.buildAxes(a, b, hp, ts)
	if err != nil {
		return 0, unboundedCritical, 0, err
	}

	// The bound computation costs one approximate fixed point per Γa
	// initiator; on a degenerate single-axis sweep (count equals the
	// initiator count — no cross-transaction product at all) that is
	// as much work as the sweep itself with nothing to amortise it, so
	// pruning only arms when other axes multiply the space.
	var bounds []float64
	if !an.opt.DisableExactPruning && count > len(axes[aAxis].cands) {
		bounds = an.pruneBounds(a, b, hp, alpha, axes[aAxis].cands, ts)
	}

	if an.opt.DisableExactStreaming {
		// Reference path: materialise every scenario vector first, then
		// evaluate the list sequentially — the seed sweep the streamed
		// cursor is tested against.
		r, crit, pruned, ok, err := an.sweepList(ctx, a, b, an.materialiseScenarios(axes, aAxis, count, ts), hp, alpha, bounds)
		if err != nil {
			return 0, unboundedCritical, 0, err
		}
		if !ok {
			return math.Inf(1), unboundedCritical, pruned, nil
		}
		return r, crit, pruned, nil
	}

	// Chunked dispatch: split the cursor range across the round's
	// spare workers when the sweep is large enough to amortise the
	// fan-out. The chunk count is sized to the engine's whole worker
	// bound, not the budget's dispatch-time slack: a saturated round
	// lends workers back as its cheap tasks drain (batch.Options.Lend),
	// and MapRange re-polls the budget at every chunk boundary, so
	// late-freed workers still land on the remaining chunks. Chunk
	// results are reduced in chunk-index order below, which reproduces
	// the sequential sweep's first-maximum tie breaking exactly.
	chunks := 1
	if !an.opt.DisableExactParallel && an.budget != nil && an.opt.workers() > 1 && count >= 2*exactChunkMin {
		chunks = count / exactChunkMin
		if m := 4 * an.opt.workers(); chunks > m {
			chunks = m
		}
	}
	if chunks <= 1 {
		res, err := an.sweepRange(ctx, a, b, axes, aAxis, 0, count, hp, alpha, bounds, nil, ts.pick[:len(axes)], ts.nu[:len(axes)])
		if err != nil {
			return 0, unboundedCritical, 0, err
		}
		if !res.finite {
			return math.Inf(1), unboundedCritical, res.pruned, nil
		}
		return res.best, res.crit, res.pruned, nil
	}

	var shared atomic.Uint64 // Float64bits of the best response any chunk evaluated
	parts, err := batch.MapRange(count, chunks, an.budget, func(chunk, lo, hi int) (chunkResult, error) {
		// Chunk workers need private cursor state; everything else
		// (axes, bounds, slabs, the system) is read-only for the round.
		pick := make([]int, len(axes))
		nu := make([]initiator, len(axes))
		return an.sweepRange(ctx, a, b, axes, aAxis, lo, hi, hp, alpha, bounds, &shared, pick, nu)
	})
	if err != nil {
		return 0, unboundedCritical, 0, err
	}
	best := 0.0
	crit := critical{initiator: b}
	pruned := int64(0)
	finite := true
	for _, p := range parts {
		pruned += p.pruned
		if !p.finite {
			finite = false
		}
		if p.best > best {
			best, crit = p.best, p.crit
		}
	}
	if !finite {
		return math.Inf(1), unboundedCritical, pruned, nil
	}
	return best, crit, pruned, nil
}

// exactChunkMin is the smallest cursor range worth handing to a
// borrowed goroutine: below it the chunk's fixed-point work does not
// amortise the dispatch, and the per-chunk prune loses too much of its
// running-best context.
const exactChunkMin = 2048

// chunkResult is one contiguous cursor range's reduction: its best
// response with the scenario attaining it, the scenarios the prune
// skipped, and whether every evaluated fixed point converged.
type chunkResult struct {
	best   float64
	crit   critical
	pruned int64
	finite bool
}

// sweepRange evaluates the exact scenarios with flat indices [lo, hi)
// in cursor order. bounds, when non-nil, enables the admissible prune:
// bounds[c] is an upper bound on the response of every scenario whose
// Γa initiator is τa,c (Eq. 15 dominates Eq. 13 termwise, see
// pruneBounds), so a scenario whose bound cannot strictly beat the
// running best cannot change the outcome and is skipped. shared, when
// non-nil, is the cross-chunk Float64bits of the best response any
// chunk has evaluated; pruning against it needs strict dominance
// (bound < shared) because a tied scenario in another chunk may come
// later in cursor order than this one, whereas the chunk-local best
// may prune ties (bound <= best) — a tie with an earlier in-range
// scenario never updates best under the strict r > best rule.
func (an *analyzer) sweepRange(ctx context.Context, a, b int, axes []axis, aAxis, lo, hi int, hp [][]int, alpha float64, bounds []float64, shared *atomic.Uint64, pick []int, nu []initiator) (chunkResult, error) {
	cursorSeek(axes, pick, nu, lo)
	res := chunkResult{crit: critical{initiator: b}, finite: true}
	for idx := lo; idx < hi; idx++ {
		if (idx-lo)%cancelCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return chunkResult{}, wrapCancelled(err)
			}
		}
		if bounds != nil {
			bd := bounds[nu[aAxis].k]
			if bd <= res.best || (shared != nil && bd < math.Float64frombits(shared.Load())) {
				res.pruned++
				cursorNext(axes, pick, nu)
				continue
			}
		}
		sc := scenario{c: nu[aAxis].k, nu: nu}
		r, p, ok := an.scenarioResponse(a, b, sc, hp, alpha)
		if !ok {
			// Unbounded is absorbing: the task's response is +Inf
			// whichever scenario diverged first.
			res.finite = false
			return res, nil
		}
		if r > res.best {
			res.best = r
			res.crit = critical{initiator: sc.c, job: p}
			if shared != nil {
				sharedMax(shared, r)
			}
		}
		cursorNext(axes, pick, nu)
	}
	return res, nil
}

// sharedMax raises the shared best-response cell to r if r exceeds it
// (monotone, so concurrent updates commute). Only ever called with
// r > 0: sweep bests start at 0 and only strict improvements publish.
func sharedMax(s *atomic.Uint64, r float64) {
	for {
		cur := s.Load()
		if math.Float64frombits(cur) >= r {
			return
		}
		if s.CompareAndSwap(cur, math.Float64bits(r)) {
			return
		}
	}
}

// sweepList evaluates an explicit scenario list in order — the
// approximate path's reduced set, or the materialised exact sweep.
// bounds enables the same admissible prune as sweepRange (nil for the
// approximate path, whose scenarios ARE the bounds). ok is false when
// a scenario's busy period diverged (the caller reports +Inf).
func (an *analyzer) sweepList(ctx context.Context, a, b int, scenarios []scenario, hp [][]int, alpha float64, bounds []float64) (float64, critical, int64, bool, error) {
	best := 0.0
	crit := critical{initiator: b}
	pruned := int64(0)
	for si, sc := range scenarios {
		if si%cancelCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, unboundedCritical, 0, false, wrapCancelled(err)
			}
		}
		if bounds != nil && bounds[sc.c] <= best {
			pruned++
			continue
		}
		r, p, ok := an.scenarioResponse(a, b, sc, hp, alpha)
		if !ok {
			return 0, unboundedCritical, pruned, false, nil
		}
		if r > best {
			best = r
			crit = critical{initiator: sc.c, job: p}
		}
	}
	return best, crit, pruned, true, nil
}

// overloaded reports whether the long-run demand of τa,b plus its
// interfering set exceeds the platform rate, which makes the busy
// period unbounded. It reads only WCETs, periods and the platform
// rate — inputs the holistic rounds never rewrite — so the analyzer
// evaluates it once per analysis into the slabs (refreshOverload)
// instead of re-summing the hp row every round.
func (an *analyzer) overloaded(a, b int, alpha float64) bool {
	ta := &an.sys.Transactions[a].Tasks[b]
	u := ta.WCET / (an.sys.Transactions[a].Period * alpha)
	for i, hpI := range an.hpRow(a, b) {
		tr := &an.sys.Transactions[i]
		for _, j := range hpI {
			u += tr.Tasks[j].WCET / (tr.Period * alpha)
		}
	}
	return u >= 1-1e-12
}

// interference returns the total higher-priority demand the scenario sc
// charges to a busy period of length t of τa,b (already scaled by 1/α),
// excluding the jobs of τa,b itself: Eq. 13 for exact scenario vectors,
// Eq. 15/16 for the approximate reduction.
func (an *analyzer) interference(a int, sc scenario, hp [][]int, alpha, t float64) float64 {
	sum := 0.0
	if sc.nu == nil {
		for i, hpI := range hp {
			if len(hpI) == 0 {
				continue
			}
			if i == a {
				sum += an.wk(a, sc.c, hpI, alpha, t)
			} else {
				sum += an.wstar(i, hpI, alpha, t)
			}
		}
		return sum
	}
	for _, ch := range sc.nu {
		if len(hp[ch.tr]) == 0 {
			continue
		}
		sum += an.wk(ch.tr, ch.k, hp[ch.tr], alpha, t)
	}
	return sum
}

// approxScenarios builds the reduced scenario set of Section 3.1.2:
// one scenario per c ∈ hp_a(τa,b) ∪ {τa,b}, charging every other
// transaction its upper bound W* (Eq. 15) and Γa its exact
// contribution W^c_a (Eq. 16).
func (an *analyzer) approxScenarios(a, b int, hp [][]int, ts *taskScratch) []scenario {
	cands := append(append(ts.cands[:0], hp[a]...), b)
	ts.cands = cands
	scenarios := ts.scenarios[:0]
	for _, c := range cands {
		scenarios = append(scenarios, scenario{c: c})
	}
	ts.scenarios = scenarios
	return scenarios
}

// buildAxes derives the axes of the exact scenario product of Section
// 3.1.1 — per transaction with interfering tasks, its candidate
// critical-instant set (Eq. 12), with the task under analysis added to
// its own transaction's candidates — plus the index aAxis of the
// transaction under analysis among them and the product count.
func (an *analyzer) buildAxes(a, b int, hp [][]int, ts *taskScratch) (axes []axis, aAxis, count int, err error) {
	axes = ts.axes[:0]
	count = 1
	aAxis = -1
	for i, hpI := range hp {
		var cands []int
		if i == a {
			// The only axis whose candidate list differs from hp itself;
			// it borrows the scratch candidate buffer.
			ts.cands = append(append(ts.cands[:0], hpI...), b)
			cands = ts.cands
			aAxis = len(axes)
		} else if len(hpI) > 0 {
			cands = hpI
		} else {
			continue
		}
		axes = append(axes, axis{tr: i, cands: cands})
		count *= len(cands)
		if count > an.opt.maxScenarios() {
			ts.axes = axes
			return nil, 0, 0, fmt.Errorf("%w: task τ%d,%d needs more than %d scenarios",
				ErrTooManyScenarios, a+1, b+1, an.opt.maxScenarios())
		}
	}
	ts.axes = axes
	if cap(ts.pick) < len(axes) {
		ts.pick = make([]int, len(axes))
	}
	if cap(ts.nu) < len(axes) {
		ts.nu = make([]initiator, len(axes))
	}
	return axes, aAxis, count, nil
}

// pruneBounds computes, for every candidate initiator c of the
// transaction under analysis, an upper bound on the response of every
// exact scenario with ν_a = c: the fixed point of the approximate
// scenario that charges Γa its exact contribution W^c_a and every
// other transaction the pointwise maximum W* (Eq. 15). W* dominates
// every per-initiator W^k termwise, the busy-period and completion
// fixed points are monotone in the interference, and the dominated job
// range is a subset — so the bound is admissible, and a scenario whose
// bound cannot strictly beat the running best can be skipped without
// changing any result bit. A bound whose own fixed point diverges is
// +Inf, which never prunes. The returned slice is indexed by initiator
// task id; entries for non-candidates are stale and must not be read.
func (an *analyzer) pruneBounds(a, b int, hp [][]int, alpha float64, cands []int, ts *taskScratch) []float64 {
	nTasks := len(an.sys.Transactions[a].Tasks)
	if cap(ts.bounds) < nTasks {
		ts.bounds = make([]float64, nTasks)
	}
	bounds := ts.bounds[:nTasks]
	for _, c := range cands {
		r, _, ok := an.scenarioResponse(a, b, scenario{c: c}, hp, alpha)
		if !ok {
			r = math.Inf(1)
		}
		bounds[c] = r
	}
	ts.bounds = bounds
	return bounds
}

// cursorSeek positions the mixed-radix scenario cursor at flat index
// idx: pick[i] is the candidate index of axis i — axis 0 is the
// fastest-varying digit, exactly the enumeration order of the
// materialised sweep — and nu mirrors it as the (transaction,
// initiator) pairs the interference sum consumes, in axis order.
func cursorSeek(axes []axis, pick []int, nu []initiator, idx int) {
	for i := range axes {
		n := len(axes[i].cands)
		d := idx % n
		idx /= n
		pick[i] = d
		nu[i] = initiator{tr: axes[i].tr, k: axes[i].cands[d]}
	}
}

// cursorNext advances the cursor one scenario, rewriting only the nu
// entries of the axes whose digit moved — amortised O(1) per step.
func cursorNext(axes []axis, pick []int, nu []initiator) {
	for i := range axes {
		pick[i]++
		if pick[i] < len(axes[i].cands) {
			nu[i] = initiator{tr: axes[i].tr, k: axes[i].cands[pick[i]]}
			return
		}
		pick[i] = 0
		nu[i] = initiator{tr: axes[i].tr, k: axes[i].cands[0]}
	}
}

// materialiseScenarios expands the axes into the full scenario list by
// walking the cursor once — the reference (seed) form of the exact
// sweep, kept behind Options.DisableExactStreaming for the bit-identity
// tests. The ν backing is allocated fresh and handed to the GC with
// the list; only the list header is pooled.
func (an *analyzer) materialiseScenarios(axes []axis, aAxis, count int, ts *taskScratch) []scenario {
	pick := ts.pick[:len(axes)]
	nu := ts.nu[:len(axes)]
	cursorSeek(axes, pick, nu, 0)
	nuBuf := make([]initiator, 0, count*len(axes))
	scenarios := ts.scenarios[:0]
	for idx := 0; idx < count; idx++ {
		start := len(nuBuf)
		nuBuf = append(nuBuf, nu...)
		scenarios = append(scenarios, scenario{c: nu[aAxis].k, nu: nuBuf[start:len(nuBuf):len(nuBuf)]})
		cursorNext(axes, pick, nu)
	}
	ts.scenarios = scenarios
	return scenarios
}

// scenarioResponse evaluates one scenario: busy-period length (the
// iterative expression below Eq. 16), the job range p0..pL (Eq. 14)
// and the completion-time fixed point for every job (Eq. 16),
// returning the largest response time and the job index attaining it.
// ok is false when a fixed point was not reached within
// Options.MaxInner steps.
func (an *analyzer) scenarioResponse(a, b int, sc scenario, hp [][]int, alpha float64) (float64, int, bool) {
	tr := &an.sys.Transactions[a]
	ta := &tr.Tasks[b]
	eps := an.opt.eps()
	delta := an.sys.Platforms[ta.Platform].Delta
	cOverAlpha := ta.WCET / alpha
	base := delta + ta.Blocking

	phi := an.phaseK(a, sc.c, b)
	p0 := 1 - floorE((ta.Jitter+phi)/tr.Period, eps)

	// Busy-period length L.
	L := base + cOverAlpha
	converged := false
	for it := 0; it < an.opt.maxInner(); it++ {
		jobs := ceilE((L-phi)/tr.Period, eps) - p0 + 1
		if jobs < 0 {
			jobs = 0
		}
		next := base + jobs*cOverAlpha + an.interference(a, sc, hp, alpha, L)
		if next <= L+eps {
			converged = true
			break
		}
		L = next
	}
	if !converged {
		return 0, 0, false
	}
	pL := ceilE((L-phi)/tr.Period, eps)

	best := 0.0
	bestJob := int(p0)
	w := 0.0
	for p := p0; p <= pL; p++ {
		floor := base + (p-p0+1)*cOverAlpha
		if w < floor {
			w = floor
		}
		converged = false
		for it := 0; it < an.opt.maxInner(); it++ {
			next := base + (p-p0+1)*cOverAlpha + an.interference(a, sc, hp, alpha, w)
			if next <= w+eps {
				converged = true
				break
			}
			w = next
		}
		if !converged {
			return 0, 0, false
		}
		// Response measured from the transaction activation: the job's
		// transaction was released at ϕ + (p−1)T − φ (full offset).
		r := w - (phi + (p-1)*tr.Period - ta.Offset)
		if r > best {
			best = r
			bestJob = int(p)
		}
	}
	return best, bestJob, true
}

// ScenarioCount returns N(τa,b) of Eq. (12): the number of scenario
// vectors the exact analysis must examine for task (a, b) (0-based),
// versus Na+1 for the approximate analysis. The product saturates at
// math.MaxInt — wide systems overflow a machine int long before the
// exact analysis is feasible, and a wrapped negative count would
// nonsense every consumer comparing it to MaxScenarios.
func ScenarioCount(sys *model.System, a, b int) (exact, approximate int) {
	ta := &sys.Transactions[a].Tasks[b]
	interferers := func(i int) int {
		n := 0
		tasks := sys.Transactions[i].Tasks
		for j := range tasks {
			if i == a && j == b {
				continue
			}
			if interferes(ta, &tasks[j]) {
				n++
			}
		}
		return n
	}
	exact = interferers(a) + 1
	approximate = exact
	for i := range sys.Transactions {
		if i == a {
			continue
		}
		n := interferers(i)
		if n <= 1 {
			continue
		}
		if exact > math.MaxInt/n {
			return math.MaxInt, approximate
		}
		exact *= n
	}
	return exact, approximate
}
