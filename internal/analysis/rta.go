package analysis

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"hsched/internal/batch"
	"hsched/internal/model"
)

// initiator is one coordinate of a scenario vector ν: the task τ_{tr,k}
// whose maximally-jittered release starts the busy period within its
// transaction.
type initiator struct{ tr, k int }

// scenario is one candidate worst-case configuration for τa,b. Two
// encodings share the struct:
//
//   - nu == nil: an approximate scenario of Section 3.1.2 — Γa is
//     initiated by τa,c (exact contribution W^c_a, Eq. 16) and every
//     other transaction is charged its upper bound W* (Eq. 15);
//   - nu != nil: an exact scenario vector of Section 3.1.1 — one
//     initiator per transaction with interfering tasks (Eq. 12).
//
// On the approximate encoding, pinTr optionally pins ONE further
// transaction to an exact initiator: pinTr is the 1-based transaction
// index (0, the zero value, means no pin — a 0-based field would make
// the zero-value scenario silently pin transaction 0) and pinK the
// initiator task charged via W^pinK instead of W*. The pinned form is
// what the per-axis subtree bound tables of the branch-and-bound sweep
// are computed from (see prefixBounds); the plain exact encoding
// ignores both fields.
//
// Scenarios are plain data (no captured closures): the interference
// they induce is evaluated by analyzer.interference, which keeps the
// per-scenario footprint to a few words and lets the engine pool the
// backing slices across calls.
type scenario struct {
	c     int
	pinTr int
	pinK  int
	nu    []initiator
}

// taskScratch holds the per-task-analysis buffers (scenario sets,
// candidate lists, mixed-radix cursor state, prune bounds). The engine
// keeps a pool of them so that concurrent per-task response
// computations reuse allocations instead of growing fresh slices on
// every call.
type taskScratch struct {
	scenarios []scenario
	cands     []int
	axes      []axis
	pick      []int
	// nu is the cursor's scenario vector: one initiator per axis,
	// rewritten in place as the cursor advances — O(axes), not the
	// O(count·axes) backing the materialised sweep used to pin here.
	nu     []initiator
	bounds []float64

	// Branch-and-bound scratch: boundTab holds the per-axis subtree
	// bound tables (sub-slices of boundFlat), strides the mixed-radix
	// subtree sizes and sufMin the cursor's running suffix minima; see
	// prefixBounds and sweepRange.
	boundTab  [][]float64
	boundFlat []float64
	strides   []int
	sufMin    []float64
}

// shrink drops scratch buffers that grew past a high-water cap, so a
// single huge analysis does not pin its peak memory for the lifetime
// of a reused engine. Called between analyses, never inside one. The
// scenario list only grows on the approximate path and the
// materialised (Options.DisableExactStreaming) exact sweep — the
// streamed sweep never touches it, and its ν backing is allocated
// fresh and left to the GC, so the old ν high-water check is gone. The
// remaining buffers are bounded by axis and candidate counts, small by
// construction, but an outlier system with thousands of transactions
// or tasks per transaction would still pin them across reuse.
func (ts *taskScratch) shrink() {
	const maxRetain = 1 << 16
	if cap(ts.scenarios) > maxRetain {
		ts.scenarios = nil
	}
	const maxSmallRetain = 1 << 10
	if cap(ts.cands) > maxSmallRetain {
		ts.cands = nil
	}
	if cap(ts.axes) > maxSmallRetain {
		ts.axes = nil
	}
	if cap(ts.pick) > maxSmallRetain {
		ts.pick = nil
	}
	if cap(ts.nu) > maxSmallRetain {
		ts.nu = nil
	}
	if cap(ts.bounds) > maxSmallRetain {
		ts.bounds = nil
	}
	if cap(ts.boundTab) > maxSmallRetain {
		ts.boundTab = nil
	}
	if cap(ts.boundFlat) > maxSmallRetain {
		ts.boundFlat = nil
	}
	if cap(ts.strides) > maxSmallRetain {
		ts.strides = nil
	}
	if cap(ts.sufMin) > maxSmallRetain {
		ts.sufMin = nil
	}
}

// axis is one dimension of the exact scenario product: the candidate
// critical-instant tasks of one transaction.
type axis struct {
	tr    int
	cands []int
}

// critical identifies the configuration attaining a worst-case
// response: the busy-period initiator c and the job index p.
type critical struct {
	initiator int
	job       int
}

// unboundedCritical marks an unbounded response.
var unboundedCritical = critical{initiator: -1}

// cancelCheckInterval is how many scenarios a response-time sweep
// steps through between context polls: an exact analysis can face
// millions of scenarios per task, each a few fixed-point iterations,
// so polling every few hundred keeps cancellation latency in the
// microsecond range while the poll itself stays invisible in profiles.
const cancelCheckInterval = 256

// sweepStats is the work profile one task's response computation
// reports upward: the exact scenarios the admissible prune skipped,
// the whole-subtree cursor jumps among them, and whether a previous
// sweep's critical scenario seeded (or was discarded as stale by) this
// sweep's incumbent.
type sweepStats struct {
	pruned    int64
	subtrees  int64
	seeded    bool
	discarded bool
}

// responseTime computes the worst-case response time R of τa,b
// (0-based indices), measured from the activation of Γa, with the
// offsets and jitters currently stored in the system, together with
// the scenario attaining it and the sweep's work profile. It returns
// +Inf when the busy period does not converge (platform overload). ts
// provides reusable buffers; it must not be shared between concurrent
// calls. ctx is polled every cancelCheckInterval scenarios so huge
// exact sweeps abort promptly.
func (an *analyzer) responseTime(ctx context.Context, a, b int, ts *taskScratch) (float64, critical, sweepStats, error) {
	ta := &an.sys.Transactions[a].Tasks[b]
	alpha := an.sys.Platforms[ta.Platform].Alpha
	hp := an.hpRow(a, b)

	if an.slabs[a].overload[b] {
		return math.Inf(1), unboundedCritical, sweepStats{}, nil
	}

	if !an.opt.Exact {
		r, crit, _, ok, err := an.sweepList(ctx, a, b, an.approxScenarios(a, b, hp, ts), hp, alpha, nil)
		if err != nil {
			return 0, unboundedCritical, sweepStats{}, err
		}
		if !ok {
			return math.Inf(1), unboundedCritical, sweepStats{}, nil
		}
		return r, crit, sweepStats{}, nil
	}
	return an.exactSweep(ctx, a, b, hp, alpha, ts)
}

// exactSweep runs the exact scenario enumeration of Section 3.1.1 as a
// streamed, branch-and-bound, optionally chunk-parallel sweep over the
// mixed-radix scenario space — the same scenarios, in the same
// deterministic order, as the historical materialised sweep, with
// bit-identical results for every toggle and worker combination. Two
// layers of state make it a true tree search instead of a per-scenario
// filter: per-axis admissible bound tables let the cursor skip whole
// subtrees with one seek (see sweepRange), and the critical scenario of
// the previous sweep of the same task — last round, or last analysis
// via Engine.AnalyzeFrom — is re-evaluated under the current inputs to
// seed the incumbent the bounds are pruned against.
func (an *analyzer) exactSweep(ctx context.Context, a, b int, hp [][]int, alpha float64, ts *taskScratch) (float64, critical, sweepStats, error) {
	var st sweepStats
	axes, aAxis, count, err := an.buildAxes(a, b, hp, ts)
	if err != nil {
		return 0, unboundedCritical, st, err
	}

	// The bound computation costs one approximate fixed point per Γa
	// initiator; on a degenerate single-axis sweep (count equals the
	// initiator count — no cross-transaction product at all) that is
	// as much work as the sweep itself with nothing to amortise it, so
	// pruning only arms when other axes multiply the space.
	var bounds []float64
	if !an.opt.DisableExactPruning && count > len(axes[aAxis].cands) {
		bounds = an.pruneBounds(a, b, hp, alpha, axes[aAxis].cands, ts)
	}

	if an.opt.DisableExactStreaming {
		// Reference path: materialise every scenario vector first, then
		// evaluate the list sequentially — the seed sweep the streamed
		// cursor is tested against. No subtree bounds, no incumbent
		// seeding: this is the historical per-scenario prune, verbatim.
		r, crit, pruned, ok, err := an.sweepList(ctx, a, b, an.materialiseScenarios(axes, aAxis, count, ts), hp, alpha, bounds)
		st.pruned = pruned
		if err != nil {
			return 0, unboundedCritical, st, err
		}
		if !ok {
			return math.Inf(1), unboundedCritical, st, nil
		}
		return r, crit, st, nil
	}

	var bb *sweepBounds
	if bounds != nil {
		bb = an.prefixBounds(a, b, hp, alpha, axes, aAxis, count, bounds, ts)
	}

	// Incumbent seeding: re-evaluate the critical scenario recorded by
	// the previous sweep of this task under the CURRENT offsets and
	// jitters. Whatever inputs that scenario was recorded under, it is
	// a member of the current scenario space once its shape validates,
	// so its response is ≤ the true maximum — an admissible prune floor
	// that never enters the result. Pruning against it is strict
	// (bound < floor): a scenario tying the floor may be the first
	// maximum and must still be evaluated. A seed whose axes no longer
	// match (the dirty closure moved the task's interference shape) is
	// discarded, never trusted. The floor's guaranteed price — one
	// extra fixed point per sweep — is only ever paid when a seed
	// exists, i.e. from the second round of a converging task or across
	// AnalyzeFrom probes, exactly the regimes where the previous
	// critical scenario is close to (usually is) the current maximum
	// and the floor prunes most of the space; a gate on sweep size was
	// tried and measurably hurt the probe-chain workloads, whose sweeps
	// are small but whose seeds are near-perfect.
	reuse := !an.opt.DisableSweepReuse
	floor := 0.0
	if bb != nil && reuse {
		if seed := an.slabs[a].seedNu[b]; len(seed) > 0 {
			if !seedValidFor(axes, seed) {
				st.discarded = true
			} else {
				st.seeded = true
				r, _, ok := an.scenarioResponse(a, b, scenario{c: seed[aAxis].k, nu: seed}, hp, alpha)
				if !ok {
					// The seed scenario itself diverges under the current
					// inputs. Its bound diverges too (the bound dominates),
					// so a cold sweep could never prune it, would evaluate
					// it, and unbounded is absorbing — the outcome is the
					// same +Inf either way.
					return math.Inf(1), unboundedCritical, st, nil
				}
				floor = r
			}
		}
	}

	// Chunked dispatch: split the cursor range across the round's
	// spare workers when the sweep is large enough to amortise the
	// fan-out. The chunk count is sized to the engine's whole worker
	// bound, not the budget's dispatch-time slack: a saturated round
	// lends workers back as its cheap tasks drain (batch.Options.Lend),
	// and MapRange re-polls the budget at every chunk boundary, so
	// late-freed workers still land on the remaining chunks. Chunk
	// results are reduced in chunk-index order below, which reproduces
	// the sequential sweep's first-maximum tie breaking exactly.
	chunks := 1
	if !an.opt.DisableExactParallel && an.budget != nil && an.opt.workers() > 1 && count >= 2*exactChunkMin {
		chunks = count / exactChunkMin
		if m := 4 * an.opt.workers(); chunks > m {
			chunks = m
		}
	}
	if chunks <= 1 {
		if cap(ts.sufMin) < len(axes) {
			ts.sufMin = make([]float64, len(axes))
		}
		res, err := an.sweepRange(ctx, a, b, axes, aAxis, 0, count, hp, alpha, bb, floor, reuse, nil, ts.pick[:len(axes)], ts.nu[:len(axes)], ts.sufMin[:len(axes)])
		if err != nil {
			return 0, unboundedCritical, st, err
		}
		st.pruned, st.subtrees = res.pruned, res.subtrees
		if !res.finite {
			return math.Inf(1), unboundedCritical, st, nil
		}
		an.storeSeed(a, b, res.critNu)
		return res.best, res.crit, st, nil
	}

	// Frontier-aware chunk boundaries: aligning the cut points to the
	// largest subtree stride that still fits a chunk keeps whole
	// subtrees inside one chunk, so a failing prefix bound skips them
	// with a single seek instead of two chunks each re-deciding half.
	align := 1
	if bb != nil {
		target := count / chunks
		for j := 1; j < len(bb.strides); j++ {
			if bb.strides[j] > target {
				break
			}
			align = bb.strides[j]
		}
	}

	var shared atomic.Uint64 // Float64bits of the best response any chunk evaluated
	if floor > 0 {
		// The incumbent floor enters the chunked sweep as the initial
		// shared bound: chunks already prune strictly against it
		// (bound < shared), exactly the tie discipline the floor needs.
		shared.Store(math.Float64bits(floor))
	}
	parts, err := batch.MapRangeAligned(count, chunks, align, an.budget, func(chunk, lo, hi int) (chunkResult, error) {
		// Chunk workers need private cursor state; everything else
		// (axes, bounds, slabs, the system) is read-only for the round.
		pick := make([]int, len(axes))
		nu := make([]initiator, len(axes))
		sufMin := make([]float64, len(axes))
		return an.sweepRange(ctx, a, b, axes, aAxis, lo, hi, hp, alpha, bb, floor, reuse, &shared, pick, nu, sufMin)
	})
	if err != nil {
		return 0, unboundedCritical, st, err
	}
	best := 0.0
	crit := critical{initiator: b}
	var critNu []initiator
	finite := true
	for _, p := range parts {
		st.pruned += p.pruned
		st.subtrees += p.subtrees
		if !p.finite {
			finite = false
		}
		if p.best > best {
			best, crit, critNu = p.best, p.crit, p.critNu
		}
	}
	if !finite {
		return math.Inf(1), unboundedCritical, st, nil
	}
	an.storeSeed(a, b, critNu)
	return best, crit, st, nil
}

// storeSeed records the critical scenario vector of a completed sweep
// into the transaction's slab, where the next sweep of the same task —
// next holistic round, or next analysis through Engine.AnalyzeFrom —
// picks it up as its incumbent seed. Concurrent per-task computations
// write disjoint slots. An empty vector (nothing beat zero, or seeding
// disabled) leaves the previous seed in place: it stays shape-valid
// and re-evaluation keeps it sound.
func (an *analyzer) storeSeed(a, b int, critNu []initiator) {
	if an.opt.DisableSweepReuse || len(critNu) == 0 {
		return
	}
	sl := &an.slabs[a]
	sl.seedNu[b] = append(sl.seedNu[b][:0], critNu...)
}

// seedValidFor reports whether a recorded critical scenario vector is
// a member of the CURRENT scenario space: one initiator per axis, each
// naming the axis's transaction and one of its candidate tasks. Any
// edit that moved the task's interference shape (priorities, platform
// mapping, task counts) fails the check and the stale seed is
// discarded — an out-of-space vector's response bounds nothing.
func seedValidFor(axes []axis, seed []initiator) bool {
	if len(seed) != len(axes) {
		return false
	}
	for i, s := range seed {
		if s.tr != axes[i].tr {
			return false
		}
		found := false
		for _, c := range axes[i].cands {
			if c == s.k {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// exactChunkMin is the smallest cursor range worth handing to a
// borrowed goroutine: below it the chunk's fixed-point work does not
// amortise the dispatch, and the per-chunk prune loses too much of its
// running-best context.
const exactChunkMin = 2048

// chunkResult is one contiguous cursor range's reduction: its best
// response with the scenario attaining it (critNu is the full vector,
// recorded for the next sweep's incumbent seed), the scenarios the
// prune skipped with the whole-subtree jumps among them, and whether
// every evaluated fixed point converged.
type chunkResult struct {
	best     float64
	crit     critical
	critNu   []initiator
	pruned   int64
	subtrees int64
	finite   bool
}

// sweepBounds is the branch-and-bound state shared (read-only) by the
// chunks of one exact sweep. tab[j], when non-nil, is the subtree
// bound table of axis j: tab[j][d] upper-bounds the response of EVERY
// scenario whose axis-j digit is d, whatever the other axes pick (see
// prefixBounds for the admissibility argument). strides[j] is the size
// of the subtree that fixes the digits of axes ≥ j — the run of
// consecutive flat indices a failing bound lets the cursor skip.
type sweepBounds struct {
	tab     [][]float64
	strides []int
}

// sweepRange evaluates the exact scenarios with flat indices [lo, hi)
// in cursor order. bb, when non-nil, arms the branch-and-bound prune:
// the cursor maintains sufMin[j] = min over axes i ≥ j of
// tab[i][pick[i]] — an admissible bound on every scenario of the
// subtree that keeps the digits of axes ≥ j — and when the tightest of
// them (sufMin[0], the current scenario's own bound) cannot strictly
// beat the incumbent, it finds the LARGEST failing j (the failing set
// is down-closed: sufMin grows with j and the predicate is monotone)
// and seeks straight past the whole subtree instead of stepping
// through it. floor is the incumbent seeded from a previous sweep's
// critical scenario re-evaluated under the current inputs; it is a
// response some in-space scenario attains, so pruning against it is
// strict (bound < floor) — a tying scenario may be the first maximum —
// and it never enters res.best. trackNu records the running best's full
// scenario vector into res.critNu for the next sweep's seed; the caller
// gates it on the reuse toggle. shared, when non-nil, is the
// cross-chunk Float64bits of the best response any chunk has evaluated
// (pre-seeded with the floor); pruning against it is strict for the
// same tie reason, whereas the chunk-local best may prune ties
// (bound <= best) — a tie with an earlier in-range scenario never
// updates best under the strict r > best rule.
func (an *analyzer) sweepRange(ctx context.Context, a, b int, axes []axis, aAxis, lo, hi int, hp [][]int, alpha float64, bb *sweepBounds, floor float64, trackNu bool, shared *atomic.Uint64, pick []int, nu []initiator, sufMin []float64) (chunkResult, error) {
	cursorSeek(axes, pick, nu, lo)
	res := chunkResult{crit: critical{initiator: b}, finite: true}
	if bb != nil {
		refreshSufMin(bb.tab, pick, sufMin, len(axes)-1)
	}
	steps := 0
	for idx := lo; idx < hi; {
		if steps%cancelCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return chunkResult{}, wrapCancelled(err)
			}
		}
		steps++
		if bb != nil {
			thr := floor
			if shared != nil {
				if sv := math.Float64frombits(shared.Load()); sv > thr {
					thr = sv
				}
			}
			if bd := sufMin[0]; bd <= res.best || bd < thr {
				// Find the largest axis whose whole remaining subtree the
				// failing bound covers, and skip it in one jump.
				jmax := 0
				for j := len(axes) - 1; j >= 1; j-- {
					if x := sufMin[j]; x <= res.best || x < thr {
						jmax = j
						break
					}
				}
				if jmax == 0 {
					res.pruned++
					refreshSufMin(bb.tab, pick, sufMin, cursorNext(axes, pick, nu))
					idx++
					continue
				}
				next := idx - idx%bb.strides[jmax] + bb.strides[jmax]
				if next > hi {
					next = hi
				}
				res.pruned += int64(next - idx)
				res.subtrees++
				idx = next
				if idx >= hi {
					break
				}
				cursorSeek(axes, pick, nu, idx)
				refreshSufMin(bb.tab, pick, sufMin, len(axes)-1)
				continue
			}
		}
		sc := scenario{c: nu[aAxis].k, nu: nu}
		r, p, ok := an.scenarioResponse(a, b, sc, hp, alpha)
		if !ok {
			// Unbounded is absorbing: the task's response is +Inf
			// whichever scenario diverged first.
			res.finite = false
			return res, nil
		}
		if r > res.best {
			res.best = r
			res.crit = critical{initiator: sc.c, job: p}
			if trackNu {
				res.critNu = append(res.critNu[:0], nu...)
			}
			if shared != nil {
				sharedMax(shared, r)
			}
		}
		top := cursorNext(axes, pick, nu)
		if bb != nil {
			refreshSufMin(bb.tab, pick, sufMin, top)
		}
		idx++
	}
	return res, nil
}

// refreshSufMin rebuilds the suffix minima of the axes ≤ top after the
// cursor digits of those axes moved; entries above top are unchanged
// by construction of the mixed-radix order (cursorNext reports the
// highest rolled axis). Axes without a bound table contribute +Inf —
// they never tighten a subtree bound, only their neighbours do.
func refreshSufMin(tab [][]float64, pick []int, sufMin []float64, top int) {
	m := math.Inf(1)
	if top+1 < len(sufMin) {
		m = sufMin[top+1]
	}
	for j := top; j >= 0; j-- {
		if t := tab[j]; t != nil {
			if v := t[pick[j]]; v < m {
				m = v
			}
		}
		sufMin[j] = m
	}
}

// sharedMax raises the shared best-response cell to r if r exceeds it
// (monotone, so concurrent updates commute). Only ever called with
// r > 0: sweep bests start at 0 and only strict improvements publish.
func sharedMax(s *atomic.Uint64, r float64) {
	for {
		cur := s.Load()
		if math.Float64frombits(cur) >= r {
			return
		}
		if s.CompareAndSwap(cur, math.Float64bits(r)) {
			return
		}
	}
}

// sweepList evaluates an explicit scenario list in order — the
// approximate path's reduced set, or the materialised exact sweep.
// bounds enables the same admissible prune as sweepRange (nil for the
// approximate path, whose scenarios ARE the bounds). ok is false when
// a scenario's busy period diverged (the caller reports +Inf).
func (an *analyzer) sweepList(ctx context.Context, a, b int, scenarios []scenario, hp [][]int, alpha float64, bounds []float64) (float64, critical, int64, bool, error) {
	best := 0.0
	crit := critical{initiator: b}
	pruned := int64(0)
	for si, sc := range scenarios {
		if si%cancelCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, unboundedCritical, 0, false, wrapCancelled(err)
			}
		}
		if bounds != nil && bounds[sc.c] <= best {
			pruned++
			continue
		}
		r, p, ok := an.scenarioResponse(a, b, sc, hp, alpha)
		if !ok {
			return 0, unboundedCritical, pruned, false, nil
		}
		if r > best {
			best = r
			crit = critical{initiator: sc.c, job: p}
		}
	}
	return best, crit, pruned, true, nil
}

// overloaded reports whether the long-run demand of τa,b plus its
// interfering set exceeds the platform rate, which makes the busy
// period unbounded. It reads only WCETs, periods and the platform
// rate — inputs the holistic rounds never rewrite — so the analyzer
// evaluates it once per analysis into the slabs (refreshOverload)
// instead of re-summing the hp row every round.
func (an *analyzer) overloaded(a, b int, alpha float64) bool {
	ta := &an.sys.Transactions[a].Tasks[b]
	u := ta.WCET / (an.sys.Transactions[a].Period * alpha)
	for i, hpI := range an.hpRow(a, b) {
		tr := &an.sys.Transactions[i]
		for _, j := range hpI {
			u += tr.Tasks[j].WCET / (tr.Period * alpha)
		}
	}
	return u >= 1-1e-12
}

// interference returns the total higher-priority demand the scenario sc
// charges to a busy period of length t of τa,b (already scaled by 1/α),
// excluding the jobs of τa,b itself: Eq. 13 for exact scenario vectors,
// Eq. 15/16 for the approximate reduction — with at most one further
// transaction pinned to an exact initiator (sc.pinTr, 1-based; the
// pinned form underlies the per-axis subtree bound tables).
func (an *analyzer) interference(a int, sc scenario, hp [][]int, alpha, t float64) float64 {
	sum := 0.0
	if sc.nu == nil {
		for i, hpI := range hp {
			if len(hpI) == 0 {
				continue
			}
			switch {
			case i == a:
				sum += an.wk(a, sc.c, hpI, alpha, t)
			case i+1 == sc.pinTr:
				sum += an.wk(i, sc.pinK, hpI, alpha, t)
			default:
				sum += an.wstar(i, hpI, alpha, t)
			}
		}
		return sum
	}
	for _, ch := range sc.nu {
		if len(hp[ch.tr]) == 0 {
			continue
		}
		sum += an.wk(ch.tr, ch.k, hp[ch.tr], alpha, t)
	}
	return sum
}

// approxScenarios builds the reduced scenario set of Section 3.1.2:
// one scenario per c ∈ hp_a(τa,b) ∪ {τa,b}, charging every other
// transaction its upper bound W* (Eq. 15) and Γa its exact
// contribution W^c_a (Eq. 16).
func (an *analyzer) approxScenarios(a, b int, hp [][]int, ts *taskScratch) []scenario {
	cands := append(append(ts.cands[:0], hp[a]...), b)
	ts.cands = cands
	scenarios := ts.scenarios[:0]
	for _, c := range cands {
		scenarios = append(scenarios, scenario{c: c})
	}
	ts.scenarios = scenarios
	return scenarios
}

// buildAxes derives the axes of the exact scenario product of Section
// 3.1.1 — per transaction with interfering tasks, its candidate
// critical-instant set (Eq. 12), with the task under analysis added to
// its own transaction's candidates — plus the index aAxis of the
// transaction under analysis among them and the product count.
func (an *analyzer) buildAxes(a, b int, hp [][]int, ts *taskScratch) (axes []axis, aAxis, count int, err error) {
	axes = ts.axes[:0]
	count = 1
	aAxis = -1
	for i, hpI := range hp {
		var cands []int
		if i == a {
			// The only axis whose candidate list differs from hp itself;
			// it borrows the scratch candidate buffer.
			ts.cands = append(append(ts.cands[:0], hpI...), b)
			cands = ts.cands
			aAxis = len(axes)
		} else if len(hpI) > 0 {
			cands = hpI
		} else {
			continue
		}
		axes = append(axes, axis{tr: i, cands: cands})
		count *= len(cands)
		if count > an.opt.maxScenarios() {
			ts.axes = axes
			return nil, 0, 0, fmt.Errorf("%w: task τ%d,%d needs more than %d scenarios",
				ErrTooManyScenarios, a+1, b+1, an.opt.maxScenarios())
		}
	}
	ts.axes = axes
	if cap(ts.pick) < len(axes) {
		ts.pick = make([]int, len(axes))
	}
	if cap(ts.nu) < len(axes) {
		ts.nu = make([]initiator, len(axes))
	}
	return axes, aAxis, count, nil
}

// pruneBounds computes, for every candidate initiator c of the
// transaction under analysis, an upper bound on the response of every
// exact scenario with ν_a = c: the fixed point of the approximate
// scenario that charges Γa its exact contribution W^c_a and every
// other transaction the pointwise maximum W* (Eq. 15). W* dominates
// every per-initiator W^k termwise, the busy-period and completion
// fixed points are monotone in the interference, and the dominated job
// range is a subset — so the bound is admissible, and a scenario whose
// bound cannot strictly beat the running best can be skipped without
// changing any result bit. A bound whose own fixed point diverges is
// +Inf, which never prunes. The returned slice is indexed by initiator
// task id; entries for non-candidates are stale and must not be read.
func (an *analyzer) pruneBounds(a, b int, hp [][]int, alpha float64, cands []int, ts *taskScratch) []float64 {
	nTasks := len(an.sys.Transactions[a].Tasks)
	if cap(ts.bounds) < nTasks {
		ts.bounds = make([]float64, nTasks)
	}
	bounds := ts.bounds[:nTasks]
	for _, c := range cands {
		r, _, ok := an.scenarioResponse(a, b, scenario{c: c}, hp, alpha)
		if !ok {
			r = math.Inf(1)
		}
		bounds[c] = r
	}
	ts.bounds = bounds
	return bounds
}

// pairBoundAmortise gates the pairwise bound tables: one table entry
// costs |cands_a| approximate fixed points (each comparable to a few
// scenario evaluations, the W* sums included), so the tables only pay
// for themselves when the scenario product dwarfs their construction.
// Below the gate the sweep keeps only the free aAxis table — the
// per-initiator bounds pruneBounds computed anyway.
const pairBoundAmortise = 8

// prefixBounds assembles the branch-and-bound state of one exact
// sweep: the per-axis subtree bound tables and the mixed-radix
// strides. The aAxis table is the per-initiator bound pruneBounds
// already computed, re-indexed by candidate position. For every other
// axis j — when count amortises the construction — entry d is
//
//	max over c ∈ cands_a of the fixed point of the approximate
//	scenario charging Γa its exact W^c, axis j's transaction its
//	exact W^{cands_j[d]}, and every remaining transaction W*,
//
// which is admissible for EVERY exact scenario whose axis-j digit is d:
// the pinned interference dominates the exact one termwise (W* ≥ every
// W^k pointwise, Eq. 15), the busy-period and completion fixed points
// are monotone in the interference, the dominated job range is a
// subset, and the max over c covers whichever Γa initiator the
// scenario picks (the phase ϕ of Eq. 10 depends on it). A subtree
// fixing the digits of axes ≥ j therefore has min over i ≥ j of
// tab[i][pick[i]] as an upper bound on every response inside it — the
// suffix minimum sweepRange prunes whole subtrees against. An entry
// whose own fixed point diverges is +Inf, which never prunes.
func (an *analyzer) prefixBounds(a, b int, hp [][]int, alpha float64, axes []axis, aAxis, count int, bounds []float64, ts *taskScratch) *sweepBounds {
	n := len(axes)
	if cap(ts.strides) < n+1 {
		ts.strides = make([]int, n+1)
	}
	strides := ts.strides[:n+1]
	strides[0] = 1
	for j := 0; j < n; j++ {
		strides[j+1] = strides[j] * len(axes[j].cands)
	}

	if cap(ts.boundTab) < n {
		ts.boundTab = make([][]float64, n)
	}
	tab := ts.boundTab[:n]
	for j := range tab {
		tab[j] = nil
	}

	pairCost := 0
	for j, ax := range axes {
		if j != aAxis {
			pairCost += len(ax.cands)
		}
	}
	pairCost *= len(axes[aAxis].cands)
	buildPairs := pairCost > 0 && count >= pairBoundAmortise*pairCost

	need := len(axes[aAxis].cands)
	if buildPairs {
		need += pairCost / len(axes[aAxis].cands)
	}
	if cap(ts.boundFlat) < need {
		ts.boundFlat = make([]float64, 0, need)
	}
	flat := ts.boundFlat[:0]

	start := len(flat)
	for _, c := range axes[aAxis].cands {
		flat = append(flat, bounds[c])
	}
	tab[aAxis] = flat[start:len(flat):len(flat)]

	if buildPairs {
		for j, ax := range axes {
			if j == aAxis {
				continue
			}
			start = len(flat)
			for _, k := range ax.cands {
				bd := 0.0
				for _, c := range axes[aAxis].cands {
					r, _, ok := an.scenarioResponse(a, b, scenario{c: c, pinTr: ax.tr + 1, pinK: k}, hp, alpha)
					if !ok {
						bd = math.Inf(1)
						break
					}
					if r > bd {
						bd = r
					}
				}
				flat = append(flat, bd)
			}
			tab[j] = flat[start:len(flat):len(flat)]
		}
	}

	ts.boundTab, ts.boundFlat, ts.strides = tab, flat, strides
	return &sweepBounds{tab: tab, strides: strides}
}

// cursorSeek positions the mixed-radix scenario cursor at flat index
// idx: pick[i] is the candidate index of axis i — axis 0 is the
// fastest-varying digit, exactly the enumeration order of the
// materialised sweep — and nu mirrors it as the (transaction,
// initiator) pairs the interference sum consumes, in axis order.
func cursorSeek(axes []axis, pick []int, nu []initiator, idx int) {
	for i := range axes {
		n := len(axes[i].cands)
		d := idx % n
		idx /= n
		pick[i] = d
		nu[i] = initiator{tr: axes[i].tr, k: axes[i].cands[d]}
	}
}

// cursorNext advances the cursor one scenario, rewriting only the nu
// entries of the axes whose digit moved — amortised O(1) per step. It
// returns the highest axis index whose digit changed, which is exactly
// the prefix of suffix minima the branch-and-bound sweep must refresh.
func cursorNext(axes []axis, pick []int, nu []initiator) int {
	for i := range axes {
		pick[i]++
		if pick[i] < len(axes[i].cands) {
			nu[i] = initiator{tr: axes[i].tr, k: axes[i].cands[pick[i]]}
			return i
		}
		pick[i] = 0
		nu[i] = initiator{tr: axes[i].tr, k: axes[i].cands[0]}
	}
	return len(axes) - 1
}

// materialiseScenarios expands the axes into the full scenario list by
// walking the cursor once — the reference (seed) form of the exact
// sweep, kept behind Options.DisableExactStreaming for the bit-identity
// tests. The ν backing is allocated fresh and handed to the GC with
// the list; only the list header is pooled.
func (an *analyzer) materialiseScenarios(axes []axis, aAxis, count int, ts *taskScratch) []scenario {
	pick := ts.pick[:len(axes)]
	nu := ts.nu[:len(axes)]
	cursorSeek(axes, pick, nu, 0)
	nuBuf := make([]initiator, 0, count*len(axes))
	scenarios := ts.scenarios[:0]
	for idx := 0; idx < count; idx++ {
		start := len(nuBuf)
		nuBuf = append(nuBuf, nu...)
		scenarios = append(scenarios, scenario{c: nu[aAxis].k, nu: nuBuf[start:len(nuBuf):len(nuBuf)]})
		cursorNext(axes, pick, nu)
	}
	ts.scenarios = scenarios
	return scenarios
}

// scenarioResponse evaluates one scenario: busy-period length (the
// iterative expression below Eq. 16), the job range p0..pL (Eq. 14)
// and the completion-time fixed point for every job (Eq. 16),
// returning the largest response time and the job index attaining it.
// ok is false when a fixed point was not reached within
// Options.MaxInner steps.
func (an *analyzer) scenarioResponse(a, b int, sc scenario, hp [][]int, alpha float64) (float64, int, bool) {
	tr := &an.sys.Transactions[a]
	ta := &tr.Tasks[b]
	eps := an.opt.eps()
	delta := an.sys.Platforms[ta.Platform].Delta
	cOverAlpha := ta.WCET / alpha
	base := delta + ta.Blocking

	phi := an.phaseK(a, sc.c, b)
	p0 := 1 - floorE((ta.Jitter+phi)/tr.Period, eps)

	// Busy-period length L.
	L := base + cOverAlpha
	converged := false
	for it := 0; it < an.opt.maxInner(); it++ {
		jobs := ceilE((L-phi)/tr.Period, eps) - p0 + 1
		if jobs < 0 {
			jobs = 0
		}
		next := base + jobs*cOverAlpha + an.interference(a, sc, hp, alpha, L)
		if next <= L+eps {
			converged = true
			break
		}
		L = next
	}
	if !converged {
		return 0, 0, false
	}
	pL := ceilE((L-phi)/tr.Period, eps)

	best := 0.0
	bestJob := int(p0)
	w := 0.0
	for p := p0; p <= pL; p++ {
		floor := base + (p-p0+1)*cOverAlpha
		if w < floor {
			w = floor
		}
		converged = false
		for it := 0; it < an.opt.maxInner(); it++ {
			next := base + (p-p0+1)*cOverAlpha + an.interference(a, sc, hp, alpha, w)
			if next <= w+eps {
				converged = true
				break
			}
			w = next
		}
		if !converged {
			return 0, 0, false
		}
		// Response measured from the transaction activation: the job's
		// transaction was released at ϕ + (p−1)T − φ (full offset).
		r := w - (phi + (p-1)*tr.Period - ta.Offset)
		if r > best {
			best = r
			bestJob = int(p)
		}
	}
	return best, bestJob, true
}

// ScenarioCount returns N(τa,b) of Eq. (12): the number of scenario
// vectors the exact analysis must examine for task (a, b) (0-based),
// versus Na+1 for the approximate analysis. The product saturates at
// math.MaxInt — wide systems overflow a machine int long before the
// exact analysis is feasible, and a wrapped negative count would
// nonsense every consumer comparing it to MaxScenarios.
func ScenarioCount(sys *model.System, a, b int) (exact, approximate int) {
	ta := &sys.Transactions[a].Tasks[b]
	interferers := func(i int) int {
		n := 0
		tasks := sys.Transactions[i].Tasks
		for j := range tasks {
			if i == a && j == b {
				continue
			}
			if interferes(ta, &tasks[j]) {
				n++
			}
		}
		return n
	}
	exact = interferers(a) + 1
	approximate = exact
	for i := range sys.Transactions {
		if i == a {
			continue
		}
		n := interferers(i)
		if n <= 1 {
			continue
		}
		if exact > math.MaxInt/n {
			return math.MaxInt, approximate
		}
		exact *= n
	}
	return exact, approximate
}
