package analysis

import (
	"context"
	"fmt"
	"math"

	"hsched/internal/model"
)

// initiator is one coordinate of a scenario vector ν: the task τ_{tr,k}
// whose maximally-jittered release starts the busy period within its
// transaction.
type initiator struct{ tr, k int }

// scenario is one candidate worst-case configuration for τa,b. Two
// encodings share the struct:
//
//   - nu == nil: an approximate scenario of Section 3.1.2 — Γa is
//     initiated by τa,c (exact contribution W^c_a, Eq. 16) and every
//     other transaction is charged its upper bound W* (Eq. 15);
//   - nu != nil: an exact scenario vector of Section 3.1.1 — one
//     initiator per transaction with interfering tasks (Eq. 12).
//
// Scenarios are plain data (no captured closures): the interference
// they induce is evaluated by analyzer.interference, which keeps the
// per-scenario footprint to a couple of words and lets the engine pool
// the backing slices across calls.
type scenario struct {
	c  int
	nu []initiator
}

// taskScratch holds the per-task-analysis buffers (scenario sets,
// candidate lists, mixed-radix counters). The engine keeps a pool of
// them so that concurrent per-task response computations reuse
// allocations instead of growing fresh slices on every call.
type taskScratch struct {
	scenarios []scenario
	cands     []int
	axes      []axis
	pick      []int
	nu        []initiator
}

// shrink drops scratch buffers that grew past a high-water cap, so a
// single huge exact analysis does not pin its peak memory for the
// lifetime of a reused engine. Called between analyses, never inside
// one.
func (ts *taskScratch) shrink() {
	const maxRetain = 1 << 16
	if cap(ts.nu) > maxRetain {
		ts.nu = nil
	}
	if cap(ts.scenarios) > maxRetain {
		ts.scenarios = nil
	}
}

// axis is one dimension of the exact scenario product: the candidate
// critical-instant tasks of one transaction.
type axis struct {
	tr    int
	cands []int
}

// critical identifies the configuration attaining a worst-case
// response: the busy-period initiator c and the job index p.
type critical struct {
	initiator int
	job       int
}

// unboundedCritical marks an unbounded response.
var unboundedCritical = critical{initiator: -1}

// cancelCheckInterval is how many scenarios a response-time sweep
// evaluates between context polls: an exact analysis can face millions
// of scenarios per task, each a few fixed-point iterations, so polling
// every few hundred keeps cancellation latency in the microsecond
// range while the poll itself stays invisible in profiles.
const cancelCheckInterval = 256

// responseTime computes the worst-case response time R of τa,b
// (0-based indices), measured from the activation of Γa, with the
// offsets and jitters currently stored in the system, together with
// the scenario attaining it. It returns +Inf when the busy period does
// not converge (platform overload). ts provides reusable buffers; it
// must not be shared between concurrent calls. ctx is polled every
// cancelCheckInterval scenarios so huge exact sweeps abort promptly.
func (an *analyzer) responseTime(ctx context.Context, a, b int, ts *taskScratch) (float64, critical, error) {
	ta := &an.sys.Transactions[a].Tasks[b]
	alpha := an.sys.Platforms[ta.Platform].Alpha
	hp := an.hpRow(a, b)

	if an.overloaded(a, b, alpha) {
		return math.Inf(1), unboundedCritical, nil
	}

	var scenarios []scenario
	var err error
	if an.opt.Exact {
		scenarios, err = an.exactScenarios(a, b, hp, ts)
		if err != nil {
			return 0, unboundedCritical, err
		}
	} else {
		scenarios = an.approxScenarios(a, b, hp, ts)
	}

	best := 0.0
	crit := critical{initiator: b}
	for si, sc := range scenarios {
		if si%cancelCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, unboundedCritical, wrapCancelled(err)
			}
		}
		r, p, ok := an.scenarioResponse(a, b, sc, hp, alpha)
		if !ok {
			return math.Inf(1), unboundedCritical, nil
		}
		if r > best {
			best = r
			crit = critical{initiator: sc.c, job: p}
		}
	}
	return best, crit, nil
}

// overloaded reports whether the long-run demand of τa,b plus its
// interfering set exceeds the platform rate, which makes the busy
// period unbounded.
func (an *analyzer) overloaded(a, b int, alpha float64) bool {
	ta := &an.sys.Transactions[a].Tasks[b]
	u := ta.WCET / (an.sys.Transactions[a].Period * alpha)
	for i, hpI := range an.hpRow(a, b) {
		tr := &an.sys.Transactions[i]
		for _, j := range hpI {
			u += tr.Tasks[j].WCET / (tr.Period * alpha)
		}
	}
	return u >= 1-1e-12
}

// interference returns the total higher-priority demand the scenario sc
// charges to a busy period of length t of τa,b (already scaled by 1/α),
// excluding the jobs of τa,b itself: Eq. 13 for exact scenario vectors,
// Eq. 15/16 for the approximate reduction.
func (an *analyzer) interference(a int, sc scenario, hp [][]int, alpha, t float64) float64 {
	sum := 0.0
	if sc.nu == nil {
		for i, hpI := range hp {
			if len(hpI) == 0 {
				continue
			}
			if i == a {
				sum += an.wk(a, sc.c, hpI, alpha, t)
			} else {
				sum += an.wstar(i, hpI, alpha, t)
			}
		}
		return sum
	}
	for _, ch := range sc.nu {
		if len(hp[ch.tr]) == 0 {
			continue
		}
		sum += an.wk(ch.tr, ch.k, hp[ch.tr], alpha, t)
	}
	return sum
}

// approxScenarios builds the reduced scenario set of Section 3.1.2:
// one scenario per c ∈ hp_a(τa,b) ∪ {τa,b}, charging every other
// transaction its upper bound W* (Eq. 15) and Γa its exact
// contribution W^c_a (Eq. 16).
func (an *analyzer) approxScenarios(a, b int, hp [][]int, ts *taskScratch) []scenario {
	cands := append(append(ts.cands[:0], hp[a]...), b)
	ts.cands = cands
	scenarios := ts.scenarios[:0]
	for _, c := range cands {
		scenarios = append(scenarios, scenario{c: c})
	}
	ts.scenarios = scenarios
	return scenarios
}

// exactScenarios builds every scenario vector ν of Section 3.1.1: the
// cartesian product of the candidate critical-instant tasks of every
// transaction with interfering tasks (Eq. 12), with the task under
// analysis added to its own transaction's candidates.
func (an *analyzer) exactScenarios(a, b int, hp [][]int, ts *taskScratch) ([]scenario, error) {
	axes := ts.axes[:0]
	count := 1
	for i, hpI := range hp {
		var cands []int
		if i == a {
			// The only axis whose candidate list differs from hp itself;
			// it borrows the scratch candidate buffer.
			ts.cands = append(append(ts.cands[:0], hpI...), b)
			cands = ts.cands
		} else if len(hpI) > 0 {
			cands = hpI
		} else {
			continue
		}
		axes = append(axes, axis{tr: i, cands: cands})
		count *= len(cands)
		if count > an.opt.maxScenarios() {
			ts.axes = axes
			return nil, fmt.Errorf("%w: task τ%d,%d needs more than %d scenarios",
				ErrTooManyScenarios, a+1, b+1, an.opt.maxScenarios())
		}
	}
	ts.axes = axes

	if cap(ts.pick) < len(axes) {
		ts.pick = make([]int, len(axes))
	}
	pick := ts.pick[:len(axes)]
	for i := range pick {
		pick[i] = 0
	}

	// Pre-size the shared ν backing so the subslices handed to the
	// scenarios below never relocate.
	need := count * len(axes)
	if cap(ts.nu) < need {
		ts.nu = make([]initiator, 0, need)
	}
	nuBuf := ts.nu[:0]

	scenarios := ts.scenarios[:0]
	for {
		// One (transaction, initiator) pair per axis, in axis order, so
		// the interference sum is evaluated deterministically.
		start := len(nuBuf)
		cA := b // default: Γa has no interfering tasks, τa,b starts its own busy period
		for ai, ax := range axes {
			k := ax.cands[pick[ai]]
			nuBuf = append(nuBuf, initiator{tr: ax.tr, k: k})
			if ax.tr == a {
				cA = k
			}
		}
		scenarios = append(scenarios, scenario{c: cA, nu: nuBuf[start:len(nuBuf):len(nuBuf)]})

		// Advance the mixed-radix counter.
		ai := 0
		for ; ai < len(axes); ai++ {
			pick[ai]++
			if pick[ai] < len(axes[ai].cands) {
				break
			}
			pick[ai] = 0
		}
		if ai == len(axes) {
			break
		}
	}
	ts.nu = nuBuf
	ts.scenarios = scenarios
	return scenarios, nil
}

// scenarioResponse evaluates one scenario: busy-period length (the
// iterative expression below Eq. 16), the job range p0..pL (Eq. 14)
// and the completion-time fixed point for every job (Eq. 16),
// returning the largest response time and the job index attaining it.
// ok is false when a fixed point was not reached within
// Options.MaxInner steps.
func (an *analyzer) scenarioResponse(a, b int, sc scenario, hp [][]int, alpha float64) (float64, int, bool) {
	tr := &an.sys.Transactions[a]
	ta := &tr.Tasks[b]
	eps := an.opt.eps()
	delta := an.sys.Platforms[ta.Platform].Delta
	cOverAlpha := ta.WCET / alpha
	base := delta + ta.Blocking

	phi := an.phaseK(a, sc.c, b)
	p0 := 1 - floorE((ta.Jitter+phi)/tr.Period, eps)

	// Busy-period length L.
	L := base + cOverAlpha
	converged := false
	for it := 0; it < an.opt.maxInner(); it++ {
		jobs := ceilE((L-phi)/tr.Period, eps) - p0 + 1
		if jobs < 0 {
			jobs = 0
		}
		next := base + jobs*cOverAlpha + an.interference(a, sc, hp, alpha, L)
		if next <= L+eps {
			converged = true
			break
		}
		L = next
	}
	if !converged {
		return 0, 0, false
	}
	pL := ceilE((L-phi)/tr.Period, eps)

	best := 0.0
	bestJob := int(p0)
	w := 0.0
	for p := p0; p <= pL; p++ {
		floor := base + (p-p0+1)*cOverAlpha
		if w < floor {
			w = floor
		}
		converged = false
		for it := 0; it < an.opt.maxInner(); it++ {
			next := base + (p-p0+1)*cOverAlpha + an.interference(a, sc, hp, alpha, w)
			if next <= w+eps {
				converged = true
				break
			}
			w = next
		}
		if !converged {
			return 0, 0, false
		}
		// Response measured from the transaction activation: the job's
		// transaction was released at ϕ + (p−1)T − φ (full offset).
		r := w - (phi + (p-1)*tr.Period - ta.Offset)
		if r > best {
			best = r
			bestJob = int(p)
		}
	}
	return best, bestJob, true
}

// ScenarioCount returns N(τa,b) of Eq. (12): the number of scenario
// vectors the exact analysis must examine for task (a, b) (0-based),
// versus Na+1 for the approximate analysis.
func ScenarioCount(sys *model.System, a, b int) (exact, approximate int) {
	an := newAnalyzer(sys, Options{})
	hp := an.hpRow(a, b)
	exact = len(hp[a]) + 1
	approximate = len(hp[a]) + 1
	for i, hpI := range hp {
		if i == a || len(hpI) == 0 {
			continue
		}
		exact *= len(hpI)
	}
	return exact, approximate
}
