package analysis

import (
	"context"

	"hsched/internal/model"
)

// AnalyzeStatic runs one pass of the static-offset analysis of Section
// 3.1: every task keeps the offset φ and jitter J stored in the
// system, and its worst-case response time is computed under them. Use
// it when offsets and jitters are externally known; for chains whose
// offsets derive from predecessor completions, use Analyze.
//
// It is a convenience wrapper constructing a one-shot Engine; callers
// analysing many systems should construct one Engine with NewEngine
// and reuse it.
func AnalyzeStatic(sys *model.System, opt Options) (*Result, error) {
	return NewEngine(opt).AnalyzeStatic(sys)
}

// Analyze runs the dynamic-offset holistic analysis of Section 3.2:
// starting from J = 0 and φ = Rbest (Eq. 18), the static analysis is
// repeated, each round deriving every non-initial task's jitter from
// its predecessor's previous-round response time, until the response
// times reach a fixed point. Convergence is guaranteed by the monotone
// dependency of response times on jitters as long as busy periods stay
// bounded; unbounded tasks are reported with R = +Inf and terminate
// the iteration with Schedulable = false.
//
// The offsets and jitters of the first task of each transaction are
// external inputs (release offset/jitter) and are preserved from the
// input system; offsets of later tasks are overwritten by Eq. 18.
//
// It is a convenience wrapper constructing a one-shot Engine; callers
// analysing many systems should construct one Engine with NewEngine
// and reuse it.
func Analyze(sys *model.System, opt Options) (*Result, error) {
	return NewEngine(opt).Analyze(sys)
}

// AnalyzeContext is Analyze with cancellation: see
// Engine.AnalyzeContext for the polling points. Long-running callers
// (services, admission controllers) should prefer it — or better, hold
// a Service from package service, which adds engine pooling and
// verdict memoisation on top.
func AnalyzeContext(ctx context.Context, sys *model.System, opt Options) (*Result, error) {
	return NewEngine(opt).AnalyzeContext(ctx, sys)
}

// AnalyzeStaticContext is AnalyzeStatic with cancellation.
func AnalyzeStaticContext(ctx context.Context, sys *model.System, opt Options) (*Result, error) {
	return NewEngine(opt).AnalyzeStaticContext(ctx, sys)
}

// BestBounds exposes the best-case bounds used by Eq. 18: for every
// task, a lower bound on its start time and on its completion time,
// both measured from the transaction activation. tight selects the
// per-run burstiness refinement described in the package
// documentation.
func BestBounds(sys *model.System, tight bool) (starts, completions [][]float64) {
	return bestBounds(sys, tight)
}
