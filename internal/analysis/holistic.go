package analysis

import (
	"fmt"
	"math"

	"hsched/internal/model"
)

// AnalyzeStatic runs one pass of the static-offset analysis of Section
// 3.1: every task keeps the offset φ and jitter J stored in the
// system, and its worst-case response time is computed under them. Use
// it when offsets and jitters are externally known; for chains whose
// offsets derive from predecessor completions, use Analyze.
func AnalyzeStatic(sys *model.System, opt Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	work := sys.Clone()
	an := newAnalyzer(work, opt)
	res, err := an.round()
	if err != nil {
		return nil, err
	}
	res.Iterations = 1
	res.Converged = true
	res.computeVerdict()
	return res, nil
}

// Analyze runs the dynamic-offset holistic analysis of Section 3.2:
// starting from J = 0 and φ = Rbest (Eq. 18), the static analysis is
// repeated, each round deriving every non-initial task's jitter from
// its predecessor's previous-round response time, until the response
// times reach a fixed point. Convergence is guaranteed by the monotone
// dependency of response times on jitters as long as busy periods stay
// bounded; unbounded tasks are reported with R = +Inf and terminate
// the iteration with Schedulable = false.
//
// The offsets and jitters of the first task of each transaction are
// external inputs (release offset/jitter) and are preserved from the
// input system; offsets of later tasks are overwritten by Eq. 18.
func Analyze(sys *model.System, opt Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	work := sys.Clone()
	starts, _ := bestBounds(work, opt.TightBestCase)

	// Initial conditions of Section 3.2: J = 0, φ = Rbest. The best
	// starts already include the first task's external release offset.
	for i := range work.Transactions {
		for j := 1; j < len(work.Transactions[i].Tasks); j++ {
			work.Transactions[i].Tasks[j].Offset = starts[i][j]
			work.Transactions[i].Tasks[j].Jitter = 0
		}
	}

	an := newAnalyzer(work, opt)
	var res *Result
	var prev [][]float64
	converged := false
	iter := 0
	for ; iter < opt.maxIter(); iter++ {
		an.refreshOffsets()
		var err error
		res, err = an.round()
		if err != nil {
			return nil, err
		}
		res.Iterations = iter + 1
		if opt.Recorder != nil {
			opt.Recorder(iter, res.clone())
		}

		if prev != nil && unchanged(prev, res.Tasks, opt.eps()) {
			converged = true
			break
		}
		prev = worstMatrix(res.Tasks)

		// Any unbounded response time is final: larger jitters can only
		// increase response times and +Inf is already absorbing.
		if hasInf(res.Tasks) {
			converged = true
			break
		}

		// An intermediate deadline miss is equally final when the
		// caller only needs the verdict: responses are monotone
		// non-decreasing across rounds.
		if opt.StopAtDeadlineMiss {
			missed := false
			for i := range res.Tasks {
				if res.TransactionResponse(i) > sys.Transactions[i].Deadline+1e-9 {
					missed = true
					break
				}
			}
			if missed {
				converged = true
				break
			}
		}

		// Eq. 18: J(i,j) = R(i,j−1) − Rbest(i,j−1). The worst-case
		// response already includes the effect of the release jitter
		// of the first task, so nothing is added on top.
		for i := range work.Transactions {
			tasks := work.Transactions[i].Tasks
			for j := 1; j < len(tasks); j++ {
				jit := res.Tasks[i][j-1].Worst - starts[i][j]
				if jit < 0 {
					jit = 0
				}
				tasks[j].Jitter = jit
			}
		}
	}
	if res == nil {
		return nil, fmt.Errorf("analysis: no iterations executed")
	}
	res.Converged = converged
	res.computeVerdict()
	if !converged {
		// The iteration was cut off by MaxIterations: the reported
		// response times are lower bounds of the (larger) fixed point,
		// so a positive verdict would be unsound.
		res.Schedulable = false
	}
	return res, nil
}

// round runs the static analysis once over every task with the
// system's current offsets and jitters.
func (an *analyzer) round() (*Result, error) {
	sys := an.sys
	res := &Result{System: sys, Tasks: make([][]TaskResult, len(sys.Transactions))}
	_, completions := bestBounds(sys, an.opt.TightBestCase)
	for i := range sys.Transactions {
		tasks := sys.Transactions[i].Tasks
		res.Tasks[i] = make([]TaskResult, len(tasks))
		for j := range tasks {
			r, crit, err := an.responseTime(i, j)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", sys.TaskName(i, j), err)
			}
			res.Tasks[i][j] = TaskResult{
				Offset:            tasks[j].Offset,
				Jitter:            tasks[j].Jitter,
				Best:              completions[i][j],
				Worst:             r,
				CriticalInitiator: crit.initiator,
				CriticalJob:       crit.job,
			}
		}
	}
	return res, nil
}

func worstMatrix(tasks [][]TaskResult) [][]float64 {
	m := make([][]float64, len(tasks))
	for i, row := range tasks {
		m[i] = make([]float64, len(row))
		for j, t := range row {
			m[i][j] = t.Worst
		}
	}
	return m
}

func unchanged(prev [][]float64, cur [][]TaskResult, eps float64) bool {
	for i, row := range cur {
		for j, t := range row {
			a, b := prev[i][j], t.Worst
			if math.IsInf(a, 1) && math.IsInf(b, 1) {
				continue
			}
			if math.Abs(a-b) > eps {
				return false
			}
		}
	}
	return true
}

func hasInf(tasks [][]TaskResult) bool {
	for _, row := range tasks {
		for _, t := range row {
			if math.IsInf(t.Worst, 1) {
				return true
			}
		}
	}
	return false
}

// BestBounds exposes the best-case bounds used by Eq. 18: for every
// task, a lower bound on its start time and on its completion time,
// both measured from the transaction activation. tight selects the
// per-run burstiness refinement described in the package
// documentation.
func BestBounds(sys *model.System, tight bool) (starts, completions [][]float64) {
	return bestBounds(sys, tight)
}
