package analysis_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/platform"
)

// mutateOnce applies one admission-control-style edit to a clone of
// sys: retune one task of one transaction, retune one platform, add or
// remove one transaction, rename, or permute. Every op keeps the
// system valid.
func mutateOnce(rng *rand.Rand, sys *model.System) *model.System {
	out := sys.Clone()
	pick := func(n int) int { return rng.Intn(n) }
	tx := func() *model.Transaction { return &out.Transactions[pick(len(out.Transactions))] }
	switch op := rng.Intn(9); op {
	case 0: // retune one task's WCET
		tr := tx()
		t := &tr.Tasks[pick(len(tr.Tasks))]
		t.WCET = math.Max(t.BCET, t.WCET*(0.8+0.4*rng.Float64()))
		if t.WCET == 0 {
			t.WCET = 0.1
		}
	case 1: // retune one task's BCET
		tr := tx()
		t := &tr.Tasks[pick(len(tr.Tasks))]
		t.BCET = t.WCET * rng.Float64()
	case 2: // shift one task's priority
		tr := tx()
		tr.Tasks[pick(len(tr.Tasks))].Priority += pick(3) - 1
	case 3: // retune one platform's bandwidth
		p := &out.Platforms[pick(len(out.Platforms))]
		p.Alpha = math.Min(1, math.Max(0.05, p.Alpha*(0.9+0.2*rng.Float64())))
	case 4: // add one low-priority background transaction
		out.Transactions = append(out.Transactions, model.Transaction{
			Name: "added", Period: 40 + 20*rng.Float64(), Deadline: 60,
			Tasks: []model.Task{{
				WCET: 0.5 + rng.Float64(), BCET: 0.25,
				Priority: -1 - pick(3), Platform: pick(len(out.Platforms)),
			}},
		})
		out.Transactions[len(out.Transactions)-1].Deadline = out.Transactions[len(out.Transactions)-1].Period
	case 5: // remove one transaction
		if len(out.Transactions) > 1 {
			k := pick(len(out.Transactions))
			out.Transactions = append(out.Transactions[:k], out.Transactions[k+1:]...)
		}
	case 6: // rename (analysis-irrelevant)
		tr := tx()
		tr.Name += "'"
		tr.Tasks[pick(len(tr.Tasks))].Name += "'"
	case 7: // permute two transactions (forces the cold fallback)
		if len(out.Transactions) > 1 {
			a, b := pick(len(out.Transactions)), pick(len(out.Transactions))
			out.Transactions[a], out.Transactions[b] = out.Transactions[b], out.Transactions[a]
		}
	case 8: // retune the external release offset/jitter of a first task
		tr := tx()
		tr.Tasks[0].Offset = 2 * rng.Float64()
		tr.Tasks[0].Jitter = rng.Float64()
	}
	return out
}

// TestAnalyzeFromBitIdentical is the delta path's metamorphic
// contract: over randomized sequences of single mutations, chaining
// each warm result as the next seed, AnalyzeFrom must produce results
// bit-identical to a cold Analyze of the mutated system — all tasks'
// bounds, critical scenarios, iteration counts and verdicts — under
// several analysis option sets.
func TestAnalyzeFromBitIdentical(t *testing.T) {
	variants := map[string]analysis.Options{
		"approx": {Workers: 1, MaxIterations: 60},
		"tight":  {Workers: 1, MaxIterations: 60, TightBestCase: true},
		"stop":   {Workers: 1, MaxIterations: 60, StopAtDeadlineMiss: true},
		"exact":  {Workers: 1, MaxIterations: 60, Exact: true},
	}
	for name, opt := range variants {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			steps := 40
			if opt.Exact {
				steps = 16 // exact sweeps are slower; a shorter chain suffices
			}
			seeded := 0
			for base := 0; base < 3; base++ {
				sys, err := gen.System(gen.Config{
					Seed:      int64(300 + base),
					Platforms: 2, Transactions: 3, ChainLen: 3,
					PeriodMin: 20, PeriodMax: 300,
					Utilization: 0.35 + 0.1*float64(base),
					AlphaMin:    0.4, AlphaMax: 0.9,
				})
				if err != nil {
					t.Fatal(err)
				}
				warmEng := analysis.NewEngine(opt)
				prev, err := warmEng.Analyze(sys)
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < steps; step++ {
					sys = mutateOnce(rng, sys)
					cold, err := analysis.NewEngine(opt).Analyze(sys)
					if err != nil {
						t.Fatalf("step %d cold: %v", step, err)
					}
					warm, err := warmEng.AnalyzeFrom(prev, sys)
					if err != nil {
						t.Fatalf("step %d warm: %v", step, err)
					}
					if !resultsIdentical(cold, warm) {
						t.Fatalf("step %d: AnalyzeFrom diverged from cold analysis (delta=%+v)", step, warm.Delta)
					}
					if warm.Delta != nil {
						seeded++
						if warm.Delta.CleanTasks == 0 || warm.Delta.TaskRoundsSaved < 0 {
							t.Fatalf("step %d: nonsense delta info %+v", step, warm.Delta)
						}
					}
					prev = warm
				}
			}
			if seeded == 0 {
				t.Fatalf("the delta path never engaged over the whole mutation chain — test is vacuous")
			}
			t.Logf("%s: %d of the mutation steps ran incrementally", name, seeded)
		})
	}
}

// TestAnalyzeFromPaperMutation pins the canonical admission-control
// win on the paper example: retuning the background load Γ4 (lowest
// priority on Π3) dirties exactly that one task, so six of the seven
// tasks replay — at least the 3× work reduction the delta path is
// there for.
func TestAnalyzeFromPaperMutation(t *testing.T) {
	opt := analysis.Options{Workers: 1}
	base := experiments.PaperSystem()
	eng := analysis.NewEngine(opt)
	prev, err := eng.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	if !prev.HasReplayState() {
		t.Fatal("dynamic result carries no replay state")
	}

	mut := base.Clone()
	mut.Transactions[3].Tasks[0].WCET = 7.5 // retune Γ4's background load
	cold, err := analysis.NewEngine(opt).Analyze(mut)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.AnalyzeFrom(prev, mut)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(cold, warm) {
		t.Fatal("incremental result differs from cold analysis")
	}
	if warm.Delta == nil {
		t.Fatal("delta path did not engage")
	}
	if warm.Delta.CleanTasks != 6 || warm.Delta.DirtyTasks != 1 {
		t.Fatalf("clean/dirty = %d/%d, want 6/1 (only τ4,1 is reachable from the edit)",
			warm.Delta.CleanTasks, warm.Delta.DirtyTasks)
	}
	// The structural form of the ≥3× acceptance bar: the incremental
	// analysis must run at most a third of the per-task response
	// computations the cold analysis runs. (BenchmarkDeltaPaper* shows
	// the wall-clock counterpart.)
	total := cold.Iterations * 7
	computed := total - warm.Delta.TaskRoundsSaved
	if computed*3 > total {
		t.Fatalf("incremental path computed %d of %d task-rounds — less than the required 3x reduction", computed, total)
	}
}

// twoIslandSystem builds a system of two platform-disjoint groups of
// transactions, each large enough that a round over one group alone
// exceeds the engine's parallel fan-out threshold. Mutating a group-A
// transaction dirties (at most) all of group A while all of group B
// replays — exercising the batch.Map branch of a delta round, which
// no small-system test reaches.
func twoIslandSystem() *model.System {
	sys := &model.System{
		Platforms: []platform.Params{
			{Alpha: 0.9, Delta: 0.5, Beta: 0.5}, {Alpha: 0.9, Delta: 0.5, Beta: 0.5}, // group A
			{Alpha: 0.9, Delta: 0.5, Beta: 0.5}, {Alpha: 0.9, Delta: 0.5, Beta: 0.5}, // group B
		},
	}
	for g := 0; g < 2; g++ {
		for k := 0; k < 8; k++ {
			period := float64(100 + 20*k + 300*g)
			tr := model.Transaction{
				Name: fmt.Sprintf("G%d-%d", g, k), Period: period, Deadline: period,
			}
			for j := 0; j < 3; j++ {
				tr.Tasks = append(tr.Tasks, model.Task{
					WCET: 0.5 + 0.1*float64((k+j)%4), BCET: 0.25,
					Priority: (k + j) % 5, Platform: 2*g + (k+j)%2,
				})
			}
			sys.Transactions = append(sys.Transactions, tr)
		}
	}
	return sys
}

// TestAnalyzeFromParallelRounds: the acceptance criterion demands
// bit-identical incremental results for all worker counts, including
// rounds big enough to fan out onto batch.Map with a dirty work-list.
func TestAnalyzeFromParallelRounds(t *testing.T) {
	base := twoIslandSystem()
	mut := base.Clone()
	mut.Transactions[2].Tasks[1].WCET *= 1.3 // group A: dirties (up to) 24 tasks, group B replays

	cold, err := analysis.NewEngine(analysis.Options{Workers: 1}).Analyze(mut)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		eng := analysis.NewEngine(analysis.Options{Workers: workers})
		prev, err := eng.Analyze(base)
		if err != nil {
			t.Fatalf("workers=%d base: %v", workers, err)
		}
		warm, err := eng.AnalyzeFrom(prev, mut)
		if err != nil {
			t.Fatalf("workers=%d warm: %v", workers, err)
		}
		if warm.Delta == nil {
			t.Fatalf("workers=%d: delta path did not engage", workers)
		}
		if warm.Delta.DirtyTasks < 16 {
			t.Fatalf("workers=%d: only %d dirty tasks — the parallel round branch is not exercised (fixture miscalibrated)",
				workers, warm.Delta.DirtyTasks)
		}
		if warm.Delta.CleanTasks < 24 {
			t.Fatalf("workers=%d: only %d clean tasks — group B should replay entirely", workers, warm.Delta.CleanTasks)
		}
		if !resultsIdentical(cold, warm) {
			t.Fatalf("workers=%d: parallel incremental result differs from sequential cold analysis", workers)
		}
	}
}

// TestAnalyzeFromPaperAdmission mirrors the admission benchmark:
// admitting a lowest-priority background transaction dirties only the
// admitted task, every original task replays, and the result matches a
// cold analysis bit for bit.
func TestAnalyzeFromPaperAdmission(t *testing.T) {
	opt := analysis.Options{Workers: 1}
	eng := analysis.NewEngine(opt)
	prev, err := eng.Analyze(experiments.PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	mut := paperAdmission()
	cold, err := analysis.NewEngine(opt).Analyze(mut)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.AnalyzeFrom(prev, mut)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(cold, warm) {
		t.Fatal("admission incremental result differs from cold analysis")
	}
	if warm.Delta == nil || warm.Delta.CleanTasks != 7 || warm.Delta.DirtyTasks != 1 {
		t.Fatalf("delta = %+v, want 7 clean / 1 dirty", warm.Delta)
	}
	t.Logf("admission: iterations=%d replayed=%d saved=%d (baseline recorded %d rounds)",
		warm.Iterations, warm.Delta.ReplayedRounds, warm.Delta.TaskRoundsSaved, prev.Iterations)
}

// TestAnalyzeFromFallbacks: seeds that cannot soundly replay fall back
// to a cold analysis (Delta == nil) but still return correct results.
func TestAnalyzeFromFallbacks(t *testing.T) {
	base := experiments.PaperSystem()
	optA := analysis.Options{Workers: 1}
	eng := analysis.NewEngine(optA)
	prev, err := eng.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}

	// Different analysis options: the baseline trajectory is invalid.
	engTight := analysis.NewEngine(analysis.Options{Workers: 1, TightBestCase: true})
	res, err := engTight.AnalyzeFrom(prev, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta != nil {
		t.Fatal("a seed computed under different options must not replay")
	}

	// Reordered transactions: interference sums change order, cold path.
	perm := base.Clone()
	perm.Transactions[0], perm.Transactions[3] = perm.Transactions[3], perm.Transactions[0]
	res, err = eng.AnalyzeFrom(prev, perm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta != nil {
		t.Fatal("a reordered system must not replay")
	}
	cold, err := analysis.NewEngine(optA).Analyze(perm)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(cold, res) {
		t.Fatal("fallback result differs from cold analysis")
	}

	// A static seed has no replay state.
	stat, err := analysis.NewEngine(optA).AnalyzeStatic(base)
	if err != nil {
		t.Fatal(err)
	}
	if stat.HasReplayState() {
		t.Fatal("static results must not carry replay state")
	}
	if res, err = eng.AnalyzeFrom(stat, base); err != nil || res.Delta != nil {
		t.Fatalf("static seed: res.Delta=%v err=%v, want cold fallback", res.Delta, err)
	}

	// A nil seed is simply a cold analysis.
	if res, err = eng.AnalyzeFrom(nil, base); err != nil || res.Delta != nil {
		t.Fatalf("nil seed: res.Delta=%v err=%v, want cold analysis", res.Delta, err)
	}

	// DisableReplayState: identical bounds, no replay state, and such
	// a result cannot seed (but does not break) a later AnalyzeFrom.
	lean, err := analysis.NewEngine(analysis.Options{Workers: 1, DisableReplayState: true}).Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	if lean.HasReplayState() {
		t.Fatal("DisableReplayState result carries replay state")
	}
	if !resultsIdentical(lean, prev) {
		t.Fatal("DisableReplayState changed the computed bounds")
	}
	if res, err = eng.AnalyzeFrom(lean, base); err != nil || res.Delta != nil {
		t.Fatalf("replay-free seed: res.Delta=%v err=%v, want cold fallback", res.Delta, err)
	}
}

// TestAnalyzeFromRenameOnly: names are analysis-irrelevant, so a
// rename-only edit replays every task and converges without computing
// a single response.
func TestAnalyzeFromRenameOnly(t *testing.T) {
	opt := analysis.Options{Workers: 1}
	base := experiments.PaperSystem()
	eng := analysis.NewEngine(opt)
	prev, err := eng.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	renamed := base.Clone()
	renamed.Transactions[0].Name = "Gamma1-renamed"
	renamed.Transactions[0].Tasks[2].Name = "tau-renamed"
	warm, err := eng.AnalyzeFrom(prev, renamed)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Delta == nil || warm.Delta.DirtyTasks != 0 {
		t.Fatalf("rename-only edit should replay everything, got %+v", warm.Delta)
	}
	cold, err := analysis.NewEngine(opt).Analyze(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(cold, warm) {
		t.Fatal("rename-only replay differs from cold analysis")
	}
	// The result must carry the new names (it reports on the new system).
	if warm.System.Transactions[0].Name != "Gamma1-renamed" {
		t.Fatal("replayed result reports the old system's names")
	}
}

// paperAdmission returns the paper example plus one admitted
// background transaction — the canonical admission-control event. The
// new transaction has the lowest priority on Π2, so the dirty closure
// is exactly its own task and all seven original tasks replay.
func paperAdmission() *model.System {
	sys := experiments.PaperSystem()
	sys.Transactions = append(sys.Transactions, model.Transaction{
		Name: "Gamma5", Period: 60, Deadline: 60,
		Tasks: []model.Task{{Name: "tau5,1", WCET: 0.5, BCET: 0.25, Priority: 0, Platform: 1}},
	})
	return sys
}

// BenchmarkDeltaPaperAdmissionCold / ...Incremental measure the
// acceptance bar on the admission event: re-analysing the paper
// example after one transaction is admitted, cold versus seeded with
// the pre-admission result. CI runs these with
// -bench='Delta|Incremental'.
func BenchmarkDeltaPaperAdmissionCold(b *testing.B) {
	opt := analysis.Options{Workers: 1}
	mut := paperAdmission()
	eng := analysis.NewEngine(opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(mut); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaPaperAdmissionIncremental(b *testing.B) {
	opt := analysis.Options{Workers: 1}
	eng := analysis.NewEngine(opt)
	prev, err := eng.Analyze(experiments.PaperSystem())
	if err != nil {
		b.Fatal(err)
	}
	mut := paperAdmission()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.AnalyzeFrom(prev, mut)
		if err != nil {
			b.Fatal(err)
		}
		if res.Delta == nil {
			b.Fatal("delta path did not engage")
		}
	}
}

// BenchmarkDeltaPaperDropCold / ...Incremental measure the complement
// of admission: dropping the background transaction again. The dropped
// task interfered with nobody (lowest priority), so the dirty set is
// empty and the incremental analysis is pure replay.
func BenchmarkDeltaPaperDropCold(b *testing.B) {
	opt := analysis.Options{Workers: 1}
	mut := experiments.PaperSystem() // the post-drop system
	eng := analysis.NewEngine(opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(mut); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaPaperDropIncremental(b *testing.B) {
	opt := analysis.Options{Workers: 1}
	eng := analysis.NewEngine(opt)
	prev, err := eng.Analyze(paperAdmission())
	if err != nil {
		b.Fatal(err)
	}
	mut := experiments.PaperSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.AnalyzeFrom(prev, mut)
		if err != nil {
			b.Fatal(err)
		}
		if res.Delta == nil {
			b.Fatal("delta path did not engage")
		}
	}
}

// BenchmarkDeltaPaperCold / BenchmarkDeltaPaperIncremental measure the
// retune variant: re-analysing the paper example after one existing
// transaction's WCET moves, cold versus seeded. The mutated
// transaction (Γ4) happens to be the costliest task of the system, so
// the speedup here is bounded by its own recomputation.
func BenchmarkDeltaPaperCold(b *testing.B) {
	opt := analysis.Options{Workers: 1}
	mut := experiments.PaperSystem()
	mut.Transactions[3].Tasks[0].WCET = 7.5
	eng := analysis.NewEngine(opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(mut); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaPaperIncremental(b *testing.B) {
	opt := analysis.Options{Workers: 1}
	base := experiments.PaperSystem()
	eng := analysis.NewEngine(opt)
	prev, err := eng.Analyze(base)
	if err != nil {
		b.Fatal(err)
	}
	mut := base.Clone()
	mut.Transactions[3].Tasks[0].WCET = 7.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.AnalyzeFrom(prev, mut)
		if err != nil {
			b.Fatal(err)
		}
		if res.Delta == nil {
			b.Fatal("delta path did not engage")
		}
	}
}

// TestAnalyzeFromPriorityPairReorderFallsBack: the priority-band fast
// path must refuse a matching whose COMBINED replay order (unchanged
// pairs plus positional priority-only pairs) reverses transaction
// order — a clean task's interference terms would sum in a different
// order than the baseline recorded. Here A's removal lets C
// (fingerprint-matched) jump ahead of the positionally-matched
// priority pair B/B', so the planner must fall back cold; the result
// stays bit-identical either way.
func TestAnalyzeFromPriorityPairReorderFallsBack(t *testing.T) {
	plats := []platform.Params{{Alpha: 0.8, Delta: 1, Beta: 0.5}, {Alpha: 0.5, Delta: 1, Beta: 0.5}}
	mkTx := func(name string, period float64, wcet float64, prio, plat int) model.Transaction {
		return model.Transaction{Name: name, Period: period, Deadline: period,
			Tasks: []model.Task{{Name: name + ",1", WCET: wcet, BCET: wcet / 2, Priority: prio, Platform: plat}}}
	}
	old := &model.System{Platforms: plats, Transactions: []model.Transaction{
		mkTx("A", 30, 1, 5, 1),
		mkTx("B", 40, 2, 4, 0),
		mkTx("C", 50, 3, 3, 0),
		mkTx("Z", 60, 4, 1, 0),
	}}
	eng := analysis.NewEngine(analysis.Options{})
	prev, err := eng.Analyze(old)
	if err != nil {
		t.Fatal(err)
	}

	// New system: A removed, C hoisted above B, B's priority moved
	// 4→2. B' matches B positionally (index 1 in both), C and Z match
	// old indices 2 and 3 by fingerprint — combined old order [2,1,3].
	bPrime := mkTx("B", 40, 2, 2, 0)
	next := &model.System{Platforms: plats, Transactions: []model.Transaction{
		mkTx("C", 50, 3, 3, 0),
		bPrime,
		mkTx("Z", 60, 4, 1, 0),
	}}
	d := model.Diff(old, next)
	if len(d.Unchanged) != 2 || len(d.Modified) != 1 || d.Modified[0] != [2]int{1, 1} || !d.InOrder() {
		t.Fatalf("scenario no longer matches its premise: %+v", d)
	}

	got, err := eng.AnalyzeFrom(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delta != nil {
		t.Fatalf("order-reversing matching took the replay path (Delta = %+v); interference sums are order-sensitive", got.Delta)
	}
	want, err := analysis.NewEngine(analysis.Options{}).Analyze(next)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tasks, want.Tasks) {
		t.Fatalf("fallback result differs from cold analysis")
	}
}
