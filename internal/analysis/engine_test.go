package analysis_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/gen"
	"hsched/internal/model"
)

// resultsIdentical reports whether two analysis results are
// bit-identical in every caller-visible field (exact float equality,
// not approximate: the parallel engine must not perturb a single ulp).
func resultsIdentical(a, b *analysis.Result) bool {
	if a.Iterations != b.Iterations || a.Converged != b.Converged || a.Schedulable != b.Schedulable {
		return false
	}
	if len(a.Tasks) != len(b.Tasks) {
		return false
	}
	for i := range a.Tasks {
		if len(a.Tasks[i]) != len(b.Tasks[i]) {
			return false
		}
		for j := range a.Tasks[i] {
			x, y := a.Tasks[i][j], b.Tasks[i][j]
			// NaN-safe and +Inf-safe: compare bit patterns.
			same := func(p, q float64) bool {
				return math.Float64bits(p) == math.Float64bits(q)
			}
			if !same(x.Offset, y.Offset) || !same(x.Jitter, y.Jitter) ||
				!same(x.Best, y.Best) || !same(x.Worst, y.Worst) ||
				x.CriticalInitiator != y.CriticalInitiator || x.CriticalJob != y.CriticalJob {
				return false
			}
		}
	}
	return true
}

// largeRandomSystem draws a system big enough that the parallel
// response stage actually fans out.
func largeRandomSystem(t testing.TB, seed int64) *model.System {
	t.Helper()
	sys, err := gen.System(gen.Config{
		Seed: seed, Platforms: 3, Transactions: 10, ChainLen: 4,
		PeriodMin: 10, PeriodMax: 1000, Utilization: 0.45,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatalf("gen.System: %v", err)
	}
	return sys
}

// TestEngineParallelDeterminism runs the engine on the paper's
// sensor-fusion example and on a larger random system with 1, 2, 3 and
// 8 response workers (under -race in CI) and asserts the results are
// identical in every field regardless of the worker count.
func TestEngineParallelDeterminism(t *testing.T) {
	systems := map[string]*model.System{
		"paper":  experiments.PaperSystem(),
		"random": largeRandomSystem(t, 42),
	}
	for name, sys := range systems {
		for _, exact := range []bool{false, true} {
			base, err := analysis.NewEngine(analysis.Options{Workers: 1, Exact: exact}).Analyze(sys)
			if err != nil {
				t.Fatalf("%s exact=%v workers=1: %v", name, exact, err)
			}
			for _, workers := range []int{2, 3, 8} {
				eng := analysis.NewEngine(analysis.Options{Workers: workers, Exact: exact})
				got, err := eng.Analyze(sys)
				if err != nil {
					t.Fatalf("%s exact=%v workers=%d: %v", name, exact, workers, err)
				}
				if !resultsIdentical(base, got) {
					t.Errorf("%s exact=%v: %d-worker result differs from sequential result", name, exact, workers)
				}
			}
		}
	}
}

// TestEngineParallelErrorPropagation asserts the exact analysis's
// scenario-overflow error survives the parallel round (which cancels
// outstanding tasks on failure) for any worker count, and that a
// failed call leaves the engine usable.
func TestEngineParallelErrorPropagation(t *testing.T) {
	sys := largeRandomSystem(t, 1)
	for _, workers := range []int{1, 8} {
		eng := analysis.NewEngine(analysis.Options{Exact: true, MaxScenarios: 1, Workers: workers})
		if _, err := eng.Analyze(sys); !errors.Is(err, analysis.ErrTooManyScenarios) {
			t.Fatalf("workers=%d: err = %v, want ErrTooManyScenarios", workers, err)
		}
		// The engine must recover: a feasible analysis after the failure.
		if _, err := analysis.NewEngine(analysis.Options{Workers: workers}).Analyze(sys); err != nil {
			t.Fatalf("workers=%d: approximate analysis after failure: %v", workers, err)
		}
	}
}

// TestEngineReuse runs one engine across systems of different shapes
// and parameters and asserts every result equals the one a fresh
// engine produces — i.e. no scratch state leaks between calls.
func TestEngineReuse(t *testing.T) {
	paper := experiments.PaperSystem()
	// Same shape as paper but different execution times: exercises the
	// cache-retained rebind path.
	scaled := paper.Clone()
	for i := range scaled.Transactions {
		for j := range scaled.Transactions[i].Tasks {
			scaled.Transactions[i].Tasks[j].WCET *= 1.5
			scaled.Transactions[i].Tasks[j].BCET *= 1.5
		}
	}
	// Different shape entirely: exercises the reshape path.
	random := largeRandomSystem(t, 7)

	sequence := []*model.System{paper, scaled, random, paper}
	eng := analysis.NewEngine(analysis.Options{})
	for k, sys := range sequence {
		reused, err := eng.Analyze(sys)
		if err != nil {
			t.Fatalf("reused engine, system %d: %v", k, err)
		}
		fresh, err := analysis.NewEngine(analysis.Options{}).Analyze(sys)
		if err != nil {
			t.Fatalf("fresh engine, system %d: %v", k, err)
		}
		if !resultsIdentical(reused, fresh) {
			t.Errorf("system %d: reused-engine result differs from fresh-engine result", k)
		}
	}
}

// TestEngineResultsDetached asserts a returned Result is not aliased
// to engine scratch: analysing a second system must not mutate the
// first result.
func TestEngineResultsDetached(t *testing.T) {
	eng := analysis.NewEngine(analysis.Options{})
	paper := experiments.PaperSystem()
	first, err := eng.Analyze(paper)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := &analysis.Result{
		System:      first.System.Clone(),
		Tasks:       make([][]analysis.TaskResult, len(first.Tasks)),
		Iterations:  first.Iterations,
		Converged:   first.Converged,
		Schedulable: first.Schedulable,
	}
	for i, row := range first.Tasks {
		snapshot.Tasks[i] = append([]analysis.TaskResult(nil), row...)
	}
	if _, err := eng.Analyze(largeRandomSystem(t, 99)); err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(first, snapshot) {
		t.Error("first result mutated by the engine's second analysis")
	}
	if !reflect.DeepEqual(first.System, snapshot.System) {
		t.Error("first result's System mutated by the engine's second analysis")
	}
}

// TestEngineRecorderSnapshotsDetached asserts Recorder snapshots
// (including their System) survive the engine moving on to another
// analysis — the Table 3 reproduction retains them.
func TestEngineRecorderSnapshotsDetached(t *testing.T) {
	var snaps []*analysis.Result
	eng := analysis.NewEngine(analysis.Options{
		Recorder: func(_ int, snap *analysis.Result) { snaps = append(snaps, snap) },
	})
	if _, err := eng.Analyze(experiments.PaperSystem()); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("recorder never invoked")
	}
	last := snaps[len(snaps)-1]
	wantSystem := last.System.Clone()
	wantJitter := last.Tasks[0][3].Jitter

	if _, err := eng.Analyze(largeRandomSystem(t, 5)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(last.System, wantSystem) {
		t.Error("snapshot System mutated by the engine's next analysis")
	}
	if got := last.Tasks[0][3].Jitter; got != wantJitter {
		t.Errorf("snapshot task data mutated: J1,4 = %v, want %v", got, wantJitter)
	}
}

// TestEngineDoesNotMutateInput asserts Analyze leaves the caller's
// system untouched (the engine works on its own copy).
func TestEngineDoesNotMutateInput(t *testing.T) {
	sys := experiments.PaperSystem()
	want := sys.Clone()
	if _, err := analysis.NewEngine(analysis.Options{}).Analyze(sys); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sys, want) {
		t.Error("Analyze mutated the input system")
	}
}

// TestEngineMatchesFreeFunctions locks the wrapper equivalence: the
// package-level Analyze/AnalyzeStatic and the engine methods agree.
func TestEngineMatchesFreeFunctions(t *testing.T) {
	sys := experiments.PaperSystem()
	opt := analysis.Options{}
	free, err := analysis.Analyze(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := analysis.NewEngine(opt).Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(free, eng) {
		t.Error("engine Analyze differs from package-level Analyze")
	}

	freeS, err := analysis.AnalyzeStatic(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	engS, err := analysis.NewEngine(opt).AnalyzeStatic(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(freeS, engS) {
		t.Error("engine AnalyzeStatic differs from package-level AnalyzeStatic")
	}
}
