package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"hsched/internal/model"
	"hsched/internal/platform"
)

func TestModPos(t *testing.T) {
	cases := []struct{ x, m, want float64 }{
		{0, 50, 0}, {19, 50, 19}, {50, 50, 0}, {69, 50, 19},
		{-5, 50, 45}, {-50, 50, 0}, {-69, 50, 31},
	}
	for _, c := range cases {
		if got := modPos(c.x, c.m); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("modPos(%v, %v) = %v, want %v", c.x, c.m, got, c.want)
		}
	}
}

func TestPhase(t *testing.T) {
	// Eq. 10: ϕ = T − (φk + Jk − φj) mod T, in (0, T].
	cases := []struct{ phiK, jK, phiJ, T, want float64 }{
		{0, 0, 0, 50, 50},  // self, no jitter: the critical job is at 0, ϕ = T
		{5, 19, 5, 50, 31}, // τ1,4 with J = 19
		{0, 0, 5, 50, 5},   // τ1,1 starts, τ1,4 offset 5
		{5, 0, 0, 50, 45},  // τ1,4 starts, τ1,1 offset 0
		{3, 9, 3, 50, 41},  // τ1,2 with J = 9
	}
	for _, c := range cases {
		if got := phase(c.phiK, c.jK, c.phiJ, c.T); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("phase(%v, %v, %v, %v) = %v, want %v", c.phiK, c.jK, c.phiJ, c.T, got, c.want)
		}
	}
}

// TestPhaseProperty: the phase is always in (0, T] and shifting both
// offsets by the same amount (or any offset by a full period) leaves
// it unchanged.
func TestPhaseProperty(t *testing.T) {
	f := func(pk, jk, pj uint16, shift int8) bool {
		T := 50.0
		a, j, b := float64(pk%997)/10, float64(jk%997)/10, float64(pj%997)/10
		ph := phase(a, j, b, T)
		if !(ph > 0 && ph <= T+1e-9) {
			return false
		}
		s := float64(shift)
		if math.Abs(phase(a+s, j, b+s, T)-ph) > 1e-9 {
			return false
		}
		return math.Abs(phase(a+T, j, b, T)-ph) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// single builds a one-platform system of independent single-task
// transactions with the given (period, wcet, priority) triples.
func single(p platform.Params, specs ...[3]float64) *model.System {
	sys := &model.System{Platforms: []platform.Params{p}}
	for _, s := range specs {
		sys.Transactions = append(sys.Transactions, model.Transaction{
			Period: s[0], Deadline: s[0],
			Tasks: []model.Task{{WCET: s[1], BCET: s[1], Priority: int(s[2])}},
		})
	}
	return sys
}

// TestClassicalResponseTimes: on a dedicated platform the analysis
// reproduces textbook fixed-priority response times.
func TestClassicalResponseTimes(t *testing.T) {
	sys := single(platform.Dedicated(), [3]float64{5, 1, 3}, [3]float64{8, 2, 2}, [3]float64{20, 5, 1})
	res, err := Analyze(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// R1 = 1; R2 = 2 + 1 = 3; R3: w = 5 + ⌈w/5⌉ + 2⌈w/8⌉ → 5+1+2=8,
	// w=8: 5+2+2=9, w=9: 5+2+4=11, w=11: 5+3+4=12, w=12: 5+3+4=12.
	want := []float64{1, 3, 12}
	for i, w := range want {
		if got := res.TransactionResponse(i); math.Abs(got-w) > 1e-9 {
			t.Errorf("R%d = %v, want %v", i+1, got, w)
		}
	}
}

// TestScaledPlatform: on (α, Δ, β) = (0.5, 3, 0), every term scales:
// the highest-priority task takes Δ + C/α.
func TestScaledPlatform(t *testing.T) {
	sys := single(platform.Params{Alpha: 0.5, Delta: 3, Beta: 0},
		[3]float64{40, 2, 2}, [3]float64{60, 3, 1})
	res, err := Analyze(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TransactionResponse(0); math.Abs(got-7) > 1e-9 { // 3 + 2/0.5
		t.Errorf("R1 = %v, want 7", got)
	}
	// Low: w = 3 + 6 + ⌈w/40⌉·4 → 13, one interference: 3+6+4 = 13.
	if got := res.TransactionResponse(1); math.Abs(got-13) > 1e-9 {
		t.Errorf("R2 = %v, want 13", got)
	}
}

// TestBlockingTerm: the blocking Ba,b enters the response additively.
func TestBlockingTerm(t *testing.T) {
	sys := single(platform.Dedicated(), [3]float64{10, 1, 1})
	base, err := Analyze(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Transactions[0].Tasks[0].Blocking = 2.5
	blocked, err := Analyze(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := blocked.TransactionResponse(0) - base.TransactionResponse(0); math.Abs(d-2.5) > 1e-9 {
		t.Errorf("blocking added %v, want 2.5", d)
	}
}

// TestOverloadYieldsInf: demand above the platform rate must be
// reported as an unbounded response, not a hang.
func TestOverloadYieldsInf(t *testing.T) {
	sys := single(platform.Params{Alpha: 0.2, Delta: 1, Beta: 0},
		[3]float64{10, 1, 2}, [3]float64{10, 1.5, 1}) // demand 0.25 > 0.2... per-task
	res, err := Analyze(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.TransactionResponse(1), 1) {
		t.Errorf("R2 = %v, want +Inf", res.TransactionResponse(1))
	}
	if res.Schedulable {
		t.Errorf("overloaded system reported schedulable")
	}
	if !res.Converged {
		t.Errorf("overload verdict should be final (converged)")
	}
}

// TestMonotonicity: response times are monotone in WCET, jitter and
// platform delay — the foundations of the holistic iteration's
// convergence argument.
func TestMonotonicity(t *testing.T) {
	base := single(platform.Params{Alpha: 0.5, Delta: 1, Beta: 0},
		[3]float64{20, 2, 2}, [3]float64{50, 4, 1})

	r0, err := AnalyzeStatic(base, Options{})
	if err != nil {
		t.Fatal(err)
	}

	grow := base.Clone()
	grow.Transactions[0].Tasks[0].WCET = 3
	r1, err := AnalyzeStatic(grow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TransactionResponse(1) < r0.TransactionResponse(1) {
		t.Errorf("R2 decreased when a higher-priority WCET grew")
	}

	jit := base.Clone()
	jit.Transactions[0].Tasks[0].Jitter = 15
	r2, err := AnalyzeStatic(jit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.TransactionResponse(1) < r0.TransactionResponse(1) {
		t.Errorf("R2 decreased when a higher-priority jitter grew")
	}

	slow := base.Clone()
	slow.Platforms[0].Delta = 4
	r3, err := AnalyzeStatic(slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range slow.Transactions {
		if r3.TransactionResponse(i) < r0.TransactionResponse(i) {
			t.Errorf("R%d decreased when the platform delay grew", i+1)
		}
	}
}

// TestExactNeverAboveApprox: on randomised systems the exact analysis
// is bounded by the approximate one, per Tindell's argument behind
// Eq. 15.
func TestExactNeverAboveApprox(t *testing.T) {
	f := func(c1, c2, c3, p1, p2 uint16) bool {
		T1 := 20 + float64(p1%200)
		T2 := 20 + float64(p2%200)
		sys := &model.System{
			Platforms: []platform.Params{{Alpha: 0.6, Delta: 1, Beta: 0.5}},
			Transactions: []model.Transaction{
				{Period: T1, Deadline: 10 * T1, Tasks: []model.Task{
					{WCET: 0.5 + float64(c1%50)/10, BCET: 0.1, Priority: 3},
					{WCET: 0.5 + float64(c2%50)/10, BCET: 0.1, Priority: 1},
				}},
				{Period: T2, Deadline: 10 * T2, Tasks: []model.Task{
					{WCET: 0.5 + float64(c3%50)/10, BCET: 0.1, Priority: 2},
				}},
			},
		}
		u := sys.Utilization()
		if u[0] >= 0.95 {
			return true // skip near-overload draws
		}
		ex, err := Analyze(sys, Options{Exact: true})
		if err != nil {
			return false
		}
		ap, err := Analyze(sys, Options{})
		if err != nil {
			return false
		}
		for i := range sys.Transactions {
			for j := range sys.Transactions[i].Tasks {
				if ex.Tasks[i][j].Worst > ap.Tasks[i][j].Worst+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTooManyScenarios: the exact analysis refuses combinatorial
// explosions instead of hanging.
func TestTooManyScenarios(t *testing.T) {
	sys := &model.System{Platforms: []platform.Params{platform.Dedicated()}}
	// 8 transactions × 5 high-priority tasks each interfere with one
	// low-priority victim: 5^8 ≈ 390k scenarios > limit 1000.
	for i := 0; i < 8; i++ {
		tr := model.Transaction{Period: 100, Deadline: 100}
		for j := 0; j < 5; j++ {
			tr.Tasks = append(tr.Tasks, model.Task{WCET: 0.01, BCET: 0.01, Priority: 10})
		}
		sys.Transactions = append(sys.Transactions, tr)
	}
	sys.Transactions = append(sys.Transactions, model.Transaction{
		Period: 100, Deadline: 100,
		Tasks: []model.Task{{WCET: 1, BCET: 1, Priority: 1}},
	})
	_, err := Analyze(sys, Options{Exact: true, MaxScenarios: 1000})
	if err == nil {
		t.Fatalf("expected ErrTooManyScenarios")
	}
}

// TestOffsetBeyondPeriod: offsets larger than the period are legal
// (the paper explicitly allows them); the analysis reduces them for
// phases but measures responses from the true transaction activation.
func TestOffsetBeyondPeriod(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Period: 10, Deadline: 100, Tasks: []model.Task{
				{WCET: 1, BCET: 1, Priority: 1, Offset: 25},
			}},
		},
	}
	res, err := AnalyzeStatic(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The task runs alone: completion 1 after activation, activation
	// 25 after the transaction release → R = 26.
	if got := res.TransactionResponse(0); math.Abs(got-26) > 1e-9 {
		t.Errorf("R = %v, want 26", got)
	}
}

// TestReleaseJitterOfFirstTask: external release jitter of the first
// task inflates its own worst case and propagates down the chain.
func TestReleaseJitterOfFirstTask(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Period: 20, Deadline: 40, Tasks: []model.Task{
				{WCET: 1, BCET: 1, Priority: 2, Jitter: 5},
				{WCET: 1, BCET: 1, Priority: 1},
			}},
		},
	}
	res, err := Analyze(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First task: jittered by up to 5, runs alone: R = 5 + 1 = 6.
	if got := res.Tasks[0][0].Worst; math.Abs(got-6) > 1e-9 {
		t.Errorf("R1,1 = %v, want 6", got)
	}
	// Second: starts when first ends (≤ 6), runs 1 → R = 7.
	if got := res.Tasks[0][1].Worst; math.Abs(got-7) > 1e-9 {
		t.Errorf("R1,2 = %v, want 7", got)
	}
}

// TestTightBestCaseNeverLooser: the per-run refinement is never below
// the simple bound and never above the worst case.
func TestTightBestCaseNeverLooser(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{{Alpha: 0.5, Delta: 1, Beta: 2}},
		Transactions: []model.Transaction{
			{Period: 100, Deadline: 100, Tasks: []model.Task{
				{WCET: 2, BCET: 1, Priority: 3},
				{WCET: 2, BCET: 1, Priority: 2},
				{WCET: 2, BCET: 1, Priority: 1},
			}},
		},
	}
	_, simple := bestBounds(sys, false)
	_, tight := bestBounds(sys, true)
	for j := range sys.Transactions[0].Tasks {
		if tight[0][j] < simple[0][j]-1e-12 {
			t.Errorf("task %d: tight %v below simple %v", j, tight[0][j], simple[0][j])
		}
	}
	// Three consecutive 1-cycle tasks on one platform: simple grants β
	// per task (3 × max(0, 2−2) = 0), tight grants it once:
	// max(0, 6/0.5... run demand 3 → 3/0.5 − 2 = 4.
	if got := tight[0][2]; math.Abs(got-4) > 1e-12 {
		t.Errorf("tight completion of the run = %v, want 4", got)
	}
	if got := simple[0][2]; got != 0 {
		t.Errorf("simple completion = %v, want 0 (β per task)", got)
	}
}

// TestUnconvergedIsNeverSchedulable: cutting the holistic iteration
// off before the fixed point must not yield a positive verdict — the
// intermediate response times are lower bounds of the final ones.
func TestUnconvergedIsNeverSchedulable(t *testing.T) {
	sys := paperSystem()
	res, err := Analyze(sys, Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("paper example converged in 2 rounds; it needs 5")
	}
	if res.Schedulable {
		t.Errorf("unconverged analysis reported schedulable")
	}
}

// TestValidationPropagates: invalid systems are rejected before any
// computation.
func TestValidationPropagates(t *testing.T) {
	sys := single(platform.Dedicated(), [3]float64{10, 1, 1})
	sys.Transactions[0].Tasks[0].WCET = -1
	if _, err := Analyze(sys, Options{}); err == nil {
		t.Errorf("Analyze accepted an invalid system")
	}
	if _, err := AnalyzeStatic(sys, Options{}); err == nil {
		t.Errorf("AnalyzeStatic accepted an invalid system")
	}
}

// TestAnalyzeDoesNotMutateInput: the caller's system keeps its offsets
// and jitters.
func TestAnalyzeDoesNotMutateInput(t *testing.T) {
	sys := single(platform.Dedicated(), [3]float64{10, 1, 2}, [3]float64{30, 2, 1})
	sys.Transactions[1].Tasks[0].Offset = 3
	before := *sys.Clone()
	if _, err := Analyze(sys, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range before.Transactions {
		for j := range before.Transactions[i].Tasks {
			b, a := before.Transactions[i].Tasks[j], sys.Transactions[i].Tasks[j]
			if b.Offset != a.Offset || b.Jitter != a.Jitter {
				t.Fatalf("task (%d,%d) mutated: %+v -> %+v", i, j, b, a)
			}
		}
	}
}
