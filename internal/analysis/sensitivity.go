package analysis

import (
	"fmt"
	"math"

	"hsched/internal/model"
)

// CriticalScaling returns the largest factor k (within tol) such that
// the system with every execution time (WCET and BCET) multiplied by k
// is still schedulable under the holistic analysis — the classic
// sensitivity metric: k > 1 measures spare capacity, k < 1 the
// overload degree. The search range is (0, maxFactor]; maxFactor ≤ 0
// selects 16. Returns 0 when the system is unschedulable at every
// probed factor.
func CriticalScaling(sys *model.System, opt Options, tol, maxFactor float64) (float64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if tol <= 0 {
		tol = 1e-3
	}
	if maxFactor <= 0 {
		maxFactor = 16
	}

	// The probes differ only in execution times, so one engine and one
	// scaled working copy serve the whole search: the engine keeps its
	// interference cache (the shape never changes) and the copy is
	// rescaled in place from the pristine input.
	fastOpt := opt
	fastOpt.StopAtDeadlineMiss = true
	// Every probe rescales every transaction, so no probe could ever
	// seed another incrementally — skip the replay-state recording.
	fastOpt.DisableReplayState = true
	eng := NewEngine(fastOpt)
	scaled := sys.Clone()
	feasible := func(k float64) (bool, error) {
		for i := range scaled.Transactions {
			for j := range scaled.Transactions[i].Tasks {
				t := &scaled.Transactions[i].Tasks[j]
				orig := &sys.Transactions[i].Tasks[j]
				t.WCET = orig.WCET * k
				t.BCET = orig.BCET * k
			}
		}
		res, err := eng.Analyze(scaled)
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}

	ok, err := feasible(maxFactor)
	if err != nil {
		return 0, err
	}
	if ok {
		return maxFactor, nil
	}
	lo, hi := 0.0, maxFactor
	okAtLo := false
	// Establish a feasible lower point by geometric probing.
	for probe := 1.0; probe > tol/16; probe /= 2 {
		ok, err := feasible(probe)
		if err != nil {
			return 0, err
		}
		if ok {
			lo, okAtLo = probe, true
			break
		}
		hi = probe
	}
	if !okAtLo {
		return 0, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	if math.IsNaN(lo) {
		return 0, fmt.Errorf("analysis: scaling search diverged")
	}
	return lo, nil
}
