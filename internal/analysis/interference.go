package analysis

import (
	"fmt"
	"slices"

	"hsched/internal/model"
)

// ErrTooManyScenarios is wrapped in the error returned when the exact
// analysis would exceed Options.MaxScenarios scenario vectors.
var ErrTooManyScenarios = fmt.Errorf("analysis: exact scenario count exceeds limit")

// analyzer carries the per-run state of the static-offset analysis:
// the system under analysis (whose offsets/jitters the holistic loop
// rewrites between rounds) and caches that depend only on priorities
// and platform mappings. It is the interference-construction stage of
// the engine pipeline: bind attaches a system (rebuilding the
// higher-priority cache only when the system shape changed) and
// refreshOffsets derives the reduced offsets feeding Eq. (10)/(11).
type analyzer struct {
	sys *model.System
	opt Options

	// hpCache[a][b][i] lists the task indices j of transaction i that
	// can interfere with τa,b per Eq. (17): priority ≥ pa,b and same
	// platform. For i == a the task (a,b) itself is excluded (its own
	// jobs are accounted separately in Eq. 13/16).
	hpCache [][][][]int

	// reduced[i][j] is the offset φi,j reduced modulo Ti, recomputed
	// at the start of every analysis round.
	reduced [][]float64

	// shape is the structural signature (per-task platform and
	// priority) under which hpCache was built; bind skips the rebuild
	// when it is unchanged.
	shape []int

	// sigBuf is the scratch the next signature is computed into.
	sigBuf []int
}

func newAnalyzer(sys *model.System, opt Options) *analyzer {
	an := &analyzer{}
	an.bind(sys, opt)
	an.refreshOffsets()
	return an
}

// shapeSignature appends the structural signature of sys to dst: the
// transaction/task counts plus every task's platform index and
// priority — exactly the inputs hpCache depends on (Eq. 17).
func shapeSignature(dst []int, sys *model.System) []int {
	dst = append(dst, len(sys.Platforms), len(sys.Transactions))
	for i := range sys.Transactions {
		tasks := sys.Transactions[i].Tasks
		dst = append(dst, len(tasks))
		for j := range tasks {
			dst = append(dst, tasks[j].Platform, tasks[j].Priority)
		}
	}
	return dst
}

// bind attaches a system to the analyzer, rebuilding the interference
// cache only when the structural shape changed. It does not refresh
// the reduced offsets — each entry point runs that stage itself (the
// holistic loop refreshes at the top of every iteration, so a refresh
// here would be computed from offsets the initial conditions are
// about to overwrite).
func (an *analyzer) bind(sys *model.System, opt Options) {
	an.sys, an.opt = sys, opt
	an.sigBuf = shapeSignature(an.sigBuf[:0], sys)
	if !slices.Equal(an.shape, an.sigBuf) {
		an.shape = append(an.shape[:0], an.sigBuf...)
		an.buildHP()
	}
}

func (an *analyzer) buildHP() {
	n := len(an.sys.Transactions)
	an.hpCache = make([][][][]int, n)
	for a := range an.sys.Transactions {
		tasksA := an.sys.Transactions[a].Tasks
		an.hpCache[a] = make([][][]int, len(tasksA))
		for b := range tasksA {
			ta := &tasksA[b]
			sets := make([][]int, n)
			for i := range an.sys.Transactions {
				for j := range an.sys.Transactions[i].Tasks {
					if i == a && j == b {
						continue
					}
					tj := &an.sys.Transactions[i].Tasks[j]
					if tj.Platform == ta.Platform && tj.Priority >= ta.Priority {
						sets[i] = append(sets[i], j)
					}
				}
			}
			an.hpCache[a][b] = sets
		}
	}
}

// refreshOffsets recomputes the reduced offsets into the reusable
// buffer; the holistic loop calls it after rewriting φ and J.
func (an *analyzer) refreshOffsets() {
	an.reduced = reuseMatrix(an.reduced, an.sys)
	for i := range an.sys.Transactions {
		tr := &an.sys.Transactions[i]
		for j := range tr.Tasks {
			an.reduced[i][j] = modPos(tr.Tasks[j].Offset, tr.Period)
		}
	}
}

// reuseMatrix shapes buf to one row per transaction and one column per
// task, reusing the existing backing arrays whenever they are large
// enough. Contents are unspecified after the call.
func reuseMatrix[T any](buf [][]T, sys *model.System) [][]T {
	n := len(sys.Transactions)
	if cap(buf) < n {
		buf = make([][]T, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		m := len(sys.Transactions[i].Tasks)
		if cap(buf[i]) < m {
			buf[i] = make([]T, m)
		} else {
			buf[i] = buf[i][:m]
		}
	}
	return buf
}

// phaseK returns ϕ^k_{i,j} (Eq. 10) with reduced offsets.
func (an *analyzer) phaseK(i, k, j int) float64 {
	tr := &an.sys.Transactions[i]
	return phase(an.reduced[i][k], tr.Tasks[k].Jitter, an.reduced[i][j], tr.Period)
}

// wk returns W^k_i(τa,b, t) per Eq. (11): the worst-case interference
// of transaction Γi on the busy period of τa,b when the busy period is
// initiated by τi,k at its maximal jitter. alpha is the rate of the
// platform of the task under analysis.
func (an *analyzer) wk(i, k int, hpI []int, alpha, t float64) float64 {
	tr := &an.sys.Transactions[i]
	eps := an.opt.eps()
	sum := 0.0
	for _, j := range hpI {
		tj := &tr.Tasks[j]
		phi := an.phaseK(i, k, j)
		jobs := floorE((tj.Jitter+phi)/tr.Period, eps) + ceilE((t-phi)/tr.Period, eps)
		if jobs > 0 {
			sum += jobs * tj.WCET / alpha
		}
	}
	return sum
}

// wstar returns W*_i(τa,b, t) per Eq. (15): the pointwise maximum of
// W^k_i over every candidate critical-instant task k in hp_i(τa,b).
func (an *analyzer) wstar(i int, hpI []int, alpha, t float64) float64 {
	best := 0.0
	for _, k := range hpI {
		if w := an.wk(i, k, hpI, alpha, t); w > best {
			best = w
		}
	}
	return best
}
