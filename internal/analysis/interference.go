package analysis

import (
	"fmt"

	"hsched/internal/model"
)

// ErrTooManyScenarios is wrapped in the error returned when the exact
// analysis would exceed Options.MaxScenarios scenario vectors.
var ErrTooManyScenarios = fmt.Errorf("analysis: exact scenario count exceeds limit")

// analyzer carries the per-run state of the static-offset analysis:
// the system under analysis (whose offsets/jitters the holistic loop
// rewrites between rounds) and caches that depend only on priorities
// and platform mappings.
type analyzer struct {
	sys *model.System
	opt Options

	// hpCache[a][b][i] lists the task indices j of transaction i that
	// can interfere with τa,b per Eq. (17): priority ≥ pa,b and same
	// platform. For i == a the task (a,b) itself is excluded (its own
	// jobs are accounted separately in Eq. 13/16).
	hpCache [][][][]int

	// reduced[i][j] is the offset φi,j reduced modulo Ti, recomputed
	// at the start of every analysis round.
	reduced [][]float64
}

func newAnalyzer(sys *model.System, opt Options) *analyzer {
	an := &analyzer{sys: sys, opt: opt}
	an.buildHP()
	an.refreshOffsets()
	return an
}

func (an *analyzer) buildHP() {
	n := len(an.sys.Transactions)
	an.hpCache = make([][][][]int, n)
	for a := range an.sys.Transactions {
		tasksA := an.sys.Transactions[a].Tasks
		an.hpCache[a] = make([][][]int, len(tasksA))
		for b := range tasksA {
			ta := &tasksA[b]
			sets := make([][]int, n)
			for i := range an.sys.Transactions {
				for j := range an.sys.Transactions[i].Tasks {
					if i == a && j == b {
						continue
					}
					tj := &an.sys.Transactions[i].Tasks[j]
					if tj.Platform == ta.Platform && tj.Priority >= ta.Priority {
						sets[i] = append(sets[i], j)
					}
				}
			}
			an.hpCache[a][b] = sets
		}
	}
}

// refreshOffsets recomputes the reduced offsets; the holistic loop
// calls it after rewriting φ and J.
func (an *analyzer) refreshOffsets() {
	an.reduced = make([][]float64, len(an.sys.Transactions))
	for i := range an.sys.Transactions {
		tr := &an.sys.Transactions[i]
		an.reduced[i] = make([]float64, len(tr.Tasks))
		for j := range tr.Tasks {
			an.reduced[i][j] = modPos(tr.Tasks[j].Offset, tr.Period)
		}
	}
}

// phaseK returns ϕ^k_{i,j} (Eq. 10) with reduced offsets.
func (an *analyzer) phaseK(i, k, j int) float64 {
	tr := &an.sys.Transactions[i]
	return phase(an.reduced[i][k], tr.Tasks[k].Jitter, an.reduced[i][j], tr.Period)
}

// wk returns W^k_i(τa,b, t) per Eq. (11): the worst-case interference
// of transaction Γi on the busy period of τa,b when the busy period is
// initiated by τi,k at its maximal jitter. alpha is the rate of the
// platform of the task under analysis.
func (an *analyzer) wk(i, k int, hpI []int, alpha, t float64) float64 {
	tr := &an.sys.Transactions[i]
	eps := an.opt.eps()
	sum := 0.0
	for _, j := range hpI {
		tj := &tr.Tasks[j]
		phi := an.phaseK(i, k, j)
		jobs := floorE((tj.Jitter+phi)/tr.Period, eps) + ceilE((t-phi)/tr.Period, eps)
		if jobs > 0 {
			sum += jobs * tj.WCET / alpha
		}
	}
	return sum
}

// wstar returns W*_i(τa,b, t) per Eq. (15): the pointwise maximum of
// W^k_i over every candidate critical-instant task k in hp_i(τa,b).
func (an *analyzer) wstar(i int, hpI []int, alpha, t float64) float64 {
	best := 0.0
	for _, k := range hpI {
		if w := an.wk(i, k, hpI, alpha, t); w > best {
			best = w
		}
	}
	return best
}
