package analysis

import (
	"fmt"
	"slices"

	"hsched/internal/batch"
	"hsched/internal/model"
)

// ErrTooManyScenarios is wrapped in the error returned when the exact
// analysis would exceed Options.MaxScenarios scenario vectors.
var ErrTooManyScenarios = fmt.Errorf("analysis: exact scenario count exceeds limit")

// txSlab is the per-transaction slab of analysis state: everything the
// engine and analyzer know about one transaction Γa lives here, keyed
// by the transaction's position in the system under analysis. Keeping
// the state transaction-keyed (instead of flat system-wide matrices)
// lets consecutive analyses of edited systems invalidate exactly the
// slabs an edit touched: the interference rows of an unchanged
// transaction survive a neighbour's retuning, which is what the
// incremental re-analysis path (Engine.AnalyzeFrom) builds on.
type txSlab struct {
	// shape is the structural signature (task count plus per-task
	// platform and priority) the hp rows were built under; bind
	// rebuilds only slabs whose signature moved.
	shape []int

	// hp[b][i] lists the task indices j of transaction i that can
	// interfere with τa,b per Eq. (17): priority ≥ pa,b and same
	// platform. For i == a the task (a, b) itself is excluded (its own
	// jobs are accounted separately in Eq. 13/16).
	hp [][][]int

	// reduced[j] is the offset φa,j reduced modulo Ta, recomputed at
	// the start of every analysis round.
	reduced []float64

	// initStarts / initCompl are the transaction's best-case bounds of
	// Eq. (18), computed once per analysis.
	initStarts []float64
	initCompl  []float64

	// overload[b] reports that τa,b's long-run demand plus its
	// interfering set's exceeds the platform rate (unbounded busy
	// period). It depends only on WCETs, periods and platform rates —
	// never on the jitters the holistic rounds rewrite — so bind
	// evaluates it once per analysis instead of once per round.
	overload []bool

	// round holds the transaction's TaskResults of the current
	// fixed-point round; prev the previous round's worst cases for the
	// convergence test, and lastRound the previous round's full
	// TaskResults — the copy source of the unchanged-inputs round
	// fast path (see Engine.analyzeTask).
	round     []TaskResult
	prev      []float64
	lastRound []TaskResult

	// seedNu[b] is the critical scenario vector the last completed
	// exact sweep of τa,b recorded — the incumbent seed of the next
	// sweep of the same task (see analyzer.exactSweep). It survives
	// across analyses of same-shaped systems (that is the cross-probe
	// reuse) and is cleared whenever the slab's shape moves; a
	// neighbour's shape change is caught per sweep by seedValidFor.
	seedNu [][]initiator
}

// analyzer carries the per-run state of the static-offset analysis:
// the system under analysis (whose offsets/jitters the holistic loop
// rewrites between rounds) and the transaction-keyed slabs holding the
// interference rows and reduced offsets. It is the
// interference-construction stage of the engine pipeline: bind
// attaches a system (rebuilding only the hp rows an edit invalidated)
// and refreshOffsets derives the reduced offsets feeding Eq. (10)/(11).
type analyzer struct {
	sys *model.System
	opt Options

	// slabs is the per-transaction state, indexed like
	// sys.Transactions.
	slabs []txSlab

	// nPlatforms is the platform count the slabs were built under; a
	// different count invalidates every hp row (platform indices are
	// incomparable across counts).
	nPlatforms int

	// sigBuf is the scratch the next signature is computed into;
	// changedBuf and changedMark stage the set of slabs an edit
	// touched.
	sigBuf      []int
	changedBuf  []int
	changedMark []bool

	// budget bounds the goroutines an exact scenario sweep may borrow
	// for chunk-parallel evaluation; the engine resets it per round to
	// the workers the round's task fan-out leaves idle. nil (the
	// standalone analyzer of the unit tests) means strictly inline.
	budget *batch.Budget
}

func newAnalyzer(sys *model.System, opt Options) *analyzer {
	an := &analyzer{}
	an.bind(sys, opt)
	an.refreshOffsets()
	return an
}

// shapeSignatureTx appends the structural signature of transaction i
// to dst: the task count plus every task's platform index and priority
// — exactly the per-transaction inputs the hp rows depend on (Eq. 17).
func shapeSignatureTx(dst []int, sys *model.System, i int) []int {
	tasks := sys.Transactions[i].Tasks
	dst = append(dst, len(tasks))
	for j := range tasks {
		dst = append(dst, tasks[j].Platform, tasks[j].Priority)
	}
	return dst
}

// bind attaches a system to the analyzer. Slabs are resized to the
// system's dimensions (reusing backing arrays) and the interference
// rows are rebuilt selectively: a slab whose own shape changed gets a
// full row rebuild, an untouched slab only re-derives the sub-slices
// that reference shape-changed transactions — unchanged transactions
// keep their interference state across a neighbour's edit. bind does
// not refresh the reduced offsets; each entry point runs that stage
// itself (the holistic loop refreshes at the top of every iteration).
func (an *analyzer) bind(sys *model.System, opt Options) {
	an.sys, an.opt = sys, opt
	n := len(sys.Transactions)
	full := len(an.slabs) != n || an.nPlatforms != len(sys.Platforms)
	an.nPlatforms = len(sys.Platforms)
	if cap(an.slabs) < n {
		slabs := make([]txSlab, n)
		copy(slabs, an.slabs)
		an.slabs = slabs
	} else {
		an.slabs = an.slabs[:n]
	}
	if cap(an.changedMark) < n {
		an.changedMark = make([]bool, n)
	} else {
		an.changedMark = an.changedMark[:n]
	}

	changed := an.changedBuf[:0]
	for i := range an.slabs {
		sl := &an.slabs[i]
		m := len(sys.Transactions[i].Tasks)
		sl.reduced = reuseRow(sl.reduced, m)
		sl.initStarts = reuseRow(sl.initStarts, m)
		sl.initCompl = reuseRow(sl.initCompl, m)
		sl.overload = reuseRow(sl.overload, m)
		sl.round = reuseRow(sl.round, m)
		sl.prev = reuseRow(sl.prev, m)
		sl.lastRound = reuseRow(sl.lastRound, m)
		if len(sl.seedNu) != m {
			sl.seedNu = make([][]initiator, m)
		}

		an.sigBuf = shapeSignatureTx(an.sigBuf[:0], sys, i)
		an.changedMark[i] = full || !slices.Equal(sl.shape, an.sigBuf)
		if an.changedMark[i] {
			sl.shape = append(sl.shape[:0], an.sigBuf...)
			changed = append(changed, i)
			// A shape change moves the transaction's own scenario axes:
			// its recorded critical scenarios no longer index the new
			// candidate sets, so the seeds are dropped, not re-validated.
			for b := range sl.seedNu {
				sl.seedNu[b] = sl.seedNu[b][:0]
			}
		}
	}
	an.changedBuf = changed
	switch {
	case len(changed) == 0:
		// Every slab's shape survived: the hp rows carry over whole.
	case full || len(changed) == n:
		for a := range an.slabs {
			an.buildHPRow(a)
		}
	default:
		for a := range an.slabs {
			if an.changedMark[a] {
				// The transaction's own tasks moved: its whole row is stale.
				an.buildHPRow(a)
				continue
			}
			// Unchanged transaction: only the sub-slices referencing the
			// shape-changed transactions need re-deriving; everything else
			// is carried over untouched.
			sl := &an.slabs[a]
			for b := range sl.hp {
				for _, i := range changed {
					sl.hp[b][i] = an.hpFill(a, b, i, sl.hp[b][i][:0])
				}
			}
		}
	}
	// Unlike the hp rows, the overload test reads parameter values
	// (WCETs, periods, rates), which can move without any shape change
	// — recompute it on every bind. Still once per analysis, not per
	// round: nothing it reads is rewritten by the holistic iteration.
	an.refreshOverload()
}

// refreshOverload precomputes the per-task utilisation overload test
// into the slabs; see txSlab.overload.
func (an *analyzer) refreshOverload() {
	for a := range an.slabs {
		tasks := an.sys.Transactions[a].Tasks
		for b := range tasks {
			alpha := an.sys.Platforms[tasks[b].Platform].Alpha
			an.slabs[a].overload[b] = an.overloaded(a, b, alpha)
		}
	}
}

// buildHPRow rebuilds the full interference row of transaction a.
func (an *analyzer) buildHPRow(a int) {
	sl := &an.slabs[a]
	nTasks := len(an.sys.Transactions[a].Tasks)
	n := len(an.sys.Transactions)
	if cap(sl.hp) < nTasks {
		sl.hp = make([][][]int, nTasks)
	} else {
		sl.hp = sl.hp[:nTasks]
	}
	for b := 0; b < nTasks; b++ {
		row := sl.hp[b]
		if cap(row) < n {
			row = make([][]int, n)
		} else {
			row = row[:n]
		}
		for i := 0; i < n; i++ {
			row[i] = an.hpFill(a, b, i, row[i][:0])
		}
		sl.hp[b] = row
	}
}

// interferes is the interference-set membership rule of Eq. (17): a
// task tj can interfere with the task under analysis ta when it runs
// on the same platform at a priority at least ta's. The single
// definition is shared by the hp-row construction and ScenarioCount,
// so the counts always describe what the sweep actually enumerates.
func interferes(ta, tj *model.Task) bool {
	return tj.Platform == ta.Platform && tj.Priority >= ta.Priority
}

// hpFill appends to dst the task indices of transaction i that can
// interfere with τa,b per interferes, excluding the task itself.
func (an *analyzer) hpFill(a, b, i int, dst []int) []int {
	ta := &an.sys.Transactions[a].Tasks[b]
	tasks := an.sys.Transactions[i].Tasks
	for j := range tasks {
		if i == a && j == b {
			continue
		}
		if interferes(ta, &tasks[j]) {
			dst = append(dst, j)
		}
	}
	return dst
}

// hpRow returns the interference row of task (a, b).
func (an *analyzer) hpRow(a, b int) [][]int { return an.slabs[a].hp[b] }

// refreshOffsets recomputes the reduced offsets into the per-slab
// buffers; the holistic loop calls it after rewriting φ and J.
func (an *analyzer) refreshOffsets() {
	for i := range an.sys.Transactions {
		tr := &an.sys.Transactions[i]
		reduced := an.slabs[i].reduced
		for j := range tr.Tasks {
			reduced[j] = modPos(tr.Tasks[j].Offset, tr.Period)
		}
	}
}

// reuseRow shapes buf to n elements, reusing the backing array when
// large enough. Contents are unspecified after the call.
func reuseRow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// reuseMatrix shapes buf to one row per transaction and one column per
// task, reusing the existing backing arrays whenever they are large
// enough. Contents are unspecified after the call.
func reuseMatrix[T any](buf [][]T, sys *model.System) [][]T {
	n := len(sys.Transactions)
	if cap(buf) < n {
		buf = make([][]T, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = reuseRow(buf[i], len(sys.Transactions[i].Tasks))
	}
	return buf
}

// phaseK returns ϕ^k_{i,j} (Eq. 10) with reduced offsets.
func (an *analyzer) phaseK(i, k, j int) float64 {
	tr := &an.sys.Transactions[i]
	reduced := an.slabs[i].reduced
	return phase(reduced[k], tr.Tasks[k].Jitter, reduced[j], tr.Period)
}

// wk returns W^k_i(τa,b, t) per Eq. (11): the worst-case interference
// of transaction Γi on the busy period of τa,b when the busy period is
// initiated by τi,k at its maximal jitter. alpha is the rate of the
// platform of the task under analysis.
func (an *analyzer) wk(i, k int, hpI []int, alpha, t float64) float64 {
	tr := &an.sys.Transactions[i]
	eps := an.opt.eps()
	sum := 0.0
	for _, j := range hpI {
		tj := &tr.Tasks[j]
		phi := an.phaseK(i, k, j)
		jobs := floorE((tj.Jitter+phi)/tr.Period, eps) + ceilE((t-phi)/tr.Period, eps)
		if jobs > 0 {
			sum += jobs * tj.WCET / alpha
		}
	}
	return sum
}

// wstar returns W*_i(τa,b, t) per Eq. (15): the pointwise maximum of
// W^k_i over every candidate critical-instant task k in hp_i(τa,b).
func (an *analyzer) wstar(i int, hpI []int, alpha, t float64) float64 {
	best := 0.0
	for _, k := range hpI {
		if w := an.wk(i, k, hpI, alpha, t); w > best {
			best = w
		}
	}
	return best
}
