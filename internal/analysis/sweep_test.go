package analysis_test

import (
	"math"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/platform"
)

// seedSweepOptions returns the reference configuration of the exact
// analysis: the historical materialise-then-evaluate sweep with every
// acceleration (streaming, pruning, intra-task parallelism) disabled
// and a strictly sequential engine. Every accelerated configuration
// must reproduce its results bit for bit.
func seedSweepOptions() analysis.Options {
	return analysis.Options{
		Exact:                 true,
		Workers:               1,
		MaxIterations:         40,
		DisableExactStreaming: true,
		DisableExactPruning:   true,
		DisableExactParallel:  true,
	}
}

// sweepSystems draws the bit-identity population: single-platform
// systems (every task interferes with every lower-priority one, the
// regime where the scenario product of Eq. 12 actually grows) plus a
// couple of multi-platform chains, spanning schedulable and
// unschedulable draws.
func sweepSystems(t testing.TB) []*model.System {
	t.Helper()
	var out []*model.System
	for k := 0; k < 4; k++ {
		sys, err := gen.System(gen.Config{
			Seed:      int64(9000 + k),
			Platforms: 1, Transactions: 3, ChainLen: 4,
			PeriodMin: 20, PeriodMax: 200,
			Utilization: 0.4 + 0.1*float64(k%2),
			AlphaMin:    0.5, AlphaMax: 0.9,
			RandomPriorities: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sys)
	}
	for k := 0; k < 2; k++ {
		sys, err := gen.System(gen.Config{
			Seed:      int64(9100 + k),
			Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 20, PeriodMax: 300,
			Utilization: 0.45,
			AlphaMin:    0.4, AlphaMax: 0.9,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sys)
	}
	return out
}

// exactHeavySystem builds a single dedicated platform carrying
// `transactions` chains of `chainLen` tasks with per-transaction
// descending priorities: every task of every higher-indexed
// transaction interferes with every task of the lower-priority ones,
// so the lowest-priority tasks face chainLen^transactions exact
// scenario vectors — the worst-case shape of Eq. 12. Utilisation is
// kept low so each scenario's fixed point converges in a few steps and
// the cost is the enumeration itself.
func exactHeavySystem(transactions, chainLen int) *model.System {
	sys := &model.System{Platforms: []platform.Params{platform.Dedicated()}}
	for i := 0; i < transactions; i++ {
		tr := model.Transaction{
			Period:   1000 + 40*float64(i),
			Deadline: 4000,
		}
		for j := 0; j < chainLen; j++ {
			tr.Tasks = append(tr.Tasks, model.Task{
				WCET: 1 + 0.1*float64(j), BCET: 0.5,
				Priority: transactions - i,
			})
		}
		sys.Transactions = append(sys.Transactions, tr)
	}
	return sys
}

// TestExactSweepBitIdentity is the tentpole's metamorphic contract:
// the streamed cursor, the admissible prune and the chunk-parallel
// dispatch — in every on/off combination and for every worker count —
// must reproduce the seed sweep's results bit for bit: all task
// bounds, critical scenarios, iteration counts and verdicts.
func TestExactSweepBitIdentity(t *testing.T) {
	type toggles struct {
		name                       string
		streamed, pruned, parallel bool
	}
	onOff := func(on bool, tag string) string {
		if on {
			return tag
		}
		return "no" + tag
	}
	var combos []toggles
	for s := 0; s < 2; s++ {
		for p := 0; p < 2; p++ {
			for q := 0; q < 2; q++ {
				c := toggles{streamed: s == 1, pruned: p == 1, parallel: q == 1}
				c.name = onOff(c.streamed, "stream") + "/" + onOff(c.pruned, "prune") + "/" + onOff(c.parallel, "par")
				combos = append(combos, c)
			}
		}
	}

	for si, sys := range sweepSystems(t) {
		seed, err := analysis.NewEngine(seedSweepOptions()).Analyze(sys)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range combos {
			for _, workers := range []int{1, 4, 8} {
				opt := seedSweepOptions()
				opt.Workers = workers
				opt.DisableExactStreaming = !c.streamed
				opt.DisableExactPruning = !c.pruned
				opt.DisableExactParallel = !c.parallel
				got, err := analysis.NewEngine(opt).Analyze(sys)
				if err != nil {
					t.Fatalf("system %d %s workers=%d: %v", si, c.name, workers, err)
				}
				if !resultsIdentical(seed, got) {
					t.Fatalf("system %d %s workers=%d: diverged from the seed sweep", si, c.name, workers)
				}
				if !c.pruned && got.ScenariosPruned != 0 {
					t.Fatalf("system %d %s: pruning disabled but ScenariosPruned=%d", si, c.name, got.ScenariosPruned)
				}
			}
		}
	}
}

// TestExactSweepBitIdentityHeavy covers the regime the small random
// systems cannot reach: a sweep large enough (≥ 10^4 scenario vectors
// on its costliest tasks) for the chunk-parallel dispatch to actually
// engage, with borrowed goroutines, a shared cross-chunk prune bound
// and chunk-order reduction all in play. One static pass (the sweep
// itself, no holistic iteration on top) keeps the -race run short.
func TestExactSweepBitIdentityHeavy(t *testing.T) {
	// Costliest tasks face 6^5 = 7776 scenario vectors — past the
	// 2·exactChunkMin threshold, so the sweep actually splits.
	sys := exactHeavySystem(5, 6)
	seedEng := analysis.NewEngine(seedSweepOptions())
	seed, err := seedEng.AnalyzeStatic(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, pruned := range []bool{false, true} {
		for _, workers := range []int{1, 4, 8} {
			opt := analysis.Options{
				Exact: true, Workers: workers,
				DisableExactPruning: !pruned,
			}
			got, err := analysis.NewEngine(opt).AnalyzeStatic(sys)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsIdentical(seed, got) {
				t.Fatalf("pruned=%v workers=%d: heavy sweep diverged from the seed sweep", pruned, workers)
			}
		}
	}
}

// TestExactSweepPrunesPaperExample locks the admissible prune engaging
// on the paper's own Table 3 example: even its small scenario sets
// contain dominated vectors the bound discards.
func TestExactSweepPrunesPaperExample(t *testing.T) {
	sys := experiments.PaperSystem()
	res, err := analysis.NewEngine(analysis.Options{Exact: true, Workers: 1}).Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosPruned <= 0 {
		t.Fatalf("exact analysis of the paper example pruned %d scenarios, want > 0", res.ScenariosPruned)
	}

	// And the accelerated sweep still reproduces Table 3's fixed point.
	if r := res.TransactionResponse(0); math.Abs(r-31) > 1e-6 {
		t.Fatalf("R(Γ1) = %v under the pruned sweep, want 31", r)
	}
	base, err := analysis.NewEngine(seedSweepOptions()).Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(base, res) {
		t.Fatal("pruned sweep diverged from the seed sweep on the paper example")
	}
}

// TestExactSweepPrunedCountStable locks the sequential prune count:
// with one worker the sweep order is the seed order, so the number of
// pruned scenarios is a deterministic function of the system.
func TestExactSweepPrunedCountStable(t *testing.T) {
	sys := exactHeavySystem(4, 4)
	first, err := analysis.NewEngine(analysis.Options{Exact: true, Workers: 1}).Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	second, err := analysis.NewEngine(analysis.Options{Exact: true, Workers: 1}).Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if first.ScenariosPruned != second.ScenariosPruned {
		t.Fatalf("sequential prune count not reproducible: %d vs %d", first.ScenariosPruned, second.ScenariosPruned)
	}
	if first.ScenariosPruned <= 0 {
		t.Fatalf("heavy sweep pruned nothing")
	}
}

// TestScenarioCountSaturates locks the overflow fix: a wide
// single-platform system whose scenario product exceeds an int64 must
// report math.MaxInt, not a wrapped negative count.
func TestScenarioCountSaturates(t *testing.T) {
	// 41 transactions × 3 tasks on one platform: the lowest-priority
	// task's product is 3^40 · 4 ≈ 4.9·10^19 > MaxInt64.
	sys := exactHeavySystem(41, 3)
	a := len(sys.Transactions) - 1
	b := len(sys.Transactions[a].Tasks) - 1
	exact, approx := analysis.ScenarioCount(sys, a, b)
	if exact != math.MaxInt {
		t.Fatalf("ScenarioCount = %d, want saturation at MaxInt", exact)
	}
	if approx <= 0 {
		t.Fatalf("approximate count %d must stay exact (no product involved)", approx)
	}

	// Sanity: a small system still counts exactly. For the last task
	// of the lowest-priority transaction of exactHeavySystem(3, 2),
	// the own axis has 1 interferer + the task itself and each of the
	// two higher-priority transactions contributes its 2 tasks:
	// 2 · 2 · 2 = 8 scenario vectors versus 2 approximate ones.
	small := exactHeavySystem(3, 2)
	exact, approx = analysis.ScenarioCount(small, 2, 1)
	if exact != 8 || approx != 2 {
		t.Fatalf("small system counts exact=%d approx=%d, want 8 and 2", exact, approx)
	}
}

// BenchmarkExactSweep measures the exact sweep on the heavy workload
// (≥ 10^5 scenario vectors on the costliest tasks) in the three
// configurations the tentpole compares: the seed sweep, the streamed
// and pruned sequential sweep, and the fully parallel sweep at 8
// workers. One static pass isolates the sweep itself from holistic
// iteration effects.
func BenchmarkExactSweep(b *testing.B) {
	sys := exactHeavySystem(6, 7) // lowest-priority tasks: 7^6 = 117 649 scenarios
	if ex, _ := analysis.ScenarioCount(sys, 5, 6); ex < 100_000 {
		b.Fatalf("heavy workload too light: %d scenarios on the costliest task", ex)
	}
	run := func(b *testing.B, opt analysis.Options) {
		b.Helper()
		eng := analysis.NewEngine(opt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.AnalyzeStatic(sys); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seed", func(b *testing.B) {
		opt := seedSweepOptions()
		run(b, opt)
	})
	b.Run("streamed-pruned-1w", func(b *testing.B) {
		run(b, analysis.Options{Exact: true, Workers: 1})
	})
	b.Run("full-8w", func(b *testing.B) {
		run(b, analysis.Options{Exact: true, Workers: 8})
	})
}
