package analysis_test

import (
	"math"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/platform"
)

// TestCriticalScalingSingleTask: one task on a dedicated CPU with
// D = T = 10 and C = 2 tolerates exactly k = 5.
func TestCriticalScalingSingleTask(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Period: 10, Deadline: 10, Tasks: []model.Task{{WCET: 2, BCET: 2, Priority: 1}}},
		},
	}
	k, err := analysis.CriticalScaling(sys, analysis.Options{}, 1e-4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-5) > 1e-3 {
		t.Errorf("critical scaling = %v, want 5", k)
	}
}

// TestCriticalScalingPaperExample: the paper example has slack, so
// k > 1; and the system scaled by the found k must verify while
// k + 2·tol must not.
func TestCriticalScalingPaperExample(t *testing.T) {
	sys := experiments.PaperSystem()
	const tol = 1e-3
	k, err := analysis.CriticalScaling(sys, analysis.Options{}, tol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 1 {
		t.Fatalf("paper example should have slack, got k = %v", k)
	}
	check := func(f float64) bool {
		scaled := sys.Clone()
		for i := range scaled.Transactions {
			for j := range scaled.Transactions[i].Tasks {
				scaled.Transactions[i].Tasks[j].WCET *= f
				scaled.Transactions[i].Tasks[j].BCET *= f
			}
		}
		res, err := analysis.Analyze(scaled, analysis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedulable
	}
	if !check(k) {
		t.Errorf("system not schedulable at the returned factor %v", k)
	}
	if check(k + 2*tol) {
		t.Errorf("system still schedulable just above the returned factor %v", k)
	}
}

// TestCriticalScalingOverloaded: a system unschedulable at any factor
// above the probe floor reports a factor below 1.
func TestCriticalScalingOverloaded(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{{Alpha: 0.5, Delta: 1, Beta: 0}},
		Transactions: []model.Transaction{
			{Period: 10, Deadline: 10, Tasks: []model.Task{{WCET: 8, BCET: 8, Priority: 1}}},
		},
	}
	k, err := analysis.CriticalScaling(sys, analysis.Options{}, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Needs Δ + kC/α ≤ 10 → k ≤ 9·0.5/8 = 0.5625.
	if math.Abs(k-0.5625) > 2e-3 {
		t.Errorf("critical scaling = %v, want ≈ 0.5625", k)
	}
}

// TestCriticalScalingCapped: a trivially underloaded system saturates
// at maxFactor.
func TestCriticalScalingCapped(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Period: 1000, Deadline: 1000, Tasks: []model.Task{{WCET: 1, BCET: 1, Priority: 1}}},
		},
	}
	k, err := analysis.CriticalScaling(sys, analysis.Options{}, 1e-3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k != 8 {
		t.Errorf("critical scaling = %v, want the cap 8", k)
	}
}
