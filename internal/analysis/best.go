package analysis

import (
	"math"

	"hsched/internal/model"
)

// bestBounds computes, for every task τi,j, a lower bound on its
// best-case start time (= best-case completion of its predecessor,
// the paper's Rbest_{i,j−1} and the offset φi,j of Eq. 18) and on its
// own best-case completion, both measured from the transaction
// activation.
//
// The simple bound of Section 3.2 charges every task its best-case
// service time on an abstract platform, max(0, Cbest/α − β): the
// burstiness β of the platform can only shorten, never lengthen, the
// best case. This is the bound the paper's example uses (it yields
// exactly the φmin column of Table 1).
//
// With tight=true, consecutive tasks mapped to the same platform are
// grouped into runs and the burstiness credit β is granted once per
// run instead of once per task: within one uninterrupted visit the
// platform burst can only be claimed once, so a run needing c total
// cycles takes at least max(0, c/α − β). The refined bound is never
// below the simple one and remains a valid lower bound.
func bestBounds(sys *model.System, tight bool) (starts, completions [][]float64) {
	starts = reuseMatrix[float64](nil, sys)
	completions = reuseMatrix[float64](nil, sys)
	for i := range sys.Transactions {
		bestBoundsTx(sys, i, tight, starts[i], completions[i])
	}
	return starts, completions
}

// bestBoundsTx computes the bounds of one transaction into
// caller-provided rows of the right length. The bounds of transaction
// i depend only on its own tasks (BCETs, platform mapping, the first
// task's external release offset) and the parameters of the platforms
// those tasks visit — never on other transactions — which is what lets
// the engine keep them in per-transaction slabs and the delta path
// reuse them for unchanged transactions.
func bestBoundsTx(sys *model.System, i int, tight bool, starts, completions []float64) {
	tasks := sys.Transactions[i].Tasks
	// The external release offset of the first task shifts the whole
	// chain; all bounds are measured from the transaction activation.
	acc := tasks[0].Offset // best-case completion so far
	runStart := acc        // best-case start of the current same-platform run
	runDemand := 0.0
	runPlatform := -1
	for j := range tasks {
		t := &tasks[j]
		p := sys.Platforms[t.Platform]
		if !tight || t.Platform != runPlatform {
			runPlatform = t.Platform
			runStart = acc
			runDemand = 0
		}
		starts[j] = acc
		runDemand += t.BCET
		// The paper's best-case service term: max(0, Cbest/α − β),
		// with β granted per task (simple) or per run (tight).
		done := runStart + math.Max(0, runDemand/p.Alpha-p.Beta)
		if !tight {
			done = acc + math.Max(0, t.BCET/p.Alpha-p.Beta)
		}
		if done < acc {
			done = acc
		}
		acc = done
		completions[j] = acc
	}
}
