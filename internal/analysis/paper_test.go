package analysis_test

import (
	"math"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
)

const tol = 1e-6

func approxEq(a, b float64) bool { return math.Abs(a-b) <= tol }

// TestTable1BestStarts locks the φmin column of Table 1: the derived
// best-case start times of the tasks of Γ1 are 0, 3, 4 and 5.
func TestTable1BestStarts(t *testing.T) {
	sys := experiments.PaperSystem()
	starts, _ := analysis.BestBounds(sys, false)
	want := []float64{0, 3, 4, 5}
	for j, w := range want {
		if !approxEq(starts[0][j], w) {
			t.Errorf("φmin of τ1,%d = %v, want %v", j+1, starts[0][j], w)
		}
	}
	for i := 1; i <= 3; i++ {
		if !approxEq(starts[i][0], 0) {
			t.Errorf("φmin of τ%d,1 = %v, want 0", i+1, starts[i][0])
		}
	}
}

// iterationCell is one (J, R) entry of Table 3.
type iterationCell struct{ j, r float64 }

// TestTable3HolisticIteration locks the holistic iteration trace of
// transaction Γ1 against Table 3 of the paper.
//
// Reproduction note (also recorded in EXPERIMENTS.md): every jitter
// column and every response-time cell up to iteration 2 matches the
// paper exactly. For τ1,4 at iterations 3-4 the paper prints R = 39,
// but the paper's own equations yield R = 31: at J1,4 = 19 no task on
// Π3 can interfere with τ1,4 (it has the highest priority there), so
// Eq. 16 gives w = Δ + C/α = 7 and R = φ + J + w = 5 + 19 + 7 = 31.
// 31 is also the semantically largest possible bound (τ1,4 starts no
// later than R1,3 = 24 and needs at most Δ + C/α = 7). The
// schedulability verdict (R ≤ D = 50) is unchanged.
func TestTable3HolisticIteration(t *testing.T) {
	sys := experiments.PaperSystem()

	var trace [][]iterationCell // trace[iter][j]
	opt := analysis.Options{
		Recorder: func(iter int, snap *analysis.Result) {
			row := make([]iterationCell, len(snap.Tasks[0]))
			for j, tr := range snap.Tasks[0] {
				row[j] = iterationCell{j: tr.Jitter, r: tr.Worst}
			}
			trace = append(trace, row)
		},
	}
	res, err := analysis.Analyze(sys, opt)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !res.Converged {
		t.Fatalf("holistic iteration did not converge in %d rounds", res.Iterations)
	}
	if !res.Schedulable {
		t.Errorf("system should be schedulable (paper: R1,4 = 39 ≤ 50)")
	}

	want := [][]iterationCell{
		{{0, 12}, {0, 9}, {0, 10}, {0, 12}},    // iteration 0
		{{0, 12}, {9, 18}, {5, 15}, {5, 17}},   // iteration 1
		{{0, 12}, {9, 18}, {14, 24}, {10, 22}}, // iteration 2
		{{0, 12}, {9, 18}, {14, 24}, {19, 31}}, // iteration 3 (paper prints R=39; see note)
		{{0, 12}, {9, 18}, {14, 24}, {19, 31}}, // iteration 4 (fixed point)
	}
	if len(trace) != len(want) {
		t.Fatalf("holistic executed %d iterations, want %d", len(trace), len(want))
	}
	for it, row := range want {
		for j, cell := range row {
			got := trace[it][j]
			if !approxEq(got.j, cell.j) {
				t.Errorf("iteration %d: J1,%d = %v, want %v", it, j+1, got.j, cell.j)
			}
			if !approxEq(got.r, cell.r) {
				t.Errorf("iteration %d: R1,%d = %v, want %v", it, j+1, got.r, cell.r)
			}
		}
	}

	// End-to-end responses of the single-task transactions.
	if r := res.TransactionResponse(0); !approxEq(r, 31) {
		t.Errorf("R(Γ1) = %v, want 31", r)
	}
	for i, tr := range res.System.Transactions[1:] {
		if r := res.TransactionResponse(i + 1); r > tr.Deadline+tol {
			t.Errorf("R(%s) = %v exceeds deadline %v", tr.Name, r, tr.Deadline)
		}
	}
}

// TestPaperIteration0ByHand locks the four hand-derived response times
// of iteration 0 (J = 0, φ = φmin) individually via the static
// analysis, pinning each intermediate quantity of Section 3.1:
//
//	τ1,1: interfered by τ1,4 (ϕ = 5 on Π3): w = 2+5+5 = 12, R = 12
//	τ1,2: interfered by τ2,1 on Π1: w = 1+2.5+2.5 = 6, R = 6+3 = 9
//	τ1,3: interfered by τ3,1 on Π2: w = 6, R = 6+4 = 10
//	τ1,4: highest priority on Π3: w = 2+5 = 7, R = 7+5 = 12
func TestPaperIteration0ByHand(t *testing.T) {
	sys := experiments.PaperSystem()
	starts, _ := analysis.BestBounds(sys, false)
	for j := 1; j < 4; j++ {
		sys.Transactions[0].Tasks[j].Offset = starts[0][j]
	}
	res, err := analysis.AnalyzeStatic(sys, analysis.Options{})
	if err != nil {
		t.Fatalf("AnalyzeStatic: %v", err)
	}
	want := []float64{12, 9, 10, 12}
	for j, w := range want {
		if got := res.Tasks[0][j].Worst; !approxEq(got, w) {
			t.Errorf("static R1,%d = %v, want %v", j+1, got, w)
		}
	}
}
