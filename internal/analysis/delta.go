package analysis

import (
	"hsched/internal/model"
)

// The incremental re-analysis path.
//
// Admission-control traffic mutates one transaction at a time: add a
// transaction, drop one, retune one task's WCET, move one platform's
// budget, probe one priority level. A cold holistic analysis
// recomputes every task's response in every round regardless; the
// delta path instead replays the previous analysis wherever the edit
// provably cannot have changed anything.
//
// The soundness argument is structural, not numerical. The holistic
// iteration is a deterministic function of its inputs: round r of task
// (i, j) depends only on (a) the parameters of transaction i, (b) the
// parameters and round-(r−1) activation state (offset, jitter) of the
// tasks in its interference sets (same platform, priority ≥), (c) its
// predecessor's round-(r−1) response (which feeds its jitter), and
// (d) the parameters of the platforms transaction i visits. Two kinds
// of taint propagate along those edges:
//
//   - response-dirty: the task's computed response may differ from the
//     baseline, so it must be recomputed. A changed response feeds
//     exactly one place — the chain successor's jitter (Eq. 18) — so
//     it makes the successor activation-dirty, nothing else. In
//     particular it does NOT change the task's own interference
//     contribution, which reads the task's activation state and static
//     parameters, never its response.
//
//   - activation-dirty: the task's offset or jitter trajectory may
//     differ, so every task whose interference set contains it (same
//     platform, priority ≤ its own, Eq. 17) becomes response-dirty —
//     and the task itself must be recomputed too.
//
// Parameter edits seed the closure: a task with changed WCET/BCET/
// platform (or of an added transaction, or on a platform whose
// (α, Δ, β) moved) is activation-dirty — its contribution terms read
// those parameters directly. A task whose only change is its priority
// is merely response-dirty, plus the tasks in the priority band
// between its old and new level (their interference-set membership of
// the moved task flipped): priorities enter the analysis only through
// the ≥ membership test, so tasks outside the band keep bitwise
// identical interference sums. This band rule is what makes
// priority-assignment searches (package sched) cheap: probing one
// task's level re-analyses a handful of tasks, not the platform.
//
// Every task left clean has, by induction over rounds, inputs bitwise
// identical to the previous analysis — so its recorded round-r result
// IS what a cold analysis of the edited system would compute, and
// copying it is exact, not approximate. Dirty tasks are recomputed for
// real; the convergence test, early-stop decisions and iteration count
// therefore follow the cold trajectory bit for bit.
//
// One ordering caveat: interference terms are summed in transaction
// index order, so the replay additionally requires the unchanged
// transactions to keep their relative order (model.SystemDiff.InOrder)
// — a reordered system could differ from the baseline in the last bits
// of a floating-point sum even with identical operands. In-place
// edits, appends, insertions and removals all preserve relative order;
// only genuine permutations fall back to the cold path. Priority-only
// modified transactions take the band fast path only when matched at
// the same position, for the same reason.

// deltaPlan is the precomputed replay schedule of one AnalyzeFrom
// call. Its slices are engine scratch, reused across calls.
type deltaPlan struct {
	// base is the previous analysis's recorded per-round results,
	// shared with (and only ever read from) the seed Result.
	base [][][]TaskResult

	// oldIdx maps a new-system transaction index to its baseline
	// counterpart — an unchanged transaction's match, or a
	// priority-only modified transaction's positional match (−1 for
	// transactions whose tasks are all dirty, which never consult it).
	oldIdx []int

	// clean and dirty partition the task coordinates of the new
	// system, both in flat task order.
	clean [][2]int
	dirty [][2]int

	// cleanTx[i] reports that every task of transaction i is clean —
	// its history rows can then alias the baseline's (history rows are
	// immutable once recorded), making replayed-round snapshots nearly
	// free.
	cleanTx []bool
}

// deltaScratch is the engine's reusable planning state.
type deltaScratch struct {
	plan        deltaPlan
	replayTx    []bool
	changedPlat []bool
	oldMatched  []bool
	respFlags   []bool // response-dirty, indexed by flat task index
	actFlags    []bool // activation-dirty, same indexing
	respQueue   [][2]int
	actQueue    [][2]int
}

// planDelta decides whether an incremental analysis seeded by prev is
// sound for the bound system under the engine's options, and if so
// computes the replay schedule into the engine's scratch. A nil return
// means "run cold"; AnalyzeFrom treats it as a silent fallback. Called
// after bind, so e.flat and e.rowStart describe the new system.
func (e *Engine) planDelta(prev *Result, sys *model.System) *deltaPlan {
	if prev == nil || prev.System == nil || len(prev.history) == 0 {
		return nil
	}
	// The baseline must have been computed under the same analysis
	// semantics: a different epsilon, scenario mode or best-case bound
	// converges along a different trajectory.
	if e.opt.ReplayKey() != prev.rkey {
		return nil
	}
	old := prev.System
	d := model.Diff(old, sys)
	if d.PlatformCountChanged || !d.InOrder() {
		return nil
	}

	// Split the modified pairs: a transaction that differs from its
	// same-position baseline counterpart only in task priorities keeps
	// its replay rows and seeds the closure per task (the priority-
	// band fast path); every other modification dirties the whole
	// transaction conservatively.
	ds := &e.delta
	nT := len(sys.Transactions)
	ds.plan.oldIdx = reuseRow(ds.plan.oldIdx, nT)
	ds.replayTx = reuseRow(ds.replayTx, nT)
	ds.oldMatched = reuseRow(ds.oldMatched, len(old.Transactions))
	ds.changedPlat = reuseRow(ds.changedPlat, len(sys.Platforms))
	ds.respFlags = reuseRow(ds.respFlags, len(e.flat))
	ds.actFlags = reuseRow(ds.actFlags, len(e.flat))
	for i := range ds.plan.oldIdx {
		ds.plan.oldIdx[i] = -1
		ds.replayTx[i] = false
	}
	clear(ds.oldMatched)
	clear(ds.changedPlat)
	clear(ds.respFlags)
	clear(ds.actFlags)
	for _, m := range d.ChangedPlatforms {
		ds.changedPlat[m] = true
	}
	replayable := 0
	for _, p := range d.Unchanged {
		ds.plan.oldIdx[p[1]] = p[0]
		ds.replayTx[p[1]] = true
		ds.oldMatched[p[0]] = true
		replayable++
	}
	prioPairs := 0
	for _, p := range d.Modified {
		if p[0] == p[1] && model.PriorityOnlyDiff(&old.Transactions[p[0]], &sys.Transactions[p[1]]) {
			ds.plan.oldIdx[p[1]] = p[0]
			ds.replayTx[p[1]] = true
			ds.oldMatched[p[0]] = true
			replayable++
			prioPairs++
		}
	}
	if replayable == 0 {
		return nil
	}
	// The ordering caveat applies to the COMBINED matching: a clean
	// task's interference sums may draw terms from unchanged and
	// priority-only transactions alike, so the two kinds together must
	// preserve relative order — d.InOrder() alone covers only the
	// unchanged pairs among themselves, and a positional priority pair
	// can interleave out of order with fingerprint-matched unchanged
	// pairs when transactions were also added or removed.
	last := -1
	for i := 0; i < nT; i++ {
		if !ds.replayTx[i] {
			continue
		}
		if ds.plan.oldIdx[i] <= last {
			return nil
		}
		last = ds.plan.oldIdx[i]
	}

	// The two-flag closure. markResp: the task must be recomputed, and
	// its changed response makes the chain successor activation-dirty.
	// markAct: additionally, the task's interference contribution
	// changed, so everything it can interfere with must be recomputed.
	respQueue, actQueue := ds.respQueue[:0], ds.actQueue[:0]
	markResp := func(i, j int) {
		k := e.rowStart[i] + j
		if !ds.respFlags[k] {
			ds.respFlags[k] = true
			respQueue = append(respQueue, [2]int{i, j})
		}
	}
	markAct := func(i, j int) {
		k := e.rowStart[i] + j
		if !ds.actFlags[k] {
			ds.actFlags[k] = true
			actQueue = append(actQueue, [2]int{i, j})
		}
		markResp(i, j)
	}

	// Seed. Parameter-changed tasks (non-replayable transactions,
	// changed platforms) are activation-dirty: their contribution
	// terms read the changed values directly.
	for i := range sys.Transactions {
		tasks := sys.Transactions[i].Tasks
		for j := range tasks {
			if !ds.replayTx[i] || ds.changedPlat[tasks[j].Platform] {
				markAct(i, j)
			}
		}
	}
	// Tasks that used to receive interference from a task the edit
	// removed or modified away — the one edge invisible in the new
	// system alone. Priority-only pairs are handled by the band rule
	// below instead (their oldMatched is set).
	for o := range old.Transactions {
		if ds.oldMatched[o] {
			continue
		}
		for _, t := range old.Transactions[o].Tasks {
			markInterferenceTargets(sys, t.Platform, t.Priority, markResp)
		}
	}
	// The priority-band fast path: a moved priority flips the moved
	// task's membership exactly in the interference sets of the tasks
	// whose own priority lies in (min(old, new), max(old, new)] on the
	// same platform — those and the moved task itself are recomputed,
	// everyone else keeps bitwise identical interference sums.
	if prioPairs > 0 {
		for _, p := range d.Modified {
			if p[0] != p[1] || !ds.replayTx[p[1]] {
				continue
			}
			oldTasks := old.Transactions[p[0]].Tasks
			newTasks := sys.Transactions[p[1]].Tasks
			for j := range newTasks {
				pOld, pNew := oldTasks[j].Priority, newTasks[j].Priority
				if pOld == pNew {
					continue
				}
				markResp(p[1], j)
				lo, hi := pOld, pNew
				if lo > hi {
					lo, hi = hi, lo
				}
				m := newTasks[j].Platform
				for a := range sys.Transactions {
					tasks := sys.Transactions[a].Tasks
					for b := range tasks {
						if tasks[b].Platform == m && lo < tasks[b].Priority && tasks[b].Priority <= hi {
							markResp(a, b)
						}
					}
				}
			}
		}
	}

	// Transitive closure: a recomputed response reaches its chain
	// successor's activation (jitter propagation, Eq. 18); a changed
	// activation reaches every task whose interference set contains
	// the task (same platform, lower-or-equal priority, Eq. 17).
	for len(respQueue) > 0 || len(actQueue) > 0 {
		if n := len(actQueue); n > 0 {
			c := actQueue[n-1]
			actQueue = actQueue[:n-1]
			markInterferenceTargets(sys, sys.Transactions[c[0]].Tasks[c[1]].Platform,
				sys.Transactions[c[0]].Tasks[c[1]].Priority, markResp)
			continue
		}
		n := len(respQueue)
		c := respQueue[n-1]
		respQueue = respQueue[:n-1]
		if c[1]+1 < len(sys.Transactions[c[0]].Tasks) {
			markAct(c[0], c[1]+1)
		}
	}
	ds.respQueue, ds.actQueue = respQueue[:0], actQueue[:0]

	ds.plan.base = prev.history
	ds.plan.clean = ds.plan.clean[:0]
	ds.plan.dirty = ds.plan.dirty[:0]
	ds.plan.cleanTx = reuseRow(ds.plan.cleanTx, nT)
	for i := range ds.plan.cleanTx {
		ds.plan.cleanTx[i] = true
	}
	for k, c := range e.flat {
		if ds.respFlags[k] {
			ds.plan.dirty = append(ds.plan.dirty, c)
			ds.plan.cleanTx[c[0]] = false
		} else {
			ds.plan.clean = append(ds.plan.clean, c)
		}
	}
	if len(ds.plan.clean) == 0 {
		// Nothing to replay: the cold path is strictly cheaper than
		// carrying the plan around.
		return nil
	}
	return &ds.plan
}

// markInterferenceTargets marks every task of sys that a task with the
// given platform and priority can interfere with: same platform,
// priority ≤ the interferer's (Eq. 17 membership seen from the
// receiving side).
func markInterferenceTargets(sys *model.System, platform, priority int, mark func(i, j int)) {
	for a := range sys.Transactions {
		tasks := sys.Transactions[a].Tasks
		for b := range tasks {
			if tasks[b].Platform == platform && priority >= tasks[b].Priority {
				mark(a, b)
			}
		}
	}
}
