package analysis

import (
	"hsched/internal/model"
)

// The incremental re-analysis path.
//
// Admission-control traffic mutates one transaction at a time: add a
// transaction, drop one, retune one task's WCET, move one platform's
// budget. A cold holistic analysis recomputes every task's response in
// every round regardless; the delta path instead replays the previous
// analysis wherever the edit provably cannot have changed anything.
//
// The soundness argument is structural, not numerical. The holistic
// iteration is a deterministic function of its inputs: round r of task
// (i, j) depends only on (a) the parameters of transaction i, (b) the
// parameters and round-(r−1) state of the tasks in its interference
// sets (same platform, priority ≥), (c) its predecessor's round-(r−1)
// response (which feeds its jitter), and (d) the parameters of the
// platforms transaction i visits. Mark dirty every task the edit can
// reach through those edges, transitively; every task left clean has,
// by induction over rounds, inputs bitwise identical to the previous
// analysis — so its recorded round-r result IS what a cold analysis of
// the edited system would compute, and copying it is exact, not
// approximate. Dirty tasks are recomputed for real; the convergence
// test, early-stop decisions and iteration count therefore follow the
// cold trajectory bit for bit.
//
// One ordering caveat: interference terms are summed in transaction
// index order, so the replay additionally requires the unchanged
// transactions to keep their relative order (model.SystemDiff.InOrder)
// — a reordered system could differ from the baseline in the last bits
// of a floating-point sum even with identical operands. In-place
// edits, appends, insertions and removals all preserve relative order;
// only genuine permutations fall back to the cold path.

// deltaPlan is the precomputed replay schedule of one AnalyzeFrom
// call. Its slices are engine scratch, reused across calls.
type deltaPlan struct {
	// base is the previous analysis's recorded per-round results,
	// shared with (and only ever read from) the seed Result.
	base [][][]TaskResult

	// oldIdx maps a new-system transaction index to its unchanged
	// counterpart in the baseline (−1 for dirty transactions, which
	// never consult it).
	oldIdx []int

	// clean and dirty partition the task coordinates of the new
	// system, both in flat task order.
	clean [][2]int
	dirty [][2]int

	// cleanTx[i] reports that every task of transaction i is clean —
	// its history rows can then alias the baseline's (history rows are
	// immutable once recorded), making replayed-round snapshots nearly
	// free.
	cleanTx []bool
}

// deltaScratch is the engine's reusable planning state.
type deltaScratch struct {
	plan        deltaPlan
	unchangedTx []bool
	changedPlat []bool
	oldMatched  []bool
	dirtyFlags  []bool // indexed by flat task index (Engine.rowStart)
	queue       [][2]int
}

// planDelta decides whether an incremental analysis seeded by prev is
// sound for the bound system under the engine's options, and if so
// computes the replay schedule into the engine's scratch. A nil return
// means "run cold"; AnalyzeFrom treats it as a silent fallback. Called
// after bind, so e.flat and e.rowStart describe the new system.
func (e *Engine) planDelta(prev *Result, sys *model.System) *deltaPlan {
	if prev == nil || prev.System == nil || len(prev.history) == 0 {
		return nil
	}
	// The baseline must have been computed under the same analysis
	// semantics: a different epsilon, scenario mode or best-case bound
	// converges along a different trajectory.
	if e.opt.ReplayKey() != prev.rkey {
		return nil
	}
	old := prev.System
	d := model.Diff(old, sys)
	if d.PlatformCountChanged || !d.InOrder() || len(d.Unchanged) == 0 {
		return nil
	}

	ds := &e.delta
	nT := len(sys.Transactions)
	ds.plan.oldIdx = reuseRow(ds.plan.oldIdx, nT)
	ds.unchangedTx = reuseRow(ds.unchangedTx, nT)
	ds.oldMatched = reuseRow(ds.oldMatched, len(old.Transactions))
	ds.changedPlat = reuseRow(ds.changedPlat, len(sys.Platforms))
	ds.dirtyFlags = reuseRow(ds.dirtyFlags, len(e.flat))
	for i := range ds.plan.oldIdx {
		ds.plan.oldIdx[i] = -1
		ds.unchangedTx[i] = false
	}
	clear(ds.oldMatched)
	clear(ds.changedPlat)
	clear(ds.dirtyFlags)
	for _, p := range d.Unchanged {
		ds.plan.oldIdx[p[1]] = p[0]
		ds.unchangedTx[p[1]] = true
		ds.oldMatched[p[0]] = true
	}
	for _, m := range d.ChangedPlatforms {
		ds.changedPlat[m] = true
	}

	// Seed the dirty set: every task of a non-unchanged transaction,
	// every task on a changed platform, and — the one edge invisible in
	// the new system alone — every surviving task that used to receive
	// interference from a task the edit removed or modified away.
	queue := ds.queue[:0]
	mark := func(i, j int) {
		k := e.rowStart[i] + j
		if !ds.dirtyFlags[k] {
			ds.dirtyFlags[k] = true
			queue = append(queue, [2]int{i, j})
		}
	}
	for i := range sys.Transactions {
		tasks := sys.Transactions[i].Tasks
		for j := range tasks {
			if !ds.unchangedTx[i] || ds.changedPlat[tasks[j].Platform] {
				mark(i, j)
			}
		}
	}
	for o := range old.Transactions {
		if ds.oldMatched[o] {
			continue
		}
		for _, t := range old.Transactions[o].Tasks {
			markInterferenceTargets(sys, t.Platform, t.Priority, mark)
		}
	}

	// Transitive closure: a dirty task's changed response reaches its
	// chain successor (jitter propagation, Eq. 18) and every task whose
	// interference set contains it (same platform, lower-or-equal
	// priority, Eq. 17).
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		i, j := c[0], c[1]
		tasks := sys.Transactions[i].Tasks
		if j+1 < len(tasks) {
			mark(i, j+1)
		}
		markInterferenceTargets(sys, tasks[j].Platform, tasks[j].Priority, mark)
	}
	ds.queue = queue[:0]

	ds.plan.base = prev.history
	ds.plan.clean = ds.plan.clean[:0]
	ds.plan.dirty = ds.plan.dirty[:0]
	ds.plan.cleanTx = reuseRow(ds.plan.cleanTx, nT)
	for i := range ds.plan.cleanTx {
		ds.plan.cleanTx[i] = true
	}
	for k, c := range e.flat {
		if ds.dirtyFlags[k] {
			ds.plan.dirty = append(ds.plan.dirty, c)
			ds.plan.cleanTx[c[0]] = false
		} else {
			ds.plan.clean = append(ds.plan.clean, c)
		}
	}
	if len(ds.plan.clean) == 0 {
		// Nothing to replay: the cold path is strictly cheaper than
		// carrying the plan around.
		return nil
	}
	return &ds.plan
}

// markInterferenceTargets marks dirty every task of sys that a task
// with the given platform and priority can interfere with: same
// platform, priority ≤ the interferer's (Eq. 17 membership seen from
// the receiving side).
func markInterferenceTargets(sys *model.System, platform, priority int, mark func(i, j int)) {
	for a := range sys.Transactions {
		tasks := sys.Transactions[a].Tasks
		for b := range tasks {
			if tasks[b].Platform == platform && priority >= tasks[b].Priority {
				mark(a, b)
			}
		}
	}
}
