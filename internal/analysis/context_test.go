package analysis_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/gen"
)

// heavyExactConfig generates a single-platform system whose exact
// scenario product is large enough that an uncancelled exact analysis
// runs for many seconds (≈13 s sequentially on the development
// machine) — long enough that a prompt abort is unambiguous.
func heavyExactConfig() gen.Config {
	return gen.Config{
		Seed: 5, Platforms: 1, Transactions: 6, ChainLen: 5,
		PeriodMin: 20, PeriodMax: 200, Utilization: 0.45,
		AlphaMin: 0.5, AlphaMax: 0.9, RandomPriorities: true,
	}
}

func TestAnalyzeContextPreCancelled(t *testing.T) {
	sys, err := gen.System(gen.Config{
		Seed: 1, Platforms: 2, Transactions: 3, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 200, Utilization: 0.4,
		AlphaMin: 0.5, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := analysis.NewEngine(analysis.Options{})
	if _, err := eng.AnalyzeContext(ctx, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeContext with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := eng.AnalyzeStaticContext(ctx, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeStaticContext with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The engine must stay usable after an aborted call.
	res, err := eng.AnalyzeContext(context.Background(), sys)
	if err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
	if res == nil {
		t.Fatal("nil result after recovery")
	}
}

// TestAnalyzeContextAbortsExactAnalysis cancels a multi-second exact
// analysis shortly after it starts and requires it to return a wrapped
// ctx.Err() promptly — the in-scenario polling, not just the
// between-rounds check, is what makes this fast.
func TestAnalyzeContextAbortsExactAnalysis(t *testing.T) {
	sys, err := gen.System(heavyExactConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := analysis.NewEngine(analysis.Options{Exact: true, MaxScenarios: 1 << 28, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())

	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		_, err := eng.AnalyzeContext(ctx, sys)
		done <- outcome{err: err, elapsed: time.Since(start)}
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()

	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", out.err)
		}
		// The uncancelled analysis takes many seconds; 5 s leaves huge
		// headroom for race-instrumented and loaded CI machines while
		// still proving the abort happened mid-analysis.
		if out.elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v, want prompt abort", out.elapsed)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("analysis did not return after cancellation")
	}
}

// TestAnalyzeContextMatchesAnalyze checks the context entry point is
// behaviour-identical to the plain one on an uncancelled context.
func TestAnalyzeContextMatchesAnalyze(t *testing.T) {
	sys, err := gen.System(gen.Config{
		Seed: 9, Platforms: 2, Transactions: 4, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 300, Utilization: 0.5,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := analysis.AnalyzeContext(context.Background(), sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Schedulable != viaCtx.Schedulable || plain.Iterations != viaCtx.Iterations {
		t.Fatalf("verdict mismatch: %+v vs %+v", plain, viaCtx)
	}
	for i := range plain.Tasks {
		for j := range plain.Tasks[i] {
			if plain.Tasks[i][j] != viaCtx.Tasks[i][j] {
				t.Fatalf("task (%d,%d): %+v != %+v", i, j, plain.Tasks[i][j], viaCtx.Tasks[i][j])
			}
		}
	}
}
