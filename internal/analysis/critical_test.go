package analysis_test

import (
	"math"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/platform"
)

// TestCriticalScenarioReporting pins the critical-instant attribution
// on the paper example: τ1,1's worst case arises when its own jittered
// release opens the busy period (initiator index 0, interfered by the
// τ1,4 job already pending), and τ1,4's worst case arises in its own
// critical instant (initiator index 3).
func TestCriticalScenarioReporting(t *testing.T) {
	res, err := analysis.Analyze(experiments.PaperSystem(), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tasks[0][0].CriticalInitiator; got != 0 {
		t.Errorf("τ1,1 critical initiator = %d, want 0 (itself)", got)
	}
	if got := res.Tasks[0][3].CriticalInitiator; got != 3 {
		t.Errorf("τ1,4 critical initiator = %d, want 3 (itself)", got)
	}
	// Single-task transactions can only initiate their own busy
	// period.
	for i := 1; i < 4; i++ {
		if got := res.Tasks[i][0].CriticalInitiator; got != 0 {
			t.Errorf("τ%d,1 critical initiator = %d, want 0", i+1, got)
		}
	}
	// The paper example's worst cases all arise at the first job.
	for i := range res.Tasks {
		for j, tr := range res.Tasks[i] {
			if tr.CriticalJob > 1 {
				t.Errorf("τ%d,%d critical job = %d, want ≤ 1", i+1, j+1, tr.CriticalJob)
			}
		}
	}
}

// TestCriticalScenarioUnbounded: an unbounded task reports initiator
// −1.
func TestCriticalScenarioUnbounded(t *testing.T) {
	sys := experiments.PaperSystem()
	sys.Transactions[3].Tasks[0].WCET = 50 // overload Π3
	res, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range res.Tasks {
		for _, tr := range res.Tasks[i] {
			if math.IsInf(tr.Worst, 1) {
				found = true
				if tr.CriticalInitiator != -1 {
					t.Errorf("unbounded task reports initiator %d, want -1", tr.CriticalInitiator)
				}
			}
		}
	}
	if !found {
		t.Fatalf("expected an unbounded task after overloading Π3")
	}
}

// TestCriticalJobBeyondFirst: with hi (T=10, C=6.5) and lo (T=7, C=2)
// on a dedicated CPU, the level-1 busy period is 19 long and spans
// three lo jobs with responses 8.5, 10 and 5 — the worst case is the
// *second* job (p = 1 in the code's numbering, where job p=0 opens the
// busy period), which Tindell's multi-job examination must find.
func TestCriticalJobBeyondFirst(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "hi", Period: 10, Deadline: 10,
				Tasks: []model.Task{{WCET: 6.5, BCET: 6.5, Priority: 2}}},
			{Name: "lo", Period: 7, Deadline: 10,
				Tasks: []model.Task{{WCET: 2, BCET: 2, Priority: 1}}},
		},
	}
	res, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TransactionResponse(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("R(lo) = %v, want 10 (attained by the second job)", got)
	}
	if got := res.Tasks[1][0].CriticalJob; got != 1 {
		t.Errorf("lo critical job = %d, want 1 (the second job in the busy period)", got)
	}
	if !res.Schedulable {
		t.Errorf("system should be schedulable")
	}
}
