package analysis_test

import (
	"math"
	"math/rand"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
)

// randomSystems draws a deterministic batch of small systems spanning
// schedulable and unschedulable regimes.
func randomSystems(t *testing.T, n int) []*model.System {
	t.Helper()
	var out []*model.System
	for k := 0; k < n; k++ {
		sys, err := gen.System(gen.Config{
			Seed:      int64(1000 + k),
			Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 10, PeriodMax: 200,
			Utilization: 0.3 + 0.25*float64(k%3),
			AlphaMin:    0.4, AlphaMax: 0.9,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sys)
	}
	return out
}

func analyzeOK(t *testing.T, sys *model.System) *analysis.Result {
	t.Helper()
	res, err := analysis.Analyze(sys, analysis.Options{StopAtDeadlineMiss: true, MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetamorphicTimeScaling: multiplying every time quantity (periods,
// deadlines, execution times, offsets, jitters, platform delays and
// burstinesses) by a common factor scales every response time by the
// same factor. Rates α are dimensionless and stay put.
func TestMetamorphicTimeScaling(t *testing.T) {
	const k = 3.7
	for _, sys := range randomSystems(t, 9) {
		base := analyzeOK(t, sys)

		scaled := sys.Clone()
		for m := range scaled.Platforms {
			scaled.Platforms[m].Delta *= k
			scaled.Platforms[m].Beta *= k
		}
		for i := range scaled.Transactions {
			tr := &scaled.Transactions[i]
			tr.Period *= k
			tr.Deadline *= k
			for j := range tr.Tasks {
				tr.Tasks[j].WCET *= k
				tr.Tasks[j].BCET *= k
				tr.Tasks[j].Offset *= k
				tr.Tasks[j].Jitter *= k
				tr.Tasks[j].Blocking *= k
			}
		}
		got := analyzeOK(t, scaled)

		if base.Schedulable != got.Schedulable {
			t.Fatalf("time scaling changed the verdict: %v -> %v", base.Schedulable, got.Schedulable)
		}
		for i := range base.Tasks {
			for j := range base.Tasks[i] {
				b, g := base.Tasks[i][j].Worst, got.Tasks[i][j].Worst
				if math.IsInf(b, 1) && math.IsInf(g, 1) {
					continue
				}
				if math.Abs(g-k*b) > 1e-6*(1+k*b) {
					t.Fatalf("τ%d,%d: scaled R = %v, want %v·%v = %v", i+1, j+1, g, k, b, k*b)
				}
			}
		}
	}
}

// TestMetamorphicTransactionPermutation: the order in which
// transactions are listed is irrelevant.
func TestMetamorphicTransactionPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, sys := range randomSystems(t, 9) {
		base := analyzeOK(t, sys)

		perm := rng.Perm(len(sys.Transactions))
		shuffled := sys.Clone()
		for to, from := range perm {
			shuffled.Transactions[to] = *&sys.Clone().Transactions[from]
		}
		got := analyzeOK(t, shuffled)

		if base.Schedulable != got.Schedulable {
			t.Fatalf("permutation changed the verdict")
		}
		for to, from := range perm {
			for j := range base.Tasks[from] {
				b, g := base.Tasks[from][j].Worst, got.Tasks[to][j].Worst
				if math.IsInf(b, 1) && math.IsInf(g, 1) {
					continue
				}
				if math.Abs(b-g) > 1e-9 {
					t.Fatalf("transaction %d task %d: R %v -> %v after permutation", from, j, b, g)
				}
			}
		}
	}
}

// TestMetamorphicPriorityShift: priorities are ordinal — adding a
// constant to every priority changes nothing.
func TestMetamorphicPriorityShift(t *testing.T) {
	for _, sys := range randomSystems(t, 6) {
		base := analyzeOK(t, sys)
		shifted := sys.Clone()
		for i := range shifted.Transactions {
			for j := range shifted.Transactions[i].Tasks {
				shifted.Transactions[i].Tasks[j].Priority += 1000
			}
		}
		got := analyzeOK(t, shifted)
		for i := range base.Tasks {
			for j := range base.Tasks[i] {
				b, g := base.Tasks[i][j].Worst, got.Tasks[i][j].Worst
				if math.IsInf(b, 1) && math.IsInf(g, 1) {
					continue
				}
				if math.Abs(b-g) > 1e-9 {
					t.Fatalf("τ%d,%d: R %v -> %v after priority shift", i+1, j+1, b, g)
				}
			}
		}
	}
}

// TestMetamorphicDeadlineIrrelevance: deadlines classify, they do not
// shape the computation — growing every deadline leaves response
// times unchanged (only the verdict may flip to schedulable). Needs
// the full iteration (no early stop), since early exit depends on
// deadlines.
func TestMetamorphicDeadlineIrrelevance(t *testing.T) {
	for _, sys := range randomSystems(t, 6) {
		opt := analysis.Options{MaxIterations: 60}
		base, err := analysis.Analyze(sys, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !base.Converged {
			continue // skip near-divergent draws
		}
		relaxed := sys.Clone()
		for i := range relaxed.Transactions {
			relaxed.Transactions[i].Deadline *= 10
		}
		got, err := analysis.Analyze(relaxed, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Tasks {
			for j := range base.Tasks[i] {
				b, g := base.Tasks[i][j].Worst, got.Tasks[i][j].Worst
				if math.IsInf(b, 1) && math.IsInf(g, 1) {
					continue
				}
				if math.Abs(b-g) > 1e-9 {
					t.Fatalf("τ%d,%d: R %v -> %v after deadline relaxation", i+1, j+1, b, g)
				}
			}
		}
	}
}
