// Package analysis implements the schedulability analysis of Section 3
// of Lorente, Lipari & Bini, "A Hierarchical Scheduling Model for
// Component-Based Real-Time Systems" (IPDPS 2006): worst-case response
// times of transactions whose tasks execute on abstract computing
// platforms (α, Δ, β).
//
// The analysis generalises the holistic / offset-based response-time
// analysis of Tindell & Clark and Palencia & González Harbour: all
// execution times are scaled by 1/α of the platform of the task under
// analysis, every busy period additionally pays the platform delay Δ
// once, and only tasks mapped to the same platform interfere (Eq. 17).
//
// Three entry points are provided:
//
//   - AnalyzeStatic — the static-offset analysis of Section 3.1: one
//     pass with the offsets φ and jitters J given in the system.
//     Options.Exact selects the exact analysis (all scenario vectors
//     ν, Eq. 12-14); the default is the approximate analysis of
//     Section 3.1.2 (W* upper bound, Eq. 15-16) whose scenario count
//     is only Na+1.
//   - Analyze — the dynamic-offset holistic iteration of Section 3.2:
//     offsets and jitters of every non-initial task are derived from
//     the predecessor's best/worst response times (Eq. 18) and the
//     static analysis is iterated to a fixed point.
//   - BestStarts/BestResponses — the best-case bounds used by Eq. 18,
//     including the burstiness credit max(0, Cbest/α − β).
//
// All response times are measured from the activation of the
// transaction (not of the task), so the response time of the last task
// of a transaction is directly its end-to-end response time, to be
// compared against the transaction deadline.
package analysis
