// Package analysis implements the schedulability analysis of Section 3
// of Lorente, Lipari & Bini, "A Hierarchical Scheduling Model for
// Component-Based Real-Time Systems" (IPDPS 2006): worst-case response
// times of transactions whose tasks execute on abstract computing
// platforms (α, Δ, β).
//
// The analysis generalises the holistic / offset-based response-time
// analysis of Tindell & Clark and Palencia & González Harbour: all
// execution times are scaled by 1/α of the platform of the task under
// analysis, every busy period additionally pays the platform delay Δ
// once, and only tasks mapped to the same platform interfere (Eq. 17).
//
// # The Engine
//
// All entry points are built on Engine, a reusable analysis engine
// constructed with NewEngine. The engine owns every piece of
// per-analysis scratch state — the working copy of the system, the
// higher-priority interference cache of Eq. (17), reduced-offset and
// best-bound buffers, the per-round result matrices, and a pool of
// per-task scenario buffers — and amortises all of it across calls.
// Consecutive analyses of systems with the same shape (task counts,
// platform mapping, priorities) reuse every cache, which makes the
// hot callers (acceptance-ratio sweeps, the MinimizeBandwidth design
// search, sensitivity probes) allocation-free on the analysis path.
//
// Each round of the holistic fixed point runs as an explicit pipeline:
//
//  1. interference construction — bind the working system, rebuild
//     the hp cache only when the shape changed, refresh the reduced
//     offsets of Eq. (10);
//  2. scenario enumeration — per task, materialise the approximate
//     (Sec. 3.1.2) or exact (Sec. 3.1.1) scenario set into pooled
//     buffers;
//  3. per-task response — the tasks of a round are independent, so
//     their response times (Eq. 13-16) are computed on
//     Options.Workers goroutines via the batch runner and collected
//     in task index order, making the result bit-identical for every
//     worker count;
//  4. jitter propagation — Eq. (18) rewrites every non-initial task's
//     jitter from its predecessor's previous-round response and the
//     loop repeats until the responses reach a fixed point.
//
// One Engine serves one goroutine at a time; callers that are
// themselves parallel run one engine per worker (batch.MapWorkers is
// the ready-made hook) with Options.Workers = 1.
//
// # Entry points
//
//   - Engine.AnalyzeStatic / AnalyzeStatic — the static-offset
//     analysis of Section 3.1: one pass with the offsets φ and
//     jitters J given in the system. Options.Exact selects the exact
//     analysis (all scenario vectors ν, Eq. 12-14); the default is
//     the approximate analysis of Section 3.1.2 (W* upper bound,
//     Eq. 15-16) whose scenario count is only Na+1.
//   - Engine.Analyze / Analyze — the dynamic-offset holistic
//     iteration of Section 3.2: offsets and jitters of every
//     non-initial task are derived from the predecessor's best/worst
//     response times (Eq. 18) and the static analysis is iterated to
//     a fixed point.
//   - BestBounds — the best-case bounds used by Eq. 18, including the
//     burstiness credit max(0, Cbest/α − β).
//   - CriticalScaling — the sensitivity metric: the largest uniform
//     execution-time scaling keeping the system schedulable.
//
// The package-level Analyze/AnalyzeStatic are one-shot wrappers that
// construct a throwaway engine; anything analysing more than one
// system should hold an Engine.
//
// All response times are measured from the activation of the
// transaction (not of the task), so the response time of the last task
// of a transaction is directly its end-to-end response time, to be
// compared against the transaction deadline.
package analysis
