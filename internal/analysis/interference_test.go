package analysis

import (
	"math"
	"testing"

	"hsched/internal/model"
	"hsched/internal/platform"
)

// paperSystem is a local copy of the Table 1 / Table 2 fixture (the
// canonical one lives in internal/experiments, which cannot be
// imported here without a cycle).
func paperSystem() *model.System {
	return &model.System{
		Platforms: []platform.Params{
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.2, Delta: 2, Beta: 1},
		},
		Transactions: []model.Transaction{
			{Name: "Gamma1", Period: 50, Deadline: 50, Tasks: []model.Task{
				{Name: "tau1,1", WCET: 1, BCET: 0.8, Priority: 2, Platform: 2},
				{Name: "tau1,2", WCET: 1, BCET: 0.8, Priority: 1, Platform: 0},
				{Name: "tau1,3", WCET: 1, BCET: 0.8, Priority: 1, Platform: 1},
				{Name: "tau1,4", WCET: 1, BCET: 0.8, Priority: 3, Platform: 2},
			}},
			{Name: "Gamma2", Period: 15, Deadline: 15, Tasks: []model.Task{
				{Name: "tau2,1", WCET: 1, BCET: 0.25, Priority: 3, Platform: 0},
			}},
			{Name: "Gamma3", Period: 15, Deadline: 15, Tasks: []model.Task{
				{Name: "tau3,1", WCET: 1, BCET: 0.25, Priority: 3, Platform: 1},
			}},
			{Name: "Gamma4", Period: 70, Deadline: 70, Tasks: []model.Task{
				{Name: "tau4,1", WCET: 7, BCET: 5, Priority: 1, Platform: 2},
			}},
		},
	}
}

// newPaperAnalyzer prepares the paper example at iteration 0 of the
// holistic loop: offsets at the φmin values, jitters zero.
func newPaperAnalyzer(t *testing.T) *analyzer {
	t.Helper()
	sys := paperSystem()
	starts, _ := bestBounds(sys, false)
	for i := range sys.Transactions {
		for j := 1; j < len(sys.Transactions[i].Tasks); j++ {
			sys.Transactions[i].Tasks[j].Offset = starts[i][j]
		}
	}
	return newAnalyzer(sys, Options{})
}

// TestHPFiltering pins Eq. 17: only same-platform tasks of greater or
// equal priority interfere.
func TestHPFiltering(t *testing.T) {
	an := newPaperAnalyzer(t)
	// τ1,1 (Π3, p=2): within Γ1 only τ1,4 (Π3, p=3); τ4,1 has p=1.
	hp := an.hpRow(0, 0)
	if len(hp[0]) != 1 || hp[0][0] != 3 {
		t.Errorf("hp_1(τ1,1) = %v, want [3]", hp[0])
	}
	if len(hp[3]) != 0 {
		t.Errorf("hp_4(τ1,1) = %v, want empty (priority 1 < 2)", hp[3])
	}
	// τ1,4 (Π3, p=3): nothing interferes.
	for i, set := range an.hpRow(0, 3) {
		if len(set) != 0 {
			t.Errorf("hp_%d(τ1,4) = %v, want empty", i+1, set)
		}
	}
	// τ1,2 (Π1, p=1): τ2,1 (Π1, p=3) interferes; τ1,3 is on Π2.
	hp = an.hpRow(0, 1)
	if len(hp[1]) != 1 || hp[1][0] != 0 {
		t.Errorf("hp_2(τ1,2) = %v, want [0]", hp[1])
	}
	if len(hp[0]) != 0 {
		t.Errorf("hp_1(τ1,2) = %v, want empty (τ1,3 is on Π2)", hp[0])
	}
}

// TestPhaseKPaperValues pins Eq. 10 at iteration 0.
func TestPhaseKPaperValues(t *testing.T) {
	an := newPaperAnalyzer(t)
	cases := []struct {
		i, k, j int
		want    float64
	}{
		{0, 0, 0, 50}, // self, zero jitter
		{0, 0, 3, 5},  // τ1,1 starts, τ1,4 at offset 5
		{0, 3, 0, 45}, // τ1,4 starts, τ1,1 at offset 0
		{1, 0, 0, 15}, // τ2,1 self
	}
	for _, c := range cases {
		if got := an.phaseK(c.i, c.k, c.j); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ϕ^%d_{%d,%d} = %v, want %v", c.k+1, c.i+1, c.j+1, got, c.want)
		}
	}
}

// TestWkPaperValues pins Eq. 11: the interference τ2,1 exerts on τ1,2
// (C/α = 1/0.4 = 2.5) as a function of the busy-period length.
func TestWkPaperValues(t *testing.T) {
	an := newPaperAnalyzer(t)
	hp21 := an.hpRow(0, 1)[1] // tasks of Γ2 interfering with τ1,2
	alpha := 0.4
	cases := []struct{ t, want float64 }{
		{0.5, 2.5},  // one pending job (ϕ = 15: released at t=0)
		{6, 2.5},    // still one
		{15.5, 5},   // second period began
		{30.5, 7.5}, // third
	}
	for _, c := range cases {
		if got := an.wk(1, 0, hp21, alpha, c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("W^1_2(τ1,2, %v) = %v, want %v", c.t, got, c.want)
		}
	}
}

// TestWstarIsMaxOfWk: on a transaction with two interfering tasks, W*
// is the pointwise max over both candidate initiators.
func TestWstarIsMaxOfWk(t *testing.T) {
	sys := paperSystem()
	// Give Γ1 two tasks on Π3 with priority ≥ τ4,1's (p=1): τ1,1 (p=2)
	// and τ1,4 (p=3) both interfere with τ4,1.
	an := newAnalyzer(sys, Options{})
	hp := an.hpRow(3, 0) // interferers of τ4,1
	if len(hp[0]) != 2 {
		t.Fatalf("hp_1(τ4,1) = %v, want two tasks", hp[0])
	}
	alpha := 0.2
	for _, x := range []float64{1, 5, 12, 26, 51} {
		w0 := an.wk(0, hp[0][0], hp[0], alpha, x)
		w1 := an.wk(0, hp[0][1], hp[0], alpha, x)
		star := an.wstar(0, hp[0], alpha, x)
		if got := math.Max(w0, w1); math.Abs(star-got) > 1e-12 {
			t.Errorf("W*(t=%v) = %v, want max(%v, %v)", x, star, w0, w1)
		}
	}
}

// TestExactReproducesTable3: on the paper example the exact analysis
// coincides with the approximate one (every per-transaction candidate
// set has at most one element besides the task under analysis), so it
// must also converge to R(Γ1) = 31.
func TestExactReproducesTable3(t *testing.T) {
	res, err := Analyze(paperSystem(), Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TransactionResponse(0); math.Abs(got-31) > 1e-9 {
		t.Errorf("exact R(Γ1) = %v, want 31", got)
	}
	want := []float64{31, 3.5, 3.5, 52}
	for i, w := range want {
		if got := res.TransactionResponse(i); math.Abs(got-w) > 1e-9 {
			t.Errorf("exact R(Γ%d) = %v, want %v", i+1, got, w)
		}
	}
}
