package analysis

import (
	"math"
	"testing"

	"hsched/internal/model"
	"hsched/internal/platform"
)

// seedHeavySystem mirrors the exactHeavySystem shape of the external
// sweep tests: one dedicated platform, per-transaction descending
// priorities, so the low-priority tasks face chainLen^transactions
// exact scenario vectors and every sweep records a critical-scenario
// seed worth reusing.
func seedHeavySystem(transactions, chainLen int) *model.System {
	sys := &model.System{Platforms: []platform.Params{platform.Dedicated()}}
	for i := 0; i < transactions; i++ {
		tr := model.Transaction{
			Period:   1000 + 40*float64(i),
			Deadline: 4000,
		}
		for j := 0; j < chainLen; j++ {
			tr.Tasks = append(tr.Tasks, model.Task{
				WCET: 1 + 0.1*float64(j), BCET: 0.5,
				Priority: transactions - i,
			})
		}
		sys.Transactions = append(sys.Transactions, tr)
	}
	return sys
}

// sameBits fails unless the two results carry bitwise-identical task
// bounds and the same verdict — the package-internal mirror of the
// external resultsIdentical helper.
func sameBits(t *testing.T, want, got *Result) {
	t.Helper()
	if want.Schedulable != got.Schedulable || want.Converged != got.Converged || want.Iterations != got.Iterations {
		t.Fatalf("verdicts differ: want {sched=%v conv=%v it=%d}, got {sched=%v conv=%v it=%d}",
			want.Schedulable, want.Converged, want.Iterations,
			got.Schedulable, got.Converged, got.Iterations)
	}
	for i := range want.Tasks {
		for j := range want.Tasks[i] {
			w, g := want.Tasks[i][j], got.Tasks[i][j]
			if math.Float64bits(w.Worst) != math.Float64bits(g.Worst) ||
				math.Float64bits(w.Best) != math.Float64bits(g.Best) ||
				math.Float64bits(w.Jitter) != math.Float64bits(g.Jitter) {
				t.Fatalf("task (%d,%d): want %+v, got %+v", i, j, w, g)
			}
		}
	}
}

// TestSweepSeedReusedOnRetuning locks the fast path of the cross-probe
// ladder: after a pure WCET retuning — interference shapes intact —
// AnalyzeFrom must re-evaluate the previous probe's critical scenarios
// as incumbent floors (sweepSeeded), not discard them, and still
// reproduce the cold analysis bit for bit.
func TestSweepSeedReusedOnRetuning(t *testing.T) {
	base := seedHeavySystem(4, 4)
	opt := Options{Exact: true, Workers: 1}
	eng := NewEngine(opt)
	prev, err := eng.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}

	mut := base.Clone()
	mut.Transactions[0].Tasks[0].WCET *= 1.1
	got, err := eng.AnalyzeFrom(prev, mut)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.sweepSeeded.Load(); n <= 0 {
		t.Fatalf("WCET retuning seeded %d sweeps, want > 0", n)
	}
	if n := eng.sweepDiscarded.Load(); n != 0 {
		t.Fatalf("WCET retuning discarded %d seeds; the shapes did not change", n)
	}

	cold := opt
	cold.DisableSweepReuse = true
	want, err := NewEngine(cold).Analyze(mut)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, got)
}

// TestSweepSeedDiscardedOnShapeChange is the staleness regression: when
// the dirty closure touches a transaction's priorities, the scenario
// axes of the sweeps it interferes with change shape, and the previous
// probe's prune-state summary must be discarded (sweepDiscarded) — a
// stale seed believed across a shape change could under-floor or pin a
// candidate that no longer exists. Results must still match a cold run
// bit for bit.
func TestSweepSeedDiscardedOnShapeChange(t *testing.T) {
	base := seedHeavySystem(4, 4)
	opt := Options{Exact: true, Workers: 1}
	eng := NewEngine(opt)
	prev, err := eng.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}

	mut := base.Clone()
	// Invert transaction 1's internal priority order: every candidate
	// set it contributes changes membership.
	tr := &mut.Transactions[1]
	for j := range tr.Tasks {
		tr.Tasks[j].Priority = 10 + j
	}
	got, err := eng.AnalyzeFrom(prev, mut)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.sweepDiscarded.Load(); n <= 0 {
		t.Fatalf("priority reshape discarded %d stale seeds, want > 0", n)
	}

	cold := opt
	cold.DisableSweepReuse = true
	want, err := NewEngine(cold).Analyze(mut)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, got)
}

// TestRoundCopyFastPath: within one fixed-point iteration, a task
// whose own and interfering jitters kept their bitwise values must be
// answered by copying the previous round's TaskResult (roundCopied),
// and the copy must not change any bound.
func TestRoundCopyFastPath(t *testing.T) {
	sys := seedHeavySystem(4, 4)
	opt := Options{Exact: true, Workers: 1}
	eng := NewEngine(opt)
	got, err := eng.Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.roundCopied.Load(); n <= 0 {
		t.Fatalf("converging iteration copied %d rounds, want > 0", n)
	}
	cold := opt
	cold.DisableSweepReuse = true
	coldEng := NewEngine(cold)
	want, err := coldEng.Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if n := coldEng.roundCopied.Load(); n != 0 {
		t.Fatalf("DisableSweepReuse engine copied %d rounds, want 0", n)
	}
	sameBits(t, want, got)
}
