package analysis

import (
	"math"
	"runtime"

	"hsched/internal/model"
)

// Options tunes the analysis. The zero value selects sensible
// defaults: approximate analysis, ε = 1e-9, at most 1000 holistic
// iterations and 10^6 inner fixed-point steps.
type Options struct {
	// Exact selects the exact analysis of Section 3.1.1, which
	// enumerates every scenario vector ν (Eq. 12). Exponential in the
	// number of transactions with interfering tasks; guarded by
	// MaxScenarios.
	Exact bool

	// MaxScenarios bounds the scenario count of the exact analysis
	// for a single task; ErrTooManyScenarios is returned beyond it.
	// Defaults to 1<<20.
	MaxScenarios int

	// Epsilon is the convergence tolerance of all fixed-point
	// iterations and the guard band of floor/ceil evaluations.
	// Defaults to 1e-9.
	Epsilon float64

	// MaxIterations bounds the outer holistic iteration. Defaults to
	// 1000.
	MaxIterations int

	// MaxInner bounds every inner fixed-point iteration (busy-period
	// length and completion times). If exceeded the task's response
	// time is reported as +Inf. Defaults to 10^6.
	MaxInner int

	// TightBestCase refines the best-case bounds with the response
	// times of the preceding analysis round (never below the simple
	// supply-based bound). Off by default: the paper's example uses
	// the simple bound, and Table 3 is reproduced with it.
	TightBestCase bool

	// StopAtDeadlineMiss ends the holistic iteration as soon as any
	// transaction's end-to-end response exceeds its deadline. Sound
	// for the verdict — responses grow monotonically across rounds, so
	// an intermediate miss implies a miss at the fixed point — but the
	// reported response times are then lower bounds of the fixed
	// point, not the fixed point itself. Verdict-only consumers (the
	// design search, sensitivity analysis, acceptance sweeps) enable
	// it for speed; reporting consumers leave it off.
	StopAtDeadlineMiss bool

	// Recorder, when non-nil, is invoked after every holistic
	// iteration with the iteration index (0-based) and a snapshot of
	// the per-task jitters and response times. It powers the
	// reproduction of Table 3. Snapshots are fully detached from the
	// engine and stay valid after the analysis returns.
	//
	// Recorder is a side-effect hook, not an analysis parameter: it
	// never changes the computed bounds, so it is excluded from
	// Options equality and from cache keys (Normalised drops it).
	// Queries carrying a Recorder bypass the service's verdict memo
	// entirely — a cache hit would silence the callbacks.
	Recorder func(iteration int, snapshot *Result)

	// DisableReplayState skips the per-round history recording that
	// makes a Result usable as an Engine.AnalyzeFrom seed. The
	// recording costs one detached copy of every round's TaskResults
	// (bounded, but pure overhead for callers that never re-analyse
	// mutations): tight search loops over unrelated systems and
	// services with the delta path disabled should set it. Like
	// Workers it never changes the computed bounds, so it is excluded
	// from cache keys and replay-compatibility checks.
	DisableReplayState bool

	// Workers bounds the goroutines computing per-task response times
	// within one fixed-point round. 0 selects runtime.GOMAXPROCS(0);
	// 1 runs strictly sequentially, and rounds with only a handful of
	// tasks run sequentially regardless (the fan-out would cost more
	// than the work). Successful results are identical for every
	// worker count: tasks are independent within a round and the
	// engine collects them in index order. (A failing exact analysis
	// reports the same wrapped error, but the task it names may vary
	// with scheduling.) Callers that already run many analyses in
	// parallel (batch sweeps, design searches inside batch.MapWorkers)
	// should set 1 to avoid oversubscription.
	//
	// The same bound covers the nested parallelism inside one task's
	// exact scenario sweep: workers a round leaves idle are lent to
	// the heavy sweeps of the tasks it does compute, so the total
	// goroutine count never exceeds Workers whichever level the work
	// lands on.
	Workers int

	// DisableExactStreaming reverts the exact analysis to the
	// historical sweep that materialises the full scenario list before
	// evaluating it — O(count · axes) peak memory instead of the
	// cursor's O(axes). Results are bit-identical either way; the
	// materialised sweep is also strictly sequential (it is the
	// reference implementation the streamed sweep is tested against).
	// Like Workers, it never changes computed bounds and is excluded
	// from replay keys and cache keys.
	DisableExactStreaming bool

	// DisableExactPruning turns off the admissible scenario prune of
	// the exact sweep: the upper bound obtained by charging every
	// other transaction W* (Eq. 15) instead of its scenario's exact
	// W^k (Eq. 13), computed once per busy-period initiator of the
	// transaction under analysis, normally skips every scenario whose
	// bound cannot strictly beat the running best. The prune only ever
	// discards scenarios that cannot change the outcome, so results
	// are bit-identical with it on or off; Result.ScenariosPruned
	// reports how many scenarios it skipped. Excluded from replay keys
	// and cache keys.
	DisableExactPruning bool

	// DisableExactParallel keeps each task's exact scenario sweep on
	// its own goroutine even when the round has Workers to spare.
	// Sweeps large enough to split are otherwise partitioned into
	// contiguous cursor ranges evaluated on the spare workers and
	// reduced in chunk-index order, so results are bit-identical for
	// every worker count. Requires streaming (the materialised sweep
	// is sequential). Excluded from replay keys and cache keys.
	DisableExactParallel bool

	// DisableSweepReuse turns off the two cross-sweep reuse ladders of
	// the branch-and-bound exact sweep: incumbent seeding (the critical
	// scenario a sweep records is re-evaluated under the next sweep's
	// inputs — next holistic round, or next analysis via
	// Engine.AnalyzeFrom — and pruned against strictly, so near-repeat
	// probes skip almost the whole scenario space) and the
	// unchanged-inputs round fast path (a task whose own and
	// interfering transactions all kept bitwise-identical jitters since
	// the previous round reuses that round's TaskResult outright —
	// recomputation is a pure function of those inputs). Both reuse
	// mechanisms only ever skip work whose outcome is already
	// determined, so results are bit-identical with the toggle on or
	// off; it exists for the metamorphic seeded-vs-cold tests and for
	// A/B benchmarking. Excluded from replay keys and cache keys.
	DisableSweepReuse bool
}

// Normalised returns the options with every defaulted numeric field
// materialised to its effective value (MaxScenarios, Epsilon,
// MaxIterations, MaxInner) and the Recorder hook dropped, so that a
// zero-value Options and an explicitly-spelled-default Options compare
// equal. It is the canonical form the analysis service keys its
// verdict memo with. Workers is preserved verbatim: it only changes
// how a round is scheduled, never its results, and the service
// excludes it from cache keys for that reason (its GOMAXPROCS default
// is also host-dependent, so materialising it would break key
// portability).
func (o Options) Normalised() Options {
	o.MaxScenarios = o.maxScenarios()
	o.Epsilon = o.eps()
	o.MaxIterations = o.maxIter()
	o.MaxInner = o.maxInner()
	o.Recorder = nil
	return o
}

// ReplayKey is the comparable projection of every Options field that
// changes computed bounds (defaults materialised). Two runs with
// equal keys follow identical trajectories on identical systems —
// the precondition for AnalyzeFrom replaying one run's recorded
// rounds inside another. Fields that never change results (Workers,
// Recorder, DisableReplayState and the exact-sweep toggles
// DisableExactStreaming / DisableExactPruning / DisableExactParallel)
// are deliberately absent. This is the
// single enumeration of semantics-affecting options: the analysis
// service's memo keys embed it too, so a future Options field added
// here is automatically respected by both the replay gate and the
// verdict cache.
type ReplayKey struct {
	exact              bool
	maxScenarios       int
	epsilon            float64
	maxIterations      int
	maxInner           int
	tightBestCase      bool
	stopAtDeadlineMiss bool
}

// ReplayKey returns the options' semantic identity; see the type.
func (o Options) ReplayKey() ReplayKey {
	return ReplayKey{
		exact:              o.Exact,
		maxScenarios:       o.maxScenarios(),
		epsilon:            o.eps(),
		maxIterations:      o.maxIter(),
		maxInner:           o.maxInner(),
		tightBestCase:      o.TightBestCase,
		stopAtDeadlineMiss: o.StopAtDeadlineMiss,
	}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) maxScenarios() int {
	if o.MaxScenarios <= 0 {
		return 1 << 20
	}
	return o.MaxScenarios
}

func (o Options) eps() float64 {
	if o.Epsilon <= 0 {
		return 1e-9
	}
	return o.Epsilon
}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 1000
	}
	return o.MaxIterations
}

func (o Options) maxInner() int {
	if o.MaxInner <= 0 {
		return 1_000_000
	}
	return o.MaxInner
}

// TaskResult holds the per-task outcome of an analysis round.
type TaskResult struct {
	// Offset is the (possibly reduced-to-be-derived) activation offset
	// φ used in the final round.
	Offset float64
	// Jitter is the activation jitter J used in the final round.
	Jitter float64
	// Best is the lower bound on the task's response time (best-case
	// completion measured from the transaction activation).
	Best float64
	// Worst is the upper bound R on the task's response time measured
	// from the transaction activation. +Inf if the busy period did not
	// converge (platform overload).
	Worst float64
	// CriticalInitiator is the task index (within the same
	// transaction) whose maximally-jittered release started the
	// worst-case busy period — the scenario c attaining Worst. It is
	// −1 when the response time is unbounded.
	CriticalInitiator int
	// CriticalJob is the job index p of the task under analysis that
	// attained Worst (job p is released in ((p−1)T, pT]; p ≤ 0 marks a
	// jitter-pended job released before the busy period began).
	CriticalJob int
}

// Result is the outcome of an analysis: per-task bounds plus the
// system-level verdict.
type Result struct {
	// System is the analysed copy of the input, with the offsets and
	// jitters of the final iteration filled in.
	System *model.System
	// Tasks mirrors System.Transactions: Tasks[i][j] is the result for
	// τ(i+1),(j+1).
	Tasks [][]TaskResult
	// Iterations is the number of holistic rounds executed (1 for the
	// static analysis).
	Iterations int
	// Converged reports whether the holistic iteration reached a fixed
	// point within Options.MaxIterations.
	Converged bool
	// Schedulable reports whether every transaction's end-to-end
	// response time is finite and within its deadline.
	Schedulable bool

	// Delta is non-nil when the result was produced by the incremental
	// path (Engine.AnalyzeFrom with a usable seed) and describes how
	// much work the replay skipped. The result itself is bit-identical
	// to a cold analysis either way.
	Delta *DeltaInfo

	// ScenariosPruned counts the exact scenario vectors the admissible
	// prune skipped across every task and round of this analysis — the
	// work the branch-and-bound discipline saved. Always 0 for the
	// approximate analysis and under Options.DisableExactPruning. Like
	// Delta it is a work profile, not part of the analysis outcome:
	// the count depends on scheduling when sweeps run chunk-parallel
	// (each chunk prunes against its own running best plus a shared
	// monotone bound), on the replay depth on the delta path
	// (replayed tasks sweep nothing, so they contribute no prunes),
	// and on the engine-resident sweep seeds of earlier analyses —
	// the bounds and verdict are bit-identical regardless.
	ScenariosPruned int64

	// SubtreesPruned counts the whole-subtree cursor jumps among the
	// pruned scenarios: each is one branch-and-bound decision that
	// skipped a contiguous run of scenario vectors (the subtree fixing
	// a failing suffix of axis digits) with a single seek instead of
	// stepping through them. The ratio ScenariosPruned/SubtreesPruned
	// is the average subtree size the bounds refuted. A work profile
	// like ScenariosPruned, with the same caveats.
	SubtreesPruned int64

	// history is the replay state: every holistic round's detached
	// per-task results, recorded up to maxHistoryCells. It is what a
	// later AnalyzeFrom replays for clean tasks. Static analyses and
	// truncated recordings leave it short or empty — the delta path
	// then falls back (wholly or per-round) to computing.
	history [][][]TaskResult

	// sweepNu is the exact sweep's cross-probe prune-state summary:
	// sweepNu[i][j] is the critical scenario vector of τ(i+1),(j+1)'s
	// final sweep (one initiator per scenario axis; empty when the
	// task never recorded one). AnalyzeFrom installs it into the next
	// engine's slabs, where each sweep re-evaluates its entry under
	// the new inputs as the incumbent seed — or discards it when the
	// dirty closure moved the task's interference shape. Recorded only
	// for exact analyses with reuse and replay state enabled; stripped
	// with the history.
	sweepNu [][][]initiator

	// rkey identifies the analysis semantics the result was computed
	// under; a seed is only valid for an analysis with the same key.
	rkey ReplayKey
}

// DeltaInfo reports the work profile of an incremental analysis.
type DeltaInfo struct {
	// CleanTasks and DirtyTasks partition the system's tasks: clean
	// tasks were provably unreachable from the edit and replayed from
	// the baseline, dirty tasks were recomputed every round.
	CleanTasks, DirtyTasks int
	// ReplayedRounds is the number of holistic rounds that copied the
	// clean tasks from the baseline's recorded history (rounds past the
	// baseline's recording recompute everything).
	ReplayedRounds int
	// TaskRoundsSaved is the total number of per-task response-time
	// computations the replay skipped — CleanTasks × ReplayedRounds,
	// the service's RoundsSaved currency.
	TaskRoundsSaved int
}

// HasReplayState reports whether the result carries the per-round
// history an AnalyzeFrom seed needs. Results of dynamic analyses
// normally do; static passes and results trimmed by the history cap do
// not.
func (r *Result) HasReplayState() bool { return len(r.history) > 0 }

// WithoutReplayState returns the result stripped of its replay
// history: a shallow copy sharing every other field (or r itself when
// there is nothing to strip). The analysis service memoises stripped
// results and keeps the full ones only in its bounded seed pool, so
// a large verdict memo does not pin thousands of unreachable
// histories.
func (r *Result) WithoutReplayState() *Result {
	if len(r.history) == 0 && r.sweepNu == nil {
		return r
	}
	c := *r
	c.history = nil
	c.sweepNu = nil
	return &c
}

// TransactionResponse returns the end-to-end worst-case response time
// of transaction i (the response time of its last task).
func (r *Result) TransactionResponse(i int) float64 {
	row := r.Tasks[i]
	return row[len(row)-1].Worst
}

// computeVerdict decides Schedulable from the final round: every
// transaction's end-to-end response must be finite and within its
// deadline, compared with the configured convergence tolerance as the
// guard band (the same ε the fixed points were computed under).
func (r *Result) computeVerdict(eps float64) {
	r.Schedulable = true
	for i := range r.Tasks {
		rt := r.TransactionResponse(i)
		if math.IsInf(rt, 1) || rt > r.System.Transactions[i].Deadline+eps {
			r.Schedulable = false
			return
		}
	}
}
