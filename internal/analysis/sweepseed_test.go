package analysis_test

import (
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
)

// seedMutationChain extends sys into the probe-chain shape the
// session-carried sweep state serves: cumulative one-edit mutations —
// WCET retunings and one priority swap (an interference-shape change,
// the case a stale prune-state summary must survive by being
// discarded, not believed).
func seedMutationChain(sys *model.System) []*model.System {
	chain := []*model.System{sys}
	step := func(mutate func(*model.System)) {
		next := chain[len(chain)-1].Clone()
		mutate(next)
		chain = append(chain, next)
	}
	step(func(s *model.System) { s.Transactions[0].Tasks[0].WCET *= 1.05 })
	step(func(s *model.System) {
		tr := &s.Transactions[len(s.Transactions)-1]
		tr.Tasks[len(tr.Tasks)-1].WCET *= 0.97
	})
	step(func(s *model.System) {
		// Swap two priorities inside one transaction: the scenario
		// axes of every task it interferes with change shape.
		tr := &s.Transactions[1]
		a, b := 0, len(tr.Tasks)-1
		tr.Tasks[a].Priority, tr.Tasks[b].Priority = tr.Tasks[b].Priority, tr.Tasks[a].Priority
	})
	step(func(s *model.System) { s.Transactions[0].Tasks[1].WCET *= 1.08 })
	return chain
}

// TestSweepSeedBitIdentity is the cross-probe metamorphic contract:
// walking a mutation chain through one engine via AnalyzeFrom — each
// exact sweep seeded by the previous probe's critical scenarios and
// each round eligible for the unchanged-inputs copy — must reproduce,
// bit for bit, the chain walked cold with the reuse disabled, for
// every sweep-toggle combination and worker count.
func TestSweepSeedBitIdentity(t *testing.T) {
	gensys, err := gen.System(gen.Config{
		Seed: 9300, Platforms: 1, Transactions: 3, ChainLen: 4,
		PeriodMin: 20, PeriodMax: 200, Utilization: 0.5,
		AlphaMin: 0.5, AlphaMax: 0.9, RandomPriorities: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	systems := []*model.System{gensys, exactHeavySystem(4, 4)}

	for si, sys := range systems {
		chain := seedMutationChain(sys)
		for s := 0; s < 2; s++ {
			for p := 0; p < 2; p++ {
				for q := 0; q < 2; q++ {
					for _, workers := range []int{1, 4, 8} {
						opt := analysis.Options{
							Exact: true, Workers: workers, MaxIterations: 40,
							DisableExactStreaming: s == 0,
							DisableExactPruning:   p == 0,
							DisableExactParallel:  q == 0,
						}
						cold := opt
						cold.DisableSweepReuse = true

						eng := analysis.NewEngine(opt)
						var prev *analysis.Result
						for ci, cs := range chain {
							want, err := analysis.NewEngine(cold).Analyze(cs)
							if err != nil {
								t.Fatal(err)
							}
							var got *analysis.Result
							if prev == nil {
								got, err = eng.Analyze(cs)
							} else {
								got, err = eng.AnalyzeFrom(prev, cs)
							}
							if err != nil {
								t.Fatal(err)
							}
							if !resultsIdentical(want, got) {
								t.Fatalf("system %d chain %d s=%d p=%d q=%d workers=%d: seeded sweep diverged from cold",
									si, ci, s, p, q, workers)
							}
							prev = got
						}
					}
				}
			}
		}
	}
}
