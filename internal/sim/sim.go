// Package sim is a fixed-step simulator of hierarchical scheduling
// systems: transactions releasing periodically, task chains migrating
// across abstract computing platforms, each platform backed by a
// global-scheduler server (package server) and scheduling its ready
// tasks by local fixed priority.
//
// The simulator is the experimental substrate of the reproduction: the
// paper's analysis produces upper bounds, and the simulator produces
// achievable response times. Soundness experiments check that no
// simulated response ever exceeds the analysed bound when the servers
// realise the analysed platform parameters.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hsched/internal/model"
	"hsched/internal/server"
)

// ExecMode selects how task execution times are drawn.
type ExecMode int

const (
	// WorstCase runs every task for its WCET.
	WorstCase ExecMode = iota
	// BestCase runs every task for its BCET.
	BestCase
	// RandomCase draws uniformly from [BCET, WCET].
	RandomCase
)

// Policy selects the local scheduling policy of a platform.
type Policy int

const (
	// FixedPriority schedules by task priority (greater wins), the
	// paper's baseline local scheduler.
	FixedPriority Policy = iota
	// EDF schedules by earliest absolute deadline (transaction release
	// plus transaction deadline), the extension the paper sketches in
	// Section 2.1.
	EDF
)

// Config tunes a simulation run.
type Config struct {
	// Horizon is the simulated time; 0 selects twice the system
	// hyperperiod.
	Horizon float64
	// Step is the simulation step; 0 selects 0.01.
	Step float64
	// Mode selects the execution-time draw.
	Mode ExecMode
	// Seed seeds the random generator (release jitter and RandomCase).
	Seed int64
	// SampleJitter, when true, draws the release jitter of every
	// transaction's first task uniformly from [0, J]; otherwise
	// releases are punctual at the offset.
	SampleJitter bool
	// Phases optionally delays the first release of each transaction
	// (one entry per transaction), exercising different alignments.
	Phases []float64
	// Policies optionally selects a local policy per platform (one
	// entry per platform); nil selects fixed priority everywhere.
	Policies []Policy
	// TraceLimit, when positive, records up to that many timeline
	// events (releases, starts, completions) in Result.Trace.
	TraceLimit int
	// RecordRuns, when true, records per-platform execution intervals
	// in Result.Runs (consumable by Gantt). Memory grows with the
	// number of preemptions over the horizon.
	RecordRuns bool
	// KeepResponses, when true, retains every observed response per
	// task (enabling TaskStats.Percentile). Memory grows with the job
	// count over the horizon.
	KeepResponses bool
}

// TaskStats accumulates per-task observations.
type TaskStats struct {
	// Activations and Completions count job instances.
	Activations, Completions int
	// MaxResponse is the largest observed completion − transaction
	// release.
	MaxResponse float64
	// SumResponse supports mean computation.
	SumResponse float64
	// Responses holds every observed response when
	// Config.KeepResponses is set, enabling Percentile.
	Responses []float64
}

// Mean returns the average observed response, or 0 with no completions.
func (s TaskStats) Mean() float64 {
	if s.Completions == 0 {
		return 0
	}
	return s.SumResponse / float64(s.Completions)
}

// Percentile returns the q-th percentile (q in [0, 100]) of the
// observed responses, or 0 when Config.KeepResponses was off or no
// job completed. The nearest-rank definition is used.
func (s TaskStats) Percentile(q float64) float64 {
	if len(s.Responses) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Responses...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// PlatformStats accumulates per-platform supply accounting.
type PlatformStats struct {
	// Supplied is the total time the global scheduler granted the
	// platform the processor.
	Supplied float64
	// Busy is the portion of Supplied during which a ready task
	// actually executed; Supplied − Busy is budget wasted on an idle
	// platform (a polling server supplies regardless of demand).
	Busy float64
}

// Result is the outcome of a simulation run.
type Result struct {
	// Tasks mirrors the system's transactions.
	Tasks [][]TaskStats
	// Misses counts end-to-end deadline misses per transaction.
	Misses []int
	// Platforms mirrors the system's platforms with supply accounting.
	Platforms []PlatformStats
	// Horizon is the simulated time.
	Horizon float64
	// Unfinished counts task instances still pending at the horizon.
	Unfinished int
	// Trace holds up to Config.TraceLimit timeline events when tracing
	// was enabled.
	Trace []Event
	// Runs holds per-platform execution intervals when
	// Config.RecordRuns was set.
	Runs [][]Span
}

// MaxEndToEnd returns the largest observed end-to-end response of
// transaction i.
func (r *Result) MaxEndToEnd(i int) float64 {
	row := r.Tasks[i]
	return row[len(row)-1].MaxResponse
}

type event struct {
	time float64
	seq  int64
	job  *job
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type job struct {
	tr, idx   int     // transaction and task index
	release   float64 // transaction release time
	remaining float64
	seq       int64 // creation order (event-queue tie-break)
	arrival   int64 // ready-queue arrival order (FIFO tie-break)
	started   bool
}

// Run simulates the system against one server per platform. The
// servers must correspond index-wise to sys.Platforms; their stated
// Params need not match the system's (soundness experiments exploit
// exactly that freedom), but the analysed bounds are only guaranteed
// to dominate when each server's supply satisfies the analysed
// platform model.
func Run(sys *model.System, servers []server.Server, cfg Config) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if len(servers) != len(sys.Platforms) {
		return nil, fmt.Errorf("sim: %d servers for %d platforms", len(servers), len(sys.Platforms))
	}
	if cfg.Phases != nil && len(cfg.Phases) != len(sys.Transactions) {
		return nil, fmt.Errorf("sim: %d phases for %d transactions", len(cfg.Phases), len(sys.Transactions))
	}
	if cfg.Policies != nil && len(cfg.Policies) != len(sys.Platforms) {
		return nil, fmt.Errorf("sim: %d policies for %d platforms", len(cfg.Policies), len(sys.Platforms))
	}
	dt := cfg.Step
	if dt <= 0 {
		dt = 0.01
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 2 * sys.Hyperperiod()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &Result{
		Tasks:     make([][]TaskStats, len(sys.Transactions)),
		Misses:    make([]int, len(sys.Transactions)),
		Platforms: make([]PlatformStats, len(sys.Platforms)),
		Horizon:   horizon,
	}
	if cfg.RecordRuns {
		res.Runs = make([][]Span, len(sys.Platforms))
	}
	for i := range sys.Transactions {
		res.Tasks[i] = make([]TaskStats, len(sys.Transactions[i].Tasks))
	}

	var seq int64
	nextSeq := func() int64 { seq++; return seq }

	trace := func(t float64, kind EventKind, j *job) {
		if cfg.TraceLimit <= 0 || len(res.Trace) >= cfg.TraceLimit {
			return
		}
		res.Trace = append(res.Trace, Event{
			Time: t, Kind: kind,
			Transaction: j.tr, Task: j.idx,
			Platform: sys.Transactions[j.tr].Tasks[j.idx].Platform,
			Release:  j.release,
		})
	}

	// Activation events feed the per-platform ready queues.
	events := &eventQueue{}
	ready := make([][]*job, len(sys.Platforms))
	pending := 0

	activate := func(t float64, j *job) {
		heap.Push(events, &event{time: t, seq: nextSeq(), job: j})
	}

	exec := func(task *model.Task) float64 {
		switch cfg.Mode {
		case BestCase:
			return task.BCET
		case RandomCase:
			return task.BCET + rng.Float64()*(task.WCET-task.BCET)
		default:
			return task.WCET
		}
	}

	// Schedule every transaction release within the horizon up front.
	for i := range sys.Transactions {
		tr := &sys.Transactions[i]
		first := tr.Tasks[0]
		phase := 0.0
		if cfg.Phases != nil {
			phase = cfg.Phases[i]
		}
		for rel := phase; rel < horizon; rel += tr.Period {
			act := rel + first.Offset
			if cfg.SampleJitter && first.Jitter > 0 {
				act += rng.Float64() * first.Jitter
			}
			j := &job{tr: i, idx: 0, release: rel, remaining: exec(&tr.Tasks[0]), seq: nextSeq()}
			activate(act, j)
			res.Tasks[i][0].Activations++
			pending++
		}
	}

	complete := func(j *job, now float64) {
		trace(now, EventComplete, j)
		st := &res.Tasks[j.tr][j.idx]
		st.Completions++
		resp := now - j.release
		st.SumResponse += resp
		if cfg.KeepResponses {
			st.Responses = append(st.Responses, resp)
		}
		if resp > st.MaxResponse {
			st.MaxResponse = resp
		}
		tr := &sys.Transactions[j.tr]
		pending--
		if j.idx+1 < len(tr.Tasks) {
			nt := &tr.Tasks[j.idx+1]
			nj := &job{tr: j.tr, idx: j.idx + 1, release: j.release, remaining: exec(nt), seq: nextSeq()}
			activate(now, nj)
			res.Tasks[j.tr][j.idx+1].Activations++
			pending++
		} else if resp > tr.Deadline+1e-9 {
			res.Misses[j.tr]++
		}
	}

	const tiny = 1e-9
	for t := 0.0; t < horizon && (events.Len() > 0 || pending > 0); t += dt {
		for events.Len() > 0 && (*events)[0].time <= t+tiny {
			e := heap.Pop(events).(*event)
			m := sys.Transactions[e.job.tr].Tasks[e.job.idx].Platform
			e.job.arrival = nextSeq()
			ready[m] = append(ready[m], e.job)
			trace(e.time, EventRelease, e.job)
		}
		for m := range servers {
			if !servers[m].Supplies(t, dt) {
				continue
			}
			res.Platforms[m].Supplied += dt
			if len(ready[m]) == 0 {
				continue
			}
			res.Platforms[m].Busy += dt
			policy := FixedPriority
			if cfg.Policies != nil {
				policy = cfg.Policies[m]
			}
			best := 0
			for k := 1; k < len(ready[m]); k++ {
				if beats(sys, policy, ready[m][k], ready[m][best]) {
					best = k
				}
			}
			j := ready[m][best]
			if !j.started {
				j.started = true
				trace(t, EventStart, j)
			}
			if cfg.RecordRuns {
				rs := res.Runs[m]
				if n := len(rs); n > 0 && rs[n-1].Transaction == j.tr && rs[n-1].Task == j.idx &&
					t-rs[n-1].End < dt/2 {
					rs[n-1].End = t + dt
				} else {
					res.Runs[m] = append(rs, Span{Start: t, End: t + dt, Transaction: j.tr, Task: j.idx})
				}
			}
			j.remaining -= dt
			if j.remaining <= tiny {
				ready[m] = append(ready[m][:best], ready[m][best+1:]...)
				complete(j, t+dt)
			}
		}
	}
	res.Unfinished = pending
	return res, nil
}

// beats reports whether job a should be dispatched before job b under
// the platform's local policy. Ties fall back to FIFO (activation
// order).
func beats(sys *model.System, policy Policy, a, b *job) bool {
	switch policy {
	case EDF:
		da := a.release + sys.Transactions[a.tr].Deadline
		db := b.release + sys.Transactions[b.tr].Deadline
		if da != db {
			return da < db
		}
	default:
		pa := sys.Transactions[a.tr].Tasks[a.idx].Priority
		pb := sys.Transactions[b.tr].Tasks[b.idx].Priority
		if pa != pb {
			return pa > pb
		}
	}
	return a.arrival < b.arrival
}
