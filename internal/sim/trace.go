package sim

import (
	"fmt"
	"strings"

	"hsched/internal/model"
)

// EventKind discriminates trace events.
type EventKind int

const (
	// EventRelease marks a task instance becoming ready.
	EventRelease EventKind = iota
	// EventStart marks the first processor slice of an instance.
	EventStart
	// EventComplete marks an instance finishing.
	EventComplete
)

// String returns "release", "start" or "complete".
func (k EventKind) String() string {
	switch k {
	case EventRelease:
		return "release"
	case EventStart:
		return "start"
	case EventComplete:
		return "complete"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timeline entry of a traced simulation.
type Event struct {
	// Time is the simulation time of the event.
	Time float64
	// Kind is the event type.
	Kind EventKind
	// Transaction and Task locate the instance (0-based).
	Transaction, Task int
	// Platform is the platform of the task.
	Platform int
	// Release is the owning transaction's release time.
	Release float64
}

// FormatTrace renders a trace as one line per event, for debugging and
// teaching material.
func FormatTrace(sys *model.System, events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%10.3f  %-8s %-20s Π%d (released %.3f)\n",
			e.Time, e.Kind, sys.TaskName(e.Transaction, e.Task), e.Platform+1, e.Release)
	}
	return b.String()
}
