package sim_test

import (
	"math"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/server"
	"hsched/internal/sim"
)

// paperServers builds one polling server per paper platform, realising
// exactly the analysed (α, Δ, β) triple, with configurable phases.
func paperServers(t *testing.T, phases [3]float64) []server.Server {
	t.Helper()
	ps := experiments.PaperPlatforms()
	out := make([]server.Server, len(ps))
	for m, p := range ps {
		srv, err := server.ForPlatform(p, phases[m])
		if err != nil {
			t.Fatalf("ForPlatform(%v): %v", p, err)
		}
		out[m] = srv
	}
	return out
}

// TestPaperSimulationWithinAnalyzedBounds simulates the paper example
// on polling servers realising the analysed platforms, across several
// server alignments and execution-time modes, and checks that every
// observed end-to-end response stays within the analysed bound and the
// deadline.
func TestPaperSimulationWithinAnalyzedBounds(t *testing.T) {
	sys := experiments.PaperSystem()
	ana, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !ana.Schedulable {
		t.Fatalf("paper system should be schedulable")
	}

	for _, phases := range [][3]float64{
		{0, 0, 0},
		{0.3, 0.1, 0.7},
		{0.8, 0.5, 1.9},
	} {
		for _, mode := range []sim.ExecMode{sim.WorstCase, sim.RandomCase} {
			res, err := sim.Run(sys, paperServers(t, phases), sim.Config{
				Horizon: 4200, Step: 0.005, Mode: mode, Seed: 42,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for i := range sys.Transactions {
				if res.Misses[i] != 0 {
					t.Errorf("phases %v mode %d: Γ%d missed %d deadlines", phases, mode, i+1, res.Misses[i])
				}
				got, bound := res.MaxEndToEnd(i), ana.TransactionResponse(i)
				// Allow a small quantisation slack: execution advances
				// in steps of 0.005.
				if got > bound+0.05 {
					t.Errorf("phases %v mode %d: Γ%d simulated %v exceeds analysed bound %v",
						phases, mode, i+1, got, bound)
				}
			}
			if res.Unfinished != 0 && mode == sim.WorstCase {
				// With worst-case demand the system is schedulable, so
				// only jobs released near the horizon may be pending.
				if res.Unfinished > 8 {
					t.Errorf("phases %v: %d unfinished jobs", phases, res.Unfinished)
				}
			}
		}
	}
}

// TestSimulatedLowerBoundIsUseful checks the simulation is not
// trivially loose: the best observed Γ1 response must be at least the
// sum of best-case execution demands across its chain, and the worst
// observed response under worst-case mode must be at least the
// zero-interference service time.
func TestSimulatedLowerBoundIsUseful(t *testing.T) {
	sys := experiments.PaperSystem()
	res, err := sim.Run(sys, paperServers(t, [3]float64{0, 0, 0}), sim.Config{
		Horizon: 2100, Step: 0.005, Mode: sim.WorstCase,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Γ1 needs 2 cycles on Π3 (α=0.2) and 1 cycle each on Π1/Π2
	// (α=0.4): pure service is 2/0.2 + 2/0.4 = 15 even with ideal
	// supply alignment and no interference.
	if got := res.MaxEndToEnd(0); got < 15 {
		t.Errorf("max end-to-end of Γ1 = %v, expected at least the pure service demand 15", got)
	}
	if res.Tasks[0][3].Completions == 0 {
		t.Fatalf("Γ1 never completed")
	}
}

// TestDedicatedProcessorDegeneracy (experiment A4): with all tasks on
// a dedicated processor (α, Δ, β) = (1, 0, 0), the analysis reduces to
// the classical holistic analysis; for a simple independent task set
// the response times must match the textbook fixed-priority values,
// and the simulation must achieve them exactly.
func TestDedicatedProcessorDegeneracy(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "hi", Period: 4, Deadline: 4,
				Tasks: []model.Task{{Name: "hi", WCET: 1, BCET: 1, Priority: 3}}},
			{Name: "mid", Period: 6, Deadline: 6,
				Tasks: []model.Task{{Name: "mid", WCET: 2, BCET: 2, Priority: 2}}},
			{Name: "lo", Period: 12, Deadline: 12,
				Tasks: []model.Task{{Name: "lo", WCET: 3, BCET: 3, Priority: 1}}},
		},
	}
	ana, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Classical response times: R_hi = 1; R_mid = 2+1 = 3 (one hi
	// preemption); R_lo: w = 3+2·1+1·2 → ... fixed point at w = 8
	// (hi at 0,4 and mid at 0,6: 3+2+2+1... w=8: ⌈8/4⌉=2 hi, ⌈8/6⌉=2
	// mid → 3+2+4 = 9 → w=9: ⌈9/4⌉=3 → 3+3+4 = 10 → w=10: ⌈10/4⌉=3,
	// ⌈10/6⌉=2 → 10. R_lo = 10.
	want := []float64{1, 3, 10}
	for i, w := range want {
		if got := ana.TransactionResponse(i); math.Abs(got-w) > 1e-9 {
			t.Errorf("R(%s) = %v, want %v", sys.Transactions[i].Name, got, w)
		}
	}
	res, err := sim.Run(sys, []server.Server{server.Dedicated{}}, sim.Config{
		Horizon: 120, Step: 0.001, Mode: sim.WorstCase,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, w := range want {
		if got := res.MaxEndToEnd(i); math.Abs(got-w) > 0.01 {
			t.Errorf("simulated R(%s) = %v, want %v (critical instant at t=0)", sys.Transactions[i].Name, got, w)
		}
	}
}
