package sim_test

import (
	"strings"
	"testing"

	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/server"
	"hsched/internal/sim"
)

// TestGanttPreemption renders a classic preemption pattern: hi (C=1,
// T=4) preempts lo (C=3, T=12) on a dedicated CPU. Over [0, 12) with
// 12 one-unit cells the schedule is a b b a b . a . . . . . with job
// boundaries at multiples of 4.
func TestGanttPreemption(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "hi", Period: 4, Deadline: 4, Tasks: []model.Task{
				{Name: "hi", WCET: 1, BCET: 1, Priority: 2},
			}},
			{Name: "lo", Period: 12, Deadline: 12, Tasks: []model.Task{
				{Name: "lo", WCET: 3, BCET: 3, Priority: 1},
			}},
		},
	}
	res, err := sim.Run(sys, []server.Server{server.Dedicated{}}, sim.Config{
		Horizon: 12, Step: 0.01, RecordRuns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("runs for %d platforms, want 1", len(res.Runs))
	}
	// Runs: hi [0,1), lo [1,4), hi [4,5), hi [8,9).
	out := sim.Gantt(sys, res.Runs, 0, 12, 12)
	lines := strings.Split(out, "\n")
	if len(lines) < 3 {
		t.Fatalf("short output:\n%s", out)
	}
	row := lines[1]
	want := "Π1 |abbba...a...|"
	if row != want {
		t.Errorf("gantt row %q, want %q", row, want)
	}
	if !strings.Contains(out, "a=hi") || !strings.Contains(out, "b=lo") {
		t.Errorf("legend missing:\n%s", out)
	}
}

// TestGanttEmptyWindow: a degenerate window renders nothing.
func TestGanttEmptyWindow(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "G", Period: 10, Deadline: 10, Tasks: []model.Task{
				{Name: "x", WCET: 1, BCET: 1, Priority: 1},
			}},
		},
	}
	if out := sim.Gantt(sys, [][]sim.Span{nil}, 5, 5, 10); out != "" {
		t.Errorf("empty window rendered %q", out)
	}
}

// TestRunsCoalesced: contiguous slices of one job collapse into a
// single run.
func TestRunsCoalesced(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "G", Period: 100, Deadline: 100, Tasks: []model.Task{
				{Name: "x", WCET: 5, BCET: 5, Priority: 1},
			}},
		},
	}
	res, err := sim.Run(sys, []server.Server{server.Dedicated{}}, sim.Config{
		Horizon: 100, Step: 0.01, RecordRuns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Runs[0]); n != 1 {
		t.Fatalf("%d runs, want 1 coalesced run; runs: %v", n, res.Runs[0])
	}
	r := res.Runs[0][0]
	if r.Start > 0.011 || r.End < 4.99 || r.End > 5.02 {
		t.Errorf("run [%v, %v], want ≈ [0, 5]", r.Start, r.End)
	}
}
