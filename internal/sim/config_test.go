package sim_test

import (
	"testing"

	"hsched/internal/experiments"
	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/server"
	"hsched/internal/sim"
)

func dedicated() []server.Server { return []server.Server{server.Dedicated{}} }

func onePlatformChain() *model.System {
	return &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "G", Period: 10, Deadline: 10, Tasks: []model.Task{
				{Name: "a", WCET: 2, BCET: 1, Priority: 1},
			}},
		},
	}
}

// TestBestCaseMode: with BCET execution the observed responses sit at
// the best case, strictly below the worst case.
func TestBestCaseMode(t *testing.T) {
	sys := onePlatformChain()
	best, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 100, Step: 0.01, Mode: sim.BestCase})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 100, Step: 0.01, Mode: sim.WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if b, w := best.MaxEndToEnd(0), worst.MaxEndToEnd(0); !(b < w) {
		t.Errorf("best-case max %v not below worst-case max %v", b, w)
	}
	if b := best.MaxEndToEnd(0); b < 1-0.02 || b > 1+0.02 {
		t.Errorf("best-case response %v, want ≈ BCET = 1", b)
	}
}

// TestRandomCaseBounded: random execution times stay within
// [BCET, WCET]-induced response bounds on an idle platform.
func TestRandomCaseBounded(t *testing.T) {
	sys := onePlatformChain()
	res, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 500, Step: 0.01, Mode: sim.RandomCase, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Tasks[0][0]
	if st.MaxResponse > 2+0.02 || st.Mean() < 1-0.02 {
		t.Errorf("random-case responses out of [1, 2]: max %v mean %v", st.MaxResponse, st.Mean())
	}
}

// TestSampleJitterShiftsActivations: with release jitter sampling on,
// observed responses (measured from the nominal release) grow by up to
// the jitter.
func TestSampleJitterShiftsActivations(t *testing.T) {
	sys := onePlatformChain()
	sys.Transactions[0].Tasks[0].Jitter = 5
	withJ, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 2000, Step: 0.01, SampleJitter: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := withJ.MaxEndToEnd(0)
	if got <= 2 || got > 7+0.02 {
		t.Errorf("jittered max response %v, want in (2, 7]", got)
	}
	noJ, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 2000, Step: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if noJ.MaxEndToEnd(0) > 2+0.02 {
		t.Errorf("punctual releases should respond within WCET, got %v", noJ.MaxEndToEnd(0))
	}
}

// TestPhasesShiftReleases: phase offsets delay first releases and
// reduce the job count within the horizon.
func TestPhasesShiftReleases(t *testing.T) {
	sys := onePlatformChain()
	res, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 100, Step: 0.01, Phases: []float64{55}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tasks[0][0].Activations; got != 5 {
		t.Errorf("activations = %d, want 5 (releases at 55..95)", got)
	}
}

// TestConfigErrors: malformed configurations are rejected.
func TestConfigErrors(t *testing.T) {
	sys := onePlatformChain()
	if _, err := sim.Run(sys, nil, sim.Config{}); err == nil {
		t.Errorf("missing servers accepted")
	}
	if _, err := sim.Run(sys, dedicated(), sim.Config{Phases: []float64{1, 2}}); err == nil {
		t.Errorf("phase count mismatch accepted")
	}
	if _, err := sim.Run(sys, dedicated(), sim.Config{Policies: []sim.Policy{sim.EDF, sim.EDF}}); err == nil {
		t.Errorf("policy count mismatch accepted")
	}
	sys.Transactions[0].Tasks[0].WCET = -1
	if _, err := sim.Run(sys, dedicated(), sim.Config{}); err == nil {
		t.Errorf("invalid system accepted")
	}
}

// TestEDFPolicyPrefersEarlierDeadline: two simultaneous jobs, the one
// with the earlier absolute deadline runs first under EDF even with a
// lower fixed priority.
func TestEDFPolicyPrefersEarlierDeadline(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "late", Period: 100, Deadline: 50, Tasks: []model.Task{
				{Name: "late", WCET: 2, BCET: 2, Priority: 9},
			}},
			{Name: "soon", Period: 100, Deadline: 5, Tasks: []model.Task{
				{Name: "soon", WCET: 2, BCET: 2, Priority: 1},
			}},
		},
	}
	res, err := sim.Run(sys, dedicated(), sim.Config{
		Horizon: 100, Step: 0.01, Policies: []sim.Policy{sim.EDF}, TraceLimit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxEndToEnd(1); got > 2.02 {
		t.Errorf("EDF: soon-deadline job responded in %v, want ≈ 2", got)
	}
	if got := res.MaxEndToEnd(0); got < 3.9 {
		t.Errorf("EDF: late-deadline job responded in %v, want ≈ 4", got)
	}

	// Under fixed priority the order inverts.
	fp, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 100, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got := fp.MaxEndToEnd(0); got > 2.02 {
		t.Errorf("FP: high-priority job responded in %v, want ≈ 2", got)
	}
}

// TestHyperperiodDefaultHorizon: Horizon 0 selects twice the
// hyperperiod.
func TestHyperperiodDefaultHorizon(t *testing.T) {
	sys := experiments.PaperSystem()
	res, err := sim.Run(sys, paperServers(t, [3]float64{0, 0, 0}), sim.Config{Step: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 2*sys.Hyperperiod() {
		t.Errorf("default horizon %v, want %v", res.Horizon, 2*sys.Hyperperiod())
	}
}

// TestPercentiles: with KeepResponses on, percentiles are ordered and
// bracketed by the extreme observations.
func TestPercentiles(t *testing.T) {
	sys := onePlatformChain()
	res, err := sim.Run(sys, dedicated(), sim.Config{
		Horizon: 1000, Step: 0.01, Mode: sim.RandomCase, Seed: 9, KeepResponses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Tasks[0][0]
	if len(st.Responses) != st.Completions {
		t.Fatalf("kept %d responses for %d completions", len(st.Responses), st.Completions)
	}
	p0, p50, p95, p100 := st.Percentile(0), st.Percentile(50), st.Percentile(95), st.Percentile(100)
	if !(p0 <= p50 && p50 <= p95 && p95 <= p100) {
		t.Errorf("percentiles not ordered: %v %v %v %v", p0, p50, p95, p100)
	}
	if p100 != st.MaxResponse {
		t.Errorf("p100 = %v, max = %v", p100, st.MaxResponse)
	}
	// Without KeepResponses the percentile is 0 by contract.
	res2, err := sim.Run(sys, dedicated(), sim.Config{Horizon: 100, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Tasks[0][0].Percentile(50); got != 0 {
		t.Errorf("percentile without KeepResponses = %v", got)
	}
}

// TestPlatformStats: the fraction of the horizon a polling server
// supplies matches its rate, and busy time never exceeds supplied
// time.
func TestPlatformStats(t *testing.T) {
	sys := experiments.PaperSystem()
	res, err := sim.Run(sys, paperServers(t, [3]float64{0, 0, 0}), sim.Config{
		Horizon: 2100, Step: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRates := []float64{0.4, 0.4, 0.2}
	for m, ps := range res.Platforms {
		got := ps.Supplied / res.Horizon
		if got < wantRates[m]-0.02 || got > wantRates[m]+0.02 {
			t.Errorf("Π%d supplied fraction %v, want ≈ %v", m+1, got, wantRates[m])
		}
		if ps.Busy > ps.Supplied+1e-9 {
			t.Errorf("Π%d busy %v exceeds supplied %v", m+1, ps.Busy, ps.Supplied)
		}
		if ps.Busy <= 0 {
			t.Errorf("Π%d never busy", m+1)
		}
	}
}
