package sim_test

import (
	"strings"
	"testing"

	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/server"
	"hsched/internal/sim"
)

func traceSystem() *model.System {
	return &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Name: "G", Period: 10, Deadline: 10, Tasks: []model.Task{
				{Name: "a", WCET: 1, BCET: 1, Priority: 2},
				{Name: "b", WCET: 1, BCET: 1, Priority: 1},
			}},
		},
	}
}

// TestTraceTimeline checks the recorded event sequence of a simple
// two-task chain: release(a) → start(a) → complete(a) → release(b) →
// start(b) → complete(b), per period instance.
func TestTraceTimeline(t *testing.T) {
	sys := traceSystem()
	res, err := sim.Run(sys, []server.Server{server.Dedicated{}}, sim.Config{
		Horizon: 10, Step: 0.1, TraceLimit: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 6 {
		t.Fatalf("recorded %d events, want 6: %v", len(res.Trace), res.Trace)
	}
	wantKinds := []sim.EventKind{
		sim.EventRelease, sim.EventStart, sim.EventComplete,
		sim.EventRelease, sim.EventStart, sim.EventComplete,
	}
	wantTask := []int{0, 0, 0, 1, 1, 1}
	for i, e := range res.Trace {
		if e.Kind != wantKinds[i] || e.Task != wantTask[i] {
			t.Errorf("event %d = %+v, want kind %v task %d", i, e, wantKinds[i], wantTask[i])
		}
		if i > 0 && e.Time < res.Trace[i-1].Time-1e-9 {
			t.Errorf("event %d out of order: %v after %v", i, e.Time, res.Trace[i-1].Time)
		}
	}

	out := sim.FormatTrace(sys, res.Trace)
	for _, want := range []string{"release", "start", "complete", " a ", " b ", "Π1"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted trace missing %q:\n%s", want, out)
		}
	}
}

// TestTraceLimitRespected: the recorder stops at the cap.
func TestTraceLimitRespected(t *testing.T) {
	res, err := sim.Run(traceSystem(), []server.Server{server.Dedicated{}}, sim.Config{
		Horizon: 100, Step: 0.1, TraceLimit: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 7 {
		t.Errorf("recorded %d events, want exactly the cap 7", len(res.Trace))
	}
}

// TestTraceDisabledByDefault: no TraceLimit, no allocation.
func TestTraceDisabledByDefault(t *testing.T) {
	res, err := sim.Run(traceSystem(), []server.Server{server.Dedicated{}}, sim.Config{
		Horizon: 50, Step: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Errorf("trace recorded without TraceLimit")
	}
}

// TestEventKindString covers the String method.
func TestEventKindString(t *testing.T) {
	if sim.EventRelease.String() != "release" || sim.EventStart.String() != "start" ||
		sim.EventComplete.String() != "complete" {
		t.Errorf("unexpected kind strings")
	}
	if s := sim.EventKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind rendered as %q", s)
	}
}
