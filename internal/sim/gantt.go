package sim

import (
	"fmt"
	"math"
	"strings"

	"hsched/internal/model"
)

// Span is a maximal contiguous execution interval of one task instance
// on its platform, recorded when Config.RecordRuns is set.
type Span struct {
	// Start and End delimit the interval.
	Start, End float64
	// Transaction and Task locate the task (0-based).
	Transaction, Task int
}

// Gantt renders recorded execution runs as an ASCII chart: one row per
// platform, one column per time cell of width (to−from)/cols. Each
// task is assigned a letter (a, b, c, … in declaration order); '.'
// marks cells where the platform ran nothing. A legend follows the
// chart.
func Gantt(sys *model.System, runs [][]Span, from, to float64, cols int) string {
	if cols < 1 {
		cols = 60
	}
	if to <= from {
		return ""
	}
	letters := map[[2]int]byte{}
	next := byte('a')
	var legend []string
	for i := range sys.Transactions {
		for j := range sys.Transactions[i].Tasks {
			letters[[2]int{i, j}] = next
			legend = append(legend, fmt.Sprintf("%c=%s", next, sys.TaskName(i, j)))
			if next == 'z' {
				next = 'A'
			} else {
				next++
			}
		}
	}

	cell := (to - from) / float64(cols)
	var b strings.Builder
	fmt.Fprintf(&b, "time %g..%g, cell %.3g\n", from, to, cell)
	for m, platformRuns := range runs {
		row := make([]byte, cols)
		for k := range row {
			row[k] = '.'
		}
		for _, r := range platformRuns {
			if r.End <= from || r.Start >= to {
				continue
			}
			// Half-open interval [Start, End) with an ε guard: runs are
			// accumulated from simulation steps, so boundaries sit a few
			// ulps off the exact cell edges.
			eps := cell * 1e-6
			lo := int(math.Floor((r.Start - from + eps) / cell))
			hi := int(math.Ceil((r.End-from-eps)/cell)) - 1
			if hi >= cols {
				hi = cols - 1
			}
			if lo < 0 {
				lo = 0
			}
			for k := lo; k <= hi; k++ {
				row[k] = letters[[2]int{r.Transaction, r.Task}]
			}
		}
		fmt.Fprintf(&b, "Π%d |%s|\n", m+1, row)
	}
	fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, " "))
	return b.String()
}
