// Package sched assigns local fixed priorities to the tasks of a
// system: the classical rate- and deadline-monotonic policies, a
// HOPA-style heuristic (after Gutiérrez García & González Harbour)
// that distributes end-to-end deadlines over the tasks of each chain
// and iterates against the holistic analysis, and an Audsley-style
// optimal per-platform search — useful because the paper's model
// leaves priority assignment to the component designer. Assign
// dispatches over the four policies by name.
//
// The iterative searches (HOPA, Audsley) probe chains of systems one
// priority move apart — exactly the near-match shape the analysis
// service's incremental path serves — so their oracles run through a
// service.Session: each probe is seeded by the previous result and
// re-analyses only what the move can reach, revisited assignments come
// from the verdict memo, and sharing one service across searches
// shares all of it. Results are bit-identical to probing a private
// engine.
package sched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/service"
)

// RateMonotonic assigns every task the priority rank of its
// transaction's period (shortest period → highest priority). Ties
// share a priority level. The system is mutated in place.
func RateMonotonic(sys *model.System) {
	byKey(sys, func(tr *model.Transaction, _ *model.Task) float64 { return tr.Period })
}

// DeadlineMonotonic assigns every task the priority rank of its
// transaction's end-to-end deadline (shortest deadline → highest
// priority). The system is mutated in place.
func DeadlineMonotonic(sys *model.System) {
	byKey(sys, func(tr *model.Transaction, _ *model.Task) float64 { return tr.Deadline })
}

// byKey ranks all tasks globally by a key: smaller key → higher
// priority; equal keys share a level.
func byKey(sys *model.System, key func(*model.Transaction, *model.Task) float64) {
	var keys []float64
	for i := range sys.Transactions {
		tr := &sys.Transactions[i]
		for j := range tr.Tasks {
			keys = append(keys, key(tr, &tr.Tasks[j]))
		}
	}
	sort.Float64s(keys)
	keys = dedup(keys)
	rank := func(k float64) int {
		// Highest priority (len) for the smallest key.
		i := sort.SearchFloat64s(keys, k)
		return len(keys) - i
	}
	for i := range sys.Transactions {
		tr := &sys.Transactions[i]
		for j := range tr.Tasks {
			tr.Tasks[j].Priority = rank(key(tr, &tr.Tasks[j]))
		}
	}
}

func dedup(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// HOPAOptions tunes HOPA.
type HOPAOptions struct {
	// Iterations bounds the deadline-redistribution rounds; 0 selects
	// 10.
	Iterations int
	// Analysis configures the holistic oracle.
	Analysis analysis.Options
	// Service, when non-nil, is the analysis service the oracle probes
	// route through (via a probe Session) — sharing it across searches
	// shares its engine pool, verdict memo and delta-seed pool. When
	// nil, the search runs a private single-shard service for its
	// duration.
	Service *service.Service
}

func (o HOPAOptions) iterations() int {
	if o.Iterations <= 0 {
		return 10
	}
	return o.Iterations
}

// sessionFor returns a probe session on svc, or on a private
// single-shard service when svc is nil: the searches are sequential,
// so one resident engine suffices, and the session's pinned seed plus
// the verdict memo are what turn a chain of one-priority-apart probes
// into memo hits and incremental re-analyses.
func sessionFor(svc *service.Service) *service.Session {
	if svc == nil {
		svc = service.New(service.Options{Shards: 1})
	}
	return svc.NewSession()
}

// HOPA searches a priority assignment for a system of multi-platform
// transactions: end-to-end deadlines are split into per-task local
// deadlines proportional to the tasks' scaled demand, priorities
// follow deadline-monotonically from the local deadlines, the system
// is analysed, and local deadlines are redistributed proportionally to
// each task's share of the chain's response time. The best assignment
// seen (schedulable with the largest minimum slack, or failing that
// the smallest worst normalised overshoot) is installed in the system,
// and the corresponding analysis result returned.
//
// The oracle runs through an analysis service (HOPAOptions.Service, or
// a private one); treat the returned result as read-only — it may be
// shared with the service's verdict memo.
func HOPA(sys *model.System, opt HOPAOptions) (*analysis.Result, error) {
	return HOPAContext(context.Background(), sys, opt)
}

// HOPAContext is HOPA with cancellation: the context is polled before
// every oracle probe — a warm service can answer every probe from its
// memo without ever observing the context, and the search must still
// honour a cancellation — and aborts the analyses themselves.
func HOPAContext(ctx context.Context, sys *model.System, opt HOPAOptions) (*analysis.Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	locals := make([][]float64, len(sys.Transactions))
	for i := range sys.Transactions {
		tr := &sys.Transactions[i]
		locals[i] = make([]float64, len(tr.Tasks))
		total := 0.0
		for j := range tr.Tasks {
			total += tr.Tasks[j].WCET / sys.Platforms[tr.Tasks[j].Platform].Alpha
		}
		for j := range tr.Tasks {
			locals[i][j] = tr.Deadline * (tr.Tasks[j].WCET / sys.Platforms[tr.Tasks[j].Platform].Alpha) / total
		}
	}

	type candidate struct {
		prios [][]int
		res   *analysis.Result
		score float64 // larger is better
	}
	var best *candidate

	// Only priorities change between rounds, so a probe session keeps
	// every round one edit away from its pinned previous result: the
	// re-analysis replays whatever the priority moves provably cannot
	// reach, and revisited assignments are answered by the memo.
	sess := sessionFor(opt.Service)
	for round := 0; round < opt.iterations(); round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		assignByLocalDeadlines(sys, locals)
		res, err := sess.AnalyzeOptions(ctx, sys, opt.Analysis)
		if err != nil {
			return nil, err
		}
		score := scoreOf(res)
		if best == nil || score > best.score {
			best = &candidate{prios: snapshotPriorities(sys), res: res, score: score}
		}
		// Redistribute: local deadline share follows the observed
		// response share of each task within its chain.
		for i := range sys.Transactions {
			tr := &sys.Transactions[i]
			end := res.Tasks[i][len(tr.Tasks)-1].Worst
			if math.IsInf(end, 1) || end <= 0 {
				continue
			}
			prev := 0.0
			for j := range tr.Tasks {
				r := res.Tasks[i][j].Worst
				share := (r - prev) / end
				if share < 1e-3 {
					share = 1e-3
				}
				// Damped move toward the response-proportional split.
				locals[i][j] = 0.5*locals[i][j] + 0.5*tr.Deadline*share
				prev = r
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: HOPA produced no assignment")
	}
	restorePriorities(sys, best.prios)
	return best.res, nil
}

// unboundedPenalty separates the score bands of assignments with
// unbounded (diverging) transaction responses: each unbounded chain
// costs one penalty, so candidates first compare by how many chains
// diverge and only then by the slack of the bounded ones. The finite
// slack contribution is clamped to ±slackClamp < unboundedPenalty/2,
// so the bands can never overlap however astronomic an overshoot gets
// — beyond the clamp two failures are equally hopeless anyway.
const (
	unboundedPenalty = 1e9
	slackClamp       = unboundedPenalty / 4
)

// scoreOf prefers schedulable results with large minimum slack and
// penalises unschedulable ones by their worst normalised overshoot
// (the most negative slack), so the search keeps the least-bad failing
// assignment rather than the first one it saw. Assignments with
// unbounded responses rank below every bounded one, ordered by how
// many chains diverge and then by the slack of those that do not.
func scoreOf(res *analysis.Result) float64 {
	minSlack := math.Inf(1)
	unbounded := 0
	for i := range res.Tasks {
		tr := res.System.Transactions[i]
		r := res.TransactionResponse(i)
		if math.IsInf(r, 1) {
			unbounded++
			continue
		}
		slack := (tr.Deadline - r) / tr.Deadline
		if slack < minSlack {
			minSlack = slack
		}
	}
	if unbounded == 0 {
		return math.Max(minSlack, -slackClamp)
	}
	if math.IsInf(minSlack, 1) {
		// Every chain diverges: nothing finite left to rank by.
		minSlack = 0
	}
	minSlack = math.Max(math.Min(minSlack, slackClamp), -slackClamp)
	return minSlack - unboundedPenalty*float64(unbounded)
}

func assignByLocalDeadlines(sys *model.System, locals [][]float64) {
	type entry struct {
		i, j int
		d    float64
	}
	var all []entry
	for i := range sys.Transactions {
		for j := range sys.Transactions[i].Tasks {
			all = append(all, entry{i, j, locals[i][j]})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d > all[b].d })
	for rank, e := range all {
		sys.Transactions[e.i].Tasks[e.j].Priority = rank + 1
	}
}

func snapshotPriorities(sys *model.System) [][]int {
	out := make([][]int, len(sys.Transactions))
	for i := range sys.Transactions {
		out[i] = make([]int, len(sys.Transactions[i].Tasks))
		for j := range sys.Transactions[i].Tasks {
			out[i][j] = sys.Transactions[i].Tasks[j].Priority
		}
	}
	return out
}

func restorePriorities(sys *model.System, prios [][]int) {
	for i := range prios {
		for j := range prios[i] {
			sys.Transactions[i].Tasks[j].Priority = prios[i][j]
		}
	}
}
