// Package sched assigns local fixed priorities to the tasks of a
// system: the classical rate- and deadline-monotonic policies, plus a
// HOPA-style heuristic (after Gutiérrez García & González Harbour)
// that distributes end-to-end deadlines over the tasks of each chain
// and iterates against the holistic analysis — useful because the
// paper's model leaves priority assignment to the component designer.
package sched

import (
	"fmt"
	"math"
	"sort"

	"hsched/internal/analysis"
	"hsched/internal/model"
)

// RateMonotonic assigns every task the priority rank of its
// transaction's period (shortest period → highest priority). Ties
// share a priority level. The system is mutated in place.
func RateMonotonic(sys *model.System) {
	byKey(sys, func(tr *model.Transaction, _ *model.Task) float64 { return tr.Period })
}

// DeadlineMonotonic assigns every task the priority rank of its
// transaction's end-to-end deadline (shortest deadline → highest
// priority). The system is mutated in place.
func DeadlineMonotonic(sys *model.System) {
	byKey(sys, func(tr *model.Transaction, _ *model.Task) float64 { return tr.Deadline })
}

// byKey ranks all tasks globally by a key: smaller key → higher
// priority; equal keys share a level.
func byKey(sys *model.System, key func(*model.Transaction, *model.Task) float64) {
	var keys []float64
	for i := range sys.Transactions {
		tr := &sys.Transactions[i]
		for j := range tr.Tasks {
			keys = append(keys, key(tr, &tr.Tasks[j]))
		}
	}
	sort.Float64s(keys)
	keys = dedup(keys)
	rank := func(k float64) int {
		// Highest priority (len) for the smallest key.
		i := sort.SearchFloat64s(keys, k)
		return len(keys) - i
	}
	for i := range sys.Transactions {
		tr := &sys.Transactions[i]
		for j := range tr.Tasks {
			tr.Tasks[j].Priority = rank(key(tr, &tr.Tasks[j]))
		}
	}
}

func dedup(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// HOPAOptions tunes HOPA.
type HOPAOptions struct {
	// Iterations bounds the deadline-redistribution rounds; 0 selects
	// 10.
	Iterations int
	// Analysis configures the holistic oracle.
	Analysis analysis.Options
}

func (o HOPAOptions) iterations() int {
	if o.Iterations <= 0 {
		return 10
	}
	return o.Iterations
}

// HOPA searches a priority assignment for a system of multi-platform
// transactions: end-to-end deadlines are split into per-task local
// deadlines proportional to the tasks' scaled demand, priorities
// follow deadline-monotonically from the local deadlines, the system
// is analysed, and local deadlines are redistributed proportionally to
// each task's share of the chain's response time. The best assignment
// seen (schedulable with the largest minimum slack, or failing that
// the smallest worst normalised response) is installed in the system,
// and the corresponding analysis result returned.
func HOPA(sys *model.System, opt HOPAOptions) (*analysis.Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	locals := make([][]float64, len(sys.Transactions))
	for i := range sys.Transactions {
		tr := &sys.Transactions[i]
		locals[i] = make([]float64, len(tr.Tasks))
		total := 0.0
		for j := range tr.Tasks {
			total += tr.Tasks[j].WCET / sys.Platforms[tr.Tasks[j].Platform].Alpha
		}
		for j := range tr.Tasks {
			locals[i][j] = tr.Deadline * (tr.Tasks[j].WCET / sys.Platforms[tr.Tasks[j].Platform].Alpha) / total
		}
	}

	type candidate struct {
		prios [][]int
		res   *analysis.Result
		score float64 // larger is better
	}
	var best *candidate

	// Only priorities change between rounds, so one engine amortises
	// its working copy and buffers across the whole iteration.
	eng := analysis.NewEngine(opt.Analysis)
	for round := 0; round < opt.iterations(); round++ {
		assignByLocalDeadlines(sys, locals)
		res, err := eng.Analyze(sys)
		if err != nil {
			return nil, err
		}
		score := scoreOf(res)
		if best == nil || score > best.score {
			best = &candidate{prios: snapshotPriorities(sys), res: res, score: score}
		}
		// Redistribute: local deadline share follows the observed
		// response share of each task within its chain.
		for i := range sys.Transactions {
			tr := &sys.Transactions[i]
			end := res.Tasks[i][len(tr.Tasks)-1].Worst
			if math.IsInf(end, 1) || end <= 0 {
				continue
			}
			prev := 0.0
			for j := range tr.Tasks {
				r := res.Tasks[i][j].Worst
				share := (r - prev) / end
				if share < 1e-3 {
					share = 1e-3
				}
				// Damped move toward the response-proportional split.
				locals[i][j] = 0.5*locals[i][j] + 0.5*tr.Deadline*share
				prev = r
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: HOPA produced no assignment")
	}
	restorePriorities(sys, best.prios)
	return best.res, nil
}

// scoreOf prefers schedulable results with large minimum slack and
// penalises unschedulable ones by their worst normalised overshoot.
func scoreOf(res *analysis.Result) float64 {
	minSlack := math.Inf(1)
	for i := range res.Tasks {
		tr := res.System.Transactions[i]
		r := res.TransactionResponse(i)
		if math.IsInf(r, 1) {
			return math.Inf(-1)
		}
		slack := (tr.Deadline - r) / tr.Deadline
		if slack < minSlack {
			minSlack = slack
		}
	}
	return minSlack
}

func assignByLocalDeadlines(sys *model.System, locals [][]float64) {
	type entry struct {
		i, j int
		d    float64
	}
	var all []entry
	for i := range sys.Transactions {
		for j := range sys.Transactions[i].Tasks {
			all = append(all, entry{i, j, locals[i][j]})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d > all[b].d })
	for rank, e := range all {
		sys.Transactions[e.i].Tasks[e.j].Priority = rank + 1
	}
}

func snapshotPriorities(sys *model.System) [][]int {
	out := make([][]int, len(sys.Transactions))
	for i := range sys.Transactions {
		out[i] = make([]int, len(sys.Transactions[i].Tasks))
		for j := range sys.Transactions[i].Tasks {
			out[i][j] = sys.Transactions[i].Tasks[j].Priority
		}
	}
	return out
}

func restorePriorities(sys *model.System, prios [][]int) {
	for i := range prios {
		for j := range prios[i] {
			sys.Transactions[i].Tasks[j].Priority = prios[i][j]
		}
	}
}
