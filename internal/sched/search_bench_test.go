package sched

import (
	"context"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/service"
)

// exactSearchSystem draws the exact-search benchmark workload: one
// platform (maximal same-platform interference, the regime where the
// exact scenario product of Eq. 12 grows) with enough tasks that one
// Audsley search issues tens of exact-oracle probes.
func exactSearchSystem(tb testing.TB) *gen.Config {
	tb.Helper()
	return &gen.Config{
		Seed: 7, Platforms: 1, Transactions: 3, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 400, Utilization: 0.5,
		AlphaMin: 0.5, AlphaMax: 0.9,
		RandomPriorities: true,
	}
}

// BenchmarkExactSearch measures one whole Audsley search with the
// exact oracle: tens of probes, each a branch-and-bound exact sweep,
// all routed through one probe session so consecutive one-move-apart
// probes seed each other's sweeps with the previous critical scenario
// (cross-probe prune-state reuse). The "cold" variant disables the
// reuse to isolate its contribution; results are bit-identical either
// way.
func BenchmarkExactSearch(b *testing.B) {
	cfg := exactSearchSystem(b)
	sys, err := gen.System(*cfg)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opt analysis.Options) {
		b.Helper()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh service per search: the benchmark measures the
			// search (and its intra-search session reuse), not the
			// steady-state memo answering repeated identical searches.
			svc := service.New(service.Options{Shards: 1, Analysis: opt})
			work := sys.Clone()
			if _, _, err := Assign(ctx, work, PolicyAudsley, AssignOptions{
				Analysis: opt,
				Service:  svc,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("session-reuse", func(b *testing.B) {
		run(b, analysis.Options{Exact: true, Workers: 1})
	})
	b.Run("cold", func(b *testing.B) {
		run(b, analysis.Options{Exact: true, Workers: 1, DisableSweepReuse: true})
	})
}
