package sched

import (
	"context"
	"fmt"
	"sort"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/service"
)

// audsleyUnassigned is the temporary priority of not-yet-assigned
// tasks during the bottom-up search: above every real level, so the
// candidate under test sees the maximal interference from its own
// platform.
const audsleyUnassigned = 1 << 20

// AudsleyOptions tunes AudsleyContext.
type AudsleyOptions struct {
	// Analysis configures the holistic oracle.
	Analysis analysis.Options
	// Service, when non-nil, is the analysis service the oracle probes
	// route through (via a probe Session): consecutive probes are one
	// priority move apart, so the session's pinned seed turns most of
	// them into incremental re-analyses, and re-visited assignments
	// (including the final verification of the last accepted probe)
	// are answered by the verdict memo. When nil, the search runs a
	// private single-shard service for its duration. Results are
	// bit-identical to probing a private engine either way.
	Service *service.Service
}

// Audsley performs Audsley-style optimal priority assignment per
// platform, bottom-up, using the holistic analysis as the
// schedulability oracle: for each priority level from the lowest, it
// looks for a task that still meets its transaction deadline when
// assigned that level while every unassigned task of the same platform
// interferes from above.
//
// For systems of independent single-task transactions the procedure is
// the classical optimal priority assignment (response times at the
// lowest level are independent of the relative order of the tasks
// above). For multi-platform transaction chains the per-candidate
// check is heuristic — a transaction's end-to-end response also
// depends on platforms not yet assigned, whose tasks interfere from a
// shared provisional top level — so the order in which platforms are
// processed matters. The search therefore tries every rotation of the
// platform order (at most M attempts) and keeps the first complete
// assignment the full analysis accepts.
//
// The system's priorities are overwritten with the found assignment
// (or the last attempted one when the search fails). It returns the
// final analysis result and whether a full schedulable assignment was
// found; treat the result as read-only — it may be shared with the
// oracle service's verdict memo.
func Audsley(sys *model.System, opt analysis.Options) (*analysis.Result, bool, error) {
	return AudsleyContext(context.Background(), sys, AudsleyOptions{Analysis: opt})
}

// AudsleyContext is Audsley with cancellation and an explicit oracle
// service. The context is polled before every probe — a warm service
// can answer the whole search from its memo without any analysis ever
// observing the context, and the search must still honour a
// cancellation — and aborts the analyses themselves.
func AudsleyContext(ctx context.Context, sys *model.System, opt AudsleyOptions) (*analysis.Result, bool, error) {
	if err := sys.Validate(); err != nil {
		return nil, false, err
	}
	type ref struct{ i, j int }
	perPlatform := make(map[int][]ref)
	for i := range sys.Transactions {
		for j := range sys.Transactions[i].Tasks {
			t := &sys.Transactions[i].Tasks[j]
			perPlatform[t.Platform] = append(perPlatform[t.Platform], ref{i, j})
		}
	}
	platforms := make([]int, 0, len(perPlatform))
	for m := range perPlatform {
		platforms = append(platforms, m)
	}
	sort.Ints(platforms)

	task := func(r ref) *model.Task { return &sys.Transactions[r.i].Tasks[r.j] }

	// One probe session serves every oracle query of the search: only
	// priorities change between probes, so each probe re-analyses
	// incrementally against the session's pinned previous result, and
	// assignments the search revisits (notably the final analysis of
	// an attempt, which re-states the last accepted probe) come
	// straight from the service's verdict memo.
	sess := sessionFor(opt.Service)
	probe := func() (*analysis.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		return sess.AnalyzeOptions(ctx, sys, opt.Analysis)
	}

	attempt := func(order []int) (*analysis.Result, bool, error) {
		for i := range sys.Transactions {
			for j := range sys.Transactions[i].Tasks {
				sys.Transactions[i].Tasks[j].Priority = audsleyUnassigned
			}
		}
		for _, m := range order {
			refs := perPlatform[m]
			assigned := make([]bool, len(refs))
			for level := 1; level <= len(refs); level++ {
				found := false
				for c := range refs {
					if assigned[c] {
						continue
					}
					task(refs[c]).Priority = level
					res, err := probe()
					if err != nil {
						return nil, false, fmt.Errorf("sched: audsley oracle: %w", err)
					}
					tr := &sys.Transactions[refs[c].i]
					if res.TransactionResponse(refs[c].i) <= tr.Deadline+1e-9 {
						assigned[c] = true
						found = true
						break
					}
					task(refs[c]).Priority = audsleyUnassigned
				}
				if !found {
					res, err := probe()
					if err != nil {
						return nil, false, err
					}
					return res, false, nil
				}
			}
		}
		res, err := probe()
		if err != nil {
			return nil, false, err
		}
		return res, res.Schedulable, nil
	}

	var last *analysis.Result
	for rot := 0; rot < len(platforms); rot++ {
		order := append(append([]int(nil), platforms[rot:]...), platforms[:rot]...)
		res, ok, err := attempt(order)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return res, true, nil
		}
		last = res
	}
	return last, false, nil
}
