package sched

import (
	"math/rand"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/platform"
)

// TestAudsleyBeatsRateMonotonic: the classic RM failure — a
// long-period task with a tight deadline. RM puts the short-period
// task on top and misses; Audsley finds the deadline-respecting order.
func TestAudsleyBeatsRateMonotonic(t *testing.T) {
	build := func() *model.System {
		return &model.System{
			Platforms: []platform.Params{platform.Dedicated()},
			Transactions: []model.Transaction{
				{Name: "urgent", Period: 100, Deadline: 5, Tasks: []model.Task{
					{Name: "u", WCET: 1, BCET: 1},
				}},
				{Name: "frequent", Period: 10, Deadline: 10, Tasks: []model.Task{
					{Name: "f", WCET: 5, BCET: 5},
				}},
			},
		}
	}

	rm := build()
	RateMonotonic(rm)
	rmRes, err := analysis.Analyze(rm, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rmRes.Schedulable {
		t.Fatalf("RM should fail on this set (R(urgent) = %v)", rmRes.TransactionResponse(0))
	}

	opa := build()
	res, ok, err := Audsley(opa, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !res.Schedulable {
		t.Fatalf("Audsley failed to find the schedulable assignment")
	}
	if opa.Transactions[0].Tasks[0].Priority <= opa.Transactions[1].Tasks[0].Priority {
		t.Errorf("urgent task not above frequent task")
	}
}

// TestAudsleyDominatesFixedPolicies: on random independent task sets,
// whenever RM or DM finds a schedulable assignment, Audsley must too.
func TestAudsleyDominatesFixedPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		sys := &model.System{Platforms: []platform.Params{{Alpha: 0.6, Delta: 1, Beta: 0.5}}}
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			period := 20 + rng.Float64()*180
			wcet := (0.05 + rng.Float64()*0.2) * period * 0.6 / float64(n)
			deadline := period * (0.5 + rng.Float64()*0.5)
			sys.Transactions = append(sys.Transactions, model.Transaction{
				Period: period, Deadline: deadline,
				Tasks: []model.Task{{WCET: wcet, BCET: wcet / 2}},
			})
		}

		anySched := false
		for _, policy := range []func(*model.System){RateMonotonic, DeadlineMonotonic} {
			c := sys.Clone()
			policy(c)
			res, err := analysis.Analyze(c, analysis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Schedulable {
				anySched = true
			}
		}
		c := sys.Clone()
		_, ok, err := Audsley(c, analysis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if anySched && !ok {
			t.Fatalf("trial %d: RM/DM schedulable but Audsley failed", trial)
		}
	}
}

// TestAudsleyReportsFailure: an overloaded set fails cleanly.
func TestAudsleyReportsFailure(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{{Alpha: 0.3, Delta: 1, Beta: 0}},
		Transactions: []model.Transaction{
			{Period: 10, Deadline: 10, Tasks: []model.Task{{WCET: 2, BCET: 2}}},
			{Period: 10, Deadline: 10, Tasks: []model.Task{{WCET: 2, BCET: 2}}},
		},
	}
	res, ok, err := Audsley(sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok || res.Schedulable {
		t.Errorf("overloaded set reported schedulable")
	}
}

// TestAudsleyOnChains: the heuristic extension to multi-platform
// chains keeps the paper example schedulable.
func TestAudsleyOnChains(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.4, Delta: 1, Beta: 1},
			{Alpha: 0.2, Delta: 2, Beta: 1},
		},
		Transactions: []model.Transaction{
			{Name: "fusion", Period: 50, Deadline: 50, Tasks: []model.Task{
				{WCET: 1, BCET: 0.8, Platform: 2},
				{WCET: 1, BCET: 0.8, Platform: 0},
				{WCET: 1, BCET: 0.8, Platform: 1},
				{WCET: 1, BCET: 0.8, Platform: 2},
			}},
			{Name: "s1", Period: 15, Deadline: 15, Tasks: []model.Task{{WCET: 1, BCET: 0.25, Platform: 0}}},
			{Name: "s2", Period: 15, Deadline: 15, Tasks: []model.Task{{WCET: 1, BCET: 0.25, Platform: 1}}},
			{Name: "bg", Period: 70, Deadline: 70, Tasks: []model.Task{{WCET: 7, BCET: 5, Platform: 2}}},
		},
	}
	res, ok, err := Audsley(sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !res.Schedulable {
		t.Errorf("Audsley lost schedulability on the (priority-free) paper example")
	}
}
