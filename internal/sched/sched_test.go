package sched

import (
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/platform"
)

func chainSystem() *model.System {
	return &model.System{
		Platforms: []platform.Params{
			{Alpha: 0.5, Delta: 1, Beta: 0.5},
			{Alpha: 0.5, Delta: 1, Beta: 0.5},
		},
		Transactions: []model.Transaction{
			{Name: "fast", Period: 20, Deadline: 10, Tasks: []model.Task{
				{Name: "f1", WCET: 1, BCET: 0.5, Platform: 0},
				{Name: "f2", WCET: 1, BCET: 0.5, Platform: 1},
			}},
			{Name: "slow", Period: 100, Deadline: 100, Tasks: []model.Task{
				{Name: "s1", WCET: 5, BCET: 2, Platform: 0},
				{Name: "s2", WCET: 5, BCET: 2, Platform: 1},
			}},
		},
	}
}

func TestRateMonotonic(t *testing.T) {
	sys := chainSystem()
	RateMonotonic(sys)
	if sys.Transactions[0].Tasks[0].Priority <= sys.Transactions[1].Tasks[0].Priority {
		t.Errorf("shorter period did not get higher priority")
	}
	// Equal periods share a level.
	if sys.Transactions[0].Tasks[0].Priority != sys.Transactions[0].Tasks[1].Priority {
		t.Errorf("same-transaction tasks got different RM priorities")
	}
}

func TestDeadlineMonotonic(t *testing.T) {
	sys := chainSystem()
	sys.Transactions[1].Deadline = 5 // now the "slow" one is urgent
	DeadlineMonotonic(sys)
	if sys.Transactions[1].Tasks[0].Priority <= sys.Transactions[0].Tasks[0].Priority {
		t.Errorf("shorter deadline did not get higher priority")
	}
}

// TestHOPAFindsSchedulableAssignment: on a system where the naive
// rate-monotonic choice misses deadlines, HOPA must find a schedulable
// assignment if one exists within its search.
func TestHOPAFindsSchedulableAssignment(t *testing.T) {
	sys := chainSystem()
	sys.Transactions[0].Deadline = 14

	res, err := HOPA(sys, HOPAOptions{})
	if err != nil {
		t.Fatalf("HOPA: %v", err)
	}
	if !res.Schedulable {
		t.Fatalf("HOPA did not find a schedulable assignment; R(fast) = %v, R(slow) = %v",
			res.TransactionResponse(0), res.TransactionResponse(1))
	}
	// The installed priorities must reproduce the returned result.
	verify, err := analysis.Analyze(sys, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if verify.Schedulable != res.Schedulable {
		t.Errorf("installed priorities verdict %v != returned %v", verify.Schedulable, res.Schedulable)
	}
}

// TestHOPAOnPaperExample: HOPA must keep the paper example schedulable
// (it may find a different but valid assignment).
func TestHOPAOnPaperExample(t *testing.T) {
	sys := paperSystem()
	res, err := HOPA(sys, HOPAOptions{})
	if err != nil {
		t.Fatalf("HOPA: %v", err)
	}
	if !res.Schedulable {
		t.Errorf("HOPA lost schedulability on the paper example")
	}
}

func TestHOPARejectsInvalid(t *testing.T) {
	sys := chainSystem()
	sys.Transactions[0].Tasks[0].WCET = -1
	if _, err := HOPA(sys, HOPAOptions{}); err == nil {
		t.Errorf("invalid system accepted")
	}
}

// TestByKeyDistinctLevels: all distinct keys map to distinct priority
// levels, ordered inversely.
func TestByKeyDistinctLevels(t *testing.T) {
	sys := &model.System{
		Platforms: []platform.Params{platform.Dedicated()},
		Transactions: []model.Transaction{
			{Period: 5, Deadline: 5, Tasks: []model.Task{{WCET: 0.1, BCET: 0.1}}},
			{Period: 17, Deadline: 17, Tasks: []model.Task{{WCET: 0.1, BCET: 0.1}}},
			{Period: 11, Deadline: 11, Tasks: []model.Task{{WCET: 0.1, BCET: 0.1}}},
		},
	}
	RateMonotonic(sys)
	p5 := sys.Transactions[0].Tasks[0].Priority
	p17 := sys.Transactions[1].Tasks[0].Priority
	p11 := sys.Transactions[2].Tasks[0].Priority
	if !(p5 > p11 && p11 > p17) {
		t.Errorf("priorities (5, 11, 17) = (%d, %d, %d), want strictly decreasing in period", p5, p11, p17)
	}
}
