package sched

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/platform"
	"hsched/internal/service"
)

// paperSystem reconstructs the sensor-fusion example of Tables 1-2.
// It is deliberately a local copy: package experiments imports sched
// (the A10 policy ablation), so sched's internal tests cannot import
// experiments back.
func paperSystem() *model.System {
	return &model.System{
		Platforms: []platform.Params{
			{Alpha: 0.4, Delta: 1, Beta: 1}, // Π1
			{Alpha: 0.4, Delta: 1, Beta: 1}, // Π2
			{Alpha: 0.2, Delta: 2, Beta: 1}, // Π3
		},
		Transactions: []model.Transaction{
			{Name: "Gamma1", Period: 50, Deadline: 50, Tasks: []model.Task{
				{Name: "tau1,1", WCET: 1, BCET: 0.8, Priority: 2, Platform: 2},
				{Name: "tau1,2", WCET: 1, BCET: 0.8, Priority: 1, Platform: 0},
				{Name: "tau1,3", WCET: 1, BCET: 0.8, Priority: 1, Platform: 1},
				{Name: "tau1,4", WCET: 1, BCET: 0.8, Priority: 3, Platform: 2},
			}},
			{Name: "Gamma2", Period: 15, Deadline: 15, Tasks: []model.Task{
				{Name: "tau2,1", WCET: 1, BCET: 0.25, Priority: 3, Platform: 0},
			}},
			{Name: "Gamma3", Period: 15, Deadline: 15, Tasks: []model.Task{
				{Name: "tau3,1", WCET: 1, BCET: 0.25, Priority: 3, Platform: 1},
			}},
			{Name: "Gamma4", Period: 70, Deadline: 70, Tasks: []model.Task{
				{Name: "tau4,1", WCET: 7, BCET: 5, Priority: 1, Platform: 2},
			}},
		},
	}
}

// coldService returns a service with memo and delta path disabled:
// every probe runs cold on a resident engine, which is exactly the
// pre-session private-engine oracle.
func coldService() *service.Service {
	return service.New(service.Options{Shards: 1, Capacity: -1, DeltaWindow: -1})
}

// multiPlatformSystem returns a generated 3-platform system with
// mixed chains, the shape where priority probes leave whole platforms
// replayable.
func multiPlatformSystem(t *testing.T) *model.System {
	t.Helper()
	sys, err := gen.System(gen.Config{
		Seed: 42, Platforms: 3, Transactions: 4, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 400, Utilization: 0.4,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// assertSameAssignment fails unless the two systems carry identical
// task priorities and the two results identical bounds, bit for bit.
func assertSameAssignment(t *testing.T, warm, cold *model.System, rw, rc *analysis.Result) {
	t.Helper()
	for i := range warm.Transactions {
		for j := range warm.Transactions[i].Tasks {
			pw := warm.Transactions[i].Tasks[j].Priority
			pc := cold.Transactions[i].Tasks[j].Priority
			if pw != pc {
				t.Fatalf("task (%d,%d): warm priority %d != cold %d", i, j, pw, pc)
			}
		}
	}
	if rw.Schedulable != rc.Schedulable || rw.Iterations != rc.Iterations || rw.Converged != rc.Converged {
		t.Fatalf("verdicts differ: warm {sched %v iters %d conv %v} vs cold {sched %v iters %d conv %v}",
			rw.Schedulable, rw.Iterations, rw.Converged, rc.Schedulable, rc.Iterations, rc.Converged)
	}
	if !reflect.DeepEqual(rw.Tasks, rc.Tasks) {
		t.Fatalf("per-task bounds differ between warm-service and cold-engine paths:\n%v\nvs\n%v", rw.Tasks, rc.Tasks)
	}
}

// TestAudsleyServiceBitIdentical: routing the Audsley oracle through a
// memoised+incremental service must leave the assignment and every
// reported bound bit-identical to the cold private-engine path, while
// the service statistics show the probe traffic riding the memo and
// the delta path. Locked on the paper example and a generated
// multi-platform system.
func TestAudsleyServiceBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		sys  func(t *testing.T) *model.System
		// probeCeiling locks the oracle traffic of the search: a
		// regression that stops sharing probes (or probes more) trips
		// it.
		probeCeiling int64
	}{
		{"paper", func(t *testing.T) *model.System { return paperSystem() }, 30},
		{"gen-multi-platform", multiPlatformSystem, 120},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warmSys, coldSys := tc.sys(t), tc.sys(t)

			warm := service.New(service.Options{Shards: 1})
			resWarm, okWarm, err := AudsleyContext(context.Background(), warmSys, AudsleyOptions{Service: warm})
			if err != nil {
				t.Fatal(err)
			}
			resCold, okCold, err := AudsleyContext(context.Background(), coldSys, AudsleyOptions{Service: coldService()})
			if err != nil {
				t.Fatal(err)
			}
			if okWarm != okCold {
				t.Fatalf("ok: warm %v != cold %v", okWarm, okCold)
			}
			assertSameAssignment(t, warmSys, coldSys, resWarm, resCold)

			// The installed assignment must reproduce the returned
			// result on an independent engine, bit for bit.
			verify, err := analysis.NewEngine(analysis.Options{}).Analyze(warmSys)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(verify.Tasks, resWarm.Tasks) {
				t.Fatalf("independent analysis of the installed assignment differs from the returned result")
			}

			st := warm.Stats()
			if st.Hits+st.Misses != st.Queries {
				t.Fatalf("stats inconsistent: hits %d + misses %d != queries %d", st.Hits, st.Misses, st.Queries)
			}
			if st.Queries > tc.probeCeiling {
				t.Errorf("probe count %d above the locked ceiling %d", st.Queries, tc.probeCeiling)
			}
			if st.Hits == 0 {
				t.Errorf("stats = %+v: no probe was answered by the memo", st)
			}
			if st.DeltaHits == 0 || st.RoundsSaved <= 0 {
				t.Errorf("stats = %+v: the one-priority-apart probes never rode the incremental path", st)
			}
			t.Logf("%s: %d probes, %d memo hits, %d delta hits, %d task-rounds saved",
				tc.name, st.Queries, st.Hits, st.DeltaHits, st.RoundsSaved)
		})
	}
}

// TestHOPAServiceBitIdentical: same contract for the HOPA search.
func TestHOPAServiceBitIdentical(t *testing.T) {
	warmSys, coldSys := paperSystem(), paperSystem()

	warm := service.New(service.Options{Shards: 1})
	resWarm, err := HOPAContext(context.Background(), warmSys, HOPAOptions{Service: warm})
	if err != nil {
		t.Fatal(err)
	}
	resCold, err := HOPAContext(context.Background(), coldSys, HOPAOptions{Service: coldService()})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssignment(t, warmSys, coldSys, resWarm, resCold)

	st := warm.Stats()
	if st.Hits+st.Misses != st.Queries {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("stats = %+v: HOPA's converged rounds should re-visit memoised assignments", st)
	}
}

// TestAssignPolicies: the dispatcher runs every policy, installs an
// assignment, and agrees with the direct entry points.
func TestAssignPolicies(t *testing.T) {
	for _, p := range Policies() {
		sys := paperSystem()
		res, ok, err := Assign(context.Background(), sys, p, AssignOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !ok || !res.Schedulable {
			t.Errorf("%s: paper example should stay schedulable (ok=%v)", p, ok)
		}
	}
	if _, _, err := Assign(context.Background(), paperSystem(), Policy("bogus"), AssignOptions{}); err == nil {
		t.Errorf("unknown policy accepted")
	}
}

// TestSearchCancellation: a cancelled context aborts both searches —
// including against a warm service, where every probe would otherwise
// be a memo hit that never observes the context.
func TestSearchCancellation(t *testing.T) {
	svc := service.New(service.Options{Shards: 1})
	// Warm the memo with a full search.
	if _, _, err := AudsleyContext(context.Background(), paperSystem(), AudsleyOptions{Service: svc}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := AudsleyContext(ctx, paperSystem(), AudsleyOptions{Service: svc}); !errors.Is(err, context.Canceled) {
		t.Fatalf("audsley: err = %v, want context.Canceled", err)
	}
	if _, err := HOPAContext(ctx, paperSystem(), HOPAOptions{Service: svc}); !errors.Is(err, context.Canceled) {
		t.Fatalf("hopa: err = %v, want context.Canceled", err)
	}
	if _, _, err := Assign(ctx, paperSystem(), PolicyRM, AssignOptions{Service: svc}); !errors.Is(err, context.Canceled) {
		t.Fatalf("assign rm: err = %v, want context.Canceled", err)
	}
}

// TestScoreOfTieBreak: among unschedulable candidates the documented
// tie-break must hold — the smallest worst normalised overshoot wins,
// unbounded responses rank below every bounded miss, and fewer
// unbounded chains beat more.
func TestScoreOfTieBreak(t *testing.T) {
	mk := func(worsts ...float64) *analysis.Result {
		res := &analysis.Result{
			System: &model.System{Platforms: []platform.Params{platform.Dedicated()}},
		}
		for _, w := range worsts {
			res.System.Transactions = append(res.System.Transactions,
				model.Transaction{Period: 10, Deadline: 10, Tasks: []model.Task{{WCET: 1, BCET: 1}}})
			res.Tasks = append(res.Tasks, []analysis.TaskResult{{Worst: w}})
		}
		return res
	}
	inf := math.Inf(1)

	sched1 := mk(5, 8)     // schedulable, min slack 0.2
	miss1 := mk(5, 12)     // missed by 20%
	miss2 := mk(5, 14)     // missed by 40%
	unb1 := mk(5, inf)     // one unbounded chain, healthy finite chain
	unb1b := mk(inf, 10.5) // one unbounded chain, finite chain missing too
	unb2 := mk(inf, inf)   // two unbounded chains

	order := []*analysis.Result{sched1, miss1, miss2, unb1, unb1b, unb2}
	for i := 0; i+1 < len(order); i++ {
		if !(scoreOf(order[i]) > scoreOf(order[i+1])) {
			t.Errorf("score order violated at %d: %v !> %v", i, scoreOf(order[i]), scoreOf(order[i+1]))
		}
	}

	// Astronomic finite overshoots must not cross the penalty bands:
	// any bounded assignment still outranks any diverging one, and one
	// diverging chain still outranks two, however bad the finite
	// chains look.
	hugeMiss := mk(5, 1e12)  // bounded, overshoot ~1e11 deadlines
	unbHuge := mk(inf, 1e12) // one unbounded + the same overshoot
	if !(scoreOf(hugeMiss) > scoreOf(unb1)) {
		t.Errorf("bounded huge miss %v ranked below a diverging assignment %v", scoreOf(hugeMiss), scoreOf(unb1))
	}
	if !(scoreOf(unb1b) > scoreOf(unb2)) || !(scoreOf(unbHuge) > scoreOf(unb2)) {
		t.Errorf("one diverging chain must outrank two: %v, %v vs %v", scoreOf(unb1b), scoreOf(unbHuge), scoreOf(unb2))
	}
}
