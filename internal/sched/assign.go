package sched

import (
	"context"
	"fmt"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/service"
)

// Policy selects a priority-assignment policy for Assign.
type Policy string

// The selectable policies, cheapest first: the two closed-form
// monotonic rankings, the HOPA deadline-distribution heuristic, and
// the Audsley-style optimal (per-platform, bottom-up) search.
const (
	PolicyRM      Policy = "rm"
	PolicyDM      Policy = "dm"
	PolicyHOPA    Policy = "hopa"
	PolicyAudsley Policy = "audsley"
)

// Policies lists every selectable policy, in the order the CLI and the
// experiments present them.
func Policies() []Policy {
	return []Policy{PolicyRM, PolicyDM, PolicyHOPA, PolicyAudsley}
}

// AssignOptions tunes Assign.
type AssignOptions struct {
	// Analysis configures the holistic oracle (and the verdict
	// analysis of the closed-form policies).
	Analysis analysis.Options
	// Iterations bounds HOPA's deadline-redistribution rounds; 0
	// selects the HOPA default. Ignored by the other policies.
	Iterations int
	// Service, when non-nil, is the analysis service all oracle
	// traffic routes through; see HOPAOptions.Service and
	// AudsleyOptions.Service. When nil, a private single-shard service
	// serves the one call.
	Service *service.Service
}

// Assign applies one priority-assignment policy to sys, overwriting
// its task priorities in place, and returns the holistic analysis of
// the installed assignment plus whether it is schedulable. The
// closed-form policies (rm, dm) always install their ranking; the
// searches (hopa, audsley) install the best assignment they found even
// when it is not schedulable. All analysis traffic runs through one
// probe session on AssignOptions.Service, so back-to-back Assign calls
// sharing a service share its memo and engine pool; treat the returned
// result as read-only.
func Assign(ctx context.Context, sys *model.System, policy Policy, opt AssignOptions) (*analysis.Result, bool, error) {
	switch policy {
	case PolicyRM, PolicyDM:
		if err := sys.Validate(); err != nil {
			return nil, false, err
		}
		if policy == PolicyRM {
			RateMonotonic(sys)
		} else {
			DeadlineMonotonic(sys)
		}
		sess := sessionFor(opt.Service)
		if err := ctx.Err(); err != nil {
			return nil, false, fmt.Errorf("sched: %w", err)
		}
		res, err := sess.AnalyzeOptions(ctx, sys, opt.Analysis)
		if err != nil {
			return nil, false, err
		}
		return res, res.Schedulable, nil
	case PolicyHOPA:
		res, err := HOPAContext(ctx, sys, HOPAOptions{
			Iterations: opt.Iterations,
			Analysis:   opt.Analysis,
			Service:    opt.Service,
		})
		if err != nil {
			return nil, false, err
		}
		return res, res.Schedulable, nil
	case PolicyAudsley:
		return AudsleyContext(ctx, sys, AudsleyOptions{
			Analysis: opt.Analysis,
			Service:  opt.Service,
		})
	default:
		return nil, false, fmt.Errorf("sched: unknown policy %q (want rm, dm, hopa or audsley)", policy)
	}
}
