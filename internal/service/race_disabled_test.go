//go:build !race

package service_test

// raceEnabled gates the AllocsPerRun tests; see race_enabled_test.go.
const raceEnabled = false
