package service_test

import (
	"context"
	"sync"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/model"
	"hsched/internal/service"
)

// TestServiceHitZeroAllocs locks the in-process memo-hit path at zero
// allocations per query: fingerprint (pooled encode buffer), stripe
// lookup, CLOCK touch and atomic counters all run allocation-free.
func TestServiceHitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are meaningless")
	}
	ctx := context.Background()
	sys := testSystem(t, 7)
	svc := service.New(service.Options{Analysis: analysis.Options{Workers: 1}})
	// First call misses and installs; a few more warm the buffer pools.
	for i := 0; i < 8; i++ {
		if _, err := svc.Analyze(ctx, sys); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := svc.Analyze(ctx, sys); err != nil {
			t.Fatal(err)
		}
	})
	// Per-op allocation counts are integral, so a real regression reads
	// ≥ 1.0; a rare mid-run GC emptying a sync.Pool reads ≪ 1.
	if allocs >= 1 {
		t.Errorf("memo hit allocates %.2f/op, want 0", allocs)
	}
}

// TestServiceStripeStress hammers a single stripe (Shards: 1, so every
// query contends on one mutex) with mixed traffic — memo hits that set
// CLOCK bits, cold misses that evict past the small capacity, and
// colliding cold queries that ride the in-flight dedup path — and
// checks verdict correctness and counter balance afterwards. Its real
// assertions fire under -race: the hit path touches entries and bumps
// counters outside the stripe mutex, the evictor rotates touched
// entries under it, and the seed pool is scanned cross-stripe, all of
// which must be clean.
func TestServiceStripeStress(t *testing.T) {
	ctx := context.Background()
	const (
		population = 16
		hot        = 4 // systems 0..3 stay resident and keep getting touched
		goroutines = 8
		iters      = 150
	)
	systems := make([]*model.System, population)
	want := make([]bool, population)
	ref := service.New(service.Options{Shards: 1, Analysis: analysis.Options{Workers: 1}})
	for k := range systems {
		systems[k] = testSystem(t, int64(500+k))
		res, err := ref.Analyze(ctx, systems[k])
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res.Schedulable
	}

	svc := service.New(service.Options{Shards: 1, Capacity: 6, Analysis: analysis.Options{Workers: 1}})
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var k int
				switch {
				case i%3 != 0:
					// Hot set: memo hits touching CLOCK bits.
					k = (i + g) % hot
				case i%2 == 0:
					// Cold tail: misses and evictions (capacity 6 < 16).
					k = hot + (i*7+g)%(population-hot)
				default:
					// All goroutines converge on the same cold key in
					// the same window: in-flight dedup traffic.
					k = hot + (i/15)%(population-hot)
				}
				res, err := svc.Analyze(ctx, systems[k])
				if err != nil {
					errs[g] = err
					return
				}
				if res.Schedulable != want[k] {
					t.Errorf("system %d: got schedulable=%v, want %v", k, res.Schedulable, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Queries != goroutines*iters {
		t.Fatalf("Queries = %d, want %d", st.Queries, goroutines*iters)
	}
	if st.Hits+st.Misses != st.Queries {
		t.Fatalf("stats = %+v: Hits+Misses != Queries at quiescence", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v: capacity %d over %d systems must evict", st, 6, population)
	}
}
