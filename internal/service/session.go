package service

import (
	"context"
	"sync"

	"hsched/internal/analysis"
	"hsched/internal/model"
)

// SessionStats is a snapshot of one session's probe counters. Every
// probe is counted exactly once as either a memo hit (answered without
// running an analysis — from the verdict memo or by waiting on a
// concurrent identical query) or an executed analysis, of which
// DeltaHits ran incrementally: MemoHits + Executed == Probes.
// Like Stats, the json tags are a stable wire contract — the HTTP
// server's per-session stats endpoint emits them and remote probe
// clients assert on them.
type SessionStats struct {
	// Probes is the number of Analyze* calls issued through the
	// session.
	Probes int64 `json:"probes"`
	// MemoHits counts probes answered without running an analysis.
	MemoHits int64 `json:"memo_hits"`
	// Executed counts probes that ran (or errored in) an analysis on a
	// resident engine.
	Executed int64 `json:"executed"`
	// DeltaHits counts the subset of Executed that rode the
	// incremental path, seeded by the session's pinned previous result
	// (or, for the first probes, a delta-pool near-match).
	DeltaHits int64 `json:"delta_hits"`
	// RoundsSaved accumulates the per-task response-time computations
	// the session's delta hits skipped (analysis.DeltaInfo.
	// TaskRoundsSaved summed over all delta hits).
	RoundsSaved int64 `json:"rounds_saved"`
}

// Session is a pinned-seed probe handle on a Service, for search loops
// that analyse chains of one-edit-apart systems: priority-assignment
// searches probing one priority move at a time (package sched), the
// design search moving one platform's bandwidth (package design), an
// admission controller trialling one transaction.
//
// A plain Service query finds its incremental baseline by scanning the
// shared delta-seed pool, so whether a probe runs incrementally
// depends on what other traffic evicted — delta-pool luck. A Session
// instead holds the caller's previous *Result (with its replay state
// intact) as the explicit seed of the next probe, so chained one-edit
// probes ride Engine.AnalyzeFrom deterministically. Results are
// bit-identical either way; only the work profile changes.
//
// Sessions are cheap (one pointer plus counters): create one per
// search, not one per process. A session's probes flow through the
// owning service's memo, in-flight table and engine pool, and count
// into ServiceStats like any other query; SessionStats additionally
// attributes this session's share. Like the Service itself a Session
// is safe for concurrent use, but its pinned seed is a single slot —
// concurrent probes race to pin it, so chained-edit determinism is
// only guaranteed for sequential probes (the search-loop shape it
// exists for).
//
// The pinned seed keeps one full Result (with replay history) alive;
// sessions on a service with the delta path disabled
// (Options.DeltaWindow < 0) never pin — probes still memoise, they
// just run cold on a miss.
type Session struct {
	svc *Service

	mu    sync.Mutex
	seed  *analysis.Result
	stats SessionStats
}

// NewSession returns a probe session on the service. See Session.
func (s *Service) NewSession() *Session { return &Session{svc: s} }

// Analyze probes the holistic dynamic-offset analysis of sys under the
// service's default options, seeding the incremental path with the
// session's previous result.
func (ss *Session) Analyze(ctx context.Context, sys *model.System) (*analysis.Result, error) {
	return ss.svc.analyze(ctx, sys, ss.svc.opt.Analysis, false, ss)
}

// AnalyzeOptions is Analyze with per-probe analysis options. A session
// probed under several option sets pins only the most recent result;
// the engine re-verifies seed compatibility (same semantics-affecting
// options), so mixing option sets costs delta hits, never correctness.
func (ss *Session) AnalyzeOptions(ctx context.Context, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return ss.svc.analyze(ctx, sys, opt, false, ss)
}

// AnalyzeFingerprinted is AnalyzeOptions for callers that already hold
// sys.Fingerprint() — typically the SHA-256 of the probe's canonical
// wire bytes — and must not pay a second encoding-and-hash pass (see
// Service.AnalyzeFingerprinted).
func (ss *Session) AnalyzeFingerprinted(ctx context.Context, fp model.Fingerprint, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return ss.svc.analyzeFP(ctx, fp, sys, opt, false, ss)
}

// Stats returns a snapshot of the session's probe counters.
func (ss *Session) Stats() SessionStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.stats
}

// Drop unpins the session's seed, releasing the replay history it
// keeps alive. The next probe falls back to the service's delta-seed
// pool (or runs cold). Counters are preserved.
func (ss *Session) Drop() {
	ss.mu.Lock()
	ss.seed = nil
	ss.mu.Unlock()
}

// currentSeed returns the pinned seed, or nil. The engine re-checks
// replay soundness (option key, structural overlap) on every use, so a
// stale or mismatched seed degrades to a cold run, never to a wrong
// result.
func (ss *Session) currentSeed() *analysis.Result {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.seed
}

// noteProbe counts one probe issued through the session.
func (ss *Session) noteProbe() {
	ss.mu.Lock()
	ss.stats.Probes++
	ss.mu.Unlock()
}

// noteHit counts one probe answered without running an analysis.
func (ss *Session) noteHit() {
	ss.mu.Lock()
	ss.stats.MemoHits++
	ss.mu.Unlock()
}

// noteExecuted records one executed analysis: its delta profile (when
// it ran incrementally) and, when the result carries replay state, the
// new pinned seed. full is the un-stripped result; it may be nil on
// error.
func (ss *Session) noteExecuted(full *analysis.Result) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.stats.Executed++
	if full == nil {
		return
	}
	if full.Delta != nil {
		ss.stats.DeltaHits++
		ss.stats.RoundsSaved += int64(full.Delta.TaskRoundsSaved)
	}
	if full.HasReplayState() {
		ss.seed = full
	}
}
