package service_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/experiments"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/service"
)

func testSystem(t testing.TB, seed int64) *model.System {
	t.Helper()
	sys, err := gen.System(gen.Config{
		Seed: seed, Platforms: 2, Transactions: 3, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 300, Utilization: 0.45,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return sys
}

// sameAnalysis asserts two results are bit-identical in every per-task
// bound and in the verdict fields.
func sameAnalysis(t *testing.T, got, want *analysis.Result) {
	t.Helper()
	if got.Schedulable != want.Schedulable || got.Converged != want.Converged || got.Iterations != want.Iterations {
		t.Fatalf("verdict mismatch: got {sched %v conv %v iters %d}, want {sched %v conv %v iters %d}",
			got.Schedulable, got.Converged, got.Iterations, want.Schedulable, want.Converged, want.Iterations)
	}
	for i := range want.Tasks {
		for j := range want.Tasks[i] {
			if got.Tasks[i][j] != want.Tasks[i][j] {
				t.Fatalf("task (%d,%d): got %+v, want %+v", i, j, got.Tasks[i][j], want.Tasks[i][j])
			}
		}
	}
}

func TestServiceHitMatchesFreshEngine(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t, 1)
	want, err := analysis.NewEngine(analysis.Options{Workers: 1}).Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}

	svc := service.New(service.Options{Shards: 2, Analysis: analysis.Options{Workers: 1}})
	first, err := svc.Analyze(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Analyze(ctx, sys.Clone()) // value-identical ⇒ same fingerprint
	if err != nil {
		t.Fatal(err)
	}
	sameAnalysis(t, first, want)
	sameAnalysis(t, second, want)
	if first != second {
		t.Fatalf("memo hit should return the cached *Result")
	}
	st := svc.Stats()
	if st.Queries != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 queries / 1 hit / 1 miss", st)
	}
}

// TestServiceConcurrencyHammer drives one Service from many goroutines
// (run under -race in CI) over a small population of systems and
// option variants, asserting every answer is bit-identical to a fresh
// single-engine analysis and that the counters balance.
func TestServiceConcurrencyHammer(t *testing.T) {
	ctx := context.Background()
	const nSystems, goroutines, perG = 4, 8, 48

	systems := make([]*model.System, nSystems)
	for k := range systems {
		systems[k] = testSystem(t, int64(10+k))
	}
	variants := []analysis.Options{
		{Workers: 1},
		{Workers: 1, TightBestCase: true},
	}
	want := make(map[[2]int]*analysis.Result)
	for k, sys := range systems {
		for v, opt := range variants {
			res, err := analysis.NewEngine(opt).Analyze(sys)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]int{k, v}] = res
		}
	}

	svc := service.New(service.Options{Shards: 4})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < perG; q++ {
				k := (g + q) % nSystems
				v := q % len(variants)
				res, err := svc.AnalyzeOptions(ctx, systems[k], variants[v])
				if err != nil {
					errs <- err
					return
				}
				ref := want[[2]int{k, v}]
				if res.Schedulable != ref.Schedulable || res.Iterations != ref.Iterations {
					errs <- fmt.Errorf("goroutine %d query %d: verdict mismatch", g, q)
					return
				}
				for i := range ref.Tasks {
					for j := range ref.Tasks[i] {
						if res.Tasks[i][j] != ref.Tasks[i][j] {
							errs <- fmt.Errorf("goroutine %d query %d task (%d,%d): %+v != %+v",
								g, q, i, j, res.Tasks[i][j], ref.Tasks[i][j])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	total := int64(goroutines * perG)
	if st.Queries != total {
		t.Fatalf("queries = %d, want %d", st.Queries, total)
	}
	if st.Hits+st.Misses != st.Queries {
		t.Fatalf("hits (%d) + misses (%d) != queries (%d)", st.Hits, st.Misses, st.Queries)
	}
	// Ample capacity and no failures: each distinct (system, options)
	// key runs its analysis exactly once, leader-deduplicated.
	if distinct := int64(nSystems * len(variants)); st.Misses != distinct {
		t.Fatalf("misses = %d, want %d (one analysis per distinct key)", st.Misses, distinct)
	}
}

func TestServiceNormalisedOptionsShareEntry(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t, 2)
	svc := service.New(service.Options{Shards: 1})

	if _, err := svc.AnalyzeOptions(ctx, sys, analysis.Options{}); err != nil {
		t.Fatal(err)
	}
	explicit := analysis.Options{
		MaxScenarios:  1 << 20,
		Epsilon:       1e-9,
		MaxIterations: 1000,
		MaxInner:      1_000_000,
	}
	if _, err := svc.AnalyzeOptions(ctx, sys, explicit); err != nil {
		t.Fatal(err)
	}
	// Workers changes scheduling, never results: excluded from the key.
	if _, err := svc.AnalyzeOptions(ctx, sys, analysis.Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v: zero-value, explicit-default and Workers-only-different options should share one memo entry", st)
	}
}

func TestServiceStaticAndDynamicAreDistinct(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t, 3)
	svc := service.New(service.Options{Shards: 1})
	if _, err := svc.Analyze(ctx, sys); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AnalyzeStatic(ctx, sys); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v: static and holistic analyses must not share a memo entry", st)
	}
}

func TestServiceLRUEviction(t *testing.T) {
	ctx := context.Background()
	svc := service.New(service.Options{Shards: 1, Capacity: 2})
	a, b, c := testSystem(t, 4), testSystem(t, 5), testSystem(t, 6)
	for _, sys := range []*model.System{a, b, c} { // c evicts a
		if _, err := svc.Analyze(ctx, sys); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Analyze(ctx, a); err != nil { // re-miss, evicts b
		t.Fatal(err)
	}
	if _, err := svc.Analyze(ctx, c); err != nil { // still resident
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Misses != 4 || st.Hits != 1 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 4 misses / 1 hit / 2 evictions", st)
	}
}

func TestServiceCacheDisabled(t *testing.T) {
	ctx := context.Background()
	svc := service.New(service.Options{Shards: 1, Capacity: -1})
	sys := testSystem(t, 7)
	for i := 0; i < 3; i++ {
		if _, err := svc.Analyze(ctx, sys); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v: Capacity < 0 must disable memoisation", st)
	}
}

func TestServiceContextCancelled(t *testing.T) {
	sys := testSystem(t, 8)
	svc := service.New(service.Options{Shards: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Analyze(ctx, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A cancelled analysis must not poison the memo: the next live
	// query runs and succeeds.
	res, err := svc.Analyze(context.Background(), sys)
	if err != nil || res == nil {
		t.Fatalf("query after cancellation: res=%v err=%v", res, err)
	}
	st := svc.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v: errored analyses must not be cached", st)
	}
}

func TestServiceRecorderBypassesMemo(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t, 9)
	svc := service.New(service.Options{Shards: 1})
	fired := 0
	opt := analysis.Options{Workers: 1, Recorder: func(int, *analysis.Result) { fired++ }}
	if _, err := svc.AnalyzeOptions(ctx, sys, opt); err != nil {
		t.Fatal(err)
	}
	first := fired
	if first == 0 {
		t.Fatal("recorder never fired")
	}
	if _, err := svc.AnalyzeOptions(ctx, sys, opt); err != nil {
		t.Fatal(err)
	}
	if fired != 2*first {
		t.Fatalf("recorder fired %d times after two queries, want %d: recorder queries must not be served from the memo", fired, 2*first)
	}
	if st := svc.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want two misses", st)
	}
}

// TestServiceDeltaPath: a query one transaction away from a resident
// result is routed through the incremental analysis — counted as a
// DeltaHit with RoundsSaved accumulated — and still answers with the
// exact bits a fresh cold engine produces.
func TestServiceDeltaPath(t *testing.T) {
	ctx := context.Background()
	// The paper example with its background load retuned: the edit
	// provably reaches only τ4,1, so six of seven tasks replay.
	base := experiments.PaperSystem()
	mut := base.Clone()
	mut.Transactions[3].Tasks[0].WCET = 7.5

	svc := service.New(service.Options{Shards: 2, Analysis: analysis.Options{Workers: 1}})
	if _, err := svc.Analyze(ctx, base); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Analyze(ctx, mut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := analysis.NewEngine(analysis.Options{Workers: 1}).Analyze(mut)
	if err != nil {
		t.Fatal(err)
	}
	sameAnalysis(t, got, want)

	st := svc.Stats()
	if st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses", st)
	}
	if st.DeltaHits < 1 {
		t.Fatalf("stats = %+v: the near-match query should have run incrementally", st)
	}
	if st.RoundsSaved <= 0 {
		t.Fatalf("stats = %+v: a delta hit must save task-rounds", st)
	}

	// Service-returned results are stripped of replay history (only
	// the bounded seed pool keeps the full copies), so a large memo
	// never pins unreachable histories.
	if got.HasReplayState() {
		t.Fatalf("service-returned result still carries replay state")
	}

	// Re-querying either system is a plain memo hit, not a delta hit.
	if _, err := svc.Analyze(ctx, mut); err != nil {
		t.Fatal(err)
	}
	if st2 := svc.Stats(); st2.DeltaHits != st.DeltaHits || st2.Hits != st.Hits+1 {
		t.Fatalf("stats = %+v: repeat query must hit the memo", st2)
	}

	// A second single-transaction step chains off the previous
	// mutation's seed — the full-history copy the pool retained.
	mut2 := mut.Clone()
	mut2.Transactions[3].Tasks[0].WCET = 7.25
	if _, err := svc.Analyze(ctx, mut2); err != nil {
		t.Fatal(err)
	}
	if st3 := svc.Stats(); st3.DeltaHits < st.DeltaHits+1 {
		t.Fatalf("stats = %+v: chained mutation must delta-hit off the pooled seed", st3)
	}
}

// TestServiceDeltaDisabled: DeltaWindow < 0 turns the seed pool off.
func TestServiceDeltaDisabled(t *testing.T) {
	ctx := context.Background()
	base := experiments.PaperSystem()
	mut := base.Clone()
	mut.Transactions[3].Tasks[0].WCET = 7.5 // would delta-hit with the pool on
	svc := service.New(service.Options{Shards: 1, DeltaWindow: -1, Analysis: analysis.Options{Workers: 1}})
	if _, err := svc.Analyze(ctx, base); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Analyze(ctx, mut); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.DeltaHits != 0 {
		t.Fatalf("stats = %+v: DeltaWindow < 0 must disable the delta path", st)
	}
}

// TestServiceDeltaDistinctOptions: a resident result computed under
// different analysis options must not seed the query (the trajectories
// differ), and the engine-level fallback keeps the answer correct.
func TestServiceDeltaDistinctOptions(t *testing.T) {
	ctx := context.Background()
	base := experiments.PaperSystem()
	mut := base.Clone()
	mut.Transactions[3].Tasks[0].WCET = 7.5
	svc := service.New(service.Options{Shards: 1})
	if _, err := svc.AnalyzeOptions(ctx, base, analysis.Options{Workers: 1, TightBestCase: true}); err != nil {
		t.Fatal(err)
	}
	got, err := svc.AnalyzeOptions(ctx, mut, analysis.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := analysis.NewEngine(analysis.Options{Workers: 1}).Analyze(mut)
	if err != nil {
		t.Fatal(err)
	}
	sameAnalysis(t, got, want)
	if st := svc.Stats(); st.DeltaHits != 0 {
		t.Fatalf("stats = %+v: options mismatch must not delta-seed", st)
	}
}

// TestServiceCostWeightedEviction: an expensive exact-analysis verdict
// survives a burst of cheap insertions that would displace it under
// pure LRU — the eviction policy weighs the measured recomputation
// cost of the oldest entries.
func TestServiceCostWeightedEviction(t *testing.T) {
	ctx := context.Background()
	const capacity = 4
	svc := service.New(service.Options{Shards: 1, Capacity: capacity, Analysis: analysis.Options{Workers: 1}})

	// One expensive entry first: a single-platform high-interference
	// system under the exact analysis — the shape whose scenario space
	// survives even the branch-and-bound bounds, keeping it orders of
	// magnitude above the approximate queries.
	big, err := gen.System(gen.Config{
		Seed: 99, Platforms: 1, Transactions: 6, ChainLen: 5,
		PeriodMin: 10, PeriodMax: 1000, Utilization: 0.4,
		AlphaMin: 0.4, AlphaMax: 0.9, RandomPriorities: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := analysis.Options{Workers: 1, Exact: true}
	if _, err := svc.AnalyzeOptions(ctx, big, exact); err != nil {
		t.Fatal(err)
	}

	// A burst of cheap approximate queries fills the memo past
	// capacity; under pure LRU the exact entry would be the first
	// casualty.
	for k := 0; k < capacity+2; k++ {
		if _, err := svc.Analyze(ctx, testSystem(t, int64(30+k))); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v: the burst must have evicted", st)
	}

	misses := st.Misses
	if _, err := svc.AnalyzeOptions(ctx, big, exact); err != nil {
		t.Fatal(err)
	}
	if st = svc.Stats(); st.Misses != misses {
		t.Fatalf("stats = %+v: the expensive exact verdict was evicted by cheap entries", st)
	}
}

func TestServiceReset(t *testing.T) {
	ctx := context.Background()
	svc := service.New(service.Options{Shards: 1})
	sys := testSystem(t, 12)
	if _, err := svc.Analyze(ctx, sys); err != nil {
		t.Fatal(err)
	}
	svc.Reset()
	if _, err := svc.Analyze(ctx, sys); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v: Reset must drop the memo (counters preserved)", st)
	}
}

// TestServiceScenariosPruned locks the end-to-end flow of the exact
// sweep's prune counters: an exact query's analysis reports its pruned
// scenarios and subtrees on the Result, the service accumulates both
// in Stats, and a memo hit — which runs no analysis — adds nothing.
func TestServiceScenariosPruned(t *testing.T) {
	svc := service.New(service.Options{Shards: 1, Analysis: analysis.Options{Exact: true, Workers: 1}})
	sys := experiments.PaperSystem()
	res, err := svc.Analyze(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosPruned <= 0 {
		t.Fatalf("exact analysis pruned %d scenarios, want > 0", res.ScenariosPruned)
	}
	if res.SubtreesPruned <= 0 {
		t.Fatalf("exact analysis pruned %d subtrees, want > 0", res.SubtreesPruned)
	}
	st := svc.Stats()
	if st.ScenariosPruned != res.ScenariosPruned {
		t.Fatalf("service stats pruned %d, result reports %d", st.ScenariosPruned, res.ScenariosPruned)
	}
	if st.SubtreesPruned != res.SubtreesPruned {
		t.Fatalf("service stats subtrees %d, result reports %d", st.SubtreesPruned, res.SubtreesPruned)
	}
	if _, err := svc.Analyze(context.Background(), sys); err != nil {
		t.Fatal(err)
	}
	after := svc.Stats()
	if after.Hits != st.Hits+1 || after.ScenariosPruned != st.ScenariosPruned || after.SubtreesPruned != st.SubtreesPruned {
		t.Fatalf("memo hit changed the pruned counters: %+v -> %+v", st, after)
	}
}
