package service_test

import (
	"context"
	"sync/atomic"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
	"hsched/internal/service"
)

func benchSystem(b *testing.B) *model.System {
	b.Helper()
	sys, err := gen.System(gen.Config{
		Seed: 11, Platforms: 3, Transactions: 12, ChainLen: 4,
		PeriodMin: 10, PeriodMax: 1000, Utilization: 0.4,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkServiceHit measures a memoised query: fingerprint + memo
// lookup, no analysis. Compare against BenchmarkServiceMiss for the
// memo's win on repeated queries (~6× as of PR 3 — it was ~30× in
// PR 2, before the miss path itself got ~7× faster).
func BenchmarkServiceHit(b *testing.B) {
	ctx := context.Background()
	sys := benchSystem(b)
	svc := service.New(service.Options{Analysis: analysis.Options{Workers: 1}})
	if _, err := svc.Analyze(ctx, sys); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Analyze(ctx, sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceMiss measures the cold path: memoisation disabled,
// so every query runs a full analysis on the shard's resident engine
// (the warm-engine cost, i.e. the cheapest possible non-memoised
// analysis — the hit/miss ratio is therefore a lower bound on the
// memo's real-world win).
func BenchmarkServiceMiss(b *testing.B) {
	ctx := context.Background()
	sys := benchSystem(b)
	svc := service.New(service.Options{Capacity: -1, Analysis: analysis.Options{Workers: 1}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Analyze(ctx, sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceHitParallel measures the pure contended hit path:
// every query after warm-up is a memo hit, issued from 4 goroutines
// per P (16 at -cpu 4) over a small population so the stripes all see
// traffic. This is the benchmark the lock-striping work is gated on —
// run it as
//
//	GOMAXPROCS=4 go test -run=NONE -bench=ServiceHitParallel -cpu 4 ./internal/service
//
// before and after a change to the hit path.
func BenchmarkServiceHitParallel(b *testing.B) {
	ctx := context.Background()
	systems := make([]*model.System, 8)
	for k := range systems {
		sys, err := gen.System(gen.Config{
			Seed: int64(20 + k), Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 20, PeriodMax: 300, Utilization: 0.45,
			AlphaMin: 0.4, AlphaMax: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
		systems[k] = sys
	}
	svc := service.New(service.Options{Shards: 4, Analysis: analysis.Options{Workers: 1}})
	for _, sys := range systems {
		if _, err := svc.Analyze(ctx, sys); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	var firstErr atomic.Value
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			if _, err := svc.Analyze(ctx, systems[k%len(systems)]); err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			k++
		}
	})
	if err := firstErr.Load(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServiceConcurrent measures service throughput under
// contended parallel load with a high hit rate — the admission-control
// traffic shape.
func BenchmarkServiceConcurrent(b *testing.B) {
	ctx := context.Background()
	systems := make([]*model.System, 8)
	for k := range systems {
		sys, err := gen.System(gen.Config{
			Seed: int64(20 + k), Platforms: 2, Transactions: 3, ChainLen: 3,
			PeriodMin: 20, PeriodMax: 300, Utilization: 0.45,
			AlphaMin: 0.4, AlphaMax: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
		systems[k] = sys
	}
	svc := service.New(service.Options{Analysis: analysis.Options{Workers: 1}})
	b.ReportAllocs()
	b.ResetTimer()
	// b.Fatal must not be called from RunParallel's worker goroutines;
	// stage the first error and fail after the parallel section.
	var firstErr atomic.Value
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			if _, err := svc.Analyze(ctx, systems[k%len(systems)]); err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			k++
		}
	})
	if err := firstErr.Load(); err != nil {
		b.Fatal(err)
	}
}
