package service

import (
	"encoding/json"
	"reflect"
	"testing"
)

// The lowercase field names /v1/stats and `hsched bench -json` emit.
// A Go-default exported name leaking into the wire format (because a
// new field forgot its tag) breaks remote parsers silently — this test
// turns that into a loud failure.
func TestStatsJSONRoundTrip(t *testing.T) {
	in := Stats{
		Queries: 1, Hits: 2, Misses: 3, Evictions: 4,
		InflightDedups: 5, DeltaHits: 6, RoundsSaved: 7, ScenariosPruned: 8,
		SubtreesPruned: 9, InternHits: 10, InternMisses: 11, Resident: 12,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Stats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	assertLowercaseKeys(t, data, reflect.TypeOf(in), []string{
		"queries", "hits", "misses", "evictions",
		"inflight_dedups", "delta_hits", "rounds_saved", "scenarios_pruned",
		"subtrees_pruned", "intern_hits", "intern_misses", "intern_resident",
	})
}

func TestSessionStatsJSONRoundTrip(t *testing.T) {
	in := SessionStats{Probes: 1, MemoHits: 2, Executed: 3, DeltaHits: 4, RoundsSaved: 5}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SessionStats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	assertLowercaseKeys(t, data, reflect.TypeOf(in), []string{
		"probes", "memo_hits", "executed", "delta_hits", "rounds_saved",
	})
}

// assertLowercaseKeys requires the marshalled object to have exactly
// the given keys — no Go-default exported names, no extras — and the
// struct to have exactly that many fields, so adding a counter without
// extending the wire contract (and this test) fails loudly.
func assertLowercaseKeys(t *testing.T, data []byte, typ reflect.Type, want []string) {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m) != len(want) {
		t.Errorf("marshalled %d keys, want %d: %s", len(m), len(want), data)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("key %q missing from %s", k, data)
		}
	}
	if typ.NumField() != len(want) {
		t.Errorf("%s has %d fields, wire contract lists %d", typ.Name(), typ.NumField(), len(want))
	}
}
