package service

import (
	"context"
	"testing"

	"hsched/internal/gen"
	"hsched/internal/model"
)

// internTestSystem returns a fresh decoded-copy-equivalent of one
// fixed system: equal across calls, never pointer-shared.
func internTestSystem(t testing.TB) *model.System {
	t.Helper()
	sys, err := gen.System(gen.Config{
		Seed: 9, Platforms: 2, Transactions: 3, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 300, Utilization: 0.4,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestInternCollapsesDuplicates drives the 1e5-duplicate workload of
// the acceptance criteria: every decoded copy of one system collapses
// onto the first caller's pointer and the pool stays at one resident —
// the memory-stability property, asserted via stats.
func TestInternCollapsesDuplicates(t *testing.T) {
	svc := New(Options{})
	canonical, fp := svc.Intern(internTestSystem(t))
	if fp != canonical.Fingerprint() {
		t.Fatal("Intern returned a fingerprint that is not the resident's")
	}
	const dups = 100_000
	for i := 0; i < dups; i++ {
		// Each iteration simulates one freshly decoded copy.
		got, gotFP := svc.Intern(internTestSystem(t))
		if got != canonical {
			t.Fatalf("duplicate %d: got a distinct pointer", i)
		}
		if gotFP != fp {
			t.Fatalf("duplicate %d: fingerprint drifted", i)
		}
	}
	st := svc.Stats()
	if st.Resident != 1 {
		t.Fatalf("Resident = %d after %d duplicate interns, want 1", st.Resident, dups)
	}
	if st.InternMisses != 1 || st.InternHits != dups {
		t.Fatalf("InternHits/Misses = %d/%d, want %d/1", st.InternHits, st.InternMisses, dups)
	}
}

// TestInternedZeroDecode exercises the lookup-only path: a miss counts
// nothing (the caller will decode and intern, which counts it), a hit
// counts one hit and returns the resident pointer.
func TestInternedZeroDecode(t *testing.T) {
	svc := New(Options{})
	sys := internTestSystem(t)
	fp := sys.Fingerprint()

	if _, ok := svc.Interned(fp); ok {
		t.Fatal("Interned hit on an empty pool")
	}
	if st := svc.Stats(); st.InternHits != 0 || st.InternMisses != 0 {
		t.Fatalf("lookup miss counted: %+v", st)
	}

	resident := svc.InternFingerprinted(fp, sys)
	if resident != sys {
		t.Fatal("first intern did not install the argument")
	}
	got, ok := svc.Interned(fp)
	if !ok || got != resident {
		t.Fatal("Interned did not return the resident after intern")
	}
	if st := svc.Stats(); st.InternHits != 1 || st.InternMisses != 1 || st.Resident != 1 {
		t.Fatalf("counters after miss+intern+hit: %+v", st)
	}
}

// TestInternEviction asserts the pool is recency-bounded: past
// capacity the coldest resident (untouched since the last sweep, per
// the CLOCK bit) is dropped and the gauge tracks it. One stripe, so
// the whole capacity is one slice and the eviction order is exact.
func TestInternEviction(t *testing.T) {
	svc := New(Options{Shards: 1, InternCapacity: 2})
	mk := func(period float64) *model.System {
		sys := internTestSystem(t)
		sys.Transactions[0].Period = period
		return sys
	}
	a, fpA := svc.Intern(mk(100))
	svc.Intern(mk(200))
	svc.Intern(mk(300)) // evicts a
	if st := svc.Stats(); st.Resident != 2 {
		t.Fatalf("Resident = %d with capacity 2, want 2", st.Resident)
	}
	if _, ok := svc.Interned(fpA); ok {
		t.Fatal("evicted resident still resident")
	}
	// Re-interning after eviction installs anew.
	a2, _ := svc.Intern(mk(100))
	if a2 == a {
		t.Fatal("evicted pointer returned by a fresh intern (pool kept a stale reference)")
	}
}

// TestInternDisabled asserts a negative capacity turns interning off:
// arguments pass through unchanged and nothing is counted.
func TestInternDisabled(t *testing.T) {
	svc := New(Options{InternCapacity: -1})
	sys := internTestSystem(t)
	got, fp := svc.Intern(sys)
	if got != sys || fp != sys.Fingerprint() {
		t.Fatal("disabled Intern must return its argument and true fingerprint")
	}
	if _, ok := svc.Interned(fp); ok {
		t.Fatal("disabled pool reported a resident")
	}
	if st := svc.Stats(); st.InternHits != 0 || st.InternMisses != 0 || st.Resident != 0 {
		t.Fatalf("disabled pool counted: %+v", st)
	}
}

// TestAnalyzeFingerprinted asserts the fingerprint-threaded entry
// point joins the ladder exactly like AnalyzeOptions: same result,
// memo hits across the two spellings, and the session variant pins
// seeds like its plain counterpart.
func TestAnalyzeFingerprinted(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})
	sys, fp := svc.Intern(internTestSystem(t))

	res1, err := svc.AnalyzeFingerprinted(ctx, fp, sys, svc.opt.Analysis, false)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := svc.Analyze(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Fatal("AnalyzeFingerprinted and Analyze did not share one memo entry")
	}
	if st := svc.Stats(); st.Queries != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after fp+plain query: %+v", st)
	}

	stat, err := svc.AnalyzeFingerprinted(ctx, fp, sys, svc.opt.Analysis, true)
	if err != nil {
		t.Fatal(err)
	}
	if stat == res1 {
		t.Fatal("static=true shared the dynamic memo entry")
	}

	sess := svc.NewSession()
	if _, err := sess.AnalyzeFingerprinted(ctx, fp, sys, svc.opt.Analysis); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Probes != 1 || st.MemoHits != 1 {
		t.Fatalf("session stats after memoised fp probe: %+v", st)
	}
}
