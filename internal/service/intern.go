package service

import (
	"container/list"
	"sync"

	"hsched/internal/model"
)

// internPool is the fingerprint-keyed pool of canonical resident
// systems: every decoded copy of one system collapses to a single
// *model.System shared by the memo, delta-seed and session paths, so a
// million clients posting the same platform pin one copy instead of a
// million. Residents are shared and therefore read-only by contract —
// only callers that never mutate their systems (the HTTP decode paths)
// may intern; search loops that edit systems in place (sched.Assign,
// design.Minimize) must not.
//
// The pool is LRU-bounded; eviction only drops the pool's reference,
// so a resident still held by a caller or a memoised Result simply
// stops being shared with future requests.
type internPool struct {
	mu    sync.Mutex
	lru   *list.List // of *internEntry; front = most recently used
	index map[model.Fingerprint]*list.Element
	cap   int

	hits, misses int64
}

type internEntry struct {
	fp  model.Fingerprint
	sys *model.System
}

func newInternPool(capacity int) *internPool {
	if capacity <= 0 {
		return nil
	}
	return &internPool{
		lru:   list.New(),
		index: make(map[model.Fingerprint]*list.Element),
		cap:   capacity,
	}
}

// lookup returns the resident system for fp, if any, counting a hit.
// A miss counts nothing: the caller will decode and come back through
// intern, which does the miss accounting — so each request is counted
// exactly once however it splits the lookup.
func (p *internPool) lookup(fp model.Fingerprint) (*model.System, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.index[fp]
	if !ok {
		return nil, false
	}
	p.lru.MoveToFront(el)
	p.hits++
	return el.Value.(*internEntry).sys, true
}

// intern returns the canonical resident system for fp, installing sys
// as the resident if none exists. A concurrent duplicate that lost the
// race to install still gets the winner's pointer (and counts as a
// hit), so equal fingerprints always yield one pointer.
func (p *internPool) intern(fp model.Fingerprint, sys *model.System) *model.System {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.index[fp]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		return el.Value.(*internEntry).sys
	}
	p.misses++
	p.index[fp] = p.lru.PushFront(&internEntry{fp: fp, sys: sys})
	for p.lru.Len() > p.cap {
		last := p.lru.Back()
		p.lru.Remove(last)
		delete(p.index, last.Value.(*internEntry).fp)
	}
	return sys
}

// snapshot reads the pool counters: hits, misses, and the resident
// count gauge.
func (p *internPool) snapshot() (hits, misses, resident int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, int64(p.lru.Len())
}

func (p *internPool) reset() {
	p.mu.Lock()
	p.lru.Init()
	clear(p.index)
	p.mu.Unlock()
}

// Intern returns the canonical resident *model.System equal to sys,
// plus its fingerprint: the first caller's copy becomes the resident
// and every later caller with an equal system gets that same pointer,
// so duplicate decoded systems collapse to one copy. Residents are
// shared across requests — callers must treat both the argument (once
// interned) and the result as read-only. Code that mutates systems in
// place must keep its private copy and skip interning.
//
// With interning disabled (Options.InternCapacity < 0) sys is returned
// unchanged and nothing is counted.
func (s *Service) Intern(sys *model.System) (*model.System, model.Fingerprint) {
	fp := sys.Fingerprint()
	return s.InternFingerprinted(fp, sys), fp
}

// InternFingerprinted is Intern for callers that already hold the
// system's fingerprint (typically the SHA-256 of its canonical wire
// bytes) and must not pay a second encoding pass. fp must be
// sys.Fingerprint(); an inconsistent pair poisons the pool for that
// fingerprint.
func (s *Service) InternFingerprinted(fp model.Fingerprint, sys *model.System) *model.System {
	if s.intern == nil {
		return sys
	}
	return s.intern.intern(fp, sys)
}

// Interned returns the resident system for fp, if one exists — the
// zero-decode path: a server holding the fingerprint of a binary
// request body (the SHA-256 of the wire bytes) can recover the decoded
// system without touching the bytes again. A miss is not counted; the
// caller decodes and calls InternFingerprinted, which counts the miss,
// so each request increments exactly one intern counter.
func (s *Service) Interned(fp model.Fingerprint) (*model.System, bool) {
	if s.intern == nil {
		return nil, false
	}
	return s.intern.lookup(fp)
}
