package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"hsched/internal/model"
)

// internPool is the fingerprint-keyed pool of canonical resident
// systems: every decoded copy of one system collapses to a single
// *model.System shared by the memo, delta-seed and session paths, so a
// million clients posting the same platform pin one copy instead of a
// million. Residents are shared and therefore read-only by contract —
// only callers that never mutate their systems (the HTTP decode paths)
// may intern; search loops that edit systems in place (sched.Assign,
// design.Minimize) must not.
//
// The pool is striped by fingerprint like the verdict memo (the binary
// wire path takes an intern lookup and a memo lookup per request, and
// both must scale), with the same CLOCK discipline: a hit sets the
// entry's touched bit instead of reordering the list, so the lookup
// mutex is held for a map read only, and counters are padded atomics.
// Each stripe is bounded at ceil(capacity/stripes) entries; eviction
// only drops the pool's reference, so a resident still held by a
// caller or a memoised Result simply stops being shared with future
// requests.
type internPool struct {
	stripes []internStripe
	capPer  int

	hits     counter
	misses   counter
	resident counter // gauge: entries currently pooled, all stripes
}

type internStripe struct {
	mu    sync.Mutex
	lru   *list.List // of *internEntry; front = most recently inserted
	index map[model.Fingerprint]*list.Element

	_ [64]byte // keep neighbouring stripes' mutexes off one cache line
}

type internEntry struct {
	fp  model.Fingerprint
	sys *model.System
	// touched is the CLOCK bit (see entry.touched): set lock-free on
	// hit, cleared for a second chance by the evictor.
	touched atomic.Bool
}

func newInternPool(capacity, stripes int) *internPool {
	if capacity <= 0 {
		return nil
	}
	p := &internPool{
		stripes: make([]internStripe, stripes),
		capPer:  perStripe(capacity, stripes),
	}
	for i := range p.stripes {
		p.stripes[i].lru = list.New()
		p.stripes[i].index = make(map[model.Fingerprint]*list.Element)
	}
	return p
}

func (p *internPool) stripeFor(fp model.Fingerprint) *internStripe {
	return &p.stripes[fp.Shard(len(p.stripes))]
}

// lookup returns the resident system for fp, if any, counting a hit.
// A miss counts nothing: the caller will decode and come back through
// intern, which does the miss accounting — so each request is counted
// exactly once however it splits the lookup.
func (p *internPool) lookup(fp model.Fingerprint) (*model.System, bool) {
	st := p.stripeFor(fp)
	st.mu.Lock()
	el, ok := st.index[fp]
	if !ok {
		st.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*internEntry)
	sys := e.sys
	st.mu.Unlock()
	e.touched.Store(true)
	p.hits.Add(1)
	return sys, true
}

// intern returns the canonical resident system for fp, installing sys
// as the resident if none exists. A concurrent duplicate that lost the
// race to install still gets the winner's pointer (and counts as a
// hit), so equal fingerprints always yield one pointer.
func (p *internPool) intern(fp model.Fingerprint, sys *model.System) *model.System {
	st := p.stripeFor(fp)
	st.mu.Lock()
	if el, ok := st.index[fp]; ok {
		e := el.Value.(*internEntry)
		res := e.sys
		st.mu.Unlock()
		e.touched.Store(true)
		p.hits.Add(1)
		return res
	}
	st.index[fp] = st.lru.PushFront(&internEntry{fp: fp, sys: sys})
	evicted := 0
	for st.lru.Len() > p.capPer {
		// Second-chance scan from the cold end: a touched entry was
		// hit since the last sweep, so clear the bit and rotate it to
		// the hot end; the first untouched entry goes.
		var victim *list.Element
		for el := st.lru.Back(); el != nil; {
			prev := el.Prev()
			e := el.Value.(*internEntry)
			if e.touched.CompareAndSwap(true, false) {
				st.lru.MoveToFront(el)
			} else {
				victim = el
				break
			}
			el = prev
		}
		if victim == nil {
			victim = st.lru.Back()
		}
		st.lru.Remove(victim)
		delete(st.index, victim.Value.(*internEntry).fp)
		evicted++
	}
	st.mu.Unlock()
	p.misses.Add(1)
	p.resident.Add(int64(1 - evicted))
	return sys
}

// snapshot reads the pool counters: hits, misses, and the resident
// count gauge.
func (p *internPool) snapshot() (hits, misses, resident int64) {
	return p.hits.Load(), p.misses.Load(), p.resident.Load()
}

func (p *internPool) reset() {
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		dropped := int64(st.lru.Len())
		st.lru.Init()
		clear(st.index)
		st.mu.Unlock()
		p.resident.Add(-dropped)
	}
}

// Intern returns the canonical resident *model.System equal to sys,
// plus its fingerprint: the first caller's copy becomes the resident
// and every later caller with an equal system gets that same pointer,
// so duplicate decoded systems collapse to one copy. Residents are
// shared across requests — callers must treat both the argument (once
// interned) and the result as read-only. Code that mutates systems in
// place must keep its private copy and skip interning.
//
// With interning disabled (Options.InternCapacity < 0) sys is returned
// unchanged and nothing is counted.
func (s *Service) Intern(sys *model.System) (*model.System, model.Fingerprint) {
	fp := sys.Fingerprint()
	return s.InternFingerprinted(fp, sys), fp
}

// InternFingerprinted is Intern for callers that already hold the
// system's fingerprint (typically the SHA-256 of its canonical wire
// bytes) and must not pay a second encoding pass. fp must be
// sys.Fingerprint(); an inconsistent pair poisons the pool for that
// fingerprint.
func (s *Service) InternFingerprinted(fp model.Fingerprint, sys *model.System) *model.System {
	if s.intern == nil {
		return sys
	}
	return s.intern.intern(fp, sys)
}

// Interned returns the resident system for fp, if one exists — the
// zero-decode path: a server holding the fingerprint of a binary
// request body (the SHA-256 of the wire bytes) can recover the decoded
// system without touching the bytes again. A miss is not counted; the
// caller decodes and calls InternFingerprinted, which counts the miss,
// so each request increments exactly one intern counter.
func (s *Service) Interned(fp model.Fingerprint) (*model.System, bool) {
	if s.intern == nil {
		return nil, false
	}
	return s.intern.lookup(fp)
}
