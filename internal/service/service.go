package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hsched/internal/analysis"
	"hsched/internal/model"
)

// Options configures a Service.
type Options struct {
	// Shards is the number of resident engine shards. Each shard owns
	// one set of analysis engines behind its own mutex; queries are
	// routed by system fingerprint, so repeated queries on the same
	// system land on the same warm engine while distinct systems
	// spread across shards and run concurrently. 0 selects
	// runtime.GOMAXPROCS(0).
	Shards int

	// Capacity bounds the verdict memo in entries (whole detached
	// Results). 0 selects 4096; a negative value disables memoisation
	// entirely (every query runs an analysis) while keeping the engine
	// pool and in-flight deduplication.
	Capacity int

	// Analysis is the default analysis configuration used by Analyze
	// and AnalyzeStatic; AnalyzeOptions overrides it per query.
	Analysis analysis.Options
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) capacity() int {
	switch {
	case o.Capacity < 0:
		return 0
	case o.Capacity == 0:
		return 4096
	default:
		return o.Capacity
	}
}

// Stats is a snapshot of the service's counters. Every query is
// counted exactly once as either a hit (served from the memo, or from
// a concurrent duplicate's in-flight analysis) or a miss (it ran an
// analysis), so Hits + Misses == Queries always holds; Misses is the
// number of analyses the engines actually executed.
type Stats struct {
	// Queries is the total number of Analyze* calls accepted.
	Queries int64
	// Hits counts queries answered without running an analysis.
	Hits int64
	// Misses counts queries that ran (or errored in) an analysis.
	Misses int64
	// Evictions counts memo entries displaced by the LRU policy.
	Evictions int64
	// InflightDedups counts the subset of Hits that were answered by
	// waiting on a concurrent identical query instead of the memo.
	InflightDedups int64
}

// HitRate returns Hits/Queries, or 0 before the first query.
func (st Stats) HitRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Queries)
}

// optKey is the comparable form of normalised analysis options used in
// cache keys. Workers is deliberately absent: results are bit-identical
// for every worker count, so queries differing only in Workers share
// one memo entry. Recorder is absent because recorder queries bypass
// the memo. static distinguishes the one-pass static analysis from the
// holistic iteration — same system, different semantics.
type optKey struct {
	exact              bool
	maxScenarios       int
	epsilon            float64
	maxIterations      int
	maxInner           int
	tightBestCase      bool
	stopAtDeadlineMiss bool
	static             bool
}

func keyOf(opt analysis.Options, static bool) optKey {
	n := opt.Normalised()
	return optKey{
		exact:              n.Exact,
		maxScenarios:       n.MaxScenarios,
		epsilon:            n.Epsilon,
		maxIterations:      n.MaxIterations,
		maxInner:           n.MaxInner,
		tightBestCase:      n.TightBestCase,
		stopAtDeadlineMiss: n.StopAtDeadlineMiss,
		static:             static,
	}
}

// cacheKey identifies one memoisable verdict: the canonical system
// fingerprint plus the normalised analysis options.
type cacheKey struct {
	fp  model.Fingerprint
	opt optKey
}

// engineKey identifies one resident engine within a shard. Unlike the
// cache key it includes Workers, because an engine is constructed with
// a fixed worker bound.
type engineKey struct {
	opt     optKey
	workers int
}

// shard owns the resident engines of one fingerprint slice. Engines
// are not safe for concurrent use, so the mutex serialises analyses
// within a shard; distinct shards analyse concurrently.
type shard struct {
	mu      sync.Mutex
	engines map[engineKey]*analysis.Engine
}

// inflight is one in-progress analysis that concurrent identical
// queries wait on instead of re-running it. res and err are written
// before done is closed.
type inflight struct {
	done chan struct{}
	res  *analysis.Result
	err  error
}

// Service is a concurrency-safe front-end over a pool of resident
// analysis engines: the long-running "admission control" shape of the
// ROADMAP. It routes each query to an engine shard by system
// fingerprint, memoises detached Results in an LRU keyed by
// (fingerprint, normalised options), and deduplicates concurrent
// identical queries singleflight-style so the analysis runs once.
//
// Returned *Results are shared: a memo hit hands the same pointer to
// every caller, so treat them as read-only. Callers that need a
// private mutable copy should run their own analysis.Engine.
//
// The zero value is not usable; construct with New.
type Service struct {
	opt Options

	// mu guards the memo, the in-flight table and the counters. It is
	// held only for map/list operations — never across an analysis —
	// so it is not a throughput bottleneck even under heavy traffic.
	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently used
	index    map[cacheKey]*list.Element
	inflight map[cacheKey]*inflight
	stats    Stats

	shards []shard
}

type entry struct {
	key cacheKey
	res *analysis.Result
}

// New constructs a Service with the given options.
func New(opt Options) *Service {
	s := &Service{
		opt:      opt,
		lru:      list.New(),
		index:    make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*inflight),
		shards:   make([]shard, opt.shards()),
	}
	for i := range s.shards {
		s.shards[i].engines = make(map[engineKey]*analysis.Engine)
	}
	return s
}

// Analyze runs (or recalls) the holistic dynamic-offset analysis of
// sys under the service's default options. It is safe for concurrent
// use; ctx cancels the underlying analysis promptly.
func (s *Service) Analyze(ctx context.Context, sys *model.System) (*analysis.Result, error) {
	return s.analyze(ctx, sys, s.opt.Analysis, false)
}

// AnalyzeOptions is Analyze with per-query analysis options.
func (s *Service) AnalyzeOptions(ctx context.Context, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return s.analyze(ctx, sys, opt, false)
}

// AnalyzeStatic runs (or recalls) the one-pass static-offset analysis
// of sys under the service's default options.
func (s *Service) AnalyzeStatic(ctx context.Context, sys *model.System) (*analysis.Result, error) {
	return s.analyze(ctx, sys, s.opt.Analysis, true)
}

// AnalyzeStaticOptions is AnalyzeStatic with per-query options.
func (s *Service) AnalyzeStaticOptions(ctx context.Context, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return s.analyze(ctx, sys, opt, true)
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Reset drops every memo entry and every resident engine, releasing
// the memory they pin; counters are preserved. In-flight analyses are
// unaffected (their results simply land in the fresh memo). Long-lived
// processes that query the service in bursts over disjoint system
// populations can call it between bursts.
func (s *Service) Reset() {
	s.mu.Lock()
	s.lru.Init()
	clear(s.index)
	s.mu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		clear(sh.engines)
		sh.mu.Unlock()
	}
}

func (s *Service) analyze(ctx context.Context, sys *model.System, opt analysis.Options, static bool) (*analysis.Result, error) {
	// No up-front Validate: the engine validates on every miss, and an
	// invalid system can never collide with a valid system's
	// fingerprint (the fingerprint covers every field validation
	// reads), so the hit path skips the check — it is the single most
	// expensive part of a memoised query.
	fp := sys.Fingerprint()

	if opt.Recorder != nil {
		// Recorder queries want their per-iteration callbacks fired,
		// which a memo hit would silence; they bypass both the memo
		// and the resident engines (an engine is constructed with its
		// recorder baked in).
		s.mu.Lock()
		s.stats.Queries++
		s.stats.Misses++
		s.mu.Unlock()
		return s.runFresh(ctx, sys, opt, static)
	}

	key := cacheKey{fp: fp, opt: keyOf(opt, static)}
	counted := false
	for {
		s.mu.Lock()
		// One query is counted exactly once even if a cancelled
		// singleflight leader forces this caller back around the loop.
		if !counted {
			s.stats.Queries++
			counted = true
		}
		if el, ok := s.index[key]; ok {
			s.lru.MoveToFront(el)
			s.stats.Hits++
			res := el.Value.(*entry).res
			s.mu.Unlock()
			return res, nil
		}
		if fl, ok := s.inflight[key]; ok {
			// A concurrent identical query is already analysing; wait
			// for it instead of burning a second engine. Attribution
			// happens at resolution: a query that ends here — result,
			// leader error, or its own cancellation — ran no analysis
			// and counts as a hit; one that loops back to become the
			// new leader is attributed there instead.
			s.mu.Unlock()
			dedupHit := func() {
				s.mu.Lock()
				s.stats.Hits++
				s.stats.InflightDedups++
				s.mu.Unlock()
			}
			select {
			case <-fl.done:
			case <-ctx.Done():
				dedupHit()
				return nil, fmt.Errorf("service: %w", ctx.Err())
			}
			if fl.err != nil {
				if ctxErr(fl.err) && ctx.Err() == nil {
					// The leader was cancelled but this caller was
					// not: its query is still owed an answer, so loop
					// and take the leader role (or find a newer one).
					continue
				}
				dedupHit()
				return nil, fl.err
			}
			dedupHit()
			return fl.res, nil
		}
		s.stats.Misses++
		fl := &inflight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()

		res, err := s.run(ctx, fp, sys, opt, static)

		fl.res, fl.err = res, err
		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil && s.opt.capacity() > 0 {
			s.insert(key, res)
		}
		s.mu.Unlock()
		close(fl.done)
		return res, err
	}
}

// maxEnginesPerShard bounds the resident engines one shard keeps. A
// serving process normally sees a handful of option sets, but nothing
// stops clients from sending per-query options (distinct Epsilon or
// Workers values), and each engine pins interference caches and
// scratch buffers for the process lifetime — so past the bound an
// arbitrary resident engine is dropped and rebuilt on demand, which
// only costs the warm-up of the next analysis with its options.
const maxEnginesPerShard = 8

// run executes one analysis on the resident engine of the query's
// shard, constructing the engine on first use.
func (s *Service) run(ctx context.Context, fp model.Fingerprint, sys *model.System, opt analysis.Options, static bool) (*analysis.Result, error) {
	sh := &s.shards[fp.Shard(len(s.shards))]
	// Workers is resolved to its effective value for the engine key so
	// Workers:0 and an explicit Workers:GOMAXPROCS share one engine.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ek := engineKey{opt: keyOf(opt, false), workers: workers}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	eng, ok := sh.engines[ek]
	if !ok {
		for k := range sh.engines {
			if len(sh.engines) < maxEnginesPerShard {
				break
			}
			delete(sh.engines, k)
		}
		eng = analysis.NewEngine(opt.Normalised())
		sh.engines[ek] = eng
	}
	if static {
		return eng.AnalyzeStaticContext(ctx, sys)
	}
	return eng.AnalyzeContext(ctx, sys)
}

// runFresh executes one analysis on a throwaway engine (recorder
// queries only — the recorder is baked into the engine's options).
func (s *Service) runFresh(ctx context.Context, sys *model.System, opt analysis.Options, static bool) (*analysis.Result, error) {
	eng := analysis.NewEngine(opt)
	if static {
		return eng.AnalyzeStaticContext(ctx, sys)
	}
	return eng.AnalyzeContext(ctx, sys)
}

// insert adds (or refreshes) a memo entry and evicts from the LRU tail
// past capacity. Caller holds s.mu.
func (s *Service) insert(key cacheKey, res *analysis.Result) {
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*entry).res = res
		return
	}
	s.index[key] = s.lru.PushFront(&entry{key: key, res: res})
	for s.lru.Len() > s.opt.capacity() {
		last := s.lru.Back()
		s.lru.Remove(last)
		delete(s.index, last.Value.(*entry).key)
		s.stats.Evictions++
	}
}

// ctxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
